// Package benches is the paper-reproduction benchmark harness: one bench
// per table and figure of the evaluation (see DESIGN.md §4 for the
// experiment index).
//
// Two kinds of benchmarks coexist:
//
//   - Native measurements (Benchmark*Native / *Generic / *Bignum): real
//     wall-clock time of the plain-Go scalar tier and the two baseline
//     backends on the host CPU. These validate the baseline gaps the
//     figure generators anchor to.
//   - Model projections (BenchmarkFigure* / BenchmarkTable6): the port-model
//     pipeline that produces the paper's figures; projected metrics are
//     attached with b.ReportMetric (e.g. model-ns/butterfly).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package benches

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"mqxgo/internal/blas"
	"mqxgo/internal/core"
	"mqxgo/internal/fhe"
	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
	"mqxgo/internal/multiword"
	"mqxgo/internal/ntt"
	"mqxgo/internal/perfmodel"
	"mqxgo/internal/pisa"
	"mqxgo/internal/rns"
	"mqxgo/internal/u128"
)

func randResidues(seed int64, mod *modmath.Modulus128, n int) []u128.U128 {
	r := rand.New(rand.NewSource(seed))
	xs := make([]u128.U128, n)
	for i := range xs {
		xs[i] = u128.New(r.Uint64(), r.Uint64()).Mod(mod.Q)
	}
	return xs
}

// --- Kernel-level native measurements (Table 1 / Listing 1 territory) ---

func BenchmarkModAdd128Native(b *testing.B) {
	mod := modmath.DefaultModulus128()
	xs := randResidues(1, mod, 1024)
	b.ResetTimer()
	acc := u128.Zero
	for i := 0; i < b.N; i++ {
		acc = mod.Add(acc, xs[i%1024])
	}
	sinkU128 = acc
}

func BenchmarkModMul128Schoolbook(b *testing.B) {
	mod := modmath.DefaultModulus128()
	xs := randResidues(2, mod, 1024)
	b.ResetTimer()
	acc := u128.One
	for i := 0; i < b.N; i++ {
		acc = mod.Mul(acc, xs[i%1024])
	}
	sinkU128 = acc
}

func BenchmarkModMul128Karatsuba(b *testing.B) {
	mod := modmath.DefaultModulus128().WithAlgorithm(modmath.Karatsuba)
	xs := randResidues(3, mod, 1024)
	b.ResetTimer()
	acc := u128.One
	for i := 0; i < b.N; i++ {
		acc = mod.Mul(acc, xs[i%1024])
	}
	sinkU128 = acc
}

func BenchmarkModMul64Shoup(b *testing.B) {
	ps, err := modmath.FindNTTPrimes64(60, 1<<10, 1)
	if err != nil {
		b.Fatal(err)
	}
	mod := modmath.MustModulus64(ps[0])
	w := ps[0] / 3
	pre := mod.ShoupPrecompute(w)
	b.ResetTimer()
	acc := uint64(1)
	for i := 0; i < b.N; i++ {
		acc = mod.MulShoup(acc, w, pre)
	}
	sinkU64 = acc
}

var (
	sinkU128 u128.U128
	sinkU64  uint64
)

func BenchmarkModMul128Montgomery(b *testing.B) {
	mod := modmath.DefaultModulus128()
	mg, err := modmath.NewMontgomery128(mod.Q)
	if err != nil {
		b.Fatal(err)
	}
	xs := randResidues(4, mod, 1024)
	// In-domain chain: the regime Montgomery is designed for.
	for i := range xs {
		xs[i] = mg.ToMont(xs[i])
	}
	b.ResetTimer()
	acc := mg.ToMont(u128.One)
	for i := 0; i < b.N; i++ {
		acc = mg.MulMont(acc, xs[i%1024])
	}
	sinkU128 = acc
}

func BenchmarkModMulGoldilocks(b *testing.B) {
	g := modmath.Goldilocks{}
	acc := uint64(0x123456789abcdef)
	w := uint64(0xfedcba987654321)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = g.Mul(acc, w)
	}
	sinkU64 = acc
}

func BenchmarkModMulMultiword256(b *testing.B) {
	q, err := multiword.FindNTTPrime(252, 4, 1<<10)
	if err != nil {
		b.Fatal(err)
	}
	mod := multiword.MustModulus(q)
	x := multiword.Int{0x1234, 0x5678, 0x9abc, 0x0def}
	acc := mod.Reduce(x)
	w := mod.Reduce(multiword.Int{7, 11, 13, 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = mod.Mul(acc, w)
	}
	if acc.IsZero() {
		b.Fatal("unexpected zero")
	}
}

func BenchmarkNTT64Native4096(b *testing.B) {
	ps, err := modmath.FindNTTPrimes64(60, 1<<13, 1)
	if err != nil {
		b.Fatal(err)
	}
	p, err := ntt.NewPlan64(modmath.MustModulus64(ps[0]), 1<<12)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(77))
	x := make([]uint64, 1<<12)
	for i := range x {
		x[i] = r.Uint64() % ps[0]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
	butterflies := float64(1<<11) * 12
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/butterflies, "ns/butterfly")
}

func BenchmarkNTTInPlace4096(b *testing.B) {
	ctx := core.Default()
	p, err := ctx.Plan(1 << 12)
	if err != nil {
		b.Fatal(err)
	}
	x := randResidues(78, ctx.Mod, 1<<12)
	buf := make([]u128.U128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		p.ForwardInPlace(buf)
	}
	butterflies := float64(1<<11) * 12
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/butterflies, "ns/butterfly")
}

// --- Zero-allocation engine (PR 1): Into variants and batch pool ---

func BenchmarkNTTForwardNative4096(b *testing.B) {
	ctx := core.Default()
	p, err := ctx.Plan(1 << 12)
	if err != nil {
		b.Fatal(err)
	}
	x := randResidues(70, ctx.Mod, 1<<12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ForwardNative(x)
	}
}

func BenchmarkNTTForwardNativeInto4096(b *testing.B) {
	ctx := core.Default()
	p, err := ctx.Plan(1 << 12)
	if err != nil {
		b.Fatal(err)
	}
	x := randResidues(71, ctx.Mod, 1<<12)
	dst := make([]u128.U128, 1<<12)
	p.ForwardInto(dst, x) // warm the scratch pool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ForwardInto(dst, x)
	}
	butterflies := float64(1<<11) * 12
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/butterflies, "ns/butterfly")
}

func BenchmarkNTTInverseNative4096(b *testing.B) {
	ctx := core.Default()
	p, err := ctx.Plan(1 << 12)
	if err != nil {
		b.Fatal(err)
	}
	y := randResidues(72, ctx.Mod, 1<<12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.InverseNative(y)
	}
}

func BenchmarkNTTInverseNativeInto4096(b *testing.B) {
	ctx := core.Default()
	p, err := ctx.Plan(1 << 12)
	if err != nil {
		b.Fatal(err)
	}
	y := randResidues(73, ctx.Mod, 1<<12)
	dst := make([]u128.U128, 1<<12)
	p.InverseInto(dst, y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.InverseInto(dst, y)
	}
	butterflies := float64(1<<11) * 12
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/butterflies, "ns/butterfly")
}

func BenchmarkNTTPolyMulNegacyclicInto4096(b *testing.B) {
	ctx := core.Default()
	p, err := ctx.Plan(1 << 12)
	if err != nil {
		b.Fatal(err)
	}
	x := randResidues(74, ctx.Mod, 1<<12)
	y := randResidues(75, ctx.Mod, 1<<12)
	dst := make([]u128.U128, 1<<12)
	p.PolyMulNegacyclicInto(dst, x, y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PolyMulNegacyclicInto(dst, x, y)
	}
}

// BenchmarkBatchNTTPool4096W8 is the PR acceptance configuration: a batch
// of 64 forward transforms at n=4096 dispatched over 8 workers through the
// persistent pool, transforms/sec derivable from ns/transform.
func BenchmarkBatchNTTPool4096W8(b *testing.B) {
	ctx := core.Default()
	p, err := ctx.Plan(1 << 12)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	inputs := make([][]u128.U128, batch)
	dsts := make([][]u128.U128, batch)
	for i := range inputs {
		inputs[i] = randResidues(int64(85+i), ctx.Mod, 1<<12)
		dsts[i] = make([]u128.U128, 1<<12)
	}
	p.BatchForwardInto(dsts, inputs, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.BatchForwardInto(dsts, inputs, 8)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batch, "ns/transform")
}

func BenchmarkBatchNTTParallel(b *testing.B) {
	ctx := core.Default()
	p, err := ctx.Plan(1 << 10)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	inputs := make([][]u128.U128, batch)
	for i := range inputs {
		inputs[i] = randResidues(int64(80+i), ctx.Mod, 1<<10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.BatchForward(inputs, 0)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batch, "ns/transform")
}

// --- Figure 4: BLAS kernels, native baselines measured for real ---

func benchBLASNative(b *testing.B, op blas.Op) {
	mod := modmath.DefaultModulus128()
	nat := blas.Native{Mod: mod}
	n := core.BLASVectorLength
	x := randResidues(4, mod, n)
	y := randResidues(5, mod, n)
	dst := make([]u128.U128, n)
	a := x[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch op {
		case blas.OpVecAdd:
			nat.VecAddMod(dst, x, y)
		case blas.OpVecSub:
			nat.VecSubMod(dst, x, y)
		case blas.OpVecPMul:
			nat.VecPMulMod(dst, x, y)
		case blas.OpAxpy:
			nat.Axpy(a, x, dst)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/element")
}

func BenchmarkFigure4VecAddNative(b *testing.B)  { benchBLASNative(b, blas.OpVecAdd) }
func BenchmarkFigure4VecSubNative(b *testing.B)  { benchBLASNative(b, blas.OpVecSub) }
func BenchmarkFigure4VecPMulNative(b *testing.B) { benchBLASNative(b, blas.OpVecPMul) }
func BenchmarkFigure4AxpyNative(b *testing.B)    { benchBLASNative(b, blas.OpAxpy) }

func BenchmarkFigure4VecPMulGeneric(b *testing.B) {
	mod := modmath.DefaultModulus128()
	gen := blas.Generic{Q: mod.Q}
	n := core.BLASVectorLength
	x := randResidues(6, mod, n)
	y := randResidues(7, mod, n)
	dst := make([]u128.U128, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.VecPMulMod(dst, x, y)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/element")
}

func BenchmarkFigure4VecPMulBignum(b *testing.B) {
	mod := modmath.DefaultModulus128()
	big := blas.NewBignum(mod.Q)
	n := core.BLASVectorLength
	x := blas.ToBigVector(randResidues(8, mod, n))
	y := blas.ToBigVector(randResidues(9, mod, n))
	dst := blas.BigVector(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		big.VecPMulMod(dst, x, y)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/element")
}

// BenchmarkFigure4Model projects the full Figure 4 grid and reports the
// modeled per-element times of the AVX-512 and MQX tiers on both machines.
func BenchmarkFigure4Model(b *testing.B) {
	mod := modmath.DefaultModulus128()
	var figs []core.BLASFigure
	for i := 0; i < b.N; i++ {
		figs = figs[:0]
		for _, mach := range perfmodel.MeasurementMachines {
			figs = append(figs, core.Figure4(mach, mod, core.DefaultBaselineRatios))
		}
	}
	for _, fig := range figs {
		tag := "intel"
		if fig.Machine == perfmodel.AMDEPYC9654 {
			tag = "amd"
		}
		for _, s := range fig.Series {
			if s.Name == "avx512" || s.Name == "mqx" {
				b.ReportMetric(s.Values[2], "model-ns/el-pmul-"+s.Name+"-"+tag)
			}
		}
	}
}

// --- Figure 5: NTT across sizes ---

func benchNTTNative(b *testing.B, n int) {
	ctx := core.Default()
	p, err := ctx.Plan(n)
	if err != nil {
		b.Fatal(err)
	}
	x := randResidues(10, ctx.Mod, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ForwardNative(x)
	}
	butterflies := float64(n/2) * float64(p.M)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/butterflies, "ns/butterfly")
}

func BenchmarkFigure5NTTNative1024(b *testing.B)  { benchNTTNative(b, 1<<10) }
func BenchmarkFigure5NTTNative4096(b *testing.B)  { benchNTTNative(b, 1<<12) }
func BenchmarkFigure5NTTNative16384(b *testing.B) { benchNTTNative(b, 1<<14) }
func BenchmarkFigure5NTTNative65536(b *testing.B) { benchNTTNative(b, 1<<16) }

func BenchmarkFigure5NTTGeneric4096(b *testing.B) {
	ctx := core.Default()
	p, err := ctx.Plan(1 << 12)
	if err != nil {
		b.Fatal(err)
	}
	g := core.GenericArith{Q: ctx.Mod.Q}
	x := randResidues(11, ctx.Mod, 1<<12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ForwardWith(g, x)
	}
	butterflies := float64(1<<11) * float64(p.M)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/butterflies, "ns/butterfly")
}

func BenchmarkFigure5NTTBignum4096(b *testing.B) {
	ctx := core.Default()
	p, err := ctx.Plan(1 << 12)
	if err != nil {
		b.Fatal(err)
	}
	bp := core.NewBigPlan(p)
	xs := randResidues(12, ctx.Mod, 1<<12)
	x := make([]*big.Int, len(xs))
	for i := range x {
		x[i] = xs[i].ToBig()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp.Forward(x)
	}
	butterflies := float64(1<<11) * float64(p.M)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/butterflies, "ns/butterfly")
}

// BenchmarkFigure5Model projects the full Figure 5 grid on both machines
// and reports the modeled MQX per-butterfly times at 2^14.
func BenchmarkFigure5Model(b *testing.B) {
	mod := modmath.DefaultModulus128()
	var figs []core.NTTFigure
	for i := 0; i < b.N; i++ {
		figs = figs[:0]
		for _, mach := range perfmodel.MeasurementMachines {
			figs = append(figs, core.Figure5(mach, mod, core.DefaultBaselineRatios))
		}
	}
	for _, fig := range figs {
		tag := "intel"
		if fig.Machine == perfmodel.AMDEPYC9654 {
			tag = "amd"
		}
		for _, s := range fig.Series {
			if s.Name == "mqx" || s.Name == "avx512" {
				b.ReportMetric(s.Values[4], "model-ns/bf-"+s.Name+"-"+tag)
			}
		}
	}
}

// --- Figure 6: MQX component ablation ---

func BenchmarkFigure6Model(b *testing.B) {
	mod := modmath.DefaultModulus128()
	var rows []core.SensitivityRow
	for i := 0; i < b.N; i++ {
		rows = core.Figure6(mod)
	}
	for _, row := range rows {
		b.ReportMetric(row.Normalized, "norm-"+row.Label)
	}
}

// --- Table 6: PISA validation ---

func BenchmarkTable6PISA(b *testing.B) {
	mod := modmath.DefaultModulus128()
	var res []pisa.ValidationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = pisa.Validate(perfmodel.IntelXeon8352Y, mod)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		b.ReportMetric(r.EpsilonPct, "eps%-"+r.Pair.Target.String())
	}
}

// --- Figures 1 and 7: roofline / SOL ---

func BenchmarkFigure7Model(b *testing.B) {
	mod := modmath.DefaultModulus128()
	var fig core.SOLFigure
	var err error
	for i := 0; i < b.N; i++ {
		for _, mach := range perfmodel.MeasurementMachines {
			fig, err = core.Figure7(mach, mod)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(fig.MQXSOL.Points[0].TimeNs, "model-ns-sol-1024")
}

func BenchmarkFigure1Model(b *testing.B) {
	mod := modmath.DefaultModulus128()
	var bars []core.Figure1Bar
	for i := 0; i < b.N; i++ {
		bars = core.Figure1(mod, core.DefaultBaselineRatios)
	}
	for _, bar := range bars {
		switch bar.Label {
		case "This work, AVX-512 (1 core)":
			b.ReportMetric(bar.TimeNs, "model-ns-avx512-1c")
		case "RPU (ASIC)":
			b.ReportMetric(bar.TimeNs, "model-ns-rpu")
		}
	}
}

// --- Per-butterfly model across every tier (headline §5.4 numbers) ---

func BenchmarkButterflyModelAllTiers(b *testing.B) {
	mod := modmath.DefaultModulus128()
	levels := []isa.Level{isa.LevelScalar, isa.LevelAVX2, isa.LevelAVX512, isa.LevelMQX}
	type key struct {
		mach  *perfmodel.Machine
		level isa.Level
	}
	out := map[key]float64{}
	for i := 0; i < b.N; i++ {
		for _, mach := range perfmodel.MeasurementMachines {
			for _, level := range levels {
				m := perfmodel.ProjectNTT(mach, level, mod, 1<<14)
				out[key{mach, level}] = m.NsPerButterfly()
			}
		}
	}
	for k, v := range out {
		tag := "intel"
		if k.mach == perfmodel.AMDEPYC9654 {
			tag = "amd"
		}
		b.ReportMetric(v, "model-ns/bf-"+k.level.String()+"-"+tag)
	}
}

// benchRNSContext builds a k-tower RNS context with deterministic
// operands for the tower-parallel multiply benchmarks.
func benchRNSContext(b *testing.B, k, n int) (*rns.Context, rns.Poly, rns.Poly, rns.Poly) {
	b.Helper()
	c, err := rns.NewContext(59, k, n)
	if err != nil {
		b.Fatal(err)
	}
	ra, rb, dst := c.NewPoly(), c.NewPoly(), c.NewPoly()
	for i := 0; i < k; i++ {
		for j := 0; j < n; j++ {
			ra.Res[i][j] = uint64(j*2847+i*13) % c.Mods[i].Q
			rb.Res[i][j] = uint64(j*9176+i*7) % c.Mods[i].Q
		}
	}
	return c, ra, rb, dst
}

// BenchmarkRNSMulAllSeqK4N4096 is the zero-allocation sequential tower
// loop: the baseline the parallel dispatch is judged against.
func BenchmarkRNSMulAllSeqK4N4096(b *testing.B) {
	c, ra, rb, dst := benchRNSContext(b, 4, 1<<12)
	if err := c.MulAll(dst, ra, rb, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.MulAll(dst, ra, rb, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/4, "ns/tower")
}

// BenchmarkRNSMulAllParK4N4096 dispatches all four towers through the
// shared worker pool as one batch (the PR 2 acceptance configuration:
// within 10% of 4x the single-tower baseline on one core, faster on
// many).
func BenchmarkRNSMulAllParK4N4096(b *testing.B) {
	c, ra, rb, dst := benchRNSContext(b, 4, 1<<12)
	if err := c.MulAll(dst, ra, rb, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.MulAll(dst, ra, rb, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/4, "ns/tower")
}

// --- PR 4: homomorphic multiply on the Backend seam ---

// benchMulCtFixture prepares a ready-to-multiply ciphertext pair, relin
// key, and reusable destination on one backend.
func benchMulCtFixture(b *testing.B, backend fhe.Backend) (fhe.BackendCiphertext, fhe.BackendCiphertext, fhe.BackendCiphertext, fhe.BackendRelinKey) {
	b.Helper()
	s := fhe.NewBackendScheme(backend, 77)
	sk := s.KeyGen()
	rlk, rlkErr := s.RelinKeyGen(sk)
	if rlkErr != nil {
		b.Fatal(rlkErr)
	}
	n := backend.N()
	msg := make([]uint64, n)
	for i := range msg {
		msg[i] = uint64(i*13+5) % backend.PlainModulus()
	}
	c1, err := s.Encrypt(sk, msg)
	if err != nil {
		b.Fatal(err)
	}
	c2, err := s.Encrypt(sk, msg)
	if err != nil {
		b.Fatal(err)
	}
	dst := fhe.BackendCiphertext{A: backend.NewPoly(), B: backend.NewPoly()}
	backend.MulCt(&dst, c1, c2, rlk) // warm every pool
	return c1, c2, dst, rlk
}

// BenchmarkMulCtRNSK2N4096 is the BEHZ pipeline at the paper's sweet
// spot (two towers): base-extend, tensor, divide-and-round, exact
// Shenoy-Kumaresan return, CRT-gadget relin — 0 allocs/op steady state.
func BenchmarkMulCtRNSK2N4096(b *testing.B) {
	c, err := rns.NewContext(59, 2, 1<<12)
	if err != nil {
		b.Fatal(err)
	}
	backend, err := fhe.NewRNSBackend(c, 257)
	if err != nil {
		b.Fatal(err)
	}
	c1, c2, dst, rlk := benchMulCtFixture(b, backend)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		backend.MulCt(&dst, c1, c2, rlk)
	}
}

// BenchmarkMulCtOracleN4096 is the 128-bit oracle multiply: exact
// integer tensor via the wide CRT basis and exact big-int rescale — the
// correctness reference the RNS pipeline is differentially tested
// against, and the wall-clock bar it must beat.
func BenchmarkMulCtOracleN4096(b *testing.B) {
	params, err := fhe.NewParams(modmath.DefaultModulus128(), 1<<12, 257)
	if err != nil {
		b.Fatal(err)
	}
	backend := fhe.NewRingBackend(params)
	c1, c2, dst, rlk := benchMulCtFixture(b, backend)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		backend.MulCt(&dst, c1, c2, rlk)
	}
}

// --- PR 5: the modulus ladder ---

// ladderFixture prepares a k-tower RNS backend with a ciphertext pair
// switched down to the requested level, ready to multiply there.
func ladderFixture(b *testing.B, towers, level, n int) (fhe.Backend, fhe.BackendCiphertext, fhe.BackendCiphertext, fhe.BackendCiphertext, fhe.BackendRelinKey) {
	b.Helper()
	c, err := rns.NewContext(59, towers, n)
	if err != nil {
		b.Fatal(err)
	}
	backend, err := fhe.NewRNSBackend(c, 257)
	if err != nil {
		b.Fatal(err)
	}
	s := fhe.NewBackendScheme(backend, 77)
	sk := s.KeyGen()
	rlk, rlkErr := s.RelinKeyGen(sk)
	if rlkErr != nil {
		b.Fatal(rlkErr)
	}
	msg := make([]uint64, n)
	for i := range msg {
		msg[i] = uint64(i*13+5) % backend.PlainModulus()
	}
	c1, err := s.Encrypt(sk, msg)
	if err != nil {
		b.Fatal(err)
	}
	c2, err := s.Encrypt(sk, msg)
	if err != nil {
		b.Fatal(err)
	}
	for l := 0; l < level; l++ {
		if c1, err = s.ModSwitch(c1); err != nil {
			b.Fatal(err)
		}
		if c2, err = s.ModSwitch(c2); err != nil {
			b.Fatal(err)
		}
	}
	dst := fhe.BackendCiphertext{A: backend.NewPolyAt(level), B: backend.NewPolyAt(level), Level: level}
	if err := backend.MulCt(&dst, c1, c2, rlk); err != nil { // warm every pool
		b.Fatal(err)
	}
	return backend, c1, c2, dst, rlk
}

// BenchmarkMulCtLadderK4N4096 measures the per-level multiply cost down a
// k=4 ladder: the BEHZ pipeline shrinks by one tower per DropLevel, so
// wall-clock must fall strictly with the level — the reason the ladder
// exists.
func BenchmarkMulCtLadderK4N4096(b *testing.B) {
	for level := 0; level <= 2; level++ {
		b.Run(fmt.Sprintf("level%d", level), func(b *testing.B) {
			backend, c1, c2, dst, rlk := ladderFixture(b, 4, level, 1<<12)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := backend.MulCt(&dst, c1, c2, rlk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModSwitchRNSK4N4096 is the ladder step itself: the Rescaler's
// divide-and-round of both ciphertext components, residues only, 0
// allocs/op steady state.
func BenchmarkModSwitchRNSK4N4096(b *testing.B) {
	backend, c1, _, _, _ := ladderFixture(b, 4, 0, 1<<12)
	dst := fhe.BackendCiphertext{A: backend.NewPolyAt(1), B: backend.NewPolyAt(1), Level: 1}
	if err := backend.ModSwitch(&dst, c1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := backend.ModSwitch(&dst, c1); err != nil {
			b.Fatal(err)
		}
	}
}
