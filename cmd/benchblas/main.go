// Command benchblas regenerates the paper's Figure 4: runtime per element
// for the four BLAS kernels (vector add, vector sub, point-wise vector
// mul, axpy) at vector length 1024, across the GMP baseline and the
// scalar / AVX2 / AVX-512 / MQX tiers.
//
// Usage:
//
//	benchblas [-cpu intel|amd|both] [-measure]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mqxgo/internal/core"
	"mqxgo/internal/modmath"
	"mqxgo/internal/perfmodel"
)

func main() {
	cpu := flag.String("cpu", "both", "intel, amd, or both")
	measure := flag.Bool("measure", false, "re-measure baseline anchor ratios on this host")
	flag.Parse()

	mod := modmath.DefaultModulus128()
	ctx := core.NewContext(mod)

	ratios := core.DefaultBaselineRatios
	if *measure {
		r, err := ctx.MeasureNTTBaselineRatios(1 << 12)
		if err != nil {
			log.Fatal(err)
		}
		ratios = r
		fmt.Printf("host-measured anchors: GMP/scalar = %.1fx\n\n", ratios.BignumOverNative)
	}

	var machines []*perfmodel.Machine
	switch *cpu {
	case "intel":
		machines = []*perfmodel.Machine{perfmodel.IntelXeon8352Y}
	case "amd":
		machines = []*perfmodel.Machine{perfmodel.AMDEPYC9654}
	case "both":
		machines = perfmodel.MeasurementMachines
	default:
		fmt.Fprintln(os.Stderr, "benchblas: -cpu must be intel, amd, or both")
		os.Exit(2)
	}

	for _, mach := range machines {
		fig := core.Figure4(mach, mod, ratios)
		rows := make([]string, len(fig.Ops))
		for i, op := range fig.Ops {
			rows[i] = op.String()
		}
		label := "Figure 4a"
		if mach == perfmodel.AMDEPYC9654 {
			label = "Figure 4b"
		}
		fmt.Print(core.FormatSeriesTable(
			fmt.Sprintf("%s — BLAS runtime per element (ns) on %s, single core, length %d",
				label, mach.Name, core.BLASVectorLength),
			"op", rows, fig.Series))
		fmt.Println()
	}
}
