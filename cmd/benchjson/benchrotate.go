package main

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"os"
	"runtime"
	"time"

	"mqxgo/internal/fhe"
	"mqxgo/internal/modmath"
	"mqxgo/internal/rns"
)

// The rotation report uses its own plaintext modulus: packing needs T
// NTT-friendly at 2n (T = 1 mod 2n), which the ladder reports' T = 257
// is not at n = 4096. 40961 = 5*2^13 + 1 splits for every n up to 4096.
const (
	rotateN = 4096
	rotateK = 4
	rotateT = 40961
)

// rotateLevelRow is the per-level rotation latency down the RNS ladder:
// a single key-switch hop (steps=1), a two-hop composite (steps=3 =
// hops at bits 0 and 1), and the row-swap conjugation. Towers shrink
// with the level, so every series must fall.
type rotateLevelRow struct {
	Level        int     `json:"level"`
	Towers       int     `json:"towers"`
	RotateHop1Ns float64 `json:"rotate_steps1_ns"`
	RotateHop3Ns float64 `json:"rotate_steps3_ns"`
	ConjugateNs  float64 `json:"conjugate_ns"`
	RotateAllocs float64 `json:"rotate_steps1_allocs_per_op"`
}

// rotatedModel is the plaintext slot model the homomorphic pipeline is
// gated against: slots split into two rows of n/2, RotateSlots moves
// slots left by steps within each row, Conjugate swaps the rows.
func rotatedModel(msg []uint64, steps int, conj bool) []uint64 {
	n := len(msg)
	rows := n / 2
	out := make([]uint64, n)
	for r := 0; r < 2; r++ {
		src := r
		if conj {
			src = 1 - r
		}
		for j := 0; j < rows; j++ {
			out[r*rows+j] = msg[src*rows+(j+steps)%rows]
		}
	}
	return out
}

// rotateGate runs the slot-model cross-check on one backend: encode,
// encrypt, rotate/conjugate homomorphically, decrypt, decode, and
// compare every slot against the plaintext model. Nothing is timed
// until both backends pass.
func rotateGate(b fhe.Backend, name string) error {
	s := fhe.NewBackendScheme(b, 4242)
	sk := s.KeyGen()
	gk, err := s.GaloisKeyGen(sk)
	if err != nil {
		return err
	}
	msg := make([]uint64, rotateN)
	for j := range msg {
		msg[j] = uint64(j*31+7) % rotateT
	}
	pt, err := s.EncodeSlots(msg)
	if err != nil {
		return err
	}
	ct, err := s.Encrypt(sk, pt)
	if err != nil {
		return err
	}
	check := func(got fhe.BackendCiphertext, steps int, conj bool, what string) error {
		dec, err := s.Decrypt(sk, got)
		if err != nil {
			return err
		}
		slots, err := s.DecodeSlots(dec)
		if err != nil {
			return err
		}
		want := rotatedModel(msg, steps, conj)
		for j := range want {
			if slots[j] != want[j] {
				return fmt.Errorf("benchjson: %s %s slot %d: got %d, want %d", name, what, j, slots[j], want[j])
			}
		}
		return nil
	}
	for _, steps := range []int{1, 3} {
		rot, err := s.RotateSlots(ct, steps, gk)
		if err != nil {
			return err
		}
		if err := check(rot, steps, false, fmt.Sprintf("rotate(%d)", steps)); err != nil {
			return err
		}
	}
	conj, err := s.Conjugate(ct, gk)
	if err != nil {
		return err
	}
	return check(conj, 0, true, "conjugate")
}

// runRotateComparison writes the PR 9 report: per-level Galois rotation
// latency down the RNS ladder (steady-state, preallocated destinations)
// and the packed-vs-scalar-message MulCt amortization that motivates
// slot packing — one packed multiply forms n slot products where
// unpacked messages need one multiply each. Both backends pass the
// plaintext slot-model gate before anything is timed.
func runRotateComparison(path string) error {
	const rounds = 8
	params, err := fhe.NewParams(modmath.DefaultModulus128(), rotateN, rotateT)
	if err != nil {
		return err
	}
	oracle := fhe.NewRingBackend(params)
	c, err := rns.NewContext(59, rotateK, rotateN)
	if err != nil {
		return err
	}
	rb, err := fhe.NewRNSBackend(c, rotateT)
	if err != nil {
		return err
	}

	// Gate both backends against the slot model before timing.
	if err := rotateGate(oracle, "oracle"); err != nil {
		return err
	}
	if err := rotateGate(rb, "rns"); err != nil {
		return err
	}

	// Keyed RNS fixture for the timed sections.
	s := fhe.NewBackendScheme(rb, 4242)
	sk := s.KeyGen()
	rlk, err := s.RelinKeyGen(sk)
	if err != nil {
		return err
	}
	gk, err := s.GaloisKeyGen(sk)
	if err != nil {
		return err
	}
	x := make([]uint64, rotateN)
	y := make([]uint64, rotateN)
	for j := range x {
		x[j] = uint64(3*j+1) % rotateT
		y[j] = uint64(5*j+2) % rotateT
	}
	ptx, err := s.EncodeSlots(x)
	if err != nil {
		return err
	}
	pty, err := s.EncodeSlots(y)
	if err != nil {
		return err
	}
	cx, err := s.Encrypt(sk, ptx)
	if err != nil {
		return err
	}
	cy, err := s.Encrypt(sk, pty)
	if err != nil {
		return err
	}

	// Per-level rotation latency: rotate into a preallocated destination
	// at each ladder level, then switch down. The backend-seam call is
	// the steady-state serving path, so its alloc count is also the
	// report's zero-alloc claim.
	var levels []rotateLevelRow
	rotateAllocsClean := true
	ct := cx
	for level := 0; level < rb.Levels(); level++ {
		dst := fhe.BackendCiphertext{
			A: rb.NewPolyAt(level), B: rb.NewPolyAt(level),
			Level: level, Domain: ct.Domain,
		}
		cur := ct
		mins := minInterleaved(rounds,
			func() { _ = rb.RotateSlots(&dst, cur, 1, gk) },
			func() { _ = rb.RotateSlots(&dst, cur, 3, gk) },
			func() { _ = rb.Conjugate(&dst, cur, gk) },
		)
		row := rotateLevelRow{
			Level:        level,
			Towers:       rotateK - level,
			RotateHop1Ns: mins[0],
			RotateHop3Ns: mins[1],
			ConjugateNs:  mins[2],
			RotateAllocs: allocs(func() { _ = rb.RotateSlots(&dst, cur, 1, gk) }),
		}
		if row.RotateAllocs != 0 {
			rotateAllocsClean = false
		}
		levels = append(levels, row)
		fmt.Printf("level %d (towers %d): rotate1 %.0f ns, rotate3 %.0f ns, conj %.0f ns, allocs %.1f\n",
			level, row.Towers, row.RotateHop1Ns, row.RotateHop3Ns, row.ConjugateNs, row.RotateAllocs)
		if level+1 < rb.Levels() {
			if ct, err = s.ModSwitch(ct); err != nil {
				return err
			}
		}
	}
	decreasing := true
	for i := 1; i < len(levels); i++ {
		if levels[i].RotateHop1Ns >= levels[i-1].RotateHop1Ns {
			decreasing = false
		}
	}

	// Amortization: the multiply costs the same either way; packing
	// changes what one multiply buys. A packed operand pair yields n
	// slot products per MulCt, a scalar-message pair yields one. Both
	// contenders are timed interleaved to keep the comparison honest on
	// a drifting host.
	scalarMsg := make([]uint64, rotateN)
	scalarMsg[0] = 12345
	sx, err := s.Encrypt(sk, scalarMsg)
	if err != nil {
		return err
	}
	mulDst := fhe.BackendCiphertext{
		A: rb.NewPolyAt(0), B: rb.NewPolyAt(0), Level: 0, Domain: cx.Domain,
	}
	mulMins := minInterleaved(rounds,
		func() { _ = rb.MulCt(&mulDst, cx, cy, rlk) },
		func() { _ = rb.MulCt(&mulDst, sx, sx, rlk) },
	)
	packedPerSlot := mulMins[0] / float64(rotateN)
	amortization := mulMins[1] / packedPerSlot

	// The dot-product fold from examples/dotproduct at full ring size:
	// one multiply plus log2(n/2) rotate-and-add hops leaves every slot
	// of a row holding that row's dot product.
	rows := rotateN / 2
	hops := bits.Len(uint(rows)) - 1
	dotNs := minInterleaved(rounds, func() {
		acc, err := s.MulCiphertexts(cx, cy, rlk)
		if err != nil {
			panic(err)
		}
		for sh := rows / 2; sh >= 1; sh /= 2 {
			rot, err := s.RotateSlots(acc, sh, gk)
			if err != nil {
				panic(err)
			}
			if acc, err = s.AddCiphertexts(acc, rot); err != nil {
				panic(err)
			}
		}
	})[0]

	report := map[string]any{
		"schema":         "mqxgo-bench/v1",
		"pr":             9,
		"generated_unix": time.Now().Unix(),
		"config": hostConfig(map[string]any{
			"n": rotateN, "towers": rotateK, "prime_bits": 59, "plain_modulus": rotateT,
			"host_cpus": runtime.NumCPU(),
			"timing":    fmt.Sprintf("min of %d interleaved rounds per contender", rounds),
		}),
		"verified": true,
		"results": map[string]any{
			"rotation_by_level": levels,
			"mulct_amortization": map[string]any{
				"packed_mulct_ns":          mulMins[0],
				"scalar_message_mulct_ns":  mulMins[1],
				"slots_per_packed_mul":     rotateN,
				"ns_per_slot_product":      packedPerSlot,
				"ns_per_unpacked_product":  mulMins[1],
				"packing_amortization":     amortization,
				"dotproduct_fold_ns":       dotNs,
				"dotproduct_rotation_hops": hops,
			},
		},
		"acceptance": map[string]any{
			"slot_model_gate_both_backends":   true,
			"rotate_steps1_ns_by_level":       rotateSeries(levels),
			"strictly_decreasing":             decreasing,
			"rotate_steady_state_zero_allocs": rotateAllocsClean,
			"packing_amortization":            amortization,
		},
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (strictly decreasing: %v, rotate 0 allocs: %v, amortization %.0fx)\n",
		path, decreasing, rotateAllocsClean, amortization)
	return nil
}

func rotateSeries(levels []rotateLevelRow) []float64 {
	out := make([]float64, len(levels))
	for i, r := range levels {
		out[i] = r.RotateHop1Ns
	}
	return out
}
