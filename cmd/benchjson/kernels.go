package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"mqxgo/internal/core"
	"mqxgo/internal/modmath"
	"mqxgo/internal/ring"
	"mqxgo/internal/u128"
)

// The PR 3 report: the fused span-kernel seam measured per width. Each
// (width, n) row times the kernel path against the element-op fallback
// (the identical plan built over ring.ElementOnly, which hides the
// SpanKernels implementation), the 128-bit rows additionally against the
// seed reconstruction (the recovered-genericity axis), and the 64-bit
// rows additionally against the strict span kernels (isolating the lazy
// [0, 2q) reduction win from the devirtualization win). All paths are
// cross-checked bit-exact before anything is timed.

type kernelRow128 struct {
	KernelFwdNs        float64 `json:"kernel_forward_ns"`
	ElementFwdNs       float64 `json:"element_forward_ns"`
	SeedFwdNs          float64 `json:"seed_forward_ns"`
	KernelMulNs        float64 `json:"kernel_polymul_ns"`
	ElementMulNs       float64 `json:"element_polymul_ns"`
	FwdKernelVsElement float64 `json:"fwd_kernel_vs_element"`
	FwdKernelVsSeed    float64 `json:"fwd_kernel_vs_seed"`
	MulKernelVsElement float64 `json:"mul_kernel_vs_element"`
	KernelFwdAllocs    float64 `json:"kernel_forward_allocs_per_op"`
}

type kernelRow64 struct {
	LazyFwdNs           float64 `json:"lazy_forward_ns"`
	StrictFwdNs         float64 `json:"strict_forward_ns"`
	ElementFwdNs        float64 `json:"element_forward_ns"`
	LazyMulNs           float64 `json:"lazy_polymul_ns"`
	StrictMulNs         float64 `json:"strict_polymul_ns"`
	ElementMulNs        float64 `json:"element_polymul_ns"`
	FwdLazyVsElement    float64 `json:"fwd_lazy_vs_element"`
	FwdLazyVsStrict     float64 `json:"fwd_lazy_vs_strict"`
	FwdStrictVsElement  float64 `json:"fwd_strict_vs_element"`
	LazyFwdAllocs       float64 `json:"lazy_forward_allocs_per_op"`
	GoldilocksFwdNs     float64 `json:"goldilocks_forward_ns"`
	GoldilocksFwdVsElem float64 `json:"goldilocks_fwd_kernel_vs_element"`
}

func mustAgree128(ctx string, a, b []u128.U128) error {
	for i := range a {
		if !a[i].Equal(b[i]) {
			return fmt.Errorf("benchjson: %s paths disagree at %d", ctx, i)
		}
	}
	return nil
}

func mustAgree64(ctx string, a, b []uint64) error {
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("benchjson: %s paths disagree at %d", ctx, i)
		}
	}
	return nil
}

// runKernelComparison benchmarks kernel vs element-op (and lazy vs strict
// at 64 bits) and writes the PR 3 report.
func runKernelComparison(ctx *core.Context, path string) error {
	sizes := []int{1024, 4096, 16384}
	results := map[string]any{}
	var gateU128Seed, gateLazyElem float64

	for _, n := range sizes {
		// ---- 128-bit: kernel vs element vs seed reconstruction. ----
		plan, err := ctx.Plan(n)
		if err != nil {
			return err
		}
		r128 := ring.NewBarrett128(plan.Mod)
		kp := plan.Generic()
		ep, err := ring.NewPlan[u128.U128, ring.ElementOnly[u128.U128]](
			ring.ElementOnly[u128.U128]{Ring: r128}, n)
		if err != nil {
			return err
		}
		if !kp.HasSpanKernels() || ep.HasSpanKernels() {
			return fmt.Errorf("benchjson: kernel seam misconfigured at n=%d", n)
		}
		a := make([]u128.U128, n)
		b := make([]u128.U128, n)
		v := u128.From64(13)
		for j := 0; j < n; j++ {
			a[j] = v
			v = ctx.Add(ctx.Mul(v, u128.From64(0x9e3779b97f4a7c15)), u128.One)
			b[j] = v
			v = ctx.Add(ctx.Mul(v, u128.From64(0x9e3779b97f4a7c15)), u128.One)
		}
		kd, ed := make([]u128.U128, n), make([]u128.U128, n)
		kp.ForwardInto(kd, a)
		ep.ForwardInto(ed, a)
		if err := mustAgree128("u128 forward kernel/element", kd, ed); err != nil {
			return err
		}
		if err := mustAgree128("u128 forward kernel/seed", kd, seedForward(plan, a)); err != nil {
			return err
		}
		kp.PolyMulNegacyclicInto(kd, a, b)
		ep.PolyMulNegacyclicInto(ed, a, b)
		if err := mustAgree128("u128 polymul kernel/element", kd, ed); err != nil {
			return err
		}

		row128 := kernelRow128{
			KernelFwdNs:     bench(func() { kp.ForwardInto(kd, a) }),
			ElementFwdNs:    bench(func() { ep.ForwardInto(ed, a) }),
			SeedFwdNs:       bench(func() { seedForward(plan, a) }),
			KernelMulNs:     bench(func() { kp.PolyMulNegacyclicInto(kd, a, b) }),
			ElementMulNs:    bench(func() { ep.PolyMulNegacyclicInto(ed, a, b) }),
			KernelFwdAllocs: allocs(func() { kp.ForwardInto(kd, a) }),
		}
		row128.FwdKernelVsElement = row128.ElementFwdNs / row128.KernelFwdNs
		row128.FwdKernelVsSeed = row128.SeedFwdNs / row128.KernelFwdNs
		row128.MulKernelVsElement = row128.ElementMulNs / row128.KernelMulNs
		if n == 4096 {
			gateU128Seed = row128.FwdKernelVsSeed
		}

		// ---- 64-bit: lazy kernel vs strict kernel vs element ops. ----
		ps, err := modmath.FindNTTPrimes64(59, uint64(2*n), 1)
		if err != nil {
			return err
		}
		mod := modmath.MustModulus64(ps[0])
		lp, err := ring.NewPlan[uint64, ring.Shoup64](ring.NewShoup64(mod), n)
		if err != nil {
			return err
		}
		sp, err := ring.NewPlan[uint64, ring.Shoup64Strict](ring.NewShoup64Strict(mod), n)
		if err != nil {
			return err
		}
		e64, err := ring.NewPlan[uint64, ring.ElementOnly[uint64]](
			ring.ElementOnly[uint64]{Ring: ring.NewShoup64(mod)}, n)
		if err != nil {
			return err
		}
		a64 := make([]uint64, n)
		b64 := make([]uint64, n)
		for j := 0; j < n; j++ {
			a64[j] = uint64(j*2654435761+12345) % mod.Q
			b64[j] = uint64(j*40503+977) % mod.Q
		}
		ld, sd, ed64 := make([]uint64, n), make([]uint64, n), make([]uint64, n)
		lp.ForwardInto(ld, a64)
		sp.ForwardInto(sd, a64)
		e64.ForwardInto(ed64, a64)
		if err := mustAgree64("u64 forward lazy/strict", ld, sd); err != nil {
			return err
		}
		if err := mustAgree64("u64 forward lazy/element", ld, ed64); err != nil {
			return err
		}
		lp.PolyMulNegacyclicInto(ld, a64, b64)
		sp.PolyMulNegacyclicInto(sd, a64, b64)
		e64.PolyMulNegacyclicInto(ed64, a64, b64)
		if err := mustAgree64("u64 polymul lazy/strict", ld, sd); err != nil {
			return err
		}
		if err := mustAgree64("u64 polymul lazy/element", ld, ed64); err != nil {
			return err
		}

		row64 := kernelRow64{
			LazyFwdNs:     bench(func() { lp.ForwardInto(ld, a64) }),
			StrictFwdNs:   bench(func() { sp.ForwardInto(sd, a64) }),
			ElementFwdNs:  bench(func() { e64.ForwardInto(ed64, a64) }),
			LazyMulNs:     bench(func() { lp.PolyMulNegacyclicInto(ld, a64, b64) }),
			StrictMulNs:   bench(func() { sp.PolyMulNegacyclicInto(sd, a64, b64) }),
			ElementMulNs:  bench(func() { e64.PolyMulNegacyclicInto(ed64, a64, b64) }),
			LazyFwdAllocs: allocs(func() { lp.ForwardInto(ld, a64) }),
		}
		row64.FwdLazyVsElement = row64.ElementFwdNs / row64.LazyFwdNs
		row64.FwdLazyVsStrict = row64.StrictFwdNs / row64.LazyFwdNs
		row64.FwdStrictVsElement = row64.ElementFwdNs / row64.StrictFwdNs
		if n == 4096 {
			gateLazyElem = row64.FwdLazyVsElement
		}

		// Goldilocks: the specialized-prime instantiation on the same seam.
		gp, err := ring.NewPlan[uint64, ring.Goldilocks](ring.NewGoldilocks(), n)
		if err != nil {
			return err
		}
		ge, err := ring.NewPlan[uint64, ring.ElementOnly[uint64]](
			ring.ElementOnly[uint64]{Ring: ring.NewGoldilocks()}, n)
		if err != nil {
			return err
		}
		ag := make([]uint64, n)
		for j := 0; j < n; j++ {
			ag[j] = (uint64(j)*0x9e3779b97f4a7c15 + 1) % modmath.GoldilocksPrime
		}
		gd, ged := make([]uint64, n), make([]uint64, n)
		gp.ForwardInto(gd, ag)
		ge.ForwardInto(ged, ag)
		if err := mustAgree64("goldilocks forward kernel/element", gd, ged); err != nil {
			return err
		}
		row64.GoldilocksFwdNs = bench(func() { gp.ForwardInto(gd, ag) })
		row64.GoldilocksFwdVsElem = bench(func() { ge.ForwardInto(ged, ag) }) / row64.GoldilocksFwdNs

		results[fmt.Sprintf("n%d", n)] = map[string]any{
			"u128": row128,
			"u64":  row64,
		}
		fmt.Printf("n=%5d: u128 fwd kernel %.0f ns (%.2fx of element, %.2fx of seed); u64 fwd lazy %.0f ns (%.2fx of element, %.2fx of strict)\n",
			n, row128.KernelFwdNs, row128.FwdKernelVsElement, row128.FwdKernelVsSeed,
			row64.LazyFwdNs, row64.FwdLazyVsElement, row64.FwdLazyVsStrict)
	}

	report := map[string]any{
		"schema":         "mqxgo-bench/v1",
		"pr":             3,
		"generated_unix": time.Now().Unix(),
		"config": hostConfig(map[string]any{
			"sizes": sizes, "prime_bits_64": 59,
		}),
		"verified": true,
		"results":  results,
		"acceptance": map[string]any{
			"u128_fwd_vs_seed_n4096":        gateU128Seed,
			"u128_genericity_recovered":     gateU128Seed >= 2.9,
			"u64_lazy_fwd_vs_element_n4096": gateLazyElem,
			"u64_kernel_bar_met":            gateLazyElem >= 1.25,
		},
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (u128 fwd vs seed at n=4096: %.2fx; u64 lazy vs element: %.2fx)\n",
		path, gateU128Seed, gateLazyElem)
	return nil
}
