// Command benchjson measures the NTT engine against a faithful
// reconstruction of the seed implementation on the current host and writes
// the results as JSON (BENCH_PR1.json), starting the repo's performance
// trajectory. The seed comparator reproduces the pre-engine hot path
// exactly: two fresh N-sized buffers per transform, per-element
// blas.Vector.At twiddle reads, the generic u256-based Barrett reduction,
// a separate 1/N scaling pass on the inverse, and a batch dispatcher that
// spawns fresh goroutines and sends every transform index over an
// unbuffered channel. Outputs are cross-checked against the new engine
// before anything is timed.
//
// A second report (BENCH_PR2.json) benchmarks the paper's two hardware
// philosophies head to head on the generic ring engine: 128-bit
// double-word negacyclic multiplies versus k-tower RNS multiplies
// (tower-parallel MulAll against k x the single-tower sequential
// baseline) at n in {1024, 4096, 16384} and k in {2, 3, 4}.
//
// A third report (BENCH_PR3.json) measures the fused span-kernel seam:
// per width, the kernel path against the element-op fallback (the same
// plan over ring.ElementOnly) and, at 64 bits, lazy [0, 2q) reduction
// against the strict span kernels, at n in {1024, 4096, 16384}. Every
// path is cross-checked bit-exact before timing.
//
// A fourth report (BENCH_PR4.json) measures homomorphic
// ciphertext-ciphertext multiplication on the fhe.Backend seam: the BEHZ
// RNS pipeline (base-extend, tensor, divide-and-round, exact
// Shenoy-Kumaresan return, CRT-gadget relinearization — residues end to
// end) against the 128-bit oracle backend's exact integer tensor and
// big-int rescale, at n in {1024, 4096, 16384} and k in {2, 3, 4}
// towers. Decryptions are cross-checked bit-identical before timing.
//
// A fifth report (BENCH_PR5.json) measures the modulus-switching ladder:
// a depth-3 squaring chain down a k=4 RNS ladder at n=4096, with the
// BEHZ MulCt timed at every level (towers shrink with the level, so the
// series must fall), NTT-domain relinearization keys against the
// coefficient-domain layout, the 128-bit oracle multiply at the same
// levels, and the ModSwitch step itself — decryptions cross-checked
// bit-identical between backends after every multiply and every switch.
//
// Usage:
//
// A sixth report (BENCH_PR6.json) measures double-CRT residency: the
// same squaring ladder with NTT-resident ciphertexts, the resident MulCt
// against the retensoring pipeline in the same process (interleaved
// min-based timing), against the frozen BENCH_PR5 numbers, the resident
// ModSwitch, and a workers-1-vs-GOMAXPROCS tower-scaling probe — with
// the resident product checked bit-identical to the coefficient path at
// every level first.
//
// A ninth report (BENCH_PR9.json) measures the slot-packing layer: the
// per-level Galois rotation latency down the RNS ladder (single-hop,
// multi-hop and conjugation, steady-state into preallocated
// destinations) and the packed-vs-scalar-message MulCt amortization —
// one packed multiply buys n slot products — plus the full dot-product
// rotate-and-add fold. Both backends are gated against the plaintext
// slot model before anything is timed.
//
// Usage:
//
//	benchjson [-out BENCH_PR1.json] [-out2 BENCH_PR2.json] [-out3 BENCH_PR3.json] [-out4 BENCH_PR4.json] [-out5 BENCH_PR5.json] [-out6 BENCH_PR6.json] [-out7 BENCH_PR7.json] [-out9 BENCH_PR9.json] [-n 4096] [-batch 64] [-workers 8]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"mqxgo/internal/core"
	"mqxgo/internal/ntt"
	"mqxgo/internal/ring"
	"mqxgo/internal/rns"
	"mqxgo/internal/u128"
	"mqxgo/internal/u256"
)

// seedForward reproduces the seed Plan.ForwardNative byte for byte: fresh
// ping-pong buffers, Vector.At twiddle access, and the generic
// Mul-then-Reduce arithmetic path the seed's mod.Mul compiled to.
func seedForward(p *ntt.Plan, x []u128.U128) []u128.U128 {
	mod := p.Mod
	half := p.N / 2
	src := make([]u128.U128, p.N)
	copy(src, x)
	dst := make([]u128.U128, p.N)
	for s := 0; s < p.M; s++ {
		tw := p.FwdTw[s]
		for i := 0; i < half; i++ {
			a, b := src[i], src[i+half]
			w := tw.At(i)
			dst[2*i] = mod.Add(a, b)
			dst[2*i+1] = mod.Reduce(u256.MulSchoolbook(mod.Sub(a, b), w))
		}
		src, dst = dst, src
	}
	return src
}

// seedInverse reproduces the seed Plan.InverseNative, including the
// separate 1/N scaling pass.
func seedInverse(p *ntt.Plan, y []u128.U128) []u128.U128 {
	mod := p.Mod
	half := p.N / 2
	src := make([]u128.U128, p.N)
	copy(src, y)
	dst := make([]u128.U128, p.N)
	for s := p.M - 1; s >= 0; s-- {
		tw := p.InvTw[s]
		for i := 0; i < half; i++ {
			e, o := src[2*i], src[2*i+1]
			t := mod.Reduce(u256.MulSchoolbook(o, tw.At(i)))
			dst[i] = mod.Add(e, t)
			dst[i+half] = mod.Sub(e, t)
		}
		src, dst = dst, src
	}
	out := make([]u128.U128, p.N)
	for i := range src {
		out[i] = mod.Reduce(u256.MulSchoolbook(src[i], p.NInv))
	}
	return out
}

// seedBatchForward reproduces the seed Plan.BatchForward: fresh worker
// goroutines per call, one unbuffered channel send per transform index.
func seedBatchForward(p *ntt.Plan, inputs [][]u128.U128, workers int) [][]u128.U128 {
	out := make([][]u128.U128, len(inputs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(inputs) {
		workers = len(inputs)
	}
	if workers <= 1 {
		for i := range inputs {
			out[i] = seedForward(p, inputs[i])
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = seedForward(p, inputs[i])
			}
		}()
	}
	for i := range inputs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// hostConfig merges the host identification every report shares — OS,
// arch, GOMAXPROCS — plus the kernel tier the 64-bit plans select on this
// host (after the MQXGO_KERNEL_TIER override, clamped to what the CPU
// supports) and the detected vector features behind the selection, so
// numbers from different hosts or forced tiers are never conflated.
func hostConfig(cfg map[string]any) map[string]any {
	sel := ring.DetectKernelTier()
	if e := ring.EnvKernelTier(); e != ring.TierAuto && e < sel {
		sel = e
	}
	cfg["goos"] = runtime.GOOS
	cfg["goarch"] = runtime.GOARCH
	cfg["gomaxprocs"] = runtime.GOMAXPROCS(0)
	cfg["kernel_tier"] = sel.String()
	cfg["kernel_tier_detected"] = ring.DetectKernelTier().String()
	cfg["cpu_features"] = ring.CPUFeatures()
	return cfg
}

type opResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	NsPerUnit   float64 `json:"ns_per_unit,omitempty"`
	Unit        string  `json:"unit,omitempty"`
	UnitsPerSec float64 `json:"units_per_sec,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_PR1.json", "seed NTT report path (empty to skip)")
	out2 := flag.String("out2", "BENCH_PR2.json", "128-bit vs RNS report path (empty to skip)")
	out3 := flag.String("out3", "BENCH_PR3.json", "kernel vs element-op report path (empty to skip)")
	out4 := flag.String("out4", "BENCH_PR4.json", "homomorphic multiply report path (empty to skip)")
	out5 := flag.String("out5", "BENCH_PR5.json", "modulus ladder report path (empty to skip)")
	out6 := flag.String("out6", "BENCH_PR6.json", "resident-vs-retensor report path (empty to skip)")
	out7 := flag.String("out7", "BENCH_PR7.json", "vector kernel tier report path (empty to skip)")
	out9 := flag.String("out9", "BENCH_PR9.json", "rotation / packed workload report path (empty to skip)")
	n := flag.Int("n", 4096, "transform size (power of two)")
	batch := flag.Int("batch", 64, "transforms per batch")
	workers := flag.Int("workers", 8, "batch worker cap")
	flag.Parse()
	if *batch < 2 {
		log.Fatal("benchjson: -batch must be >= 2 (the polymul benchmark needs two operands)")
	}

	ctx := core.Default()
	plan, err := ctx.Plan(*n)
	if err != nil {
		log.Fatal(err)
	}

	if *out != "" {
		runSeedReport(ctx, plan, *out, *n, *batch, *workers)
	}

	if *out2 != "" {
		if err := runBackendComparison(ctx, *out2); err != nil {
			log.Fatal(err)
		}
	}
	if *out3 != "" {
		if err := runKernelComparison(ctx, *out3); err != nil {
			log.Fatal(err)
		}
	}
	if *out4 != "" {
		if err := runMulCtComparison(*out4); err != nil {
			log.Fatal(err)
		}
	}
	if *out5 != "" {
		if err := runLadderComparison(*out5); err != nil {
			log.Fatal(err)
		}
	}
	if *out6 != "" {
		if err := runResidentComparison(*out6); err != nil {
			log.Fatal(err)
		}
	}
	if *out7 != "" {
		if err := runSIMDComparison(*out7); err != nil {
			log.Fatal(err)
		}
	}
	if *out9 != "" {
		if err := runRotateComparison(*out9); err != nil {
			log.Fatal(err)
		}
	}
}

// runSeedReport is the original PR 1 report: the engine's forward,
// inverse, negacyclic polymul, and pooled batch transforms against their
// seed reconstructions, gated on exact agreement before any timing is
// trusted.
func runSeedReport(ctx *core.Context, plan *ntt.Plan, out string, n, batch, workers int) {
	inputs := make([][]u128.U128, batch)
	dsts := make([][]u128.U128, batch)
	v := u128.From64(7)
	for i := range inputs {
		xs := make([]u128.U128, n)
		for j := range xs {
			xs[j] = v
			v = ctx.Add(ctx.Mul(v, u128.From64(0x9e3779b97f4a7c15)), u128.One)
		}
		inputs[i] = xs
		dsts[i] = make([]u128.U128, n)
	}

	// Gate: the seed reconstruction and the engine must agree before any
	// timing is trusted.
	x := inputs[0]
	engF := make([]u128.U128, n)
	plan.ForwardInto(engF, x)
	if !equal(seedForward(plan, x), engF) {
		log.Fatal("benchjson: seed forward reconstruction disagrees with engine")
	}
	engI := make([]u128.U128, n)
	plan.InverseInto(engI, engF)
	if !equal(seedInverse(plan, engF), engI) {
		log.Fatal("benchjson: seed inverse reconstruction disagrees with engine")
	}
	if !equal(engI, x) {
		log.Fatal("benchjson: engine round trip failed")
	}

	butterflies := float64(n/2) * float64(plan.M)
	results := map[string]opResult{}

	fwdDst := make([]u128.U128, n)
	results["forward_into"] = perUnit(bench(func() { plan.ForwardInto(fwdDst, x) }),
		allocs(func() { plan.ForwardInto(fwdDst, x) }), butterflies, "butterfly")
	results["forward_seed"] = perUnit(bench(func() { seedForward(plan, x) }),
		allocs(func() { seedForward(plan, x) }), butterflies, "butterfly")
	results["inverse_into"] = perUnit(bench(func() { plan.InverseInto(fwdDst, engF) }),
		allocs(func() { plan.InverseInto(fwdDst, engF) }), butterflies, "butterfly")
	results["inverse_seed"] = perUnit(bench(func() { seedInverse(plan, engF) }),
		allocs(func() { seedInverse(plan, engF) }), butterflies, "butterfly")

	polyDst := make([]u128.U128, n)
	results["polymul_into"] = perUnit(bench(func() { plan.PolyMulNegacyclicInto(polyDst, inputs[0], inputs[1]) }),
		allocs(func() { plan.PolyMulNegacyclicInto(polyDst, inputs[0], inputs[1]) }), 1, "")

	results["batch_forward_pool"] = perUnit(bench(func() { plan.BatchForwardInto(dsts, inputs, workers) }),
		allocs(func() { plan.BatchForwardInto(dsts, inputs, workers) }), float64(batch), "transform")
	results["batch_forward_seed"] = perUnit(bench(func() { seedBatchForward(plan, inputs, workers) }),
		allocs(func() { seedBatchForward(plan, inputs, workers) }), float64(batch), "transform")

	report := map[string]any{
		"schema":         "mqxgo-bench/v1",
		"pr":             1,
		"generated_unix": time.Now().Unix(),
		"config": hostConfig(map[string]any{
			"n": n, "batch": batch, "workers": workers,
		}),
		"verified": true,
		"results":  results,
		"speedups": map[string]float64{
			"forward_vs_seed": results["forward_seed"].NsPerOp / results["forward_into"].NsPerOp,
			"inverse_vs_seed": results["inverse_seed"].NsPerOp / results["inverse_into"].NsPerOp,
			"batch_throughput_vs_seed": results["batch_forward_seed"].NsPerOp /
				results["batch_forward_pool"].NsPerOp,
		},
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
	fmt.Printf("forward: %.0f ns (seed %.0f ns, %.2fx); batch: %.0f ns/transform (seed %.0f, %.2fx throughput)\n",
		results["forward_into"].NsPerOp, results["forward_seed"].NsPerOp,
		report["speedups"].(map[string]float64)["forward_vs_seed"],
		results["batch_forward_pool"].NsPerOp/float64(batch),
		results["batch_forward_seed"].NsPerOp/float64(batch),
		report["speedups"].(map[string]float64)["batch_throughput_vs_seed"])

}

// rnsRow is the per-(n, k) comparison: the tower-parallel MulAll against
// both k x the single-tower sequential baseline (dispatch overhead) and
// the 128-bit double-word multiply at the same n (the paper's
// architectural trade-off).
type rnsRow struct {
	Towers          int     `json:"towers"`
	SingleTowerNs   float64 `json:"single_tower_polymul_ns"`
	MulAllSeqNs     float64 `json:"mulall_seq_ns"`
	MulAllParNs     float64 `json:"mulall_par_ns"`
	ParVsKxSingle   float64 `json:"par_vs_kx_single"` // mulall_par / (k * single_tower); <= 1.1 is the acceptance bar
	RNSParVsU128    float64 `json:"rns_par_vs_u128"`  // mulall_par / u128_polymul
	MulAllParAllocs float64 `json:"mulall_par_allocs_per_op"`
	MulAllSeqAllocs float64 `json:"mulall_seq_allocs_per_op"`
}

// runBackendComparison benchmarks 128-bit negacyclic multiplies against
// k-tower RNS multiplies on the shared generic engine and writes the PR 2
// report.
func runBackendComparison(ctx *core.Context, path string) error {
	sizes := []int{1024, 4096, 16384}
	towerCounts := []int{2, 3, 4}
	results := map[string]any{}
	var gate4096k4 float64

	for _, n := range sizes {
		plan, err := ctx.Plan(n)
		if err != nil {
			return err
		}
		a128 := make([]u128.U128, n)
		b128 := make([]u128.U128, n)
		v := u128.From64(11)
		for j := 0; j < n; j++ {
			a128[j] = v
			v = ctx.Add(ctx.Mul(v, u128.From64(0x9e3779b97f4a7c15)), u128.One)
			b128[j] = v
			v = ctx.Add(ctx.Mul(v, u128.From64(0x9e3779b97f4a7c15)), u128.One)
		}
		dst128 := make([]u128.U128, n)
		u128Res := perUnit(bench(func() { plan.PolyMulNegacyclicInto(dst128, a128, b128) }),
			allocs(func() { plan.PolyMulNegacyclicInto(dst128, a128, b128) }), 1, "")

		rows := map[string]rnsRow{}
		for _, k := range towerCounts {
			c, err := rns.NewContext(59, k, n)
			if err != nil {
				return err
			}
			ra, rb, dst := c.NewPoly(), c.NewPoly(), c.NewPoly()
			seq := c.NewPoly()
			for i := 0; i < k; i++ {
				for j := 0; j < n; j++ {
					ra.Res[i][j] = uint64(j*2847+i*13) % c.Mods[i].Q
					rb.Res[i][j] = uint64(j*9176+i*7) % c.Mods[i].Q
				}
			}
			// Gate: parallel and sequential tower dispatch must agree.
			if err := c.MulAll(dst, ra, rb, 0); err != nil {
				return err
			}
			if err := c.MulAll(seq, ra, rb, 1); err != nil {
				return err
			}
			for i := 0; i < k; i++ {
				for j := 0; j < n; j++ {
					if dst.Res[i][j] != seq.Res[i][j] {
						return fmt.Errorf("benchjson: parallel MulAll disagrees with sequential at n=%d k=%d", n, k)
					}
				}
			}

			p0 := c.Plans[0]
			row0 := make([]uint64, n)
			t1 := bench(func() { p0.PolyMulNegacyclicInto(row0, ra.Res[0], rb.Res[0]) })
			tSeq := bench(func() { _ = c.MulAll(dst, ra, rb, 1) })
			tPar := bench(func() { _ = c.MulAll(dst, ra, rb, 0) })
			row := rnsRow{
				Towers:          k,
				SingleTowerNs:   t1,
				MulAllSeqNs:     tSeq,
				MulAllParNs:     tPar,
				ParVsKxSingle:   tPar / (float64(k) * t1),
				RNSParVsU128:    tPar / u128Res.NsPerOp,
				MulAllSeqAllocs: allocs(func() { _ = c.MulAll(dst, ra, rb, 1) }),
				MulAllParAllocs: allocs(func() { _ = c.MulAll(dst, ra, rb, 0) }),
			}
			rows[fmt.Sprintf("k%d", k)] = row
			if n == 4096 && k == 4 {
				gate4096k4 = row.ParVsKxSingle
			}
			fmt.Printf("n=%5d k=%d: u128 %.0f ns, rns par %.0f ns (%.2fx of k*single, %.2fx of u128)\n",
				n, k, u128Res.NsPerOp, tPar, row.ParVsKxSingle, row.RNSParVsU128)
		}
		results[fmt.Sprintf("n%d", n)] = map[string]any{
			"u128_polymul": u128Res,
			"rns":          rows,
		}
	}

	report := map[string]any{
		"schema":         "mqxgo-bench/v1",
		"pr":             2,
		"generated_unix": time.Now().Unix(),
		"config": hostConfig(map[string]any{
			"sizes": sizes, "towers": towerCounts, "prime_bits": 59,
		}),
		"verified": true,
		"results":  results,
		"acceptance": map[string]any{
			"par_vs_kx_single_n4096_k4": gate4096k4,
			"within_10pct":              gate4096k4 <= 1.1,
		},
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (n=4096 k=4 parallel vs k*single: %.3f)\n", path, gate4096k4)
	return nil
}

func bench(f func()) float64 {
	f() // warm scratch pools and the worker pool
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f()
		}
	})
	return float64(r.NsPerOp())
}

func allocs(f func()) float64 {
	f()
	return testing.AllocsPerRun(10, f)
}

func perUnit(nsPerOp, allocsPerOp, units float64, unit string) opResult {
	r := opResult{NsPerOp: nsPerOp, AllocsPerOp: allocsPerOp}
	if unit != "" && units > 0 {
		r.NsPerUnit = nsPerOp / units
		r.Unit = unit
		r.UnitsPerSec = 1e9 / r.NsPerUnit
	}
	return r
}

func equal(a, b []u128.U128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
