package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"mqxgo/internal/fhe"
	"mqxgo/internal/modmath"
	"mqxgo/internal/rns"
)

// The PR 4 report: homomorphic ciphertext-ciphertext multiplication on
// the fhe.Backend seam, the BEHZ RNS pipeline (never leaving residue
// form) against the 128-bit oracle backend (exact integer tensor product
// plus exact big-int rescale), across n in {1024, 4096, 16384} and
// k in {2, 3, 4} towers. Before anything is timed, every configuration's
// decryption is cross-checked: the RNS product must decrypt bit-identical
// to the oracle's, and (up to n=4096) both must equal the schoolbook
// negacyclic product mod T.

const mulPlainMod = 257

// mulRow is one (n, k) measurement of the full MulCt hot path: tensor,
// divide-and-round, relinearization.
type mulRow struct {
	Towers        int     `json:"towers"`
	MulCtNs       float64 `json:"rns_mulct_ns"`
	MulCtAllocs   float64 `json:"rns_mulct_allocs_per_op"`
	RNSVsOracle   float64 `json:"rns_vs_oracle"` // rns_mulct / oracle_mulct; < 1 means RNS wins
	NoiseBits     int     `json:"depth1_noise_bits"`
	DeltaBits     int     `json:"delta_bits"`
	BudgetBitsOut int     `json:"depth1_budget_bits"`
}

// mulFixture is one backend's ready-to-multiply state.
type mulFixture struct {
	b        fhe.Backend
	s        *fhe.BackendScheme
	sk       fhe.BackendSecretKey
	rlk      fhe.BackendRelinKey
	c1, c2   fhe.BackendCiphertext
	dst      fhe.BackendCiphertext
	m1, m2   []uint64
	expected []uint64
}

func newMulFixture(b fhe.Backend, seed int64, n int) (*mulFixture, error) {
	f := &mulFixture{b: b, s: fhe.NewBackendScheme(b, seed)}
	f.sk = f.s.KeyGen()
	rlk, err := f.s.RelinKeyGen(f.sk)
	if err != nil {
		return nil, err
	}
	f.rlk = rlk
	rng := rand.New(rand.NewSource(seed * 31))
	f.m1 = make([]uint64, n)
	f.m2 = make([]uint64, n)
	for i := range f.m1 {
		f.m1[i] = rng.Uint64() % mulPlainMod
		f.m2[i] = rng.Uint64() % mulPlainMod
	}
	if f.c1, err = f.s.Encrypt(f.sk, f.m1); err != nil {
		return nil, err
	}
	if f.c2, err = f.s.Encrypt(f.sk, f.m2); err != nil {
		return nil, err
	}
	// Encrypt returns NTT-resident ciphertexts since the residency PR; the
	// destination handle must carry the operands' domain tag (and level)
	// before the call, per the Backend.MulCt contract.
	f.dst = fhe.BackendCiphertext{A: b.NewPoly(), B: b.NewPoly(), Domain: f.c1.Domain, Level: f.c1.Level}
	if err := b.MulCt(&f.dst, f.c1, f.c2, f.rlk); err != nil {
		return nil, err
	}
	if f.expected, err = f.s.Decrypt(f.sk, f.dst); err != nil {
		return nil, err
	}
	return f, nil
}

// runMulCtComparison benchmarks the BEHZ multiply against the oracle and
// writes the PR 4 report.
func runMulCtComparison(path string) error {
	sizes := []int{1024, 4096, 16384}
	towerCounts := []int{2, 3, 4}
	results := map[string]any{}
	var gateK2 []float64

	for _, n := range sizes {
		params, err := fhe.NewParams(modmath.DefaultModulus128(), n, mulPlainMod)
		if err != nil {
			return err
		}
		oracleFix, err := newMulFixture(fhe.NewRingBackend(params), 1000+int64(n), n)
		if err != nil {
			return err
		}
		if n <= 4096 {
			want := fhe.NegacyclicProductModT(oracleFix.m1, oracleFix.m2, mulPlainMod)
			for i := range want {
				if oracleFix.expected[i] != want[i] {
					return fmt.Errorf("benchjson: oracle MulCt wrong at n=%d coeff %d", n, i)
				}
			}
		}
		oracleNs := bench(func() { _ = oracleFix.b.MulCt(&oracleFix.dst, oracleFix.c1, oracleFix.c2, oracleFix.rlk) })

		rows := map[string]mulRow{}
		for _, k := range towerCounts {
			c, err := rns.NewContext(59, k, n)
			if err != nil {
				return err
			}
			rb, err := fhe.NewRNSBackend(c, mulPlainMod)
			if err != nil {
				return err
			}
			fix, err := newMulFixture(rb, 1000+int64(n), n)
			if err != nil {
				return err
			}
			// Gate: the differential acceptance criterion, re-verified on
			// the bench host before timing. Same messages, so the
			// decrypted products must be bit-identical to the oracle's.
			for i := range fix.expected {
				if fix.expected[i] != oracleFix.expected[i] {
					return fmt.Errorf("benchjson: %s MulCt disagrees with oracle at n=%d coeff %d", rb.Name(), n, i)
				}
			}
			ns := bench(func() { _ = rb.MulCt(&fix.dst, fix.c1, fix.c2, fix.rlk) })
			noise, err := fix.s.NoiseBits(fix.sk, fix.dst, fix.expected)
			if err != nil {
				return err
			}
			budget, err := fix.s.NoiseBudgetBits(fix.sk, fix.dst, fix.expected)
			if err != nil {
				return err
			}
			row := mulRow{
				Towers:        k,
				MulCtNs:       ns,
				MulCtAllocs:   allocs(func() { _ = rb.MulCt(&fix.dst, fix.c1, fix.c2, fix.rlk) }),
				RNSVsOracle:   ns / oracleNs,
				NoiseBits:     noise,
				DeltaBits:     rb.DeltaBits(0),
				BudgetBitsOut: budget,
			}
			rows[fmt.Sprintf("k%d", k)] = row
			if k == 2 {
				gateK2 = append(gateK2, row.RNSVsOracle)
			}
			fmt.Printf("n=%5d k=%d: oracle mulct %.0f ns, rns mulct %.0f ns (%.3fx of oracle), depth-1 budget %d bits\n",
				n, k, oracleNs, ns, row.RNSVsOracle, budget)
		}
		results[fmt.Sprintf("n%d", n)] = map[string]any{
			"oracle_mulct_ns": oracleNs,
			"rns":             rows,
		}
	}

	allK2Win := true
	for _, r := range gateK2 {
		if r >= 1 {
			allK2Win = false
		}
	}
	report := map[string]any{
		"schema":         "mqxgo-bench/v1",
		"pr":             4,
		"generated_unix": time.Now().Unix(),
		"config": hostConfig(map[string]any{
			"sizes": sizes, "towers": towerCounts, "prime_bits": 59, "plain_modulus": mulPlainMod,
		}),
		"verified": true,
		"results":  results,
		"acceptance": map[string]any{
			"rns_k2_vs_oracle": gateK2,
			"k2_beats_oracle":  allK2Win,
		},
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (k=2 beats oracle at every n: %v)\n", path, allK2Win)
	return nil
}
