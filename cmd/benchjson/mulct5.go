package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"mqxgo/internal/fhe"
	"mqxgo/internal/modmath"
	"mqxgo/internal/rns"
)

// The PR 5 report: the modulus-switching ladder on the Backend seam. A
// depth-3 squaring chain runs down a k=4 RNS ladder (ModSwitch after
// every multiply) next to the 128-bit oracle's own ladder; before
// anything is timed, the two backends' decryptions are cross-checked
// bit-identical after every multiply AND after every DropLevel. Each
// level then gets three timings: the BEHZ MulCt with the default
// NTT-domain relinearization keys, the same multiply with
// coefficient-domain keys (the PR 4-style layout, paying its per-multiply
// key transforms), and the oracle multiply — plus the ModSwitch step
// itself with its allocs/op.

// ladderLevelRow is one level's measurements.
type ladderLevelRow struct {
	Level           int     `json:"level"`
	Towers          int     `json:"towers"`
	MulCtNs         float64 `json:"rns_mulct_ns"`
	MulCtCoeffNs    float64 `json:"rns_mulct_coeff_keys_ns"`
	NTTVsCoeffKeys  float64 `json:"ntt_keys_vs_coeff_keys"` // < 1 means NTT-domain keys win
	OracleMulCtNs   float64 `json:"oracle_mulct_ns"`
	RNSVsOracle     float64 `json:"rns_vs_oracle"`
	MulCtAllocs     float64 `json:"rns_mulct_allocs_per_op"`
	ModSwitchNs     float64 `json:"rns_modswitch_ns,omitempty"`
	ModSwitchAllocs float64 `json:"rns_modswitch_allocs_per_op"`
	BudgetBits      int     `json:"budget_bits_after_mul"`
}

// runLadderComparison benchmarks the k=4 ladder at n=4096 and writes the
// PR 5 report.
func runLadderComparison(path string) error {
	const n = 4096
	const k = 4
	const T = mulPlainMod
	const depth = 3

	params, err := fhe.NewParams(modmath.DefaultModulus128(), n, T)
	if err != nil {
		return err
	}
	oracle := fhe.NewRingBackend(params)
	c, err := rns.NewContext(59, k, n)
	if err != nil {
		return err
	}
	rb, err := fhe.NewRNSBackend(c, T)
	if err != nil {
		return err
	}
	ckg, ok := rb.(fhe.CoeffDomainRelinKeyGenerator)
	if !ok {
		return fmt.Errorf("benchjson: RNS backend lost the coeff-domain key axis")
	}

	type chain struct {
		s        *fhe.BackendScheme
		sk       fhe.BackendSecretKey
		rlk      fhe.BackendRelinKey
		ct       fhe.BackendCiphertext
		expected []uint64
	}
	newChain := func(b fhe.Backend, genKey bool) (*chain, error) {
		ch := &chain{s: fhe.NewBackendScheme(b, 555)}
		ch.sk = ch.s.KeyGen()
		if genKey {
			rlk, err := ch.s.RelinKeyGen(ch.sk)
			if err != nil {
				return nil, err
			}
			ch.rlk = rlk
		}
		rng := rand.New(rand.NewSource(999))
		msg := make([]uint64, n)
		for i := range msg {
			msg[i] = rng.Uint64() % T
		}
		ch.expected = msg
		var err error
		ch.ct, err = ch.s.Encrypt(ch.sk, msg)
		return ch, err
	}
	oc, err := newChain(oracle, true)
	if err != nil {
		return err
	}
	rc, err := newChain(rb, false)
	if err != nil {
		return err
	}
	// Both key layouts from identically seeded generators: the multiply
	// outputs must then be bit-identical, making the NTT-vs-coefficient
	// comparison purely about layout cost.
	rc.rlk = rb.RelinKeyGen(rc.sk.S, rand.New(rand.NewSource(556)))
	rlkCoeff := ckg.RelinKeyGenCoeffDomain(rc.sk.S, rand.New(rand.NewSource(556)))

	verify := func(stage string) error {
		og, err := oc.s.Decrypt(oc.sk, oc.ct)
		if err != nil {
			return err
		}
		rg, err := rc.s.Decrypt(rc.sk, rc.ct)
		if err != nil {
			return err
		}
		for i := range og {
			if og[i] != rg[i] {
				return fmt.Errorf("benchjson: ladder decryptions diverge %s at coeff %d", stage, i)
			}
		}
		return nil
	}

	levels := map[string]ladderLevelRow{}
	var mulSeries, nttVsCoeff []float64
	for level := 0; level < depth; level++ {
		// Timing fixtures at this level: square the current chain state.
		// The chains rest in the NTT domain since PR 6; this report is the
		// PR 5 baseline, so the fixtures cross to coefficient form and time
		// the coefficient-domain pipeline (BENCH_PR6 times the resident
		// one).
		rnsDst := fhe.BackendCiphertext{A: rb.NewPolyAt(level), B: rb.NewPolyAt(level), Level: level}
		oraDst := fhe.BackendCiphertext{A: oracle.NewPolyAt(level), B: oracle.NewPolyAt(level), Level: level}
		rct, err := rc.s.ConvertDomain(rc.ct, fhe.DomainCoeff)
		if err != nil {
			return err
		}
		oct, err := oc.s.ConvertDomain(oc.ct, fhe.DomainCoeff)
		if err != nil {
			return err
		}
		if err := rb.MulCt(&rnsDst, rct, rct, rc.rlk); err != nil {
			return err
		}
		coeffDst := fhe.BackendCiphertext{A: rb.NewPolyAt(level), B: rb.NewPolyAt(level), Level: level}
		if err := rb.MulCt(&coeffDst, rct, rct, rlkCoeff); err != nil {
			return err
		}
		// Gate: the coefficient-domain key path must produce the identical
		// ciphertext — it is the same math, laid out differently. Both
		// components matter: B is where the s^2 relin term accumulates.
		for ci, pair := range [2][2]fhe.Poly{{rnsDst.A, coeffDst.A}, {rnsDst.B, coeffDst.B}} {
			for i, row := range pair[0].(rns.Poly).Res {
				for j, v := range row {
					if pair[1].(rns.Poly).Res[i][j] != v {
						return fmt.Errorf("benchjson: coeff-domain relin diverges at level %d component %d tower %d coeff %d", level, ci, i, j)
					}
				}
			}
		}
		rnsNs := bench(func() { _ = rb.MulCt(&rnsDst, rct, rct, rc.rlk) })
		coeffNs := bench(func() { _ = rb.MulCt(&coeffDst, rct, rct, rlkCoeff) })
		oraNs := bench(func() { _ = oracle.MulCt(&oraDst, oct, oct, oc.rlk) })
		row := ladderLevelRow{
			Level:          level,
			Towers:         k - level,
			MulCtNs:        rnsNs,
			MulCtCoeffNs:   coeffNs,
			NTTVsCoeffKeys: rnsNs / coeffNs,
			OracleMulCtNs:  oraNs,
			RNSVsOracle:    rnsNs / oraNs,
			MulCtAllocs:    allocs(func() { _ = rb.MulCt(&rnsDst, rct, rct, rc.rlk) }),
		}

		// Advance both chains through the multiply just measured.
		var e1, e2 error
		oc.ct, e1 = oc.s.MulCiphertexts(oc.ct, oc.ct, oc.rlk)
		rc.ct, e2 = rc.s.MulCiphertexts(rc.ct, rc.ct, rc.rlk)
		if e1 != nil || e2 != nil {
			return fmt.Errorf("benchjson: ladder multiply at level %d: %v %v", level, e1, e2)
		}
		rc.expected = fhe.NegacyclicProductModT(rc.expected, rc.expected, T)
		if err := verify(fmt.Sprintf("after mul at level %d", level)); err != nil {
			return err
		}
		budget, err := rc.s.NoiseBudgetBits(rc.sk, rc.ct, rc.expected)
		if err != nil {
			return err
		}
		row.BudgetBits = budget

		if level < depth-1 {
			// Time the switch, then take it on both chains.
			swDst := fhe.BackendCiphertext{A: rb.NewPolyAt(level + 1), B: rb.NewPolyAt(level + 1), Level: level + 1}
			src, err := rc.s.ConvertDomain(rc.ct, fhe.DomainCoeff)
			if err != nil {
				return err
			}
			if err := rb.ModSwitch(&swDst, src); err != nil {
				return err
			}
			row.ModSwitchNs = bench(func() { _ = rb.ModSwitch(&swDst, src) })
			row.ModSwitchAllocs = allocs(func() { _ = rb.ModSwitch(&swDst, src) })
			if oc.ct, err = oc.s.ModSwitch(oc.ct); err != nil {
				return err
			}
			if rc.ct, err = rc.s.ModSwitch(rc.ct); err != nil {
				return err
			}
			if err := verify(fmt.Sprintf("after switch to level %d", level+1)); err != nil {
				return err
			}
		}
		levels[fmt.Sprintf("level%d", level)] = row
		mulSeries = append(mulSeries, rnsNs)
		nttVsCoeff = append(nttVsCoeff, row.NTTVsCoeffKeys)
		fmt.Printf("ladder level %d (k=%d): rns mulct %.0f ns (coeff keys %.0f ns, %.3fx), oracle %.0f ns, budget %d bits\n",
			level, k-level, rnsNs, coeffNs, row.NTTVsCoeffKeys, oraNs, row.BudgetBits)
	}

	decreasing := true
	for i := 1; i < len(mulSeries); i++ {
		if mulSeries[i] >= mulSeries[i-1] {
			decreasing = false
		}
	}
	nttWins := true
	for _, r := range nttVsCoeff {
		if r >= 1 {
			nttWins = false
		}
	}
	report := map[string]any{
		"schema":         "mqxgo-bench/v1",
		"pr":             5,
		"generated_unix": time.Now().Unix(),
		"config": hostConfig(map[string]any{
			"n": n, "towers": k, "depth": depth, "prime_bits": 59, "plain_modulus": T,
		}),
		"verified": true,
		"results":  levels,
		"acceptance": map[string]any{
			"mulct_ns_by_level":          mulSeries,
			"strictly_decreasing":        decreasing,
			"ntt_keys_beat_coeff_keys":   nttWins,
			"ntt_keys_vs_coeff_by_level": nttVsCoeff,
		},
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (per-level MulCt strictly decreasing: %v; NTT keys beat coeff keys at every level: %v)\n",
		path, decreasing, nttWins)
	return nil
}
