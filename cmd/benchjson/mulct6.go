package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"mqxgo/internal/fhe"
	"mqxgo/internal/modmath"
	"mqxgo/internal/rns"
)

// The PR 6 report: double-CRT residency. The same depth-3 squaring chain
// as BENCH_PR5 (n=4096, k=4, identical seeds) runs with NTT-resident
// ciphertexts, and at every level the resident MulCt is timed against
// the retensoring pipeline (the PR 5 coefficient path, same process,
// same kernels) and against the frozen numbers recorded in
// BENCH_PR5.json. Before timing, the resident product is checked
// bit-identical to the coefficient product, and the chain's decryptions
// are cross-checked against the 128-bit oracle after every multiply and
// every DropLevel. Timings are min-of-interleaved pairs: the two
// pipelines alternate within one loop so host-load drift hits both, and
// the minimum is taken as the contention-free estimate.

// pr5Recorded freezes the BENCH_PR5.json acceptance series this report
// compares against (the same chain, pre-residency).
var pr5Recorded = struct {
	mulctNs     []float64
	modswitchNs []float64
}{
	mulctNs:     []float64{12775913, 9257836, 6573280},
	modswitchNs: []float64{197552, 117015},
}

// residentLevelRow is one level's measurements.
type residentLevelRow struct {
	Level              int     `json:"level"`
	Towers             int     `json:"towers"`
	ResidentNs         float64 `json:"resident_mulct_ns"`
	RetensorNs         float64 `json:"retensor_mulct_ns"`
	ResidentVsRetensor float64 `json:"resident_vs_retensor"` // retensor/resident; > 1 means residency wins
	PR5RecordedNs      float64 `json:"pr5_recorded_mulct_ns"`
	ResidentVsPR5      float64 `json:"resident_vs_pr5_recorded"` // pr5/resident; host drift caveat applies
	ResidentAllocs     float64 `json:"resident_mulct_allocs_per_op"`
	ModSwitchNs        float64 `json:"resident_modswitch_ns,omitempty"`
	ModSwitchAllocs    float64 `json:"resident_modswitch_allocs_per_op"`
	BudgetBits         int     `json:"budget_bits_after_mul"`
}

// minInterleaved times the given closures round-robin and returns each
// one's minimum over the rounds. Interleaving is the point: the host
// this runs on shows tens-of-percent load drift over seconds, and
// alternating the contenders inside one loop exposes both to the same
// windows, making the per-round minimum a fair contention-free estimate.
func minInterleaved(rounds int, fs ...func()) []float64 {
	mins := make([]float64, len(fs))
	for i := range mins {
		mins[i] = math.MaxFloat64
	}
	for i, f := range fs {
		f() // warm scratch pools before timing
		_ = i
	}
	for r := 0; r < rounds; r++ {
		for i, f := range fs {
			st := time.Now()
			f()
			if d := float64(time.Since(st).Nanoseconds()); d < mins[i] {
				mins[i] = d
			}
		}
	}
	return mins
}

// runResidentComparison benchmarks the resident ladder at n=4096/k=4 and
// writes the PR 6 report.
func runResidentComparison(path string) error {
	const n = 4096
	const k = 4
	const T = mulPlainMod
	const depth = 3
	const rounds = 40

	oracle, rb, err := ladderBackends(n, k)
	if err != nil {
		return err
	}
	oc, err := newLadderChain(oracle, n, true)
	if err != nil {
		return err
	}
	rc, err := newLadderChain(rb, n, false)
	if err != nil {
		return err
	}
	rc.rlk = rb.RelinKeyGen(rc.sk.S, rand.New(rand.NewSource(556)))

	verify := func(stage string) error {
		og, err := oc.s.Decrypt(oc.sk, oc.ct)
		if err != nil {
			return err
		}
		rg, err := rc.s.Decrypt(rc.sk, rc.ct)
		if err != nil {
			return err
		}
		for i := range og {
			if og[i] != rg[i] {
				return fmt.Errorf("benchjson: resident ladder decryptions diverge %s at coeff %d", stage, i)
			}
		}
		return nil
	}

	levels := map[string]residentLevelRow{}
	var residentSeries, vsRetensor, vsPR5 []float64
	allocClean := true
	for level := 0; level < depth; level++ {
		// Fixtures: the chain rests in the NTT domain, so the resident
		// fixture squares it in place; the retensor fixture crosses the
		// operands to coefficient form first — the exact PR 5 pipeline,
		// sharing this build's kernels (blocked twiddles, wide
		// conversions), so the ratio isolates residency itself.
		resDst := fhe.BackendCiphertext{A: rb.NewPolyAt(level), B: rb.NewPolyAt(level), Level: level, Domain: fhe.DomainNTT}
		coeffDst := fhe.BackendCiphertext{A: rb.NewPolyAt(level), B: rb.NewPolyAt(level), Level: level}
		rct, err := rc.s.ConvertDomain(rc.ct, fhe.DomainCoeff)
		if err != nil {
			return err
		}
		if err := rb.MulCt(&resDst, rc.ct, rc.ct, rc.rlk); err != nil {
			return err
		}
		if err := rb.MulCt(&coeffDst, rct, rct, rc.rlk); err != nil {
			return err
		}
		// Gate: residency is a layout, not a different multiply — the
		// resident product crossed back to coefficient form must be
		// bit-identical to the coefficient pipeline's product.
		resAsCoeff, err := rc.s.ConvertDomain(resDst, fhe.DomainCoeff)
		if err != nil {
			return err
		}
		for ci, pair := range [2][2]fhe.Poly{{resAsCoeff.A, coeffDst.A}, {resAsCoeff.B, coeffDst.B}} {
			for i, row := range pair[0].(rns.Poly).Res {
				for j, v := range row {
					if pair[1].(rns.Poly).Res[i][j] != v {
						return fmt.Errorf("benchjson: resident multiply diverges from coefficient path at level %d component %d tower %d coeff %d", level, ci, i, j)
					}
				}
			}
		}
		mins := minInterleaved(rounds,
			func() { _ = rb.MulCt(&resDst, rc.ct, rc.ct, rc.rlk) },
			func() { _ = rb.MulCt(&coeffDst, rct, rct, rc.rlk) },
		)
		row := residentLevelRow{
			Level:              level,
			Towers:             k - level,
			ResidentNs:         mins[0],
			RetensorNs:         mins[1],
			ResidentVsRetensor: mins[1] / mins[0],
			PR5RecordedNs:      pr5Recorded.mulctNs[level],
			ResidentVsPR5:      pr5Recorded.mulctNs[level] / mins[0],
			ResidentAllocs:     allocs(func() { _ = rb.MulCt(&resDst, rc.ct, rc.ct, rc.rlk) }),
		}
		if row.ResidentAllocs != 0 {
			allocClean = false
		}

		var e1, e2 error
		oc.ct, e1 = oc.s.MulCiphertexts(oc.ct, oc.ct, oc.rlk)
		rc.ct, e2 = rc.s.MulCiphertexts(rc.ct, rc.ct, rc.rlk)
		if e1 != nil || e2 != nil {
			return fmt.Errorf("benchjson: resident ladder multiply at level %d: %v %v", level, e1, e2)
		}
		rc.expected = fhe.NegacyclicProductModT(rc.expected, rc.expected, T)
		if err := verify(fmt.Sprintf("after mul at level %d", level)); err != nil {
			return err
		}
		budget, err := rc.s.NoiseBudgetBits(rc.sk, rc.ct, rc.expected)
		if err != nil {
			return err
		}
		row.BudgetBits = budget

		if level < depth-1 {
			// The resident switch: NTT-domain source and destination.
			swDst := fhe.BackendCiphertext{A: rb.NewPolyAt(level + 1), B: rb.NewPolyAt(level + 1), Level: level + 1, Domain: fhe.DomainNTT}
			if err := rb.ModSwitch(&swDst, rc.ct); err != nil {
				return err
			}
			row.ModSwitchNs = minInterleaved(rounds, func() { _ = rb.ModSwitch(&swDst, rc.ct) })[0]
			row.ModSwitchAllocs = allocs(func() { _ = rb.ModSwitch(&swDst, rc.ct) })
			if row.ModSwitchAllocs != 0 {
				allocClean = false
			}
			if oc.ct, err = oc.s.ModSwitch(oc.ct); err != nil {
				return err
			}
			if rc.ct, err = rc.s.ModSwitch(rc.ct); err != nil {
				return err
			}
			if err := verify(fmt.Sprintf("after switch to level %d", level+1)); err != nil {
				return err
			}
		}
		levels[fmt.Sprintf("level%d", level)] = row
		residentSeries = append(residentSeries, mins[0])
		vsRetensor = append(vsRetensor, row.ResidentVsRetensor)
		vsPR5 = append(vsPR5, row.ResidentVsPR5)
		fmt.Printf("resident level %d (k=%d): resident %.0f ns, retensor %.0f ns (%.3fx), vs PR5 recorded %.0f ns (%.3fx), budget %d bits\n",
			level, k-level, mins[0], mins[1], row.ResidentVsRetensor, row.PR5RecordedNs, row.ResidentVsPR5, row.BudgetBits)
	}

	decreasing := true
	steeper := true
	for i := 1; i < len(residentSeries); i++ {
		if residentSeries[i] >= residentSeries[i-1] {
			decreasing = false
		}
		// Steeper per-level decrease than PR 5: the level-to-level cost
		// ratio must be below PR 5's at the same step.
		if residentSeries[i]/residentSeries[i-1] >= pr5Recorded.mulctNs[i]/pr5Recorded.mulctNs[i-1] {
			steeper = false
		}
	}

	scaling, err := towerScaling(n, k, rounds)
	if err != nil {
		return err
	}

	report := map[string]any{
		"schema":         "mqxgo-bench/v1",
		"pr":             6,
		"generated_unix": time.Now().Unix(),
		"config": hostConfig(map[string]any{
			"n": n, "towers": k, "depth": depth, "prime_bits": 59, "plain_modulus": T,
			"host_cpus": runtime.NumCPU(),
			"timing":    fmt.Sprintf("min of %d interleaved rounds per contender", rounds),
		}),
		"verified":      true,
		"results":       levels,
		"tower_scaling": scaling,
		"acceptance": map[string]any{
			"resident_mulct_ns_by_level":        residentSeries,
			"resident_vs_retensor_by_level":     vsRetensor,
			"resident_vs_pr5_recorded_by_level": vsPR5,
			"strictly_decreasing":               decreasing,
			"steeper_than_pr5":                  steeper,
			"resident_path_zero_allocs":         allocClean,
		},
	}
	// The near-kx tower-parallel claim only belongs in the acceptance
	// block when the parallel axis actually ran parallel; on 1-CPU hosts
	// the tower_scaling section is stamped "placeholder": true instead.
	if !scalingIsPlaceholder() {
		if sp, ok := scaling["speedup"].(float64); ok {
			report["acceptance"].(map[string]any)["tower_parallel_speedup"] = sp
		}
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (strictly decreasing: %v, steeper than PR5: %v, resident path 0 allocs: %v)\n",
		path, decreasing, steeper, allocClean)
	return nil
}

// ladderBackends builds the oracle and RNS backends for the ladder shape.
func ladderBackends(n, k int) (fhe.Backend, fhe.Backend, error) {
	params, err := fhe.NewParams(modmath.DefaultModulus128(), n, mulPlainMod)
	if err != nil {
		return nil, nil, err
	}
	oracle := fhe.NewRingBackend(params)
	c, err := rns.NewContext(59, k, n)
	if err != nil {
		return nil, nil, err
	}
	rb, err := fhe.NewRNSBackend(c, mulPlainMod)
	if err != nil {
		return nil, nil, err
	}
	return oracle, rb, nil
}

// ladderChain is one backend's keyed squaring chain.
type ladderChain struct {
	s        *fhe.BackendScheme
	sk       fhe.BackendSecretKey
	rlk      fhe.BackendRelinKey
	ct       fhe.BackendCiphertext
	expected []uint64
}

// newLadderChain seeds a chain identically to the PR 5 report so the two
// reports describe the same computation.
func newLadderChain(b fhe.Backend, n int, genKey bool) (*ladderChain, error) {
	ch := &ladderChain{s: fhe.NewBackendScheme(b, 555)}
	ch.sk = ch.s.KeyGen()
	if genKey {
		rlk, err := ch.s.RelinKeyGen(ch.sk)
		if err != nil {
			return nil, err
		}
		ch.rlk = rlk
	}
	rng := rand.New(rand.NewSource(999))
	msg := make([]uint64, n)
	for i := range msg {
		msg[i] = rng.Uint64() % mulPlainMod
	}
	ch.expected = msg
	var err error
	ch.ct, err = ch.s.Encrypt(ch.sk, msg)
	return ch, err
}

// towerScaling measures the resident MulCt at workers=1 against the
// GOMAXPROCS worker pool on a fresh level-0 fixture. On a host where
// the parallel axis cannot actually run parallel (one CPU, or
// GOMAXPROCS pinned to 1) the ~1x it reports is scheduling overhead,
// not a scaling measurement — the section stamps "placeholder": true
// so downstream readers never mistake it for one, and host_cpus /
// gomaxprocs record why.
func towerScaling(n, k, rounds int) (map[string]any, error) {
	c, err := rns.NewContext(59, k, n)
	if err != nil {
		return nil, err
	}
	seq, err := fhe.NewRNSBackendWorkers(c, mulPlainMod, 1)
	if err != nil {
		return nil, err
	}
	par, err := fhe.NewRNSBackendWorkers(c, mulPlainMod, 0)
	if err != nil {
		return nil, err
	}
	run := func(b fhe.Backend) (func(), error) {
		s := fhe.NewBackendScheme(b, 555)
		sk := s.KeyGen()
		rlk := b.RelinKeyGen(sk.S, rand.New(rand.NewSource(556)))
		msg := make([]uint64, n)
		ct, err := s.Encrypt(sk, msg)
		if err != nil {
			return nil, err
		}
		dst := fhe.BackendCiphertext{A: b.NewPolyAt(0), B: b.NewPolyAt(0), Domain: fhe.DomainNTT}
		return func() { _ = b.MulCt(&dst, ct, ct, rlk) }, nil
	}
	seqOp, err := run(seq)
	if err != nil {
		return nil, err
	}
	parOp, err := run(par)
	if err != nil {
		return nil, err
	}
	mins := minInterleaved(rounds, seqOp, parOp)
	out := map[string]any{
		"workers1_mulct_ns":   mins[0],
		"gomaxprocs_mulct_ns": mins[1],
		"speedup":             mins[0] / mins[1],
		"gomaxprocs":          runtime.GOMAXPROCS(0),
		"host_cpus":           runtime.NumCPU(),
	}
	if scalingIsPlaceholder() {
		out["placeholder"] = true
	}
	return out, nil
}

// scalingIsPlaceholder reports whether the tower_scaling section can be
// a real measurement on this host: both axes need at least two CPUs the
// runtime is allowed to use.
func scalingIsPlaceholder() bool {
	return runtime.NumCPU() < 2 || runtime.GOMAXPROCS(0) < 2
}
