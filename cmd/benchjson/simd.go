package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
	"mqxgo/internal/perfmodel"
	"mqxgo/internal/ring"
)

// The PR 7 report: the vector kernel tier below the span seam, measured
// the way the paper costs hardware — model first, then silicon. The
// performance-model VM records, schedules and ranks the candidate lazy
// butterfly bodies (dense and blocked, at scalar/AVX2/AVX-512) on the
// calibrated machine descriptions, and those predicted speedups are
// written next to the measured ones: per tier the host supports, forced
// plans (ring.NewShoup64Tier) run forward, inverse, and negacyclic
// multiply at n in {1024, 4096, 16384} against the pinned scalar-kernel
// plan — after every tier's outputs are cross-checked bit-identical to
// the scalar kernels, which remain the ground truth. The acceptance gate
// is the tentpole claim: the vector forward transform beats the PR 3
// scalar kernel at n=4096. An Amdahl projection (perfmodel.MulCtSpeedup)
// then bounds what the measured butterfly speedup is worth to the whole
// resident BEHZ multiply, using the transform census of the k=4 ladder.

// simdTierRow is one (n, tier) measurement against the scalar-tier plan.
type simdTierRow struct {
	FwdNs      float64 `json:"forward_ns"`
	InvNs      float64 `json:"inverse_ns"`
	MulNs      float64 `json:"polymul_ns"`
	FwdSpeedup float64 `json:"forward_speedup_vs_scalar"`
	InvSpeedup float64 `json:"inverse_speedup_vs_scalar"`
	MulSpeedup float64 `json:"polymul_speedup_vs_scalar"`
	FwdAllocs  float64 `json:"forward_allocs_per_op"`
}

// runSIMDComparison benchmarks the vector kernel tiers and writes the
// PR 7 report.
func runSIMDComparison(path string) error {
	sizes := []int{1024, 4096, 16384}
	det := ring.DetectKernelTier()
	tiers := []ring.KernelTier{ring.TierScalar}
	for _, t := range []ring.KernelTier{ring.TierAVX2, ring.TierAVX512} {
		if det >= t {
			tiers = append(tiers, t)
		}
	}

	results := map[string]any{}
	var gateFwd4096 float64
	for _, n := range sizes {
		ps, err := modmath.FindNTTPrimes64(59, uint64(2*n), 1)
		if err != nil {
			return err
		}
		mod := modmath.MustModulus64(ps[0])
		a := make([]uint64, n)
		b := make([]uint64, n)
		for j := 0; j < n; j++ {
			a[j] = (uint64(j)*0x9e3779b97f4a7c15 + 7) % mod.Q
			b[j] = (uint64(j)*0xc2b2ae3d27d4eb4f + 11) % mod.Q
		}

		sp, err := ring.NewPlan[uint64, ring.Shoup64](ring.NewShoup64Tier(mod, ring.TierScalar), n)
		if err != nil {
			return err
		}
		refF, refI, refM := make([]uint64, n), make([]uint64, n), make([]uint64, n)
		sp.ForwardInto(refF, a)
		sp.InverseInto(refI, a)
		sp.PolyMulNegacyclicInto(refM, a, b)

		rows := map[string]simdTierRow{}
		var scalarRow simdTierRow
		for _, tier := range tiers {
			p, err := ring.NewPlan[uint64, ring.Shoup64](ring.NewShoup64Tier(mod, tier), n)
			if err != nil {
				return err
			}
			if got := p.KernelTier(); got != tier.String() {
				return fmt.Errorf("benchjson: plan selected tier %s, want %s", got, tier)
			}
			// Gate: every tier must be bit-identical to the scalar kernels
			// before anything is timed.
			dst := make([]uint64, n)
			p.ForwardInto(dst, a)
			if err := mustAgree64(tier.String()+" forward", dst, refF); err != nil {
				return err
			}
			p.InverseInto(dst, a)
			if err := mustAgree64(tier.String()+" inverse", dst, refI); err != nil {
				return err
			}
			p.PolyMulNegacyclicInto(dst, a, b)
			if err := mustAgree64(tier.String()+" polymul", dst, refM); err != nil {
				return err
			}

			row := simdTierRow{
				FwdNs:     bench(func() { p.ForwardInto(dst, a) }),
				InvNs:     bench(func() { p.InverseInto(dst, a) }),
				MulNs:     bench(func() { p.PolyMulNegacyclicInto(dst, a, b) }),
				FwdAllocs: allocs(func() { p.ForwardInto(dst, a) }),
			}
			if tier == ring.TierScalar {
				scalarRow = row
			}
			row.FwdSpeedup = scalarRow.FwdNs / row.FwdNs
			row.InvSpeedup = scalarRow.InvNs / row.InvNs
			row.MulSpeedup = scalarRow.MulNs / row.MulNs
			rows[tier.String()] = row
			if n == 4096 && tier != ring.TierScalar && row.FwdSpeedup > gateFwd4096 {
				gateFwd4096 = row.FwdSpeedup
			}
			fmt.Printf("n=%5d %-6s: fwd %.0f ns (%.2fx), inv %.0f ns (%.2fx), polymul %.0f ns (%.2fx)\n",
				n, tier, row.FwdNs, row.FwdSpeedup, row.InvNs, row.InvSpeedup, row.MulNs, row.MulSpeedup)
		}
		results[fmt.Sprintf("n%d", n)] = rows
	}

	// Model-first costing: the VM-ranked lazy butterfly bodies at n=4096
	// on the calibrated machine descriptions, the prediction the tier was
	// committed against.
	ps, err := modmath.FindNTTPrimes64(59, 8192, 1)
	if err != nil {
		return err
	}
	mod := modmath.MustModulus64(ps[0])
	predictions := map[string]any{}
	for _, mach := range perfmodel.MeasurementMachines {
		var cands []map[string]any
		for _, c := range perfmodel.RankLazyBodies(mach, mod, 4096) {
			cands = append(cands, map[string]any{
				"body":              c.Name,
				"ns_per_butterfly":  c.NsPerButterfly,
				"bytes_per_iter":    c.BytesPerIter,
				"speedup_vs_scalar": c.SpeedupVsScalar,
			})
		}
		predictions[mach.Name] = cands
	}

	// Amdahl projection for the resident BEHZ multiply: the k=4 squaring
	// census puts ~half the resident MulCt in mandatory transforms
	// (BENCH_PR6 profiling), so the whole-multiply bound from the measured
	// n=4096 butterfly speedup is MulCtSpeedup(0.5, measured).
	census := perfmodel.NewBEHZResidentModel(
		perfmodel.ProjectLazyNTT64(perfmodel.MeasurementMachines[0], isa.LevelScalar, mod, 4096, false), 4, true)
	const nttShare = 0.5
	amdahl := perfmodel.MulCtSpeedup(nttShare, gateFwd4096)

	report := map[string]any{
		"schema":         "mqxgo-bench/v1",
		"pr":             7,
		"generated_unix": time.Now().Unix(),
		"config": hostConfig(map[string]any{
			"sizes": sizes, "prime_bits": 59,
		}),
		"verified":      true,
		"results":       results,
		"vm_prediction": predictions,
		"amdahl": map[string]any{
			"resident_transform_census_k4": census.Transforms(),
			"ntt_share_assumed":            nttShare,
			"measured_fwd_speedup_n4096":   gateFwd4096,
			"projected_mulct_speedup":      amdahl,
		},
		"acceptance": map[string]any{
			"vector_fwd_speedup_n4096": gateFwd4096,
			"vector_beats_scalar":      gateFwd4096 > 1,
		},
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (best vector forward speedup at n=4096: %.2fx, Amdahl MulCt bound %.2fx)\n",
		path, gateFwd4096, amdahl)
	return nil
}
