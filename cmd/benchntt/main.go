// Command benchntt regenerates the paper's Figure 5: NTT runtime per
// butterfly across sizes 2^10..2^17 for the GMP and OpenFHE-backend
// baselines and the scalar / AVX2 / AVX-512 / MQX tiers, on the modeled
// Intel Xeon 8352Y (Figure 5a) or AMD EPYC 9654 (Figure 5b).
//
// Usage:
//
//	benchntt [-cpu intel|amd|both] [-measure] [-verify]
//
// With -measure, the GMP and OpenFHE-backend anchors are re-measured on the
// host instead of using the recorded defaults. With -verify, every vector
// tier is functionally executed on the trace machine at size 2^12 and
// checked against the native transform before reporting.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mqxgo/internal/core"
	"mqxgo/internal/modmath"
	"mqxgo/internal/perfmodel"
)

func main() {
	cpu := flag.String("cpu", "both", "intel, amd, or both")
	measure := flag.Bool("measure", false, "re-measure baseline anchor ratios on this host")
	verify := flag.Bool("verify", false, "functionally verify every tier before reporting")
	flag.Parse()

	mod := modmath.DefaultModulus128()
	ctx := core.NewContext(mod)

	ratios := core.DefaultBaselineRatios
	if *measure {
		r, err := ctx.MeasureNTTBaselineRatios(1 << 12)
		if err != nil {
			log.Fatal(err)
		}
		ratios = r
		fmt.Printf("host-measured anchors: OpenFHE-backend/scalar = %.1fx, GMP/scalar = %.1fx\n\n",
			ratios.GenericOverNative, ratios.BignumOverNative)
	}

	if *verify {
		if err := ctx.VerifyAllTiers(1 << 12); err != nil {
			log.Fatal(err)
		}
		fmt.Println("functional verification: all tiers match the native transform")
		fmt.Println()
	}

	var machines []*perfmodel.Machine
	switch *cpu {
	case "intel":
		machines = []*perfmodel.Machine{perfmodel.IntelXeon8352Y}
	case "amd":
		machines = []*perfmodel.Machine{perfmodel.AMDEPYC9654}
	case "both":
		machines = perfmodel.MeasurementMachines
	default:
		fmt.Fprintln(os.Stderr, "benchntt: -cpu must be intel, amd, or both")
		os.Exit(2)
	}

	for _, mach := range machines {
		fig := core.Figure5(mach, mod, ratios)
		rows := make([]string, len(fig.Sizes))
		for i, n := range fig.Sizes {
			rows[i] = fmt.Sprintf("2^%d", log2(n))
		}
		label := "Figure 5a"
		if mach == perfmodel.AMDEPYC9654 {
			label = "Figure 5b"
		}
		fmt.Print(core.FormatSeriesTable(
			fmt.Sprintf("%s — NTT runtime per butterfly (ns) on %s, single core", label, mach.Name),
			"size", rows, fig.Series))
		fmt.Println()
	}
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}
