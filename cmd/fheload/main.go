// fheload drives a running fheserver with concurrent multiply /
// modswitch / decrypt traffic and writes the PR 8 robustness report:
// client-observed p50/p99 latency per op, shed and retry rates, and —
// when a fault burst is requested — the time the service took to return
// to a clean error rate after the burst.
//
// Every decrypted result is verified against the locally computed
// negacyclic product: a hardened service may refuse work (429, 503, 504,
// 422, 500) but must never return a wrong plaintext. Any mismatch fails
// the run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mqxgo/internal/fhe"
	"mqxgo/internal/ring"
)

type stats struct {
	mu      sync.Mutex
	lat     map[string][]time.Duration
	status  map[int]uint64
	codes   map[string]uint64
	fivexxT []time.Time // timestamps of 5xx responses

	total   atomic.Uint64
	retries atomic.Uint64
	wrong   atomic.Uint64
}

func newStats() *stats {
	return &stats{lat: map[string][]time.Duration{}, status: map[int]uint64{}, codes: map[string]uint64{}}
}

func (st *stats) record(op string, status int, code string, d time.Duration) {
	st.total.Add(1)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.status[status]++
	if code != "" {
		st.codes[code]++
	}
	if status >= 500 && status != http.StatusGatewayTimeout {
		st.fivexxT = append(st.fivexxT, time.Now())
	}
	if status == http.StatusOK {
		st.lat[op] = append(st.lat[op], d)
	}
}

// opLatency summarizes one op's client-observed latency.
type opLatency struct {
	Count uint64 `json:"count"`
	P50US int64  `json:"p50_us"`
	P99US int64  `json:"p99_us"`
	MaxUS int64  `json:"max_us"`
}

func summarize(lat []time.Duration) opLatency {
	if len(lat) == 0 {
		return opLatency{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) int64 {
		i := int(p * float64(len(lat)-1))
		return lat[i].Microseconds()
	}
	return opLatency{Count: uint64(len(lat)), P50US: q(0.50), P99US: q(0.99), MaxUS: lat[len(lat)-1].Microseconds()}
}

// client is one tenant's connection state.
type client struct {
	base    string
	http    *http.Client
	st      *stats
	rng     *rand.Rand
	timeout int // per-request timeout_ms sent to the server
}

// post sends one JSON request and decodes the response envelope,
// returning the HTTP status, the typed error code (if any), and the
// decoded body.
func (c *client) post(path string, body map[string]any) (int, string, map[string]any, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, "", nil, err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, "", nil, err
	}
	code := ""
	if e, ok := out["error"].(map[string]any); ok {
		code, _ = e["code"].(string)
	}
	return resp.StatusCode, code, out, nil
}

// do runs one evaluation-class request with retry + jittered exponential
// backoff on shed (429) and pool-exhaustion (503) responses — the two
// codes that mean "try again soon". Draining, deadline, guardrail, and
// internal errors are returned to the caller's mix logic.
func (c *client) do(ctx context.Context, op, path string, body map[string]any) (int, string, map[string]any) {
	backoff := 5 * time.Millisecond
	for attempt := 0; ; attempt++ {
		start := time.Now()
		status, code, out, err := c.post(path, body)
		if err != nil {
			select {
			case <-ctx.Done():
				return 0, "canceled", nil
			default:
			}
			c.st.record(op, 0, "transport", 0)
			return 0, "transport", nil
		}
		c.st.record(op, status, code, time.Since(start))
		retryable := status == http.StatusTooManyRequests ||
			(status == http.StatusServiceUnavailable && code == "pool_exhausted")
		if !retryable || attempt >= 6 || ctx.Err() != nil {
			return status, code, out
		}
		c.st.retries.Add(1)
		sleep := backoff + time.Duration(c.rng.Int63n(int64(backoff)))
		backoff *= 2
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return status, code, out
		}
	}
}

func handleOf(body map[string]any) string {
	h, _ := body["handle"].(string)
	return h
}

// run is one client's traffic loop: multiply into a reused destination
// handle (the server's steady-state in-place path), and every few
// iterations walk the result down a level, decrypt it, verify it against
// the locally computed product, and free it.
func (c *client) run(ctx context.Context, id int, msgLen int, plainMod uint64, modswitchEvery int) error {
	tenant := fmt.Sprintf("load-%d", id)
	if status, code, _, err := c.post("/v1/keygen", map[string]any{"tenant": tenant}); err != nil || status != http.StatusOK {
		return fmt.Errorf("%s keygen: status %d code %s err %v", tenant, status, code, err)
	}
	m1, m2 := make([]uint64, msgLen), make([]uint64, msgLen)
	for i := range m1 {
		m1[i] = c.rng.Uint64() % plainMod
		m2[i] = c.rng.Uint64() % plainMod
	}
	expected := fhe.NegacyclicProductModT(m1, m2, plainMod)
	status, code, enc1 := c.do(ctx, "encrypt", "/v1/encrypt", map[string]any{"tenant": tenant, "values": m1})
	if status != http.StatusOK {
		return fmt.Errorf("%s encrypt: %d %s", tenant, status, code)
	}
	status, code, enc2 := c.do(ctx, "encrypt", "/v1/encrypt", map[string]any{"tenant": tenant, "values": m2})
	if status != http.StatusOK {
		return fmt.Errorf("%s encrypt: %d %s", tenant, status, code)
	}
	h1, h2 := handleOf(enc1), handleOf(enc2)

	dst := ""
	for iter := 0; ctx.Err() == nil; iter++ {
		body := map[string]any{"tenant": tenant, "op": "mul", "args": []string{h1, h2}, "timeout_ms": c.timeout}
		if dst != "" {
			body["out"] = dst
		}
		status, _, out := c.do(ctx, "mul", "/v1/eval", body)
		if status != http.StatusOK {
			continue // shed past retries, deadline, or injected fault: counted, not fatal
		}
		dst = handleOf(out)

		if modswitchEvery > 0 && iter%modswitchEvery == modswitchEvery-1 {
			status, _, low := c.do(ctx, "modswitch", "/v1/eval",
				map[string]any{"tenant": tenant, "op": "modswitch", "args": []string{dst}, "timeout_ms": c.timeout})
			if status != http.StatusOK {
				continue
			}
			lowH := handleOf(low)
			status, _, dec := c.do(ctx, "decrypt", "/v1/decrypt", map[string]any{"tenant": tenant, "handle": lowH})
			if status == http.StatusOK {
				vals, ok := dec["values"].([]any)
				if !ok || len(vals) != len(expected) {
					c.st.wrong.Add(1)
				} else {
					for i := range vals {
						if uint64(vals[i].(float64)) != expected[i] {
							c.st.wrong.Add(1)
							break
						}
					}
				}
			}
			c.do(ctx, "free", "/v1/eval", map[string]any{"tenant": tenant, "op": "free", "args": []string{lowH}})
		}
	}
	return nil
}

func hostConfig(cfg map[string]any) map[string]any {
	sel := ring.DetectKernelTier()
	if e := ring.EnvKernelTier(); e != ring.TierAuto && e < sel {
		sel = e
	}
	cfg["goos"] = runtime.GOOS
	cfg["goarch"] = runtime.GOARCH
	cfg["gomaxprocs"] = runtime.GOMAXPROCS(0)
	cfg["kernel_tier"] = sel.String()
	cfg["kernel_tier_detected"] = ring.DetectKernelTier().String()
	cfg["cpu_features"] = ring.CPUFeatures()
	return cfg
}

func main() {
	base := flag.String("url", "http://127.0.0.1:8080", "fheserver base URL")
	clients := flag.Int("clients", 4, "concurrent tenants")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	timeoutMS := flag.Int("timeout-ms", 0, "per-request timeout_ms sent to the server (0 = server default)")
	modswitchEvery := flag.Int("modswitch-every", 4, "modswitch+decrypt+free every Nth multiply (0 = never)")
	burst := flag.String("burst", "", "fault spec to arm mid-run via /v1/fault (needs a faultinject server build)")
	burstAt := flag.Duration("burst-at", 0, "when to arm the burst (default duration/3)")
	out := flag.String("out", "BENCH_PR8.json", "report path (empty to skip)")
	seed := flag.Int64("seed", 42, "message rng seed")
	flag.Parse()

	st := newStats()
	httpc := &http.Client{Timeout: 30 * time.Second}
	probe := &client{base: *base, http: httpc, st: newStats(), rng: rand.New(rand.NewSource(*seed))}
	status, _, keyInfo, err := probe.post("/v1/keygen", map[string]any{"tenant": "fheload-probe"})
	if err != nil || status != http.StatusOK {
		log.Fatalf("fheload: cannot reach %s: status %d err %v", *base, status, err)
	}
	msgLen := int(keyInfo["n"].(float64))
	plainMod := uint64(keyInfo["plain_modulus"].(float64))
	fmt.Printf("fheload: server %s n=%d t=%d levels=%v; %d clients for %s\n",
		keyInfo["backend"], msgLen, plainMod, keyInfo["levels"], *clients, *duration)

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	var burstArmedNS atomic.Int64
	if *burst != "" {
		at := *burstAt
		if at <= 0 {
			at = *duration / 3
		}
		go func() {
			select {
			case <-time.After(at):
			case <-ctx.Done():
				return
			}
			status, code, _, err := probe.post("/v1/fault", map[string]any{"spec": *burst})
			if err != nil || status != http.StatusOK {
				log.Fatalf("fheload: arming burst %q: status %d code %s err %v", *burst, status, code, err)
			}
			burstArmedNS.Store(time.Now().UnixNano())
			fmt.Printf("fheload: burst armed at +%s: %s\n", at, *burst)
		}()
	}

	var wg sync.WaitGroup
	errs := make(chan error, *clients)
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &client{base: *base, http: httpc, st: st, rng: rand.New(rand.NewSource(*seed + int64(i) + 1)), timeout: *timeoutMS}
			if err := c.run(ctx, i, msgLen, plainMod, *modswitchEvery); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		log.Fatalf("fheload: %v", err)
	}

	// Recovery: time from arming the burst to the last 5xx the fleet saw.
	// The tail window (final 20% of the run) must be 5xx-free: the fault
	// window spends itself and the service returns to a clean error rate.
	st.mu.Lock()
	recoveryMS := int64(-1)
	var tail5xx uint64
	burstArmed := time.Time{}
	if ns := burstArmedNS.Load(); ns != 0 {
		burstArmed = time.Unix(0, ns)
	}
	tailStart := time.Now().Add(-*duration / 5)
	for _, ts := range st.fivexxT {
		if !burstArmed.IsZero() && ts.After(burstArmed) {
			if ms := ts.Sub(burstArmed).Milliseconds(); ms > recoveryMS {
				recoveryMS = ms
			}
		}
		if ts.After(tailStart) {
			tail5xx++
		}
	}
	if !burstArmed.IsZero() && recoveryMS < 0 {
		recoveryMS = 0
	}
	perOp := map[string]opLatency{}
	for op, lat := range st.lat {
		perOp[op] = summarize(lat)
	}
	statuses := map[string]uint64{}
	for code, n := range st.status {
		statuses[fmt.Sprintf("%d", code)] = n
	}
	st.mu.Unlock()

	var snap map[string]any
	if resp, err := httpc.Get(*base + "/v1/metrics"); err == nil {
		_ = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
	}

	report := map[string]any{
		"schema":         "mqxgo-bench/v1",
		"pr":             8,
		"generated_unix": time.Now().Unix(),
		"config": hostConfig(map[string]any{
			"clients": *clients, "duration": duration.String(), "n": msgLen,
			"plain_modulus": plainMod, "modswitch_every": *modswitchEvery,
			"burst": *burst, "timeout_ms": *timeoutMS,
		}),
		"results": map[string]any{
			"requests_total":    st.total.Load(),
			"retries":           st.retries.Load(),
			"wrong_decryptions": st.wrong.Load(),
			"status_counts":     statuses,
			"error_codes":       st.codes,
			"per_op_latency":    perOp,
			"burst_recovery_ms": recoveryMS,
			"tail_5xx":          tail5xx,
			"server_metrics":    snap,
		},
		"acceptance": map[string]any{
			"zero_wrong_decryptions": st.wrong.Load() == 0,
			"clean_tail":             tail5xx == 0,
		},
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fheload: wrote %s\n", *out)
	}
	fmt.Printf("fheload: %d requests, %d retries, shed %v, wrong %d, recovery %dms, tail 5xx %d\n",
		st.total.Load(), st.retries.Load(), st.codes["queue_full"], st.wrong.Load(), recoveryMS, tail5xx)
	if st.wrong.Load() > 0 || tail5xx > 0 {
		os.Exit(1)
	}
}
