// fheserver is the hardened FHE evaluation service: a long-lived process
// exposing the internal/serve HTTP API over a shared RNS backend.
// Tenants keygen once and evaluate many times; the server enforces
// admission control (bounded queue, 429 shedding), per-request deadlines
// threaded through the backend's tower phases, noise-budget guardrails,
// panic containment with scratch quarantine, and graceful drain on
// SIGTERM/SIGINT.
//
// Fault injection (-fault) requires a binary built with
// -tags faultinject; production builds refuse to arm.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mqxgo/internal/faultinject"
	"mqxgo/internal/fhe"
	"mqxgo/internal/rns"
	"mqxgo/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	n := flag.Int("n", 1024, "ring degree (power of two)")
	levels := flag.Int("levels", 3, "modulus-ladder depth (RNS towers)")
	primeBits := flag.Int("prime-bits", 59, "bits per tower prime")
	plainMod := flag.Uint64("t", 257, "plaintext modulus")
	seed := flag.Int64("seed", 1, "scheme rng seed")
	towerWorkers := flag.Int("tower-workers", 1, "tower parallelism inside one evaluation (1 = zero-alloc sequential)")
	evalWorkers := flag.Int("eval-workers", 2, "concurrent evaluations")
	queueDepth := flag.Int("queue", 8, "admission queue depth before shedding")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request deadline")
	budgetFloor := flag.Int("budget-floor", 2, "refuse evaluations predicted to land below this many budget bits")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long to wait for in-flight work on shutdown")
	faults := flag.String("fault", "", "comma-separated fault specs to arm at boot (needs -tags faultinject)")
	flag.Parse()

	c, err := rns.NewContext(*primeBits, *levels, *n)
	if err != nil {
		log.Fatalf("fheserver: ring context: %v", err)
	}
	b, err := fhe.NewRNSBackendWorkers(c, *plainMod, *towerWorkers)
	if err != nil {
		log.Fatalf("fheserver: backend: %v", err)
	}
	s := serve.New(serve.Config{
		Scheme:          fhe.NewBackendScheme(b, *seed),
		Workers:         *evalWorkers,
		QueueDepth:      *queueDepth,
		RequestTimeout:  *timeout,
		BudgetFloorBits: *budgetFloor,
	})

	for _, spec := range strings.Split(*faults, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parsed, err := faultinject.ParseSpec(spec)
		if err != nil {
			log.Fatalf("fheserver: %v", err)
		}
		if err := faultinject.Arm(parsed); err != nil {
			log.Fatalf("fheserver: arming %q: %v", spec, err)
		}
		log.Printf("fheserver: armed fault %s", parsed)
	}

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("fheserver: serving %s backend on %s (n=%d levels=%d workers=%d queue=%d floor=%d bits, faults %v)",
			b.Name(), *addr, *n, *levels, *evalWorkers, *queueDepth, *budgetFloor, faultinject.Enabled)
		errCh <- srv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errCh:
		log.Fatalf("fheserver: listener: %v", err)
	case got := <-sig:
		log.Printf("fheserver: %s received, draining (timeout %s)", got, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	report := s.Drain(ctx)
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("fheserver: http shutdown: %v", err)
	}
	buf, _ := json.Marshal(report)
	fmt.Printf("drain %s\n", buf)
	if !report.Clean {
		log.Fatalf("fheserver: drain left work in flight after %s", *drainTimeout)
	}
}
