// Command mca renders Listing-4-style "resource pressure by instruction"
// reports: the port assignment and steady-state cost of a double-word
// modular kernel on a modeled microarchitecture, for any ISA tier
// including MQX (whose instructions are costed through their PISA
// proxies, Table 3).
//
// Usage:
//
//	mca [-kernel addmod128|submod128|mulmod128|butterfly|adc]
//	    [-level scalar|avx2|avx512|mqx|...] [-march SunnyCove|Zen4]
//
// The default reproduces the paper's Listing 4 comparison: addmod128 with
// AVX-512 and with MQX on Sunny Cove.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
	"mqxgo/internal/perfmodel"
	"mqxgo/internal/sched"
)

var levelNames = map[string]isa.Level{
	"scalar":    isa.LevelScalar,
	"avx2":      isa.LevelAVX2,
	"avx512":    isa.LevelAVX512,
	"mqx":       isa.LevelMQX,
	"mqx+M":     isa.LevelMQXMulOnly,
	"mqx+C":     isa.LevelMQXCarryOnly,
	"mqx+Mh,C":  isa.LevelMQXMulHi,
	"mqx+M,C,P": isa.LevelMQXPredicated,
}

var kernelNames = map[string]perfmodel.ModOp{
	"addmod128": perfmodel.ModAdd,
	"submod128": perfmodel.ModSub,
	"mulmod128": perfmodel.ModMul,
	"butterfly": perfmodel.ModButterfly,
}

func main() {
	kernel := flag.String("kernel", "addmod128", "addmod128, submod128, mulmod128, butterfly, or adc")
	level := flag.String("level", "", "ISA tier; empty means the Listing 4 pair (avx512 and mqx)")
	march := flag.String("march", "SunnyCove", "SunnyCove or Zen4")
	asm := flag.Bool("asm", false, "also print the kernel as pseudo-assembly")
	flag.Parse()

	m, err := isa.MicroarchByName(*march)
	if err != nil {
		log.Fatal(err)
	}
	mod := modmath.DefaultModulus128()

	if *kernel == "adc" {
		// The Table 1 comparison: double-word addition with carry.
		fmt.Println("Table 1 — addition with carry, instruction counts per tier:")
		fmt.Println("  scalar: 1 instruction (ADC)")
		fmt.Println("  AVX-512: 5 instructions (add, masked add, 2 compares, mask or)")
		fmt.Println("  MQX: 1 instruction (vpadcq)")
		fmt.Println()
		*kernel = "addmod128"
	}

	op, ok := kernelNames[*kernel]
	if !ok {
		fmt.Fprintf(os.Stderr, "mca: unknown kernel %q\n", *kernel)
		os.Exit(2)
	}

	var levels []isa.Level
	if *level == "" {
		levels = []isa.Level{isa.LevelAVX512, isa.LevelMQX}
	} else {
		l, ok := levelNames[*level]
		if !ok {
			fmt.Fprintf(os.Stderr, "mca: unknown level %q\n", *level)
			os.Exit(2)
		}
		levels = []isa.Level{l}
	}

	for _, l := range levels {
		body := perfmodel.ModOpBody(l, mod, op)
		rep := sched.Analyze(m, body.Instrs)
		fmt.Printf("%s / %s / %s\n", *kernel, l, m.Name)
		if *asm {
			fmt.Println(sched.RenderAsm(m, body.Instrs))
		}
		fmt.Println(rep)
	}
}
