// Command mqxlint runs the repo's five invariant analyzers — hotalloc,
// scratchescape, lazyrange, ctxphase, domaintag — over the named
// packages and exits non-zero if any finding survives //mqx:allow
// filtering. It is the local mirror of the CI gate:
//
//	go run ./cmd/mqxlint ./...
//	go run ./cmd/mqxlint -tags faultinject ./internal/fhe/...
//	go run ./cmd/mqxlint -goarch amd64 ./internal/ring/...
//
// Findings print as file:line:col: [analyzer] message. Suppress a
// deliberate violation with //mqx:allow <analyzer> <reason> on (or
// immediately above) the offending line; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mqxgo/internal/analysis/analyzers"
	"mqxgo/internal/analysis/mqx"
)

func main() {
	tags := flag.String("tags", "", "comma-separated build tags, as for go build")
	goarch := flag.String("goarch", "", "target GOARCH for type-checking (default: host)")
	only := flag.String("only", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mqxlint [-tags list] [-goarch arch] [-only names] [packages]\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nanalyzers:\n")
		for _, a := range analyzers.All {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	suite := analyzers.All
	if *only != "" {
		want := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		suite = nil
		for _, a := range analyzers.All {
			if want[a.Name] {
				suite = append(suite, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(os.Stderr, "mqxlint: unknown analyzer %q\n", n)
			os.Exit(2)
		}
	}

	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mqxlint: %v\n", err)
		os.Exit(2)
	}
	loader, err := mqx.NewLoader(cwd, tagList, *goarch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mqxlint: %v\n", err)
		os.Exit(2)
	}
	prog, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mqxlint: %v\n", err)
		os.Exit(2)
	}

	diags, err := mqx.Run(prog, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mqxlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := prog.Position(d.Pos)
		fmt.Printf("%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mqxlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
