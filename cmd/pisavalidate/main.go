// Command pisavalidate regenerates Tables 5 and 6: the PISA methodology's
// target/proxy instruction pairs and the relative error of proxy-projected
// NTT runtimes against ground truth on both modeled CPUs.
//
// Usage:
//
//	pisavalidate [-show-proxies]
package main

import (
	"flag"
	"fmt"
	"log"

	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
	"mqxgo/internal/perfmodel"
	"mqxgo/internal/pisa"
)

func main() {
	showProxies := flag.Bool("show-proxies", false, "also print the Table 3 MQX proxy mapping")
	flag.Parse()

	mod := modmath.DefaultModulus128()

	if *showProxies {
		fmt.Println("Table 3 — Proxy instructions in AVX-512 for MQX performance projection")
		fmt.Printf("%-16s %s\n", "MQX instruction", "AVX-512 proxy")
		for _, row := range pisa.ProxyTable() {
			fmt.Printf("%-16s %s\n", row[0], row[1])
		}
		fmt.Println()
	}

	fmt.Println("Table 5 — Target and proxy instructions for validating PISA")
	fmt.Printf("%-24s %s\n", "Target instruction", "Proxy instruction")
	for _, p := range isa.PISAValidationPairs {
		fmt.Printf("%-24s %s\n", p.Target, p.Proxy)
	}
	fmt.Println()

	fmt.Printf("Table 6 — Relative error (epsilon, Eq. 12) of PISA-projected runtime, NTT size 2^14\n")
	fmt.Printf("%-24s %14s %14s\n", "Target instruction", "Intel Xeon", "AMD EPYC")
	intel, err := pisa.Validate(perfmodel.IntelXeon8352Y, mod)
	if err != nil {
		log.Fatal(err)
	}
	amd, err := pisa.Validate(perfmodel.AMDEPYC9654, mod)
	if err != nil {
		log.Fatal(err)
	}
	for i := range intel {
		fmt.Printf("%-24s %13.2f%% %13.2f%%\n",
			intel[i].Pair.Target, intel[i].EpsilonPct, amd[i].EpsilonPct)
	}
	fmt.Println("\nNegative values mean the projection was conservative (predicted slower than")
	fmt.Println("ground truth). The paper's hardware measurements stay within 8% absolute.")
}
