// Command report regenerates the paper's entire evaluation in one run:
// functional verification, every figure and table, the sensitivity
// analyses, and the headline summary — the artifact-style "reproduce
// everything" entry point (Appendix A of the paper).
//
// Usage:
//
//	report [-measure] [-skip-verify]
package main

import (
	"flag"
	"fmt"
	"log"

	"mqxgo/internal/core"
	"mqxgo/internal/modmath"
	"mqxgo/internal/perfmodel"
	"mqxgo/internal/pisa"
	"mqxgo/internal/roofline"
)

func main() {
	measure := flag.Bool("measure", false, "re-measure baseline anchors on this host")
	skipVerify := flag.Bool("skip-verify", false, "skip the functional tier verification")
	flag.Parse()

	mod := modmath.DefaultModulus128()
	ctx := core.NewContext(mod)

	fmt.Println("=== mqxgo evaluation report ===")
	fmt.Println()

	if !*skipVerify {
		if err := ctx.VerifyAllTiers(1 << 12); err != nil {
			log.Fatal(err)
		}
		fmt.Println("[verify] all ISA tiers bit-match the native 2^12 transform")
		fmt.Println()
	}

	ratios := core.DefaultBaselineRatios
	if *measure {
		r, err := ctx.MeasureNTTBaselineRatios(1 << 12)
		if err != nil {
			log.Fatal(err)
		}
		ratios = r
		fmt.Printf("[anchors] host-measured: OpenFHE-backend/scalar %.1fx, GMP/scalar %.1fx\n\n",
			ratios.GenericOverNative, ratios.BignumOverNative)
	}

	// Figure 1.
	fmt.Println("--- Figure 1: headline NTT comparison (size 2^13, ns) ---")
	for _, bar := range core.Figure1(mod, ratios) {
		fmt.Printf("  %-30s %14.0f\n", bar.Label, bar.TimeNs)
	}
	fmt.Println()

	// Figures 4 and 5.
	for _, mach := range perfmodel.MeasurementMachines {
		f4 := core.Figure4(mach, mod, ratios)
		rows := make([]string, len(f4.Ops))
		for i, op := range f4.Ops {
			rows[i] = op.String()
		}
		fmt.Print(core.FormatSeriesTable(
			fmt.Sprintf("--- Figure 4 (%s): BLAS ns/element ---", mach.Name), "op", rows, f4.Series))
		fmt.Println()

		f5 := core.Figure5(mach, mod, ratios)
		sizeRows := make([]string, len(f5.Sizes))
		for i, n := range f5.Sizes {
			sizeRows[i] = fmt.Sprintf("%d", n)
		}
		fmt.Print(core.FormatSeriesTable(
			fmt.Sprintf("--- Figure 5 (%s): NTT ns/butterfly ---", mach.Name), "size", sizeRows, f5.Series))
		fmt.Println()
	}

	// Figure 6.
	fmt.Println("--- Figure 6: MQX component ablation (AMD, normalized) ---")
	for _, row := range core.Figure6(mod) {
		fmt.Printf("  %-8s %6.3f\n", row.Label, row.Normalized)
	}
	fmt.Println()

	// Karatsuba.
	fmt.Println("--- Section 5.5: schoolbook vs Karatsuba (ratio > 1: schoolbook wins) ---")
	for _, row := range core.KaratsubaComparison(mod) {
		fmt.Printf("  %-20s %-8s %6.2f\n", row.Machine, row.Level, row.Speedup)
	}
	fmt.Println()

	// Tables 5/6.
	fmt.Println("--- Tables 5/6: PISA validation (epsilon %) ---")
	intel, err := pisa.Validate(perfmodel.IntelXeon8352Y, mod)
	if err != nil {
		log.Fatal(err)
	}
	amd, err := pisa.Validate(perfmodel.AMDEPYC9654, mod)
	if err != nil {
		log.Fatal(err)
	}
	for i := range intel {
		fmt.Printf("  %-24s intel %7.2f%%   amd %7.2f%%\n",
			intel[i].Pair.Target, intel[i].EpsilonPct, amd[i].EpsilonPct)
	}
	fmt.Println()

	// Figure 7.
	for _, mach := range perfmodel.MeasurementMachines {
		f7, err := core.Figure7(mach, mod)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- Figure 7 (%s) geomean ratios vs MQX-SOL ---\n", f7.Target.Name)
		for _, b := range f7.Baselines {
			fmt.Printf("  %-24s %6.2fx\n", b.Name, roofline.GeomeanRatio(b, f7.MQXSOL))
		}
		fmt.Println()
	}

	// RNS comparison.
	fmt.Println("--- RNS vs double-word kernels (equal payload, 2^14) ---")
	rows, err := core.CompareRNS(mod, 1<<14)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  %-20s %-8s dw %7.3fns  rns %7.3fns  ratio %5.2f\n",
			r.Machine, r.Level, r.DoubleWordNs, r.RNSNs, r.Ratio)
	}
	fmt.Println()

	// Headline.
	h := core.Summary(mod, ratios)
	fmt.Println("--- Headline summary (model vs paper) ---")
	fmt.Printf("  NTT  AVX-512 / best baseline: %6.1fx (paper 38x)\n", h.AVX512OverBestBaseline)
	fmt.Printf("  NTT  MQX / best baseline:     %6.1fx (paper 77x)\n", h.MQXOverBestBaseline)
	fmt.Printf("  NTT  MQX / AVX-512:           %6.1fx (paper 2.1-3.7x)\n", h.MQXOverAVX512)
	fmt.Printf("  BLAS AVX-512 / GMP:           %6.1fx (paper 62x)\n", h.AVX512OverGMPBLAS)
	fmt.Printf("  BLAS MQX / GMP:               %6.1fx (paper 104x)\n", h.MQXOverGMPBLAS)
	fmt.Printf("  MQX 1-core vs RPU:            %6.1fx slower (paper: as low as 35x)\n", h.MQXSlowdownVsRPU)
}
