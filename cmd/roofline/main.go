// Command roofline regenerates the paper's speed-of-light analyses:
// Figure 7a/7b (MQX scaled across Intel Xeon 6980P and AMD EPYC 9965S
// against the RPU and FPMM ASICs, the MoMA GPU, and OpenFHE on 32 cores),
// the headline Figure 1 comparison, the Table 4 machine database, and the
// top-line speedup summary of the paper's contributions.
//
// Usage:
//
//	roofline [-cpu intel|amd|both] [-figure1] [-machines] [-summary]
//
// With no selection flags, everything prints.
package main

import (
	"flag"
	"fmt"
	"log"

	"mqxgo/internal/core"
	"mqxgo/internal/modmath"
	"mqxgo/internal/perfmodel"
	"mqxgo/internal/roofline"
)

func main() {
	cpu := flag.String("cpu", "both", "intel, amd, or both (Figure 7 selection)")
	fig1 := flag.Bool("figure1", false, "print only Figure 1")
	machines := flag.Bool("machines", false, "print only the machine database (Table 4)")
	summary := flag.Bool("summary", false, "print only the headline summary")
	flag.Parse()
	all := !*fig1 && !*machines && !*summary

	mod := modmath.DefaultModulus128()
	ratios := core.DefaultBaselineRatios

	if *machines || all {
		fmt.Println("Table 4 — modeled CPUs")
		fmt.Printf("%-20s %8s %8s %8s %6s %10s\n", "machine", "base", "boost", "all-core", "cores", "L3")
		for _, m := range append(append([]*perfmodel.Machine{}, perfmodel.MeasurementMachines...),
			perfmodel.IntelXeon6980P, perfmodel.AMDEPYC9965S) {
			fmt.Printf("%-20s %5.1fGHz %5.1fGHz %5.2fGHz %6d %7dMB\n",
				m.Name, m.BaseGHz, m.MaxGHz, m.BoostAllGHz, m.Cores, m.L3Bytes>>20)
		}
		fmt.Println()
	}

	if *fig1 || all {
		fmt.Printf("Figure 1 — NTT performance comparison at size 2^13 (lower is better)\n")
		fmt.Printf("%-30s %14s\n", "system", "time (ns)")
		for _, bar := range core.Figure1(mod, ratios) {
			fmt.Printf("%-30s %14.0f\n", bar.Label, bar.TimeNs)
		}
		fmt.Println()
	}

	if all || *cpu != "" && !*fig1 && !*machines && !*summary {
		var meas []*perfmodel.Machine
		switch *cpu {
		case "intel":
			meas = []*perfmodel.Machine{perfmodel.IntelXeon8352Y}
		case "amd":
			meas = []*perfmodel.Machine{perfmodel.AMDEPYC9654}
		default:
			meas = perfmodel.MeasurementMachines
		}
		for _, m := range meas {
			fig, err := core.Figure7(m, mod)
			if err != nil {
				log.Fatal(err)
			}
			label := "Figure 7a"
			if m == perfmodel.AMDEPYC9654 {
				label = "Figure 7b"
			}
			fmt.Printf("%s — speed-of-light NTT runtime (ns) on %s\n", label, fig.Target.Name)
			fmt.Printf("%-8s %16s", "size", "MQX-SOL")
			for _, b := range fig.Baselines {
				fmt.Printf(" %22s", b.Name)
			}
			fmt.Println()
			for i, n := range fig.Sizes {
				fmt.Printf("2^%-6d %16.0f", log2(n), fig.MQXSOL.Points[i].TimeNs)
				for _, b := range fig.Baselines {
					if v, ok := b.At(n); ok {
						fmt.Printf(" %22.0f", v)
					} else {
						fmt.Printf(" %22s", "-")
					}
				}
				fmt.Println()
			}
			for _, b := range fig.Baselines {
				r := roofline.GeomeanRatio(b, fig.MQXSOL)
				fmt.Printf("  geomean %s / MQX-SOL = %.2fx\n", b.Name, r)
			}
			fmt.Println()
		}
	}

	if *summary || all {
		h := core.Summary(mod, ratios)
		fmt.Println("Headline summary (model) vs. paper claims")
		fmt.Printf("  NTT:  AVX-512 over best CPU baseline: %6.1fx   (paper: 38x avg)\n", h.AVX512OverBestBaseline)
		fmt.Printf("  NTT:  MQX over best CPU baseline:     %6.1fx   (paper: 77x avg)\n", h.MQXOverBestBaseline)
		fmt.Printf("  NTT:  MQX over AVX-512:               %6.1fx   (paper: 2.1x Intel / 3.7x AMD)\n", h.MQXOverAVX512)
		fmt.Printf("  BLAS: AVX-512 over GMP:               %6.1fx   (paper: 62x avg)\n", h.AVX512OverGMPBLAS)
		fmt.Printf("  BLAS: MQX over GMP:                   %6.1fx   (paper: 104x avg)\n", h.MQXOverGMPBLAS)
		fmt.Printf("  MQX single core vs RPU ASIC:          %6.1fx slower (paper: as low as 35x)\n", h.MQXSlowdownVsRPU)
	}
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}
