// Command sensitivity regenerates the paper's Section 5.5 analyses:
// Figure 6 (which MQX component buys what, normalized per-butterfly NTT
// runtime on AMD EPYC) and the schoolbook-vs-Karatsuba multiplication
// algorithm comparison across all tiers and both CPUs.
//
// Usage:
//
//	sensitivity [-figure6] [-karatsuba]
//
// With no flags, both analyses run.
package main

import (
	"flag"
	"fmt"

	"mqxgo/internal/core"
	"mqxgo/internal/modmath"
)

func main() {
	fig6 := flag.Bool("figure6", false, "run only the MQX component ablation")
	kar := flag.Bool("karatsuba", false, "run only the multiplication algorithm comparison")
	rns := flag.Bool("rns", false, "run only the RNS-vs-double-word kernel comparison")
	flag.Parse()
	runBoth := !*fig6 && !*kar && !*rns

	mod := modmath.DefaultModulus128()

	if *rns || runBoth {
		rows, err := core.CompareRNS(mod, 1<<14)
		if err != nil {
			panic(err)
		}
		fmt.Println("RNS vs. double-word kernels at equal ~120-bit payload (modeled, 2^14 NTT)")
		fmt.Println("(ratio > 1: the two 60-bit RNS channel butterflies are faster than one")
		fmt.Println("124-bit double-word butterfly; the paper's case for 128-bit residues is")
		fmt.Println("the application-level conversion overhead RNS adds, Section 1)")
		fmt.Printf("%-20s %-8s %14s %14s %8s\n", "machine", "tier", "double-word", "RNS 2x60", "ratio")
		for _, r := range rows {
			fmt.Printf("%-20s %-8s %12.3fns %12.3fns %8.2f\n",
				r.Machine, r.Level, r.DoubleWordNs, r.RNSNs, r.Ratio)
		}
		fmt.Println()
	}

	if *fig6 || runBoth {
		fmt.Println("Figure 6 — NTT runtime per butterfly on AMD EPYC 9654,")
		fmt.Println("averaged over sizes 2^10..2^17, normalized to AVX-512 (Base)")
		fmt.Printf("%-10s %-14s %s\n", "variant", "level", "normalized")
		for _, row := range core.Figure6(mod) {
			bar := ""
			for i := 0.0; i < row.Normalized*40; i++ {
				bar += "#"
			}
			fmt.Printf("%-10s %-14s %10.3f  %s\n", row.Label, row.Level, row.Normalized, bar)
		}
		fmt.Println()
	}

	if *kar || runBoth {
		fmt.Println("Section 5.5 — schoolbook vs. Karatsuba 128-bit multiplication")
		fmt.Println("(per-butterfly ns at NTT size 2^14; ratio > 1 means schoolbook wins)")
		fmt.Printf("%-20s %-10s %12s %12s %8s\n", "machine", "tier", "schoolbook", "karatsuba", "ratio")
		for _, row := range core.KaratsubaComparison(mod) {
			fmt.Printf("%-20s %-10s %12.3f %12.3f %8.2f\n",
				row.Machine, row.Level, row.SchoolbookNs, row.KaratsubaNs, row.Speedup)
		}
		fmt.Println()
	}
}
