// Batchntt: the "towards realizing SOL performance" experiment of
// Section 6. Real FHE workloads batch many independent NTTs; this example
// runs a batch of forward transforms through the library's persistent
// worker pool (BatchForwardInto: chunked dispatch, pooled per-chunk
// scratch, zero steady-state allocation), measures the parallel scaling
// efficiency, and compares it with the ideal linear scaling the
// speed-of-light model assumes.
package main

import (
	"fmt"
	"runtime"
	"time"

	"mqxgo/internal/core"
	"mqxgo/internal/u128"
)

func main() {
	const n = 1 << 12
	const batch = 256
	ctx := core.Default()
	plan, err := ctx.Plan(n)
	if err != nil {
		panic(err)
	}

	// Independent inputs, as in a batched FHE pipeline.
	inputs := make([][]u128.U128, batch)
	dsts := make([][]u128.U128, batch)
	v := u128.From64(3)
	for i := range inputs {
		xs := make([]u128.U128, n)
		for j := range xs {
			xs[j] = v
			v = ctx.Add(ctx.Mul(v, u128.From64(0x9e3779b97f4a7c15)), u128.One)
		}
		inputs[i] = xs
		dsts[i] = make([]u128.U128, n)
	}

	run := func(workers int) time.Duration {
		start := time.Now()
		plan.BatchForwardInto(dsts, inputs, workers)
		return time.Since(start)
	}
	run(runtime.GOMAXPROCS(0)) // warm the worker pool and scratch caches

	maxWorkers := runtime.GOMAXPROCS(0)
	fmt.Printf("batch of %d forward NTTs of size 2^12 on up to %d cores\n\n", batch, maxWorkers)
	base := run(1)
	fmt.Printf("%8s %12s %10s %12s\n", "workers", "wall time", "speedup", "efficiency")
	fmt.Printf("%8d %12v %9.2fx %11.0f%%\n", 1, base.Round(time.Millisecond), 1.0, 100.0)
	for w := 2; w <= maxWorkers; w *= 2 {
		t := run(w)
		speedup := float64(base) / float64(t)
		fmt.Printf("%8d %12v %9.2fx %11.0f%%\n",
			w, t.Round(time.Millisecond), speedup, 100*speedup/float64(w))
	}
	fmt.Println()
	fmt.Println("The paper's SOL model (Eq. 13) assumes 100% efficiency; batched NTTs")
	fmt.Println("with no data dependencies get close, which is why Section 6 argues the")
	fmt.Println("speed-of-light projection is approachable for real FHE workloads.")
}
