// Batchntt: the "towards realizing SOL performance" experiment of
// Section 6. Real FHE workloads batch many independent NTTs; this example
// runs a batch of forward transforms across goroutines pinned to however
// many cores the host offers, measures the parallel scaling efficiency,
// and compares it with the ideal linear scaling the speed-of-light model
// assumes.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"mqxgo/internal/core"
	"mqxgo/internal/u128"
)

func main() {
	const n = 1 << 12
	const batch = 256
	ctx := core.Default()
	plan, err := ctx.Plan(n)
	if err != nil {
		panic(err)
	}

	// Independent inputs, as in a batched FHE pipeline.
	inputs := make([][]u128.U128, batch)
	v := u128.From64(3)
	for i := range inputs {
		xs := make([]u128.U128, n)
		for j := range xs {
			xs[j] = v
			v = ctx.Add(ctx.Mul(v, u128.From64(0x9e3779b97f4a7c15)), u128.One)
		}
		inputs[i] = xs
	}

	run := func(workers int) time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					plan.ForwardNative(inputs[i])
				}
			}()
		}
		for i := 0; i < batch; i++ {
			work <- i
		}
		close(work)
		wg.Wait()
		return time.Since(start)
	}

	maxWorkers := runtime.GOMAXPROCS(0)
	fmt.Printf("batch of %d forward NTTs of size 2^12 on up to %d cores\n\n", batch, maxWorkers)
	base := run(1)
	fmt.Printf("%8s %12s %10s %12s\n", "workers", "wall time", "speedup", "efficiency")
	fmt.Printf("%8d %12v %9.2fx %11.0f%%\n", 1, base.Round(time.Millisecond), 1.0, 100.0)
	for w := 2; w <= maxWorkers; w *= 2 {
		t := run(w)
		speedup := float64(base) / float64(t)
		fmt.Printf("%8d %12v %9.2fx %11.0f%%\n",
			w, t.Round(time.Millisecond), speedup, 100*speedup/float64(w))
	}
	fmt.Println()
	fmt.Println("The paper's SOL model (Eq. 13) assumes 100% efficiency; batched NTTs")
	fmt.Println("with no data dependencies get close, which is why Section 6 argues the")
	fmt.Println("speed-of-light projection is approachable for real FHE workloads.")
}
