// Dotproduct: an encrypted dot product over packed SIMD slots — the
// workload the slot-packing layer exists for. Each vector of n values is
// batched into one ciphertext via the plaintext CRT (one NTT at the
// plaintext modulus), a single homomorphic multiply forms all n slot-wise
// products at once, and a log2(n/2) chain of Galois rotations folds each
// rotation row down so every slot of a row holds that row's dot product.
// The whole pipeline runs twice — on the 128-bit oracle backend and on
// the RNS tower backend — and both decryptions are checked against the
// plaintext model.
package main

import (
	"fmt"
	"log"

	"mqxgo/internal/fhe"
	"mqxgo/internal/modmath"
	"mqxgo/internal/rns"
)

const (
	n = 256
	// T is NTT-friendly at n: 40961 = 5*2^13 + 1 splits for 2n = 512, so
	// the plaintext ring CRT-decomposes into n independent slots.
	T = 40961
)

func run(name string, b fhe.Backend) error {
	s := fhe.NewBackendScheme(b, 9001)
	sk := s.KeyGen()
	rlk, err := s.RelinKeyGen(sk)
	if err != nil {
		return err
	}
	gk, err := s.GaloisKeyGen(sk)
	if err != nil {
		return err
	}

	// Two packed vectors; slots split into two rotation rows of n/2.
	rows := n / 2
	x := make([]uint64, n)
	y := make([]uint64, n)
	for j := range x {
		x[j] = uint64(3*j+1) % T
		y[j] = uint64(5*j+2) % T
	}
	want := [2]uint64{}
	for j := 0; j < rows; j++ {
		want[0] = (want[0] + x[j]*y[j]) % T
		want[1] = (want[1] + x[rows+j]*y[rows+j]) % T
	}

	mx, err := s.EncodeSlots(x)
	if err != nil {
		return err
	}
	my, err := s.EncodeSlots(y)
	if err != nil {
		return err
	}
	cx, err := s.Encrypt(sk, mx)
	if err != nil {
		return err
	}
	cy, err := s.Encrypt(sk, my)
	if err != nil {
		return err
	}

	// One multiply: every slot-wise product at once.
	acc, err := s.MulCiphertexts(cx, cy, rlk)
	if err != nil {
		return err
	}
	// log2(rows) rotate-and-add folds: after the chain, every slot of a
	// row holds the sum over that row. Each power-of-two amount is a
	// single key-switch hop.
	hops := 0
	for sh := rows / 2; sh >= 1; sh /= 2 {
		rot, err := s.RotateSlots(acc, sh, gk)
		if err != nil {
			return err
		}
		if acc, err = s.AddCiphertexts(acc, rot); err != nil {
			return err
		}
		hops++
	}

	dec, err := s.Decrypt(sk, acc)
	if err != nil {
		return err
	}
	slots, err := s.DecodeSlots(dec)
	if err != nil {
		return err
	}
	// Every slot of row r must hold row r's dot product.
	for j := 0; j < n; j++ {
		if got := slots[j]; got != want[j/rows] {
			return fmt.Errorf("slot %d: got %d, want %d", j, got, want[j/rows])
		}
	}
	fmt.Printf("%-8s n=%d  1 mul + %d rotations  dot(row0)=%d dot(row1)=%d  OK\n",
		name, n, hops, want[0], want[1])
	return nil
}

func main() {
	params, err := fhe.NewParams(modmath.DefaultModulus128(), n, T)
	if err != nil {
		log.Fatal(err)
	}
	if err := run("oracle", fhe.NewRingBackend(params)); err != nil {
		log.Fatalf("oracle: %v", err)
	}
	c, err := rns.NewContext(59, 3, n)
	if err != nil {
		log.Fatal(err)
	}
	rb, err := fhe.NewRNSBackend(c, T)
	if err != nil {
		log.Fatal(err)
	}
	if err := run("rns", rb); err != nil {
		log.Fatalf("rns: %v", err)
	}
}
