// ISA lab: the paper's fast software-hardware co-design loop (Section 4.2)
// in action. Defines a hypothetical ISA variant — "what if the vendor only
// ships multiply-high instead of the full widening multiply?" — and uses
// PISA-style cost substitution to project its NTT performance before any
// hardware (or even a cycle-accurate simulator) exists.
package main

import (
	"fmt"

	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
	"mqxgo/internal/perfmodel"
	"mqxgo/internal/sched"
)

func main() {
	mod := modmath.DefaultModulus128()
	mach := perfmodel.AMDEPYC9654
	const n = 1 << 14

	fmt.Println("Exploring MQX design points on", mach.Name, "(projected, single core)")
	fmt.Println()

	base := perfmodel.ProjectNTT(mach, isa.LevelAVX512, mod, n).NsPerButterfly()
	fmt.Printf("%-34s %12s %10s\n", "design point", "ns/butterfly", "speedup")
	for _, level := range isa.SensitivityLevels {
		m := perfmodel.ProjectNTT(mach, level, mod, n)
		fmt.Printf("%-34s %12.3f %9.2fx\n", describe(level), m.NsPerButterfly(), base/m.NsPerButterfly())
	}
	fmt.Println()

	// Drill into one design point: where do the butterfly's micro-ops go?
	body := perfmodel.ModOpBody(isa.LevelMQXMulHi, mod, perfmodel.ModMul)
	rep := sched.Analyze(mach.March, body.Instrs)
	fmt.Printf("mulmod128 under +Mh,C on %s: %d instructions, %d uops,\n",
		mach.Name, len(body.Instrs), rep.TotalUops)
	fmt.Printf("port bound %.1f cycles, dispatch bound %.1f cycles, critical path %.0f cycles\n",
		rep.PortBound, rep.DispatchBound, rep.CriticalPath)
	fmt.Println()
	fmt.Println("Conclusion (matches the paper's Section 5.5): multiply-high plus carry")
	fmt.Println("support keeps most of full MQX's benefit at lower hardware cost, and")
	fmt.Println("predicated execution adds little on top.")
}

func describe(level isa.Level) string {
	switch level {
	case isa.LevelAVX512:
		return "AVX-512 (base)"
	case isa.LevelMQXMulOnly:
		return "+M  widening multiply only"
	case isa.LevelMQXCarryOnly:
		return "+C  carry/borrow only"
	case isa.LevelMQX:
		return "+M,C  full MQX"
	case isa.LevelMQXMulHi:
		return "+Mh,C  multiply-high variant"
	case isa.LevelMQXPredicated:
		return "+M,C,P  with predication"
	}
	return level.String()
}
