// Polymul: the FHE-style polynomial multiplication pipeline in
// Z_q[x]/(x^n + 1) — the workload the paper's kernels exist to serve —
// run three ways: 128-bit double-word residues (this library's approach),
// the residue number system alternative, and a schoolbook cross-check.
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"
	"time"

	"mqxgo/internal/core"
	"mqxgo/internal/ntt"
	"mqxgo/internal/rns"
	"mqxgo/internal/u128"
)

func main() {
	const n = 256
	ctx := core.Default()
	r := rand.New(rand.NewSource(2026))

	a := make([]u128.U128, n)
	b := make([]u128.U128, n)
	for i := range a {
		a[i] = u128.New(r.Uint64(), r.Uint64()).Mod(ctx.Mod.Q)
		b[i] = u128.New(r.Uint64(), r.Uint64()).Mod(ctx.Mod.Q)
	}

	// 1. Double-word (128-bit residue) negacyclic NTT multiplication.
	start := time.Now()
	viaNTT, err := ctx.PolyMul(a, b)
	if err != nil {
		log.Fatal(err)
	}
	nttTime := time.Since(start)

	// 2. Schoolbook O(n^2) cross-check.
	start = time.Now()
	viaSchoolbook := ntt.SchoolbookNegacyclic(ctx.Mod, a, b)
	sbTime := time.Since(start)

	match := true
	for i := range viaNTT {
		if !viaNTT[i].Equal(viaSchoolbook[i]) {
			match = false
			break
		}
	}
	fmt.Printf("double-word NTT polymul: %v (schoolbook cross-check: %v)\n", nttTime, match)
	fmt.Printf("schoolbook polymul:      %v\n", sbTime)

	// 3. The RNS alternative: decompose into three 60-bit channels,
	// multiply channel-wise with 64-bit NTTs, reconstruct via CRT.
	// (The paper's Section 1: 128-bit residues avoid exactly this
	// decomposition/reconstruction overhead in modulus-switching-heavy
	// FHE workloads.)
	rc, err := rns.NewContext(60, 3, n)
	if err != nil {
		log.Fatal(err)
	}
	ab := toBig(a)
	bb := toBig(b)
	start = time.Now()
	ra, err := rc.Decompose(ab)
	if err != nil {
		log.Fatal(err)
	}
	rb, err := rc.Decompose(bb)
	if err != nil {
		log.Fatal(err)
	}
	rprod, err := rc.PolyMulNegacyclic(ra, rb)
	if err != nil {
		log.Fatal(err)
	}
	got, err := rc.Reconstruct(rprod)
	if err != nil {
		log.Fatal(err)
	}
	rnsTime := time.Since(start)

	// The RNS result lives mod Q_rns (product of channel primes); reduce
	// the schoolbook answer mod... they differ as rings, so instead verify
	// the RNS pipeline against its own big-integer schoolbook (see
	// internal/rns tests). Here we just confirm shape and report time.
	fmt.Printf("RNS (3x60-bit) polymul:  %v (%d coefficients reconstructed, Q has %d bits)\n",
		rnsTime, len(got), rc.Q.BitLen())
}

func toBig(xs []u128.U128) []*big.Int {
	out := make([]*big.Int, len(xs))
	for i, x := range xs {
		out[i] = x.ToBig()
	}
	return out
}
