// Quickstart: 128-bit modular arithmetic, an NTT round trip, and a
// performance projection in one sitting.
package main

import (
	"fmt"
	"log"

	"mqxgo/internal/core"
	"mqxgo/internal/isa"
	"mqxgo/internal/perfmodel"
	"mqxgo/internal/u128"
)

func main() {
	// A context on the library's default 124-bit NTT-friendly prime.
	ctx := core.Default()
	fmt.Printf("modulus q = %s (%d bits)\n", ctx.Mod.Q, ctx.Mod.Q.BitLen())

	// Double-word modular arithmetic.
	a := u128.MustParse("12345678901234567890123456789012345678")
	b := u128.MustParse("98765432109876543210987654321098765432")
	a = a.Mod(ctx.Mod.Q)
	b = b.Mod(ctx.Mod.Q)
	fmt.Printf("a*b mod q = %s\n", ctx.Mul(a, b))

	// An NTT round trip at size 1024.
	n := 1024
	x := make([]u128.U128, n)
	for i := range x {
		x[i] = u128.From64(uint64(i))
	}
	freq, err := ctx.NTT(x)
	if err != nil {
		log.Fatal(err)
	}
	back, err := ctx.INTT(freq)
	if err != nil {
		log.Fatal(err)
	}
	ok := true
	for i := range x {
		if !back[i].Equal(x[i]) {
			ok = false
			break
		}
	}
	fmt.Printf("INTT(NTT(x)) == x: %v\n", ok)

	// Projected single-core performance of this transform on the paper's
	// two machines, per ISA tier.
	for _, mach := range perfmodel.MeasurementMachines {
		fmt.Printf("\n%s, %d-point NTT (projected, single core):\n", mach.Name, n)
		for _, level := range isa.AllLevels {
			m := perfmodel.ProjectNTT(mach, level, ctx.Mod, n)
			fmt.Printf("  %-8s %8.2f us  (%.2f ns/butterfly)\n",
				level, m.TimeNs()/1000, m.NsPerButterfly())
		}
	}
}
