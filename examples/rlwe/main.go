// RLWE: encrypted computation on top of the library's negacyclic NTT — a
// miniature of the FHE pipelines that motivate the paper. Encrypts two
// vectors of small integers as ring elements, adds them under encryption,
// rotates one homomorphically, multiplies the two ciphertexts (BFV tensor
// product, rescale, relinearize), and decrypts; then runs the identical
// scheme again on the RNS tower backend — where the multiply is the BEHZ
// pipeline, never leaving residue form — the paper's two hardware
// philosophies as swappable Go backends.
package main

import (
	"fmt"
	"log"
	"slices"

	"mqxgo/internal/fhe"
	"mqxgo/internal/modmath"
	"mqxgo/internal/rns"
	"mqxgo/internal/u128"
)

func main() {
	const n = 128
	params, err := fhe.NewParams(modmath.DefaultModulus128(), n, 257)
	if err != nil {
		log.Fatal(err)
	}
	scheme := fhe.NewScheme(params, 42)
	sk := scheme.KeyGen()

	// Two plaintext vectors (packed as polynomial coefficients).
	m1 := make([]uint64, n)
	m2 := make([]uint64, n)
	for i := 0; i < n; i++ {
		m1[i] = uint64(i) % params.T
		m2[i] = uint64(100+i) % params.T
	}

	c1, err := scheme.Encrypt(sk, m1)
	if err != nil {
		log.Fatal(err)
	}
	c2, err := scheme.Encrypt(sk, m2)
	if err != nil {
		log.Fatal(err)
	}

	// Homomorphic addition.
	sum := scheme.AddCiphertexts(c1, c2)
	dec, err := scheme.Decrypt(sk, sum)
	if err != nil {
		log.Fatal(err)
	}
	ok := true
	for i := range dec {
		if dec[i] != (m1[i]+m2[i])%params.T {
			ok = false
			break
		}
	}
	fmt.Printf("homomorphic add of %d slots: correct = %v (slot 3: %d + %d = %d)\n",
		n, ok, m1[3], m2[3], dec[3])

	// Homomorphic rotation: multiply by the monomial x (negacyclic shift).
	x := make([]u128.U128, n)
	x[1] = u128.One
	rot, err := scheme.MulPlain(c1, x)
	if err != nil {
		log.Fatal(err)
	}
	decRot, err := scheme.Decrypt(sk, rot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("homomorphic shift: slot 5 now holds previous slot 4: %d -> %d\n",
		m1[4], decRot[5])

	// Homomorphic multiplication: ciphertext x ciphertext, decrypting to
	// the negacyclic product of the plaintexts mod T.
	rlk := scheme.RelinKeyGen(sk)
	prod, err := scheme.Decrypt(sk, scheme.MulCiphertexts(c1, c2, rlk))
	if err != nil {
		log.Fatal(err)
	}
	wantProd := fhe.NegacyclicProductModT(m1, m2, params.T)
	mulOK := true
	for i := range prod {
		if prod[i] != wantProd[i] {
			mulOK = false
			break
		}
	}
	fmt.Printf("homomorphic multiply of the two ciphertexts: correct = %v (slot 3: %d)\n",
		mulOK, prod[3])
	fmt.Printf("ring: Z_q[x]/(x^%d + 1) with a %d-bit q; every ciphertext op ran on the 128-bit NTT\n",
		n, params.Mod.Q.BitLen())

	// The same scheme, unchanged, on the other hardware philosophy: a
	// basis of 64-bit RNS towers behind the fhe.Backend seam.
	rc, err := rns.NewContext(59, 3, n)
	if err != nil {
		log.Fatal(err)
	}
	backend, err := fhe.NewRNSBackend(rc, 257)
	if err != nil {
		log.Fatal(err)
	}
	rs := fhe.NewBackendScheme(backend, 42)
	rsk := rs.KeyGen()
	rc1, err := rs.Encrypt(rsk, m1)
	if err != nil {
		log.Fatal(err)
	}
	rc2, err := rs.Encrypt(rsk, m2)
	if err != nil {
		log.Fatal(err)
	}
	rdec, err := rs.Decrypt(rsk, rs.AddCiphertexts(rc1, rc2))
	if err != nil {
		log.Fatal(err)
	}
	rok := true
	for i := range rdec {
		if rdec[i] != (m1[i]+m2[i])%257 {
			rok = false
			break
		}
	}
	fmt.Printf("same add on the %s backend (Q = product of 3 towers, %d bits): correct = %v\n",
		backend.Name(), rc.Q.BitLen(), rok)

	// The same multiply on the RNS backend runs the BEHZ pipeline:
	// fast-base-extend into a disjoint extension base, tensor product per
	// tower, divide-and-round by Q/T, exact Shenoy-Kumaresan return to
	// base Q, CRT-gadget relinearization — residues end to end, no big
	// integers on the hot path.
	rrlk := rs.RelinKeyGen(rsk)
	rprod, err := rs.Decrypt(rsk, rs.MulCiphertexts(rc1, rc2, rrlk))
	if err != nil {
		log.Fatal(err)
	}
	rmulOK := true
	for i := range rprod {
		if rprod[i] != wantProd[i] {
			rmulOK = false
			break
		}
	}
	fmt.Printf("same multiply via BEHZ on %s: correct = %v, bit-identical to the 128-bit oracle = %v\n",
		backend.Name(), rmulOK, slices.Equal(rprod, prod))
}
