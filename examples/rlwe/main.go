// RLWE: encrypted computation on top of the library's negacyclic NTT — a
// miniature of the FHE pipelines that motivate the paper. Encrypts two
// vectors of small integers as ring elements, adds them under encryption,
// rotates one homomorphically, multiplies the two ciphertexts (BFV tensor
// product, rescale, relinearize), and decrypts; then runs the identical
// scheme again on the RNS tower backend — where the multiply is the BEHZ
// pipeline, never leaving residue form — the paper's two hardware
// philosophies as swappable Go backends. The finale is the PR 5 modulus
// ladder: a depth-3 multiply chain that a fixed two-tower basis cannot
// survive, carried to the end by a four-tower basis that switches down a
// level after every multiply, paying two-tower prices at the bottom.
package main

import (
	"fmt"
	"log"
	"slices"

	"mqxgo/internal/fhe"
	"mqxgo/internal/modmath"
	"mqxgo/internal/rns"
	"mqxgo/internal/u128"
)

func main() {
	const n = 128
	params, err := fhe.NewParams(modmath.DefaultModulus128(), n, 257)
	if err != nil {
		log.Fatal(err)
	}
	scheme := fhe.NewScheme(params, 42)
	sk := scheme.KeyGen()

	// Two plaintext vectors (packed as polynomial coefficients).
	m1 := make([]uint64, n)
	m2 := make([]uint64, n)
	for i := 0; i < n; i++ {
		m1[i] = uint64(i) % params.T
		m2[i] = uint64(100+i) % params.T
	}

	c1, err := scheme.Encrypt(sk, m1)
	if err != nil {
		log.Fatal(err)
	}
	c2, err := scheme.Encrypt(sk, m2)
	if err != nil {
		log.Fatal(err)
	}

	// Homomorphic addition.
	sum, err := scheme.AddCiphertexts(c1, c2)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := scheme.Decrypt(sk, sum)
	if err != nil {
		log.Fatal(err)
	}
	ok := true
	for i := range dec {
		if dec[i] != (m1[i]+m2[i])%params.T {
			ok = false
			break
		}
	}
	fmt.Printf("homomorphic add of %d slots: correct = %v (slot 3: %d + %d = %d)\n",
		n, ok, m1[3], m2[3], dec[3])

	// Homomorphic rotation: multiply by the monomial x (negacyclic shift).
	x := make([]u128.U128, n)
	x[1] = u128.One
	rot, err := scheme.MulPlain(c1, x)
	if err != nil {
		log.Fatal(err)
	}
	decRot, err := scheme.Decrypt(sk, rot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("homomorphic shift: slot 5 now holds previous slot 4: %d -> %d\n",
		m1[4], decRot[5])

	// Homomorphic multiplication: ciphertext x ciphertext, decrypting to
	// the negacyclic product of the plaintexts mod T.
	rlk, err := scheme.RelinKeyGen(sk)
	if err != nil {
		log.Fatal(err)
	}
	prodCT, err := scheme.MulCiphertexts(c1, c2, rlk)
	if err != nil {
		log.Fatal(err)
	}
	prod, err := scheme.Decrypt(sk, prodCT)
	if err != nil {
		log.Fatal(err)
	}
	wantProd := fhe.NegacyclicProductModT(m1, m2, params.T)
	mulOK := true
	for i := range prod {
		if prod[i] != wantProd[i] {
			mulOK = false
			break
		}
	}
	fmt.Printf("homomorphic multiply of the two ciphertexts: correct = %v (slot 3: %d)\n",
		mulOK, prod[3])
	fmt.Printf("ring: Z_q[x]/(x^%d + 1) with a %d-bit q; every ciphertext op ran on the 128-bit NTT\n",
		n, params.Mod.Q.BitLen())

	// The same scheme, unchanged, on the other hardware philosophy: a
	// basis of 64-bit RNS towers behind the fhe.Backend seam.
	rc, err := rns.NewContext(59, 3, n)
	if err != nil {
		log.Fatal(err)
	}
	backend, err := fhe.NewRNSBackend(rc, 257)
	if err != nil {
		log.Fatal(err)
	}
	rs := fhe.NewBackendScheme(backend, 42)
	rsk := rs.KeyGen()
	rc1, err := rs.Encrypt(rsk, m1)
	if err != nil {
		log.Fatal(err)
	}
	rc2, err := rs.Encrypt(rsk, m2)
	if err != nil {
		log.Fatal(err)
	}
	rsum, err := rs.AddCiphertexts(rc1, rc2)
	if err != nil {
		log.Fatal(err)
	}
	rdec, err := rs.Decrypt(rsk, rsum)
	if err != nil {
		log.Fatal(err)
	}
	rok := true
	for i := range rdec {
		if rdec[i] != (m1[i]+m2[i])%257 {
			rok = false
			break
		}
	}
	fmt.Printf("same add on the %s backend (Q = product of 3 towers, %d bits): correct = %v\n",
		backend.Name(), rc.Q.BitLen(), rok)

	// The same multiply on the RNS backend runs the BEHZ pipeline:
	// m~-corrected base extension into a disjoint extension base, tensor
	// product per tower, divide-and-round by Q/T, exact Shenoy-Kumaresan
	// return to base Q, CRT-gadget relinearization with NTT-domain keys —
	// residues end to end, no big integers on the hot path.
	rrlk, err := rs.RelinKeyGen(rsk)
	if err != nil {
		log.Fatal(err)
	}
	rprodCT, err := rs.MulCiphertexts(rc1, rc2, rrlk)
	if err != nil {
		log.Fatal(err)
	}
	rprod, err := rs.Decrypt(rsk, rprodCT)
	if err != nil {
		log.Fatal(err)
	}
	rmulOK := true
	for i := range rprod {
		if rprod[i] != wantProd[i] {
			rmulOK = false
			break
		}
	}
	fmt.Printf("same multiply via BEHZ on %s: correct = %v, bit-identical to the 128-bit oracle = %v\n",
		backend.Name(), rmulOK, slices.Equal(rprod, prod))

	// --- The PR 5 modulus ladder: depth 3 ---
	//
	// ModSwitch is budget-neutral (Delta and the noise divide by the
	// dropped tower together), so what the ladder buys is COST: each drop
	// removes one tower from every subsequent transform and tensor. The
	// provisioning story: a fixed k=2 basis (what a single multiply
	// needs) dies at depth 3; a k=4 basis switched down after every
	// multiply finishes the chain with budget to spare, and its last
	// multiply already runs at k=2 prices. T = 65537 makes every multiply
	// burn ~25 budget bits so the contrast fits three levels.
	const ladderT = 65537
	msg := make([]uint64, n)
	for i := range msg {
		msg[i] = uint64(i*i+7) % ladderT
	}
	expected := append([]uint64(nil), msg...)
	for d := 0; d < 3; d++ {
		expected = fhe.NegacyclicProductModT(expected, expected, ladderT)
	}

	runDepth3 := func(towers int, switching bool) (got []uint64, budget int, level int) {
		ctx, err := rns.NewContext(59, towers, n)
		if err != nil {
			log.Fatal(err)
		}
		b, err := fhe.NewRNSBackend(ctx, ladderT)
		if err != nil {
			log.Fatal(err)
		}
		s := fhe.NewBackendScheme(b, 2026)
		sk := s.KeyGen()
		rlk, err := s.RelinKeyGen(sk)
		if err != nil {
			log.Fatal(err)
		}
		ct, err := s.Encrypt(sk, msg)
		if err != nil {
			log.Fatal(err)
		}
		for d := 0; d < 3; d++ {
			if ct, err = s.MulCiphertexts(ct, ct, rlk); err != nil {
				log.Fatal(err)
			}
			if switching && d < 2 {
				if ct, err = s.ModSwitch(ct); err != nil {
					log.Fatal(err)
				}
			}
		}
		got, err = s.Decrypt(sk, ct)
		if err != nil {
			log.Fatal(err)
		}
		budget, err = s.NoiseBudgetBits(sk, ct, expected)
		if err != nil {
			log.Fatal(err)
		}
		return got, budget, ct.Level
	}

	gotFixed, budgetFixed, _ := runDepth3(2, false)
	gotLadder, budgetLadder, level := runDepth3(4, true)
	fmt.Printf("depth-3 chain on a fixed k=2 basis (no switching): correct = %v, budget = %d bits\n",
		slices.Equal(gotFixed, expected), budgetFixed)
	fmt.Printf("depth-3 chain on the k=4 ladder (ModSwitch after each multiply): correct = %v, budget = %d bits at level %d\n",
		slices.Equal(gotLadder, expected), budgetLadder, level)
	if !slices.Equal(gotFixed, expected) && slices.Equal(gotLadder, expected) {
		fmt.Println("the ladder carried the chain the fixed small basis could not — while its last multiply ran on 2 towers, not 4")
	}
}
