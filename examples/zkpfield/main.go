// Zkpfield: the Section 7 generalization in action. Zero-knowledge proof
// systems work over fields wider than 128 bits (BN254/BLS12-381 scalar
// fields are ~254 bits); this example runs the library's multi-word
// modular arithmetic and NTT at 252 bits, and contrasts general Barrett
// reduction with the specialized Goldilocks-prime reduction that ZKP
// systems use when they can choose their field.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"mqxgo/internal/modmath"
	"mqxgo/internal/multiword"
)

func main() {
	// A 252-bit NTT-friendly prime in four 64-bit words.
	q, err := multiword.FindNTTPrime(252, 4, 1<<12)
	if err != nil {
		log.Fatal(err)
	}
	mod := multiword.MustModulus(q)
	fmt.Printf("field: %d-bit prime q = %s...\n", q.BitLen(), q.ToBig().String()[:24])

	const n = 1 << 10
	plan, err := multiword.NewPlan(mod, n)
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	x := make([]multiword.Int, n)
	for i := range x {
		v := multiword.NewInt(4)
		for w := range v {
			v[w] = r.Uint64()
		}
		x[i] = mod.Reduce(v)
	}

	start := time.Now()
	f := plan.Forward(x)
	fwd := time.Since(start)
	start = time.Now()
	back := plan.Inverse(f)
	inv := time.Since(start)
	ok := true
	for i := range x {
		if back[i].Cmp(x[i]) != 0 {
			ok = false
			break
		}
	}
	fmt.Printf("252-bit %d-point NTT: forward %v, inverse %v, round trip ok = %v\n", n, fwd, inv, ok)

	// Barrett (general prime) vs Goldilocks (specialized prime) at 64 bits:
	// the trade-off the paper highlights in Section 2.1.
	ps, err := modmath.FindNTTPrimes64(60, 1<<12, 1)
	if err != nil {
		log.Fatal(err)
	}
	barrett := modmath.MustModulus64(ps[0])
	g := modmath.Goldilocks{}

	const iters = 2_000_000
	a, b := r.Uint64()%ps[0], r.Uint64()%ps[0]
	start = time.Now()
	acc := a
	for i := 0; i < iters; i++ {
		acc = barrett.Mul(acc, b)
	}
	tB := time.Since(start)
	ag := a % modmath.GoldilocksPrime
	start = time.Now()
	for i := 0; i < iters; i++ {
		ag = g.Mul(ag, b)
	}
	tG := time.Since(start)
	fmt.Printf("64-bit modular multiply, %d iterations:\n", iters)
	fmt.Printf("  Barrett (general %d-bit prime):  %v (%.1f ns/op)\n", barrett.N, tB, float64(tB.Nanoseconds())/iters)
	fmt.Printf("  Goldilocks (specialized prime):  %v (%.1f ns/op)\n", tG, float64(tG.Nanoseconds())/iters)
	fmt.Printf("  (sinks: %d %d)\n", acc, ag)
	fmt.Println()
	fmt.Println("Barrett works for any modulus — the property the paper's FHE setting")
	fmt.Println("needs. Goldilocks replaces the multiplies of Barrett's quotient")
	fmt.Println("estimate with shifts and adds but locks the system to one prime —")
	fmt.Println("the application-specific trade-off the paper declines (Section 2.1).")
}
