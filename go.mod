module mqxgo

go 1.24
