package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"mqxgo/internal/analysis/mqx"
)

// CtxPhase enforces the context-threading convention at the BEHZ phase
// boundaries. Two rules:
//
//  1. Every exported function or method whose name ends in "Ctx" and
//     takes a context.Context must actually thread it: somewhere in its
//     body there must be a call to phaseGate, or a call to another
//     *Ctx function that receives the context (the scheme-layer
//     wrappers delegate; the backend pipelines gate each tower phase).
//     A Ctx suffix over a body that ignores its context is a lie in the
//     API.
//
//  2. In packages carrying a //mqx:ctxstrict directive (internal/serve —
//     the request path where deadlines are load-bearing), calling a
//     function or method from another package is forbidden when a
//     sibling with the same name plus "Ctx" exists: the bare BEHZ
//     internals bypass admission deadlines. Call the Ctx variant.
var CtxPhase = &mqx.Analyzer{
	Name: "ctxphase",
	Doc:  "exported ...Ctx APIs must thread their context into a phase gate; ctxstrict packages must not call bare siblings of Ctx APIs",
	Run:  runCtxPhase,
}

func runCtxPhase(pass *mqx.Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxThreading(pass, fd)
			if pass.Pkg.CtxStrict() {
				checkCtxStrictCalls(pass, fd)
			}
		}
	}
	_ = info
	return nil
}

// ctxParam returns the first parameter of type context.Context, or nil.
func ctxParam(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && namedIn(obj.Type(), "context", "Context") {
				return obj
			}
		}
	}
	return nil
}

func checkCtxThreading(pass *mqx.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	if !ast.IsExported(name) || !strings.HasSuffix(name, "Ctx") || name == "Ctx" {
		return
	}
	info := pass.Pkg.Info
	ctx := ctxParam(info, fd)
	if ctx == nil {
		return
	}
	th := &threadCheck{prog: pass.Prog, memo: make(map[*types.Func]bool)}
	if !th.threads(info, fd.Body, ctx, 6) {
		pass.Reportf(fd.Name.Pos(), "%s is exported with a Ctx suffix but never threads its context into a phaseGate or *Ctx callee: the deadline is dead on arrival", name)
	}
}

// threadCheck decides whether a body threads a specific context
// parameter into a phase boundary. Threading means: calling phaseGate or
// a *Ctx function with the context, observing the context directly
// (ctx.Err(), ctx.Done(), ctx.Deadline()), or handing it to a
// module-local callee whose own body threads its context parameter —
// that last rule is what lets RotateSlotsCtx delegate to an unexported
// galoisChain that gates each hop. Recursion is memoized per callee and
// depth-limited; an in-progress callee answers false, so a cycle of
// functions that only pass the context around never counts as threading.
type threadCheck struct {
	prog *mqx.Program
	memo map[*types.Func]bool
}

func (th *threadCheck) threads(info *types.Info, body *ast.BlockStmt, ctx types.Object, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == ctx {
				found = true // a method on the context itself observes it
				return false
			}
		}
		callee := calleeName(info, call)
		if callee == "" || !callArgUsesObj(info, call, ctx) {
			return true
		}
		if callee == "phaseGate" || strings.HasSuffix(callee, "Ctx") {
			found = true
			return false
		}
		if depth > 0 {
			if fn := calledFunc(info, call); fn != nil && th.calleeThreads(fn, depth-1) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func (th *threadCheck) calleeThreads(fn *types.Func, depth int) bool {
	if done, ok := th.memo[fn]; ok {
		return done
	}
	th.memo[fn] = false // in-progress: cycles don't thread
	fi := th.prog.FuncInfo(fn)
	if fi == nil || fi.Decl.Body == nil {
		return false
	}
	calleeCtx := ctxParam(fi.Pkg.Info, fi.Decl)
	if calleeCtx == nil {
		return false
	}
	ok := th.threads(fi.Pkg.Info, fi.Decl.Body, calleeCtx, depth)
	th.memo[fn] = ok
	return ok
}

// calleeName names the called function for both plain and selector
// calls, including interface methods (which staticCallee refuses).
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// callArgUsesObj reports whether any argument expression mentions obj
// (the context parameter, possibly via a derived selector like
// ctx.Done() — a mention is a thread).
func callArgUsesObj(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	for _, a := range call.Args {
		found := false
		ast.Inspect(a, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// checkCtxStrictCalls flags calls from a //mqx:ctxstrict package to
// cross-package functions or methods that have a Ctx sibling.
func checkCtxStrictCalls(pass *mqx.Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calledFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg.Types {
			return true
		}
		if strings.HasSuffix(fn.Name(), "Ctx") {
			return true
		}
		if sibling := ctxSibling(fn); sibling != nil {
			pass.Reportf(call.Pos(), "calls %s.%s from a //mqx:ctxstrict package, but %s exists: the bare variant bypasses deadline propagation", recvOrPkg(fn), fn.Name(), sibling.Name())
		}
		return true
	})
}

// calledFunc resolves the callee including interface methods (unlike
// staticCallee, which treats them as boundaries).
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	if fn := staticCallee(info, call); fn != nil {
		return fn
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if fn, ok := s.Obj().(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}

// ctxSibling looks up a method or package function named fn.Name()+"Ctx"
// on the same receiver type or in the same package.
func ctxSibling(fn *types.Func) *types.Func {
	want := fn.Name() + "Ctx"
	sig := fn.Signature()
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), want)
		if m, ok := obj.(*types.Func); ok {
			return m
		}
		return nil
	}
	if fn.Pkg() == nil {
		return nil
	}
	if m, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok {
		return m
	}
	return nil
}

func recvOrPkg(fn *types.Func) string {
	if recv := fn.Signature().Recv(); recv != nil {
		return strings.TrimPrefix(types.TypeString(recv.Type(), func(p *types.Package) string { return p.Name() }), "*")
	}
	return fn.Pkg().Name()
}
