package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"mqxgo/internal/analysis/mqx"
)

// DomainTag enforces the PR 6 residency convention at API boundaries:
// since Encrypt started emitting NTT-resident handles, every ciphertext
// carries a Domain tag, and pointwise arithmetic on components of
// mismatched or unknown domains is silently wrong (not a crash — wrong
// plaintexts). The convention is that every EXPORTED function reading
// BackendCiphertext component polys (the A/B fields) first passes
// through a recognized domain validation: a call to a function annotated
// //mqx:domaincheck (checkCts, CheckCiphertext and friends), or an
// explicit read of the .Domain tag. Unexported helpers are inside the
// validated perimeter and exempt; validators themselves are annotated.
//
// The check is ordered: the validation must occur before (in source
// order) the first component read, so a check bolted on after the
// arithmetic does not count.
var DomainTag = &mqx.Analyzer{
	Name: "domaintag",
	Doc:  "exported readers of BackendCiphertext components must validate domain tags first",
	Run:  runDomainTag,
}

func runDomainTag(pass *mqx.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !ast.IsExported(fd.Name.Name) {
				continue
			}
			if fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				if fi := pass.Prog.FuncInfo(fn); fi != nil && fi.Annot().DomainCheck {
					continue // the validator itself
				}
			}
			checkDomainReads(pass, fd)
		}
	}
	return nil
}

func checkDomainReads(pass *mqx.Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	var validatedAt token.Pos = token.NoPos
	type read struct {
		pos   token.Pos
		field string
	}
	var firstRead *read

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			fn := calledFunc(info, x)
			if fn == nil {
				return true
			}
			fi := pass.Prog.FuncInfo(fn)
			if fi != nil && fi.Annot().DomainCheck {
				if validatedAt == token.NoPos || x.Pos() < validatedAt {
					validatedAt = x.Pos()
				}
			}
		case *ast.SelectorExpr:
			tv, ok := info.Types[x.X]
			if !ok || !namedIn(tv.Type, "internal/fhe", "BackendCiphertext") {
				return true
			}
			switch x.Sel.Name {
			case "Domain":
				if validatedAt == token.NoPos || x.Pos() < validatedAt {
					validatedAt = x.Pos()
				}
			case "A", "B":
				if firstRead == nil || x.Pos() < firstRead.pos {
					firstRead = &read{x.Pos(), x.Sel.Name}
				}
			}
		}
		return true
	})
	if firstRead == nil {
		return
	}
	if validatedAt != token.NoPos && validatedAt < firstRead.pos {
		return
	}
	pass.Reportf(firstRead.pos, "%s reads BackendCiphertext.%s without a prior domain check: call a //mqx:domaincheck validator or inspect .Domain before touching components", fd.Name.Name, firstRead.field)
}
