package analyzers

import (
	"strings"
	"testing"

	"mqxgo/internal/analysis/analyzertest"
)

// The five analyzer fixture suites: each directory holds code that fails
// without its analyzer (the `// want` lines), the corrected shapes, and
// an //mqx:allow-suppressed variant proving the escape hatch works.

func TestHotAllocFixtures(t *testing.T) {
	analyzertest.Run(t, "testdata/hotalloc", HotAlloc)
}

func TestScratchEscapeFixtures(t *testing.T) {
	analyzertest.Run(t, "testdata/scratchescape", ScratchEscape)
}

func TestLazyRangeFixtures(t *testing.T) {
	analyzertest.Run(t, "testdata/lazyrange", LazyRange)
}

func TestCtxPhaseFixtures(t *testing.T) {
	analyzertest.Run(t, "testdata/ctxphase", CtxPhase)
}

func TestDomainTagFixtures(t *testing.T) {
	analyzertest.Run(t, "testdata/domaintag", DomainTag)
}

// TestMalformedAllow checks the suppression grammar's failure mode: an
// //mqx:allow with no reason suppresses nothing and is itself reported.
// Asserted by hand because the malformed finding lands on the allow
// comment's own line, where a `// want` comment cannot sit.
func TestMalformedAllow(t *testing.T) {
	res := analyzertest.Diags(t, "testdata/allowsyntax", HotAlloc)
	var sawMalformed, sawUnsuppressed bool
	for _, d := range res.Diagnostics {
		switch {
		case d.Analyzer == "mqxallow" && strings.Contains(d.Message, "malformed //mqx:allow"):
			sawMalformed = true
		case d.Analyzer == "hotalloc" && strings.Contains(d.Message, "heap allocation (make)"):
			sawUnsuppressed = true
		default:
			pos := res.Prog.Position(d.Pos)
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	if !sawMalformed {
		t.Errorf("reasonless //mqx:allow was not reported as malformed")
	}
	if !sawUnsuppressed {
		t.Errorf("reasonless //mqx:allow suppressed the hotalloc finding; the reason is supposed to be mandatory")
	}
}
