package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mqxgo/internal/analysis/mqx"
)

// HotAlloc enforces the repo's 0-alloc convention at compile time: every
// function annotated //mqx:hotpath — and everything it statically calls
// within the module — must be free of allocation sites. The runtime
// AllocsPerRun gates only defend the paths a test happens to drive; this
// analyzer walks the whole static call graph.
//
// Flagged inside a hot call graph: make/new/append, slice, map and
// &composite literals, closure literals, go statements, allocating
// string conversions and concatenation, interface boxing at call
// arguments, calls through function values, and calls to external
// (non-module) functions not on the proven-free allowlist (math/bits,
// sync, sync/atomic, math, and a few named runtime/time helpers —
// sync.Pool.Get/Put are allowed because pool hits are allocation-free in
// steady state and misses are warm-up).
//
// Deliberate blind spots: interface method calls are dynamic-dispatch
// boundaries (annotate the concrete implementations instead), and
// allocation sites on panic-only paths are skipped — a hot function may
// allocate while dying.
var HotAlloc = &mqx.Analyzer{
	Name: "hotalloc",
	Doc:  "//mqx:hotpath call graphs must be allocation-free",
	Run:  runHotAlloc,
}

var hotAllowedPkgs = map[string]bool{
	"math/bits":   true,
	"sync/atomic": true,
	"sync":        true,
	"math":        true,
}

var hotAllowedFuncs = map[string]bool{
	"runtime.KeepAlive": true,
	"time.Now":          true,
	"time.Since":        true,
}

type hotWorkItem struct {
	fn    *types.Func
	chain string
}

func runHotAlloc(pass *mqx.Pass) error {
	// Seed the worklist with this package's annotated roots, in source
	// order for deterministic chain attribution.
	var queue []hotWorkItem
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := pass.Prog.FuncInfo(fn)
			if fi != nil && fi.Annot().Hotpath {
				queue = append(queue, hotWorkItem{fn, fd.Name.Name})
			}
		}
	}
	visited := make(map[*types.Func]bool)
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		if visited[item.fn] {
			continue
		}
		visited[item.fn] = true
		fi := pass.Prog.FuncInfo(item.fn)
		if fi == nil || fi.Decl.Body == nil {
			continue
		}
		callees := scanHotFunc(pass, fi, item.chain)
		for _, c := range callees {
			if !visited[c] {
				chain := item.chain
				if len(chain) < 120 {
					chain += " → " + c.Name()
				}
				queue = append(queue, hotWorkItem{c, chain})
			}
		}
	}
	return nil
}

// scanHotFunc reports allocation sites in one function body and returns
// the module-local functions it statically calls.
func scanHotFunc(pass *mqx.Pass, fi *mqx.FuncInfo, chain string) []*types.Func {
	info := fi.Pkg.Info
	var callees []*types.Func
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s in hot path %s", what, chain)
	}

	var walkExpr func(e ast.Expr, suppressed bool)
	var walkStmt func(s ast.Stmt, suppressed bool)

	walkExprs := func(es []ast.Expr, suppressed bool) {
		for _, e := range es {
			walkExpr(e, suppressed)
		}
	}

	walkExpr = func(e ast.Expr, suppressed bool) {
		switch x := e.(type) {
		case nil:
		case *ast.ParenExpr:
			walkExpr(x.X, suppressed)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := unparen(x.X).(*ast.CompositeLit); ok {
					if !suppressed {
						report(x.Pos(), "heap allocation (&composite literal)")
					}
					// Still walk the literal's elements, but skip the
					// literal's own slice/map check (already reported).
					for _, el := range unparen(x.X).(*ast.CompositeLit).Elts {
						walkExpr(el, suppressed)
					}
					return
				}
			}
			walkExpr(x.X, suppressed)
		case *ast.CompositeLit:
			if !suppressed {
				switch info.Types[x].Type.Underlying().(type) {
				case *types.Slice:
					report(x.Pos(), "heap allocation (slice literal)")
				case *types.Map:
					report(x.Pos(), "heap allocation (map literal)")
				}
			}
			walkExprs(x.Elts, suppressed)
		case *ast.FuncLit:
			if !suppressed {
				report(x.Pos(), "closure literal (may allocate; hoist or annotate)")
			}
			// Body intentionally not followed: the closure itself is
			// already the finding.
		case *ast.BinaryExpr:
			if !suppressed && x.Op == token.ADD {
				if t, ok := info.Types[x]; ok {
					if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(x.Pos(), "string concatenation")
					}
				}
			}
			walkExpr(x.X, suppressed)
			walkExpr(x.Y, suppressed)
		case *ast.CallExpr:
			walkHotCall(pass, fi, x, suppressed, report, &callees, walkExpr)
		case *ast.KeyValueExpr:
			walkExpr(x.Key, suppressed)
			walkExpr(x.Value, suppressed)
		case *ast.IndexExpr:
			walkExpr(x.X, suppressed)
			walkExpr(x.Index, suppressed)
		case *ast.IndexListExpr:
			walkExpr(x.X, suppressed)
			walkExprs(x.Indices, suppressed)
		case *ast.SliceExpr:
			walkExpr(x.X, suppressed)
			walkExpr(x.Low, suppressed)
			walkExpr(x.High, suppressed)
			walkExpr(x.Max, suppressed)
		case *ast.SelectorExpr:
			walkExpr(x.X, suppressed)
		case *ast.StarExpr:
			walkExpr(x.X, suppressed)
		case *ast.TypeAssertExpr:
			walkExpr(x.X, suppressed)
		}
	}

	// blockEndsCold recognizes the two guarded early-exit shapes that are
	// off the steady-state path by construction: a body ending in panic
	// (shape checks), and a body ending in a return that hands back a
	// constructed (non-nil) error — the validation exits every *Into API
	// runs before touching data. A fast-path return of ordinary values
	// stays hot.
	blockEndsCold := func(b *ast.BlockStmt) bool {
		if b == nil || len(b.List) == 0 {
			return false
		}
		switch last := b.List[len(b.List)-1].(type) {
		case *ast.ExprStmt:
			call, ok := last.X.(*ast.CallExpr)
			return ok && isBuiltin(info, call, "panic")
		case *ast.ReturnStmt:
			for _, r := range last.Results {
				if tv, ok := info.Types[r]; ok && tv.Type != nil && !tv.IsNil() && isErrorLike(tv.Type) {
					return true
				}
			}
		}
		return false
	}

	walkStmts := func(ss []ast.Stmt, suppressed bool) {
		for _, s := range ss {
			walkStmt(s, suppressed)
		}
	}

	walkStmt = func(s ast.Stmt, suppressed bool) {
		switch x := s.(type) {
		case nil:
		case *ast.ExprStmt:
			walkExpr(x.X, suppressed)
		case *ast.AssignStmt:
			walkExprs(x.Lhs, suppressed)
			walkExprs(x.Rhs, suppressed)
		case *ast.IfStmt:
			walkStmt(x.Init, suppressed)
			walkExpr(x.Cond, suppressed)
			// An if-body that ends in panic or an error return is an
			// error path: a hot function may allocate while failing.
			walkStmt(x.Body, suppressed || blockEndsCold(x.Body))
			walkStmt(x.Else, suppressed)
		case *ast.BlockStmt:
			walkStmts(x.List, suppressed)
		case *ast.ForStmt:
			walkStmt(x.Init, suppressed)
			walkExpr(x.Cond, suppressed)
			walkStmt(x.Post, suppressed)
			walkStmt(x.Body, suppressed)
		case *ast.RangeStmt:
			walkExpr(x.X, suppressed)
			walkStmt(x.Body, suppressed)
		case *ast.ReturnStmt:
			walkExprs(x.Results, suppressed)
		case *ast.GoStmt:
			if !suppressed {
				report(x.Pos(), "go statement (allocates a goroutine)")
			}
			walkExpr(x.Call, suppressed)
		case *ast.DeferStmt:
			// defer is open-coded in the steady state; its call is still
			// scanned for allocating arguments and callees.
			walkExpr(x.Call, suppressed)
		case *ast.SwitchStmt:
			walkStmt(x.Init, suppressed)
			walkExpr(x.Tag, suppressed)
			walkStmt(x.Body, suppressed)
		case *ast.TypeSwitchStmt:
			walkStmt(x.Init, suppressed)
			walkStmt(x.Assign, suppressed)
			walkStmt(x.Body, suppressed)
		case *ast.CaseClause:
			walkExprs(x.List, suppressed)
			walkStmts(x.Body, suppressed)
		case *ast.SelectStmt:
			walkStmt(x.Body, suppressed)
		case *ast.CommClause:
			walkStmt(x.Comm, suppressed)
			walkStmts(x.Body, suppressed)
		case *ast.LabeledStmt:
			walkStmt(x.Stmt, suppressed)
		case *ast.DeclStmt:
			if gd, ok := x.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						walkExprs(vs.Values, suppressed)
					}
				}
			}
		case *ast.IncDecStmt:
			walkExpr(x.X, suppressed)
		case *ast.SendStmt:
			walkExpr(x.Chan, suppressed)
			walkExpr(x.Value, suppressed)
		}
	}

	walkStmt(fi.Decl.Body, false)
	return callees
}

func walkHotCall(pass *mqx.Pass, fi *mqx.FuncInfo, call *ast.CallExpr, suppressed bool,
	report func(token.Pos, string), callees *[]*types.Func, walkExpr func(ast.Expr, bool)) {
	info := fi.Pkg.Info

	// Builtins.
	switch {
	case isBuiltin(info, call, "panic"):
		// Error path: arguments may allocate while dying.
		for _, a := range call.Args {
			walkExpr(a, true)
		}
		return
	case isBuiltin(info, call, "make"):
		if !suppressed {
			report(call.Pos(), "heap allocation (make)")
		}
	case isBuiltin(info, call, "new"):
		if !suppressed {
			report(call.Pos(), "heap allocation (new)")
		}
	case isBuiltin(info, call, "append"):
		if !suppressed {
			report(call.Pos(), "append (may grow the backing array)")
		}
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			for _, a := range call.Args {
				walkExpr(a, suppressed)
			}
			return
		}
	}

	// Conversions.
	if isConversion(info, call) {
		if !suppressed && len(call.Args) == 1 {
			dst := info.Types[call.Fun].Type
			src := info.Types[call.Args[0]].Type
			if allocatingConversion(dst, src) {
				report(call.Pos(), fmt.Sprintf("allocating conversion to %s", dst))
			}
		}
		for _, a := range call.Args {
			walkExpr(a, suppressed)
		}
		return
	}

	fn := staticCallee(info, call)
	sig := callSignature(info, call)

	// Interface boxing at argument positions.
	if !suppressed && sig != nil {
		reportBoxedArgs(info, call, sig, report)
	}

	switch {
	case fn == nil:
		// Either an interface method (dynamic dispatch boundary —
		// annotate the implementations) or a call through a function
		// value, which the call graph cannot follow.
		if !suppressed && !isInterfaceMethodCall(info, call) {
			report(call.Pos(), "call through function value (call graph cannot follow it)")
		}
	case pass.Prog.FuncInfo(fn) != nil:
		*callees = append(*callees, fn)
	default:
		if !suppressed && !hotExternalAllowed(fn) {
			report(call.Pos(), fmt.Sprintf("call to %s (external, not proven allocation-free)", externalName(fn)))
		}
	}

	walkExpr(call.Fun, suppressed)
	for _, a := range call.Args {
		walkExpr(a, suppressed)
	}
}

func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func isInterfaceMethodCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	return ok && s.Kind() == types.MethodVal && types.IsInterface(s.Recv())
}

func reportBoxedArgs(info *types.Info, call *ast.CallExpr, sig *types.Signature, report func(token.Pos, string)) {
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding a slice, no per-arg boxing
			}
			pt = params.At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg]
		if at.Type == nil || at.IsNil() || types.IsInterface(at.Type.Underlying()) {
			continue
		}
		if pointerShaped(at.Type) {
			continue // a pointer word fits the interface directly, no allocation
		}
		report(arg.Pos(), fmt.Sprintf("interface boxing of %s argument", at.Type))
	}
}

func allocatingConversion(dst, src types.Type) bool {
	du, su := dst.Underlying(), src.Underlying()
	dstStr := isBasicString(du)
	srcStr := isBasicString(su)
	_, dstSlice := du.(*types.Slice)
	_, srcSlice := su.(*types.Slice)
	if dstStr && (srcSlice || isBasicInt(su)) {
		return true
	}
	if dstSlice && srcStr {
		return true
	}
	return false
}

func isBasicString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isBasicInt(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// pointerShaped reports whether boxing a value of t into an interface
// stores the word directly instead of heap-allocating a copy.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorLike(t types.Type) bool {
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

func hotExternalAllowed(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return true
	}
	if hotAllowedPkgs[pkg.Path()] {
		return true
	}
	return hotAllowedFuncs[pkg.Path()+"."+fn.Name()]
}

func externalName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := fn.Signature().Recv(); recv != nil {
		return strings.TrimPrefix(types.TypeString(recv.Type(), nil), "*") + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}
