package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"mqxgo/internal/analysis/mqx"
)

// LazyRange machine-checks the lazy-reduction headroom proofs that
// modmath/lazy.go and the ring span kernels previously carried only as
// prose. It runs an interval analysis over uint64 residues, tracking
// value classes as multiples of the modulus q:
//
//	[0, q)   canonical (strict)
//	[0, 2q)  relaxed — what MulShoupLazy produces and ReduceLazy consumes
//	[0, 4q)  butterfly intermediates (sums and a+2q-b differences)
//
// Classes propagate through assignments, sums (bounds add), the
// conditional-subtraction idiom `if x >= C { x -= C }` for C ∈ {q, 2q}
// (refines [0,2C) to [0,C)), and the inlined Shoup multiply pattern
// `qhat, _ := bits.Mul64(d, pre); t := d*w - qhat*q`, whose [0, 2q)
// output bound holds for ANY 64-bit d — the proof in modmath/lazy.go.
//
// Contracts come from //mqx:lazy annotations (see mqx.FuncAnnot): an
// unannotated uint64 slice parameter is documented canonical, so storing
// a relaxed value into it is reported; likewise passing a relaxed value
// to an unannotated parameter of a module function, returning one from a
// function not marked `//mqx:lazy returns`, and forming a sum whose
// bound exceeds the 4q < 2^64 inventory (it could wrap). Deleting a
// ReduceLazy call or a conditional subtraction upgrades a store from
// canonical to relaxed and is caught by the first rule.
//
// Untracked values (products, external calls, non-residue integers) are
// Top and never reported: the analyzer proves what the annotations and
// idioms let it prove, exactly like the hand proofs did. Only functions
// that visibly touch the lazy domain (a Modulus64.Q read, a call to an
// annotated function, a lazy annotation of their own, or a uint64
// parameter literally named q) are analyzed, so generic integer code
// stays out of scope.
var LazyRange = &mqx.Analyzer{
	Name: "lazyrange",
	Doc:  "lazy [0,2q) residues must be reduced before reaching strict APIs",
	Run:  runLazyRange,
}

// interval is a value class: the value provably lies in [lo*q, hi*q).
// hi == 0 means untracked (Top).
type interval struct{ lo, hi int }

var top = interval{}

func (iv interval) tracked() bool { return iv.hi > 0 }

func runLazyRange(pass *mqx.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lz := newLazyScan(pass, fd)
			if lz == nil {
				continue
			}
			lz.walkStmts(fd.Body.List)
		}
	}
	return nil
}

type lazyScan struct {
	pass  *mqx.Pass
	info  *types.Info
	annot *mqx.FuncAnnot
	fname string

	env      map[types.Object]interval
	modClass map[types.Object]int    // object holds q (1) or 2q (2)
	shoup    map[types.Object]string // qhat object -> multiplicand expr string
	params   map[types.Object]string // uint64-slice parameters, by name
}

func newLazyScan(pass *mqx.Pass, fd *ast.FuncDecl) *lazyScan {
	info := pass.Pkg.Info
	var annot *mqx.FuncAnnot
	if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
		if fi := pass.Prog.FuncInfo(fn); fi != nil {
			annot = fi.Annot()
		}
	}
	if annot == nil {
		annot = &mqx.FuncAnnot{}
	}
	lz := &lazyScan{
		pass:     pass,
		info:     info,
		annot:    annot,
		fname:    fd.Name.Name,
		env:      make(map[types.Object]interval),
		modClass: make(map[types.Object]int),
		shoup:    make(map[types.Object]string),
		params:   make(map[types.Object]string),
	}
	touches := annot.HasLazy()
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if isUint64Slice(obj.Type()) {
					lz.params[obj] = name.Name
				}
				// Scalar uint64 parameters documented relaxed start
				// tracked; everything else starts untracked (a plain
				// uint64 parameter may be a counter, not a residue).
				if isUint64(obj.Type()) && annot.LazyParams[name.Name] && !annot.WideParams[name.Name] {
					lz.env[obj] = interval{0, 2}
				}
				if name.Name == "q" && isUint64(obj.Type()) {
					lz.modClass[obj] = 1
					touches = true
				}
				if name.Name == "twoQ" && isUint64(obj.Type()) {
					lz.modClass[obj] = 2
				}
			}
		}
	}
	if !touches {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if touches {
				return false
			}
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if lz.modSelector(x) {
					touches = true
				}
			case *ast.CallExpr:
				if fn := staticCallee(info, x); fn != nil {
					if fi := pass.Prog.FuncInfo(fn); fi != nil && fi.Annot().HasLazy() {
						touches = true
					}
				}
			}
			return !touches
		})
	}
	if !touches {
		return nil
	}
	return lz
}

// modSelector reports whether sel reads the Q field of a
// modmath.Modulus64 (the modulus itself).
func (lz *lazyScan) modSelector(sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Q" {
		return false
	}
	tv, ok := lz.info.Types[sel.X]
	return ok && namedIn(tv.Type, "internal/modmath", "Modulus64")
}

// modClassOf classifies an expression as the modulus q (1), the relaxed
// bound 2q (2), or neither (0).
func (lz *lazyScan) modClassOf(e ast.Expr) int {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		if obj := lz.info.Uses[x]; obj != nil {
			return lz.modClass[obj]
		}
	case *ast.SelectorExpr:
		if lz.modSelector(x) {
			return 1
		}
	case *ast.BinaryExpr:
		if x.Op == token.MUL {
			if isIntLit(x.X, "2") && lz.modClassOf(x.Y) == 1 {
				return 2
			}
			if isIntLit(x.Y, "2") && lz.modClassOf(x.X) == 1 {
				return 2
			}
		}
	}
	return 0
}

func isIntLit(e ast.Expr, v string) bool {
	lit, ok := unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == v
}

func isUint64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

func isUint64Slice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isUint64(s.Elem())
}

// classOf evaluates the interval class of an expression under the
// current environment.
func (lz *lazyScan) classOf(e ast.Expr) interval {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		if obj := lz.info.Uses[x]; obj != nil {
			return lz.env[obj]
		}
	case *ast.IndexExpr:
		// Reads from uint64 slice parameters carry the parameter's
		// documented class; everything else is untracked.
		if id, ok := unparen(x.X).(*ast.Ident); ok {
			if obj := lz.info.Uses[id]; obj != nil {
				if name, isParam := lz.params[obj]; isParam {
					switch {
					case lz.annot.WideParams[name]:
						return top
					case lz.annot.LazyParams[name]:
						return interval{0, 2}
					default:
						return interval{0, 1}
					}
				}
			}
		}
	case *ast.CallExpr:
		if fn := staticCallee(lz.info, x); fn != nil {
			if fi := lz.pass.Prog.FuncInfo(fn); fi != nil {
				a := fi.Annot()
				switch {
				case a.LazyReturns:
					return interval{0, 2}
				case a.LazyStrict:
					return interval{0, 1}
				}
			}
		}
	case *ast.BinaryExpr:
		return lz.classOfBinary(x)
	}
	return top
}

func (lz *lazyScan) classOfBinary(x *ast.BinaryExpr) interval {
	switch x.Op {
	case token.ADD:
		l, r := lz.addOperand(x.X), lz.addOperand(x.Y)
		if !l.tracked() || !r.tracked() {
			return top
		}
		sum := interval{l.lo + r.lo, l.hi + r.hi}
		if sum.hi > 4 {
			lz.pass.Reportf(x.Pos(), "lazy headroom: sum is bounded only by %dq, exceeding the 4q < 2^64 inventory (it may wrap)", sum.hi)
			return top
		}
		return sum
	case token.SUB:
		if lz.isShoupProduct(x) {
			return interval{0, 2}
		}
		l := lz.addOperand(x.X)
		if !l.tracked() {
			return top
		}
		if c := lz.modClassOf(x.Y); c > 0 {
			if l.lo >= c {
				return interval{l.lo - c, l.hi - c}
			}
			return top
		}
		r := lz.addOperand(x.Y)
		if r.tracked() && l.lo >= r.hi {
			return interval{0, l.hi}
		}
		return top
	}
	return top
}

// addOperand classifies an operand of +/-: a q or 2q variable acts as
// the exact interval [c*q, c*q+...); tracked residues keep their class.
func (lz *lazyScan) addOperand(e ast.Expr) interval {
	if c := lz.modClassOf(e); c > 0 {
		return interval{c, c} // exactly c*q: [c*q, c*q], hi is exclusive bound in q units
	}
	return lz.classOf(e)
}

// isShoupProduct matches the inlined lazy Shoup multiply:
//
//	qhat, _ := bits.Mul64(d, pre)
//	t := d*w - qhat*q
//
// whose result is in [0, 2q) for any 64-bit d (modmath/lazy.go's proof,
// assuming — as the hand proof does — that (w, pre) is a Shoup pair for
// the modulus q).
func (lz *lazyScan) isShoupProduct(x *ast.BinaryExpr) bool {
	l, lok := unparen(x.X).(*ast.BinaryExpr)
	r, rok := unparen(x.Y).(*ast.BinaryExpr)
	if !lok || !rok || l.Op != token.MUL || r.Op != token.MUL {
		return false
	}
	// Right side must be qhat*q (either order).
	var qhatID *ast.Ident
	switch {
	case lz.modClassOf(r.Y) == 1:
		qhatID, _ = unparen(r.X).(*ast.Ident)
	case lz.modClassOf(r.X) == 1:
		qhatID, _ = unparen(r.Y).(*ast.Ident)
	}
	if qhatID == nil {
		return false
	}
	obj := lz.info.Uses[qhatID]
	if obj == nil {
		return false
	}
	mul, ok := lz.shoup[obj]
	if !ok {
		return false
	}
	// The multiplicand recorded at the bits.Mul64 must reappear as a
	// factor of the left product.
	return types.ExprString(unparen(l.X)) == mul || types.ExprString(unparen(l.Y)) == mul
}

func (lz *lazyScan) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		lz.walkStmt(s)
	}
}

func (lz *lazyScan) walkStmt(s ast.Stmt) {
	if s == nil {
		return
	}
	lz.checkCalls(s)
	switch x := s.(type) {
	case *ast.AssignStmt:
		lz.assign(x)
	case *ast.IfStmt:
		if lz.condsub(x) {
			return
		}
		lz.walkStmt(x.Init)
		saved := lz.cloneEnv()
		lz.walkStmt(x.Body)
		thenEnv := lz.env
		lz.env = saved
		if x.Else != nil {
			lz.walkStmt(x.Else)
		}
		lz.joinEnv(thenEnv)
	case *ast.BlockStmt:
		lz.walkStmts(x.List)
	case *ast.ForStmt:
		lz.walkStmt(x.Init)
		lz.invalidateAssigned(x.Body)
		lz.walkStmt(x.Body)
		lz.walkStmt(x.Post)
	case *ast.RangeStmt:
		lz.invalidateAssigned(x.Body)
		lz.walkStmt(x.Body)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			if !isUint64(lz.typeOf(r)) {
				continue
			}
			c := lz.classOf(r)
			switch {
			case c.hi > 2:
				lz.pass.Reportf(r.Pos(), "%s returns a value bounded only by %dq; reduce before returning", lz.fname, c.hi)
			case c.hi == 2 && !lz.annot.LazyReturns:
				lz.pass.Reportf(r.Pos(), "%s returns a relaxed [0,2q) value but is not annotated `//mqx:lazy returns`; call ReduceLazy or annotate", lz.fname)
			}
		}
	case *ast.SwitchStmt:
		lz.walkStmt(x.Init)
		lz.invalidateAssigned(x.Body)
		lz.walkStmt(x.Body)
	case *ast.CaseClause:
		saved := lz.cloneEnv()
		lz.walkStmts(x.Body)
		lz.env = saved
	case *ast.LabeledStmt:
		lz.walkStmt(x.Stmt)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							if obj := lz.info.Defs[name]; obj != nil {
								lz.env[obj] = lz.classOf(vs.Values[i])
							}
						}
					}
				}
			}
		}
	}
}

// condsub recognizes `if x >= C { x -= C }` for C ∈ {q, 2q} and applies
// the refinement: a value < 2C lands in [0, C); larger tracked bounds
// land at max(C, hi-C).
func (lz *lazyScan) condsub(x *ast.IfStmt) bool {
	if x.Init != nil || x.Else != nil || len(x.Body.List) != 1 {
		return false
	}
	cond, ok := unparen(x.Cond).(*ast.BinaryExpr)
	if !ok || cond.Op != token.GEQ {
		return false
	}
	id, ok := unparen(cond.X).(*ast.Ident)
	if !ok {
		return false
	}
	c := lz.modClassOf(cond.Y)
	if c == 0 {
		return false
	}
	as, ok := x.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.SUB_ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lid, ok := unparen(as.Lhs[0]).(*ast.Ident)
	if !ok || lid.Name != id.Name {
		return false
	}
	if types.ExprString(unparen(as.Rhs[0])) != types.ExprString(unparen(cond.Y)) {
		return false
	}
	obj := lz.info.Uses[id]
	if obj == nil {
		return false
	}
	cur := lz.env[obj]
	if !cur.tracked() {
		return true // recognized but nothing to refine
	}
	hi := cur.hi - c
	if hi < c {
		hi = c
	}
	lz.env[obj] = interval{0, hi}
	return true
}

func (lz *lazyScan) assign(x *ast.AssignStmt) {
	// Shoup quotient record: qhat, _ := bits.Mul64(d, pre).
	if len(x.Lhs) == 2 && len(x.Rhs) == 1 {
		if call, ok := unparen(x.Rhs[0]).(*ast.CallExpr); ok {
			if fn := staticCallee(lz.info, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "math/bits" && fn.Name() == "Mul64" && len(call.Args) == 2 {
				if id, ok := unparen(x.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
					obj := lz.info.Defs[id]
					if obj == nil {
						obj = lz.info.Uses[id]
					}
					if obj != nil {
						lz.shoup[obj] = types.ExprString(unparen(call.Args[0]))
					}
				}
				return
			}
		}
	}
	rhsFor := func(i int) ast.Expr {
		if len(x.Rhs) == len(x.Lhs) {
			return x.Rhs[i]
		}
		return nil
	}
	for i, lhs := range x.Lhs {
		rhs := rhsFor(i)
		switch l := unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			obj := lz.info.Defs[l]
			if obj == nil {
				obj = lz.info.Uses[l]
			}
			if obj == nil {
				continue
			}
			delete(lz.shoup, obj)
			if rhs == nil {
				lz.env[obj] = top
				continue
			}
			switch x.Tok {
			case token.ASSIGN, token.DEFINE:
				// Modulus bookkeeping: q := m.Q, twoQ := 2 * q.
				if c := lz.modClassOf(rhs); c > 0 {
					lz.modClass[obj] = c
					delete(lz.env, obj)
					continue
				}
				delete(lz.modClass, obj)
				lz.env[obj] = lz.classOf(rhs)
			case token.SUB_ASSIGN:
				// x -= C outside the condsub idiom: only sound when the
				// lower bound clears C.
				cur := lz.env[obj]
				if c := lz.modClassOf(rhs); c > 0 && cur.tracked() && cur.lo >= c {
					lz.env[obj] = interval{cur.lo - c, cur.hi - c}
				} else {
					lz.env[obj] = top
				}
			default:
				lz.env[obj] = top
			}
		case *ast.IndexExpr:
			if rhs != nil {
				lz.checkStore(l, rhs, x.Tok)
			}
		}
	}
}

// checkStore enforces slice-parameter contracts: an unannotated uint64
// slice parameter is documented canonical, slices= permits relaxed
// stores, and wide= accepts anything (a raw 64-bit accumulator whose
// headroom is the caller's contract). Compound stores account for the
// element already there: acc[j] += v lands old + v, not v.
func (lz *lazyScan) checkStore(l *ast.IndexExpr, rhs ast.Expr, tok token.Token) {
	id, ok := unparen(l.X).(*ast.Ident)
	if !ok {
		return
	}
	obj := lz.info.Uses[id]
	if obj == nil {
		return
	}
	name, isParam := lz.params[obj]
	if !isParam || lz.annot.WideParams[name] {
		return
	}
	var c interval
	switch tok {
	case token.ASSIGN:
		c = lz.classOf(rhs)
	case token.ADD_ASSIGN:
		old, add := lz.classOf(l), lz.classOf(rhs)
		if old.tracked() && add.tracked() {
			c = interval{old.lo + add.lo, old.hi + add.hi}
		} else {
			c = top
		}
	default:
		c = top
	}
	switch {
	case c.hi > 2:
		lz.pass.Reportf(rhs.Pos(), "stores a value bounded only by %dq into %s; reduce it first", c.hi, name)
	case c.hi == 2 && !lz.annot.LazySlices[name]:
		lz.pass.Reportf(rhs.Pos(), "stores a relaxed [0,2q) value into %s, which is documented canonical; reduce it or annotate `//mqx:lazy slices=%s`", name, name)
	}
}

// checkCalls validates argument classes against callee contracts for
// every call in the statement (evaluated under the pre-statement env).
func (lz *lazyScan) checkCalls(s ast.Stmt) {
	// Blocks and control-flow bodies are walked by walkStmt; only check
	// the expressions evaluated at this statement itself.
	var exprs []ast.Expr
	switch x := s.(type) {
	case *ast.AssignStmt:
		exprs = append(exprs, x.Rhs...)
	case *ast.ExprStmt:
		exprs = append(exprs, x.X)
	case *ast.ReturnStmt:
		exprs = append(exprs, x.Results...)
	case *ast.IfStmt:
		exprs = append(exprs, x.Cond)
	case *ast.ForStmt:
		exprs = append(exprs, x.Cond)
	default:
		return
	}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(lz.info, call)
			if fn == nil {
				return true
			}
			fi := lz.pass.Prog.FuncInfo(fn)
			if fi == nil {
				return true // external contract unknown; untracked
			}
			lz.checkCallArgs(call, fn, fi)
			return true
		})
	}
}

func (lz *lazyScan) checkCallArgs(call *ast.CallExpr, fn *types.Func, fi *mqx.FuncInfo) {
	annot := fi.Annot()
	sig := fn.Signature()
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() || (sig.Variadic() && i >= params.Len()-1) {
			break
		}
		p := params.At(i)
		if !isUint64(p.Type()) {
			continue
		}
		c := lz.classOf(arg)
		if c.hi < 2 {
			continue
		}
		switch {
		case annot.WideParams[p.Name()]:
		case annot.LazyParams[p.Name()] && c.hi <= 2:
		case annot.LazyParams[p.Name()]:
			lz.pass.Reportf(arg.Pos(), "passes a value bounded only by %dq to parameter %q of %s, which accepts at most [0,2q)", c.hi, p.Name(), fn.Name())
		default:
			lz.pass.Reportf(arg.Pos(), "passes a relaxed [0,%dq) value to strict parameter %q of %s; reduce it or annotate the callee `//mqx:lazy params=%s`", c.hi, p.Name(), fn.Name(), p.Name())
		}
	}
}

func (lz *lazyScan) typeOf(e ast.Expr) types.Type {
	if tv, ok := lz.info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

func (lz *lazyScan) cloneEnv() map[types.Object]interval {
	c := make(map[types.Object]interval, len(lz.env))
	for k, v := range lz.env {
		c[k] = v
	}
	return c
}

// joinEnv merges another branch's environment into the current one:
// agreeing classes survive, disagreements widen (max hi, min lo), and
// anything tracked on only one side goes to Top.
func (lz *lazyScan) joinEnv(other map[types.Object]interval) {
	for k, v := range lz.env {
		o, ok := other[k]
		if !ok {
			lz.env[k] = top
			continue
		}
		if o != v {
			if !o.tracked() || !v.tracked() {
				lz.env[k] = top
				continue
			}
			lo := v.lo
			if o.lo < lo {
				lo = o.lo
			}
			hi := v.hi
			if o.hi > hi {
				hi = o.hi
			}
			lz.env[k] = interval{lo, hi}
		}
	}
	for k := range other {
		if _, ok := lz.env[k]; !ok {
			lz.env[k] = top
		}
	}
}

// invalidateAssigned sets every variable assigned inside a loop body to
// Top before the body is walked: residue classes in the repo's kernels
// are re-seeded from slice reads each iteration, so loop-carried
// precision is not needed, only soundness.
func (lz *lazyScan) invalidateAssigned(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				if id, ok := unparen(l).(*ast.Ident); ok {
					if obj := lz.info.Uses[id]; obj != nil {
						if _, tracked := lz.env[obj]; tracked {
							lz.env[obj] = top
						}
						delete(lz.shoup, obj)
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := unparen(x.X).(*ast.Ident); ok {
				if obj := lz.info.Uses[id]; obj != nil {
					lz.env[obj] = top
				}
			}
		}
		return true
	})
}
