package analyzers

import (
	"testing"

	"mqxgo/internal/analysis/mqx"
)

// TestSuiteCleanOnRepo is the in-tree form of the CI gate: the full
// analyzer suite over the whole module must report nothing. Every
// invariant the analyzers prove — allocation-free hot paths, pool-scoped
// scratch, lazy-reduction headroom, context threading, domain-tag
// validation — is thereby re-checked on each test run, not only in the
// mqxlint CI job.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := mqx.NewLoader("", nil, "")
	if err != nil {
		t.Fatalf("building loader: %v", err)
	}
	prog, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := mqx.Run(prog, All)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		pos := prog.Position(d.Pos)
		t.Errorf("%s:%d:%d: [%s] %s", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
}
