package analyzers

import (
	"go/ast"
	"go/types"

	"mqxgo/internal/analysis/mqx"
)

// ScratchEscape enforces the pooled-scratch lifetime convention: a value
// obtained from sync.Pool.Get — or from a wrapper annotated //mqx:scratch,
// like the ring plan's getScratch — is only valid between its Get and the
// matching Put. Within one function body (statements taken in source
// order) it flags:
//
//   - storing the pooled value, or anything aliasing it (field
//     selections, sub-slices, &elem), into a struct field reachable from
//     a parameter or receiver, or into a package-level variable;
//   - returning the pooled value or an alias (unless the function is
//     itself a //mqx:scratch accessor);
//   - using the pooled value, or any alias, after a non-deferred Put —
//     the exact shape of the PR 7 fused-MAC m==1 aliasing bug, where a
//     scratch sub-buffer stayed live past its window.
//
// Deferred Puts are the sanctioned cleanup idiom and do not end the
// window. The walk is linear (no path-sensitivity): both branches of an
// if are scanned in order, which matches the straight-line shape of the
// repo's scratch windows.
var ScratchEscape = &mqx.Analyzer{
	Name: "scratchescape",
	Doc:  "pooled scratch must not escape its Get/Put window",
	Run:  runScratchEscape,
}

func runScratchEscape(pass *mqx.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanScratchFunc(pass, fd)
		}
	}
	return nil
}

type scratchState struct {
	pass     *mqx.Pass
	info     *types.Info
	fnAnnot  *mqx.FuncAnnot
	boundary map[types.Object]bool // params, receiver, results: stores into these escape
	pkgScope *types.Scope

	pooled map[types.Object]int // alias object -> pool token
	killed map[int]bool         // tokens recycled by a non-deferred Put
	nextID int
}

func scanScratchFunc(pass *mqx.Pass, fd *ast.FuncDecl) {
	fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	var annot *mqx.FuncAnnot
	if fn != nil {
		if fi := pass.Prog.FuncInfo(fn); fi != nil {
			annot = fi.Annot()
		}
	}
	if annot == nil {
		annot = &mqx.FuncAnnot{}
	}
	st := &scratchState{
		pass:     pass,
		info:     pass.Pkg.Info,
		fnAnnot:  annot,
		boundary: funcScopeObjects(pass.Pkg.Info, fd),
		pkgScope: pass.Pkg.Types.Scope(),
		pooled:   make(map[types.Object]int),
		killed:   make(map[int]bool),
	}
	st.walkStmts(fd.Body.List)
}

// poolGet reports whether the expression produces a pooled value: a
// sync.Pool Get call, a //mqx:scratch wrapper call, or either of those
// behind a type assertion.
func (st *scratchState) poolGet(e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.TypeAssertExpr:
		return st.poolGet(x.X)
	case *ast.CallExpr:
		if st.isSyncPoolMethod(x, "Get") {
			return true
		}
		if fn := staticCallee(st.info, x); fn != nil {
			if fi := st.pass.Prog.FuncInfo(fn); fi != nil && fi.Annot().Scratch {
				return true
			}
		}
	}
	return false
}

// poolPut returns the recycled argument if the call is a sync.Pool Put
// or a //mqx:scratchput wrapper; nil otherwise.
func (st *scratchState) poolPut(call *ast.CallExpr) ast.Expr {
	if st.isSyncPoolMethod(call, "Put") && len(call.Args) == 1 {
		return call.Args[0]
	}
	if fn := staticCallee(st.info, call); fn != nil {
		if fi := st.pass.Prog.FuncInfo(fn); fi != nil && fi.Annot().ScratchPut && len(call.Args) >= 1 {
			return call.Args[0]
		}
	}
	return nil
}

func (st *scratchState) isSyncPoolMethod(call *ast.CallExpr, name string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	s, ok := st.info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	return namedIn(s.Recv(), "sync", "Pool")
}

// pooledToken returns the pool token an expression aliases, or -1. An
// expression of basic type (tmp[p] on a pooled []uint64, len(tmp)) is a
// value copied OUT of the slab, not an alias into it — reading elements
// into caller memory is the whole point of a scratch buffer.
func (st *scratchState) pooledToken(e ast.Expr) int {
	if tv, ok := st.info.Types[e]; ok && tv.Type != nil {
		if _, basic := tv.Type.Underlying().(*types.Basic); basic {
			return -1
		}
	}
	if id := rootIdent(e); id != nil {
		if obj := st.info.Uses[id]; obj != nil {
			if tok, ok := st.pooled[obj]; ok {
				return tok
			}
		}
	}
	return -1
}

func (st *scratchState) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		st.walkStmt(s)
	}
}

func (st *scratchState) walkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.AssignStmt:
		st.assign(x)
	case *ast.ExprStmt:
		if call, ok := unparen(x.X).(*ast.CallExpr); ok {
			if arg := st.poolPut(call); arg != nil {
				if tok := st.pooledToken(arg); tok >= 0 {
					st.killed[tok] = true
				}
				return
			}
		}
		st.checkUses(x.X)
	case *ast.DeferStmt:
		// Deferred Put is the sanctioned cleanup; a deferred closure is
		// scanned for escapes only (it runs at exit, outside the linear
		// window model).
		if st.poolPut(x.Call) != nil {
			return
		}
		if lit, ok := unparen(x.Call.Fun).(*ast.FuncLit); ok {
			st.walkClosure(lit)
			return
		}
		st.checkUses(x.Call)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			st.checkUses(r)
			if tok := st.pooledToken(r); tok >= 0 && !st.fnAnnot.Scratch {
				st.pass.Reportf(r.Pos(), "pooled scratch returned from %s: it outlives its Get/Put window (annotate the accessor //mqx:scratch if intentional)", describeExpr(r))
			}
		}
	case *ast.IfStmt:
		st.walkStmt(x.Init)
		st.checkUses(x.Cond)
		st.walkStmt(x.Body)
		st.walkStmt(x.Else)
	case *ast.BlockStmt:
		st.walkStmts(x.List)
	case *ast.ForStmt:
		st.walkStmt(x.Init)
		st.checkUses(x.Cond)
		st.walkStmt(x.Body)
		st.walkStmt(x.Post)
	case *ast.RangeStmt:
		st.checkUses(x.X)
		st.walkStmt(x.Body)
	case *ast.SwitchStmt:
		st.walkStmt(x.Init)
		st.checkUses(x.Tag)
		st.walkStmt(x.Body)
	case *ast.TypeSwitchStmt:
		st.walkStmt(x.Init)
		st.walkStmt(x.Assign)
		st.walkStmt(x.Body)
	case *ast.CaseClause:
		for _, e := range x.List {
			st.checkUses(e)
		}
		st.walkStmts(x.Body)
	case *ast.SelectStmt:
		st.walkStmt(x.Body)
	case *ast.CommClause:
		st.walkStmt(x.Comm)
		st.walkStmts(x.Body)
	case *ast.LabeledStmt:
		st.walkStmt(x.Stmt)
	case *ast.GoStmt:
		st.checkUses(x.Call)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st.checkUses(v)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		st.checkUses(x.X)
	case *ast.SendStmt:
		st.checkUses(x.Chan)
		st.checkUses(x.Value)
	}
}

func (st *scratchState) assign(x *ast.AssignStmt) {
	for _, r := range x.Rhs {
		st.checkUses(r)
	}
	// Pooledness of each RHS position (1:1 or single tuple RHS).
	rhsFor := func(i int) ast.Expr {
		if len(x.Rhs) == len(x.Lhs) {
			return x.Rhs[i]
		}
		if len(x.Rhs) == 1 {
			return x.Rhs[0]
		}
		return nil
	}
	for i, lhs := range x.Lhs {
		rhs := rhsFor(i)
		if rhs == nil {
			continue
		}
		fresh := st.poolGet(rhs)
		aliasTok := st.pooledToken(rhs)

		switch l := unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			obj := st.info.Defs[l]
			if obj == nil {
				obj = st.info.Uses[l]
			}
			if obj == nil {
				continue
			}
			switch {
			case fresh:
				st.nextID++
				st.pooled[obj] = st.nextID
			case aliasTok >= 0:
				if st.isGlobal(obj) {
					st.pass.Reportf(lhs.Pos(), "pooled scratch stored into package-level variable %s: it escapes its Get/Put window", l.Name)
					continue
				}
				st.pooled[obj] = aliasTok
			default:
				delete(st.pooled, obj) // reassigned to something fresh
			}
		default:
			// Store into a field, element, or dereference. Escape if the
			// destination is rooted outside this function's locals and
			// the value is pooled.
			if !fresh && aliasTok < 0 {
				continue
			}
			root := rootIdent(lhs)
			if root == nil {
				st.pass.Reportf(lhs.Pos(), "pooled scratch stored through an unanalyzable destination")
				continue
			}
			obj := st.info.Uses[root]
			if obj == nil {
				obj = st.info.Defs[root]
			}
			if obj == nil {
				continue
			}
			if _, destPooled := st.pooled[obj]; destPooled {
				continue // sc.a = sc.b: stays inside the window
			}
			if st.boundary[obj] || st.isGlobal(obj) {
				st.pass.Reportf(lhs.Pos(), "pooled scratch stored into %s, which is reachable outside this call: it escapes its Get/Put window", describeExpr(lhs))
			}
		}
	}
}

func (st *scratchState) isGlobal(obj types.Object) bool {
	return obj.Parent() == st.pkgScope
}

// checkUses reports identifiers that alias a pool token already recycled
// by a non-deferred Put. Closure literals are scanned for escapes only.
func (st *scratchState) checkUses(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			st.walkClosure(x)
			return false
		case *ast.Ident:
			obj := st.info.Uses[x]
			if obj == nil {
				return true
			}
			if tok, ok := st.pooled[obj]; ok && st.killed[tok] {
				st.pass.Reportf(x.Pos(), "use of pooled scratch %s after Put: the buffer may already be reused by another goroutine", x.Name)
			}
		}
		return true
	})
}

// walkClosure scans a closure body for escape stores (fields of captured
// non-locals, globals) without applying the linear Put/use-after model,
// since the closure's execution point is not tied to its position.
func (st *scratchState) walkClosure(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			if st.pooledToken(as.Rhs[i]) < 0 {
				continue
			}
			if _, isIdent := unparen(lhs).(*ast.Ident); isIdent {
				continue
			}
			root := rootIdent(lhs)
			if root == nil {
				continue
			}
			obj := st.info.Uses[root]
			if obj == nil {
				continue
			}
			if _, destPooled := st.pooled[obj]; destPooled {
				continue
			}
			if st.boundary[obj] || st.isGlobal(obj) {
				st.pass.Reportf(lhs.Pos(), "pooled scratch stored into %s from a closure: it escapes its Get/Put window", describeExpr(lhs))
			}
		}
		return true
	})
}

func describeExpr(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if root := rootIdent(x); root != nil {
			return root.Name + "." + x.Sel.Name
		}
		return x.Sel.Name
	case *ast.IndexExpr:
		return describeExpr(x.X) + "[...]"
	case *ast.SliceExpr:
		return describeExpr(x.X) + "[...]"
	default:
		return "expression"
	}
}
