// Package fixture holds a reasonless //mqx:allow: it must suppress
// nothing and be reported as malformed itself.
package fixture

//mqx:hotpath
func warm(n int) []uint64 {
	//mqx:allow hotalloc
	return make([]uint64, n)
}
