// Package fixture exercises the ctxphase analyzer: exported ...Ctx APIs
// must actually thread their context, and — because this package carries
// the //mqx:ctxstrict directive, like internal/serve — calls to bare
// siblings of Ctx APIs in other packages are forbidden.
//
//mqx:ctxstrict
package fixture

import (
	"context"

	"mqxgo/internal/fhe"
)

// phaseGate mirrors the backends' tower-phase checkpoint.
func phaseGate(ctx context.Context, phase string) error {
	_ = phase
	return ctx.Err()
}

// DeadCtx is the lie the analyzer exists for: a Ctx suffix over a body
// that ignores its context.
func DeadCtx(ctx context.Context, n int) int { // want `DeadCtx is exported with a Ctx suffix but never threads its context`
	return n * 2
}

// GateCtx threads the context straight into the phase gate.
func GateCtx(ctx context.Context) error {
	return phaseGate(ctx, "gate")
}

// ObserveCtx observes the context directly instead of gating.
func ObserveCtx(ctx context.Context) error {
	return ctx.Err()
}

// ChainCtx delegates to an unexported helper that gates each hop — the
// galoisChain shape the transitive rule exists for.
func ChainCtx(ctx context.Context, hops int) error {
	return chain(ctx, hops)
}

func chain(ctx context.Context, hops int) error {
	for i := 0; i < hops; i++ {
		if err := phaseGate(ctx, "hop"); err != nil {
			return err
		}
	}
	return nil
}

// LaunderCtx hands its context to a helper that also ignores it: passing
// the context around is not threading it.
func LaunderCtx(ctx context.Context, n int) int { // want `LaunderCtx is exported with a Ctx suffix but never threads its context`
	return launder(ctx, n)
}

func launder(ctx context.Context, n int) int {
	_ = ctx
	return n + 1
}

// evalBare calls the bare scheme API from a ctxstrict package: the
// admission deadline never reaches the tower phases.
func evalBare(s *fhe.BackendScheme, ct fhe.BackendCiphertext) {
	s.ModSwitch(ct) // want `calls fhe\.BackendScheme\.ModSwitch from a //mqx:ctxstrict package, but ModSwitchCtx exists`
}

// evalCtx is the compliant caller.
func evalCtx(ctx context.Context, s *fhe.BackendScheme, ct fhe.BackendCiphertext) (fhe.BackendCiphertext, error) {
	return s.ModSwitchCtx(ctx, ct)
}

// evalAllowed is evalBare consciously accepted, reason in scope.
func evalAllowed(s *fhe.BackendScheme, ct fhe.BackendCiphertext) {
	//mqx:allow ctxphase fixture exercises the bare path deliberately
	s.ModSwitch(ct)
}
