// Package fixture exercises the domaintag analyzer: exported readers of
// BackendCiphertext component polys must validate the domain tag before
// touching .A or .B.
package fixture

import (
	"fmt"

	"mqxgo/internal/fhe"
)

// Validate is the fixture's domain validator; the annotation is what
// makes calls to it satisfy the ordered-check rule.
//
//mqx:domaincheck
func Validate(ct fhe.BackendCiphertext) error {
	if ct.Domain > fhe.DomainNTT {
		return fmt.Errorf("fixture: unknown domain tag %d", ct.Domain)
	}
	return nil
}

// Components reads the component polys with no check at all.
func Components(ct fhe.BackendCiphertext) (fhe.Poly, fhe.Poly) {
	return ct.A, ct.B // want `Components reads BackendCiphertext\.A without a prior domain check`
}

// ComponentsChecked validates before the reads.
func ComponentsChecked(ct fhe.BackendCiphertext) (fhe.Poly, fhe.Poly, error) {
	if err := Validate(ct); err != nil {
		return nil, nil, err
	}
	return ct.A, ct.B, nil
}

// ComponentTagged inspects the tag inline instead of calling a validator.
func ComponentTagged(ct fhe.BackendCiphertext) fhe.Poly {
	if ct.Domain != fhe.DomainNTT {
		return nil
	}
	return ct.A
}

// LateCheck bolts the validation on after the arithmetic: the ordered
// rule still reports it.
func LateCheck(ct fhe.BackendCiphertext) fhe.Poly {
	a := ct.A // want `LateCheck reads BackendCiphertext\.A without a prior domain check`
	if err := Validate(ct); err != nil {
		return nil
	}
	return a
}

// componentInternal is unexported: inside the validated perimeter, exempt.
func componentInternal(ct fhe.BackendCiphertext) fhe.Poly {
	return ct.A
}

// ComponentAllowed reads without a check, consciously accepted.
func ComponentAllowed(ct fhe.BackendCiphertext) fhe.Poly {
	//mqx:allow domaintag fixture reads a component deliberately
	return ct.A
}

var _ = componentInternal
