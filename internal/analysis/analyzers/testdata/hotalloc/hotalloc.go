// Package fixture exercises the hotalloc analyzer: allocation sites in
// //mqx:hotpath call graphs are reported, cold paths and allowlisted
// callees are not, and //mqx:allow suppresses a conscious exception.
package fixture

import (
	"fmt"
	"math/bits"
	"strings"
)

// hot is an annotated root: its own allocations and those of everything
// it statically calls are findings.
//
//mqx:hotpath
func hot(dst []uint64, n int) []uint64 {
	buf := make([]uint64, n) // want `heap allocation \(make\) in hot path hot`
	helper(dst)
	return buf
}

// helper is unannotated but reached from hot, so it is scanned under
// hot's chain.
func helper(dst []uint64) {
	dst = append(dst, 1) // want `append \(may grow the backing array\) in hot path hot → helper`
	_ = dst
}

// cold has the same body as hot but no annotation and no hot caller:
// nothing is reported.
func cold(n int) []uint64 {
	return make([]uint64, n)
}

// guarded shows the two cold-path suppressions: a body ending in panic
// and a body ending in a constructed error return may allocate.
//
//mqx:hotpath
func guarded(a, b []uint64) error {
	if len(a) != len(b) {
		panic(fmt.Sprintf("fixture: length mismatch %d != %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return fmt.Errorf("fixture: empty input")
	}
	for i := range a {
		a[i] += b[i]
	}
	return nil
}

// boxes passes a non-pointer-shaped value to an interface parameter.
//
//mqx:hotpath
func boxes(v int) {
	sink(v) // want `interface boxing of int argument in hot path boxes`
}

func sink(v any) { _ = v }

// noBox passes pointer-shaped values: a pointer word fits the interface
// directly, no finding.
//
//mqx:hotpath
func noBox(p *int) {
	sink(p)
}

// spawns starts a goroutine through a function value: both the go
// statement and the unfollowable call are findings.
//
//mqx:hotpath
func spawns(f func()) {
	go f() // want `go statement \(allocates a goroutine\) in hot path spawns` `call through function value \(call graph cannot follow it\) in hot path spawns`
}

// external calls outside the module off the proven-free allowlist.
//
//mqx:hotpath
func external(s string) int {
	return strings.Count(s, "x") // want `call to strings\.Count \(external, not proven allocation-free\) in hot path external`
}

// allowlisted calls math/bits and friends: proven allocation-free.
//
//mqx:hotpath
func allowlisted(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}

// closes builds a closure literal in the hot body.
//
//mqx:hotpath
func closes(n int) func() int {
	f := func() int { return n } // want `closure literal \(may allocate; hoist or annotate\) in hot path closes`
	return f
}

// warm allocates once deliberately, excused by a line-scoped allow.
//
//mqx:hotpath
func warm(n int) []uint64 {
	//mqx:allow hotalloc fixture demonstrates a deliberate warm-up allocation
	buf := make([]uint64, n)
	return buf
}

// warmDoc allocates under a doc-scoped allow covering the whole body.
//
//mqx:hotpath
//mqx:allow hotalloc warm-up allocation audited by this fixture
func warmDoc(n int) []uint64 {
	return make([]uint64, n)
}

var _ = []any{hot, cold, guarded, boxes, noBox, spawns, external, allowlisted, closes, warm, warmDoc}
