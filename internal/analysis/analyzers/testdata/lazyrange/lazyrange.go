// Package fixture exercises the lazyrange analyzer: the machine-checked
// replacement for the prose headroom proofs. reduceRowMissing is the
// acceptance shape — reduceRow with its conditional subtraction deleted
// — and must be caught.
package fixture

import "math/bits"

// mulLazy is the fixture's MulShoupLazy: the inlined Shoup idiom lands
// in [0, 2q) for ANY 64-bit a, and the contract says so.
//
//mqx:lazy returns wide=a
func mulLazy(a, w, pre, q uint64) uint64 {
	qhat, _ := bits.Mul64(a, pre)
	return a*w - qhat*q
}

// mulLeaky is the same body without the `returns` contract: handing a
// relaxed value to callers documented canonical is reported.
//
//mqx:lazy wide=a
func mulLeaky(a, w, pre, q uint64) uint64 {
	qhat, _ := bits.Mul64(a, pre)
	return a*w - qhat*q // want `mulLeaky returns a relaxed \[0,2q\) value but is not annotated`
}

// reduceRow reduces each relaxed input to canonical before the store:
// the conditional subtraction is what discharges the proof obligation.
//
//mqx:lazy params=in
func reduceRow(out, in []uint64, q uint64) {
	for j := range in {
		x := in[j]
		if x >= q {
			x -= q
		}
		out[j] = x
	}
}

// reduceRowMissing is reduceRow with the condsub deleted — the exact
// edit the analyzer exists to catch: a [0,2q) value stored into a slice
// parameter documented canonical.
//
//mqx:lazy params=in
func reduceRowMissing(out, in []uint64, q uint64) {
	for j := range in {
		x := in[j]
		out[j] = x // want `stores a relaxed \[0,2q\) value into out, which is documented canonical`
	}
}

// sumHeadroom stays inside the 4q < 2^64 inventory: two relaxed values
// sum to [0, 4q) and two conditional subtracts land canonical.
//
//mqx:lazy params=a,b
func sumHeadroom(a, b, q uint64) uint64 {
	twoQ := 2 * q
	s := a + b
	if s >= twoQ {
		s -= twoQ
	}
	if s >= q {
		s -= q
	}
	return s
}

// sumOverflow adds a third relaxed term: bounded only by 6q, past the
// proved no-wrap envelope.
//
//mqx:lazy params=a,b
func sumOverflow(a, b, q uint64) uint64 {
	s := a + b
	d := s + a // want `lazy headroom: sum is bounded only by 6q`
	return d
}

// canonOnly documents canonical inputs and outputs.
//
//mqx:lazy strict
func canonOnly(x, q uint64) uint64 {
	if x >= q {
		x -= q
	}
	return x
}

// passesRelaxed hands a relaxed residue to canonOnly's strict parameter.
//
//mqx:lazy params=a
func passesRelaxed(a, q uint64) uint64 {
	return canonOnly(a, q) // want `passes a relaxed \[0,2q\) value to strict parameter "x" of canonOnly`
}

// reduceFirst is the corrected caller: condsub, then the strict call.
//
//mqx:lazy params=a
func reduceFirst(a, q uint64) uint64 {
	if a >= q {
		a -= q
	}
	return canonOnly(a, q)
}

// allowedStore keeps a relaxed store on purpose, with the reason
// recorded in scope.
//
//mqx:lazy params=in
func allowedStore(out, in []uint64, q uint64) {
	for j := range in {
		//mqx:allow lazyrange fixture keeps a deliberate relaxed store
		out[j] = in[j]
	}
}

var _ = []any{mulLazy, mulLeaky, reduceRow, reduceRowMissing, sumHeadroom, sumOverflow, canonOnly, passesRelaxed, reduceFirst, allowedStore}
