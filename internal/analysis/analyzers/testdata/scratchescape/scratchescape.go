// Package fixture exercises the scratchescape analyzer: pooled values
// must stay inside their Get/Put window. The useAfterPut shape is the
// PR 7 fused-MAC m==1 aliasing bug — a scratch sub-buffer living past
// its Put — kept here as a permanent regression fixture.
package fixture

import "sync"

var pool = sync.Pool{New: func() any { b := make([]uint64, 64); return &b }}

var sink []uint64

type holder struct{ buf []uint64 }

// plan mirrors ring.Plan's pool accessors: //mqx:scratch values behave
// like Pool.Get results in callers, //mqx:scratchput like Pool.Put.
type plan struct{ pool sync.Pool }

// getScratch hands out a pooled slab; returning it is the accessor's
// job, so the annotation exempts its own return.
//
//mqx:scratch
func (p *plan) getScratch() *[]uint64 {
	return p.pool.Get().(*[]uint64)
}

//mqx:scratchput
func (p *plan) putScratch(bp *[]uint64) { p.pool.Put(bp) }

// useAfterPut is the PR 7 m==1 regression shape: src aliases the slab
// through a sub-slice and is still read after putScratch recycles it.
func (p *plan) useAfterPut(dst []uint64) {
	bp := p.getScratch()
	src := (*bp)[:len(dst)]
	p.putScratch(bp)
	copy(dst, src) // want `use of pooled scratch src after Put`
}

// window is the corrected shape: every alias dies before the Put.
func (p *plan) window(dst []uint64) {
	bp := p.getScratch()
	src := (*bp)[:len(dst)]
	copy(dst, src)
	p.putScratch(bp)
}

// storeEscape parks pooled scratch in a caller-reachable field.
func storeEscape(h *holder) {
	bp := pool.Get().(*[]uint64)
	h.buf = *bp // want `pooled scratch stored into h\.buf, which is reachable outside this call`
	pool.Put(bp)
}

// globalEscape parks pooled scratch in a package-level variable.
func globalEscape() {
	bp := pool.Get().(*[]uint64)
	sink = *bp // want `pooled scratch stored into package-level variable sink`
	pool.Put(bp)
}

// leak returns the pooled value from a function that is not a
// //mqx:scratch accessor.
func leak() []uint64 {
	bp := pool.Get().(*[]uint64)
	defer pool.Put(bp)
	return *bp // want `pooled scratch returned from expression: it outlives its Get/Put window`
}

// copyOut reads an element out of the slab before the Put: a value of
// basic type is caller memory, not an alias, so using it afterwards is
// fine (the slots-decode shape).
func copyOut() uint64 {
	bp := pool.Get().(*[]uint64)
	v := (*bp)[0]
	pool.Put(bp)
	return v
}

// deferredPut uses the sanctioned cleanup idiom: the deferred Put does
// not end the window, so every use below it is in range.
func deferredPut(dst []uint64) {
	bp := pool.Get().(*[]uint64)
	defer pool.Put(bp)
	copy(dst, (*bp)[:len(dst)])
}

// allowedAfterPut is useAfterPut consciously accepted, with the reason
// recorded next to the code it excuses.
func (p *plan) allowedAfterPut(dst []uint64) {
	bp := p.getScratch()
	src := (*bp)[:len(dst)]
	p.putScratch(bp)
	//mqx:allow scratchescape fixture demonstrates an audited post-Put read
	copy(dst, src)
}

var _ = []any{(*plan).useAfterPut, (*plan).window, storeEscape, globalEscape, leak, copyOut, deferredPut, (*plan).allowedAfterPut}
