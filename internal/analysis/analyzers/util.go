// Package analyzers holds the five mqxlint analyzers. Each one encodes a
// convention the repo's hot paths rely on but that only runtime tests
// defended before: allocation-free //mqx:hotpath call graphs (hotalloc),
// pool-scoped scratch lifetimes (scratchescape), machine-checked lazy
// reduction headroom (lazyrange), context threading at BEHZ phase
// boundaries (ctxphase), and domain-tag validation before ciphertext
// component access (domaintag).
package analyzers

import (
	"go/ast"
	"go/types"

	"mqxgo/internal/analysis/mqx"
)

// All is the mqxlint suite in reporting order.
var All = []*mqx.Analyzer{
	HotAlloc,
	ScratchEscape,
	LazyRange,
	CtxPhase,
	DomainTag,
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// staticCallee resolves a call to the *types.Func it statically invokes:
// package-level functions, methods with a concrete receiver, and
// qualified imports. Interface method calls and indirect calls through
// function values return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return nil // dynamic dispatch boundary
			}
			return fn
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr:
		// Explicitly instantiated generic function: f[T](...).
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// namedIn reports whether t (after pointer dereference) is the named
// type pkgSuffix.name, matching the package by import-path suffix so the
// check holds for both the real module path and fixture stand-ins.
func namedIn(t types.Type, pkgSuffix, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == pkgSuffix || hasPathSuffix(path, pkgSuffix)
}

func hasPathSuffix(path, suffix string) bool {
	return len(path) > len(suffix) && path[len(path)-len(suffix)-1] == '/' &&
		path[len(path)-len(suffix):] == suffix
}

// rootIdent walks selector/index/star/slice chains to the base
// identifier: rootIdent(a.b[i].c) == a. Returns nil for rootless
// expressions (calls, literals).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// funcScopeObjects collects the objects declared by a function's
// receiver, parameters, and named results.
func funcScopeObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				if obj := info.Defs[n]; obj != nil {
					objs[obj] = true
				}
			}
		}
	}
	if fd.Recv != nil {
		addFields(fd.Recv)
	}
	if fd.Type.Params != nil {
		addFields(fd.Type.Params)
	}
	if fd.Type.Results != nil {
		addFields(fd.Type.Results)
	}
	return objs
}
