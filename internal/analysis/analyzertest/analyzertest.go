// Package analyzertest is the fixture harness for the mqxlint analyzers:
// the narrow slice of golang.org/x/tools/go/analysis/analysistest this
// repository needs, rebuilt on the mqx loader. A fixture directory under
// testdata/ is type-checked as one synthetic package against the live
// module (so fixtures may import mqxgo packages), the analyzers under
// test run through mqx.Run — meaning //mqx:allow suppression is part of
// what fixtures exercise — and the resulting diagnostics are matched
// against `// want "regexp"` comments in the fixture sources.
//
// Expectation grammar, per analysistest convention:
//
//	x := make([]uint64, n) // want "heap allocation"
//	go f()                 // want "go statement" "function value"
//
// Each quoted string is an RE2 regexp matched against the diagnostic
// message; expectations bind to the line the comment sits on, and every
// diagnostic must consume exactly one expectation on its line (and vice
// versa).
package analyzertest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mqxgo/internal/analysis/mqx"
)

// expectation is one `// want "re"` clause, bound to a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture directory, runs the analyzers over it through
// mqx.Run, and reports any mismatch between diagnostics and `// want`
// expectations as test errors.
func Run(t *testing.T, dir string, analyzers ...*mqx.Analyzer) {
	t.Helper()
	check(t, Diags(t, dir, analyzers...))
}

// Diags loads the fixture directory and returns the raw diagnostic set
// (post allow-filtering), with the expectations it would be checked
// against left alone — for tests that need to assert on diagnostics a
// `// want` comment cannot reach, like malformed-allow findings reported
// at the allow comment itself.
func Diags(t *testing.T, dir string, analyzers ...*mqx.Analyzer) *Result {
	t.Helper()
	loader, err := mqx.NewLoader("", nil, "")
	if err != nil {
		t.Fatalf("building loader: %v", err)
	}
	prog, err := loader.CheckDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := mqx.Run(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", dir, err)
	}
	return &Result{Prog: prog, Diagnostics: diags, wants: collectWants(t, prog)}
}

// Result pairs a fixture program with the diagnostics its analyzers
// produced.
type Result struct {
	Prog        *mqx.Program
	Diagnostics []mqx.Diagnostic

	wants []*expectation
}

func check(t *testing.T, res *Result) {
	t.Helper()
	for _, d := range res.Diagnostics {
		pos := res.Prog.Position(d.Pos)
		if w := matchWant(res.wants, pos.Filename, pos.Line, d.Message); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
	}
	for _, w := range res.wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// matchWant finds the first unconsumed expectation on (file, line) whose
// regexp matches the message.
func matchWant(wants []*expectation, file string, line int, msg string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

// wantClause extracts the quoted regexp strings from one want comment
// body — double-quoted or backquoted, per analysistest convention.
var wantClause = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(t *testing.T, prog *mqx.Program) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range prog.Targets() {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(body, "want ") {
						continue
					}
					pos := prog.Position(c.Pos())
					clauses := wantClause.FindAllString(strings.TrimPrefix(body, "want "), -1)
					if len(clauses) == 0 {
						t.Fatalf("%s:%d: malformed want comment (no quoted regexp): %s", pos.Filename, pos.Line, c.Text)
					}
					for _, q := range clauses {
						raw, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: unquoting %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s:%d: compiling want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
					}
				}
			}
		}
	}
	return wants
}
