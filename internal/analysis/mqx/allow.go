package mqx

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppressions: `//mqx:allow <analyzer> <reason>` silences one
// analyzer's findings in a bounded scope. The reason is mandatory — an
// allow with no justification does not suppress anything (and mqxlint
// reports it as malformed). Scopes:
//
//   - a trailing comment suppresses findings on its own line;
//   - a comment on its own line suppresses findings on the next line;
//   - an allow inside a function's doc comment suppresses findings
//     anywhere in that function's body.
type allowIndex struct {
	fset *token.FileSet
	// byLine maps file -> line -> analyzers allowed on that line.
	byLine map[string]map[int]map[string]bool
	// ranges are function-scoped allows.
	ranges []allowRange
	// malformed are //mqx:allow comments missing analyzer or reason.
	malformed []Diagnostic
}

type allowRange struct {
	file       string
	start, end int // line range, inclusive
	analyzer   string
}

func buildAllowIndex(fset *token.FileSet, pkgs []*Package) *allowIndex {
	idx := &allowIndex{fset: fset, byLine: make(map[string]map[int]map[string]bool)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			idx.addFile(f)
		}
	}
	return idx
}

func (idx *allowIndex) addFile(f *ast.File) {
	// Doc-scoped allows: an allow in a FuncDecl doc covers the body.
	docs := make(map[*ast.CommentGroup]*ast.FuncDecl)
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
			docs[fd.Doc] = fd
		}
	}
	for _, cg := range f.Comments {
		fd := docs[cg]
		for _, c := range cg.List {
			line := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(line, "mqx:allow") {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(line, "mqx:allow"))
			if len(fields) < 2 {
				idx.malformed = append(idx.malformed, Diagnostic{
					Pos:      c.Pos(),
					Analyzer: "mqxallow",
					Message:  "malformed //mqx:allow: need `//mqx:allow <analyzer> <reason>` (reason is mandatory)",
				})
				continue
			}
			analyzer := fields[0]
			pos := idx.fset.Position(c.Pos())
			if fd != nil {
				start := idx.fset.Position(fd.Pos()).Line
				end := idx.fset.Position(fd.End()).Line
				idx.ranges = append(idx.ranges, allowRange{pos.Filename, start, end, analyzer})
				continue
			}
			lines := idx.byLine[pos.Filename]
			if lines == nil {
				lines = make(map[int]map[string]bool)
				idx.byLine[pos.Filename] = lines
			}
			for _, ln := range []int{pos.Line, pos.Line + 1} {
				if lines[ln] == nil {
					lines[ln] = make(map[string]bool)
				}
				lines[ln][analyzer] = true
			}
		}
	}
}

// allowed reports whether d is suppressed by an in-scope allow.
func (idx *allowIndex) allowed(d Diagnostic) bool {
	pos := idx.fset.Position(d.Pos)
	if m := idx.byLine[pos.Filename]; m != nil && m[pos.Line][d.Analyzer] {
		return true
	}
	for _, r := range idx.ranges {
		if r.analyzer == d.Analyzer && r.file == pos.Filename && pos.Line >= r.start && pos.Line <= r.end {
			return true
		}
	}
	return false
}
