// Package mqx is a self-contained analysis framework: the narrow slice
// of golang.org/x/tools/go/analysis this repository needs, rebuilt on
// the standard library alone (go/parser + go/types + the source
// importer, with package discovery delegated to `go list`). The shape
// deliberately mirrors go/analysis — an Analyzer owns a Run function
// over a Pass — so the suite can migrate to the real multichecker
// verbatim once the x/tools dependency is available; until then nothing
// outside the toolchain is required to build or run the linters.
//
// Two repo-specific mechanisms live here rather than in the analyzers:
//
//   - Annotations (annot.go): `//mqx:` directive comments on functions
//     and packages (hotpath, lazy-domain contracts, domain-check and
//     scratch-pool markers) that the analyzers read as machine-checked
//     API documentation.
//   - Suppressions (allow.go): `//mqx:allow <analyzer> <reason>` filters
//     findings the repo has consciously accepted, with the reason kept
//     next to the code it excuses.
package mqx

import (
	"fmt"
	"go/token"
)

// Analyzer describes one static check: a name (used in diagnostics and
// in //mqx:allow suppressions), one-paragraph documentation, and the Run
// function invoked once per analyzed package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, attributed to the analyzer that produced
// it. Pos resolves through the Program's shared FileSet, so findings may
// point into a dependency package (hotalloc reports allocation sites in
// callees reached from another package's hot root).
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries everything one analyzer invocation may inspect: the
// package under analysis plus the whole loaded Program for cross-package
// queries (call graphs, annotations on callees in other packages).
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos. Duplicate (position, message) pairs
// for the same analyzer are collapsed by the runner, so analyzers that
// reach one site from several roots need not dedupe themselves.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}
