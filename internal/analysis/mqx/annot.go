package mqx

import (
	"go/ast"
	"strings"
)

// FuncAnnot is the parsed set of //mqx: directives from one function's
// doc comment. The grammar (documented in the README's "Static analysis"
// section) is deliberately small:
//
//	//mqx:hotpath
//	    The function and everything it statically calls inside the
//	    module must be allocation-free (hotalloc).
//
//	//mqx:scratch
//	    The function returns pooled scratch (a sync.Pool accessor
//	    wrapper); scratchescape treats its results like Pool.Get values
//	    in callers and permits the wrapper's own return.
//
//	//mqx:scratchput
//	    The function recycles its argument into a pool, like Pool.Put.
//
//	//mqx:domaincheck
//	    The function validates BackendCiphertext domain tags; a call to
//	    it satisfies domaintag's "check before component access" rule.
//
//	//mqx:lazy <directive> [<directive>...]
//	    Lazy-reduction range contract (lazyrange), directives:
//	      returns        results may be relaxed, in [0, 2q)
//	      strict         results are canonical, in [0, q)
//	      params=a,b     named params accept relaxed [0, 2q) values
//	      wide=a         named params accept ANY uint64 value
//	      slices=out     the function may store relaxed [0, 2q) values
//	                     into the named slice parameters
type FuncAnnot struct {
	Hotpath     bool
	Scratch     bool
	ScratchPut  bool
	DomainCheck bool

	LazyReturns bool
	LazyStrict  bool
	LazyParams  map[string]bool
	WideParams  map[string]bool
	LazySlices  map[string]bool
}

// HasLazy reports whether any lazy-domain directive is present.
func (a *FuncAnnot) HasLazy() bool {
	return a.LazyReturns || a.LazyStrict || len(a.LazyParams) > 0 ||
		len(a.WideParams) > 0 || len(a.LazySlices) > 0
}

// ParseFuncAnnot extracts //mqx: directives from a doc comment. Unknown
// directives are ignored here; mqxlint's directive hygiene is enforced
// by the fixture suite, not at parse time.
func ParseFuncAnnot(doc *ast.CommentGroup) *FuncAnnot {
	a := &FuncAnnot{}
	if doc == nil {
		return a
	}
	for _, c := range doc.List {
		line := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(line, "mqx:") {
			continue
		}
		line = strings.TrimPrefix(line, "mqx:")
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "hotpath":
			a.Hotpath = true
		case "scratch":
			a.Scratch = true
		case "scratchput":
			a.ScratchPut = true
		case "domaincheck":
			a.DomainCheck = true
		case "lazy":
			for _, f := range fields[1:] {
				switch {
				case f == "returns":
					a.LazyReturns = true
				case f == "strict":
					a.LazyStrict = true
				case strings.HasPrefix(f, "params="):
					a.LazyParams = addNames(a.LazyParams, strings.TrimPrefix(f, "params="))
				case strings.HasPrefix(f, "wide="):
					a.WideParams = addNames(a.WideParams, strings.TrimPrefix(f, "wide="))
				case strings.HasPrefix(f, "slices="):
					a.LazySlices = addNames(a.LazySlices, strings.TrimPrefix(f, "slices="))
				}
			}
		}
	}
	return a
}

func addNames(m map[string]bool, csv string) map[string]bool {
	if m == nil {
		m = make(map[string]bool)
	}
	for _, n := range strings.Split(csv, ",") {
		if n = strings.TrimSpace(n); n != "" {
			m[n] = true
		}
	}
	return m
}

// hasCtxStrict reports whether any comment in the files carries a
// //mqx:ctxstrict package directive.
func hasCtxStrict(files []*ast.File) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				line := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if line == "mqx:ctxstrict" {
					return true
				}
			}
		}
	}
	return false
}
