package mqx

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: syntax, type information,
// and whether it was named by the load patterns (Target) or pulled in
// only as a dependency.
type Package struct {
	Path   string
	Name   string
	Dir    string
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
	Target bool

	ctxStrict bool // package carries a //mqx:ctxstrict directive
	annots    map[*ast.FuncDecl]*FuncAnnot
}

// CtxStrict reports whether any file in the package carries a
// //mqx:ctxstrict directive (the ctxphase analyzer's opt-in for the
// "never call the bare sibling of a Ctx API" rule).
func (p *Package) CtxStrict() bool { return p.ctxStrict }

// FuncInfo pairs a function's declaration syntax with the package it
// lives in, for cross-package body and annotation lookups.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Annot returns the parsed //mqx: annotations from the declaration's doc
// comment, cached per declaration.
func (fi *FuncInfo) Annot() *FuncAnnot {
	if a, ok := fi.Pkg.annots[fi.Decl]; ok {
		return a
	}
	a := ParseFuncAnnot(fi.Decl.Doc)
	if fi.Pkg.annots == nil {
		fi.Pkg.annots = make(map[*ast.FuncDecl]*FuncAnnot)
	}
	fi.Pkg.annots[fi.Decl] = a
	return a
}

// Program is a set of loaded packages sharing one FileSet, with indexes
// for resolving a *types.Func to its declaration anywhere in the set.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // load order: dependencies before dependents

	byPath map[string]*Package
	funcs  map[*types.Func]*FuncInfo
}

// FuncInfo resolves fn to its declaration if fn is declared in any
// loaded package; nil for external (stdlib) functions, interface
// methods, and function literals. Methods of instantiated generic types
// (Plan[uint64, Shoup64].ForwardInto) resolve through their generic
// origin — the declaration the index is keyed by.
func (prog *Program) FuncInfo(fn *types.Func) *FuncInfo {
	if fi := prog.funcs[fn]; fi != nil {
		return fi
	}
	return prog.funcs[fn.Origin()]
}

// PackageFor returns the loaded package for a types.Package, or nil.
func (prog *Program) PackageFor(tp *types.Package) *Package {
	if tp == nil {
		return nil
	}
	return prog.byPath[tp.Path()]
}

// Targets returns the packages named by the load patterns, in load order.
func (prog *Program) Targets() []*Package {
	var out []*Package
	for _, p := range prog.Packages {
		if p.Target {
			out = append(out, p)
		}
	}
	return out
}

// Position resolves pos through the shared FileSet.
func (prog *Program) Position(pos token.Pos) token.Position { return prog.Fset.Position(pos) }

// Loader loads and type-checks module packages. Module-local imports are
// type-checked from syntax by the loader itself (so their ASTs and
// annotations stay available to analyzers); standard-library imports are
// delegated to the stdlib source importer, which needs no compiled
// export data and therefore no toolchain state beyond GOROOT sources.
type Loader struct {
	// Dir is the module root. Empty means: walk up from the working
	// directory to the nearest go.mod.
	Dir string
	// Tags are extra build tags (e.g. "faultinject"), applied both to
	// `go list` file selection and to the source importer's context.
	Tags []string
	// GOARCH overrides the target architecture for file selection and
	// type sizes. Empty means the host architecture. Setting this
	// mutates the process-global go/build.Default context; the loader
	// is a single-use CLI/test facility, not a library for concurrent
	// mixed-target loads.
	GOARCH string

	fset    *token.FileSet
	src     types.ImporterFrom
	modpath string
	pkgs    map[string]*Package
	order   []*Package
}

// NewLoader returns a loader rooted at dir (or the enclosing module if
// dir is empty).
func NewLoader(dir string, tags []string, goarch string) (*Loader, error) {
	if dir == "" {
		var err error
		if dir, err = FindModuleRoot(); err != nil {
			return nil, err
		}
	}
	modpath, err := modulePath(dir)
	if err != nil {
		return nil, err
	}
	if goarch != "" {
		build.Default.GOARCH = goarch
	}
	if len(tags) > 0 {
		build.Default.BuildTags = append(build.Default.BuildTags, tags...)
	}
	fset := token.NewFileSet()
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("mqx: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Dir:     dir,
		Tags:    tags,
		GOARCH:  goarch,
		fset:    fset,
		src:     src,
		modpath: modpath,
		pkgs:    make(map[string]*Package),
	}, nil
}

// FindModuleRoot walks up from the working directory to the nearest
// directory containing go.mod.
func FindModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("mqx: no go.mod found above working directory")
		}
		dir = parent
	}
}

var modlineRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

func modulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	m := modlineRe.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("mqx: no module line in %s", filepath.Join(dir, "go.mod"))
	}
	return string(m[1]), nil
}

type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load expands the go list patterns, type-checks every matched module
// package (plus their module-local dependencies), and returns the
// resulting Program. It may be called once per Loader.
func (l *Loader) Load(patterns ...string) (*Program, error) {
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	for _, lp := range listed {
		if lp.Standard {
			continue
		}
		if _, err := l.check(lp); err != nil {
			return nil, err
		}
		if !lp.DepOnly {
			l.pkgs[lp.ImportPath].Target = true
		}
	}
	return l.program(), nil
}

// CheckDir type-checks every .go file directly inside dir as a single
// synthetic package (import path "mqxfixture/<base>") against the live
// module — the analysistest-style entry point for testdata fixtures,
// which `go list` would refuse to see. Module-local imports inside the
// fixtures are loaded on demand.
func (l *Loader) CheckDir(dir string) (*Program, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("mqx: no .go files in %s", dir)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	lp := listedPackage{
		ImportPath: "mqxfixture/" + filepath.Base(abs),
		Dir:        abs,
		GoFiles:    files,
	}
	pkg, err := l.check(lp)
	if err != nil {
		return nil, err
	}
	pkg.Target = true
	return l.program(), nil
}

func (l *Loader) program() *Program {
	prog := &Program{
		Fset:     l.fset,
		Packages: l.order,
		byPath:   make(map[string]*Package, len(l.order)),
		funcs:    make(map[*types.Func]*FuncInfo),
	}
	for _, p := range l.order {
		prog.byPath[p.Path] = p
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					prog.funcs[fn] = &FuncInfo{Decl: fd, Pkg: p}
				}
			}
		}
	}
	return prog
}

func (l *Loader) goList(patterns []string) ([]listedPackage, error) {
	args := []string{"list", "-json", "-deps"}
	if len(l.Tags) > 0 {
		args = append(args, "-tags", strings.Join(l.Tags, ","))
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	env := append(os.Environ(), "GOFLAGS=")
	if l.GOARCH != "" {
		env = append(env, "GOARCH="+l.GOARCH)
	}
	cmd.Env = env
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("mqx: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var listed []listedPackage
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("mqx: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("mqx: go list: %s", lp.Error.Err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// check parses and type-checks one listed package, caching the result.
func (l *Loader) check(lp listedPackage) (*Package, error) {
	if p, ok := l.pkgs[lp.ImportPath]; ok {
		return p, nil
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	goarch := l.GOARCH
	if goarch == "" {
		goarch = build.Default.GOARCH
	}
	var typeErrs []error
	conf := types.Config{
		Importer: progImporter{l},
		Sizes:    types.SizesFor("gc", goarch),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(lp.ImportPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("mqx: type-checking %s: %v", lp.ImportPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("mqx: type-checking %s: %v", lp.ImportPath, err)
	}
	pkg := &Package{
		Path:      lp.ImportPath,
		Name:      tpkg.Name(),
		Dir:       lp.Dir,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		ctxStrict: hasCtxStrict(files),
	}
	l.pkgs[lp.ImportPath] = pkg
	l.order = append(l.order, pkg)
	return pkg, nil
}

// loadModulePackage lazily loads a module-local import path (used by the
// importer when a fixture or late pattern references a package the
// initial go list pass did not cover).
func (l *Loader) loadModulePackage(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	listed, err := l.goList([]string{path})
	if err != nil {
		return nil, err
	}
	for _, lp := range listed {
		if lp.Standard {
			continue
		}
		if _, err := l.check(lp); err != nil {
			return nil, err
		}
	}
	p, ok := l.pkgs[path]
	if !ok {
		return nil, fmt.Errorf("mqx: package %s not found in module", path)
	}
	return p, nil
}

// progImporter resolves imports during type-checking: module-local paths
// come from the loader's own syntax-level loads (keeping their ASTs
// available to analyzers), everything else falls through to the stdlib
// source importer.
type progImporter struct{ l *Loader }

func (i progImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i progImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == i.l.modpath || strings.HasPrefix(path, i.l.modpath+"/") {
		p, err := i.l.loadModulePackage(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return i.l.src.ImportFrom(path, i.l.Dir, 0)
}
