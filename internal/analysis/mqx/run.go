package mqx

import (
	"fmt"
	"sort"
)

// Run invokes each analyzer over every target package of the program,
// filters suppressed findings through the //mqx:allow index, dedupes,
// and returns the remaining diagnostics in file/position order.
// Malformed //mqx:allow comments are themselves reported.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	idx := buildAllowIndex(prog.Fset, prog.Packages)
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Targets() {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	diags = append(diags, idx.malformed...)

	kept := diags[:0]
	seen := make(map[string]bool)
	for _, d := range diags {
		if d.Analyzer != "mqxallow" && idx.allowed(d) {
			continue
		}
		pos := prog.Position(d.Pos)
		key := fmt.Sprintf("%s:%d:%d:%s:%s", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		kept = append(kept, d)
	}
	sort.SliceStable(kept, func(i, j int) bool {
		pi, pj := prog.Position(kept[i].Pos), prog.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return kept, nil
}
