// Package blas implements the paper's BLAS-style kernels over Z_q with
// 128-bit coefficients (Section 2.3): vector addition, vector subtraction,
// point-wise vector multiplication, and axpy (y = a*x + y).
//
// Two families of implementations are provided:
//
//   - VM kernels (this file): generic over a kernels.Ops backend, emitting
//     scalar/AVX2/AVX-512/MQX instruction streams on the trace machine for
//     the Figure 4 performance model, while computing exact results.
//   - Native kernels (native.go): plain Go implementations — the optimized
//     fixed-width scalar path, a division-based "generic" backend standing
//     in for OpenFHE's built-in math backend, and a math/big backend
//     standing in for GMP — measured for real with testing.B.
//
// Vectors use a structure-of-arrays layout: separate hi and lo word slices,
// exactly how the SIMD kernels want their 128-bit lanes split (Section 3.2).
package blas

import (
	"fmt"

	"mqxgo/internal/kernels"
	"mqxgo/internal/u128"
)

// Vector is a vector of 128-bit residues in SoA layout.
type Vector struct {
	Hi, Lo []uint64
}

// NewVector allocates a zero vector of length n.
func NewVector(n int) Vector {
	return Vector{Hi: make([]uint64, n), Lo: make([]uint64, n)}
}

// Len returns the vector length.
func (v Vector) Len() int { return len(v.Hi) }

// At returns element i.
func (v Vector) At(i int) u128.U128 { return u128.U128{Hi: v.Hi[i], Lo: v.Lo[i]} }

// Raw returns the backing hi/lo word slices, both truncated to exactly n
// elements. Hot loops iterate these directly — `hi, lo := v.Raw(n)` hoists
// the slice bounds once, where per-element At calls pay two bounds checks
// and a struct reassembly per read (measurably slower in the NTT
// butterfly).
func (v Vector) Raw(n int) (hi, lo []uint64) { return v.Hi[:n], v.Lo[:n] }

// Set stores x at element i.
func (v Vector) Set(i int, x u128.U128) { v.Hi[i], v.Lo[i] = x.Hi, x.Lo }

// FromSlice builds a vector from 128-bit values.
func FromSlice(xs []u128.U128) Vector {
	v := NewVector(len(xs))
	for i, x := range xs {
		v.Set(i, x)
	}
	return v
}

// ToSlice converts the vector to 128-bit values.
func (v Vector) ToSlice() []u128.U128 {
	xs := make([]u128.U128, v.Len())
	for i := range xs {
		xs[i] = v.At(i)
	}
	return xs
}

func checkLens(dst Vector, srcs ...Vector) error {
	n := dst.Len()
	for _, s := range srcs {
		if s.Len() != n {
			return fmt.Errorf("blas: length mismatch: %d vs %d", s.Len(), n)
		}
	}
	return nil
}

// Op identifies a BLAS kernel in the paper's Figure 4 benchmark set.
type Op int

const (
	// OpVecAdd is element-wise modular vector addition.
	OpVecAdd Op = iota
	// OpVecSub is element-wise modular vector subtraction.
	OpVecSub
	// OpVecPMul is element-wise (point-wise) modular vector multiplication.
	OpVecPMul
	// OpAxpy is y = a*x + y with a scalar a.
	OpAxpy
)

var opNames = map[Op]string{
	OpVecAdd: "vecadd", OpVecSub: "vecsub", OpVecPMul: "vecpmul", OpAxpy: "axpy",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// AllOps lists the Figure 4 kernels.
var AllOps = []Op{OpVecAdd, OpVecSub, OpVecPMul, OpAxpy}

// VecAddModVM computes dst = a + b mod q on the trace machine, lane group
// by lane group. Lengths must be equal and a multiple of the backend lane
// count (the paper assumes power-of-two lengths, Section 3.2).
func VecAddModVM[W, C any](d *kernels.DW[W, C], dst, a, b Vector) error {
	return ewiseVM(d, dst, a, b, d.AddMod)
}

// VecSubModVM computes dst = a - b mod q on the trace machine.
func VecSubModVM[W, C any](d *kernels.DW[W, C], dst, a, b Vector) error {
	return ewiseVM(d, dst, a, b, d.SubMod)
}

// VecPMulModVM computes dst = a .* b mod q on the trace machine.
func VecPMulModVM[W, C any](d *kernels.DW[W, C], dst, a, b Vector) error {
	return ewiseVM(d, dst, a, b, d.MulMod)
}

func ewiseVM[W, C any](d *kernels.DW[W, C], dst, a, b Vector,
	f func(x, y kernels.DWPair[W]) kernels.DWPair[W]) error {
	if err := checkLens(dst, a, b); err != nil {
		return err
	}
	o := d.O
	lanes := o.Lanes()
	if dst.Len()%lanes != 0 {
		return fmt.Errorf("blas: length %d not a multiple of %d lanes", dst.Len(), lanes)
	}
	for i := 0; i < dst.Len(); i += lanes {
		x := kernels.DWPair[W]{Hi: o.Load(a.Hi, i), Lo: o.Load(a.Lo, i)}
		y := kernels.DWPair[W]{Hi: o.Load(b.Hi, i), Lo: o.Load(b.Lo, i)}
		z := f(x, y)
		o.Store(dst.Hi, i, z.Hi)
		o.Store(dst.Lo, i, z.Lo)
	}
	return nil
}

// AxpyVM computes y = a*x + y mod q for a scalar a, on the trace machine.
// The broadcast of a must happen before BeginLoop for clean loop-body
// accounting, so a is passed pre-broadcast.
func AxpyVM[W, C any](d *kernels.DW[W, C], a kernels.DWPair[W], x, y Vector) error {
	if err := checkLens(y, x); err != nil {
		return err
	}
	o := d.O
	lanes := o.Lanes()
	if y.Len()%lanes != 0 {
		return fmt.Errorf("blas: length %d not a multiple of %d lanes", y.Len(), lanes)
	}
	for i := 0; i < y.Len(); i += lanes {
		xv := kernels.DWPair[W]{Hi: o.Load(x.Hi, i), Lo: o.Load(x.Lo, i)}
		yv := kernels.DWPair[W]{Hi: o.Load(y.Hi, i), Lo: o.Load(y.Lo, i)}
		z := d.AddMod(d.MulMod(a, xv), yv)
		o.Store(y.Hi, i, z.Hi)
		o.Store(y.Lo, i, z.Lo)
	}
	return nil
}

// Broadcast128 broadcasts a 128-bit scalar into a backend double-word pair
// (preamble; call before BeginLoop).
func Broadcast128[W, C any](o kernels.Ops[W, C], x u128.U128) kernels.DWPair[W] {
	return kernels.DWPair[W]{Hi: o.Broadcast(x.Hi), Lo: o.Broadcast(x.Lo)}
}

// RunVM dispatches one of the Figure 4 kernels on the trace machine.
// For OpAxpy, a is the scalar multiplier.
func RunVM[W, C any](d *kernels.DW[W, C], op Op, a kernels.DWPair[W], dst, x, y Vector) error {
	switch op {
	case OpVecAdd:
		return VecAddModVM(d, dst, x, y)
	case OpVecSub:
		return VecSubModVM(d, dst, x, y)
	case OpVecPMul:
		return VecPMulModVM(d, dst, x, y)
	case OpAxpy:
		return AxpyVM(d, a, x, y)
	}
	return fmt.Errorf("blas: unknown op %v", op)
}
