package blas

import (
	"math/rand"
	"testing"

	"mqxgo/internal/isa"
	"mqxgo/internal/kernels"
	"mqxgo/internal/modmath"
	"mqxgo/internal/u128"
	"mqxgo/internal/vm"
)

func randResidues(r *rand.Rand, mod *modmath.Modulus128, n int) []u128.U128 {
	xs := make([]u128.U128, n)
	for i := range xs {
		xs[i] = u128.New(r.Uint64(), r.Uint64()).Mod(mod.Q)
	}
	return xs
}

func refOp(mod *modmath.Modulus128, op Op, a u128.U128, x, y u128.U128) u128.U128 {
	switch op {
	case OpVecAdd:
		return mod.Add(x, y)
	case OpVecSub:
		return mod.Sub(x, y)
	case OpVecPMul:
		return mod.Mul(x, y)
	case OpAxpy:
		return mod.Add(mod.Mul(a, x), y)
	}
	panic("bad op")
}

func TestVMKernelsAllLevels(t *testing.T) {
	mod := modmath.DefaultModulus128()
	r := rand.New(rand.NewSource(51))
	n := 64
	a := u128.New(r.Uint64(), r.Uint64()).Mod(mod.Q)
	xs := randResidues(r, mod, n)
	ys := randResidues(r, mod, n)

	check := func(level isa.Level, op Op, got Vector) {
		t.Helper()
		for i := 0; i < n; i++ {
			want := refOp(mod, op, a, xs[i], ys[i])
			if !got.At(i).Equal(want) {
				t.Fatalf("%v %v element %d: got %s, want %s", level, op, i, got.At(i), want)
			}
		}
	}

	for _, op := range AllOps {
		// 512-bit tiers.
		for _, level := range []isa.Level{isa.LevelAVX512, isa.LevelMQX} {
			m := vm.New(vm.TraceOff)
			b := kernels.NewB512(m, level)
			d := kernels.NewDW[vm.V, vm.M](b, mod)
			av := Broadcast128[vm.V, vm.M](b, a)
			m.BeginLoop()
			x, y := FromSlice(xs), FromSlice(ys)
			dst := NewVector(n)
			if op == OpAxpy {
				dst = y
			}
			if err := RunVM(d, op, av, dst, x, y); err != nil {
				t.Fatal(err)
			}
			check(level, op, dst)
		}
		// AVX2.
		{
			m := vm.New(vm.TraceOff)
			b := kernels.NewB256(m)
			d := kernels.NewDW[vm.V4, vm.V4](b, mod)
			av := Broadcast128[vm.V4, vm.V4](b, a)
			m.BeginLoop()
			x, y := FromSlice(xs), FromSlice(ys)
			dst := NewVector(n)
			if op == OpAxpy {
				dst = y
			}
			if err := RunVM(d, op, av, dst, x, y); err != nil {
				t.Fatal(err)
			}
			check(isa.LevelAVX2, op, dst)
		}
		// Scalar.
		{
			m := vm.New(vm.TraceOff)
			b := kernels.NewBScalar(m)
			d := kernels.NewDW[vm.S, vm.F](b, mod)
			av := Broadcast128[vm.S, vm.F](b, a)
			m.BeginLoop()
			x, y := FromSlice(xs), FromSlice(ys)
			dst := NewVector(n)
			if op == OpAxpy {
				dst = y
			}
			if err := RunVM(d, op, av, dst, x, y); err != nil {
				t.Fatal(err)
			}
			check(isa.LevelScalar, op, dst)
		}
	}
}

func TestNativeBackends(t *testing.T) {
	mod := modmath.DefaultModulus128()
	r := rand.New(rand.NewSource(52))
	n := 128
	a := u128.New(r.Uint64(), r.Uint64()).Mod(mod.Q)
	xs := randResidues(r, mod, n)
	ys := randResidues(r, mod, n)

	nat := Native{Mod: mod}
	gen := Generic{Q: mod.Q}
	big := NewBignum(mod.Q)

	for _, op := range AllOps {
		// Native.
		dstN := make([]u128.U128, n)
		yn := append([]u128.U128(nil), ys...)
		switch op {
		case OpVecAdd:
			nat.VecAddMod(dstN, xs, ys)
		case OpVecSub:
			nat.VecSubMod(dstN, xs, ys)
		case OpVecPMul:
			nat.VecPMulMod(dstN, xs, ys)
		case OpAxpy:
			nat.Axpy(a, xs, yn)
			dstN = yn
		}
		// Generic.
		dstG := make([]u128.U128, n)
		yg := append([]u128.U128(nil), ys...)
		switch op {
		case OpVecAdd:
			gen.VecAddMod(dstG, xs, ys)
		case OpVecSub:
			gen.VecSubMod(dstG, xs, ys)
		case OpVecPMul:
			gen.VecPMulMod(dstG, xs, ys)
		case OpAxpy:
			gen.Axpy(a, xs, yg)
			dstG = yg
		}
		// Bignum.
		xb, yb := ToBigVector(xs), ToBigVector(ys)
		dstB := BigVector(n)
		switch op {
		case OpVecAdd:
			big.VecAddMod(dstB, xb, yb)
		case OpVecSub:
			big.VecSubMod(dstB, xb, yb)
		case OpVecPMul:
			big.VecPMulMod(dstB, xb, yb)
		case OpAxpy:
			big.Axpy(a.ToBig(), xb, yb)
			dstB = yb
		}
		for i := 0; i < n; i++ {
			want := refOp(mod, op, a, xs[i], ys[i])
			if !dstN[i].Equal(want) {
				t.Fatalf("native %v element %d wrong", op, i)
			}
			if !dstG[i].Equal(want) {
				t.Fatalf("generic %v element %d wrong", op, i)
			}
			if got, ok := u128.FromBig(dstB[i]); !ok || !got.Equal(want) {
				t.Fatalf("bignum %v element %d wrong", op, i)
			}
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	xs := []u128.U128{u128.From64(1), u128.New(2, 3)}
	v := FromSlice(xs)
	if v.Len() != 2 || !v.At(1).Equal(u128.New(2, 3)) {
		t.Fatal("FromSlice/At wrong")
	}
	v.Set(0, u128.New(7, 8))
	out := v.ToSlice()
	if !out[0].Equal(u128.New(7, 8)) {
		t.Fatal("Set/ToSlice wrong")
	}
}

func TestLengthValidation(t *testing.T) {
	mod := modmath.DefaultModulus128()
	m := vm.New(vm.TraceOff)
	b := kernels.NewB512(m, isa.LevelAVX512)
	d := kernels.NewDW[vm.V, vm.M](b, mod)
	m.BeginLoop()
	if err := VecAddModVM(d, NewVector(8), NewVector(16), NewVector(8)); err == nil {
		t.Error("expected length mismatch error")
	}
	if err := VecAddModVM(d, NewVector(12), NewVector(12), NewVector(12)); err == nil {
		t.Error("expected lane multiple error")
	}
	if err := AxpyVM(d, kernels.DWPair[vm.V]{}, NewVector(8), NewVector(16)); err == nil {
		t.Error("expected axpy length error")
	}
	if err := RunVM(d, Op(99), kernels.DWPair[vm.V]{}, NewVector(8), NewVector(8), NewVector(8)); err == nil {
		t.Error("expected unknown op error")
	}
}
