package blas

import (
	"fmt"

	"mqxgo/internal/modmath"
	"mqxgo/internal/u128"
)

// The paper frames point-wise vector multiplication as a special case of
// the BLAS Level 2 gemv (Section 2.3). The full general matrix-vector
// product over Z_q is provided here for completeness: it is the building
// block of key switching and other linear maps in FHE schemes.

// Matrix is a dense row-major matrix of 128-bit residues.
type Matrix struct {
	Rows, Cols int
	Data       []u128.U128 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) Matrix {
	return Matrix{Rows: rows, Cols: cols, Data: make([]u128.U128, rows*cols)}
}

// At returns element (i, j).
func (m Matrix) At(i, j int) u128.U128 { return m.Data[i*m.Cols+j] }

// Set stores x at element (i, j).
func (m Matrix) Set(i, j int, x u128.U128) { m.Data[i*m.Cols+j] = x }

// Gemv computes y = alpha*A*x + beta*y over Z_q. All values must be
// reduced. Runs on the optimized native scalar arithmetic.
func Gemv(mod *modmath.Modulus128, alpha u128.U128, a Matrix, x []u128.U128, beta u128.U128, y []u128.U128) error {
	if len(x) != a.Cols {
		return fmt.Errorf("blas: gemv x has %d elements, want %d", len(x), a.Cols)
	}
	if len(y) != a.Rows {
		return fmt.Errorf("blas: gemv y has %d elements, want %d", len(y), a.Rows)
	}
	for i := 0; i < a.Rows; i++ {
		acc := u128.Zero
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, aij := range row {
			acc = mod.Add(acc, mod.Mul(aij, x[j]))
		}
		y[i] = mod.Add(mod.Mul(alpha, acc), mod.Mul(beta, y[i]))
	}
	return nil
}

// DiagGemv computes y = D*x for a diagonal matrix D given as a vector —
// exactly the point-wise vector multiplication the paper benchmarks,
// showing the gemv specialization explicitly.
func DiagGemv(mod *modmath.Modulus128, diag, x, y []u128.U128) error {
	if len(diag) != len(x) || len(y) != len(x) {
		return fmt.Errorf("blas: diag gemv length mismatch")
	}
	for i := range x {
		y[i] = mod.Mul(diag[i], x[i])
	}
	return nil
}
