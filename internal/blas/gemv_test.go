package blas

import (
	"math/big"
	"math/rand"
	"testing"

	"mqxgo/internal/modmath"
	"mqxgo/internal/u128"
)

func TestGemvMatchesBig(t *testing.T) {
	mod := modmath.DefaultModulus128()
	r := rand.New(rand.NewSource(121))
	rows, cols := 7, 5
	a := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			a.Set(i, j, u128.New(r.Uint64(), r.Uint64()).Mod(mod.Q))
		}
	}
	x := randResidues(r, mod, cols)
	y := randResidues(r, mod, rows)
	alpha := u128.From64(3)
	beta := u128.From64(5)

	got := append([]u128.U128(nil), y...)
	if err := Gemv(mod, alpha, a, x, beta, got); err != nil {
		t.Fatal(err)
	}

	qb := mod.Q.ToBig()
	for i := 0; i < rows; i++ {
		acc := new(big.Int)
		for j := 0; j < cols; j++ {
			acc.Add(acc, new(big.Int).Mul(a.At(i, j).ToBig(), x[j].ToBig()))
		}
		acc.Mul(acc, alpha.ToBig())
		acc.Add(acc, new(big.Int).Mul(beta.ToBig(), y[i].ToBig()))
		acc.Mod(acc, qb)
		if got[i].ToBig().Cmp(acc) != 0 {
			t.Fatalf("row %d: got %s, want %s", i, got[i], acc)
		}
	}

	if err := Gemv(mod, alpha, a, x[:2], beta, got); err == nil {
		t.Error("expected x length error")
	}
	if err := Gemv(mod, alpha, a, x, beta, got[:2]); err == nil {
		t.Error("expected y length error")
	}
}

func TestDiagGemvIsPointwiseMul(t *testing.T) {
	mod := modmath.DefaultModulus128()
	r := rand.New(rand.NewSource(122))
	n := 64
	d := randResidues(r, mod, n)
	x := randResidues(r, mod, n)
	y := make([]u128.U128, n)
	if err := DiagGemv(mod, d, x, y); err != nil {
		t.Fatal(err)
	}
	want := make([]u128.U128, n)
	Native{Mod: mod}.VecPMulMod(want, d, x)
	for i := range want {
		if !y[i].Equal(want[i]) {
			t.Fatalf("element %d differs", i)
		}
	}
	if err := DiagGemv(mod, d, x[:3], y); err == nil {
		t.Error("expected length error")
	}
}
