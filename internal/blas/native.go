package blas

import (
	"math/big"

	"mqxgo/internal/modmath"
	"mqxgo/internal/u128"
	"mqxgo/internal/u256"
)

// Native is the optimized fixed-width scalar backend: Barrett reduction on
// u128 words, the Go analogue of the paper's optimized scalar C
// implementation. It is benchmarked natively with testing.B.
type Native struct {
	Mod *modmath.Modulus128
}

// VecAddMod computes dst = a + b mod q element-wise.
func (n Native) VecAddMod(dst, a, b []u128.U128) {
	m := n.Mod
	for i := range dst {
		dst[i] = m.Add(a[i], b[i])
	}
}

// VecSubMod computes dst = a - b mod q element-wise.
func (n Native) VecSubMod(dst, a, b []u128.U128) {
	m := n.Mod
	for i := range dst {
		dst[i] = m.Sub(a[i], b[i])
	}
}

// VecPMulMod computes dst = a .* b mod q element-wise.
func (n Native) VecPMulMod(dst, a, b []u128.U128) {
	m := n.Mod
	for i := range dst {
		dst[i] = m.Mul(a[i], b[i])
	}
}

// Axpy computes y = a*x + y mod q for scalar a.
func (n Native) Axpy(a u128.U128, x, y []u128.U128) {
	m := n.Mod
	for i := range y {
		y[i] = m.Add(m.Mul(a, x[i]), y[i])
	}
}

// Generic is the division-based portable backend, standing in for
// OpenFHE's built-in 128-bit math backend: structurally correct but with a
// Knuth shift-subtract reduction instead of Barrett, and per-element
// branching. Its slowdown against Native mirrors the OpenFHE-vs-optimized
// gap in Figures 4 and 5.
type Generic struct {
	Q u128.U128
}

// VecAddMod computes dst = a + b mod q element-wise.
func (g Generic) VecAddMod(dst, a, b []u128.U128) {
	for i := range dst {
		s := a[i].Add(b[i])
		if g.Q.LessEq(s) {
			s = s.Sub(g.Q)
		}
		dst[i] = s
	}
}

// VecSubMod computes dst = a - b mod q element-wise.
func (g Generic) VecSubMod(dst, a, b []u128.U128) {
	for i := range dst {
		if a[i].Less(b[i]) {
			dst[i] = a[i].Add(g.Q).Sub(b[i])
		} else {
			dst[i] = a[i].Sub(b[i])
		}
	}
}

// VecPMulMod computes dst = a .* b mod q element-wise via 256-bit product
// and shift-subtract division.
func (g Generic) VecPMulMod(dst, a, b []u128.U128) {
	for i := range dst {
		dst[i] = u256.MulSchoolbook(a[i], b[i]).Mod128(g.Q)
	}
}

// Axpy computes y = a*x + y mod q.
func (g Generic) Axpy(a u128.U128, x, y []u128.U128) {
	for i := range y {
		p := u256.MulSchoolbook(a, x[i]).Mod128(g.Q)
		s := p.Add(y[i])
		if g.Q.LessEq(s) {
			s = s.Sub(g.Q)
		}
		y[i] = s
	}
}

// Bignum is the arbitrary-precision backend standing in for GMP: exact
// integer arithmetic through math/big, paying allocation and normalization
// per element the same way a general multi-precision library does.
type Bignum struct {
	Q *big.Int
}

// NewBignum builds the backend for modulus q.
func NewBignum(q u128.U128) Bignum { return Bignum{Q: q.ToBig()} }

// VecAddMod computes dst = a + b mod q element-wise.
func (g Bignum) VecAddMod(dst, a, b []*big.Int) {
	for i := range dst {
		dst[i].Add(a[i], b[i])
		dst[i].Mod(dst[i], g.Q)
	}
}

// VecSubMod computes dst = a - b mod q element-wise.
func (g Bignum) VecSubMod(dst, a, b []*big.Int) {
	for i := range dst {
		dst[i].Sub(a[i], b[i])
		dst[i].Mod(dst[i], g.Q)
	}
}

// VecPMulMod computes dst = a .* b mod q element-wise.
func (g Bignum) VecPMulMod(dst, a, b []*big.Int) {
	for i := range dst {
		dst[i].Mul(a[i], b[i])
		dst[i].Mod(dst[i], g.Q)
	}
}

// Axpy computes y = a*x + y mod q.
func (g Bignum) Axpy(a *big.Int, x, y []*big.Int) {
	t := new(big.Int)
	for i := range y {
		t.Mul(a, x[i])
		y[i].Add(y[i], t)
		y[i].Mod(y[i], g.Q)
	}
}

// BigVector allocates a zeroed []*big.Int of length n.
func BigVector(n int) []*big.Int {
	v := make([]*big.Int, n)
	for i := range v {
		v[i] = new(big.Int)
	}
	return v
}

// ToBigVector converts 128-bit residues to big integers.
func ToBigVector(xs []u128.U128) []*big.Int {
	v := make([]*big.Int, len(xs))
	for i, x := range xs {
		v[i] = x.ToBig()
	}
	return v
}
