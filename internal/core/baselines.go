package core

import (
	"math/big"

	"mqxgo/internal/ntt"
	"mqxgo/internal/perfmodel"
	"mqxgo/internal/u128"
	"mqxgo/internal/u256"
)

// GenericArith is the division-based 128-bit arithmetic standing in for
// OpenFHE's built-in math backend (see DESIGN.md substitutions). It
// satisfies ntt.Arith.
type GenericArith struct {
	Q u128.U128
}

// Add returns a + b mod q by conditional subtraction.
func (g GenericArith) Add(a, b u128.U128) u128.U128 {
	s := a.Add(b)
	if g.Q.LessEq(s) {
		s = s.Sub(g.Q)
	}
	return s
}

// Sub returns a - b mod q by conditional addition.
func (g GenericArith) Sub(a, b u128.U128) u128.U128 {
	if a.Less(b) {
		return a.Add(g.Q).Sub(b)
	}
	return a.Sub(b)
}

// Mul returns a * b mod q via a 256-bit product and shift-subtract division.
func (g GenericArith) Mul(a, b u128.U128) u128.U128 {
	return u256.MulSchoolbook(a, b).Mod128(g.Q)
}

// BigPlan runs the same constant-geometry NTT over math/big integers — the
// "GMP" baseline tier.
type BigPlan struct {
	Q  *big.Int
	N  int
	M  int
	tw [][]*big.Int
}

// NewBigPlan converts a plan's twiddle tables to big integers.
func NewBigPlan(p *ntt.Plan) *BigPlan {
	bp := &BigPlan{Q: p.Mod.Q.ToBig(), N: p.N, M: p.M}
	bp.tw = make([][]*big.Int, p.M)
	for s := 0; s < p.M; s++ {
		row := make([]*big.Int, p.N/2)
		for i := range row {
			row[i] = p.FwdTw[s].At(i).ToBig()
		}
		bp.tw[s] = row
	}
	return bp
}

// Forward computes the forward NTT over big.Int coefficients, allocating
// and normalizing per operation the way an arbitrary-precision library
// must.
func (bp *BigPlan) Forward(x []*big.Int) []*big.Int {
	half := bp.N / 2
	src := make([]*big.Int, bp.N)
	for i := range src {
		src[i] = new(big.Int).Set(x[i])
	}
	dst := make([]*big.Int, bp.N)
	for i := range dst {
		dst[i] = new(big.Int)
	}
	t := new(big.Int)
	for s := 0; s < bp.M; s++ {
		tw := bp.tw[s]
		for i := 0; i < half; i++ {
			a, b := src[i], src[i+half]
			dst[2*i].Add(a, b)
			dst[2*i].Mod(dst[2*i], bp.Q)
			t.Sub(a, b)
			t.Mul(t, tw[i])
			dst[2*i+1].Mod(t, bp.Q)
		}
		src, dst = dst, src
	}
	return src
}

// MeasureNTTBaselineRatios measures, on the host, how much slower the
// division-based generic backend and the math/big backend run the n-point
// NTT compared to the optimized Barrett scalar implementation. The figure
// generators use these host-measured ratios to anchor the "OpenFHE built-in
// backend" and "GMP" series to the modeled scalar tier (DESIGN.md §5).
func (c *Context) MeasureNTTBaselineRatios(n int) (perfmodel.BaselineRatios, error) {
	p, err := c.Plan(n)
	if err != nil {
		return perfmodel.BaselineRatios{}, err
	}
	x := make([]u128.U128, n)
	v := u128.One
	for i := range x {
		x[i] = v
		v = c.Mod.Add(c.Mod.Mul(v, u128.From64(0x9e3779b97f4a7c15)), u128.One)
	}
	xb := make([]*big.Int, n)
	for i := range xb {
		xb[i] = x[i].ToBig()
	}
	g := GenericArith{Q: c.Mod.Q}
	bp := NewBigPlan(p)

	// Short protocol runs keep tool startup fast while still warming up.
	// The native anchor measures the destination-passing engine so the
	// ratio reflects transform cost, not the allocator.
	dst := make([]u128.U128, n)
	native := perfmodel.MeasureProtocol(20, 10, func() { p.ForwardInto(dst, x) })
	generic := perfmodel.MeasureProtocol(6, 3, func() { p.ForwardWith(g, x) })
	bignum := perfmodel.MeasureProtocol(6, 3, func() { bp.Forward(xb) })
	return perfmodel.BaselineRatios{
		GenericOverNative: generic / native,
		BignumOverNative:  bignum / native,
	}.Clamp(), nil
}

// DefaultBaselineRatios are representative host-measured ratios used when
// callers want reproducible figure output without re-measuring (tests, and
// cmd tools when -measure=false). The values are in the ballpark the
// paper reports for OpenFHE's built-in backend and GMP against optimized
// scalar code (Sections 5.3, 5.4 and 8).
var DefaultBaselineRatios = perfmodel.BaselineRatios{
	GenericOverNative: 13.0,
	BignumOverNative:  18.0,
}
