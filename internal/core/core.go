// Package core is the library facade: it ties the double-word modular
// arithmetic, BLAS and NTT kernels, performance model, PISA methodology and
// roofline analysis together behind one Context type, and assembles every
// table and figure of the paper's evaluation (figures.go) for the cmd/
// tools and benchmarks.
package core

import (
	"fmt"

	"mqxgo/internal/modmath"
	"mqxgo/internal/ntt"
	"mqxgo/internal/u128"
)

// Context holds a modulus and cached NTT plans per transform size.
type Context struct {
	Mod   *modmath.Modulus128
	plans map[int]*ntt.Plan
}

// NewContext builds a context for the given modulus.
func NewContext(mod *modmath.Modulus128) *Context {
	return &Context{Mod: mod, plans: make(map[int]*ntt.Plan)}
}

// Default returns a context on the library's default 124-bit prime, which
// supports negacyclic transforms up to 2^17 (the paper's largest size).
func Default() *Context {
	return NewContext(modmath.DefaultModulus128())
}

// Plan returns (building and caching if needed) the plan for size n.
func (c *Context) Plan(n int) (*ntt.Plan, error) {
	if p, ok := c.plans[n]; ok {
		return p, nil
	}
	p, err := ntt.NewPlan(c.Mod, n)
	if err != nil {
		return nil, err
	}
	c.plans[n] = p
	return p, nil
}

// NTT computes the forward transform (natural in, bit-reversed out).
func (c *Context) NTT(x []u128.U128) ([]u128.U128, error) {
	p, err := c.Plan(len(x))
	if err != nil {
		return nil, err
	}
	return p.ForwardNative(x), nil
}

// INTT computes the inverse transform (bit-reversed in, natural out).
func (c *Context) INTT(y []u128.U128) ([]u128.U128, error) {
	p, err := c.Plan(len(y))
	if err != nil {
		return nil, err
	}
	return p.InverseNative(y), nil
}

// PolyMul multiplies two polynomials in Z_q[x]/(x^n + 1).
func (c *Context) PolyMul(a, b []u128.U128) ([]u128.U128, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("core: length mismatch %d vs %d", len(a), len(b))
	}
	p, err := c.Plan(len(a))
	if err != nil {
		return nil, err
	}
	return p.PolyMulNegacyclic(a, b), nil
}

// Add / Sub / Mul expose the reduced modular arithmetic.
func (c *Context) Add(a, b u128.U128) u128.U128 { return c.Mod.Add(a, b) }

// Sub returns a - b mod q.
func (c *Context) Sub(a, b u128.U128) u128.U128 { return c.Mod.Sub(a, b) }

// Mul returns a * b mod q (Barrett).
func (c *Context) Mul(a, b u128.U128) u128.U128 { return c.Mod.Mul(a, b) }
