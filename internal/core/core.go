// Package core is the library facade: it ties the double-word modular
// arithmetic, BLAS and NTT kernels, performance model, PISA methodology and
// roofline analysis together behind one Context type, and assembles every
// table and figure of the paper's evaluation (figures.go) for the cmd/
// tools and benchmarks.
package core

import (
	"fmt"

	"mqxgo/internal/modmath"
	"mqxgo/internal/ntt"
	"mqxgo/internal/u128"
)

// Context holds a modulus; NTT plans come from the process-wide
// (q, n)-keyed cache in internal/ntt, so independent contexts on the same
// modulus share twiddle tables.
type Context struct {
	Mod *modmath.Modulus128
}

// NewContext builds a context for the given modulus.
func NewContext(mod *modmath.Modulus128) *Context {
	return &Context{Mod: mod}
}

// Default returns a context on the library's default 124-bit prime, which
// supports negacyclic transforms up to 2^17 (the paper's largest size).
func Default() *Context {
	return NewContext(modmath.DefaultModulus128())
}

// Plan returns the process-wide shared plan for size n, building and
// caching it if needed.
func (c *Context) Plan(n int) (*ntt.Plan, error) {
	return ntt.CachedPlan(c.Mod, n)
}

// NTT computes the forward transform (natural in, bit-reversed out).
func (c *Context) NTT(x []u128.U128) ([]u128.U128, error) {
	p, err := c.Plan(len(x))
	if err != nil {
		return nil, err
	}
	out := make([]u128.U128, len(x))
	p.ForwardInto(out, x)
	return out, nil
}

// INTT computes the inverse transform (bit-reversed in, natural out).
func (c *Context) INTT(y []u128.U128) ([]u128.U128, error) {
	p, err := c.Plan(len(y))
	if err != nil {
		return nil, err
	}
	out := make([]u128.U128, len(y))
	p.InverseInto(out, y)
	return out, nil
}

// PolyMul multiplies two polynomials in Z_q[x]/(x^n + 1).
func (c *Context) PolyMul(a, b []u128.U128) ([]u128.U128, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("core: length mismatch %d vs %d", len(a), len(b))
	}
	p, err := c.Plan(len(a))
	if err != nil {
		return nil, err
	}
	out := make([]u128.U128, len(a))
	p.PolyMulNegacyclicInto(out, a, b)
	return out, nil
}

// Add / Sub / Mul expose the reduced modular arithmetic.
func (c *Context) Add(a, b u128.U128) u128.U128 { return c.Mod.Add(a, b) }

// Sub returns a - b mod q.
func (c *Context) Sub(a, b u128.U128) u128.U128 { return c.Mod.Sub(a, b) }

// Mul returns a * b mod q (Barrett).
func (c *Context) Mul(a, b u128.U128) u128.U128 { return c.Mod.Mul(a, b) }
