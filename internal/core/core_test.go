package core

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"mqxgo/internal/modmath"
	"mqxgo/internal/ntt"
	"mqxgo/internal/perfmodel"
	"mqxgo/internal/u128"
)

func TestContextRoundTripAndPolyMul(t *testing.T) {
	c := Default()
	r := rand.New(rand.NewSource(81))
	n := 64
	x := make([]u128.U128, n)
	y := make([]u128.U128, n)
	for i := range x {
		x[i] = u128.New(r.Uint64(), r.Uint64()).Mod(c.Mod.Q)
		y[i] = u128.New(r.Uint64(), r.Uint64()).Mod(c.Mod.Q)
	}
	f, err := c.NTT(x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.INTT(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !back[i].Equal(x[i]) {
			t.Fatalf("round trip failed at %d", i)
		}
	}
	prod, err := c.PolyMul(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := ntt.SchoolbookNegacyclic(c.Mod, x, y)
	for i := range want {
		if !prod[i].Equal(want[i]) {
			t.Fatalf("polymul coeff %d wrong", i)
		}
	}
	if _, err := c.PolyMul(x, y[:8]); err == nil {
		t.Error("expected length mismatch error")
	}
	a, b := x[0], y[0]
	if !c.Add(a, b).Equal(c.Mod.Add(a, b)) || !c.Sub(a, b).Equal(c.Mod.Sub(a, b)) || !c.Mul(a, b).Equal(c.Mod.Mul(a, b)) {
		t.Error("scalar pass-throughs wrong")
	}
	// Plan caching.
	p1, _ := c.Plan(64)
	p2, _ := c.Plan(64)
	if p1 != p2 {
		t.Error("plan not cached")
	}
	if _, err := c.Plan(3); err == nil {
		t.Error("expected plan error")
	}
}

func TestGenericArithAndBigPlanAgreeWithNative(t *testing.T) {
	c := Default()
	n := 32
	p, err := c.Plan(n)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(82))
	x := make([]u128.U128, n)
	for i := range x {
		x[i] = u128.New(r.Uint64(), r.Uint64()).Mod(c.Mod.Q)
	}
	want := p.ForwardNative(x)

	got := p.ForwardWith(GenericArith{Q: c.Mod.Q}, x)
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("generic NTT differs at %d", i)
		}
	}

	bp := NewBigPlan(p)
	bigCoeffs := make([]*big.Int, n)
	for i := range bigCoeffs {
		bigCoeffs[i] = x[i].ToBig()
	}
	gotBig := bp.Forward(bigCoeffs)
	for i := range want {
		w, ok := u128.FromBig(gotBig[i])
		if !ok || !w.Equal(want[i]) {
			t.Fatalf("big NTT differs at %d", i)
		}
	}
}

func TestMeasureBaselineRatios(t *testing.T) {
	c := Default()
	r, err := c.MeasureNTTBaselineRatios(256)
	if err != nil {
		t.Fatal(err)
	}
	if r.GenericOverNative < 1 || r.BignumOverNative < 1 {
		t.Fatalf("ratios must be >= 1: %+v", r)
	}
}

func TestFiguresAssemble(t *testing.T) {
	mod := modmath.DefaultModulus128()
	ratios := DefaultBaselineRatios

	for _, mach := range perfmodel.MeasurementMachines {
		f5 := Figure5(mach, mod, ratios)
		if len(f5.Series) != 6 {
			t.Fatalf("figure5 series = %d", len(f5.Series))
		}
		for _, s := range f5.Series {
			if len(s.Values) != len(f5.Sizes) {
				t.Fatalf("figure5 %s: %d values", s.Name, len(s.Values))
			}
			for _, v := range s.Values {
				if v <= 0 {
					t.Fatalf("figure5 %s has non-positive value", s.Name)
				}
			}
		}
		f4 := Figure4(mach, mod, ratios)
		if len(f4.Series) != 5 || len(f4.Series[0].Values) != len(f4.Ops) {
			t.Fatalf("figure4 malformed")
		}
		f7, err := Figure7(mach, mod)
		if err != nil {
			t.Fatal(err)
		}
		if len(f7.MQXSOL.Points) != len(f7.Sizes) || len(f7.Baselines) != 4 {
			t.Fatalf("figure7 malformed")
		}
	}
	if _, err := Figure7(perfmodel.IntelXeon6980P, mod); err == nil {
		t.Error("expected error: SOL target has no SOL target")
	}

	f6 := Figure6(mod)
	if len(f6) != 6 {
		t.Fatalf("figure6 rows = %d", len(f6))
	}
	if f6[0].Label != "Base" || f6[0].Normalized != 1 {
		t.Fatalf("figure6 base row wrong: %+v", f6[0])
	}
	for _, row := range f6[1:] {
		if row.Normalized >= 1 {
			t.Errorf("%s should improve on base: %f", row.Label, row.Normalized)
		}
	}

	f1 := Figure1(mod, ratios)
	if len(f1) != 7 {
		t.Fatalf("figure1 bars = %d", len(f1))
	}
	// Headline relation: single-core AVX-512 beats OpenFHE-32c (paper: 3.8x).
	var openFHE, avx512 float64
	for _, b := range f1 {
		switch b.Label {
		case "OpenFHE (32 cores)":
			openFHE = b.TimeNs
		case "This work, AVX-512 (1 core)":
			avx512 = b.TimeNs
		}
	}
	if ratio := openFHE / avx512; ratio < 2 || ratio > 8 {
		t.Errorf("AVX-512 1-core vs OpenFHE-32c = %.2fx, expected near the paper's 3.8x", ratio)
	}

	rows, err := Table6(mod)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("table6 rows = %d", len(rows))
	}

	kar := KaratsubaComparison(mod)
	if len(kar) != 8 {
		t.Fatalf("karatsuba rows = %d", len(kar))
	}
	wins := 0
	for _, row := range kar {
		if row.Speedup >= 1 {
			wins++
		}
	}
	// Paper: schoolbook wins in (almost) all variants.
	if wins < 6 {
		t.Errorf("schoolbook should win in most configs, won %d of 8", wins)
	}

	h := Summary(mod, ratios)
	if h.AVX512OverBestBaseline <= 1 || h.MQXOverBestBaseline <= h.AVX512OverBestBaseline {
		t.Errorf("headline NTT speedups inconsistent: %+v", h)
	}
	if h.AVX512OverGMPBLAS <= 1 || h.MQXOverGMPBLAS <= h.AVX512OverGMPBLAS {
		t.Errorf("headline BLAS speedups inconsistent: %+v", h)
	}
	if h.MQXSlowdownVsRPU <= 1 {
		t.Errorf("MQX single core should be slower than the ASIC: %+v", h)
	}

	tbl := FormatSeriesTable("T", "n", []string{"1024"}, []NamedSeries{{Name: "x", Values: []float64{1.5}}})
	if !strings.Contains(tbl, "1024") || !strings.Contains(tbl, "1.500") {
		t.Errorf("table formatting broken:\n%s", tbl)
	}
}
