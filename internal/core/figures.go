package core

import (
	"fmt"
	"strings"

	"mqxgo/internal/blas"
	"mqxgo/internal/extdata"
	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
	"mqxgo/internal/perfmodel"
	"mqxgo/internal/pisa"
	"mqxgo/internal/roofline"
)

// NamedSeries is one labeled curve in a figure.
type NamedSeries struct {
	Name   string
	Values []float64 // aligned with the figure's Sizes / categories
}

// NTTFigure is Figure 5 (a or b): ns per butterfly across NTT sizes for
// every tier plus the measured-anchored baselines.
type NTTFigure struct {
	Machine *perfmodel.Machine
	Sizes   []int
	Series  []NamedSeries
}

// Figure5 assembles the Figure 5 data for a machine. Ratios anchor the GMP
// and OpenFHE-backend baselines to the modeled scalar tier.
func Figure5(mach *perfmodel.Machine, mod *modmath.Modulus128, ratios perfmodel.BaselineRatios) NTTFigure {
	fig := NTTFigure{Machine: mach, Sizes: roofline.StandardSizes}
	levels := []isa.Level{isa.LevelScalar, isa.LevelAVX2, isa.LevelAVX512, isa.LevelMQX}
	perLevel := map[isa.Level][]float64{}
	for _, level := range levels {
		body := perfmodel.ButterflyBody(level, mod)
		k := perfmodel.NewKernelModel(mach, body)
		var vals []float64
		for _, n := range fig.Sizes {
			vals = append(vals, perfmodel.NewNTTModel(k, n).NsPerButterfly())
		}
		perLevel[level] = vals
	}
	scale := func(base []float64, f float64) []float64 {
		out := make([]float64, len(base))
		for i, v := range base {
			out[i] = v * f
		}
		return out
	}
	fig.Series = []NamedSeries{
		{Name: "GMP", Values: scale(perLevel[isa.LevelScalar], ratios.BignumOverNative)},
		{Name: "OpenFHE-backend", Values: scale(perLevel[isa.LevelScalar], ratios.GenericOverNative)},
		{Name: "scalar", Values: perLevel[isa.LevelScalar]},
		{Name: "avx2", Values: perLevel[isa.LevelAVX2]},
		{Name: "avx512", Values: perLevel[isa.LevelAVX512]},
		{Name: "mqx", Values: perLevel[isa.LevelMQX]},
	}
	return fig
}

// BLASFigure is Figure 4 (a or b): ns per element for the four BLAS
// kernels across tiers.
type BLASFigure struct {
	Machine *perfmodel.Machine
	Ops     []blas.Op
	Series  []NamedSeries // one value per op
}

// BLASVectorLength is the paper's Figure 4 vector length.
const BLASVectorLength = 1024

// Figure4 assembles the Figure 4 data for a machine.
func Figure4(mach *perfmodel.Machine, mod *modmath.Modulus128, ratios perfmodel.BaselineRatios) BLASFigure {
	fig := BLASFigure{Machine: mach, Ops: blas.AllOps}
	levels := []isa.Level{isa.LevelScalar, isa.LevelAVX2, isa.LevelAVX512, isa.LevelMQX}
	perLevel := map[isa.Level][]float64{}
	for _, level := range levels {
		var vals []float64
		for _, op := range fig.Ops {
			m := perfmodel.ProjectBLAS(mach, level, mod, op, BLASVectorLength)
			vals = append(vals, m.NsPerElement())
		}
		perLevel[level] = vals
	}
	gmp := make([]float64, len(fig.Ops))
	for i, v := range perLevel[isa.LevelScalar] {
		gmp[i] = v * ratios.BignumOverNative
	}
	fig.Series = []NamedSeries{
		{Name: "GMP", Values: gmp},
		{Name: "scalar", Values: perLevel[isa.LevelScalar]},
		{Name: "avx2", Values: perLevel[isa.LevelAVX2]},
		{Name: "avx512", Values: perLevel[isa.LevelAVX512]},
		{Name: "mqx", Values: perLevel[isa.LevelMQX]},
	}
	return fig
}

// SensitivityRow is one bar of Figure 6.
type SensitivityRow struct {
	Label      string
	Level      isa.Level
	Normalized float64 // mean per-butterfly runtime normalized to AVX-512
}

// Figure6 assembles the MQX component ablation on AMD EPYC (the paper runs
// this sensitivity analysis on AMD, Section 5.5), averaging per-butterfly
// runtime across all tested NTT sizes and normalizing to the AVX-512 base.
func Figure6(mod *modmath.Modulus128) []SensitivityRow {
	mach := perfmodel.AMDEPYC9654
	labels := map[isa.Level]string{
		isa.LevelAVX512:        "Base",
		isa.LevelMQXMulOnly:    "+M",
		isa.LevelMQXCarryOnly:  "+C",
		isa.LevelMQX:           "+M,C",
		isa.LevelMQXMulHi:      "+Mh,C",
		isa.LevelMQXPredicated: "+M,C,P",
	}
	mean := func(level isa.Level) float64 {
		body := perfmodel.ButterflyBody(level, mod)
		k := perfmodel.NewKernelModel(mach, body)
		sum := 0.0
		for _, n := range roofline.StandardSizes {
			sum += perfmodel.NewNTTModel(k, n).NsPerButterfly()
		}
		return sum / float64(len(roofline.StandardSizes))
	}
	base := mean(isa.LevelAVX512)
	var rows []SensitivityRow
	for _, level := range isa.SensitivityLevels {
		rows = append(rows, SensitivityRow{
			Label:      labels[level],
			Level:      level,
			Normalized: mean(level) / base,
		})
	}
	return rows
}

// KaratsubaRow is one entry of the Section 5.5 multiplication-algorithm
// sensitivity analysis.
type KaratsubaRow struct {
	Machine      string
	Level        isa.Level
	SchoolbookNs float64 // per butterfly at the comparison size
	KaratsubaNs  float64
	Speedup      float64 // karatsuba / schoolbook (>1 means schoolbook wins)
}

// KaratsubaComparison runs the Section 5.5 analysis at NTT size 2^14.
func KaratsubaComparison(mod *modmath.Modulus128) []KaratsubaRow {
	const n = 1 << 14
	var rows []KaratsubaRow
	kar := mod.WithAlgorithm(modmath.Karatsuba)
	for _, mach := range perfmodel.MeasurementMachines {
		for _, level := range isa.AllLevels {
			s := perfmodel.ProjectNTT(mach, level, mod, n).NsPerButterfly()
			k := perfmodel.ProjectNTT(mach, level, kar, n).NsPerButterfly()
			rows = append(rows, KaratsubaRow{
				Machine:      mach.Name,
				Level:        level,
				SchoolbookNs: s,
				KaratsubaNs:  k,
				Speedup:      k / s,
			})
		}
	}
	return rows
}

// SOLFigure is Figure 7 (a or b): the speed-of-light series against the
// external baselines.
type SOLFigure struct {
	Measurement *perfmodel.Machine
	Target      *perfmodel.Machine
	Sizes       []int
	MQXSOL      roofline.Series
	Baselines   []roofline.Series
}

// Figure7 assembles the SOL comparison for one measurement machine.
func Figure7(meas *perfmodel.Machine, mod *modmath.Modulus128) (SOLFigure, error) {
	target, ok := perfmodel.SOLMachines[meas.Name]
	if !ok {
		return SOLFigure{}, fmt.Errorf("core: no SOL target for %s", meas.Name)
	}
	return SOLFigure{
		Measurement: meas,
		Target:      target,
		Sizes:       roofline.StandardSizes,
		MQXSOL:      roofline.SOLSeries(meas, target, isa.LevelMQX, mod, roofline.StandardSizes),
		Baselines: []roofline.Series{
			extdata.OpenFHE32Core(mod),
			extdata.RPU(mod),
			extdata.FPMM(mod),
			extdata.MoMA(mod),
		},
	}, nil
}

// Figure1Bar is one bar of the headline Figure 1 comparison.
type Figure1Bar struct {
	Label  string
	TimeNs float64
}

// Figure1Size is the NTT size for the headline chart: 2^13, the largest
// size the RPU ASIC supports, so every system has a value.
const Figure1Size = 1 << 13

// Figure1 assembles the headline comparison: OpenFHE on 32 cores, the GMP
// and single-core tiers on AMD EPYC 9654, the MQX speed-of-light on 192
// cores, and the RPU ASIC.
func Figure1(mod *modmath.Modulus128, ratios perfmodel.BaselineRatios) []Figure1Bar {
	mach := perfmodel.AMDEPYC9654
	n := Figure1Size
	scalar := perfmodel.ProjectNTT(mach, isa.LevelScalar, mod, n).TimeNs()
	avx512 := perfmodel.ProjectNTT(mach, isa.LevelAVX512, mod, n).TimeNs()
	mqx := perfmodel.ProjectNTT(mach, isa.LevelMQX, mod, n).TimeNs()
	sol := roofline.SOLSeries(mach, perfmodel.AMDEPYC9965S, isa.LevelMQX, mod, []int{n})
	openFHE, _ := extdata.OpenFHE32Core(mod).At(n)
	rpu, _ := extdata.RPU(mod).At(n)
	solNs := sol.Points[0].TimeNs
	return []Figure1Bar{
		{Label: "OpenFHE (32 cores)", TimeNs: openFHE},
		{Label: "GMP (1 core)", TimeNs: scalar * ratios.BignumOverNative},
		{Label: "This work, scalar (1 core)", TimeNs: scalar},
		{Label: "This work, AVX-512 (1 core)", TimeNs: avx512},
		{Label: "This work, MQX (1 core)", TimeNs: mqx},
		{Label: "MQX-SOL (192 cores)", TimeNs: solNs},
		{Label: "RPU (ASIC)", TimeNs: rpu},
	}
}

// Table6Row is one row of the PISA validation table for both machines.
type Table6Row struct {
	Target   string
	IntelEps float64
	AMDEps   float64
}

// Table6 runs the PISA validation (Section 5.2) on both machines.
func Table6(mod *modmath.Modulus128) ([]Table6Row, error) {
	intel, err := pisa.Validate(perfmodel.IntelXeon8352Y, mod)
	if err != nil {
		return nil, err
	}
	amd, err := pisa.Validate(perfmodel.AMDEPYC9654, mod)
	if err != nil {
		return nil, err
	}
	var rows []Table6Row
	for i := range intel {
		rows = append(rows, Table6Row{
			Target:   intel[i].Pair.Target.String(),
			IntelEps: intel[i].EpsilonPct,
			AMDEps:   amd[i].EpsilonPct,
		})
	}
	return rows, nil
}

// Headline summarizes the paper's top-line claims from the model.
type Headline struct {
	// NTT speedups averaged over sizes and machines.
	AVX512OverBestBaseline float64 // paper: 38x over state-of-the-art baselines
	MQXOverBestBaseline    float64 // paper: 77x
	MQXOverAVX512          float64 // paper: 2.1x Intel / 3.7x AMD
	// BLAS speedups at length 1024.
	AVX512OverGMPBLAS float64 // paper: 62x
	MQXOverGMPBLAS    float64 // paper: 104x
	// Single-core MQX slowdown vs the RPU ASIC (best size).
	MQXSlowdownVsRPU float64 // paper: as low as 35x
}

// Summary computes the headline numbers.
func Summary(mod *modmath.Modulus128, ratios perfmodel.BaselineRatios) Headline {
	var h Headline
	// NTT: best baseline is the OpenFHE-style backend (generic) per Fig 5.
	var rAVX, rMQX, rGain float64
	for _, mach := range perfmodel.MeasurementMachines {
		fig := Figure5(mach, mod, ratios)
		get := func(name string) []float64 {
			for _, s := range fig.Series {
				if s.Name == name {
					return s.Values
				}
			}
			return nil
		}
		base := get("OpenFHE-backend")
		a := get("avx512")
		m := get("mqx")
		for i := range base {
			rAVX += base[i] / a[i]
			rMQX += base[i] / m[i]
			rGain += a[i] / m[i]
		}
	}
	total := float64(2 * len(roofline.StandardSizes))
	h.AVX512OverBestBaseline = rAVX / total
	h.MQXOverBestBaseline = rMQX / total
	h.MQXOverAVX512 = rGain / total

	// BLAS: GMP baseline, averaged over the four ops and two machines.
	var bAVX, bMQX float64
	for _, mach := range perfmodel.MeasurementMachines {
		fig := Figure4(mach, mod, ratios)
		get := func(name string) []float64 {
			for _, s := range fig.Series {
				if s.Name == name {
					return s.Values
				}
			}
			return nil
		}
		gmp := get("GMP")
		a := get("avx512")
		m := get("mqx")
		for i := range gmp {
			bAVX += gmp[i] / a[i]
			bMQX += gmp[i] / m[i]
		}
	}
	totalB := float64(2 * len(blas.AllOps))
	h.AVX512OverGMPBLAS = bAVX / totalB
	h.MQXOverGMPBLAS = bMQX / totalB

	// Single-core MQX vs RPU: best (smallest) slowdown across RPU sizes.
	rpu := extdata.RPU(mod)
	best := 0.0
	for _, p := range rpu.Points {
		t := perfmodel.ProjectNTT(perfmodel.AMDEPYC9654, isa.LevelMQX, mod, p.N).TimeNs()
		slow := t / p.TimeNs
		if best == 0 || slow < best {
			best = slow
		}
	}
	h.MQXSlowdownVsRPU = best
	return h
}

// FormatSeriesTable renders sizes-by-series data as an aligned text table.
func FormatSeriesTable(title, rowLabel string, rowNames []string, series []NamedSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s", rowLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%16s", s.Name)
	}
	fmt.Fprintln(&b)
	for i, rn := range rowNames {
		fmt.Fprintf(&b, "%-14s", rn)
		for _, s := range series {
			fmt.Fprintf(&b, "%16.3f", s.Values[i])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
