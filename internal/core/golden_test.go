package core

import (
	"math"
	"testing"

	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
	"mqxgo/internal/perfmodel"
)

// Golden values: the model is fully deterministic, and EXPERIMENTS.md
// documents these exact numbers. If a cost-table or kernel change moves
// them, this test fails as a reminder to regenerate the documentation
// (and to re-examine the paper-shape comparisons).
func TestGoldenModelValues(t *testing.T) {
	mod := modmath.DefaultModulus128()
	approx := func(got, want float64, what string) {
		t.Helper()
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s = %.3f, documented %.3f — update EXPERIMENTS.md if intentional", what, got, want)
		}
	}

	// Figure 5 key cells (ns/butterfly at 2^14, i.e. pre-knee).
	n := 1 << 14
	approx(perfmodel.ProjectNTT(perfmodel.IntelXeon8352Y, isa.LevelAVX512, mod, n).NsPerButterfly(),
		5.662, "intel avx512 ns/bf")
	approx(perfmodel.ProjectNTT(perfmodel.IntelXeon8352Y, isa.LevelMQX, mod, n).NsPerButterfly(),
		1.728, "intel mqx ns/bf")
	approx(perfmodel.ProjectNTT(perfmodel.IntelXeon8352Y, isa.LevelScalar, mod, n).NsPerButterfly(),
		8.647, "intel scalar ns/bf")
	approx(perfmodel.ProjectNTT(perfmodel.AMDEPYC9654, isa.LevelAVX512, mod, n).NsPerButterfly(),
		4.611, "amd avx512 ns/bf")
	approx(perfmodel.ProjectNTT(perfmodel.AMDEPYC9654, isa.LevelMQX, mod, n).NsPerButterfly(),
		1.191, "amd mqx ns/bf")

	// The Intel L2 knee (documented: 1.73 -> 2.14 at 2^16).
	approx(perfmodel.ProjectNTT(perfmodel.IntelXeon8352Y, isa.LevelMQX, mod, 1<<16).NsPerButterfly(),
		2.139, "intel mqx ns/bf at 2^16")

	// Figure 4 key cells (ns/element, length 1024).
	approx(ProjectBLASNs(perfmodel.IntelXeon8352Y, isa.LevelMQX, mod), 1.507, "intel mqx pmul ns/el")
	approx(ProjectBLASNs(perfmodel.AMDEPYC9654, isa.LevelMQX, mod), 0.811, "amd mqx pmul ns/el")
}

// ProjectBLASNs is a tiny helper for the golden test (point-wise multiply
// at the Figure 4 vector length).
func ProjectBLASNs(mach *perfmodel.Machine, level isa.Level, mod *modmath.Modulus128) float64 {
	fig := Figure4(mach, mod, DefaultBaselineRatios)
	for _, s := range fig.Series {
		if s.Name == level.String() {
			return s.Values[2] // vecpmul
		}
	}
	return math.NaN()
}
