package core

import (
	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
	"mqxgo/internal/perfmodel"
)

// RNSCompareRow contrasts two ways of carrying ~120-bit coefficients
// through an NTT butterfly on the same hardware (the paper's Section 1
// trade-off): one 124-bit double-word channel vs. two 60-bit RNS channels.
type RNSCompareRow struct {
	Machine string
	Level   isa.Level

	// DoubleWordNs is the modeled per-butterfly time of the 128-bit kernel.
	DoubleWordNs float64
	// RNSNs is the modeled per-logical-butterfly time of the RNS pipeline:
	// two independent 64-bit channel butterflies.
	RNSNs float64
	// Ratio is DoubleWordNs / RNSNs (>1 means RNS kernels are faster at
	// equal payload; the paper's case for 128-bit residues rests on the
	// application-level conversion costs RNS adds, not on kernel time).
	Ratio float64
}

// RNSChannels is how many 60-bit channels match the 124-bit double-word
// payload.
const RNSChannels = 2

// CompareRNS models the kernel-level comparison at NTT size n for the
// standard tiers on both machines.
func CompareRNS(mod *modmath.Modulus128, n int) ([]RNSCompareRow, error) {
	ps, err := modmath.FindNTTPrimes64(60, 1<<18, 1)
	if err != nil {
		return nil, err
	}
	mod64 := modmath.MustModulus64(ps[0])

	var rows []RNSCompareRow
	for _, mach := range perfmodel.MeasurementMachines {
		for _, level := range isa.AllLevels {
			dw := perfmodel.NewNTTModel(
				perfmodel.NewKernelModel(mach, perfmodel.ButterflyBody(level, mod)), n)
			sw := perfmodel.NewNTTModel(
				perfmodel.NewKernelModel(mach, perfmodel.SWButterflyBody(level, mod64)), n)
			dwNs := dw.NsPerButterfly()
			rnsNs := RNSChannels * sw.NsPerButterfly()
			rows = append(rows, RNSCompareRow{
				Machine:      mach.Name,
				Level:        level,
				DoubleWordNs: dwNs,
				RNSNs:        rnsNs,
				Ratio:        dwNs / rnsNs,
			})
		}
	}
	return rows, nil
}
