package core

import (
	"testing"

	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
)

func TestCompareRNS(t *testing.T) {
	rows, err := CompareRNS(modmath.DefaultModulus128(), 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	byKey := map[string]RNSCompareRow{}
	for _, r := range rows {
		if r.DoubleWordNs <= 0 || r.RNSNs <= 0 {
			t.Fatalf("non-positive times: %+v", r)
		}
		byKey[r.Machine+"/"+r.Level.String()] = r
	}
	for _, mach := range []string{"Intel Xeon 8352Y", "AMD EPYC 9654"} {
		avx := byKey[mach+"/"+isa.LevelAVX512.String()]
		mqx := byKey[mach+"/"+isa.LevelMQX.String()]
		// Without MQX, the RNS kernels hold a large advantage at equal
		// payload (no carry emulation below the word size).
		if avx.Ratio < 2 {
			t.Errorf("%s avx512: expected RNS advantage >= 2x, got %.2f", mach, avx.Ratio)
		}
		// MQX must narrow the gap: that is the point of the extension.
		if mqx.Ratio >= avx.Ratio {
			t.Errorf("%s: MQX should narrow the RNS gap (avx512 %.2f -> mqx %.2f)",
				mach, avx.Ratio, mqx.Ratio)
		}
	}
}
