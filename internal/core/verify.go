package core

import (
	"fmt"

	"mqxgo/internal/blas"
	"mqxgo/internal/isa"
	"mqxgo/internal/kernels"
	"mqxgo/internal/modmath"
	"mqxgo/internal/ntt"
	"mqxgo/internal/perfmodel"
	"mqxgo/internal/u128"
	"mqxgo/internal/vm"
)

// VerifyAllTiers functionally executes the forward NTT of size n on the
// trace machine for every standard ISA tier and compares the results
// bit-for-bit against the native transform. It returns the first
// divergence found, or nil when every tier agrees — the library's
// equivalent of the paper's functional-correctness flag (Section 4.2).
func (c *Context) VerifyAllTiers(n int) error {
	plan, err := c.Plan(n)
	if err != nil {
		return err
	}
	x := make([]u128.U128, n)
	v := u128.From64(7)
	for i := range x {
		x[i] = v
		v = c.Add(c.Mul(v, u128.From64(0x9e3779b9)), u128.One)
	}
	want := plan.ForwardNative(x)
	xv := blas.FromSlice(x)

	for _, level := range isa.AllLevels {
		m := vm.New(vm.TraceOff)
		var got blas.Vector
		switch level {
		case isa.LevelScalar:
			b := kernels.NewBScalar(m)
			d := kernels.NewDW[vm.S, vm.F](b, c.Mod)
			m.BeginLoop()
			got, err = ntt.ForwardVM(d, plan, xv)
		case isa.LevelAVX2:
			b := kernels.NewB256(m)
			d := kernels.NewDW[vm.V4, vm.V4](b, c.Mod)
			m.BeginLoop()
			got, err = ntt.ForwardVM(d, plan, xv)
		default:
			b := kernels.NewB512(m, level)
			d := kernels.NewDW[vm.V, vm.M](b, c.Mod)
			m.BeginLoop()
			got, err = ntt.ForwardVM(d, plan, xv)
		}
		if err != nil {
			return fmt.Errorf("core: %v tier failed: %w", level, err)
		}
		for i := 0; i < n; i++ {
			if !got.At(i).Equal(want[i]) {
				return fmt.Errorf("core: %v tier diverges from native at index %d", level, i)
			}
		}
	}
	return nil
}

// BLASSweepPoint is one vector length in a working-set sweep.
type BLASSweepPoint struct {
	Len          int
	NsPerElement float64
	MemoryBound  bool
}

// BLASSweep models one BLAS kernel across vector lengths, exposing the
// cache-capacity knees the memory model predicts as the working set walks
// through L1, L2 and L3 — the BLAS counterpart of the paper's NTT L2-knee
// analysis (Section 5.4).
func BLASSweep(mach *perfmodel.Machine, level isa.Level, mod *modmath.Modulus128, op blas.Op, lengths []int) []BLASSweepPoint {
	body := perfmodel.BLASBody(level, mod, op)
	k := perfmodel.NewKernelModel(mach, body)
	var out []BLASSweepPoint
	for _, n := range lengths {
		m := perfmodel.NewBLASModel(k, op, n)
		iters := float64(n) / float64(body.Lanes)
		compute := iters * k.CyclesPerIter
		bw := mach.BWForWorkingSet(m.WorkingSetBytes())
		memory := iters * float64(body.Bytes) / bw
		out = append(out, BLASSweepPoint{
			Len:          n,
			NsPerElement: m.NsPerElement(),
			MemoryBound:  memory > compute,
		})
	}
	return out
}
