package core

import (
	"testing"

	"mqxgo/internal/blas"
	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
	"mqxgo/internal/perfmodel"
)

func TestVerifyAllTiers(t *testing.T) {
	c := Default()
	if err := c.VerifyAllTiers(64); err != nil {
		t.Fatal(err)
	}
	// Invalid size propagates an error.
	if err := c.VerifyAllTiers(3); err == nil {
		t.Error("expected plan error for size 3")
	}
	// Too small for the 8-lane tiers.
	if err := c.VerifyAllTiers(8); err == nil {
		t.Error("expected lane-count error for size 8")
	}
}

func TestBLASSweepKnees(t *testing.T) {
	mod := modmath.DefaultModulus128()
	lengths := []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 22}
	pts := BLASSweep(perfmodel.IntelXeon8352Y, isa.LevelMQX, mod, blas.OpVecAdd, lengths)
	if len(pts) != len(lengths) {
		t.Fatalf("points = %d", len(pts))
	}
	// ns/element must be non-decreasing as the working set spills caches.
	for i := 1; i < len(pts); i++ {
		if pts[i].NsPerElement < pts[i-1].NsPerElement-1e-9 {
			t.Errorf("sweep not monotone at %d: %f -> %f", pts[i].Len, pts[i-1].NsPerElement, pts[i].NsPerElement)
		}
	}
	// The lightweight add kernel must eventually turn memory-bound, and
	// must not be memory-bound at L1-resident sizes.
	if pts[0].MemoryBound {
		t.Error("L1-resident add should be compute-bound")
	}
	if !pts[len(pts)-1].MemoryBound {
		t.Error("DRAM-resident add should be memory-bound")
	}
	// The multiply-heavy kernel stays compute-bound far longer.
	mulPts := BLASSweep(perfmodel.IntelXeon8352Y, isa.LevelAVX512, mod, blas.OpVecPMul, lengths)
	if mulPts[3].MemoryBound {
		t.Error("AVX-512 pmul at 2^14 should remain compute-bound")
	}
}
