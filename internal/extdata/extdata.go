// Package extdata provides the external reference performance curves the
// paper compares against in Figures 1 and 7: the RPU and FPMM ASICs, the
// MoMA GPU implementation, and OpenFHE running on 32 cores (as reported in
// the RPU paper).
//
// Provenance: raw per-size numbers for these systems are not published in
// reusable form, but the paper pins them tightly through stated ratios:
//
//   - MQX-SOL on AMD EPYC 9965S is on average 2.5x faster than RPU, 2.9x
//     faster than FPMM, and 1.7x faster than MoMA (Section 6).
//   - RPU is 545-1485x faster than OpenFHE on a 32-core machine, and our
//     Figure 1 anchor: single-core AVX-512 is 3.8x faster than OpenFHE-32c.
//
// The curves below are synthesized from those ratios, anchored to this
// library's own MQX speed-of-light series on AMD EPYC 9965S, with fixed
// per-size shape factors so the curves are not exactly proportional (ASIC
// pipelines favor large batched sizes; GPUs lose efficiency at small
// sizes). The AMD-side comparisons therefore reproduce the stated ratios
// by construction, while every Intel-side comparison in Figure 7a is a
// genuine model prediction. See EXPERIMENTS.md.
package extdata

import (
	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
	"mqxgo/internal/perfmodel"
	"mqxgo/internal/roofline"
)

// RPUSizes are the NTT sizes the RPU ASIC supports (1,024 to 8,192).
var RPUSizes = []int{1 << 10, 1 << 11, 1 << 12, 1 << 13}

// FPMMSizes are the two NTT sizes the FPMM comparison uses.
var FPMMSizes = []int{1 << 12, 1 << 16}

// shape factors give each external system a mildly different size profile
// around its anchored mean (deterministic, documented approximations).
var (
	rpuShape  = map[int]float64{1 << 10: 1.12, 1 << 11: 1.04, 1 << 12: 0.97, 1 << 13: 0.90}
	fpmmShape = map[int]float64{1 << 12: 1.06, 1 << 16: 0.94}
	momaShape = map[int]float64{
		1 << 10: 1.25, 1 << 11: 1.14, 1 << 12: 1.06, 1 << 13: 1.00,
		1 << 14: 0.95, 1 << 15: 0.91, 1 << 16: 0.88, 1 << 17: 0.86,
	}
)

// anchor ratios relative to the MQX-SOL series on AMD EPYC 9965S.
const (
	rpuOverSOL     = 2.5
	fpmmOverSOL    = 2.9
	momaOverSOL    = 1.7
	openFHEOverSOL = 3120 // lands OpenFHE-32c/RPU at ~1250x, inside RPU's reported 545-1485x
)

// solAnchor returns the MQX-SOL (AMD EPYC 9965S) runtime for each size.
func solAnchor(mod *modmath.Modulus128, sizes []int) roofline.Series {
	return roofline.SOLSeries(perfmodel.AMDEPYC9654, perfmodel.AMDEPYC9965S,
		isa.LevelMQX, mod, sizes)
}

func synthesized(name string, mod *modmath.Modulus128, sizes []int, ratio float64, shape map[int]float64) roofline.Series {
	anchor := solAnchor(mod, sizes)
	s := roofline.Series{Name: name}
	for _, p := range anchor.Points {
		f := 1.0
		if shape != nil {
			if v, ok := shape[p.N]; ok {
				f = v
			}
		}
		s.Points = append(s.Points, roofline.Point{N: p.N, TimeNs: p.TimeNs * ratio * f})
	}
	return s
}

// RPU returns the synthesized RPU ASIC curve over its supported sizes.
func RPU(mod *modmath.Modulus128) roofline.Series {
	return synthesized("RPU (ASIC)", mod, RPUSizes, rpuOverSOL, rpuShape)
}

// FPMM returns the synthesized FPMM ASIC curve (Zhou et al.).
func FPMM(mod *modmath.Modulus128) roofline.Series {
	return synthesized("FPMM (ASIC)", mod, FPMMSizes, fpmmOverSOL, fpmmShape)
}

// MoMA returns the synthesized MoMA GPU (RTX 4090) curve.
func MoMA(mod *modmath.Modulus128) roofline.Series {
	return synthesized("MoMA (GPU)", mod, roofline.StandardSizes, momaOverSOL, momaShape)
}

// OpenFHE32Core returns the synthesized OpenFHE 32-core curve from the RPU
// paper's comparison.
func OpenFHE32Core(mod *modmath.Modulus128) roofline.Series {
	return synthesized("OpenFHE (32 cores)", mod, roofline.StandardSizes, openFHEOverSOL, nil)
}
