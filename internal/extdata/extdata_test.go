package extdata

import (
	"math"
	"testing"

	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
	"mqxgo/internal/perfmodel"
	"mqxgo/internal/roofline"
)

// TestAnchoredRatios verifies that the synthesized curves reproduce the
// paper's stated Section 6 relations against the MQX-SOL AMD series.
func TestAnchoredRatios(t *testing.T) {
	mod := modmath.DefaultModulus128()
	sol := roofline.SOLSeries(perfmodel.AMDEPYC9654, perfmodel.AMDEPYC9965S,
		isa.LevelMQX, mod, roofline.StandardSizes)

	cases := []struct {
		s    roofline.Series
		want float64
		tol  float64
	}{
		{RPU(mod), 2.5, 0.15},
		{FPMM(mod), 2.9, 0.15},
		{MoMA(mod), 1.7, 0.15},
	}
	for _, c := range cases {
		r := roofline.GeomeanRatio(c.s, sol)
		if math.Abs(r-c.want)/c.want > c.tol {
			t.Errorf("%s / MQX-SOL = %.2f, want ~%.2f", c.s.Name, r, c.want)
		}
	}

	// OpenFHE-32c over RPU must land inside RPU's reported 545-1485x.
	ratio := roofline.GeomeanRatio(OpenFHE32Core(mod), RPU(mod))
	if ratio < 545 || ratio > 1485 {
		t.Errorf("OpenFHE-32c / RPU = %.0f, want within [545, 1485]", ratio)
	}
}

func TestSupportedSizes(t *testing.T) {
	mod := modmath.DefaultModulus128()
	if got := len(RPU(mod).Points); got != len(RPUSizes) {
		t.Errorf("RPU has %d points, want %d", got, len(RPUSizes))
	}
	if got := len(FPMM(mod).Points); got != len(FPMMSizes) {
		t.Errorf("FPMM has %d points, want %d", got, len(FPMMSizes))
	}
	if got := len(MoMA(mod).Points); got != len(roofline.StandardSizes) {
		t.Errorf("MoMA has %d points, want %d", got, len(roofline.StandardSizes))
	}
}

// TestIntelSidePredictions treats the Intel Figure 7a comparisons as model
// outputs and checks they land in the paper's reported neighborhoods:
// MQX-SOL on Xeon 6980P ~1.3x faster than RPU and ~1.4x slower than MoMA.
func TestIntelSidePredictions(t *testing.T) {
	mod := modmath.DefaultModulus128()
	solIntel := roofline.SOLSeries(perfmodel.IntelXeon8352Y, perfmodel.IntelXeon6980P,
		isa.LevelMQX, mod, roofline.StandardSizes)

	rpuOverIntel := roofline.GeomeanRatio(RPU(mod), solIntel)
	if rpuOverIntel < 0.8 || rpuOverIntel > 2.2 {
		t.Errorf("RPU / MQX-SOL-Intel = %.2f, expected near the paper's 1.3", rpuOverIntel)
	}
	intelOverMoma := roofline.GeomeanRatio(solIntel, MoMA(mod))
	if intelOverMoma < 0.6 || intelOverMoma > 2.2 {
		t.Errorf("MQX-SOL-Intel / MoMA = %.2f, expected near the paper's 1.4", intelOverMoma)
	}
	t.Logf("RPU/MQX-SOL-Intel = %.2f (paper ~1.3 inverse), MQX-SOL-Intel/MoMA = %.2f (paper ~1.4)",
		rpuOverIntel, intelOverMoma)
}
