//go:build faultinject

package faultinject

import (
	"sync"
	"time"
)

// Enabled reports whether fault hooks are compiled in. This build has
// them: every instrumented site probes the registry.
const Enabled = true

// registry is the process-wide armed-fault table. Sites are probed on
// hot paths, so the common disarmed case is one RLock and a map miss.
var registry struct {
	sync.RWMutex
	sites map[string]*armed
}

type armed struct {
	spec Spec
	hits int // probes observed at this site since arming
}

// fire consumes one probe at site and returns the spec if this hit is
// inside the armed window.
func fire(site string) (Spec, bool) {
	registry.RLock()
	_, present := registry.sites[site]
	registry.RUnlock()
	if !present {
		return Spec{}, false
	}
	registry.Lock()
	defer registry.Unlock()
	a, ok := registry.sites[site]
	if !ok {
		return Spec{}, false
	}
	a.hits++
	if a.hits <= a.spec.After {
		return Spec{}, false
	}
	if a.spec.Count > 0 && a.hits > a.spec.After+a.spec.Count {
		return Spec{}, false
	}
	return a.spec, true
}

// Arm installs spec, replacing any spec already armed at the same site
// (the hit counter restarts).
func Arm(spec Spec) error {
	registry.Lock()
	defer registry.Unlock()
	if registry.sites == nil {
		registry.sites = make(map[string]*armed)
	}
	registry.sites[spec.Site] = &armed{spec: spec}
	return nil
}

// Disarm removes any spec armed at site.
func Disarm(site string) {
	registry.Lock()
	defer registry.Unlock()
	delete(registry.sites, site)
}

// Reset disarms every site.
func Reset() {
	registry.Lock()
	defer registry.Unlock()
	registry.sites = nil
}

// Armed returns the specs currently armed, for metrics and reports.
func Armed() []Spec {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Spec, 0, len(registry.sites))
	for _, a := range registry.sites {
		out = append(out, a.spec)
	}
	return out
}

// Hit probes site for panic and latency faults. KindPanic panics with an
// InjectedPanic; KindLatency sleeps for the spec's delay; other kinds
// armed at the site are left for their own hooks (the probe still counts
// the hit).
func Hit(site string) {
	spec, ok := fire(site)
	if !ok {
		return
	}
	switch spec.Kind {
	case KindPanic:
		panic(InjectedPanic{Site: site})
	case KindLatency:
		time.Sleep(spec.Delay)
	}
}

// Err probes site for an error fault and returns an InjectedError when
// one fires.
func Err(site string) error {
	if spec, ok := fire(site); ok && spec.Kind == KindError {
		return InjectedError{Site: site}
	}
	return nil
}

// Exhausted probes site for a pool-exhaustion fault.
func Exhausted(site string) bool {
	spec, ok := fire(site)
	return ok && spec.Kind == KindExhaust
}

// FlipBits probes site for a bit-flip fault and, when one fires, XORs
// the spec's mask (bit 0 if the mask is zero) into the first element of
// every non-empty row, reporting whether anything was flipped. The
// corruption is deterministic and self-inverse.
func FlipBits(site string, rows ...[]uint64) bool {
	spec, ok := fire(site)
	if !ok || spec.Kind != KindBitFlip {
		return false
	}
	mask := spec.Mask
	if mask == 0 {
		mask = 1
	}
	flipped := false
	for _, row := range rows {
		if len(row) > 0 {
			row[0] ^= mask
			flipped = true
		}
	}
	return flipped
}
