// Package faultinject provides deterministic fault hooks for the serving
// stack: named sites in the evaluation pipeline and the admission layer
// call into this package, and armed fault specs make those sites panic,
// sleep, return errors, flip ciphertext bits, or simulate pool
// exhaustion — on exactly the hit the spec names, so every failure a test
// provokes is reproducible.
//
// The package compiles in two modes, selected by the `faultinject` build
// tag:
//
//   - Without the tag (production builds, the default), every hook is a
//     no-op returning the zero value, Enabled is false, and Arm returns
//     ErrNotCompiled. The hooks are small leaf functions, so production
//     binaries pay a nil-check at most.
//   - With `-tags faultinject`, hooks consult a process-wide registry of
//     armed Specs. Triggering is counter-based (After skips the first N
//     hits, Count bounds how many fire), never time- or rand-based, so a
//     fault burst in CI reproduces bit-for-bit.
//
// Sites are plain strings; the Site* constants below name the seams the
// repo instruments. Arming an unknown site is allowed (the spec just
// never fires) so load drivers stay decoupled from library versions.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Instrumented sites. The fhe backend fires Hit at its multiply phase
// boundaries; the serve layer fires the decode/pool/handler sites on its
// request path.
const (
	// SiteMulExtend is the BEHZ base-extension phase of MulCt.
	SiteMulExtend = "fhe.mul.extend"
	// SiteMulTensor is the tensor-product phase of MulCt.
	SiteMulTensor = "fhe.mul.tensor"
	// SiteMulScale is the divide-and-round phase of MulCt.
	SiteMulScale = "fhe.mul.scale"
	// SiteMulRelin is the relinearization phase of MulCt.
	SiteMulRelin = "fhe.mul.relin"
	// SiteModSwitch is the ModSwitch rescale on the Backend seam.
	SiteModSwitch = "fhe.modswitch"
	// SiteRotate is the Galois key-switch hop inside RotateSlots and
	// Conjugate on the Backend seam.
	SiteRotate = "fhe.rotate"
	// SiteServeDecode is the serve layer's request-decode boundary, where
	// bit-flip faults corrupt stored ciphertext residues before an
	// evaluation consumes them.
	SiteServeDecode = "serve.decode"
	// SiteServePool is the serve layer's scratch/queue admission, where
	// exhaustion faults simulate a drained buffer pool.
	SiteServePool = "serve.pool"
	// SiteServeHandler is the top of the serve layer's evaluation
	// handler (latency and panic faults on the request path itself).
	SiteServeHandler = "serve.handler"
)

// Kind is the failure mode an armed Spec injects.
type Kind uint8

const (
	// KindPanic makes Hit panic with an InjectedPanic value.
	KindPanic Kind = iota
	// KindLatency makes Hit sleep for Spec.Delay.
	KindLatency
	// KindError makes Err return an InjectedError.
	KindError
	// KindBitFlip makes FlipBits XOR Spec.Mask into the first residue of
	// every row it is handed.
	KindBitFlip
	// KindExhaust makes Exhausted report true.
	KindExhaust
)

var kindNames = map[Kind]string{
	KindPanic:   "panic",
	KindLatency: "latency",
	KindError:   "error",
	KindBitFlip: "bitflip",
	KindExhaust: "exhaust",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Spec arms one failure mode at one site. Triggering is deterministic:
// the site's hit counter increments on every probe, the spec stays dormant
// for the first After hits, then fires on the next Count hits (Count <= 0
// means every subsequent hit).
type Spec struct {
	Site  string        `json:"site"`
	Kind  Kind          `json:"kind"`
	After int           `json:"after,omitempty"`
	Count int           `json:"count,omitempty"`
	Delay time.Duration `json:"delay,omitempty"` // KindLatency
	Mask  uint64        `json:"mask,omitempty"`  // KindBitFlip (0 means bit 0)
}

func (s Spec) String() string {
	out := s.Site + ":" + s.Kind.String()
	if s.After > 0 {
		out += fmt.Sprintf(":after=%d", s.After)
	}
	if s.Count > 0 {
		out += fmt.Sprintf(":count=%d", s.Count)
	}
	if s.Kind == KindLatency {
		out += fmt.Sprintf(":delay=%s", s.Delay)
	}
	if s.Kind == KindBitFlip && s.Mask != 0 {
		out += fmt.Sprintf(":mask=%#x", s.Mask)
	}
	return out
}

// ErrNotCompiled is returned by Arm in builds without the faultinject
// tag: production binaries cannot be armed, by construction.
var ErrNotCompiled = errors.New("faultinject: not compiled in (build with -tags faultinject)")

// InjectedPanic is the value KindPanic panics with, so recovery layers
// can tell an injected fault from an organic one in their reports.
type InjectedPanic struct {
	Site string
}

func (p InjectedPanic) Error() string {
	return "faultinject: injected panic at " + p.Site
}

// InjectedError is the error KindError returns from Err.
type InjectedError struct {
	Site string
}

func (e InjectedError) Error() string {
	return "faultinject: injected error at " + e.Site
}

// ParseSpec parses the textual form used by fheserver's -fault flag and
// the serve admin endpoint: "site:kind[:after=N][:count=N][:delay=D][:mask=HEX]",
// e.g. "fhe.mul.tensor:panic:after=100:count=5" or
// "serve.handler:latency:delay=50ms:count=200".
func ParseSpec(s string) (Spec, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 {
		return Spec{}, fmt.Errorf("faultinject: spec %q needs at least site:kind", s)
	}
	spec := Spec{Site: parts[0]}
	kindOK := false
	for k, name := range kindNames {
		if name == parts[1] {
			spec.Kind = k
			kindOK = true
		}
	}
	if !kindOK {
		return Spec{}, fmt.Errorf("faultinject: unknown kind %q in spec %q", parts[1], s)
	}
	for _, opt := range parts[2:] {
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faultinject: malformed option %q in spec %q", opt, s)
		}
		switch key {
		case "after":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Spec{}, fmt.Errorf("faultinject: bad after=%q in spec %q", val, s)
			}
			spec.After = n
		case "count":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Spec{}, fmt.Errorf("faultinject: bad count=%q in spec %q", val, s)
			}
			spec.Count = n
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Spec{}, fmt.Errorf("faultinject: bad delay=%q in spec %q", val, s)
			}
			spec.Delay = d
		case "mask":
			m, err := strconv.ParseUint(strings.TrimPrefix(val, "0x"), 16, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faultinject: bad mask=%q in spec %q", val, s)
			}
			spec.Mask = m
		default:
			return Spec{}, fmt.Errorf("faultinject: unknown option %q in spec %q", key, s)
		}
	}
	return spec, nil
}
