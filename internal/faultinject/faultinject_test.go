package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"fhe.mul.tensor:panic", Spec{Site: "fhe.mul.tensor", Kind: KindPanic}},
		{"serve.handler:latency:delay=50ms:count=3",
			Spec{Site: "serve.handler", Kind: KindLatency, Delay: 50 * time.Millisecond, Count: 3}},
		{"fhe.mul.relin:panic:after=10:count=2",
			Spec{Site: "fhe.mul.relin", Kind: KindPanic, After: 10, Count: 2}},
		{"serve.decode:bitflip:mask=0x8000", Spec{Site: "serve.decode", Kind: KindBitFlip, Mask: 0x8000}},
		{"serve.pool:exhaust:count=1", Spec{Site: "serve.pool", Kind: KindExhaust, Count: 1}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "siteonly", "x:unknownkind", "x:panic:after=-1", "x:panic:noeq", "x:latency:delay=zzz"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}

// TestProductionBuildIsInert pins the no-tag contract: hooks do nothing,
// Arm refuses. (Skipped under -tags faultinject, where the armed
// behavior tests below run instead.)
func TestProductionBuildIsInert(t *testing.T) {
	if Enabled {
		t.Skip("compiled with -tags faultinject")
	}
	if err := Arm(Spec{Site: "x", Kind: KindPanic}); !errors.Is(err, ErrNotCompiled) {
		t.Fatalf("Arm = %v, want ErrNotCompiled", err)
	}
	Hit("x") // must not panic
	if err := Err("x"); err != nil {
		t.Fatalf("Err = %v, want nil", err)
	}
	if Exhausted("x") {
		t.Fatal("Exhausted = true in production build")
	}
	row := []uint64{7}
	if FlipBits("x", row) || row[0] != 7 {
		t.Fatal("FlipBits corrupted data in production build")
	}
	if Armed() != nil {
		t.Fatal("Armed() non-empty in production build")
	}
}

// The armed-behavior tests run only with -tags faultinject (the CI serve
// smoke job's configuration).

func TestDeterministicWindow(t *testing.T) {
	if !Enabled {
		t.Skip("needs -tags faultinject")
	}
	defer Reset()
	if err := Arm(Spec{Site: "t.window", Kind: KindError, After: 2, Count: 2}); err != nil {
		t.Fatal(err)
	}
	var fired []bool
	for i := 0; i < 6; i++ {
		fired = append(fired, Err("t.window") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("hit %d fired=%v, want %v (all: %v)", i, fired[i], want[i], fired)
		}
	}
}

func TestPanicAndFlip(t *testing.T) {
	if !Enabled {
		t.Skip("needs -tags faultinject")
	}
	defer Reset()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(Arm(Spec{Site: "t.panic", Kind: KindPanic, Count: 1}))
	func() {
		defer func() {
			r := recover()
			ip, ok := r.(InjectedPanic)
			if !ok || ip.Site != "t.panic" {
				t.Fatalf("recovered %v, want InjectedPanic{t.panic}", r)
			}
		}()
		Hit("t.panic")
	}()
	Hit("t.panic") // outside the window: must not panic

	must(Arm(Spec{Site: "t.flip", Kind: KindBitFlip, Mask: 0b100, Count: 1}))
	a, b := []uint64{1, 2}, []uint64{3}
	if !FlipBits("t.flip", a, b) {
		t.Fatal("FlipBits did not fire")
	}
	if a[0] != 1^0b100 || b[0] != 3^0b100 || a[1] != 2 {
		t.Fatalf("flip landed wrong: %v %v", a, b)
	}
	if FlipBits("t.flip", a) {
		t.Fatal("FlipBits fired outside its window")
	}

	must(Arm(Spec{Site: "t.pool", Kind: KindExhaust, Count: 1}))
	if !Exhausted("t.pool") || Exhausted("t.pool") {
		t.Fatal("Exhausted window wrong")
	}

	if got := len(Armed()); got != 3 {
		t.Fatalf("Armed() has %d entries, want 3", got)
	}
	Disarm("t.pool")
	if got := len(Armed()); got != 2 {
		t.Fatalf("after Disarm, Armed() has %d entries, want 2", got)
	}
}
