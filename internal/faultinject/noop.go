//go:build !faultinject

package faultinject

// Enabled reports whether fault hooks are compiled in. Production builds
// (no `faultinject` tag) compile every hook to a constant-returning leaf
// the inliner erases; nothing can be armed.
const Enabled = false

// Arm reports that this build cannot inject faults.
func Arm(Spec) error { return ErrNotCompiled }

// Disarm is a no-op without the faultinject tag.
func Disarm(string) {}

// Reset is a no-op without the faultinject tag.
func Reset() {}

// Armed always reports nothing armed without the faultinject tag.
func Armed() []Spec { return nil }

// Hit is a no-op without the faultinject tag.
func Hit(string) {}

// Err never injects without the faultinject tag.
func Err(string) error { return nil }

// Exhausted never reports exhaustion without the faultinject tag.
func Exhausted(string) bool { return false }

// FlipBits never corrupts without the faultinject tag.
func FlipBits(string, ...[]uint64) bool { return false }
