package fhe

import (
	"testing"

	"mqxgo/internal/rns"
)

// Steady-state allocation regression for the BEHZ multiply, extending the
// PR 1 discipline to the new hot path: with the scratch pool warmed and a
// reused destination ciphertext, the RNS backend's MulCt — base
// extension, tensor, divide-and-round, exact return, relinearization —
// must allocate nothing. (The 128-bit oracle backend is exempt by
// design: it trades allocation discipline for exact big-int arithmetic.)
func TestRNSMulCtDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const n, T = 256, 257
	c, err := rns.NewContext(59, 2, n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRNSBackend(c, T)
	if err != nil {
		t.Fatal(err)
	}
	s := NewBackendScheme(b, 321)
	sk := s.KeyGen()
	rlk := s.RelinKeyGen(sk)
	msg := make([]uint64, n)
	for i := range msg {
		msg[i] = uint64(3*i+1) % T
	}
	c1, err := s.Encrypt(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Encrypt(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	dst := BackendCiphertext{A: b.NewPoly(), B: b.NewPoly()}
	if err := b.MulCt(&dst, c1, c2, rlk); err != nil { // warm the multiply and transform pools
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(10, func() {
		if err := b.MulCt(&dst, c1, c2, rlk); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("RNS MulCt allocates %.1f per run, want 0", got)
	}
}

// TestRNSModSwitchDoesNotAllocate extends the gate to the new ladder
// primitive: with the Rescaler's scratch pool warmed and a reused
// destination ciphertext, dropping a level allocates nothing.
func TestRNSModSwitchDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const n, T = 256, 257
	c, err := rns.NewContext(59, 3, n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRNSBackend(c, T)
	if err != nil {
		t.Fatal(err)
	}
	s := NewBackendScheme(b, 654)
	sk := s.KeyGen()
	msg := make([]uint64, n)
	ct, err := s.Encrypt(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	dst := BackendCiphertext{A: b.NewPolyAt(1), B: b.NewPolyAt(1), Level: 1}
	if err := b.ModSwitch(&dst, ct); err != nil { // warm the rescale scratch pool
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(10, func() {
		if err := b.ModSwitch(&dst, ct); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("RNS ModSwitch allocates %.1f per run, want 0", got)
	}
}
