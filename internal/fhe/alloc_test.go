package fhe

import (
	"testing"

	"mqxgo/internal/rns"
)

// allocFixture builds a single-worker RNS backend (the zero-allocation
// configuration: the tower dispatch runs as plain loops, no pool
// submission) with two encryptions of the same message and relin and
// Galois keys.
func allocFixture(t *testing.T, levels int) (Backend, *BackendScheme, BackendRelinKey, BackendGaloisKey, BackendCiphertext, BackendCiphertext) {
	t.Helper()
	const n, T = 256, 257
	c, err := rns.NewContext(59, levels, n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRNSBackendWorkers(c, T, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewBackendScheme(b, 321)
	sk := s.KeyGen()
	rlk, rlkErr := s.RelinKeyGen(sk)
	if rlkErr != nil {
		t.Fatal(rlkErr)
	}
	gk, gkErr := s.GaloisKeyGen(sk)
	if gkErr != nil {
		t.Fatal(gkErr)
	}
	msg := make([]uint64, n)
	for i := range msg {
		msg[i] = uint64(3*i+1) % T
	}
	c1, err := s.Encrypt(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Encrypt(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	return b, s, rlk, gk, c1, c2
}

// Steady-state allocation regression for the BEHZ multiply, extending the
// PR 1 discipline to the hot path in its PR 6 resting state: with the
// scratch pool warmed and a reused destination ciphertext, the RNS
// backend's NTT-resident MulCt — operand crossing, base extension,
// tensor, fused divide-and-round, relinearization, resident return —
// must allocate nothing. (The 128-bit oracle backend is exempt by
// design: it trades allocation discipline for exact big-int arithmetic.)
func TestRNSMulCtDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	b, _, rlk, _, c1, c2 := allocFixture(t, 2)
	dst := BackendCiphertext{A: b.NewPoly(), B: b.NewPoly(), Domain: DomainNTT}
	if err := b.MulCt(&dst, c1, c2, rlk); err != nil { // warm the multiply and transform pools
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(10, func() {
		if err := b.MulCt(&dst, c1, c2, rlk); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("RNS resident MulCt allocates %.1f per run, want 0", got)
	}
}

// TestRNSMulCtSquaringDoesNotAllocate pins the resident squaring
// shortcut (aliased operands, deduplicated crossings and extensions) to
// the same zero-allocation bar — it is the ladder benchmark's exact
// workload.
func TestRNSMulCtSquaringDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	b, _, rlk, _, c1, _ := allocFixture(t, 2)
	dst := BackendCiphertext{A: b.NewPoly(), B: b.NewPoly(), Domain: DomainNTT}
	if err := b.MulCt(&dst, c1, c1, rlk); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(10, func() {
		if err := b.MulCt(&dst, c1, c1, rlk); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("RNS resident squaring allocates %.1f per run, want 0", got)
	}
}

// TestRNSMulCtCoeffDoesNotAllocate keeps the PR 5 coefficient-domain
// pipeline — still reachable through ConvertDomain and coefficient-domain
// handles — under the same gate.
func TestRNSMulCtCoeffDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	b, s, rlk, _, c1, c2 := allocFixture(t, 2)
	cc1, err := s.ConvertDomain(c1, DomainCoeff)
	if err != nil {
		t.Fatal(err)
	}
	cc2, err := s.ConvertDomain(c2, DomainCoeff)
	if err != nil {
		t.Fatal(err)
	}
	dst := BackendCiphertext{A: b.NewPoly(), B: b.NewPoly()}
	if err := b.MulCt(&dst, cc1, cc2, rlk); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(10, func() {
		if err := b.MulCt(&dst, cc1, cc2, rlk); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("RNS coefficient MulCt allocates %.1f per run, want 0", got)
	}
}

// TestRNSModSwitchDoesNotAllocate extends the gate to the ladder
// primitive in its resident form: with the Rescaler's scratch pool warmed
// and a reused destination ciphertext, dropping a level of an NTT-domain
// ciphertext allocates nothing.
func TestRNSModSwitchDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	b, _, _, _, ct, _ := allocFixture(t, 3)
	dst := BackendCiphertext{A: b.NewPolyAt(1), B: b.NewPolyAt(1), Level: 1, Domain: DomainNTT}
	if err := b.ModSwitch(&dst, ct); err != nil { // warm the rescale scratch pool
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(10, func() {
		if err := b.ModSwitch(&dst, ct); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("RNS resident ModSwitch allocates %.1f per run, want 0", got)
	}
}

// TestRNSModSwitchCoeffDoesNotAllocate is the coefficient-domain variant.
func TestRNSModSwitchCoeffDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	b, s, _, _, ct, _ := allocFixture(t, 3)
	cct, err := s.ConvertDomain(ct, DomainCoeff)
	if err != nil {
		t.Fatal(err)
	}
	dst := BackendCiphertext{A: b.NewPolyAt(1), B: b.NewPolyAt(1), Level: 1}
	if err := b.ModSwitch(&dst, cct); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(10, func() {
		if err := b.ModSwitch(&dst, cct); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("RNS coefficient ModSwitch allocates %.1f per run, want 0", got)
	}
}

// TestRNSRotateDoesNotAllocate extends the gate to the Galois key-switch
// chain: with the multiply scratch pool warmed and a reused destination,
// a resident multi-hop rotation — eval-domain permutation, gadget
// decomposition, fused MAC accumulation, landing — allocates nothing.
// Rotation is plain ring arithmetic mod Q, so the gate runs on the
// standard fixture regardless of the plaintext modulus.
func TestRNSRotateDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	b, _, _, gk, c1, _ := allocFixture(t, 2)
	dst := BackendCiphertext{A: b.NewPoly(), B: b.NewPoly(), Domain: DomainNTT}
	if err := b.RotateSlots(&dst, c1, 3, gk); err != nil { // 2 hops; warms the pools
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(10, func() {
		if err := b.RotateSlots(&dst, c1, 3, gk); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("RNS resident RotateSlots allocates %.1f per run, want 0", got)
	}
	if err := b.Conjugate(&dst, c1, gk); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(10, func() {
		if err := b.Conjugate(&dst, c1, gk); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("RNS resident Conjugate allocates %.1f per run, want 0", got)
	}
}

// TestSlotEncoderDoesNotAllocate pins the plaintext-CRT transforms: with
// the encoder's scratch pool warmed, EncodeInto and DecodeInto allocate
// nothing — they are the per-request core of the serve layer's
// encode/decode ops.
func TestSlotEncoderDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const n, T = 256, 40961
	e, err := NewSlotEncoder(n, T)
	if err != nil {
		t.Fatal(err)
	}
	slots := make([]uint64, n)
	msg := make([]uint64, n)
	for i := range slots {
		slots[i] = uint64(7*i+5) % T
	}
	if err := e.EncodeInto(msg, slots); err != nil { // warm the scratch pool
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(10, func() {
		if err := e.EncodeInto(msg, slots); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("EncodeInto allocates %.1f per run, want 0", got)
	}
	if got := testing.AllocsPerRun(10, func() {
		if err := e.DecodeInto(slots, msg); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("DecodeInto allocates %.1f per run, want 0", got)
	}
}
