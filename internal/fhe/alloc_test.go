package fhe

import (
	"testing"

	"mqxgo/internal/rns"
)

// Steady-state allocation regression for the BEHZ multiply, extending the
// PR 1 discipline to the new hot path: with the scratch pool warmed and a
// reused destination ciphertext, the RNS backend's MulCt — base
// extension, tensor, divide-and-round, exact return, relinearization —
// must allocate nothing. (The 128-bit oracle backend is exempt by
// design: it trades allocation discipline for exact big-int arithmetic.)
func TestRNSMulCtDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const n, T = 256, 257
	c, err := rns.NewContext(59, 2, n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRNSBackend(c, T)
	if err != nil {
		t.Fatal(err)
	}
	s := NewBackendScheme(b, 321)
	sk := s.KeyGen()
	rlk := s.RelinKeyGen(sk)
	msg := make([]uint64, n)
	for i := range msg {
		msg[i] = uint64(3*i+1) % T
	}
	c1, err := s.Encrypt(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Encrypt(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	dst := BackendCiphertext{A: b.NewPoly(), B: b.NewPoly()}
	b.MulCt(&dst, c1, c2, rlk) // warm the multiply and transform pools
	if got := testing.AllocsPerRun(10, func() {
		b.MulCt(&dst, c1, c2, rlk)
	}); got != 0 {
		t.Errorf("RNS MulCt allocates %.1f per run, want 0", got)
	}
}
