package fhe

import (
	"fmt"
	"math/big"
	"math/bits"
	"math/rand"
)

// Poly is an opaque backend-owned polynomial handle: []u128.U128 for the
// 128-bit ring backend, rns.Poly for the RNS backend. Handles from
// different backends must never be mixed.
type Poly any

// Backend is the ring-arithmetic seam the RLWE scheme runs on: the
// paper's two hardware philosophies — one 124-bit double-word ring versus
// a basis of 64-bit RNS towers — as swappable implementations. A backend
// fixes the ring degree N, the ciphertext modulus (q or the tower product
// Q), and the plaintext modulus T with its scaling factor Delta =
// floor(q/T); the scheme layer (BackendScheme) never sees coefficients.
type Backend interface {
	// Name identifies the backend in benchmarks and reports.
	Name() string
	// N is the ring degree.
	N() int
	// PlainModulus is the plaintext modulus T.
	PlainModulus() uint64
	// NewPoly returns a zero polynomial.
	NewPoly() Poly
	// Copy returns an independent copy of a.
	Copy(a Poly) Poly
	// Add computes dst = a + b; dst may alias a or b.
	Add(dst, a, b Poly)
	// Sub computes dst = a - b; dst may alias a or b.
	Sub(dst, a, b Poly)
	// Neg computes dst = -a; dst may alias a.
	Neg(dst, a Poly)
	// MulNegacyclic computes dst = a*b in Z_q[x]/(x^N + 1).
	MulNegacyclic(dst, a, b Poly)
	// ScalarMul computes dst = k*a for a small integer constant k.
	ScalarMul(dst, a Poly, k uint64)
	// SampleUniform overwrites dst with a uniform ring element.
	SampleUniform(dst Poly, rng *rand.Rand)
	// SetSigned overwrites dst with small signed coefficients (secret
	// keys, noise). len(coeffs) must equal N.
	SetSigned(dst Poly, coeffs []int64)
	// AddDeltaMsg computes dst = a + Delta*msg for msg coefficients in
	// [0, T); dst may alias a.
	AddDeltaMsg(dst, a Poly, msg []uint64)
	// RoundToPlain recovers round(a / Delta) mod T per coefficient.
	RoundToPlain(a Poly) []uint64
	// DeltaBits is the bit length of Delta (the fresh noise budget).
	DeltaBits() int
	// NoiseBits returns the bit length of the largest centered noise
	// magnitude of a - Delta*msg, or 0 when the noise is exactly zero.
	NoiseBits(a Poly, msg []uint64) int
	// RelinKeyGen builds a relinearization key for the secret s: gadget
	// encryptions of s^2 that MulCt uses to bring a degree-2 tensor
	// product back to a degree-1 ciphertext. The key representation is
	// backend-owned and must not be mixed across backends.
	RelinKeyGen(s Poly, rng *rand.Rand) BackendRelinKey
	// MulCt computes the homomorphic product of ct1 and ct2 into dst:
	// tensor product over the integers, rescale by T/q, and
	// relinearization with rlk, so dst decrypts (degree-1, via the usual
	// B - A*S) to the negacyclic product of the plaintexts mod T, noise
	// permitting. dst's components must be distinct polynomials not
	// aliasing ct1's or ct2's. The RNS backend is allocation-free in
	// steady state; the 128-bit oracle backend favors exactness over
	// allocation discipline.
	MulCt(dst *BackendCiphertext, ct1, ct2 BackendCiphertext, rlk BackendRelinKey)
}

// BackendRelinKey is an opaque backend-owned relinearization key handle.
type BackendRelinKey any

// BackendSecretKey is a small ternary secret polynomial.
type BackendSecretKey struct {
	S Poly
}

// BackendCiphertext is an RLWE pair (A, B) with B = A*S + E + Delta*M.
type BackendCiphertext struct {
	A, B Poly
}

// BackendScheme is the symmetric-key RLWE ("BFV-style") scheme written
// once against the Backend seam; fhe.Scheme specializes it to the 128-bit
// ring for API compatibility. The rand.Rand source keeps examples and
// tests reproducible; production code would use crypto/rand.
type BackendScheme struct {
	B   Backend
	rng *rand.Rand
}

// NewBackendScheme builds a scheme on b with the given seed.
func NewBackendScheme(b Backend, seed int64) *BackendScheme {
	return &BackendScheme{B: b, rng: rand.New(rand.NewSource(seed))}
}

// noiseBound bounds the centered error magnitude of fresh encryptions.
const noiseBound = 8

// KeyGen samples a ternary secret s with coefficients in {-1, 0, 1}.
func (s *BackendScheme) KeyGen() BackendSecretKey {
	n := s.B.N()
	coeffs := make([]int64, n)
	for i := range coeffs {
		switch s.rng.Intn(3) {
		case 0:
			coeffs[i] = 0
		case 1:
			coeffs[i] = 1
		default:
			coeffs[i] = -1
		}
	}
	sk := s.B.NewPoly()
	s.B.SetSigned(sk, coeffs)
	return BackendSecretKey{S: sk}
}

func (s *BackendScheme) checkMsg(msg []uint64) error {
	if len(msg) != s.B.N() {
		return fmt.Errorf("fhe: message length %d != N %d", len(msg), s.B.N())
	}
	t := s.B.PlainModulus()
	for _, m := range msg {
		if m >= t {
			return fmt.Errorf("fhe: coefficient %d out of plaintext range", m)
		}
	}
	return nil
}

// Encrypt encrypts a plaintext polynomial with coefficients in [0, T).
func (s *BackendScheme) Encrypt(sk BackendSecretKey, msg []uint64) (BackendCiphertext, error) {
	if err := s.checkMsg(msg); err != nil {
		return BackendCiphertext{}, err
	}
	b := s.B
	a := b.NewPoly()
	b.SampleUniform(a, s.rng)
	noise := make([]int64, b.N())
	for i := range noise {
		noise[i] = int64(s.rng.Intn(2*noiseBound+1) - noiseBound)
	}
	e := b.NewPoly()
	b.SetSigned(e, noise)
	bb := b.NewPoly()
	b.MulNegacyclic(bb, a, sk.S) // A*S
	b.Add(bb, bb, e)             // + E
	b.AddDeltaMsg(bb, bb, msg)   // + Delta*M
	return BackendCiphertext{A: a, B: bb}, nil
}

// Decrypt recovers the plaintext: round((B - A*S) * T / q) mod T.
func (s *BackendScheme) Decrypt(sk BackendSecretKey, ct BackendCiphertext) ([]uint64, error) {
	if ct.A == nil || ct.B == nil {
		return nil, fmt.Errorf("fhe: malformed ciphertext")
	}
	b := s.B
	noisy := b.NewPoly()
	b.MulNegacyclic(noisy, ct.A, sk.S)
	b.Sub(noisy, ct.B, noisy) // B - A*S = Delta*M + E
	return b.RoundToPlain(noisy), nil
}

// AddCiphertexts is homomorphic addition: decrypts to the coefficient-wise
// sum of the plaintexts mod T (noise permitting).
func (s *BackendScheme) AddCiphertexts(c1, c2 BackendCiphertext) BackendCiphertext {
	out := BackendCiphertext{A: s.B.NewPoly(), B: s.B.NewPoly()}
	s.B.Add(out.A, c1.A, c2.A)
	s.B.Add(out.B, c1.B, c2.B)
	return out
}

// SubCiphertexts is homomorphic subtraction.
func (s *BackendScheme) SubCiphertexts(c1, c2 BackendCiphertext) BackendCiphertext {
	out := BackendCiphertext{A: s.B.NewPoly(), B: s.B.NewPoly()}
	s.B.Sub(out.A, c1.A, c2.A)
	s.B.Sub(out.B, c1.B, c2.B)
	return out
}

// Neg negates a ciphertext (decrypts to -m mod T).
func (s *BackendScheme) Neg(ct BackendCiphertext) BackendCiphertext {
	out := BackendCiphertext{A: s.B.NewPoly(), B: s.B.NewPoly()}
	s.B.Neg(out.A, ct.A)
	s.B.Neg(out.B, ct.B)
	return out
}

// RelinKeyGen samples a relinearization key for sk, required by
// MulCiphertexts. One key serves any number of multiplications.
func (s *BackendScheme) RelinKeyGen(sk BackendSecretKey) BackendRelinKey {
	return s.B.RelinKeyGen(sk.S, s.rng)
}

// MulCiphertexts is homomorphic multiplication: the result decrypts to
// NegacyclicProductModT of the two plaintexts, noise permitting. Each
// multiply grows the noise roughly as documented at MulNoiseBoundBits;
// once the budget is gone, decryption fails.
func (s *BackendScheme) MulCiphertexts(c1, c2 BackendCiphertext, rlk BackendRelinKey) BackendCiphertext {
	out := BackendCiphertext{A: s.B.NewPoly(), B: s.B.NewPoly()}
	s.B.MulCt(&out, c1, c2, rlk)
	return out
}

// MulNoiseBoundBits bounds the noise magnitude (in bits) of a MulCt
// result, turning the scheme's depth capacity into code instead of
// folklore. Writing 2^noiseBits for the operands' current noise
// magnitude, n for the ring degree, T for the plaintext modulus, and
// digits gadget digits each of magnitude < 2^digitBits in the relin key,
// the dominant post-multiply noise terms are
//
//	tensor scaling:   ~ 2*n*T*2^noiseBits (T/q * Delta*m_i * e_j cross terms)
//	plaintext wrap:   ~ n*T^2             ((q mod T) * floor(m1*m2 / T): the
//	                                      integer plaintext product exceeds T
//	                                      and its excess folds into noise)
//	relinearization:  ~ digits*n*2^digitBits*noiseBound
//	conversion/round: ~ 2*(towers+1)*n^2  (FastBConv overshoot + rounding, times ||s^2||_1)
//
// Decryption of the product round-trips while this stays below
// DeltaBits - 1 — the depth-1 property test asserts exactly that, and the
// over-deep chain test shows the bound's growth exhausting the budget.
func MulNoiseBoundBits(n int, t uint64, noiseBits, digits, digitBits, towers int) int {
	nb := new(big.Int).SetInt64(int64(n))
	tb := new(big.Int).SetUint64(t)
	tensor := new(big.Int).Lsh(big.NewInt(1), uint(noiseBits))
	tensor.Mul(tensor, nb).Mul(tensor, tb).Lsh(tensor, 1)
	wrap := new(big.Int).Mul(tb, tb)
	wrap.Mul(wrap, nb)
	relin := new(big.Int).Lsh(big.NewInt(1), uint(digitBits))
	relin.Mul(relin, nb).Mul(relin, big.NewInt(int64(digits)*noiseBound))
	conv := new(big.Int).Mul(nb, nb)
	conv.Mul(conv, big.NewInt(2*int64(towers+1)))
	sum := tensor.Add(tensor, wrap)
	sum.Add(sum, relin)
	sum.Add(sum, conv)
	return sum.BitLen() + 1
}

// MulPlain multiplies a ciphertext by a plaintext polynomial with small
// coefficients (negacyclic convolution of both components). pt must be a
// handle from this scheme's backend.
func (s *BackendScheme) MulPlain(ct BackendCiphertext, pt Poly) BackendCiphertext {
	out := BackendCiphertext{A: s.B.NewPoly(), B: s.B.NewPoly()}
	s.B.MulNegacyclic(out.A, ct.A, pt)
	s.B.MulNegacyclic(out.B, ct.B, pt)
	return out
}

// MulScalar multiplies a ciphertext by a small integer constant k
// (decrypts to k*m mod T, noise permitting: noise grows by a factor k).
func (s *BackendScheme) MulScalar(ct BackendCiphertext, k uint64) BackendCiphertext {
	out := BackendCiphertext{A: s.B.NewPoly(), B: s.B.NewPoly()}
	s.B.ScalarMul(out.A, ct.A, k)
	s.B.ScalarMul(out.B, ct.B, k)
	return out
}

// AddPlain adds a plaintext message to a ciphertext without encrypting it
// first: only the B component moves, by Delta * m.
func (s *BackendScheme) AddPlain(ct BackendCiphertext, msg []uint64) (BackendCiphertext, error) {
	if err := s.checkMsg(msg); err != nil {
		return BackendCiphertext{}, err
	}
	out := BackendCiphertext{A: s.B.Copy(ct.A), B: s.B.NewPoly()}
	s.B.AddDeltaMsg(out.B, ct.B, msg)
	return out, nil
}

// NegacyclicProductModT is the schoolbook product in Z_T[x]/(x^n + 1):
// the plaintext-side ground truth a MulCiphertexts result decrypts to.
// O(n^2) — it exists for tests, demos, and benchmark gates, not for
// performance.
func NegacyclicProductModT(m1, m2 []uint64, t uint64) []uint64 {
	n := len(m1)
	out := make([]uint64, n)
	for i, a := range m1 {
		if a == 0 {
			continue
		}
		for j, b := range m2 {
			hi, lo := bits.Mul64(a%t, b%t)
			p := bits.Rem64(hi, lo, t)
			if i+j < n {
				out[i+j] = (out[i+j] + p) % t
			} else {
				out[i+j-n] = (out[i+j-n] + t - p) % t // x^n = -1
			}
		}
	}
	return out
}

// NoiseBits measures a ciphertext's noise magnitude in bits against the
// expected plaintext: the bit length of max |B - A*S - Delta*msg| over
// the coefficients. Diagnostic only (requires the secret key); the
// property tests compare it against MulNoiseBoundBits.
func (s *BackendScheme) NoiseBits(sk BackendSecretKey, ct BackendCiphertext, msg []uint64) (int, error) {
	if len(msg) != s.B.N() {
		return 0, fmt.Errorf("fhe: message length mismatch")
	}
	b := s.B
	noisy := b.NewPoly()
	b.MulNegacyclic(noisy, ct.A, sk.S)
	b.Sub(noisy, ct.B, noisy)
	return b.NoiseBits(noisy, msg), nil
}

// NoiseBudgetBits estimates the remaining noise budget of a ciphertext in
// bits: log2(Delta / (2*|noise|)) where noise = B - A*S - Delta*m. When it
// reaches zero, decryption starts failing. Diagnostic only (requires the
// secret key).
func (s *BackendScheme) NoiseBudgetBits(sk BackendSecretKey, ct BackendCiphertext, msg []uint64) (int, error) {
	if len(msg) != s.B.N() {
		return 0, fmt.Errorf("fhe: message length mismatch")
	}
	b := s.B
	noisy := b.NewPoly()
	b.MulNegacyclic(noisy, ct.A, sk.S)
	b.Sub(noisy, ct.B, noisy)
	nb := b.NoiseBits(noisy, msg)
	if nb == 0 {
		return b.DeltaBits(), nil
	}
	budget := b.DeltaBits() - nb - 1
	if budget < 0 {
		budget = 0
	}
	return budget, nil
}
