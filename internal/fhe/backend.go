package fhe

import (
	"context"
	"fmt"
	"math/big"
	"math/bits"
	"math/rand"
	"sync"
)

// Poly is an opaque backend-owned polynomial handle: []u128.U128 for the
// 128-bit ring backend, rns.Poly for the RNS backend. Handles from
// different backends must never be mixed; the scheme layer validates
// provenance at every public entry point and returns errors instead of
// crashing when they are.
type Poly any

// Domain says which representation a ciphertext's components are resting
// in. Since PR 6 the NTT (double-CRT) domain is the RESTING STATE of a
// ciphertext: Encrypt produces DomainNTT, the linear ops and
// MulCt/ModSwitch keep it, and coefficient form appears only at the
// Encrypt/Decrypt boundaries and inside the BEHZ base-extension steps
// where positional coefficients are mandatory. DomainCoeff is the zero
// value, so directly-constructed ciphertexts (tests, the legacy
// fhe.Scheme wrapper) keep their historical coefficient-domain meaning.
type Domain uint8

const (
	// DomainCoeff: components hold positional coefficients.
	DomainCoeff Domain = iota
	// DomainNTT: components hold per-tower twisted-evaluation (negacyclic
	// NTT) values — double-CRT form on the RNS backend.
	DomainNTT
)

func (d Domain) String() string {
	switch d {
	case DomainCoeff:
		return "coeff"
	case DomainNTT:
		return "ntt"
	default:
		return fmt.Sprintf("domain(%d)", uint8(d))
	}
}

// Backend is the ring-arithmetic seam the RLWE scheme runs on: the
// paper's two hardware philosophies — one 124-bit double-word ring versus
// a basis of 64-bit RNS towers — as swappable implementations. A backend
// fixes the ring degree N, the plaintext modulus T, and — since PR 5 — a
// modulus-switching LADDER: a decreasing chain of ciphertext moduli
// Q_0 > Q_1 > ... > Q_{L-1} built once at construction. Level 0 is the
// full modulus fresh encryptions live at; ModSwitch moves a ciphertext
// down one level (dividing coefficients — and noise — by the dropped
// factor), and every ciphertext-space operation takes the level it runs
// at, because the modulus, the plaintext scale Delta_l = floor(Q_l / T),
// and (for RNS) the tower count all depend on it. The scheme layer
// (BackendScheme) never sees coefficients.
type Backend interface {
	// Name identifies the backend in benchmarks and reports.
	Name() string
	// N is the ring degree.
	N() int
	// PlainModulus is the plaintext modulus T.
	PlainModulus() uint64
	// Levels is the length of the modulus chain; valid levels are
	// [0, Levels()-1], level 0 the widest.
	Levels() int
	// NewPoly returns a zero polynomial at level 0.
	NewPoly() Poly
	// NewPolyAt returns a zero polynomial shaped for the given level.
	NewPolyAt(level int) Poly
	// Copy returns an independent copy of a (any level; the shape is
	// carried by the handle).
	Copy(a Poly) Poly
	// CheckCiphertext validates a ciphertext's provenance against this
	// backend: handle types, level range, per-level shape, and
	// coefficient ranges. It is the scheme layer's gate — a ciphertext
	// from another backend (or a corrupted one) fails here with an error
	// instead of crashing deeper in the pipeline.
	CheckCiphertext(ct BackendCiphertext) error
	// CheckPoly validates a single polynomial handle the same way:
	// backend type, the level's shape, and residue ranges.
	CheckPoly(level int, a Poly) error
	// Add computes dst = a + b at the given level; dst may alias a or b.
	Add(level int, dst, a, b Poly)
	// Sub computes dst = a - b at the given level; dst may alias a or b.
	Sub(level int, dst, a, b Poly)
	// Neg computes dst = -a at the given level; dst may alias a.
	Neg(level int, dst, a Poly)
	// MulNegacyclic computes dst = a*b in Z_{Q_l}[x]/(x^N + 1), both
	// operands in coefficient form.
	MulNegacyclic(level int, dst, a, b Poly)
	// ToNTT moves a (coefficient form at the given level) into the
	// twisted-evaluation domain: every tower/limb forward-transformed.
	// dst may alias a.
	ToNTT(level int, dst, a Poly)
	// ToCoeff is the inverse of ToNTT (1/N folded in). dst may alias a.
	ToCoeff(level int, dst, a Poly)
	// PMul computes the evaluation-domain pointwise product dst = a ∘ b
	// for operands already in the twisted NTT domain — the negacyclic
	// convolution of their coefficient forms. dst may alias a or b.
	PMul(level int, dst, a, b Poly)
	// ScalarMul computes dst = k*a at the given level for a small
	// integer constant k.
	ScalarMul(level int, dst, a Poly, k uint64)
	// SampleUniform overwrites dst (a level-0 polynomial) with a uniform
	// ring element.
	SampleUniform(dst Poly, rng *rand.Rand)
	// SetSigned overwrites dst (a level-0 polynomial) with small signed
	// coefficients (secret keys, noise). len(coeffs) must equal N.
	SetSigned(dst Poly, coeffs []int64)
	// SecretAt returns the level-0 secret (or any small signed
	// polynomial set by SetSigned) re-encoded at the given level. The
	// result may share storage with s and must be treated as read-only.
	SecretAt(level int, s Poly) Poly
	// AddDeltaMsg computes dst = a + Delta_l*msg for msg coefficients in
	// [0, T); dst may alias a.
	AddDeltaMsg(level int, dst, a Poly, msg []uint64)
	// RoundToPlain recovers round(a / Delta_l) mod T per coefficient.
	RoundToPlain(level int, a Poly) []uint64
	// DeltaBits is the bit length of Delta_l (the noise budget ceiling
	// at that level).
	DeltaBits(level int) int
	// NoiseBits returns the bit length of the largest centered noise
	// magnitude of a - Delta_l*msg, or 0 when the noise is exactly zero.
	NoiseBits(level int, a Poly, msg []uint64) int
	// RelinKeyGen builds a relinearization key for the secret s: at
	// every level of the chain, gadget encryptions of s^2 (stored in the
	// NTT domain) that MulCt uses to bring a degree-2 tensor product
	// back to a degree-1 ciphertext. The key representation is
	// backend-owned and must not be mixed across backends.
	RelinKeyGen(s Poly, rng *rand.Rand) BackendRelinKey
	// MulCt computes the homomorphic product of ct1 and ct2 into dst:
	// tensor product over the integers in the CURRENT level's basis,
	// rescale by T/Q_l, and relinearization with rlk's keys for that
	// level, so dst decrypts (degree-1, via the usual B - A*S) to the
	// negacyclic product of the plaintexts mod T, noise permitting.
	// ct1, ct2, and dst must share one level AND one domain (set
	// dst.Domain before the call; domain-mismatched handles are
	// rejected); dst's components must be distinct polynomials not
	// aliasing ct1's or ct2's. With DomainNTT operands the RNS backend
	// runs the resident pipeline: the tensor consumes the operands'
	// evaluation form directly, per-tower work dispatches through the
	// worker pool, and the relinearized result is returned resident —
	// only the BEHZ base-extension and divide-and-round steps touch
	// coefficient form. Malformed handles, mixed-backend keys, and
	// out-of-range tensors (the oracle backend's rescale detection)
	// return errors. The RNS backend is allocation-free in steady state
	// (sequential dispatch; parallel dispatch pays the pool's fixed
	// per-chunk closure cost); the 128-bit oracle backend favors
	// exactness over allocation discipline.
	MulCt(dst *BackendCiphertext, ct1, ct2 BackendCiphertext, rlk BackendRelinKey) error
	// ModSwitch rescales ct from its level to level+1 into dst: every
	// coefficient becomes round(c * Q_{l+1} / Q_l), dividing the noise
	// by the dropped factor along with the modulus. dst must be shaped
	// for ct.Level+1 with dst.Level already set and dst.Domain matching
	// ct's. DomainNTT ciphertexts stay resident: only the dropped tower
	// is inverse-transformed (rns.Rescaler.RescaleNTTInto). The RNS path
	// is allocation-free in steady state.
	ModSwitch(dst *BackendCiphertext, ct BackendCiphertext) error
	// GaloisKeyGen builds the slot-rotation key set for the secret s: at
	// every level of the chain, gadget encryptions of tau_g(s) — the
	// same per-level NTT-domain gadget RelinKeyGen uses — for the
	// power-of-two rotation elements g = 3^(2^j) mod 2N plus the
	// conjugation element 2N-1. RotateSlots composes power-of-two hops,
	// so one key set covers every rotation amount with O(log N) key
	// material. The key representation is backend-owned and must not be
	// mixed across backends.
	GaloisKeyGen(s Poly, rng *rand.Rand) BackendGaloisKey
	// RotateSlots key-switches ct through the automorphism that rotates
	// both slot rows left by steps (negative steps rotate right),
	// writing the result into dst: dst must be shaped for ct's level
	// with dst.Level and dst.Domain already matching and storage not
	// aliasing ct's. Resident (DomainNTT) ciphertexts stay resident —
	// the automorphism is a pure permutation of the evaluation rows and
	// the key-switch accumulates in the evaluation domain. The RNS path
	// is allocation-free in steady state (workers == 1).
	RotateSlots(dst *BackendCiphertext, ct BackendCiphertext, steps int, gk BackendGaloisKey) error
	// Conjugate applies the row-swap automorphism x -> x^(2N-1) with the
	// same contract as RotateSlots.
	Conjugate(dst *BackendCiphertext, ct BackendCiphertext, gk BackendGaloisKey) error
}

// BackendRelinKey is an opaque backend-owned relinearization key handle.
type BackendRelinKey any

// BackendGaloisKey is an opaque backend-owned slot-rotation key handle.
type BackendGaloisKey any

// CoeffDomainRelinKeyGenerator is implemented by backends that can also
// build their relinearization keys in the COEFFICIENT domain — the PR 4
// layout whose per-multiply key-transform cost the NTT-domain default
// eliminates. It exists as the benchmark comparison axis (benchjson
// -out5); production callers want Backend.RelinKeyGen.
type CoeffDomainRelinKeyGenerator interface {
	RelinKeyGenCoeffDomain(s Poly, rng *rand.Rand) BackendRelinKey
}

// BackendSecretKey is a small ternary secret polynomial (level 0).
type BackendSecretKey struct {
	S Poly
}

// BackendCiphertext is an RLWE pair (A, B) with B = A*S + E + Delta*M,
// tagged with the modulus-chain level its components live at and the
// representation Domain they rest in. Fresh encryptions are at level 0 in
// DomainNTT (the double-CRT resting state); ModSwitch increments Level
// and preserves the domain. The zero Domain is DomainCoeff, so pairs
// constructed directly from coefficient polynomials remain valid.
type BackendCiphertext struct {
	A, B   Poly
	Level  int
	Domain Domain
}

// BackendScheme is the symmetric-key RLWE ("BFV-style") scheme written
// once against the Backend seam; fhe.Scheme specializes it to the 128-bit
// ring for API compatibility. The rand.Rand source keeps examples and
// tests reproducible; production code would use crypto/rand.
//
// A BackendScheme is safe for concurrent use: the evaluation entry points
// share no mutable state (the backends keep per-call scratch in
// sync.Pools), and the sampling entry points — KeyGen, Encrypt,
// RelinKeyGen — serialize on an internal mutex because rand.Rand is not
// goroutine-safe.
type BackendScheme struct {
	B Backend

	rngMu sync.Mutex
	rng   *rand.Rand

	// Slot encoder, built lazily on first EncodeSlots/DecodeSlots: it
	// exists only when the backend's (N, T) pair supports the plaintext
	// CRT, and the construction error is sticky.
	slotOnce sync.Once
	slotEnc  *SlotEncoder
	slotErr  error
}

// NewBackendScheme builds a scheme on b with the given seed.
func NewBackendScheme(b Backend, seed int64) *BackendScheme {
	return &BackendScheme{B: b, rng: rand.New(rand.NewSource(seed))}
}

// noiseBound bounds the centered error magnitude of fresh encryptions.
const noiseBound = 8

// KeyGen samples a ternary secret s with coefficients in {-1, 0, 1}.
func (s *BackendScheme) KeyGen() BackendSecretKey {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	n := s.B.N()
	coeffs := make([]int64, n)
	for i := range coeffs {
		switch s.rng.Intn(3) {
		case 0:
			coeffs[i] = 0
		case 1:
			coeffs[i] = 1
		default:
			coeffs[i] = -1
		}
	}
	sk := s.B.NewPoly()
	s.B.SetSigned(sk, coeffs)
	return BackendSecretKey{S: sk}
}

// checkSecret validates a secret-key handle's provenance before it is
// handed to backend internals that index into it. A key from another
// backend (or a zero-value BackendSecretKey) fails here with an error
// instead of panicking in SecretAt's type assertion.
func (s *BackendScheme) checkSecret(sk BackendSecretKey) error {
	if sk.S == nil {
		return fmt.Errorf("fhe: nil secret key handle")
	}
	if err := s.B.CheckPoly(0, sk.S); err != nil {
		return fmt.Errorf("fhe: bad secret key: %w", err)
	}
	return nil
}

func (s *BackendScheme) checkMsg(msg []uint64) error {
	if len(msg) != s.B.N() {
		return fmt.Errorf("fhe: message length %d != N %d", len(msg), s.B.N())
	}
	t := s.B.PlainModulus()
	for _, m := range msg {
		if m >= t {
			return fmt.Errorf("fhe: coefficient %d out of plaintext range", m)
		}
	}
	return nil
}

// checkCts validates every ciphertext's provenance against the backend
// and that they all sit at one level AND in one domain — the hardening
// gate every public entry point passes malformed inputs through instead
// of panicking. Domain-mismatched operands are rejected, never silently
// converted: a resident and a coefficient handle meeting in one operation
// means some caller lost track of representation state, and an implicit
// transform would bury that bug under a correctness-preserving cost.
//
//mqx:domaincheck
func (s *BackendScheme) checkCts(cts ...BackendCiphertext) error {
	for i, ct := range cts {
		if ct.Domain > DomainNTT {
			return fmt.Errorf("fhe: operand %d carries unknown domain tag %d", i, ct.Domain)
		}
		if err := s.B.CheckCiphertext(ct); err != nil {
			return err
		}
		if ct.Level != cts[0].Level {
			return fmt.Errorf("fhe: operand %d at level %d, operand 0 at level %d",
				i, ct.Level, cts[0].Level)
		}
		if ct.Domain != cts[0].Domain {
			return fmt.Errorf("fhe: operand %d in the %s domain, operand 0 in the %s domain",
				i, ct.Domain, cts[0].Domain)
		}
	}
	return nil
}

// Encrypt encrypts a plaintext polynomial with coefficients in [0, T) at
// level 0, the top of the modulus chain. The returned ciphertext is
// NTT-RESIDENT (DomainNTT): sampling, key product, and message embedding
// happen in coefficient form, then both components forward-transform once
// — the last mandatory transform until Decrypt, as far as the linear ops,
// MulCiphertexts, and ModSwitch are concerned.
func (s *BackendScheme) Encrypt(sk BackendSecretKey, msg []uint64) (BackendCiphertext, error) {
	if err := s.checkSecret(sk); err != nil {
		return BackendCiphertext{}, err
	}
	if err := s.checkMsg(msg); err != nil {
		return BackendCiphertext{}, err
	}
	b := s.B
	a := b.NewPoly()
	noise := make([]int64, b.N())
	s.rngMu.Lock()
	b.SampleUniform(a, s.rng)
	for i := range noise {
		noise[i] = int64(s.rng.Intn(2*noiseBound+1) - noiseBound)
	}
	s.rngMu.Unlock()
	e := b.NewPoly()
	b.SetSigned(e, noise)
	bb := b.NewPoly()
	b.MulNegacyclic(0, bb, a, sk.S) // A*S
	b.Add(0, bb, bb, e)             // + E
	b.AddDeltaMsg(0, bb, bb, msg)   // + Delta*M
	b.ToNTT(0, a, a)
	b.ToNTT(0, bb, bb)
	return BackendCiphertext{A: a, B: bb, Domain: DomainNTT}, nil
}

// coeffAB returns ct's components in coefficient form: the originals for
// a DomainCoeff handle, fresh inverse-transformed copies for a resident
// one. It is the decryption-side boundary crossing; ct is never mutated.
func (s *BackendScheme) coeffAB(ct BackendCiphertext) (a, b Poly) {
	if ct.Domain != DomainNTT {
		return ct.A, ct.B
	}
	a = s.B.Copy(ct.A)
	b = s.B.Copy(ct.B)
	s.B.ToCoeff(ct.Level, a, a)
	s.B.ToCoeff(ct.Level, b, b)
	return a, b
}

// ConvertDomain returns a copy of ct with its components resting in
// domain d — the explicit boundary crossing between the resident
// double-CRT world and coefficient-form consumers (serialization, the
// legacy fhe.Scheme wrapper, coefficient-domain benchmark fixtures).
// Converting to the domain ct already rests in returns an independent
// copy. Decryption commutes with this conversion bit-for-bit: the
// transforms are exact, so a resident chain checked through ConvertDomain
// must agree with a coefficient chain at every step.
func (s *BackendScheme) ConvertDomain(ct BackendCiphertext, d Domain) (BackendCiphertext, error) {
	if err := s.checkCts(ct); err != nil {
		return BackendCiphertext{}, err
	}
	if d > DomainNTT {
		return BackendCiphertext{}, fmt.Errorf("fhe: unknown target domain tag %d", d)
	}
	out := BackendCiphertext{A: s.B.Copy(ct.A), B: s.B.Copy(ct.B), Level: ct.Level, Domain: d}
	if ct.Domain == d {
		return out, nil
	}
	if d == DomainNTT {
		s.B.ToNTT(ct.Level, out.A, out.A)
		s.B.ToNTT(ct.Level, out.B, out.B)
	} else {
		s.B.ToCoeff(ct.Level, out.A, out.A)
		s.B.ToCoeff(ct.Level, out.B, out.B)
	}
	return out, nil
}

// Decrypt recovers the plaintext at the ciphertext's level:
// round((B - A*S) * T / Q_l) mod T. Resident ciphertexts are
// inverse-transformed into scratch copies first — decryption is the other
// boundary where coefficient form is mandatory.
func (s *BackendScheme) Decrypt(sk BackendSecretKey, ct BackendCiphertext) ([]uint64, error) {
	if err := s.checkSecret(sk); err != nil {
		return nil, err
	}
	if err := s.checkCts(ct); err != nil {
		return nil, err
	}
	b := s.B
	l := ct.Level
	ca, cb := s.coeffAB(ct)
	noisy := b.NewPolyAt(l)
	b.MulNegacyclic(l, noisy, ca, b.SecretAt(l, sk.S))
	b.Sub(l, noisy, cb, noisy) // B - A*S = Delta*M + E
	return b.RoundToPlain(l, noisy), nil
}

// AddCiphertexts is homomorphic addition: decrypts to the coefficient-wise
// sum of the plaintexts mod T (noise permitting). The operands must share
// a level.
func (s *BackendScheme) AddCiphertexts(c1, c2 BackendCiphertext) (BackendCiphertext, error) {
	if err := s.checkCts(c1, c2); err != nil {
		return BackendCiphertext{}, err
	}
	l := c1.Level
	out := BackendCiphertext{A: s.B.NewPolyAt(l), B: s.B.NewPolyAt(l), Level: l, Domain: c1.Domain}
	s.B.Add(l, out.A, c1.A, c2.A)
	s.B.Add(l, out.B, c1.B, c2.B)
	return out, nil
}

// SubCiphertexts is homomorphic subtraction.
func (s *BackendScheme) SubCiphertexts(c1, c2 BackendCiphertext) (BackendCiphertext, error) {
	if err := s.checkCts(c1, c2); err != nil {
		return BackendCiphertext{}, err
	}
	l := c1.Level
	out := BackendCiphertext{A: s.B.NewPolyAt(l), B: s.B.NewPolyAt(l), Level: l, Domain: c1.Domain}
	s.B.Sub(l, out.A, c1.A, c2.A)
	s.B.Sub(l, out.B, c1.B, c2.B)
	return out, nil
}

// Neg negates a ciphertext (decrypts to -m mod T).
func (s *BackendScheme) Neg(ct BackendCiphertext) (BackendCiphertext, error) {
	if err := s.checkCts(ct); err != nil {
		return BackendCiphertext{}, err
	}
	l := ct.Level
	out := BackendCiphertext{A: s.B.NewPolyAt(l), B: s.B.NewPolyAt(l), Level: l, Domain: ct.Domain}
	s.B.Neg(l, out.A, ct.A)
	s.B.Neg(l, out.B, ct.B)
	return out, nil
}

// RelinKeyGen samples a relinearization key for sk, required by
// MulCiphertexts. One key serves any number of multiplications at any
// level of the chain. A secret-key handle from another backend is
// rejected here — key generation indexes deep into the handle and must
// never see a foreign one.
func (s *BackendScheme) RelinKeyGen(sk BackendSecretKey) (BackendRelinKey, error) {
	if err := s.checkSecret(sk); err != nil {
		return nil, err
	}
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.B.RelinKeyGen(sk.S, s.rng), nil
}

// GaloisKeyGen samples the slot-rotation key set for sk, required by
// RotateSlots and Conjugate. One key set serves every rotation amount at
// every level of the chain (power-of-two hops compose). Foreign secret
// keys are rejected, as in RelinKeyGen.
func (s *BackendScheme) GaloisKeyGen(sk BackendSecretKey) (BackendGaloisKey, error) {
	if err := s.checkSecret(sk); err != nil {
		return nil, err
	}
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.B.GaloisKeyGen(sk.S, s.rng), nil
}

// RotateSlots homomorphically rotates both slot rows of ct left by steps
// (negative steps rotate right): the result decrypts — after DecodeSlots —
// to the slot vector of ct rotated within each row. Requires a Galois key
// from this scheme's backend; the key-switch adds relin-gadget-sized
// noise per power-of-two hop.
func (s *BackendScheme) RotateSlots(ct BackendCiphertext, steps int, gk BackendGaloisKey) (BackendCiphertext, error) {
	return s.RotateSlotsCtx(context.Background(), ct, steps, gk)
}

// Conjugate homomorphically swaps the two slot rows of ct (the Galois
// element -1), with the same contract as RotateSlots.
func (s *BackendScheme) Conjugate(ct BackendCiphertext, gk BackendGaloisKey) (BackendCiphertext, error) {
	return s.ConjugateCtx(context.Background(), ct, gk)
}

// MulCiphertexts is homomorphic multiplication at the operands' shared
// level: the result decrypts to NegacyclicProductModT of the two
// plaintexts, noise permitting. Each multiply grows the noise roughly as
// documented at MulNoiseBoundBits; once the budget is gone, decryption
// fails. Running the chain down the modulus ladder (ModSwitch between
// multiplies) makes every subsequent multiply cheaper — fewer towers,
// smaller transforms — at the same decryption correctness.
func (s *BackendScheme) MulCiphertexts(c1, c2 BackendCiphertext, rlk BackendRelinKey) (BackendCiphertext, error) {
	if err := s.checkCts(c1, c2); err != nil {
		return BackendCiphertext{}, err
	}
	l := c1.Level
	out := BackendCiphertext{A: s.B.NewPolyAt(l), B: s.B.NewPolyAt(l), Level: l, Domain: c1.Domain}
	if err := s.B.MulCt(&out, c1, c2, rlk); err != nil {
		return BackendCiphertext{}, err
	}
	return out, nil
}

// ModSwitch moves a ciphertext one level down the modulus chain:
// coefficients (and noise) are divided-and-rounded by the dropped modulus
// factor. The plaintext is unchanged; what shrinks is the cost of every
// subsequent operation. Fails when the ciphertext is malformed or already
// at the bottom of the chain.
func (s *BackendScheme) ModSwitch(ct BackendCiphertext) (BackendCiphertext, error) {
	if err := s.checkCts(ct); err != nil {
		return BackendCiphertext{}, err
	}
	if ct.Level >= s.B.Levels()-1 {
		return BackendCiphertext{}, fmt.Errorf("fhe: ciphertext already at bottom level %d", ct.Level)
	}
	l := ct.Level + 1
	out := BackendCiphertext{A: s.B.NewPolyAt(l), B: s.B.NewPolyAt(l), Level: l, Domain: ct.Domain}
	if err := s.B.ModSwitch(&out, ct); err != nil {
		return BackendCiphertext{}, err
	}
	return out, nil
}

// MulNoiseBoundBits bounds the noise magnitude (in bits) of a MulCt
// result, turning the scheme's depth capacity into code instead of
// folklore. Writing 2^noiseBits for the operands' current noise
// magnitude, n for the ring degree, T for the plaintext modulus, digits
// gadget digits each of magnitude < 2^digitBits in the relin key, and
// overshoot for the base-conversion operand overshoot factor — how many
// multiples of Q an extended operand may carry: k-1 for the plain
// FastBConv PR 4 shipped, 1 for the m~-corrected conversion (PR 5,
// rns.MontBaseConverter), 0 for the oracle's exact integer tensor — the
// dominant post-multiply noise terms are
//
//	tensor scaling:   ~ 2*n*T*2^noiseBits * (1+overshoot)
//	                  (T/q * Delta*m_i * e_j cross terms; each operand's
//	                  overshoot multiple of Q survives the rescale as an
//	                  extra T * [operand](s) cross term, so the factor)
//	plaintext wrap:   ~ n*T^2             ((q mod T) * floor(m1*m2 / T): the
//	                                      integer plaintext product exceeds T
//	                                      and its excess folds into noise)
//	relinearization:  ~ digits*n*2^digitBits*noiseBound
//	conversion/round: ~ 2*(overshoot+2)*n^2  (divide-by-Q FastBConv
//	                                      overshoot + rounding, times ||s^2||_1)
//
// Decryption of the product round-trips while this stays below
// DeltaBits - 1 — the depth-1 property test asserts exactly that, the
// over-deep chain test shows the bound's growth exhausting the budget,
// and the m~ property test shows the overshoot=1 bound sitting strictly
// below the PR 4 overshoot=k-1 bound once the tensor term dominates.
func MulNoiseBoundBits(n int, t uint64, noiseBits, digits, digitBits, overshoot int) int {
	nb := new(big.Int).SetInt64(int64(n))
	tb := new(big.Int).SetUint64(t)
	tensor := new(big.Int).Lsh(big.NewInt(1), uint(noiseBits))
	tensor.Mul(tensor, nb).Mul(tensor, tb).Lsh(tensor, 1)
	tensor.Mul(tensor, big.NewInt(int64(1+overshoot)))
	wrap := new(big.Int).Mul(tb, tb)
	wrap.Mul(wrap, nb)
	relin := new(big.Int).Lsh(big.NewInt(1), uint(digitBits))
	relin.Mul(relin, nb).Mul(relin, big.NewInt(int64(digits)*noiseBound))
	conv := new(big.Int).Mul(nb, nb)
	conv.Mul(conv, big.NewInt(2*int64(overshoot+2)))
	sum := tensor.Add(tensor, wrap)
	sum.Add(sum, relin)
	sum.Add(sum, conv)
	return sum.BitLen() + 1
}

// MulPlain multiplies a ciphertext by a plaintext polynomial with small
// coefficients (negacyclic convolution of both components). pt must be a
// COEFFICIENT-form handle from this scheme's backend shaped for ct's
// level. A resident ciphertext stays resident: pt forward-transforms once
// into scratch and both components take the pointwise product, replacing
// two full negacyclic convolutions (4 transforms each) with one transform
// total.
func (s *BackendScheme) MulPlain(ct BackendCiphertext, pt Poly) (BackendCiphertext, error) {
	if err := s.checkCts(ct); err != nil {
		return BackendCiphertext{}, err
	}
	l := ct.Level
	if err := s.B.CheckPoly(l, pt); err != nil {
		return BackendCiphertext{}, err
	}
	out := BackendCiphertext{A: s.B.NewPolyAt(l), B: s.B.NewPolyAt(l), Level: l, Domain: ct.Domain}
	if ct.Domain == DomainNTT {
		ev := s.B.Copy(pt)
		s.B.ToNTT(l, ev, ev)
		s.B.PMul(l, out.A, ct.A, ev)
		s.B.PMul(l, out.B, ct.B, ev)
		return out, nil
	}
	s.B.MulNegacyclic(l, out.A, ct.A, pt)
	s.B.MulNegacyclic(l, out.B, ct.B, pt)
	return out, nil
}

// MulScalar multiplies a ciphertext by a small integer constant k
// (decrypts to k*m mod T, noise permitting: noise grows by a factor k).
func (s *BackendScheme) MulScalar(ct BackendCiphertext, k uint64) (BackendCiphertext, error) {
	if err := s.checkCts(ct); err != nil {
		return BackendCiphertext{}, err
	}
	l := ct.Level
	out := BackendCiphertext{A: s.B.NewPolyAt(l), B: s.B.NewPolyAt(l), Level: l, Domain: ct.Domain}
	s.B.ScalarMul(l, out.A, ct.A, k)
	s.B.ScalarMul(l, out.B, ct.B, k)
	return out, nil
}

// AddPlain adds a plaintext message to a ciphertext without encrypting it
// first: only the B component moves, by Delta_l * m.
func (s *BackendScheme) AddPlain(ct BackendCiphertext, msg []uint64) (BackendCiphertext, error) {
	if err := s.checkCts(ct); err != nil {
		return BackendCiphertext{}, err
	}
	if err := s.checkMsg(msg); err != nil {
		return BackendCiphertext{}, err
	}
	l := ct.Level
	out := BackendCiphertext{A: s.B.Copy(ct.A), B: s.B.NewPolyAt(l), Level: l, Domain: ct.Domain}
	if ct.Domain == DomainNTT {
		// Embed Delta*m in coefficient form, transform it (the NTT is
		// linear, so adding its image is adding the message), and add into
		// the resident B.
		dm := s.B.NewPolyAt(l)
		s.B.AddDeltaMsg(l, dm, dm, msg)
		s.B.ToNTT(l, dm, dm)
		s.B.Add(l, out.B, ct.B, dm)
		return out, nil
	}
	s.B.AddDeltaMsg(l, out.B, ct.B, msg)
	return out, nil
}

// NegacyclicProductModT is the schoolbook product in Z_T[x]/(x^n + 1):
// the plaintext-side ground truth a MulCiphertexts result decrypts to.
// O(n^2) — it exists for tests, demos, and benchmark gates, not for
// performance.
func NegacyclicProductModT(m1, m2 []uint64, t uint64) []uint64 {
	n := len(m1)
	out := make([]uint64, n)
	for i, a := range m1 {
		if a == 0 {
			continue
		}
		for j, b := range m2 {
			hi, lo := bits.Mul64(a%t, b%t)
			p := bits.Rem64(hi, lo, t)
			if i+j < n {
				out[i+j] = (out[i+j] + p) % t
			} else {
				out[i+j-n] = (out[i+j-n] + t - p) % t // x^n = -1
			}
		}
	}
	return out
}

// NoiseBits measures a ciphertext's noise magnitude in bits against the
// expected plaintext: the bit length of max |B - A*S - Delta_l*msg| over
// the coefficients. Diagnostic only (requires the secret key); the
// property tests compare it against MulNoiseBoundBits.
func (s *BackendScheme) NoiseBits(sk BackendSecretKey, ct BackendCiphertext, msg []uint64) (int, error) {
	if err := s.checkSecret(sk); err != nil {
		return 0, err
	}
	if err := s.checkCts(ct); err != nil {
		return 0, err
	}
	if len(msg) != s.B.N() {
		return 0, fmt.Errorf("fhe: message length mismatch")
	}
	b := s.B
	l := ct.Level
	ca, cb := s.coeffAB(ct)
	noisy := b.NewPolyAt(l)
	b.MulNegacyclic(l, noisy, ca, b.SecretAt(l, sk.S))
	b.Sub(l, noisy, cb, noisy)
	return b.NoiseBits(l, noisy, msg), nil
}

// NoiseBudgetBits estimates the remaining noise budget of a ciphertext in
// bits at its level: log2(Delta_l / (2*|noise|)) where noise =
// B - A*S - Delta_l*m. When it reaches zero, decryption starts failing.
// ModSwitch approximately preserves the budget (both Delta and the noise
// shrink by the dropped factor, up to a small additive rounding floor) —
// what it buys is cheaper arithmetic, not headroom. Diagnostic only
// (requires the secret key).
func (s *BackendScheme) NoiseBudgetBits(sk BackendSecretKey, ct BackendCiphertext, msg []uint64) (int, error) {
	if err := s.checkSecret(sk); err != nil {
		return 0, err
	}
	if err := s.checkCts(ct); err != nil {
		return 0, err
	}
	if len(msg) != s.B.N() {
		return 0, fmt.Errorf("fhe: message length mismatch")
	}
	b := s.B
	l := ct.Level
	ca, cb := s.coeffAB(ct)
	noisy := b.NewPolyAt(l)
	b.MulNegacyclic(l, noisy, ca, b.SecretAt(l, sk.S))
	b.Sub(l, noisy, cb, noisy)
	nb := b.NoiseBits(l, noisy, msg)
	if nb == 0 {
		return b.DeltaBits(l), nil
	}
	budget := b.DeltaBits(l) - nb - 1
	if budget < 0 {
		budget = 0
	}
	return budget, nil
}
