package fhe

import (
	"fmt"
	"math/big"
	"math/rand"
	"sync"

	"mqxgo/internal/rns"
	"mqxgo/internal/u128"
)

// ringBackend runs the scheme on the library's primary configuration: one
// 124-bit double-word ring with the Barrett-multiplied 128-bit NTT. Its
// Poly handles are plain []u128.U128, so the legacy Scheme API unwraps
// them at zero cost.
//
// For homomorphic multiplication this backend is the exactness oracle the
// differential harness trusts: the ciphertext tensor product is computed
// over the integers (a CRT tower convolution wide enough that no
// coefficient wraps) and the T/q rescale is exact big-integer
// round-half-up, so the only approximations anywhere are the ones the
// scheme itself defines. It allocates freely on that path; the RNS
// backend is the performance configuration.
type ringBackend struct {
	p *Params

	// wide is the integer-convolution engine for MulCt, built on first
	// use: enough 59-bit NTT towers that negacyclic products of two
	// ring elements are exact over the integers.
	wideOnce sync.Once
	wide     *rns.Context
	wideErr  error
	qBig     *big.Int // the ring modulus q
	halfQ    *big.Int // floor(q/2), for the exact rescale's rounding
	tBig     *big.Int
}

// NewRingBackend wraps ring parameters as a Backend.
func NewRingBackend(p *Params) Backend { return &ringBackend{p: p} }

func (b *ringBackend) Name() string         { return "u128" }
func (b *ringBackend) N() int               { return b.p.N }
func (b *ringBackend) PlainModulus() uint64 { return b.p.T }
func (b *ringBackend) NewPoly() Poly        { return make([]u128.U128, b.p.N) }

func (b *ringBackend) Copy(a Poly) Poly {
	return append([]u128.U128(nil), a.([]u128.U128)...)
}

func (b *ringBackend) Add(dst, a, c Poly) {
	mod := b.p.Mod
	d, x, y := dst.([]u128.U128), a.([]u128.U128), c.([]u128.U128)
	for i := range d {
		d[i] = mod.Add(x[i], y[i])
	}
}

func (b *ringBackend) Sub(dst, a, c Poly) {
	mod := b.p.Mod
	d, x, y := dst.([]u128.U128), a.([]u128.U128), c.([]u128.U128)
	for i := range d {
		d[i] = mod.Sub(x[i], y[i])
	}
}

func (b *ringBackend) Neg(dst, a Poly) {
	mod := b.p.Mod
	d, x := dst.([]u128.U128), a.([]u128.U128)
	for i := range d {
		d[i] = mod.Neg(x[i])
	}
}

func (b *ringBackend) MulNegacyclic(dst, a, c Poly) {
	b.p.plan.PolyMulNegacyclicInto(dst.([]u128.U128), a.([]u128.U128), c.([]u128.U128))
}

func (b *ringBackend) ScalarMul(dst, a Poly, k uint64) {
	kk := u128.From64(k).Mod(b.p.Mod.Q)
	b.p.plan.Generic().ScalarMulInto(dst.([]u128.U128), a.([]u128.U128), kk)
}

func (b *ringBackend) SampleUniform(dst Poly, rng *rand.Rand) {
	mod := b.p.Mod
	d := dst.([]u128.U128)
	for i := range d {
		d[i] = u128.New(rng.Uint64(), rng.Uint64()).Mod(mod.Q)
	}
}

func (b *ringBackend) SetSigned(dst Poly, coeffs []int64) {
	mod := b.p.Mod
	d := dst.([]u128.U128)
	for i, e := range coeffs {
		if e >= 0 {
			d[i] = u128.From64(uint64(e))
		} else {
			d[i] = mod.Neg(u128.From64(uint64(-e)))
		}
	}
}

// AddDeltaMsg folds Delta-scaled plaintext into a ciphertext component on
// the plan's scale-accumulate kernel.
func (b *ringBackend) AddDeltaMsg(dst, a Poly, msg []uint64) {
	b.p.plan.Generic().ScaleAddInto(dst.([]u128.U128), a.([]u128.U128), msg, b.p.Delta)
}

func (b *ringBackend) RoundToPlain(a Poly) []uint64 {
	x := a.([]u128.U128)
	out := make([]uint64, b.p.N)
	half, _ := b.p.Delta.DivMod64(2)
	for i := range x {
		// Round to the nearest multiple of Delta.
		q, _ := x[i].Add(half).DivMod(b.p.Delta)
		out[i] = q.Lo % b.p.T
	}
	return out
}

func (b *ringBackend) DeltaBits() int { return b.p.Delta.BitLen() }

func (b *ringBackend) NoiseBits(a Poly, msg []uint64) int {
	mod := b.p.Mod
	x := a.([]u128.U128)
	halfQ := mod.Q.Rsh(1)
	maxNoise := u128.Zero
	for i := range x {
		noise := mod.Sub(x[i], mod.Mul(b.p.Delta, u128.From64(msg[i]%b.p.T)))
		// Centered magnitude.
		if halfQ.Less(noise) {
			noise = mod.Q.Sub(noise)
		}
		if maxNoise.Less(noise) {
			maxNoise = noise
		}
	}
	return maxNoise.BitLen()
}

// oracleDigitBits is the relinearization gadget radix: c2 decomposes into
// digits below 2^31, keeping relin noise around n*2^31*noiseBound — far
// under Delta for any plaintext modulus this scheme accepts.
const oracleDigitBits = 31

// ringRelinKey holds gadget encryptions of 2^(31d) * s^2 with both
// components stored in the twisted-evaluation domain, so relinearization
// costs one forward transform per digit plus two inverse transforms
// total.
type ringRelinKey struct {
	ahat, bhat [][]u128.U128
}

// wideCtx returns the integer-convolution tower basis, built on first
// use: the product of the towers exceeds 4*n*q^2, so signed negacyclic
// product coefficients (magnitude < n*q^2, doubled once for the c1 sum)
// reconstruct exactly. It panics if the basis cannot be built, which for
// any ring the 128-bit plan itself supports cannot happen.
func (b *ringBackend) wideCtx() *rns.Context {
	b.wideOnce.Do(func() {
		need := 2*b.p.Mod.Q.BitLen() + b.p.plan.M + 3
		count := (need + 57) / 58 // 59-bit primes carry at least 58 bits each
		b.wide, b.wideErr = rns.NewContext(59, count, b.p.N)
		b.qBig = b.p.Mod.Q.ToBig()
		b.halfQ = new(big.Int).Rsh(b.qBig, 1)
		b.tBig = new(big.Int).SetUint64(b.p.T)
	})
	if b.wideErr != nil {
		panic(fmt.Sprintf("fhe: oracle wide basis: %v", b.wideErr))
	}
	return b.wide
}

// RelinKeyGen builds the 2^31-gadget relinearization key: for each digit
// position d, an encryption (a_d, a_d*s + e_d + 2^(31d)*s^2).
func (b *ringBackend) RelinKeyGen(s Poly, rng *rand.Rand) BackendRelinKey {
	p := b.p
	g := p.plan.Generic()
	sk := s.([]u128.U128)
	s2 := make([]u128.U128, p.N)
	p.plan.PolyMulNegacyclicInto(s2, sk, sk)
	digits := (p.Mod.Q.BitLen() + oracleDigitBits - 1) / oracleDigitBits
	key := &ringRelinKey{}
	noise := make([]int64, p.N)
	e := make([]u128.U128, p.N)
	tmp := make([]u128.U128, p.N)
	for d := 0; d < digits; d++ {
		a := make([]u128.U128, p.N)
		b.SampleUniform(a, rng)
		for i := range noise {
			noise[i] = int64(rng.Intn(2*noiseBound+1) - noiseBound)
		}
		b.SetSigned(e, noise)
		bb := make([]u128.U128, p.N)
		p.plan.PolyMulNegacyclicInto(bb, a, sk) // a_d * s
		b.Add(bb, bb, e)                        // + e_d
		g.ScalarMulInto(tmp, s2, u128.One.Lsh(uint(oracleDigitBits*d)))
		b.Add(bb, bb, tmp) // + 2^(31d) * s^2
		ahat := make([]u128.U128, p.N)
		bhat := make([]u128.U128, p.N)
		g.NegacyclicForwardInto(ahat, a)
		g.NegacyclicForwardInto(bhat, bb)
		key.ahat = append(key.ahat, ahat)
		key.bhat = append(key.bhat, bhat)
	}
	return key
}

// liftInto lifts u128 residues into big.Int coefficients, reusing dst's
// entries.
func liftInto(dst []*big.Int, src []u128.U128, t *big.Int) {
	for i, v := range src {
		if dst[i] == nil {
			dst[i] = new(big.Int)
		}
		dst[i].SetUint64(v.Hi)
		dst[i].Lsh(dst[i], 64)
		dst[i].Or(dst[i], t.SetUint64(v.Lo))
	}
}

// scaleRoundInto applies the exact BFV rescale to a reconstructed signed
// tensor component: out = round(T*v/q) mod q per coefficient, where v is
// centered by wideQ. This is the oracle's defining step — big-integer
// round-half-up, no approximation.
func (b *ringBackend) scaleRoundInto(out []u128.U128, coeffs []*big.Int, wideQ, halfWideQ *big.Int) {
	for i, v := range coeffs {
		if v.Cmp(halfWideQ) > 0 {
			v.Sub(v, wideQ)
		}
		v.Mul(v, b.tBig)
		v.Add(v, b.halfQ)
		v.Div(v, b.qBig) // Euclidean: floor for the positive modulus
		v.Mod(v, b.qBig)
		x, ok := u128.FromBig(v)
		if !ok {
			panic("fhe: oracle rescale out of range")
		}
		out[i] = x
	}
}

// MulCt is the oracle homomorphic multiply: exact integer tensor product
// via the wide CRT basis, exact big-int rescale by T/q, then 2^31-gadget
// relinearization. dst must not alias the inputs.
func (b *ringBackend) MulCt(dst *BackendCiphertext, ct1, ct2 BackendCiphertext, rlk BackendRelinKey) {
	key := rlk.(*ringRelinKey)
	w := b.wideCtx()
	p := b.p
	g := p.plan.Generic()
	n := p.N

	// Lift the four components and decompose into the wide basis.
	coeffs := make([]*big.Int, n)
	t := new(big.Int)
	ops := [4]Poly{ct1.A, ct1.B, ct2.A, ct2.B}
	var wp [4]rns.Poly
	for i, op := range ops {
		liftInto(coeffs, op.([]u128.U128), t)
		wp[i] = w.NewPoly()
		must(w.DecomposeInto(wp[i], coeffs))
	}
	a1, b1, a2, b2 := wp[0], wp[1], wp[2], wp[3]

	// Integer tensor product: c0 = b1*b2, c1 = a1*b2 + a2*b1, c2 = a1*a2,
	// every product an exact negacyclic convolution (no tower wraps).
	c0, c1, c2, tmp := w.NewPoly(), w.NewPoly(), w.NewPoly(), w.NewPoly()
	must(w.MulAll(c0, b1, b2, 1))
	must(w.MulAll(c1, a1, b2, 1))
	must(w.MulAll(tmp, a2, b1, 1))
	must(w.AddInto(c1, c1, tmp))
	must(w.MulAll(c2, a1, a2, 1))

	halfWideQ := new(big.Int).Rsh(w.Q, 1)
	r0 := make([]u128.U128, n)
	r1 := make([]u128.U128, n)
	r2 := make([]u128.U128, n)
	for _, pair := range []struct {
		src rns.Poly
		out []u128.U128
	}{{c0, r0}, {c1, r1}, {c2, r2}} {
		must(w.ReconstructInto(coeffs, pair.src))
		b.scaleRoundInto(pair.out, coeffs, w.Q, halfWideQ)
	}

	// Relinearize: digit-decompose r2 and fold the gadget encryptions of
	// s^2 in the evaluation domain.
	accA := make([]u128.U128, n)
	accB := make([]u128.U128, n)
	zd := make([]u128.U128, n)
	zhat := make([]u128.U128, n)
	prod := make([]u128.U128, n)
	mod := p.Mod
	for d := range key.ahat {
		shift := uint(oracleDigitBits * d)
		for j := range zd {
			zd[j] = u128.From64(r2[j].Rsh(shift).Lo & (1<<oracleDigitBits - 1))
		}
		g.NegacyclicForwardInto(zhat, zd)
		g.PointwiseMulInto(prod, zhat, key.ahat[d])
		for j := range accA {
			accA[j] = mod.Add(accA[j], prod[j])
		}
		g.PointwiseMulInto(prod, zhat, key.bhat[d])
		for j := range accB {
			accB[j] = mod.Add(accB[j], prod[j])
		}
	}
	dstA := dst.A.([]u128.U128)
	dstB := dst.B.([]u128.U128)
	g.NegacyclicInverseInto(dstA, accA)
	g.NegacyclicInverseInto(dstB, accB)
	for j := range dstA {
		dstA[j] = mod.Add(dstA[j], r1[j])
		dstB[j] = mod.Add(dstB[j], r0[j])
	}
}
