package fhe

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"sync"

	"mqxgo/internal/faultinject"
	"mqxgo/internal/modmath"
	"mqxgo/internal/ntt"
	"mqxgo/internal/ring"
	"mqxgo/internal/rns"
	"mqxgo/internal/u128"
)

// ringBackend runs the scheme on the library's primary configuration:
// 128-bit double-word rings with the Barrett-multiplied 128-bit NTT. Its
// Poly handles are plain []u128.U128, so the legacy Scheme API unwraps
// them at zero cost.
//
// For homomorphic multiplication this backend is the exactness oracle the
// differential harness trusts: the ciphertext tensor product is computed
// over the integers (a CRT tower convolution wide enough that no
// coefficient wraps) and the T/q rescale is exact big-integer
// round-half-up, so the only approximations anywhere are the ones the
// scheme itself defines. The same philosophy extends to the modulus
// ladder: the chain is a sequence of shrinking 128-bit NTT primes
// q_0 > q_1 > ..., and ModSwitch is the exact big-integer
// round(c * q_{l+1} / q_l) — the ground truth the RNS Rescaler path is
// differentially tested against. It allocates freely on those paths; the
// RNS backend is the performance configuration.
type ringBackend struct {
	p      *Params
	levels []*ringLevel

	// wide is the integer-convolution engine for MulCt, built on first
	// use: enough 59-bit NTT towers that negacyclic products of two
	// level-0 ring elements are exact over the integers (and a fortiori
	// of any lower level's).
	wideOnce sync.Once
	wide     *rns.Context
	wideErr  error
	tBig     *big.Int
}

// ringLevel is one rung of the oracle's modulus ladder.
type ringLevel struct {
	mod       *modmath.Modulus128
	plan      *ntt.Plan
	qBig      *big.Int
	halfQ     *big.Int  // floor(q_l / 2), rescale rounding and centering
	delta     u128.U128 // floor(q_l / T)
	deltaBits int
	digits    int      // relin gadget digits at this level
	vBound    *big.Int // 2*n*q_l^2: the largest centered tensor coefficient
	//                    a well-formed multiply can produce at this level
}

// Oracle ladder geometry: each level drops oracleLevelDropBits from the
// modulus, and the chain stops before Delta falls under
// oracleMinDeltaBits (no point switching to a level that cannot decrypt).
const (
	oracleLevelDropBits = 28
	oracleMinDeltaBits  = 20
)

// NewRingBackend wraps ring parameters as a Backend. Level 0 is exactly
// p's modulus; lower levels are found deterministically (the largest NTT
// prime of each shrinking width), so every backend over the same
// parameters sees the same ladder.
func NewRingBackend(p *Params) Backend {
	b := &ringBackend{p: p}
	b.levels = append(b.levels, newRingLevel(p.Mod, p.plan, p.T))
	bits := p.Mod.Q.BitLen()
	for {
		bits -= oracleLevelDropBits
		mod, plan, ok := findRingLevel(bits, p.N)
		if !ok {
			break
		}
		lv := newRingLevel(mod, plan, p.T)
		if lv.deltaBits < oracleMinDeltaBits {
			break
		}
		b.levels = append(b.levels, lv)
	}
	return b
}

func newRingLevel(mod *modmath.Modulus128, plan *ntt.Plan, t uint64) *ringLevel {
	qBig := mod.Q.ToBig()
	delta, _ := mod.Q.DivMod64(t)
	n := int64(plan.N)
	vBound := new(big.Int).Mul(qBig, qBig)
	vBound.Mul(vBound, big.NewInt(2*n))
	return &ringLevel{
		mod:       mod,
		plan:      plan,
		qBig:      qBig,
		halfQ:     new(big.Int).Rsh(qBig, 1),
		delta:     delta,
		deltaBits: delta.BitLen(),
		digits:    (mod.Q.BitLen() + oracleDigitBits - 1) / oracleDigitBits,
		vBound:    vBound,
	}
}

// findRingLevel locates the deterministic NTT prime and plan for one
// ladder rung; a failed search (width too small for the transform order)
// just ends the chain.
func findRingLevel(bits, n int) (*modmath.Modulus128, *ntt.Plan, bool) {
	q, err := modmath.FindNTTPrime128(bits, uint64(2*n))
	if err != nil {
		return nil, nil, false
	}
	mod, err := modmath.NewModulus128(q)
	if err != nil {
		return nil, nil, false
	}
	plan, err := ntt.CachedPlan(mod, n)
	if err != nil {
		return nil, nil, false
	}
	return mod, plan, true
}

func (b *ringBackend) Name() string         { return "u128" }
func (b *ringBackend) N() int               { return b.p.N }
func (b *ringBackend) PlainModulus() uint64 { return b.p.T }
func (b *ringBackend) Levels() int          { return len(b.levels) }
func (b *ringBackend) NewPoly() Poly        { return make([]u128.U128, b.p.N) }
func (b *ringBackend) NewPolyAt(int) Poly   { return make([]u128.U128, b.p.N) }

func (b *ringBackend) Copy(a Poly) Poly {
	return append([]u128.U128(nil), a.([]u128.U128)...)
}

// checkPolyAt validates one handle: backend type, shape, and residues
// reduced below the level modulus.
func (b *ringBackend) checkPolyAt(level int, a Poly) error {
	x, ok := a.([]u128.U128)
	if !ok {
		return fmt.Errorf("fhe: foreign polynomial handle %T on the %s backend", a, b.Name())
	}
	if len(x) != b.p.N {
		return fmt.Errorf("fhe: polynomial length %d != N %d", len(x), b.p.N)
	}
	q := b.levels[level].mod.Q
	for i := range x {
		if !x[i].Less(q) {
			return fmt.Errorf("fhe: coefficient %d not reduced mod the level-%d modulus", i, level)
		}
	}
	return nil
}

func (b *ringBackend) CheckPoly(level int, a Poly) error {
	if level < 0 || level >= len(b.levels) {
		return fmt.Errorf("fhe: level %d outside the %d-level chain", level, len(b.levels))
	}
	return b.checkPolyAt(level, a)
}

//mqx:domaincheck
func (b *ringBackend) CheckCiphertext(ct BackendCiphertext) error {
	if ct.Level < 0 || ct.Level >= len(b.levels) {
		return fmt.Errorf("fhe: level %d outside the %d-level chain", ct.Level, len(b.levels))
	}
	if ct.Domain > DomainNTT {
		return fmt.Errorf("fhe: unknown domain tag %d", ct.Domain)
	}
	if ct.A == nil || ct.B == nil {
		return fmt.Errorf("fhe: malformed ciphertext (nil component)")
	}
	if err := b.checkPolyAt(ct.Level, ct.A); err != nil {
		return err
	}
	return b.checkPolyAt(ct.Level, ct.B)
}

func (b *ringBackend) Add(level int, dst, a, c Poly) {
	mod := b.levels[level].mod
	d, x, y := dst.([]u128.U128), a.([]u128.U128), c.([]u128.U128)
	for i := range d {
		d[i] = mod.Add(x[i], y[i])
	}
}

func (b *ringBackend) Sub(level int, dst, a, c Poly) {
	mod := b.levels[level].mod
	d, x, y := dst.([]u128.U128), a.([]u128.U128), c.([]u128.U128)
	for i := range d {
		d[i] = mod.Sub(x[i], y[i])
	}
}

func (b *ringBackend) Neg(level int, dst, a Poly) {
	mod := b.levels[level].mod
	d, x := dst.([]u128.U128), a.([]u128.U128)
	for i := range d {
		d[i] = mod.Neg(x[i])
	}
}

func (b *ringBackend) MulNegacyclic(level int, dst, a, c Poly) {
	b.levels[level].plan.PolyMulNegacyclicInto(dst.([]u128.U128), a.([]u128.U128), c.([]u128.U128))
}

func (b *ringBackend) ToNTT(level int, dst, a Poly) {
	b.levels[level].plan.Generic().NegacyclicForwardInto(dst.([]u128.U128), a.([]u128.U128))
}

func (b *ringBackend) ToCoeff(level int, dst, a Poly) {
	b.levels[level].plan.Generic().NegacyclicInverseInto(dst.([]u128.U128), a.([]u128.U128))
}

func (b *ringBackend) PMul(level int, dst, a, c Poly) {
	b.levels[level].plan.Generic().PointwiseMulInto(dst.([]u128.U128), a.([]u128.U128), c.([]u128.U128))
}

func (b *ringBackend) ScalarMul(level int, dst, a Poly, k uint64) {
	lv := b.levels[level]
	kk := u128.From64(k).Mod(lv.mod.Q)
	lv.plan.Generic().ScalarMulInto(dst.([]u128.U128), a.([]u128.U128), kk)
}

func (b *ringBackend) SampleUniform(dst Poly, rng *rand.Rand) {
	b.sampleUniformAt(0, dst.([]u128.U128), rng)
}

func (b *ringBackend) SetSigned(dst Poly, coeffs []int64) {
	b.setSignedAt(0, dst.([]u128.U128), coeffs)
}

// SecretAt re-encodes a small signed polynomial from the level-0 modulus
// to a lower level's: values above q_0/2 are the negative coefficients
// and wrap to q_l - |e|.
func (b *ringBackend) SecretAt(level int, s Poly) Poly {
	if level == 0 {
		return s
	}
	src := s.([]u128.U128)
	lv := b.levels[level]
	halfU := b.p.Mod.Q.Rsh(1)
	out := make([]u128.U128, len(src))
	for i, v := range src {
		if v.LessEq(halfU) {
			out[i] = v.Mod(lv.mod.Q)
		} else {
			out[i] = lv.mod.Neg(b.p.Mod.Q.Sub(v).Mod(lv.mod.Q))
		}
	}
	return out
}

// AddDeltaMsg folds Delta_l-scaled plaintext into a ciphertext component
// on the level plan's scale-accumulate kernel.
func (b *ringBackend) AddDeltaMsg(level int, dst, a Poly, msg []uint64) {
	lv := b.levels[level]
	lv.plan.Generic().ScaleAddInto(dst.([]u128.U128), a.([]u128.U128), msg, lv.delta)
}

func (b *ringBackend) RoundToPlain(level int, a Poly) []uint64 {
	lv := b.levels[level]
	x := a.([]u128.U128)
	out := make([]uint64, b.p.N)
	half, _ := lv.delta.DivMod64(2)
	for i := range x {
		// Round to the nearest multiple of Delta_l.
		q, _ := x[i].Add(half).DivMod(lv.delta)
		out[i] = q.Lo % b.p.T
	}
	return out
}

func (b *ringBackend) DeltaBits(level int) int { return b.levels[level].deltaBits }

func (b *ringBackend) NoiseBits(level int, a Poly, msg []uint64) int {
	lv := b.levels[level]
	mod := lv.mod
	x := a.([]u128.U128)
	halfQ := mod.Q.Rsh(1)
	maxNoise := u128.Zero
	for i := range x {
		noise := mod.Sub(x[i], mod.Mul(lv.delta, u128.From64(msg[i]%b.p.T)))
		// Centered magnitude.
		if halfQ.Less(noise) {
			noise = mod.Q.Sub(noise)
		}
		if maxNoise.Less(noise) {
			maxNoise = noise
		}
	}
	return maxNoise.BitLen()
}

// oracleDigitBits is the relinearization gadget radix: c2 decomposes into
// digits below 2^31, keeping relin noise around n*2^31*noiseBound — far
// under Delta for any plaintext modulus this scheme accepts.
const oracleDigitBits = 31

// ringRelinKey holds, per ladder level, gadget encryptions of
// 2^(31d) * s^2 with both components stored in that level's
// twisted-evaluation domain, so relinearization costs one forward
// transform per digit plus two inverse transforms total at whichever
// level the multiply runs.
type ringRelinKey struct {
	levels []ringLevelKey
}

type ringLevelKey struct {
	ahat, bhat [][]u128.U128
}

// wideCtx returns the integer-convolution tower basis, built on first
// use: the product of the towers exceeds 4*n*q_0^2, so signed negacyclic
// product coefficients (magnitude < n*q_l^2 at any level, doubled once
// for the c1 sum) reconstruct exactly. It panics if the basis cannot be
// built, which for any ring the 128-bit plan itself supports cannot
// happen.
func (b *ringBackend) wideCtx() *rns.Context {
	b.wideOnce.Do(func() {
		need := 2*b.p.Mod.Q.BitLen() + b.p.plan.M + 3
		count := (need + 57) / 58 // 59-bit primes carry at least 58 bits each
		b.wide, b.wideErr = rns.NewContext(59, count, b.p.N)
		b.tBig = new(big.Int).SetUint64(b.p.T)
	})
	if b.wideErr != nil {
		panic(fmt.Sprintf("fhe: oracle wide basis: %v", b.wideErr))
	}
	return b.wide
}

// RelinKeyGen builds the 2^31-gadget relinearization key at every ladder
// level: for each level l and digit position d, an encryption
// (a_d, a_d*s + e_d + 2^(31d)*s^2) under the level's modulus.
func (b *ringBackend) RelinKeyGen(s Poly, rng *rand.Rand) BackendRelinKey {
	p := b.p
	key := &ringRelinKey{}
	noise := make([]int64, p.N)
	for l, lv := range b.levels {
		g := lv.plan.Generic()
		sk := b.SecretAt(l, s).([]u128.U128)
		s2 := make([]u128.U128, p.N)
		lv.plan.PolyMulNegacyclicInto(s2, sk, sk)
		lk := ringLevelKey{}
		e := make([]u128.U128, p.N)
		tmp := make([]u128.U128, p.N)
		for d := 0; d < lv.digits; d++ {
			a := make([]u128.U128, p.N)
			b.sampleUniformAt(l, a, rng)
			for i := range noise {
				noise[i] = int64(rng.Intn(2*noiseBound+1) - noiseBound)
			}
			b.setSignedAt(l, e, noise)
			bb := make([]u128.U128, p.N)
			lv.plan.PolyMulNegacyclicInto(bb, a, sk) // a_d * s
			b.Add(l, bb, bb, e)                      // + e_d
			g.ScalarMulInto(tmp, s2, u128.One.Lsh(uint(oracleDigitBits*d)).Mod(lv.mod.Q))
			b.Add(l, bb, bb, tmp) // + 2^(31d) * s^2
			ahat := make([]u128.U128, p.N)
			bhat := make([]u128.U128, p.N)
			g.NegacyclicForwardInto(ahat, a)
			g.NegacyclicForwardInto(bhat, bb)
			lk.ahat = append(lk.ahat, ahat)
			lk.bhat = append(lk.bhat, bhat)
		}
		key.levels = append(key.levels, lk)
	}
	return key
}

func (b *ringBackend) sampleUniformAt(level int, dst []u128.U128, rng *rand.Rand) {
	q := b.levels[level].mod.Q
	for i := range dst {
		dst[i] = u128.New(rng.Uint64(), rng.Uint64()).Mod(q)
	}
}

func (b *ringBackend) setSignedAt(level int, dst []u128.U128, coeffs []int64) {
	mod := b.levels[level].mod
	for i, e := range coeffs {
		if e >= 0 {
			dst[i] = u128.From64(uint64(e))
		} else {
			dst[i] = mod.Neg(u128.From64(uint64(-e)))
		}
	}
}

// liftInto lifts u128 residues into big.Int coefficients, reusing dst's
// entries.
func liftInto(dst []*big.Int, src []u128.U128, t *big.Int) {
	for i, v := range src {
		if dst[i] == nil {
			dst[i] = new(big.Int)
		}
		dst[i].SetUint64(v.Hi)
		dst[i].Lsh(dst[i], 64)
		dst[i].Or(dst[i], t.SetUint64(v.Lo))
	}
}

// scaleRoundInto applies the exact BFV rescale to a reconstructed signed
// tensor component: out = round(T*v/q_l) mod q_l per coefficient, where v
// is centered by wideQ. This is the oracle's defining step — big-integer
// round-half-up, no approximation. A centered tensor coefficient larger
// than the level's vBound cannot come from reduced operands: the wide
// basis has wrapped, the rescale would silently decrypt garbage, and —
// since PR 5's hardening pass — the condition is detected and returned as
// an error instead of being unreachable-panic folklore. It is reachable
// exactly when a caller bypasses the scheme layer's range validation with
// unreduced (adversarially noisy) ciphertext coefficients.
func (b *ringBackend) scaleRoundInto(lv *ringLevel, out []u128.U128, coeffs []*big.Int, wideQ, halfWideQ *big.Int) error {
	for i, v := range coeffs {
		if v.Cmp(halfWideQ) > 0 {
			v.Sub(v, wideQ)
		}
		if v.CmpAbs(lv.vBound) > 0 {
			return fmt.Errorf("fhe: oracle rescale out of range at coefficient %d (tensor exceeded the wide basis; unreduced ciphertext input?)", i)
		}
		v.Mul(v, b.tBig)
		v.Add(v, lv.halfQ)
		v.Div(v, lv.qBig) // Euclidean: floor for the positive modulus
		v.Mod(v, lv.qBig)
		x, ok := u128.FromBig(v)
		if !ok {
			return fmt.Errorf("fhe: oracle rescale out of range at coefficient %d", i)
		}
		out[i] = x
	}
	return nil
}

// MulCt is the oracle homomorphic multiply at the operands' level: exact
// integer tensor product via the wide CRT basis, exact big-int rescale by
// T/q_l, then 2^31-gadget relinearization with the level's keys. dst must
// not alias the inputs.
func (b *ringBackend) MulCt(dst *BackendCiphertext, ct1, ct2 BackendCiphertext, rlk BackendRelinKey) error {
	return b.MulCtCtx(context.Background(), dst, ct1, ct2, rlk)
}

// MulCtCtx is MulCt with the DeadlineBackend contract: ctx is observed at
// the same four phase boundaries as the RNS pipeline (lift/decompose,
// integer tensor, exact rescale, relinearization).
func (b *ringBackend) MulCtCtx(ctx context.Context, dst *BackendCiphertext, ct1, ct2 BackendCiphertext, rlk BackendRelinKey) error {
	key, ok := rlk.(*ringRelinKey)
	if !ok {
		return fmt.Errorf("fhe: foreign relinearization key %T on the %s backend", rlk, b.Name())
	}
	if ct1.Level != ct2.Level || dst.Level != ct1.Level {
		return fmt.Errorf("fhe: MulCt level mismatch: %d, %d -> %d", ct1.Level, ct2.Level, dst.Level)
	}
	if ct1.Domain != ct2.Domain || dst.Domain != ct1.Domain {
		return fmt.Errorf("fhe: MulCt domain mismatch: %s, %s -> %s", ct1.Domain, ct2.Domain, dst.Domain)
	}
	if ct1.Level < 0 || ct1.Level >= len(b.levels) {
		return fmt.Errorf("fhe: level %d outside the %d-level chain", ct1.Level, len(b.levels))
	}
	resident := ct1.Domain == DomainNTT
	lv := b.levels[ct1.Level]
	// A key of the right TYPE can still come from a backend over other
	// parameters: validate its chain depth and row shapes before use.
	if ct1.Level >= len(key.levels) {
		return fmt.Errorf("fhe: relin key covers %d levels, ciphertext at level %d", len(key.levels), ct1.Level)
	}
	lkey := key.levels[ct1.Level]
	if len(lkey.ahat) != lv.digits || len(lkey.bhat) != lv.digits {
		return fmt.Errorf("fhe: relin key has %d digits at level %d, want %d", len(lkey.ahat), ct1.Level, lv.digits)
	}
	for d := 0; d < lv.digits; d++ {
		if len(lkey.ahat[d]) != b.p.N || len(lkey.bhat[d]) != b.p.N {
			return fmt.Errorf("fhe: relin key digit %d shaped for another backend", d)
		}
	}
	w := b.wideCtx()
	p := b.p
	g := lv.plan.Generic()
	n := p.N

	// Lift the four components and decompose into the wide basis. Resident
	// operands cross back to coefficient form through a scratch copy first:
	// the oracle's integer tensor is defined on positional coefficients,
	// and exactness — not transform count — is this backend's contract.
	if err := phaseGate(ctx, faultinject.SiteMulExtend); err != nil {
		return err
	}
	coeffs := make([]*big.Int, n)
	t := new(big.Int)
	ops := [4]Poly{ct1.A, ct1.B, ct2.A, ct2.B}
	var coeffScratch []u128.U128
	if resident {
		coeffScratch = make([]u128.U128, n)
	}
	var wp [4]rns.Poly
	for i, op := range ops {
		x, ok := op.([]u128.U128)
		if !ok || len(x) != n {
			return fmt.Errorf("fhe: malformed MulCt operand %d on the %s backend", i, b.Name())
		}
		if resident {
			g.NegacyclicInverseInto(coeffScratch, x)
			x = coeffScratch
		}
		liftInto(coeffs, x, t)
		wp[i] = w.NewPoly()
		must(w.DecomposeInto(wp[i], coeffs))
	}
	a1, b1, a2, b2 := wp[0], wp[1], wp[2], wp[3]

	// Integer tensor product: c0 = b1*b2, c1 = a1*b2 + a2*b1, c2 = a1*a2,
	// every product an exact negacyclic convolution (no tower wraps).
	if err := phaseGate(ctx, faultinject.SiteMulTensor); err != nil {
		return err
	}
	c0, c1, c2, tmp := w.NewPoly(), w.NewPoly(), w.NewPoly(), w.NewPoly()
	must(w.MulAll(c0, b1, b2, 1))
	must(w.MulAll(c1, a1, b2, 1))
	must(w.MulAll(tmp, a2, b1, 1))
	must(w.AddInto(c1, c1, tmp))
	must(w.MulAll(c2, a1, a2, 1))

	if err := phaseGate(ctx, faultinject.SiteMulScale); err != nil {
		return err
	}
	halfWideQ := new(big.Int).Rsh(w.Q, 1)
	r0 := make([]u128.U128, n)
	r1 := make([]u128.U128, n)
	r2 := make([]u128.U128, n)
	for _, pair := range []struct {
		src rns.Poly
		out []u128.U128
	}{{c0, r0}, {c1, r1}, {c2, r2}} {
		must(w.ReconstructInto(coeffs, pair.src))
		if err := b.scaleRoundInto(lv, pair.out, coeffs, w.Q, halfWideQ); err != nil {
			return err
		}
	}

	// Relinearize: digit-decompose r2 and fold the gadget encryptions of
	// s^2 in the evaluation domain.
	if err := phaseGate(ctx, faultinject.SiteMulRelin); err != nil {
		return err
	}
	accA := make([]u128.U128, n)
	accB := make([]u128.U128, n)
	zd := make([]u128.U128, n)
	zhat := make([]u128.U128, n)
	prod := make([]u128.U128, n)
	mod := lv.mod
	for d := range lkey.ahat {
		shift := uint(oracleDigitBits * d)
		for j := range zd {
			zd[j] = u128.From64(r2[j].Rsh(shift).Lo & (1<<oracleDigitBits - 1))
		}
		g.NegacyclicForwardInto(zhat, zd)
		g.PointwiseMulInto(prod, zhat, lkey.ahat[d])
		for j := range accA {
			accA[j] = mod.Add(accA[j], prod[j])
		}
		g.PointwiseMulInto(prod, zhat, lkey.bhat[d])
		for j := range accB {
			accB[j] = mod.Add(accB[j], prod[j])
		}
	}
	dstA, ok := dst.A.([]u128.U128)
	if !ok || len(dstA) != n {
		return fmt.Errorf("fhe: malformed MulCt destination on the %s backend", b.Name())
	}
	dstB, ok := dst.B.([]u128.U128)
	if !ok || len(dstB) != n {
		return fmt.Errorf("fhe: malformed MulCt destination on the %s backend", b.Name())
	}
	if resident {
		// The relin accumulators already live in the evaluation domain; a
		// resident result adds the transformed rescaled components instead
		// of leaving the domain: NTT(INTT(acc) + r) = acc + NTT(r) exactly.
		g.NegacyclicForwardInto(zhat, r1)
		for j := range dstA {
			dstA[j] = mod.Add(accA[j], zhat[j])
		}
		g.NegacyclicForwardInto(zhat, r0)
		for j := range dstB {
			dstB[j] = mod.Add(accB[j], zhat[j])
		}
		return nil
	}
	g.NegacyclicInverseInto(dstA, accA)
	g.NegacyclicInverseInto(dstB, accB)
	for j := range dstA {
		dstA[j] = mod.Add(dstA[j], r1[j])
		dstB[j] = mod.Add(dstB[j], r0[j])
	}
	return nil
}

// ringGaloisKey is the oracle's Galois key set, mirroring the RNS
// backend's exactly: one 2^31-gadget key-switch key per automorphism
// element (the binary rotation ladder plus the conjugation), each an
// encryption of 2^(31d) * tau_g(s) per level, stored in the level's
// evaluation domain.
type ringGaloisKey struct {
	n       int
	entries map[uint64]*ringGaloisEntry
}

type ringGaloisEntry struct {
	g      uint64
	tab    *ring.GaloisTables
	levels []ringLevelKey
}

// GaloisKeyGen builds the oracle's Galois keys: RelinKeyGen with
// tau_g(s) in place of s^2 for each covered element. The automorphism is
// applied to the level's re-encoded secret (SecretAt changes the modulus,
// and tau commutes with the re-encoding coefficient-wise).
func (b *ringBackend) GaloisKeyGen(s Poly, rng *rand.Rand) BackendGaloisKey {
	p := b.p
	key := &ringGaloisKey{n: p.N, entries: make(map[uint64]*ringGaloisEntry)}
	noise := make([]int64, p.N)
	for _, gal := range galoisKeyElements(p.N) {
		tab, err := ring.GaloisTablesFor(p.N, gal)
		must(err)
		entry := &ringGaloisEntry{g: gal, tab: tab}
		for l, lv := range b.levels {
			g := lv.plan.Generic()
			sk := b.SecretAt(l, s).([]u128.U128)
			tauS := make([]u128.U128, p.N)
			g.AutomorphismCoeffInto(tab, tauS, sk)
			lk := ringLevelKey{}
			e := make([]u128.U128, p.N)
			tmp := make([]u128.U128, p.N)
			for d := 0; d < lv.digits; d++ {
				a := make([]u128.U128, p.N)
				b.sampleUniformAt(l, a, rng)
				for i := range noise {
					noise[i] = int64(rng.Intn(2*noiseBound+1) - noiseBound)
				}
				b.setSignedAt(l, e, noise)
				bb := make([]u128.U128, p.N)
				lv.plan.PolyMulNegacyclicInto(bb, a, sk) // a_d * s
				b.Add(l, bb, bb, e)                      // + e_d
				g.ScalarMulInto(tmp, tauS, u128.One.Lsh(uint(oracleDigitBits*d)).Mod(lv.mod.Q))
				b.Add(l, bb, bb, tmp) // + 2^(31d) * tau_g(s)
				ahat := make([]u128.U128, p.N)
				bhat := make([]u128.U128, p.N)
				g.NegacyclicForwardInto(ahat, a)
				g.NegacyclicForwardInto(bhat, bb)
				lk.ahat = append(lk.ahat, ahat)
				lk.bhat = append(lk.bhat, bhat)
			}
			entry.levels = append(entry.levels, lk)
		}
		key.entries[gal] = entry
	}
	return key
}

func (b *ringBackend) RotateSlots(dst *BackendCiphertext, ct BackendCiphertext, steps int, gk BackendGaloisKey) error {
	return b.RotateSlotsCtx(context.Background(), dst, ct, steps, gk)
}

func (b *ringBackend) Conjugate(dst *BackendCiphertext, ct BackendCiphertext, gk BackendGaloisKey) error {
	return b.ConjugateCtx(context.Background(), dst, ct, gk)
}

// RotateSlotsCtx rotates both slot rows left by steps, one key-switch hop
// per set bit of the rotation. Like the oracle's MulCt, every hop runs
// the automorphism on positional coefficients (resident inputs cross out
// through a scratch copy first — exactness over transform count) and
// allocates freely; the RNS backend is the performance configuration.
func (b *ringBackend) RotateSlotsCtx(ctx context.Context, dst *BackendCiphertext, ct BackendCiphertext, steps int, gk BackendGaloisKey) error {
	key, err := b.checkGaloisCall(dst, ct, gk)
	if err != nil {
		return err
	}
	rows := b.p.N / 2
	steps = ((steps % rows) + rows) % rows
	return b.galoisChain(ctx, dst, ct, key, steps, false)
}

// ConjugateCtx applies the row-swap automorphism with the same contract
// as RotateSlotsCtx.
func (b *ringBackend) ConjugateCtx(ctx context.Context, dst *BackendCiphertext, ct BackendCiphertext, gk BackendGaloisKey) error {
	key, err := b.checkGaloisCall(dst, ct, gk)
	if err != nil {
		return err
	}
	return b.galoisChain(ctx, dst, ct, key, 0, true)
}

func (b *ringBackend) checkGaloisCall(dst *BackendCiphertext, ct BackendCiphertext, gk BackendGaloisKey) (*ringGaloisKey, error) {
	key, ok := gk.(*ringGaloisKey)
	if !ok {
		return nil, fmt.Errorf("fhe: foreign galois key %T on the %s backend", gk, b.Name())
	}
	if key.n != b.p.N {
		return nil, fmt.Errorf("fhe: galois key built for degree %d, want %d", key.n, b.p.N)
	}
	if ct.Level < 0 || ct.Level >= len(b.levels) {
		return nil, fmt.Errorf("fhe: level %d outside the %d-level chain", ct.Level, len(b.levels))
	}
	if dst.Level != ct.Level {
		return nil, fmt.Errorf("fhe: rotate level mismatch: %d -> %d", ct.Level, dst.Level)
	}
	if dst.Domain != ct.Domain {
		return nil, fmt.Errorf("fhe: rotate domain mismatch: %s -> %s", ct.Domain, dst.Domain)
	}
	for i, op := range []Poly{ct.A, ct.B} {
		if x, ok := op.([]u128.U128); !ok || len(x) != b.p.N {
			return nil, fmt.Errorf("fhe: malformed rotate operand %d on the %s backend", i, b.Name())
		}
	}
	for i, op := range []Poly{dst.A, dst.B} {
		if x, ok := op.([]u128.U128); !ok || len(x) != b.p.N {
			return nil, fmt.Errorf("fhe: malformed rotate destination %d on the %s backend", i, b.Name())
		}
	}
	return key, nil
}

// galoisChain runs the oracle's hop sequence: entries for the set bits of
// steps (lowest first), then the conjugation when asked.
func (b *ringBackend) galoisChain(ctx context.Context, dst *BackendCiphertext, ct BackendCiphertext, key *ringGaloisKey, steps int, conj bool) error {
	n := b.p.N
	lv := b.levels[ct.Level]
	var hops []*ringGaloisEntry
	g := uint64(ring.SlotGenerator)
	twoN := uint64(2 * n)
	for s := steps; s != 0; s >>= 1 {
		if s&1 == 1 {
			e := key.entries[g]
			if e == nil {
				return fmt.Errorf("fhe: galois key missing rotation element %d", g)
			}
			hops = append(hops, e)
		}
		g = g * g % twoN
	}
	if conj {
		e := key.entries[ring.ConjugationElement(n)]
		if e == nil {
			return fmt.Errorf("fhe: galois key missing the conjugation element")
		}
		hops = append(hops, e)
	}
	srcA, srcB := ct.A.([]u128.U128), ct.B.([]u128.U128)
	dstA, dstB := dst.A.([]u128.U128), dst.B.([]u128.U128)
	if len(hops) == 0 {
		copy(dstA, srcA)
		copy(dstB, srcB)
		return nil
	}
	for _, e := range hops {
		if ct.Level >= len(e.levels) {
			return fmt.Errorf("fhe: galois key covers %d levels, ciphertext at level %d", len(e.levels), ct.Level)
		}
		lk := &e.levels[ct.Level]
		if len(lk.ahat) != lv.digits || len(lk.bhat) != lv.digits {
			return fmt.Errorf("fhe: galois key has %d digits at level %d, want %d", len(lk.ahat), ct.Level, lv.digits)
		}
		for d := 0; d < lv.digits; d++ {
			if len(lk.ahat[d]) != n || len(lk.bhat[d]) != n {
				return fmt.Errorf("fhe: galois key digit %d shaped for another backend", d)
			}
		}
	}
	resident := ct.Domain == DomainNTT
	hopA, hopB := srcA, srcB
	for h, e := range hops {
		if err := phaseGate(ctx, faultinject.SiteRotate); err != nil {
			return err
		}
		outA, outB := dstA, dstB
		if h != len(hops)-1 {
			outA = make([]u128.U128, n)
			outB = make([]u128.U128, n)
		}
		b.galoisHop(lv, &e.levels[ct.Level], e.tab, outA, outB, hopA, hopB, resident)
		hopA, hopB = outA, outB
	}
	return nil
}

// galoisHop applies one automorphism + 2^31-gadget key switch:
// (A', B') = (-sum_d zhat_d ∘ ahat_d, tau(B) - sum_d zhat_d ∘ bhat_d)
// where the z_d are the gadget digits of tau(A). The key's b rows
// encrypt tau_g(s) under s, so B' - A'*s = tau(B) - tau(A)*tau(s) plus
// the digit noise.
func (b *ringBackend) galoisHop(lv *ringLevel, lkey *ringLevelKey, tab *ring.GaloisTables, outA, outB, srcA, srcB []u128.U128, resident bool) {
	n := b.p.N
	g := lv.plan.Generic()
	mod := lv.mod
	coefA, coefB := srcA, srcB
	if resident {
		ca := make([]u128.U128, n)
		cb := make([]u128.U128, n)
		g.NegacyclicInverseInto(ca, srcA)
		g.NegacyclicInverseInto(cb, srcB)
		coefA, coefB = ca, cb
	}
	tauA := make([]u128.U128, n)
	tauB := make([]u128.U128, n)
	g.AutomorphismCoeffInto(tab, tauA, coefA)
	g.AutomorphismCoeffInto(tab, tauB, coefB)
	accA := make([]u128.U128, n)
	accB := make([]u128.U128, n)
	zd := make([]u128.U128, n)
	zhat := make([]u128.U128, n)
	prod := make([]u128.U128, n)
	for d := range lkey.ahat {
		shift := uint(oracleDigitBits * d)
		for j := range zd {
			zd[j] = u128.From64(tauA[j].Rsh(shift).Lo & (1<<oracleDigitBits - 1))
		}
		g.NegacyclicForwardInto(zhat, zd)
		g.PointwiseMulInto(prod, zhat, lkey.ahat[d])
		for j := range accA {
			accA[j] = mod.Add(accA[j], prod[j])
		}
		g.PointwiseMulInto(prod, zhat, lkey.bhat[d])
		for j := range accB {
			accB[j] = mod.Add(accB[j], prod[j])
		}
	}
	if resident {
		for j := range outA {
			outA[j] = mod.Neg(accA[j])
		}
		g.NegacyclicForwardInto(zhat, tauB)
		for j := range outB {
			outB[j] = mod.Sub(zhat[j], accB[j])
		}
		return
	}
	g.NegacyclicInverseInto(zhat, accA)
	for j := range outA {
		outA[j] = mod.Neg(zhat[j])
	}
	g.NegacyclicInverseInto(zhat, accB)
	for j := range outB {
		outB[j] = mod.Sub(tauB[j], zhat[j])
	}
}

// ModSwitch is the oracle's exact modulus switch: every coefficient moves
// from level l to l+1 as the big-integer round(c * q_{l+1} / q_l) of its
// centered value — the bit-exactness ground truth the RNS Rescaler path
// is differentially tested against.
func (b *ringBackend) ModSwitch(dst *BackendCiphertext, ct BackendCiphertext) error {
	return b.ModSwitchCtx(context.Background(), dst, ct)
}

// ModSwitchCtx is ModSwitch with the DeadlineBackend contract: ctx is
// observed before the switch starts and between the two components.
func (b *ringBackend) ModSwitchCtx(ctx context.Context, dst *BackendCiphertext, ct BackendCiphertext) error {
	if ct.Level < 0 || ct.Level+1 >= len(b.levels) {
		return fmt.Errorf("fhe: cannot switch below level %d of a %d-level chain", ct.Level, len(b.levels))
	}
	if dst.Level != ct.Level+1 {
		return fmt.Errorf("fhe: ModSwitch destination at level %d, want %d", dst.Level, ct.Level+1)
	}
	if dst.Domain != ct.Domain {
		return fmt.Errorf("fhe: ModSwitch domain mismatch: %s -> %s", ct.Domain, dst.Domain)
	}
	if err := phaseGate(ctx, faultinject.SiteModSwitch); err != nil {
		return err
	}
	resident := ct.Domain == DomainNTT
	from, to := b.levels[ct.Level], b.levels[ct.Level+1]
	var coeffScratch []u128.U128
	if resident {
		coeffScratch = make([]u128.U128, b.p.N)
	}
	for i, pair := range [2][2]Poly{{ct.A, dst.A}, {ct.B, dst.B}} {
		if i > 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		src, ok := pair[0].([]u128.U128)
		if !ok || len(src) != b.p.N {
			return fmt.Errorf("fhe: malformed ModSwitch operand %d on the %s backend", i, b.Name())
		}
		out, ok := pair[1].([]u128.U128)
		if !ok || len(out) != b.p.N {
			return fmt.Errorf("fhe: malformed ModSwitch destination %d on the %s backend", i, b.Name())
		}
		if resident {
			// Exactness first: the oracle crosses to coefficient form for
			// the big-integer rescale and transforms the result back under
			// the NEW level's plan (the twiddle tower changes with q).
			from.plan.Generic().NegacyclicInverseInto(coeffScratch, src)
			src = coeffScratch
		}
		v := new(big.Int)
		t := new(big.Int)
		for j := range src {
			liftOne(v, src[j], t)
			if v.Cmp(from.halfQ) > 0 { // center mod q_l
				v.Sub(v, from.qBig)
			}
			v.Mul(v, to.qBig)
			v.Add(v, from.halfQ)
			v.Div(v, from.qBig) // Euclidean floor: round-half-up of the quotient
			v.Mod(v, to.qBig)
			x, ok := u128.FromBig(v)
			if !ok {
				return fmt.Errorf("fhe: ModSwitch result out of range at coefficient %d", j)
			}
			out[j] = x
		}
		if resident {
			to.plan.Generic().NegacyclicForwardInto(out, out)
		}
	}
	return nil
}

func liftOne(dst *big.Int, v u128.U128, t *big.Int) {
	dst.SetUint64(v.Hi)
	dst.Lsh(dst, 64)
	dst.Or(dst, t.SetUint64(v.Lo))
}

// MulNoiseModel exposes the MulNoiseBoundBits parameters of the oracle
// pipeline at a level: the 2^31 gadget digits of the relin key, and zero
// operand overshoot (the integer tensor is exact).
func (b *ringBackend) MulNoiseModel(level int) (digits, digitBits, overshoot int) {
	return b.levels[level].digits, oracleDigitBits, 0
}
