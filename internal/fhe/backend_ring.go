package fhe

import (
	"math/rand"

	"mqxgo/internal/u128"
)

// ringBackend runs the scheme on the library's primary configuration: one
// 124-bit double-word ring with the Barrett-multiplied 128-bit NTT. Its
// Poly handles are plain []u128.U128, so the legacy Scheme API unwraps
// them at zero cost.
type ringBackend struct {
	p *Params
}

// NewRingBackend wraps ring parameters as a Backend.
func NewRingBackend(p *Params) Backend { return ringBackend{p: p} }

func (b ringBackend) Name() string         { return "u128" }
func (b ringBackend) N() int               { return b.p.N }
func (b ringBackend) PlainModulus() uint64 { return b.p.T }
func (b ringBackend) NewPoly() Poly        { return make([]u128.U128, b.p.N) }

func (b ringBackend) Copy(a Poly) Poly {
	return append([]u128.U128(nil), a.([]u128.U128)...)
}

func (b ringBackend) Add(dst, a, c Poly) {
	mod := b.p.Mod
	d, x, y := dst.([]u128.U128), a.([]u128.U128), c.([]u128.U128)
	for i := range d {
		d[i] = mod.Add(x[i], y[i])
	}
}

func (b ringBackend) Sub(dst, a, c Poly) {
	mod := b.p.Mod
	d, x, y := dst.([]u128.U128), a.([]u128.U128), c.([]u128.U128)
	for i := range d {
		d[i] = mod.Sub(x[i], y[i])
	}
}

func (b ringBackend) Neg(dst, a Poly) {
	mod := b.p.Mod
	d, x := dst.([]u128.U128), a.([]u128.U128)
	for i := range d {
		d[i] = mod.Neg(x[i])
	}
}

func (b ringBackend) MulNegacyclic(dst, a, c Poly) {
	b.p.plan.PolyMulNegacyclicInto(dst.([]u128.U128), a.([]u128.U128), c.([]u128.U128))
}

func (b ringBackend) ScalarMul(dst, a Poly, k uint64) {
	kk := u128.From64(k).Mod(b.p.Mod.Q)
	b.p.plan.Generic().ScalarMulInto(dst.([]u128.U128), a.([]u128.U128), kk)
}

func (b ringBackend) SampleUniform(dst Poly, rng *rand.Rand) {
	mod := b.p.Mod
	d := dst.([]u128.U128)
	for i := range d {
		d[i] = u128.New(rng.Uint64(), rng.Uint64()).Mod(mod.Q)
	}
}

func (b ringBackend) SetSigned(dst Poly, coeffs []int64) {
	mod := b.p.Mod
	d := dst.([]u128.U128)
	for i, e := range coeffs {
		if e >= 0 {
			d[i] = u128.From64(uint64(e))
		} else {
			d[i] = mod.Neg(u128.From64(uint64(-e)))
		}
	}
}

// AddDeltaMsg folds Delta-scaled plaintext into a ciphertext component on
// the plan's scale-accumulate kernel.
func (b ringBackend) AddDeltaMsg(dst, a Poly, msg []uint64) {
	b.p.plan.Generic().ScaleAddInto(dst.([]u128.U128), a.([]u128.U128), msg, b.p.Delta)
}

func (b ringBackend) RoundToPlain(a Poly) []uint64 {
	x := a.([]u128.U128)
	out := make([]uint64, b.p.N)
	half, _ := b.p.Delta.DivMod64(2)
	for i := range x {
		// Round to the nearest multiple of Delta.
		q, _ := x[i].Add(half).DivMod(b.p.Delta)
		out[i] = q.Lo % b.p.T
	}
	return out
}

func (b ringBackend) DeltaBits() int { return b.p.Delta.BitLen() }

func (b ringBackend) NoiseBits(a Poly, msg []uint64) int {
	mod := b.p.Mod
	x := a.([]u128.U128)
	halfQ := mod.Q.Rsh(1)
	maxNoise := u128.Zero
	for i := range x {
		noise := mod.Sub(x[i], mod.Mul(b.p.Delta, u128.From64(msg[i]%b.p.T)))
		// Centered magnitude.
		if halfQ.Less(noise) {
			noise = mod.Q.Sub(noise)
		}
		if maxNoise.Less(noise) {
			maxNoise = noise
		}
	}
	return maxNoise.BitLen()
}
