package fhe

import (
	"fmt"
	"math/big"
	"math/rand"

	"mqxgo/internal/rns"
)

// rnsBackend runs the identical scheme on a basis of 64-bit RNS towers —
// the conventional-hardware philosophy the paper contrasts with double-word
// residues. Ciphertext polynomials stay decomposed (rns.Poly) through
// every homomorphic operation; the CRT is only applied at decryption
// rounding and noise diagnostics, where the full-width value is needed.
type rnsBackend struct {
	c *rns.Context
	t uint64

	delta     *big.Int // floor(Q / T), the plaintext scaling factor
	deltaResT []uint64 // deltaResT[i] = Delta mod q_i
	halfDelta *big.Int
	halfQ     *big.Int
	deltaBits int
}

// NewRNSBackend wraps an RNS context and plaintext modulus t as a
// Backend. t must be at least 2, below every basis prime (so plaintext
// residues are reduced in every tower), and small enough that Delta =
// floor(Q/t) is nonzero.
func NewRNSBackend(c *rns.Context, t uint64) (Backend, error) {
	if t < 2 {
		return nil, fmt.Errorf("fhe: plaintext modulus %d too small", t)
	}
	for _, mod := range c.Mods {
		if t >= mod.Q {
			return nil, fmt.Errorf("fhe: plaintext modulus %d not below tower prime %d", t, mod.Q)
		}
	}
	delta := new(big.Int).Div(c.Q, new(big.Int).SetUint64(t))
	if delta.Sign() == 0 {
		return nil, fmt.Errorf("fhe: plaintext modulus %d too large for Q", t)
	}
	b := &rnsBackend{
		c:         c,
		t:         t,
		delta:     delta,
		halfDelta: new(big.Int).Rsh(delta, 1),
		halfQ:     new(big.Int).Rsh(c.Q, 1),
		deltaBits: delta.BitLen(),
	}
	qb := new(big.Int)
	for _, mod := range c.Mods {
		b.deltaResT = append(b.deltaResT, qb.Mod(delta, new(big.Int).SetUint64(mod.Q)).Uint64())
	}
	return b, nil
}

func (b *rnsBackend) Name() string {
	return fmt.Sprintf("rns-k%d", b.c.Channels())
}

func (b *rnsBackend) N() int               { return b.c.N }
func (b *rnsBackend) PlainModulus() uint64 { return b.t }
func (b *rnsBackend) NewPoly() Poly        { return b.c.NewPoly() }

func (b *rnsBackend) Copy(a Poly) Poly {
	out := b.c.NewPoly()
	for i, row := range a.(rns.Poly).Res {
		copy(out.Res[i], row)
	}
	return out
}

// must panics on shape errors: backend handles are always
// context-shaped, so an error here is a mixed-backend bug.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

func (b *rnsBackend) Add(dst, a, c Poly) {
	must(b.c.AddInto(dst.(rns.Poly), a.(rns.Poly), c.(rns.Poly)))
}

func (b *rnsBackend) Sub(dst, a, c Poly) {
	must(b.c.SubInto(dst.(rns.Poly), a.(rns.Poly), c.(rns.Poly)))
}

func (b *rnsBackend) Neg(dst, a Poly) {
	must(b.c.NegInto(dst.(rns.Poly), a.(rns.Poly)))
}

func (b *rnsBackend) MulNegacyclic(dst, a, c Poly) {
	must(b.c.MulAll(dst.(rns.Poly), a.(rns.Poly), c.(rns.Poly), 0))
}

func (b *rnsBackend) ScalarMul(dst, a Poly, k uint64) {
	must(b.c.ScalarMulUint64Into(dst.(rns.Poly), a.(rns.Poly), k))
}

// SampleUniform draws independent uniform residues per tower, which by
// the CRT is exactly a uniform element of Z_Q.
func (b *rnsBackend) SampleUniform(dst Poly, rng *rand.Rand) {
	d := dst.(rns.Poly)
	for i, mod := range b.c.Mods {
		row := d.Res[i]
		for j := range row {
			row[j] = rng.Uint64() % mod.Q
		}
	}
}

func (b *rnsBackend) SetSigned(dst Poly, coeffs []int64) {
	d := dst.(rns.Poly)
	for i, mod := range b.c.Mods {
		row := d.Res[i]
		for j, e := range coeffs {
			if e >= 0 {
				row[j] = uint64(e) % mod.Q
			} else {
				row[j] = mod.Neg(uint64(-e) % mod.Q)
			}
		}
	}
}

// AddDeltaMsg folds Delta-scaled plaintext into a ciphertext component,
// each tower on its plan's scale-accumulate kernel.
func (b *rnsBackend) AddDeltaMsg(dst, a Poly, msg []uint64) {
	d, x := dst.(rns.Poly), a.(rns.Poly)
	for i := range b.c.Mods {
		b.c.Plans[i].Generic().ScaleAddInto(d.Res[i], x.Res[i], msg, b.deltaResT[i])
	}
}

func (b *rnsBackend) RoundToPlain(a Poly) []uint64 {
	coeffs := make([]*big.Int, b.c.N)
	must(b.c.ReconstructInto(coeffs, a.(rns.Poly)))
	out := make([]uint64, b.c.N)
	for i, x := range coeffs {
		// Round to the nearest multiple of Delta.
		x.Add(x, b.halfDelta).Div(x, b.delta)
		out[i] = x.Uint64() % b.t
	}
	return out
}

func (b *rnsBackend) DeltaBits() int { return b.deltaBits }

func (b *rnsBackend) NoiseBits(a Poly, msg []uint64) int {
	coeffs := make([]*big.Int, b.c.N)
	must(b.c.ReconstructInto(coeffs, a.(rns.Poly)))
	noise := new(big.Int)
	maxBits := 0
	for i, x := range coeffs {
		noise.SetUint64(msg[i] % b.t)
		noise.Mul(noise, b.delta)
		noise.Sub(x, noise)
		noise.Mod(noise, b.c.Q)
		// Centered magnitude.
		if noise.Cmp(b.halfQ) > 0 {
			noise.Sub(b.c.Q, noise)
		}
		if bl := noise.BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	return maxBits
}
