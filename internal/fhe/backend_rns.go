package fhe

import (
	"context"
	"fmt"
	"math/big"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"

	"mqxgo/internal/faultinject"
	"mqxgo/internal/modmath"
	"mqxgo/internal/ring"
	"mqxgo/internal/rns"
)

// rnsBackend runs the identical scheme on a basis of 64-bit RNS towers —
// the conventional-hardware philosophy the paper contrasts with double-word
// residues. Ciphertext polynomials stay decomposed (rns.Poly) through
// every homomorphic operation; the CRT is only applied at decryption
// rounding and noise diagnostics, where the full-width value is needed.
//
// The modulus ladder is where the RNS philosophy pays off structurally: a
// level is just a PREFIX of the tower basis (Q_l = q_0 * ... * q_{k-1-l}),
// so ModSwitch is the PR 4 Rescaler (divide-and-round by the dropped
// tower, residues only) and every operation below a switch runs on one
// tower fewer — smaller transforms, smaller tensors, fewer relin digits.
// The per-level contexts, converters, rescalers, and gadget tables are
// all built once at construction and share the process-wide plan cache,
// so a k-tower backend costs k plans total, not k^2.
//
// Homomorphic multiplication is BEHZ-style in the CURRENT level's basis
// and never leaves residue form: operands are base-extended with the
// m~-corrected conversion (rns.MontBaseConverter — overshoot-free, the
// PR 4 kQ operand overshoot is gone), the tensor and the T/Q_l
// divide-and-round run tower-by-tower on the plan kernels, and the result
// returns to base Q_l through the exact Shenoy-Kumaresan conversion
// (rns.SKConverter). Relinearization keys are stored per level in that
// level's NTT domain, so the per-multiply key-side forward transforms are
// gone. All multiply state is pooled per level; steady-state MulCt and
// ModSwitch allocate nothing in the workers == 1 configuration.
//
// Since PR 6 ciphertexts REST in the twisted-evaluation (double-CRT)
// domain, and MulCt has two pipelines keyed off the operands' Domain tag:
//
//   - DomainCoeff: the PR 5 pipeline, bit-for-bit — each tensor tower
//     forward-transforms its four operand rows, multiplies pointwise, and
//     inverse-transforms the three products.
//   - DomainNTT (the resident pipeline): the Q-base tensor consumes the
//     operands' evaluation form directly (zero forward transforms), the
//     operands cross to coefficient form exactly once for the m~-corrected
//     extension, squared operands are detected by row identity and
//     extended/transformed once instead of twice, the divide-and-round
//     runs as fused single-pass kernels per tower, and the relinearized
//     result is returned resident (the accumulators already live in the
//     evaluation domain, so the result adds NTT(c0/c1) instead of leaving
//     the domain). Coefficient form survives only where BEHZ needs
//     positional digits: the base conversions and the rounding offsets.
//
// Both pipelines dispatch their per-tower phases through the shared
// ring.ParallelChunks worker pool when workers != 1.
type rnsBackend struct {
	t       uint64
	k       int // towers at level 0
	workers int // tower-dispatch width: 1 sequential/zero-alloc, 0 GOMAXPROCS
	levels  []*rnsLevel
}

// mtilde is the auxiliary Montgomery modulus of the m~-corrected operand
// extension: a power of two well above 2k for any supported basis.
const mtilde = 1 << 16

// rnsLevel is one rung of the RNS modulus ladder: the prefix context, its
// plaintext scale, the BEHZ multiply machinery sized for its tower count,
// and the rescaler that drops to the next rung.
type rnsLevel struct {
	c *rns.Context

	delta     *big.Int // floor(Q_l / T), the plaintext scaling factor
	deltaResT []uint64 // deltaResT[i] = Delta_l mod q_i
	halfDelta *big.Int
	halfQ     *big.Int
	deltaBits int

	// BEHZ multiply machinery. ext is the extension base: k_l+1 towers
	// whose product P gives the tensor headroom, plus the redundant
	// Shenoy-Kumaresan modulus m_sk as the last tower.
	ext    *rns.Context
	conv   *rns.BaseConverter     // Q_l -> ext, plain FastBConv for the divide-by-Q step
	mconv  *rns.MontBaseConverter // Q_l -> ext, m~-corrected operand extension
	skConv *rns.SKConverter       // ext -> Q_l, exact
	tResQ  []uint64               // T mod q_i
	tResE  []uint64               // T mod e_j
	hResQ  []uint64               // floor(Q_l/2) mod q_i, the divide-by-Q rounding offset
	hResE  []uint64               // floor(Q_l/2) mod e_j
	qInvE  []uint64               // Q_l^-1 mod e_j
	gadget [][]uint64             // gadget[i][tau] = (Q_l/q_i) mod q_tau, the relin gadget

	// Fused divide-and-round constants (the resident pipeline). The PR 5
	// rescale materializes w_i = T*v_i + h per Q tower and then lets
	// FastBConv take w's digit w_i*(Q_l/q_i)^-1; folding the constants
	// gives the digit directly in one pass per tower,
	// z_i = v_i*tQiInv[i] + hQiInv[i] mod q_i, feeding
	// rns.BaseConverter.ConvertDigitsInto. On the extension side tResEPre
	// and qInvEPre let the two scalar passes and the subtraction collapse
	// into one fused loop after the conversion lands.
	tQiInv    []uint64 // (T * (Q_l/q_i)^-1) mod q_i
	tQiInvPre []uint64 // Shoup precomputation of tQiInv
	hQiInv    []uint64 // (floor(Q_l/2) * (Q_l/q_i)^-1) mod q_i
	tResEPre  []uint64 // Shoup precomputation of tResE
	qInvEPre  []uint64 // Shoup precomputation of qInvE

	// relinLazy reports that k lazy Shoup products (each < 2q) fit a
	// 64-bit accumulator for every tower of this level, enabling the
	// deferred-reduction relin accumulation (one Barrett per element at
	// the end instead of a canonical multiply-add per digit).
	relinLazy bool

	rescale *rns.Rescaler // Q_l -> Q_{l+1} (nil at the bottom rung)
	mulPool sync.Pool
}

// rnsMulScratch is the pooled working set of one MulCt call at one level.
// The per-TOWER-disjoint members (evE, opQ, zQ, liftQ, prodQ) exist so the
// dispatched phases can run towers concurrently without sharing rows; the
// flat rows (ev, zrow, lift, prod) serve the sequential coefficient-domain
// pipeline, whose explicit loops are what escape analysis keeps
// allocation-free.
//
// The struct doubles as the call frame of the dispatched phases: the
// operand/destination fields are set at the top of MulCt so the parallel
// closures capture ONE pointer (the scratch itself, already pooled)
// instead of a fresh environment per phase.
type rnsMulScratch struct {
	opE              [4]rns.Poly // operands extended to the ext base
	ev               [5][]uint64 // shared evaluation-domain rows (sequential path)
	evE              [5]rns.Poly // per-tower evaluation-domain rows (ext-base shaped)
	opQ              [4]rns.Poly // resident path: operand coefficient forms in Q_l
	zQ               rns.Poly    // resident path: fused rescale digits / relin digit rows
	liftQ, prodQ     rns.Poly    // per-tower relin scratch (parallel + resident)
	c0Q, c1Q, c2Q    rns.Poly    // tensor, then scaled ciphertext, in Q_l
	c0E, c1E, c2E    rns.Poly    // tensor in the ext base
	convE            rns.Poly    // FastBConv([w]_Q) landing buffer
	zrow, lift, prod []uint64    // relin digit, lifted digit, product rows
	accA, accB       rns.Poly    // relin evaluation-domain accumulators

	// Call frame for the dispatched phases.
	lv           *rnsLevel
	in           [4]rns.Poly // a1, b1, a2, b2 as passed
	outA, outB   rns.Poly
	lkey         *rnsLevelRelin
	keyNTTDomain bool
	squaring     bool               // operand rows of ct1 and ct2 are identical slices
	gtab         *ring.GaloisTables // the galois hop's index maps (rotation path)
}

// NewRNSBackend wraps an RNS context and plaintext modulus t as a
// Backend. t must be at least 2, below every basis prime (so plaintext
// residues are reduced in every tower), small enough that Delta_l =
// floor(Q_l/t) is nonzero at every level, and — for the BEHZ multiply's
// headroom — small enough that rescaled tensor coefficients stay below
// half the extension base (validated exactly, per level, below).
func NewRNSBackend(c *rns.Context, t uint64) (Backend, error) {
	return NewRNSBackendWorkers(c, t, 0)
}

// NewRNSBackendWorkers is NewRNSBackend with the tower-dispatch width
// pinned. workers == 1 runs every per-tower phase as a plain sequential
// loop — the zero-allocation configuration the alloc gates measure.
// workers == 0 resolves to GOMAXPROCS at construction (the default): on
// a single-CPU host that IS the sequential zero-allocation path, so the
// default backend never pays pool dispatch it cannot use. Any other
// positive value caps the pool fan-out at that many concurrent tower
// chunks.
func NewRNSBackendWorkers(c *rns.Context, t uint64, workers int) (Backend, error) {
	if workers < 0 {
		return nil, fmt.Errorf("fhe: negative worker count %d", workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if t < 2 {
		return nil, fmt.Errorf("fhe: plaintext modulus %d too small", t)
	}
	minQ, maxQ := c.Mods[0].Q, c.Mods[0].Q
	for _, mod := range c.Mods {
		if t >= mod.Q {
			return nil, fmt.Errorf("fhe: plaintext modulus %d not below tower prime %d", t, mod.Q)
		}
		minQ = min(minQ, mod.Q)
		maxQ = max(maxQ, mod.Q)
	}
	if maxQ >= 2*minQ {
		// The relin digit lift reduces a tower-i residue into tower tau
		// with one conditional subtraction, which needs q_i < 2*q_tau.
		return nil, fmt.Errorf("fhe: mixed-width RNS basis unsupported (primes %d and %d)", minQ, maxQ)
	}
	k := c.Channels()
	b := &rnsBackend{t: t, k: k, workers: workers}

	// The extension primes are shared by every level: the top-down search
	// returns Q's own primes first, so overshoot and filter against the
	// FULL basis (a level's extension may then never collide with any
	// rung's towers).
	primeBits := bits.Len64(c.Mods[0].Q)
	found, err := modmath.FindNTTPrimes64(primeBits, uint64(2*c.N), 2*k+2)
	if err != nil {
		return nil, fmt.Errorf("fhe: extension base: %w", err)
	}
	inQ := make(map[uint64]bool, k)
	basePrimes := make([]uint64, k)
	for i, mod := range c.Mods {
		inQ[mod.Q] = true
		basePrimes[i] = mod.Q
	}
	var extPrimes []uint64
	for _, p := range found {
		if !inQ[p] && len(extPrimes) < k+2 {
			extPrimes = append(extPrimes, p)
		}
	}
	if len(extPrimes) < k+2 {
		return nil, fmt.Errorf("fhe: only %d extension primes available, need %d", len(extPrimes), k+2)
	}

	// Build the ladder top-down: level l is the prefix basis with k-l
	// towers. Contexts share the process-wide plan cache, so the chain
	// costs no extra transform plans.
	for l := 0; l < k; l++ {
		kl := k - l
		var cl *rns.Context
		if l == 0 {
			cl = c
		} else {
			cl, err = rns.NewContextForPrimes(basePrimes[:kl], c.N)
			if err != nil {
				return nil, err
			}
		}
		lv, err := b.buildLevel(cl, extPrimes[:kl+2])
		if err != nil {
			return nil, fmt.Errorf("fhe: level %d: %w", l, err)
		}
		b.levels = append(b.levels, lv)
	}
	for l := 0; l+1 < k; l++ {
		r, err := rns.NewRescaler(b.levels[l].c, b.levels[l+1].c)
		if err != nil {
			return nil, fmt.Errorf("fhe: rescaler %d -> %d: %w", l, l+1, err)
		}
		b.levels[l].rescale = r
	}
	return b, nil
}

// buildLevel constructs one rung: plaintext scale constants plus the
// BEHZ multiply machinery (extension base, converters, precomputed
// residues, gadget) sized for the rung's tower count, with the exact
// headroom validation in code rather than folklore.
func (b *rnsBackend) buildLevel(c *rns.Context, extPrimes []uint64) (*rnsLevel, error) {
	k := c.Channels()
	delta := new(big.Int).Div(c.Q, new(big.Int).SetUint64(b.t))
	if delta.Sign() == 0 {
		return nil, fmt.Errorf("fhe: plaintext modulus %d too large for Q", b.t)
	}
	lv := &rnsLevel{
		c:         c,
		delta:     delta,
		halfDelta: new(big.Int).Rsh(delta, 1),
		halfQ:     new(big.Int).Rsh(c.Q, 1),
		deltaBits: delta.BitLen(),
	}
	qb := new(big.Int)
	for _, mod := range c.Mods {
		lv.deltaResT = append(lv.deltaResT, qb.Mod(delta, new(big.Int).SetUint64(mod.Q)).Uint64())
	}
	ext, err := rns.NewContextForPrimes(extPrimes, c.N)
	if err != nil {
		return nil, err
	}
	conv, err := rns.NewBaseConverter(c, ext)
	if err != nil {
		return nil, err
	}
	mconv, err := rns.NewMontBaseConverter(c, ext, mtilde)
	if err != nil {
		return nil, err
	}
	skConv, err := rns.NewSKConverter(ext, c)
	if err != nil {
		return nil, err
	}
	lv.ext, lv.conv, lv.mconv, lv.skConv = ext, conv, mconv, skConv

	// Exact headroom validation. The m~-corrected extension bounds every
	// operand by |y| < Q (gamma in {-1, 0} — no k*Q overshoot), so tensor
	// coefficients |v| <= 2n*Q^2 and the rescaled |y| <= T*2n*Q + (k+2);
	// the tensor must fit the full base (|w| < Q*E/2) and y must fit the
	// Shenoy-Kumaresan window (|y| < P/2, P = E/m_sk).
	n := new(big.Int).SetInt64(int64(c.N))
	vMax := new(big.Int).Mul(c.Q, c.Q)
	vMax.Mul(vMax, n).Lsh(vMax, 1) // 2n*Q^2
	wMax := new(big.Int).Mul(vMax, new(big.Int).SetUint64(b.t))
	wMax.Add(wMax, lv.halfQ)
	full := new(big.Int).Mul(c.Q, ext.Q)
	if wMax.Cmp(new(big.Int).Rsh(full, 1)) >= 0 {
		return nil, fmt.Errorf("fhe: tensor product overflows base Q*E for T=%d", b.t)
	}
	yMax := new(big.Int).Div(wMax, c.Q)
	yMax.Add(yMax, new(big.Int).SetInt64(int64(k+2)))
	p := new(big.Int).Div(ext.Q, new(big.Int).SetUint64(ext.Mods[k+1].Q))
	if yMax.Cmp(new(big.Int).Rsh(p, 1)) >= 0 {
		return nil, fmt.Errorf("fhe: rescaled product overflows extension base P for T=%d", b.t)
	}

	t := new(big.Int)
	for i, mod := range c.Mods {
		qb := new(big.Int).SetUint64(mod.Q)
		hq := t.Mod(lv.halfQ, qb).Uint64()
		lv.tResQ = append(lv.tResQ, b.t%mod.Q)
		lv.hResQ = append(lv.hResQ, hq)
		qiInv := c.QiInv(i)
		tqi := mod.Mul(b.t%mod.Q, qiInv)
		lv.tQiInv = append(lv.tQiInv, tqi)
		lv.tQiInvPre = append(lv.tQiInvPre, mod.ShoupPrecompute(tqi))
		lv.hQiInv = append(lv.hQiInv, mod.Mul(hq, qiInv))
		row := make([]uint64, k)
		qi := c.QiBig(i)
		for tau, modT := range c.Mods {
			row[tau] = t.Mod(qi, new(big.Int).SetUint64(modT.Q)).Uint64()
		}
		lv.gadget = append(lv.gadget, row)
	}
	for _, mod := range ext.Mods {
		qb := new(big.Int).SetUint64(mod.Q)
		tRes := b.t % mod.Q
		qInv := mod.Inv(t.Mod(c.Q, qb).Uint64())
		lv.tResE = append(lv.tResE, tRes)
		lv.tResEPre = append(lv.tResEPre, mod.ShoupPrecompute(tRes))
		lv.hResE = append(lv.hResE, t.Mod(lv.halfQ, qb).Uint64())
		lv.qInvE = append(lv.qInvE, qInv)
		lv.qInvEPre = append(lv.qInvEPre, mod.ShoupPrecompute(qInv))
	}
	maxQ, minQ := c.Mods[0].Q, c.Mods[0].Q
	for _, mod := range c.Mods[1:] {
		if mod.Q > maxQ {
			maxQ = mod.Q
		}
		if mod.Q < minQ {
			minQ = mod.Q
		}
	}
	// Both halves of the lazy contract: k summands < 2*maxQ may not wrap
	// the 64-bit accumulator, and the final Barrett64Reduce(0, acc) needs
	// acc < q^2, i.e. q > 2^32 so that q^2 covers the whole accumulator.
	lv.relinLazy = uint64(k) <= ^uint64(0)/(2*maxQ) && minQ > 1<<32
	lv.mulPool.New = func() any {
		sc := &rnsMulScratch{
			c0Q: c.NewPoly(), c1Q: c.NewPoly(), c2Q: c.NewPoly(),
			c0E: ext.NewPoly(), c1E: ext.NewPoly(), c2E: ext.NewPoly(),
			convE: ext.NewPoly(),
			zQ:    c.NewPoly(), liftQ: c.NewPoly(), prodQ: c.NewPoly(),
			accA: c.NewPoly(), accB: c.NewPoly(),
			zrow: make([]uint64, c.N), lift: make([]uint64, c.N), prod: make([]uint64, c.N),
		}
		for i := range sc.opE {
			sc.opE[i] = ext.NewPoly()
		}
		for i := range sc.opQ {
			sc.opQ[i] = c.NewPoly()
		}
		for i := range sc.ev {
			sc.ev[i] = make([]uint64, c.N)
		}
		for i := range sc.evE {
			// Ext-base shaped (the wider base), so the same rows serve both
			// bases' per-tower phases: m >= k and every row is length N.
			sc.evE[i] = ext.NewPoly()
		}
		return sc
	}
	return lv, nil
}

func (b *rnsBackend) Name() string {
	return fmt.Sprintf("rns-k%d", b.k)
}

func (b *rnsBackend) N() int                   { return b.levels[0].c.N }
func (b *rnsBackend) PlainModulus() uint64     { return b.t }
func (b *rnsBackend) Levels() int              { return len(b.levels) }
func (b *rnsBackend) NewPoly() Poly            { return b.levels[0].c.NewPoly() }
func (b *rnsBackend) NewPolyAt(level int) Poly { return b.levels[level].c.NewPoly() }

func (b *rnsBackend) Copy(a Poly) Poly {
	src := a.(rns.Poly)
	out := rns.Poly{Res: ring.AllocBatch[uint64](b.levels[0].c.N, len(src.Res))}
	for i, row := range src.Res {
		copy(out.Res[i], row)
	}
	return out
}

// checkPolyAt validates one handle: backend type, the level's tower
// shape, and residues reduced below each tower prime.
func (b *rnsBackend) checkPolyAt(level int, a Poly) error {
	x, ok := a.(rns.Poly)
	if !ok {
		return fmt.Errorf("fhe: foreign polynomial handle %T on the %s backend", a, b.Name())
	}
	c := b.levels[level].c
	if len(x.Res) != c.Channels() {
		return fmt.Errorf("fhe: got %d towers, want %d at level %d", len(x.Res), c.Channels(), level)
	}
	for i, row := range x.Res {
		if len(row) != c.N {
			return fmt.Errorf("fhe: tower %d has %d coefficients, want %d", i, len(row), c.N)
		}
		q := c.Mods[i].Q
		for j, v := range row {
			if v >= q {
				return fmt.Errorf("fhe: tower %d coefficient %d not reduced mod %d", i, j, q)
			}
		}
	}
	return nil
}

func (b *rnsBackend) CheckPoly(level int, a Poly) error {
	if level < 0 || level >= len(b.levels) {
		return fmt.Errorf("fhe: level %d outside the %d-level chain", level, len(b.levels))
	}
	return b.checkPolyAt(level, a)
}

//mqx:domaincheck
func (b *rnsBackend) CheckCiphertext(ct BackendCiphertext) error {
	if ct.Level < 0 || ct.Level >= len(b.levels) {
		return fmt.Errorf("fhe: level %d outside the %d-level chain", ct.Level, len(b.levels))
	}
	if ct.Domain > DomainNTT {
		return fmt.Errorf("fhe: unknown domain tag %d", ct.Domain)
	}
	if ct.A == nil || ct.B == nil {
		return fmt.Errorf("fhe: malformed ciphertext (nil component)")
	}
	if err := b.checkPolyAt(ct.Level, ct.A); err != nil {
		return err
	}
	return b.checkPolyAt(ct.Level, ct.B)
}

// must panics on shape errors: backend handles reaching these internal
// paths have passed the scheme layer's provenance validation, so an error
// here is a backend-private invariant violation, not user input.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

func (b *rnsBackend) Add(level int, dst, a, c Poly) {
	must(b.levels[level].c.AddInto(dst.(rns.Poly), a.(rns.Poly), c.(rns.Poly)))
}

func (b *rnsBackend) Sub(level int, dst, a, c Poly) {
	must(b.levels[level].c.SubInto(dst.(rns.Poly), a.(rns.Poly), c.(rns.Poly)))
}

func (b *rnsBackend) Neg(level int, dst, a Poly) {
	must(b.levels[level].c.NegInto(dst.(rns.Poly), a.(rns.Poly)))
}

func (b *rnsBackend) MulNegacyclic(level int, dst, a, c Poly) {
	must(b.levels[level].c.MulAll(dst.(rns.Poly), a.(rns.Poly), c.(rns.Poly), b.workers))
}

func (b *rnsBackend) ToNTT(level int, dst, a Poly) {
	must(b.levels[level].c.NegacyclicNTTAll(dst.(rns.Poly), a.(rns.Poly), b.workers))
}

func (b *rnsBackend) ToCoeff(level int, dst, a Poly) {
	must(b.levels[level].c.NegacyclicINTTAll(dst.(rns.Poly), a.(rns.Poly), b.workers))
}

func (b *rnsBackend) PMul(level int, dst, a, c Poly) {
	must(b.levels[level].c.PMulInto(dst.(rns.Poly), a.(rns.Poly), c.(rns.Poly)))
}

func (b *rnsBackend) ScalarMul(level int, dst, a Poly, k uint64) {
	must(b.levels[level].c.ScalarMulUint64Into(dst.(rns.Poly), a.(rns.Poly), k))
}

// SampleUniform draws independent uniform residues per tower, which by
// the CRT is exactly a uniform element of Z_Q.
func (b *rnsBackend) SampleUniform(dst Poly, rng *rand.Rand) {
	sampleUniformCtx(b.levels[0].c, dst.(rns.Poly), rng)
}

func sampleUniformCtx(c *rns.Context, d rns.Poly, rng *rand.Rand) {
	for i, mod := range c.Mods {
		row := d.Res[i]
		for j := range row {
			row[j] = rng.Uint64() % mod.Q
		}
	}
}

func (b *rnsBackend) SetSigned(dst Poly, coeffs []int64) {
	b.setSignedCtx(b.levels[0].c, dst.(rns.Poly), coeffs)
}

// SecretAt restricts a level-0 small signed polynomial to a lower rung.
// Because a level is a tower PREFIX, the restriction is just the first
// k-l rows — no re-encoding, no copy.
func (b *rnsBackend) SecretAt(level int, s Poly) Poly {
	src := s.(rns.Poly)
	return rns.Poly{Res: src.Res[:b.levels[level].c.Channels()]}
}

// AddDeltaMsg folds Delta_l-scaled plaintext into a ciphertext component,
// each tower on its plan's scale-accumulate kernel.
func (b *rnsBackend) AddDeltaMsg(level int, dst, a Poly, msg []uint64) {
	lv := b.levels[level]
	d, x := dst.(rns.Poly), a.(rns.Poly)
	for i := range lv.c.Mods {
		lv.c.Plans[i].Generic().ScaleAddInto(d.Res[i], x.Res[i], msg, lv.deltaResT[i])
	}
}

func (b *rnsBackend) RoundToPlain(level int, a Poly) []uint64 {
	lv := b.levels[level]
	coeffs := make([]*big.Int, lv.c.N)
	must(lv.c.ReconstructInto(coeffs, a.(rns.Poly)))
	out := make([]uint64, lv.c.N)
	for i, x := range coeffs {
		// Round to the nearest multiple of Delta_l.
		x.Add(x, lv.halfDelta).Div(x, lv.delta)
		out[i] = x.Uint64() % b.t
	}
	return out
}

func (b *rnsBackend) DeltaBits(level int) int { return b.levels[level].deltaBits }

func (b *rnsBackend) NoiseBits(level int, a Poly, msg []uint64) int {
	lv := b.levels[level]
	coeffs := make([]*big.Int, lv.c.N)
	must(lv.c.ReconstructInto(coeffs, a.(rns.Poly)))
	noise := new(big.Int)
	maxBits := 0
	for i, x := range coeffs {
		noise.SetUint64(msg[i] % b.t)
		noise.Mul(noise, lv.delta)
		noise.Sub(x, noise)
		noise.Mod(noise, lv.c.Q)
		// Centered magnitude.
		if noise.Cmp(lv.halfQ) > 0 {
			noise.Sub(lv.c.Q, noise)
		}
		if bl := noise.BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	return maxBits
}

// rnsRelinKey holds the RNS-gadget relinearization key, one set per
// ladder level: for each tower i of level l, an encryption
// (a_i, a_i*s + e_i + (Q_l/q_i)*s^2) under that level's basis. With
// nttDomain set (the default and the fast path), both components are
// stored per tower in the twisted-evaluation domain, so relinearization
// pays one forward transform per digit-tower pair and two inverse
// transforms per tower — the key-side transforms are all at keygen.
// Coefficient-domain keys (RelinKeyGenCoeffDomain) pay two extra forward
// transforms per digit-tower pair on EVERY multiply; they exist as the
// benchmark comparison axis that measures what the NTT-domain layout
// saves.
type rnsRelinKey struct {
	nttDomain bool
	levels    []rnsLevelRelin
}

type rnsLevelRelin struct {
	a, b []rns.Poly

	// aPre/bPre are the elementwise Shoup precomputations of the
	// NTT-domain key rows (nil for coefficient-domain keys). With the
	// second multiplicand fixed — the key — the relin inner product can
	// run as lazy Shoup products accumulated with plain integer adds,
	// deferring the per-digit Barrett reduction to one pass per tower.
	aPre, bPre []rns.Poly
}

// RelinKeyGen builds the CRT-gadget relinearization key at every ladder
// level, stored in the NTT domain. The gadget digits are the towers
// themselves (z_i = [c2_i * (Q_l/q_i)^-1]_{q_i}, with
// sum_i z_i*(Q_l/q_i) = c2 mod Q_l), so no integer digit extraction is
// ever needed — the decomposition the paper's RNS philosophy already paid
// for is the key-switching gadget, at every level.
func (b *rnsBackend) RelinKeyGen(s Poly, rng *rand.Rand) BackendRelinKey {
	return b.relinKeyGen(s, rng, true)
}

// RelinKeyGenCoeffDomain builds the same per-level key with both
// components left in the coefficient domain — the PR 4-style layout whose
// per-multiply transform cost the NTT-domain default eliminates. It
// exists for benchmarks and tests; production callers want RelinKeyGen.
func (b *rnsBackend) RelinKeyGenCoeffDomain(s Poly, rng *rand.Rand) BackendRelinKey {
	return b.relinKeyGen(s, rng, false)
}

func (b *rnsBackend) relinKeyGen(s Poly, rng *rand.Rand, nttDomain bool) BackendRelinKey {
	sk0 := s.(rns.Poly)
	// s^2 per tower is level-independent (each tower's negacyclic square
	// stands alone), so compute it once at level 0 and slice prefixes.
	s2 := b.levels[0].c.NewPoly()
	must(b.levels[0].c.MulAll(s2, sk0, sk0, 1))
	noise := make([]int64, b.N())
	key := &rnsRelinKey{nttDomain: nttDomain}
	for l, lv := range b.levels {
		c := lv.c
		k := c.Channels()
		sk := b.SecretAt(l, s).(rns.Poly)
		e := c.NewPoly()
		lk := rnsLevelRelin{}
		for i := 0; i < k; i++ {
			a := c.NewPoly()
			sampleUniformCtx(c, a, rng)
			for j := range noise {
				noise[j] = int64(rng.Intn(2*noiseBound+1) - noiseBound)
			}
			b.setSignedCtx(c, e, noise)
			bb := c.NewPoly()
			must(c.MulAll(bb, a, sk, 1)) // a_i * s
			must(c.AddInto(bb, bb, e))   // + e_i
			for tau := 0; tau < k; tau++ {
				// + (Q_l/q_i mod q_tau) * s^2, on the scale-accumulate kernel.
				c.Plans[tau].Generic().ScaleAddInto(bb.Res[tau], bb.Res[tau], s2.Res[tau], lv.gadget[i][tau])
			}
			if nttDomain {
				aPre, bPre := c.NewPoly(), c.NewPoly()
				for tau := 0; tau < k; tau++ {
					plan := c.Plans[tau].Generic()
					plan.NegacyclicForwardInto(a.Res[tau], a.Res[tau])
					plan.NegacyclicForwardInto(bb.Res[tau], bb.Res[tau])
					mod := c.Mods[tau]
					for j, v := range a.Res[tau] {
						aPre.Res[tau][j] = mod.ShoupPrecompute(v)
					}
					for j, v := range bb.Res[tau] {
						bPre.Res[tau][j] = mod.ShoupPrecompute(v)
					}
				}
				lk.aPre = append(lk.aPre, aPre)
				lk.bPre = append(lk.bPre, bPre)
			}
			lk.a = append(lk.a, a)
			lk.b = append(lk.b, bb)
		}
		key.levels = append(key.levels, lk)
	}
	return key
}

// rnsGaloisKey is the Galois key set: one CRT-gadget key-switch key per
// automorphism element, covering the power-of-two rotation elements
// 3^(2^j) mod 2n plus the conjugation element 2n-1 — O(log n) keys
// decompose every rotation amount. Each entry mirrors the relin key's
// per-level NTT-domain layout exactly (same gadget, same lazy Shoup
// precomputations), encrypting tau_g(s) instead of s^2.
type rnsGaloisKey struct {
	n       int
	entries map[uint64]*rnsGaloisEntry
}

type rnsGaloisEntry struct {
	g      uint64
	tab    *ring.GaloisTables // resolved once at keygen: rotation never hits the cache
	levels []rnsLevelRelin
}

// galoisKeyElements lists the automorphism elements GaloisKeyGen covers:
// the binary ladder of rotation elements plus the conjugation.
func galoisKeyElements(n int) []uint64 {
	twoN := uint64(2 * n)
	var gs []uint64
	g := uint64(ring.SlotGenerator)
	for m := 1; m < n/2; m *= 2 {
		gs = append(gs, g)
		g = g * g % twoN
	}
	return append(gs, ring.ConjugationElement(n))
}

// GaloisKeyGen builds the per-level Galois key-switch keys, stored in the
// NTT domain. Structurally this is RelinKeyGen with tau_g(s) in place of
// s^2: for each covered element g and each tower i of level l, an
// encryption (a_i, a_i*s + e_i + (Q_l/q_i)*tau_g(s)) under that level's
// basis. tau_g(s) is computed once per g at level 0 in the coefficient
// domain; a lower rung's secret is a tower PREFIX, and the automorphism
// acts row-wise, so the restriction commutes with tau for free.
func (b *rnsBackend) GaloisKeyGen(s Poly, rng *rand.Rand) BackendGaloisKey {
	sk0 := s.(rns.Poly)
	n := b.N()
	c0 := b.levels[0].c
	tauS := c0.NewPoly()
	noise := make([]int64, n)
	key := &rnsGaloisKey{n: n, entries: make(map[uint64]*rnsGaloisEntry)}
	for _, g := range galoisKeyElements(n) {
		tab, err := ring.GaloisTablesFor(n, g)
		must(err)
		for tau := range c0.Mods {
			c0.Plans[tau].Generic().AutomorphismCoeffInto(tab, tauS.Res[tau], sk0.Res[tau])
		}
		entry := &rnsGaloisEntry{g: g, tab: tab}
		for l, lv := range b.levels {
			c := lv.c
			k := c.Channels()
			sk := b.SecretAt(l, s).(rns.Poly)
			e := c.NewPoly()
			lk := rnsLevelRelin{}
			for i := 0; i < k; i++ {
				a := c.NewPoly()
				sampleUniformCtx(c, a, rng)
				for j := range noise {
					noise[j] = int64(rng.Intn(2*noiseBound+1) - noiseBound)
				}
				b.setSignedCtx(c, e, noise)
				bb := c.NewPoly()
				must(c.MulAll(bb, a, sk, 1)) // a_i * s
				must(c.AddInto(bb, bb, e))   // + e_i
				for tau := 0; tau < k; tau++ {
					// + (Q_l/q_i mod q_tau) * tau_g(s)
					c.Plans[tau].Generic().ScaleAddInto(bb.Res[tau], bb.Res[tau], tauS.Res[tau], lv.gadget[i][tau])
				}
				aPre, bPre := c.NewPoly(), c.NewPoly()
				for tau := 0; tau < k; tau++ {
					plan := c.Plans[tau].Generic()
					plan.NegacyclicForwardInto(a.Res[tau], a.Res[tau])
					plan.NegacyclicForwardInto(bb.Res[tau], bb.Res[tau])
					mod := c.Mods[tau]
					for j, v := range a.Res[tau] {
						aPre.Res[tau][j] = mod.ShoupPrecompute(v)
					}
					for j, v := range bb.Res[tau] {
						bPre.Res[tau][j] = mod.ShoupPrecompute(v)
					}
				}
				lk.a = append(lk.a, a)
				lk.b = append(lk.b, bb)
				lk.aPre = append(lk.aPre, aPre)
				lk.bPre = append(lk.bPre, bPre)
			}
			entry.levels = append(entry.levels, lk)
		}
		key.entries[g] = entry
	}
	return key
}

func (b *rnsBackend) RotateSlots(dst *BackendCiphertext, ct BackendCiphertext, steps int, gk BackendGaloisKey) error {
	return b.RotateSlotsCtx(context.Background(), dst, ct, steps, gk)
}

func (b *rnsBackend) Conjugate(dst *BackendCiphertext, ct BackendCiphertext, gk BackendGaloisKey) error {
	return b.ConjugateCtx(context.Background(), dst, ct, gk)
}

// RotateSlotsCtx rotates both slot rows left by steps via the binary
// decomposition of the rotation: one Galois key-switch hop per set bit,
// each hop a permutation + CRT-gadget key switch that reuses the multiply
// pipeline's pooled scratch and lazy fused-MAC accumulation. ctx is
// observed before every hop. Zero allocations in steady state when
// workers == 1; dst must not alias ct.
func (b *rnsBackend) RotateSlotsCtx(ctx context.Context, dst *BackendCiphertext, ct BackendCiphertext, steps int, gk BackendGaloisKey) error {
	key, err := b.checkGaloisCall(dst, ct, gk)
	if err != nil {
		return err
	}
	rows := b.N() / 2
	steps = ((steps % rows) + rows) % rows
	return b.galoisChain(ctx, dst, ct, key, steps, false)
}

// ConjugateCtx applies the row-swap automorphism (Galois element 2n-1)
// with the same contract as RotateSlotsCtx.
func (b *rnsBackend) ConjugateCtx(ctx context.Context, dst *BackendCiphertext, ct BackendCiphertext, gk BackendGaloisKey) error {
	key, err := b.checkGaloisCall(dst, ct, gk)
	if err != nil {
		return err
	}
	return b.galoisChain(ctx, dst, ct, key, 0, true)
}

// checkGaloisCall validates the rotate/conjugate arguments the way
// MulCtCtx validates its own: key provenance first, then level and domain
// agreement, then handle types and destination shape.
func (b *rnsBackend) checkGaloisCall(dst *BackendCiphertext, ct BackendCiphertext, gk BackendGaloisKey) (*rnsGaloisKey, error) {
	key, ok := gk.(*rnsGaloisKey)
	if !ok {
		return nil, fmt.Errorf("fhe: foreign galois key %T on the %s backend", gk, b.Name())
	}
	if key.n != b.N() {
		return nil, fmt.Errorf("fhe: galois key built for degree %d, want %d", key.n, b.N())
	}
	if ct.Level < 0 || ct.Level >= len(b.levels) {
		return nil, fmt.Errorf("fhe: level %d outside the %d-level chain", ct.Level, len(b.levels))
	}
	if dst.Level != ct.Level {
		return nil, fmt.Errorf("fhe: rotate level mismatch: %d -> %d", ct.Level, dst.Level)
	}
	if dst.Domain != ct.Domain {
		return nil, fmt.Errorf("fhe: rotate domain mismatch: %s -> %s", ct.Domain, dst.Domain)
	}
	c := b.levels[ct.Level].c
	k := c.Channels()
	srcA, ok1 := ct.A.(rns.Poly)
	srcB, ok2 := ct.B.(rns.Poly)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("fhe: foreign ciphertext handle on the %s backend", b.Name())
	}
	dstA, okA := dst.A.(rns.Poly)
	dstB, okB := dst.B.(rns.Poly)
	if !okA || !okB {
		return nil, fmt.Errorf("fhe: foreign destination handle on the %s backend", b.Name())
	}
	if len(srcA.Res) != k || len(srcB.Res) != k || len(dstA.Res) != k || len(dstB.Res) != k ||
		len(dstA.Res[0]) != c.N || len(dstB.Res[0]) != c.N {
		return nil, fmt.Errorf("fhe: rotate operands not shaped for level %d", ct.Level)
	}
	return key, nil
}

// galoisChain runs the hop sequence for one rotation: the entries for the
// set bits of steps (lowest first), then the conjugation when asked.
// Intermediate hops alternate through the scratch frame's operand
// buffers, arranged so the final hop lands in dst and no hop ever reads
// the rows it is writing.
func (b *rnsBackend) galoisChain(ctx context.Context, dst *BackendCiphertext, ct BackendCiphertext, key *rnsGaloisKey, steps int, conj bool) error {
	n := b.N()
	lv := b.levels[ct.Level]
	c := lv.c
	k := c.Channels()
	var hops [65]*rnsGaloisEntry
	nh := 0
	g := uint64(ring.SlotGenerator)
	twoN := uint64(2 * n)
	for s := steps; s != 0; s >>= 1 {
		if s&1 == 1 {
			e := key.entries[g]
			if e == nil {
				return fmt.Errorf("fhe: galois key missing rotation element %d", g)
			}
			hops[nh] = e
			nh++
		}
		g = g * g % twoN
	}
	if conj {
		e := key.entries[ring.ConjugationElement(n)]
		if e == nil {
			return fmt.Errorf("fhe: galois key missing the conjugation element")
		}
		hops[nh] = e
		nh++
	}
	srcA, srcB := ct.A.(rns.Poly), ct.B.(rns.Poly)
	dstA, dstB := dst.A.(rns.Poly), dst.B.(rns.Poly)
	if nh == 0 {
		// The identity rotation is a plain copy.
		for i := 0; i < k; i++ {
			copy(dstA.Res[i], srcA.Res[i])
			copy(dstB.Res[i], srcB.Res[i])
		}
		return nil
	}
	// A key of the right type and degree can still come from another
	// backend instance: validate every hop's per-level shape before any
	// hop indexes into it.
	for h := 0; h < nh; h++ {
		if ct.Level >= len(hops[h].levels) {
			return fmt.Errorf("fhe: galois key covers %d levels, ciphertext at level %d", len(hops[h].levels), ct.Level)
		}
		lk := &hops[h].levels[ct.Level]
		if len(lk.a) != k || len(lk.b) != k {
			return fmt.Errorf("fhe: galois key has %d digits at level %d, want %d", len(lk.a), ct.Level, k)
		}
		for i := 0; i < k; i++ {
			if len(lk.a[i].Res) != k || len(lk.b[i].Res) != k ||
				len(lk.a[i].Res[0]) != c.N || len(lk.b[i].Res[0]) != c.N {
				return fmt.Errorf("fhe: galois key digit %d shaped for another backend", i)
			}
		}
	}
	resident := ct.Domain == DomainNTT
	sc := lv.mulPool.Get().(*rnsMulScratch)
	defer func() {
		if r := recover(); r != nil {
			quarantinedScratch.Add(1)
			panic(r)
		}
		sc.lv, sc.lkey, sc.gtab = nil, nil, nil
		sc.in = [4]rns.Poly{}
		sc.outA, sc.outB = rns.Poly{}, rns.Poly{}
		lv.mulPool.Put(sc)
	}()
	sc.lv = lv
	sc.keyNTTDomain = true
	hopA, hopB := srcA, srcB
	for h := 0; h < nh; h++ {
		if err := phaseGate(ctx, faultinject.SiteRotate); err != nil {
			return err
		}
		outA, outB := dstA, dstB
		if h != nh-1 {
			if h%2 == 0 {
				outA, outB = sc.opQ[0], sc.opQ[1]
			} else {
				outA, outB = sc.opQ[2], sc.opQ[3]
			}
		}
		sc.in[0], sc.in[1] = hopA, hopB
		sc.outA, sc.outB = outA, outB
		sc.lkey = &hops[h].levels[ct.Level]
		sc.gtab = hops[h].tab
		b.galoisHop(sc, k, resident)
		hopA, hopB = outA, outB
	}
	return nil
}

// galoisHop applies one automorphism + key switch: permute both
// components (phase 1), scale tau(A) into its gadget digit rows (phase 2,
// the relin digit map verbatim), then accumulate the key inner product
// per tower and land the hop (phase 3). The phases dispatch through the
// worker pool exactly like the multiply's.
func (b *rnsBackend) galoisHop(sc *rnsMulScratch, k int, resident bool) {
	if b.workers == 1 {
		for tau := 0; tau < k; tau++ {
			galoisPermuteTower(sc, tau, resident)
		}
		for i := 0; i < k; i++ {
			relinDigitRow(sc, i)
		}
		for tau := 0; tau < k; tau++ {
			galoisTower(sc, tau, resident)
		}
		return
	}
	ring.ParallelChunks(k, b.workers, func(start, end int) {
		for tau := start; tau < end; tau++ {
			galoisPermuteTower(sc, tau, resident)
		}
	})
	ring.ParallelChunks(k, b.workers, func(start, end int) {
		for i := start; i < end; i++ {
			relinDigitRow(sc, i)
		}
	})
	ring.ParallelChunks(k, b.workers, func(start, end int) {
		for tau := start; tau < end; tau++ {
			galoisTower(sc, tau, resident)
		}
	})
}

// galoisPermuteTower permutes one tower of both ciphertext components:
// tau(A) lands in c2Q in COEFFICIENT form (the gadget decomposition needs
// positional digits), tau(B) lands directly in the hop's output rows, in
// the ciphertext's own domain. Resident rows permute in the evaluation
// domain — a pure index map — and only tau(A) pays an inverse transform.
func galoisPermuteTower(sc *rnsMulScratch, tau int, resident bool) {
	lv := sc.lv
	plan := lv.c.Plans[tau].Generic()
	srcA, srcB := sc.in[0].Res[tau], sc.in[1].Res[tau]
	if resident {
		tmp := sc.evE[0].Res[tau]
		plan.AutomorphismEvalInto(sc.gtab, tmp, srcA)
		plan.NegacyclicInverseInto(sc.c2Q.Res[tau], tmp)
		plan.AutomorphismEvalInto(sc.gtab, sc.outB.Res[tau], srcB)
		return
	}
	plan.AutomorphismCoeffInto(sc.gtab, sc.c2Q.Res[tau], srcA)
	plan.AutomorphismCoeffInto(sc.gtab, sc.outB.Res[tau], srcB)
}

// galoisTower accumulates the k gadget digits of tau(A) against one
// tower of the hop's key rows — the relinTower inner product, including
// the lazy fused-MAC path — and lands the key-switched pair
// (A', B') = (-acc_a, tau(B) - acc_b): the key's b rows encrypt
// tau_g(s) under s, so B' - A'*s = tau(B) - tau(A)*tau(s) + small noise.
func galoisTower(sc *rnsMulScratch, tau int, resident bool) {
	lv := sc.lv
	c := lv.c
	k := c.Channels()
	plan := c.Plans[tau].Generic()
	mod := c.Mods[tau]
	accA, accB := sc.accA.Res[tau], sc.accB.Res[tau]
	clearRow(accA)
	clearRow(accB)
	outA, outB := sc.outA.Res[tau], sc.outB.Res[tau]
	if lv.relinLazy && len(sc.lkey.aPre) == k {
		for i := 0; i < k; i++ {
			ring.NegacyclicForwardMAC2(plan, accA, accB, sc.zQ.Res[i],
				sc.lkey.a[i].Res[tau], sc.lkey.aPre[i].Res[tau],
				sc.lkey.b[i].Res[tau], sc.lkey.bPre[i].Res[tau])
		}
		if resident {
			reduceNegRow(outA, accA, mod)
			reduceSubRow(outB, accB, mod)
			return
		}
		reduceRow(accA, mod)
		reduceRow(accB, mod)
	} else {
		lift, prod := sc.liftQ.Res[tau], sc.prodQ.Res[tau]
		for i := 0; i < k; i++ {
			plan.NegacyclicForwardInto(lift, sc.zQ.Res[i])
			plan.PointwiseMulInto(prod, lift, sc.lkey.a[i].Res[tau])
			addRow(accA, prod, mod)
			plan.PointwiseMulInto(prod, lift, sc.lkey.b[i].Res[tau])
			addRow(accB, prod, mod)
		}
		if resident {
			negRowInto(outA, accA, mod)
			subRow(outB, accB, mod)
			return
		}
	}
	// Coefficient-domain landing: the accumulators live in the
	// evaluation domain; cross them out, then negate/subtract against
	// the already-permuted coefficient rows.
	lift := sc.liftQ.Res[tau]
	plan.NegacyclicInverseInto(lift, accA)
	negRowInto(outA, lift, mod)
	plan.NegacyclicInverseInto(lift, accB)
	subRow(outB, lift, mod)
}

// reduceNegRow lands a lazy accumulator row negated on a canonical row:
// dst[j] = -acc[j] mod q, one Barrett reduction per element.
func reduceNegRow(dst, acc []uint64, mod *modmath.Modulus64) {
	q, mu, nb := mod.Q, mod.Mu, mod.N
	acc = acc[:len(dst)]
	for j := range dst {
		dst[j] = mod.Neg(modmath.Barrett64Reduce(0, acc[j], q, mu, nb))
	}
}

// reduceSubRow lands a lazy accumulator row subtracted from a canonical
// row: dst[j] = dst[j] - acc[j] mod q.
func reduceSubRow(dst, acc []uint64, mod *modmath.Modulus64) {
	q, mu, nb := mod.Q, mod.Mu, mod.N
	acc = acc[:len(dst)]
	for j := range dst {
		dst[j] = mod.Sub(dst[j], modmath.Barrett64Reduce(0, acc[j], q, mu, nb))
	}
}

func negRowInto(dst, src []uint64, mod *modmath.Modulus64) {
	for j := range dst {
		dst[j] = mod.Neg(src[j])
	}
}

func subRow(dst, src []uint64, mod *modmath.Modulus64) {
	for j := range dst {
		dst[j] = mod.Sub(dst[j], src[j])
	}
}

func (b *rnsBackend) setSignedCtx(c *rns.Context, dst rns.Poly, coeffs []int64) {
	for i, mod := range c.Mods {
		row := dst.Res[i]
		for j, e := range coeffs {
			if e >= 0 {
				row[j] = uint64(e) % mod.Q
			} else {
				row[j] = mod.Neg(uint64(-e) % mod.Q)
			}
		}
	}
}

// tensorTower computes one tower's share of the ciphertext tensor
// product: four twisted forward transforms, four pointwise products, and
// three inverse transforms yield c0 = b1*b2, c1 = a1*b2 + a2*b1 and
// c2 = a1*a2 for that tower.
func tensorTower(plan *ring.Plan[uint64, ring.Shoup64], mod *modmath.Modulus64,
	a1, b1, a2, b2 []uint64, ev *[5][]uint64, o0, o1, o2 []uint64) {
	plan.NegacyclicForwardInto(ev[0], a1)
	plan.NegacyclicForwardInto(ev[1], b1)
	plan.NegacyclicForwardInto(ev[2], a2)
	plan.NegacyclicForwardInto(ev[3], b2)
	plan.PointwiseMulInto(ev[4], ev[1], ev[3]) // b1 ∘ b2
	plan.NegacyclicInverseInto(o0, ev[4])
	plan.PointwiseMulInto(ev[4], ev[0], ev[2]) // a1 ∘ a2
	plan.NegacyclicInverseInto(o2, ev[4])
	plan.PointwiseMulInto(ev[4], ev[0], ev[3]) // a1 ∘ b2
	plan.PointwiseMulInto(ev[0], ev[2], ev[1]) // a2 ∘ b1
	r4, r0 := ev[4], ev[0]
	for j := range r4 {
		r4[j] = mod.Add(r4[j], r0[j])
	}
	plan.NegacyclicInverseInto(o1, ev[4])
}

// scaleRound turns one tensor component held in (cQ, cE) into the scaled
// ciphertext component round(T*v/Q_l) mod Q_l, written back into cQ:
// w = T*v + floor(Q_l/2) in both bases, FastBConv of w's Q-remainder into
// the extension base, y = (w - [w]_Q)/Q_l there, and the exact
// Shenoy-Kumaresan conversion back to Q_l. The FastBConv overshoot
// divides down to an additive error below k+1 — noise, not wrongness.
func (lv *rnsLevel) scaleRound(sc *rnsMulScratch, cQ, cE rns.Poly) {
	for i, mod := range lv.c.Mods {
		plan := lv.c.Plans[i].Generic()
		plan.ScalarMulInto(cQ.Res[i], cQ.Res[i], lv.tResQ[i])
		addConstRow(cQ.Res[i], mod, lv.hResQ[i])
	}
	for j, mod := range lv.ext.Mods {
		plan := lv.ext.Plans[j].Generic()
		plan.ScalarMulInto(cE.Res[j], cE.Res[j], lv.tResE[j])
		addConstRow(cE.Res[j], mod, lv.hResE[j])
	}
	must(lv.conv.ConvertInto(sc.convE, cQ))
	for j, mod := range lv.ext.Mods {
		we, ce := cE.Res[j], sc.convE.Res[j]
		for idx := range we {
			we[idx] = mod.Sub(we[idx], ce[idx])
		}
		lv.ext.Plans[j].Generic().ScalarMulInto(we, we, lv.qInvE[j])
	}
	must(lv.skConv.ConvertInto(cQ, cE))
}

func addConstRow(row []uint64, mod *modmath.Modulus64, v uint64) {
	for j := range row {
		row[j] = mod.Add(row[j], v)
	}
}

// MulCt is the BEHZ homomorphic multiply in the operands' level basis:
// m~-corrected base extension (no operand overshoot), tensor,
// divide-and-round by Q_l/T, exact return to base Q_l, and CRT-gadget
// relinearization with the level's NTT-domain keys — residues end to end,
// no big integers anywhere, zero allocations in steady state when workers
// == 1. dst must not alias the inputs. The two operand domains select the
// two pipelines described on rnsBackend; they produce bit-identical
// ciphertexts up to the final exact transform.
func (b *rnsBackend) MulCt(dst *BackendCiphertext, ct1, ct2 BackendCiphertext, rlk BackendRelinKey) error {
	return b.MulCtCtx(context.Background(), dst, ct1, ct2, rlk)
}

// MulCtCtx is MulCt with the DeadlineBackend contract: ctx is observed at
// the four BEHZ phase boundaries (base extension, tensor,
// divide-and-round, relinearization) and the multiply aborts with
// ctx.Err() — dst then holds garbage the scheme layer never returns. The
// pooled scratch frame goes back to the pool on every ordinary exit,
// including cancellation (the frame is intact, just abandoned mid-math);
// a PANIC unwinding through the multiply quarantines it instead, because
// a torn frame must never serve the next request.
func (b *rnsBackend) MulCtCtx(ctx context.Context, dst *BackendCiphertext, ct1, ct2 BackendCiphertext, rlk BackendRelinKey) error {
	key, ok := rlk.(*rnsRelinKey)
	if !ok {
		return fmt.Errorf("fhe: foreign relinearization key %T on the %s backend", rlk, b.Name())
	}
	if ct1.Level != ct2.Level || dst.Level != ct1.Level {
		return fmt.Errorf("fhe: MulCt level mismatch: %d, %d -> %d", ct1.Level, ct2.Level, dst.Level)
	}
	if ct1.Domain != ct2.Domain || dst.Domain != ct1.Domain {
		return fmt.Errorf("fhe: MulCt domain mismatch: %s, %s -> %s", ct1.Domain, ct2.Domain, dst.Domain)
	}
	if ct1.Level < 0 || ct1.Level >= len(b.levels) {
		return fmt.Errorf("fhe: level %d outside the %d-level chain", ct1.Level, len(b.levels))
	}
	resident := ct1.Domain == DomainNTT
	if resident && !key.nttDomain {
		// The coefficient-domain key layout exists as the PR 4 benchmark
		// axis; the resident pipeline's relin accumulation assumes key rows
		// already transformed. Callers measuring that axis hold
		// coefficient-domain ciphertexts (ConvertDomain) anyway.
		return fmt.Errorf("fhe: coefficient-domain relin keys require coefficient-domain ciphertexts")
	}
	lv := b.levels[ct1.Level]
	c, ext := lv.c, lv.ext
	k, m := c.Channels(), ext.Channels()
	// A key of the right TYPE can still come from a different backend
	// instance (other tower count, other N): validate its chain depth and
	// per-level shape before the digit loop indexes into it.
	if ct1.Level >= len(key.levels) {
		return fmt.Errorf("fhe: relin key covers %d levels, ciphertext at level %d", len(key.levels), ct1.Level)
	}
	lkey := &key.levels[ct1.Level]
	if len(lkey.a) != k || len(lkey.b) != k {
		return fmt.Errorf("fhe: relin key has %d digits at level %d, want %d", len(lkey.a), ct1.Level, k)
	}
	for i := 0; i < k; i++ {
		if len(lkey.a[i].Res) != k || len(lkey.b[i].Res) != k ||
			len(lkey.a[i].Res[0]) != c.N || len(lkey.b[i].Res[0]) != c.N {
			return fmt.Errorf("fhe: relin key digit %d shaped for another backend", i)
		}
	}
	a1, ok1 := ct1.A.(rns.Poly)
	b1, ok2 := ct1.B.(rns.Poly)
	a2, ok3 := ct2.A.(rns.Poly)
	b2, ok4 := ct2.B.(rns.Poly)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return fmt.Errorf("fhe: foreign ciphertext handle on the %s backend", b.Name())
	}
	dstA, okA := dst.A.(rns.Poly)
	dstB, okB := dst.B.(rns.Poly)
	if !okA || !okB {
		return fmt.Errorf("fhe: foreign destination handle on the %s backend", b.Name())
	}
	if len(dstA.Res) != k || len(dstB.Res) != k ||
		len(dstA.Res[0]) != c.N || len(dstB.Res[0]) != c.N {
		return fmt.Errorf("fhe: MulCt destination not shaped for level %d", ct1.Level)
	}
	sc := lv.mulPool.Get().(*rnsMulScratch)
	defer func() {
		if r := recover(); r != nil {
			// The panic unwound mid-pipeline: sc may be torn. Quarantine
			// it (the GC reclaims it, the pool refills fresh) and let the
			// panic continue to the caller's recovery layer.
			quarantinedScratch.Add(1)
			panic(r)
		}
		// Drop the caller's polynomials from the pooled frame so the pool
		// never pins live ciphertext storage between multiplies.
		sc.lv, sc.lkey = nil, nil
		sc.in = [4]rns.Poly{}
		sc.outA, sc.outB = rns.Poly{}, rns.Poly{}
		lv.mulPool.Put(sc)
	}()
	sc.lv = lv
	sc.in = [4]rns.Poly{a1, b1, a2, b2}
	sc.outA, sc.outB = dstA, dstB
	sc.lkey = lkey
	sc.keyNTTDomain = key.nttDomain
	sc.squaring = sameRows(a1, a2) && sameRows(b1, b2)

	if resident {
		return b.mulResident(ctx, lv, sc)
	}
	if b.workers == 1 {
		return b.mulCoeffSequential(ctx, lv, sc, k, m)
	}
	return b.mulCoeffParallel(ctx, lv, sc, k, m)
}

// sameRows reports whether two polynomials share their row storage — the
// squaring detection the resident pipeline uses to base-extend and
// transform aliased operands once instead of twice.
func sameRows(a, b rns.Poly) bool {
	if len(a.Res) != len(b.Res) {
		return false
	}
	for i := range a.Res {
		if len(a.Res[i]) == 0 || len(b.Res[i]) == 0 || &a.Res[i][0] != &b.Res[i][0] {
			return false
		}
	}
	return true
}

// mulCoeffSequential is the PR 5 coefficient-domain pipeline, verbatim:
// the explicit loops (no dispatch closures) are what escape analysis
// keeps allocation-free, and it is the bit-exact baseline the resident
// pipeline is measured and differentially tested against.
func (b *rnsBackend) mulCoeffSequential(ctx context.Context, lv *rnsLevel, sc *rnsMulScratch, k, m int) error {
	c, ext := lv.c, lv.ext

	// 1. Base-extend the four operand polynomials into the extension
	// base with the m~ correction: extended values are x + gamma*Q with
	// gamma in {-1, 0}, so the tensor headroom validated at construction
	// carries no k*Q operand overshoot.
	if err := phaseGate(ctx, faultinject.SiteMulExtend); err != nil {
		return err
	}
	for i := range sc.in {
		if err := lv.mconv.ConvertInto(sc.opE[i], sc.in[i]); err != nil {
			return err
		}
	}

	// 2. Tensor product, tower by tower across both bases.
	if err := phaseGate(ctx, faultinject.SiteMulTensor); err != nil {
		return err
	}
	for tau := 0; tau < k; tau++ {
		tensorTower(c.Plans[tau].Generic(), c.Mods[tau],
			sc.in[0].Res[tau], sc.in[1].Res[tau], sc.in[2].Res[tau], sc.in[3].Res[tau],
			&sc.ev, sc.c0Q.Res[tau], sc.c1Q.Res[tau], sc.c2Q.Res[tau])
	}
	for tau := 0; tau < m; tau++ {
		tensorTower(ext.Plans[tau].Generic(), ext.Mods[tau],
			sc.opE[0].Res[tau], sc.opE[1].Res[tau], sc.opE[2].Res[tau], sc.opE[3].Res[tau],
			&sc.ev, sc.c0E.Res[tau], sc.c1E.Res[tau], sc.c2E.Res[tau])
	}

	// 3. Divide-and-round each component by Q_l/T; results land in the
	// c*Q polys as the degree-2 scaled ciphertext.
	if err := phaseGate(ctx, faultinject.SiteMulScale); err != nil {
		return err
	}
	lv.scaleRound(sc, sc.c0Q, sc.c0E)
	lv.scaleRound(sc, sc.c1Q, sc.c1E)
	lv.scaleRound(sc, sc.c2Q, sc.c2E)

	if err := phaseGate(ctx, faultinject.SiteMulRelin); err != nil {
		return err
	}
	// 4. Relinearize: the towers of c2 are the gadget digits. Everything
	// accumulates in the evaluation domain; one inverse per tower at the
	// end. With NTT-domain keys (the default) the key rows are already
	// transformed; coefficient-domain keys pay two forward transforms per
	// digit-tower pair right here — the cost the per-level NTT layout
	// removes.
	for tau := 0; tau < k; tau++ {
		clearRow(sc.accA.Res[tau])
		clearRow(sc.accB.Res[tau])
	}
	for i := 0; i < k; i++ {
		c.Plans[i].Generic().ScalarMulInto(sc.zrow, sc.c2Q.Res[i], c.QiInv(i))
		for tau := 0; tau < k; tau++ {
			mod := c.Mods[tau]
			q := mod.Q
			for j, v := range sc.zrow {
				// One conditional subtract lifts the digit into tower
				// tau (same-width basis, validated at construction).
				if v >= q {
					v -= q
				}
				sc.lift[j] = v
			}
			plan := c.Plans[tau].Generic()
			plan.NegacyclicForwardInto(sc.lift, sc.lift)
			krowA, krowB := sc.lkey.a[i].Res[tau], sc.lkey.b[i].Res[tau]
			if !sc.keyNTTDomain {
				plan.NegacyclicForwardInto(sc.ev[0], krowA)
				plan.NegacyclicForwardInto(sc.ev[1], krowB)
				krowA, krowB = sc.ev[0], sc.ev[1]
			}
			plan.PointwiseMulInto(sc.prod, sc.lift, krowA)
			addRow(sc.accA.Res[tau], sc.prod, mod)
			plan.PointwiseMulInto(sc.prod, sc.lift, krowB)
			addRow(sc.accB.Res[tau], sc.prod, mod)
		}
	}
	for tau := 0; tau < k; tau++ {
		plan := c.Plans[tau].Generic()
		mod := c.Mods[tau]
		plan.NegacyclicInverseInto(sc.outA.Res[tau], sc.accA.Res[tau])
		addRow(sc.outA.Res[tau], sc.c1Q.Res[tau], mod)
		plan.NegacyclicInverseInto(sc.outB.Res[tau], sc.accB.Res[tau])
		addRow(sc.outB.Res[tau], sc.c0Q.Res[tau], mod)
	}
	return nil
}

// mulCoeffParallel is the coefficient-domain pipeline with its per-tower
// phases dispatched through the worker pool: same math, same bits, the
// tensor and relin towers running concurrently on per-tower-disjoint
// scratch rows. The base conversions stay sequential (they carry
// cross-tower accumulations).
func (b *rnsBackend) mulCoeffParallel(ctx context.Context, lv *rnsLevel, sc *rnsMulScratch, k, m int) error {
	if err := phaseGate(ctx, faultinject.SiteMulExtend); err != nil {
		return err
	}
	for i := range sc.in {
		if err := lv.mconv.ConvertInto(sc.opE[i], sc.in[i]); err != nil {
			return err
		}
	}
	if err := phaseGate(ctx, faultinject.SiteMulTensor); err != nil {
		return err
	}
	ring.ParallelChunks(k, b.workers, func(start, end int) {
		for tau := start; tau < end; tau++ {
			coeffTensorQ(sc, tau)
		}
	})
	ring.ParallelChunks(m, b.workers, func(start, end int) {
		for tau := start; tau < end; tau++ {
			coeffTensorExt(sc, tau)
		}
	})
	if err := phaseGate(ctx, faultinject.SiteMulScale); err != nil {
		return err
	}
	lv.scaleRound(sc, sc.c0Q, sc.c0E)
	lv.scaleRound(sc, sc.c1Q, sc.c1E)
	lv.scaleRound(sc, sc.c2Q, sc.c2E)
	if err := phaseGate(ctx, faultinject.SiteMulRelin); err != nil {
		return err
	}
	ring.ParallelChunks(k, b.workers, func(start, end int) {
		for i := start; i < end; i++ {
			relinDigitRow(sc, i)
		}
	})
	ring.ParallelChunks(k, b.workers, func(start, end int) {
		for tau := start; tau < end; tau++ {
			relinTower(sc, tau, false)
		}
	})
	return nil
}

// mulResident is the NTT-resident BEHZ multiply (see the rnsBackend doc):
// the Q-base tensor consumes the operands' resident evaluation form
// directly, coefficient form appears exactly where base conversion needs
// positional digits, the divide-and-round runs as fused one-pass kernels,
// and the result is returned resident.
func (b *rnsBackend) mulResident(ctx context.Context, lv *rnsLevel, sc *rnsMulScratch) error {
	k, m := lv.c.Channels(), lv.ext.Channels()
	seq := b.workers == 1
	nops := 4
	if sc.squaring {
		nops = 2
	}

	// 1. Operands cross to coefficient form once — nops*k independent
	// tower transforms — and base-extend with the m~ correction. Squared
	// operands (identical rows, the ladder's dominant workload) make the
	// crossing and both extensions once.
	if err := phaseGate(ctx, faultinject.SiteMulExtend); err != nil {
		return err
	}
	if seq {
		for u := 0; u < nops*k; u++ {
			residentOpINTT(sc, u)
		}
	} else {
		ring.ParallelChunks(nops*k, b.workers, func(start, end int) {
			for u := start; u < end; u++ {
				residentOpINTT(sc, u)
			}
		})
	}
	for i := 0; i < nops; i++ {
		if err := lv.mconv.ConvertInto(sc.opE[i], sc.opQ[i]); err != nil {
			return err
		}
	}

	// 2. Tensor product. Q base: the operands are already evaluation
	// rows, so each tower is three pointwise products and three inverse
	// transforms — the forward half of the PR 5 tensor is gone. Ext base:
	// the extended operands are coefficient rows; squaring halves the
	// forward transforms.
	if err := phaseGate(ctx, faultinject.SiteMulTensor); err != nil {
		return err
	}
	if seq {
		for tau := 0; tau < k; tau++ {
			residentTensorQ(sc, tau)
		}
		for tau := 0; tau < m; tau++ {
			residentTensorExt(sc, tau)
		}
	} else {
		ring.ParallelChunks(k, b.workers, func(start, end int) {
			for tau := start; tau < end; tau++ {
				residentTensorQ(sc, tau)
			}
		})
		ring.ParallelChunks(m, b.workers, func(start, end int) {
			for tau := start; tau < end; tau++ {
				residentTensorExt(sc, tau)
			}
		})
	}

	// 3. Fused divide-and-round per component.
	if err := phaseGate(ctx, faultinject.SiteMulScale); err != nil {
		return err
	}
	b.residentScaleRound(lv, sc, sc.c0Q, sc.c0E)
	b.residentScaleRound(lv, sc, sc.c1Q, sc.c1E)
	b.residentScaleRound(lv, sc, sc.c2Q, sc.c2E)

	// 4. Relinearize and return resident: digit rows once, then each
	// tower accumulates its k digit transforms and adds NTT(c1/c0) to the
	// evaluation-domain accumulators instead of leaving the domain.
	if err := phaseGate(ctx, faultinject.SiteMulRelin); err != nil {
		return err
	}
	if seq {
		for i := 0; i < k; i++ {
			relinDigitRow(sc, i)
		}
		for tau := 0; tau < k; tau++ {
			relinTower(sc, tau, true)
		}
	} else {
		ring.ParallelChunks(k, b.workers, func(start, end int) {
			for i := start; i < end; i++ {
				relinDigitRow(sc, i)
			}
		})
		ring.ParallelChunks(k, b.workers, func(start, end int) {
			for tau := start; tau < end; tau++ {
				relinTower(sc, tau, true)
			}
		})
	}
	return nil
}

// residentOpINTT inverse-transforms one (operand, tower) cell of the
// resident operands into its pooled coefficient row.
func residentOpINTT(sc *rnsMulScratch, u int) {
	k := sc.lv.c.Channels()
	idx, tau := u/k, u%k
	sc.lv.c.Plans[tau].Generic().NegacyclicInverseInto(sc.opQ[idx].Res[tau], sc.in[idx].Res[tau])
}

// residentTensorQ is one Q-base tower of the resident tensor: pointwise
// products of the operands' resident rows, inverse transforms of the
// three results. Squaring doubles a∘b instead of computing the symmetric
// product twice.
func residentTensorQ(sc *rnsMulScratch, tau int) {
	lv := sc.lv
	plan := lv.c.Plans[tau].Generic()
	mod := lv.c.Mods[tau]
	a1, b1 := sc.in[0].Res[tau], sc.in[1].Res[tau]
	a2, b2 := sc.in[2].Res[tau], sc.in[3].Res[tau]
	t0, t1 := sc.evE[0].Res[tau], sc.evE[1].Res[tau]
	plan.PointwiseMulInto(t0, b1, b2)
	plan.NegacyclicInverseInto(sc.c0Q.Res[tau], t0)
	plan.PointwiseMulInto(t0, a1, a2)
	plan.NegacyclicInverseInto(sc.c2Q.Res[tau], t0)
	plan.PointwiseMulInto(t0, a1, b2)
	if sc.squaring {
		addRow(t0, t0, mod) // a1∘b2 == a2∘b1: double instead of recompute
	} else {
		plan.PointwiseMulInto(t1, a2, b1)
		addRow(t0, t1, mod)
	}
	plan.NegacyclicInverseInto(sc.c1Q.Res[tau], t0)
}

// residentTensorExt is one extension-base tower of the resident tensor,
// consuming the base-extended coefficient rows.
func residentTensorExt(sc *rnsMulScratch, tau int) {
	lv := sc.lv
	plan := lv.ext.Plans[tau].Generic()
	mod := lv.ext.Mods[tau]
	var ev [5][]uint64
	for s := range ev {
		ev[s] = sc.evE[s].Res[tau]
	}
	if sc.squaring {
		a, bb := sc.opE[0].Res[tau], sc.opE[1].Res[tau]
		plan.NegacyclicForwardInto(ev[0], a)
		plan.NegacyclicForwardInto(ev[1], bb)
		plan.PointwiseMulInto(ev[2], ev[1], ev[1])
		plan.NegacyclicInverseInto(sc.c0E.Res[tau], ev[2])
		plan.PointwiseMulInto(ev[2], ev[0], ev[0])
		plan.NegacyclicInverseInto(sc.c2E.Res[tau], ev[2])
		plan.PointwiseMulInto(ev[2], ev[0], ev[1])
		addRow(ev[2], ev[2], mod)
		plan.NegacyclicInverseInto(sc.c1E.Res[tau], ev[2])
		return
	}
	tensorTower(plan, mod,
		sc.opE[0].Res[tau], sc.opE[1].Res[tau], sc.opE[2].Res[tau], sc.opE[3].Res[tau],
		&ev, sc.c0E.Res[tau], sc.c1E.Res[tau], sc.c2E.Res[tau])
}

// residentScaleRound is the fused divide-and-round: the Q-side digit of
// the scaled tensor lands in one pass per tower (z_i = v_i*tQiInv +
// hQiInv feeds the accumulate-only ConvertDigitsInto), and the extension
// side folds its two scalar passes and the conversion subtraction into
// one loop. Bit-identical to rnsLevel.scaleRound — same residues, fewer
// memory passes.
func (b *rnsBackend) residentScaleRound(lv *rnsLevel, sc *rnsMulScratch, cQ, cE rns.Poly) {
	k, m := lv.c.Channels(), lv.ext.Channels()
	if b.workers == 1 {
		for i := 0; i < k; i++ {
			residentDigitRow(sc, cQ, i)
		}
	} else {
		ring.ParallelChunks(k, b.workers, func(start, end int) {
			for i := start; i < end; i++ {
				residentDigitRow(sc, cQ, i)
			}
		})
	}
	must(lv.conv.ConvertDigitsInto(sc.convE, sc.zQ))
	if b.workers == 1 {
		for j := 0; j < m; j++ {
			residentExtRound(sc, cE, j)
		}
	} else {
		ring.ParallelChunks(m, b.workers, func(start, end int) {
			for j := start; j < end; j++ {
				residentExtRound(sc, cE, j)
			}
		})
	}
	must(lv.skConv.ConvertInto(cQ, cE))
}

// residentDigitRow computes one tower's FastBConv digit of the scaled
// tensor in a single pass: z = v*(T*QiInv) + h*QiInv mod q_i.
func residentDigitRow(sc *rnsMulScratch, cQ rns.Poly, i int) {
	lv := sc.lv
	mod := lv.c.Mods[i]
	v, z := cQ.Res[i], sc.zQ.Res[i]
	tq, tqPre, hq := lv.tQiInv[i], lv.tQiInvPre[i], lv.hQiInv[i]
	for j := range v {
		z[j] = mod.Add(mod.MulShoup(v[j], tq, tqPre), hq)
	}
}

// residentExtRound finishes one extension tower of the divide-and-round
// in a single pass: w = T*v + h, then (w - [w]_Q) * Q^-1.
func residentExtRound(sc *rnsMulScratch, cE rns.Poly, j int) {
	lv := sc.lv
	mod := lv.ext.Mods[j]
	we, ce := cE.Res[j], sc.convE.Res[j]
	tE, tEPre, hE := lv.tResE[j], lv.tResEPre[j], lv.hResE[j]
	qInv, qInvPre := lv.qInvE[j], lv.qInvEPre[j]
	for idx := range we {
		w := mod.Add(mod.MulShoup(we[idx], tE, tEPre), hE)
		we[idx] = mod.MulShoup(mod.Sub(w, ce[idx]), qInv, qInvPre)
	}
}

// relinDigitRow scales one tower of c2 into its CRT gadget digit row.
func relinDigitRow(sc *rnsMulScratch, i int) {
	c := sc.lv.c
	c.Plans[i].Generic().ScalarMulInto(sc.zQ.Res[i], sc.c2Q.Res[i], c.QiInv(i))
}

// relinTower accumulates all k gadget digits into one tower of the
// relinearized result, entirely in the evaluation domain, then lands the
// tower's output: resident output adds NTT(c1/c0) to the accumulators
// (NTT(INTT(acc) + c) = acc + NTT(c), exactly); coefficient output
// inverse-transforms the accumulators and adds c1/c0 as PR 5 did. The
// digit rows are canonical mod q_i with q_i < 2*q_tau, and the twist
// pass's Shoup multiply is exact for any 64-bit input, so they feed the
// forward transform directly — the per-pair reduction copy of the
// sequential path is gone.
func relinTower(sc *rnsMulScratch, tau int, resident bool) {
	lv := sc.lv
	c := lv.c
	k := c.Channels()
	plan := c.Plans[tau].Generic()
	mod := c.Mods[tau]
	accA, accB := sc.accA.Res[tau], sc.accB.Res[tau]
	clearRow(accA)
	clearRow(accB)
	lift, prod := sc.liftQ.Res[tau], sc.prodQ.Res[tau]
	if sc.keyNTTDomain && lv.relinLazy && len(sc.lkey.aPre) == k {
		// Deferred-reduction inner product: the key rows are fixed, so
		// each digit contributes one lazy Shoup product (< 2q) folded in
		// with a plain integer add — relinLazy guarantees k of them fit
		// the 64-bit accumulator — and the whole k-digit sum pays a
		// single Barrett reduction per element at the end. Same residues
		// as the canonical multiply-add chain, reduced once. The digit
		// transform and both key-row MACs run as one fused pass
		// (NegacyclicForwardMAC2): the final NTT stage's outputs are
		// accumulated as they are produced instead of being written out
		// and streamed back twice per digit.
		for i := 0; i < k; i++ {
			ring.NegacyclicForwardMAC2(plan, accA, accB, sc.zQ.Res[i],
				sc.lkey.a[i].Res[tau], sc.lkey.aPre[i].Res[tau],
				sc.lkey.b[i].Res[tau], sc.lkey.bPre[i].Res[tau])
		}
		if resident {
			plan.NegacyclicForwardInto(sc.outA.Res[tau], sc.c1Q.Res[tau])
			reduceAddRow(sc.outA.Res[tau], accA, mod)
			plan.NegacyclicForwardInto(sc.outB.Res[tau], sc.c0Q.Res[tau])
			reduceAddRow(sc.outB.Res[tau], accB, mod)
			return
		}
		// The inverse transform wants its relaxed domain (< 2q), not a
		// raw 64-bit sum: land the accumulators first.
		reduceRow(accA, mod)
		reduceRow(accB, mod)
		plan.NegacyclicInverseInto(sc.outA.Res[tau], accA)
		addRow(sc.outA.Res[tau], sc.c1Q.Res[tau], mod)
		plan.NegacyclicInverseInto(sc.outB.Res[tau], accB)
		addRow(sc.outB.Res[tau], sc.c0Q.Res[tau], mod)
		return
	}
	for i := 0; i < k; i++ {
		plan.NegacyclicForwardInto(lift, sc.zQ.Res[i])
		krowA, krowB := sc.lkey.a[i].Res[tau], sc.lkey.b[i].Res[tau]
		if !sc.keyNTTDomain {
			plan.NegacyclicForwardInto(sc.evE[2].Res[tau], krowA)
			plan.NegacyclicForwardInto(sc.evE[3].Res[tau], krowB)
			krowA, krowB = sc.evE[2].Res[tau], sc.evE[3].Res[tau]
		}
		plan.PointwiseMulInto(prod, lift, krowA)
		addRow(accA, prod, mod)
		plan.PointwiseMulInto(prod, lift, krowB)
		addRow(accB, prod, mod)
	}
	if resident {
		plan.NegacyclicForwardInto(sc.outA.Res[tau], sc.c1Q.Res[tau])
		addRow(sc.outA.Res[tau], accA, mod)
		plan.NegacyclicForwardInto(sc.outB.Res[tau], sc.c0Q.Res[tau])
		addRow(sc.outB.Res[tau], accB, mod)
		return
	}
	plan.NegacyclicInverseInto(sc.outA.Res[tau], accA)
	addRow(sc.outA.Res[tau], sc.c1Q.Res[tau], mod)
	plan.NegacyclicInverseInto(sc.outB.Res[tau], accB)
	addRow(sc.outB.Res[tau], sc.c0Q.Res[tau], mod)
}

// mulPreAddRow folds one lazy Shoup product row into a raw 64-bit
// accumulator row: acc[j] += a[j]*w[j] - floor(a[j]*pre[j]/2^64)*q, each
// summand < 2q and congruent to a[j]*w[j] mod q for any 64-bit a[j].
// Callers guarantee the no-wrap headroom (rnsLevel.relinLazy).
//
//mqx:hotpath
//mqx:lazy wide=a,acc
func mulPreAddRow(acc, a, w, pre []uint64, q uint64) {
	a = a[:len(acc)]
	w = w[:len(acc)]
	pre = pre[:len(acc)]
	for j := range acc {
		qhat, _ := bits.Mul64(a[j], pre[j])
		acc[j] += a[j]*w[j] - qhat*q
	}
}

// reduceAddRow lands a lazy accumulator row on a canonical row:
// dst[j] = dst[j] + acc[j] mod q, one Barrett reduction per element for
// the whole deferred inner product.
//
//mqx:hotpath
func reduceAddRow(dst, acc []uint64, mod *modmath.Modulus64) {
	q, mu, nb := mod.Q, mod.Mu, mod.N
	acc = acc[:len(dst)]
	for j := range dst {
		dst[j] = mod.Add(dst[j], modmath.Barrett64Reduce(0, acc[j], q, mu, nb))
	}
}

// reduceRow reduces a lazy accumulator row in place to canonical form.
func reduceRow(acc []uint64, mod *modmath.Modulus64) {
	q, mu, nb := mod.Q, mod.Mu, mod.N
	for j := range acc {
		acc[j] = modmath.Barrett64Reduce(0, acc[j], q, mu, nb)
	}
}

// coeffTensorQ is one Q-base tower of the coefficient-domain tensor on
// per-tower-disjoint scratch (the parallel dispatch variant).
func coeffTensorQ(sc *rnsMulScratch, tau int) {
	lv := sc.lv
	var ev [5][]uint64
	for s := range ev {
		ev[s] = sc.evE[s].Res[tau]
	}
	tensorTower(lv.c.Plans[tau].Generic(), lv.c.Mods[tau],
		sc.in[0].Res[tau], sc.in[1].Res[tau], sc.in[2].Res[tau], sc.in[3].Res[tau],
		&ev, sc.c0Q.Res[tau], sc.c1Q.Res[tau], sc.c2Q.Res[tau])
}

// coeffTensorExt is one extension-base tower of the same.
func coeffTensorExt(sc *rnsMulScratch, tau int) {
	lv := sc.lv
	var ev [5][]uint64
	for s := range ev {
		ev[s] = sc.evE[s].Res[tau]
	}
	tensorTower(lv.ext.Plans[tau].Generic(), lv.ext.Mods[tau],
		sc.opE[0].Res[tau], sc.opE[1].Res[tau], sc.opE[2].Res[tau], sc.opE[3].Res[tau],
		&ev, sc.c0E.Res[tau], sc.c1E.Res[tau], sc.c2E.Res[tau])
}

// ModSwitch drops one tower: dst = round(ct / q_{k-1-l}) via the PR 4
// Rescaler, residues only, allocation-free in steady state — the RNS
// half of the ladder the oracle's big-integer switch ground-truths.
func (b *rnsBackend) ModSwitch(dst *BackendCiphertext, ct BackendCiphertext) error {
	return b.ModSwitchCtx(context.Background(), dst, ct)
}

// ModSwitchCtx is ModSwitch with the DeadlineBackend contract: ctx is
// observed before the rescale starts and between the two components.
func (b *rnsBackend) ModSwitchCtx(ctx context.Context, dst *BackendCiphertext, ct BackendCiphertext) error {
	if ct.Level < 0 || ct.Level+1 >= len(b.levels) {
		return fmt.Errorf("fhe: cannot switch below level %d of a %d-level chain", ct.Level, len(b.levels))
	}
	if dst.Level != ct.Level+1 {
		return fmt.Errorf("fhe: ModSwitch destination at level %d, want %d", dst.Level, ct.Level+1)
	}
	if dst.Domain != ct.Domain {
		return fmt.Errorf("fhe: ModSwitch domain mismatch: %s -> %s", ct.Domain, dst.Domain)
	}
	srcA, ok1 := ct.A.(rns.Poly)
	srcB, ok2 := ct.B.(rns.Poly)
	if !ok1 || !ok2 {
		return fmt.Errorf("fhe: foreign ciphertext handle on the %s backend", b.Name())
	}
	dstA, ok3 := dst.A.(rns.Poly)
	dstB, ok4 := dst.B.(rns.Poly)
	if !ok3 || !ok4 {
		return fmt.Errorf("fhe: foreign destination handle on the %s backend", b.Name())
	}
	if err := phaseGate(ctx, faultinject.SiteModSwitch); err != nil {
		return err
	}
	r := b.levels[ct.Level].rescale
	if ct.Domain == DomainNTT {
		// Resident rescale: one inverse transform (the dropped tower)
		// plus k-1 forward transforms of the correction term, instead of
		// crossing the whole ciphertext out of the evaluation domain and
		// back.
		if err := r.RescaleNTTInto(dstA, srcA, b.workers); err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		return r.RescaleNTTInto(dstB, srcB, b.workers)
	}
	if err := r.RescaleInto(dstA, srcA); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return r.RescaleInto(dstB, srcB)
}

// MulNoiseModel exposes the MulNoiseBoundBits parameters of the RNS
// pipeline at a level: the gadget digits are the towers themselves (one
// per channel, each below the widest tower modulus), and the m~-corrected
// base extension bounds the operand overshoot at 1.
func (b *rnsBackend) MulNoiseModel(level int) (digits, digitBits, overshoot int) {
	lv := b.levels[level]
	for _, mod := range lv.c.Mods {
		if bl := bits.Len64(mod.Q); bl > digitBits {
			digitBits = bl
		}
	}
	return lv.c.Channels(), digitBits, 1
}

func clearRow(row []uint64) {
	for j := range row {
		row[j] = 0
	}
}

//mqx:hotpath
func addRow(dst, src []uint64, mod *modmath.Modulus64) {
	for j := range dst {
		dst[j] = mod.Add(dst[j], src[j])
	}
}
