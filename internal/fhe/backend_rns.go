package fhe

import (
	"fmt"
	"math/big"
	"math/bits"
	"math/rand"
	"sync"

	"mqxgo/internal/modmath"
	"mqxgo/internal/ring"
	"mqxgo/internal/rns"
)

// rnsBackend runs the identical scheme on a basis of 64-bit RNS towers —
// the conventional-hardware philosophy the paper contrasts with double-word
// residues. Ciphertext polynomials stay decomposed (rns.Poly) through
// every homomorphic operation; the CRT is only applied at decryption
// rounding and noise diagnostics, where the full-width value is needed.
//
// Homomorphic multiplication is BEHZ-style and never leaves residue form:
// operands are fast-base-extended (rns.BaseConverter) into a disjoint
// extension base wide enough for the integer tensor product, the tensor
// and the T/Q divide-and-round run tower-by-tower on the plan kernels, and
// the result returns to base Q through the exact Shenoy-Kumaresan
// conversion (rns.SKConverter) — the pipeline the README maps function by
// function. All multiply state is pooled; steady-state MulCt allocates
// nothing.
type rnsBackend struct {
	c *rns.Context
	t uint64

	delta     *big.Int // floor(Q / T), the plaintext scaling factor
	deltaResT []uint64 // deltaResT[i] = Delta mod q_i
	halfDelta *big.Int
	halfQ     *big.Int
	deltaBits int

	// BEHZ multiply machinery. ext is the extension base: k+1 towers
	// whose product P gives the tensor headroom, plus the redundant
	// Shenoy-Kumaresan modulus m_sk as the last tower.
	ext    *rns.Context
	conv   *rns.BaseConverter // Q -> ext, approximate FastBConv
	skConv *rns.SKConverter   // ext -> Q, exact
	tResQ  []uint64           // T mod q_i
	tResE  []uint64           // T mod e_j
	hResQ  []uint64           // floor(Q/2) mod q_i, the divide-by-Q rounding offset
	hResE  []uint64           // floor(Q/2) mod e_j
	qInvE  []uint64           // Q^-1 mod e_j
	gadget [][]uint64         // gadget[i][tau] = (Q/q_i) mod q_tau, the relin gadget

	mulPool sync.Pool
}

// rnsMulScratch is the pooled working set of one MulCt call.
type rnsMulScratch struct {
	opE              [4]rns.Poly // operands extended to the ext base
	ev               [5][]uint64 // per-tower evaluation-domain rows
	c0Q, c1Q, c2Q    rns.Poly    // tensor, then scaled ciphertext, in Q
	c0E, c1E, c2E    rns.Poly    // tensor in the ext base
	convE            rns.Poly    // FastBConv([w]_Q) landing buffer
	zrow, lift, prod []uint64    // relin digit, lifted digit, product rows
	accA, accB       rns.Poly    // relin evaluation-domain accumulators
}

// NewRNSBackend wraps an RNS context and plaintext modulus t as a
// Backend. t must be at least 2, below every basis prime (so plaintext
// residues are reduced in every tower), small enough that Delta =
// floor(Q/t) is nonzero, and — for the BEHZ multiply's headroom — small
// enough that rescaled tensor coefficients stay below half the extension
// base (validated exactly below).
func NewRNSBackend(c *rns.Context, t uint64) (Backend, error) {
	if t < 2 {
		return nil, fmt.Errorf("fhe: plaintext modulus %d too small", t)
	}
	minQ, maxQ := c.Mods[0].Q, c.Mods[0].Q
	for _, mod := range c.Mods {
		if t >= mod.Q {
			return nil, fmt.Errorf("fhe: plaintext modulus %d not below tower prime %d", t, mod.Q)
		}
		minQ = min(minQ, mod.Q)
		maxQ = max(maxQ, mod.Q)
	}
	if maxQ >= 2*minQ {
		// The relin digit lift reduces a tower-i residue into tower tau
		// with one conditional subtraction, which needs q_i < 2*q_tau.
		return nil, fmt.Errorf("fhe: mixed-width RNS basis unsupported (primes %d and %d)", minQ, maxQ)
	}
	delta := new(big.Int).Div(c.Q, new(big.Int).SetUint64(t))
	if delta.Sign() == 0 {
		return nil, fmt.Errorf("fhe: plaintext modulus %d too large for Q", t)
	}
	b := &rnsBackend{
		c:         c,
		t:         t,
		delta:     delta,
		halfDelta: new(big.Int).Rsh(delta, 1),
		halfQ:     new(big.Int).Rsh(c.Q, 1),
		deltaBits: delta.BitLen(),
	}
	qb := new(big.Int)
	for _, mod := range c.Mods {
		b.deltaResT = append(b.deltaResT, qb.Mod(delta, new(big.Int).SetUint64(mod.Q)).Uint64())
	}
	if err := b.buildMulMachinery(); err != nil {
		return nil, err
	}
	return b, nil
}

// buildMulMachinery constructs the extension base, converters, and
// precomputed residues the BEHZ multiply needs.
func (b *rnsBackend) buildMulMachinery() error {
	c := b.c
	k := c.Channels()
	primeBits := bits.Len64(c.Mods[0].Q)
	// The extension needs k+2 primes (P's k+1 plus m_sk) disjoint from
	// Q's; the deterministic top-down search returns Q's own primes
	// first, so overshoot and filter.
	found, err := modmath.FindNTTPrimes64(primeBits, uint64(2*c.N), 2*k+2)
	if err != nil {
		return fmt.Errorf("fhe: extension base: %w", err)
	}
	inQ := make(map[uint64]bool, k)
	for _, mod := range c.Mods {
		inQ[mod.Q] = true
	}
	var extPrimes []uint64
	for _, p := range found {
		if !inQ[p] && len(extPrimes) < k+2 {
			extPrimes = append(extPrimes, p)
		}
	}
	if len(extPrimes) < k+2 {
		return fmt.Errorf("fhe: only %d extension primes available, need %d", len(extPrimes), k+2)
	}
	ext, err := rns.NewContextForPrimes(extPrimes, c.N)
	if err != nil {
		return err
	}
	conv, err := rns.NewBaseConverter(c, ext)
	if err != nil {
		return err
	}
	skConv, err := rns.NewSKConverter(ext, c)
	if err != nil {
		return err
	}
	b.ext, b.conv, b.skConv = ext, conv, skConv

	// Exact headroom validation, in code rather than folklore. With
	// operands fast-base-extended to values below k*Q, tensor
	// coefficients |v| <= 2n(kQ)^2 and the rescaled |y| <= T*2nk^2*Q +
	// (k+2); the tensor must fit the full base (|w| < Q*E/2) and y must
	// fit the Shenoy-Kumaresan window (|y| < P/2, P = E/m_sk).
	n := new(big.Int).SetInt64(int64(c.N))
	kk := new(big.Int).SetInt64(int64(k))
	vMax := new(big.Int).Mul(kk, c.Q)
	vMax.Mul(vMax, vMax).Mul(vMax, n).Lsh(vMax, 1) // 2n(kQ)^2
	wMax := new(big.Int).Mul(vMax, new(big.Int).SetUint64(b.t))
	wMax.Add(wMax, b.halfQ)
	full := new(big.Int).Mul(c.Q, ext.Q)
	if wMax.Cmp(new(big.Int).Rsh(full, 1)) >= 0 {
		return fmt.Errorf("fhe: tensor product overflows base Q*E for T=%d", b.t)
	}
	yMax := new(big.Int).Div(wMax, c.Q)
	yMax.Add(yMax, new(big.Int).SetInt64(int64(k+2)))
	p := new(big.Int).Div(ext.Q, new(big.Int).SetUint64(ext.Mods[k+1].Q))
	if yMax.Cmp(new(big.Int).Rsh(p, 1)) >= 0 {
		return fmt.Errorf("fhe: rescaled product overflows extension base P for T=%d", b.t)
	}

	t := new(big.Int)
	for i, mod := range c.Mods {
		qb := new(big.Int).SetUint64(mod.Q)
		b.tResQ = append(b.tResQ, b.t%mod.Q)
		b.hResQ = append(b.hResQ, t.Mod(b.halfQ, qb).Uint64())
		row := make([]uint64, k)
		qi := c.QiBig(i)
		for tau, modT := range c.Mods {
			row[tau] = t.Mod(qi, new(big.Int).SetUint64(modT.Q)).Uint64()
		}
		b.gadget = append(b.gadget, row)
	}
	for _, mod := range ext.Mods {
		qb := new(big.Int).SetUint64(mod.Q)
		b.tResE = append(b.tResE, b.t%mod.Q)
		b.hResE = append(b.hResE, t.Mod(b.halfQ, qb).Uint64())
		b.qInvE = append(b.qInvE, mod.Inv(t.Mod(c.Q, qb).Uint64()))
	}
	b.mulPool.New = func() any {
		sc := &rnsMulScratch{
			c0Q: c.NewPoly(), c1Q: c.NewPoly(), c2Q: c.NewPoly(),
			c0E: ext.NewPoly(), c1E: ext.NewPoly(), c2E: ext.NewPoly(),
			convE: ext.NewPoly(),
			accA:  c.NewPoly(), accB: c.NewPoly(),
			zrow: make([]uint64, c.N), lift: make([]uint64, c.N), prod: make([]uint64, c.N),
		}
		for i := range sc.opE {
			sc.opE[i] = ext.NewPoly()
		}
		for i := range sc.ev {
			sc.ev[i] = make([]uint64, c.N)
		}
		return sc
	}
	return nil
}

func (b *rnsBackend) Name() string {
	return fmt.Sprintf("rns-k%d", b.c.Channels())
}

func (b *rnsBackend) N() int               { return b.c.N }
func (b *rnsBackend) PlainModulus() uint64 { return b.t }
func (b *rnsBackend) NewPoly() Poly        { return b.c.NewPoly() }

func (b *rnsBackend) Copy(a Poly) Poly {
	out := b.c.NewPoly()
	for i, row := range a.(rns.Poly).Res {
		copy(out.Res[i], row)
	}
	return out
}

// must panics on shape errors: backend handles are always
// context-shaped, so an error here is a mixed-backend bug.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

func (b *rnsBackend) Add(dst, a, c Poly) {
	must(b.c.AddInto(dst.(rns.Poly), a.(rns.Poly), c.(rns.Poly)))
}

func (b *rnsBackend) Sub(dst, a, c Poly) {
	must(b.c.SubInto(dst.(rns.Poly), a.(rns.Poly), c.(rns.Poly)))
}

func (b *rnsBackend) Neg(dst, a Poly) {
	must(b.c.NegInto(dst.(rns.Poly), a.(rns.Poly)))
}

func (b *rnsBackend) MulNegacyclic(dst, a, c Poly) {
	must(b.c.MulAll(dst.(rns.Poly), a.(rns.Poly), c.(rns.Poly), 0))
}

func (b *rnsBackend) ScalarMul(dst, a Poly, k uint64) {
	must(b.c.ScalarMulUint64Into(dst.(rns.Poly), a.(rns.Poly), k))
}

// SampleUniform draws independent uniform residues per tower, which by
// the CRT is exactly a uniform element of Z_Q.
func (b *rnsBackend) SampleUniform(dst Poly, rng *rand.Rand) {
	d := dst.(rns.Poly)
	for i, mod := range b.c.Mods {
		row := d.Res[i]
		for j := range row {
			row[j] = rng.Uint64() % mod.Q
		}
	}
}

func (b *rnsBackend) SetSigned(dst Poly, coeffs []int64) {
	d := dst.(rns.Poly)
	for i, mod := range b.c.Mods {
		row := d.Res[i]
		for j, e := range coeffs {
			if e >= 0 {
				row[j] = uint64(e) % mod.Q
			} else {
				row[j] = mod.Neg(uint64(-e) % mod.Q)
			}
		}
	}
}

// AddDeltaMsg folds Delta-scaled plaintext into a ciphertext component,
// each tower on its plan's scale-accumulate kernel.
func (b *rnsBackend) AddDeltaMsg(dst, a Poly, msg []uint64) {
	d, x := dst.(rns.Poly), a.(rns.Poly)
	for i := range b.c.Mods {
		b.c.Plans[i].Generic().ScaleAddInto(d.Res[i], x.Res[i], msg, b.deltaResT[i])
	}
}

func (b *rnsBackend) RoundToPlain(a Poly) []uint64 {
	coeffs := make([]*big.Int, b.c.N)
	must(b.c.ReconstructInto(coeffs, a.(rns.Poly)))
	out := make([]uint64, b.c.N)
	for i, x := range coeffs {
		// Round to the nearest multiple of Delta.
		x.Add(x, b.halfDelta).Div(x, b.delta)
		out[i] = x.Uint64() % b.t
	}
	return out
}

func (b *rnsBackend) DeltaBits() int { return b.deltaBits }

func (b *rnsBackend) NoiseBits(a Poly, msg []uint64) int {
	coeffs := make([]*big.Int, b.c.N)
	must(b.c.ReconstructInto(coeffs, a.(rns.Poly)))
	noise := new(big.Int)
	maxBits := 0
	for i, x := range coeffs {
		noise.SetUint64(msg[i] % b.t)
		noise.Mul(noise, b.delta)
		noise.Sub(x, noise)
		noise.Mod(noise, b.c.Q)
		// Centered magnitude.
		if noise.Cmp(b.halfQ) > 0 {
			noise.Sub(b.c.Q, noise)
		}
		if bl := noise.BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	return maxBits
}

// rnsRelinKey holds the RNS-gadget relinearization key: for each tower i,
// an encryption (a_i, a_i*s + e_i + (Q/q_i)*s^2), both components stored
// per tower in the twisted-evaluation domain so relinearization pays one
// forward transform per digit-tower pair and two inverse transforms per
// tower.
type rnsRelinKey struct {
	ahat, bhat []rns.Poly
}

// RelinKeyGen builds the CRT-gadget relinearization key. The gadget
// digits are the towers themselves (z_i = [c2_i * (Q/q_i)^-1]_{q_i}, with
// sum_i z_i*(Q/q_i) = c2 mod Q), so no integer digit extraction is ever
// needed — the decomposition the paper's RNS philosophy already paid for
// is the key-switching gadget.
func (b *rnsBackend) RelinKeyGen(s Poly, rng *rand.Rand) BackendRelinKey {
	c := b.c
	k := c.Channels()
	sk := s.(rns.Poly)
	s2 := c.NewPoly()
	must(c.MulAll(s2, sk, sk, 1))
	noise := make([]int64, c.N)
	e := c.NewPoly()
	key := &rnsRelinKey{}
	for i := 0; i < k; i++ {
		a := c.NewPoly()
		b.SampleUniform(a, rng)
		for j := range noise {
			noise[j] = int64(rng.Intn(2*noiseBound+1) - noiseBound)
		}
		b.SetSigned(e, noise)
		bb := c.NewPoly()
		must(c.MulAll(bb, a, sk, 1)) // a_i * s
		must(c.AddInto(bb, bb, e))   // + e_i
		for tau := 0; tau < k; tau++ {
			// + (Q/q_i mod q_tau) * s^2, on the scale-accumulate kernel.
			c.Plans[tau].Generic().ScaleAddInto(bb.Res[tau], bb.Res[tau], s2.Res[tau], b.gadget[i][tau])
		}
		ahat, bhat := c.NewPoly(), c.NewPoly()
		for tau := 0; tau < k; tau++ {
			plan := c.Plans[tau].Generic()
			plan.NegacyclicForwardInto(ahat.Res[tau], a.Res[tau])
			plan.NegacyclicForwardInto(bhat.Res[tau], bb.Res[tau])
		}
		key.ahat = append(key.ahat, ahat)
		key.bhat = append(key.bhat, bhat)
	}
	return key
}

// tensorTower computes one tower's share of the ciphertext tensor
// product: four twisted forward transforms, four pointwise products, and
// three inverse transforms yield c0 = b1*b2, c1 = a1*b2 + a2*b1 and
// c2 = a1*a2 for that tower.
func tensorTower(plan *ring.Plan[uint64, ring.Shoup64], mod *modmath.Modulus64,
	a1, b1, a2, b2 []uint64, ev *[5][]uint64, o0, o1, o2 []uint64) {
	plan.NegacyclicForwardInto(ev[0], a1)
	plan.NegacyclicForwardInto(ev[1], b1)
	plan.NegacyclicForwardInto(ev[2], a2)
	plan.NegacyclicForwardInto(ev[3], b2)
	plan.PointwiseMulInto(ev[4], ev[1], ev[3]) // b1 ∘ b2
	plan.NegacyclicInverseInto(o0, ev[4])
	plan.PointwiseMulInto(ev[4], ev[0], ev[2]) // a1 ∘ a2
	plan.NegacyclicInverseInto(o2, ev[4])
	plan.PointwiseMulInto(ev[4], ev[0], ev[3]) // a1 ∘ b2
	plan.PointwiseMulInto(ev[0], ev[2], ev[1]) // a2 ∘ b1
	r4, r0 := ev[4], ev[0]
	for j := range r4 {
		r4[j] = mod.Add(r4[j], r0[j])
	}
	plan.NegacyclicInverseInto(o1, ev[4])
}

// scaleRound turns one tensor component held in (cQ, cE) into the scaled
// ciphertext component round(T*v/Q) mod Q, written back into cQ:
// w = T*v + floor(Q/2) in both bases, FastBConv of w's Q-remainder into
// the extension base, y = (w - [w]_Q)/Q there, and the exact
// Shenoy-Kumaresan conversion back to Q. The FastBConv overshoot divides
// down to an additive error below k+1 — noise, not wrongness.
func (b *rnsBackend) scaleRound(sc *rnsMulScratch, cQ, cE rns.Poly) {
	for i, mod := range b.c.Mods {
		plan := b.c.Plans[i].Generic()
		plan.ScalarMulInto(cQ.Res[i], cQ.Res[i], b.tResQ[i])
		addConstRow(cQ.Res[i], mod, b.hResQ[i])
	}
	for j, mod := range b.ext.Mods {
		plan := b.ext.Plans[j].Generic()
		plan.ScalarMulInto(cE.Res[j], cE.Res[j], b.tResE[j])
		addConstRow(cE.Res[j], mod, b.hResE[j])
	}
	must(b.conv.ConvertInto(sc.convE, cQ))
	for j, mod := range b.ext.Mods {
		we, ce := cE.Res[j], sc.convE.Res[j]
		for idx := range we {
			we[idx] = mod.Sub(we[idx], ce[idx])
		}
		b.ext.Plans[j].Generic().ScalarMulInto(we, we, b.qInvE[j])
	}
	must(b.skConv.ConvertInto(cQ, cE))
}

func addConstRow(row []uint64, mod *modmath.Modulus64, v uint64) {
	for j := range row {
		row[j] = mod.Add(row[j], v)
	}
}

// MulCt is the BEHZ homomorphic multiply: base-extend, tensor,
// divide-and-round by Q/T, exact return to base Q, and CRT-gadget
// relinearization — residues end to end, no big integers anywhere, zero
// allocations in steady state. dst must not alias the inputs.
func (b *rnsBackend) MulCt(dst *BackendCiphertext, ct1, ct2 BackendCiphertext, rlk BackendRelinKey) {
	key := rlk.(*rnsRelinKey)
	c, ext := b.c, b.ext
	k, m := c.Channels(), ext.Channels()
	sc := b.mulPool.Get().(*rnsMulScratch)

	// 1. Fast-base-extend the four operand polynomials into the
	// extension base (values grow to at most k*Q; the headroom
	// validation in buildMulMachinery accounts for it).
	ops := [4]rns.Poly{ct1.A.(rns.Poly), ct1.B.(rns.Poly), ct2.A.(rns.Poly), ct2.B.(rns.Poly)}
	for i := range ops {
		must(b.conv.ConvertInto(sc.opE[i], ops[i]))
	}

	// 2. Tensor product, tower by tower across both bases.
	for tau := 0; tau < k; tau++ {
		tensorTower(c.Plans[tau].Generic(), c.Mods[tau],
			ops[0].Res[tau], ops[1].Res[tau], ops[2].Res[tau], ops[3].Res[tau],
			&sc.ev, sc.c0Q.Res[tau], sc.c1Q.Res[tau], sc.c2Q.Res[tau])
	}
	for tau := 0; tau < m; tau++ {
		tensorTower(ext.Plans[tau].Generic(), ext.Mods[tau],
			sc.opE[0].Res[tau], sc.opE[1].Res[tau], sc.opE[2].Res[tau], sc.opE[3].Res[tau],
			&sc.ev, sc.c0E.Res[tau], sc.c1E.Res[tau], sc.c2E.Res[tau])
	}

	// 3. Divide-and-round each component by Q/T; results land in the
	// c*Q polys as the degree-2 scaled ciphertext.
	b.scaleRound(sc, sc.c0Q, sc.c0E)
	b.scaleRound(sc, sc.c1Q, sc.c1E)
	b.scaleRound(sc, sc.c2Q, sc.c2E)

	// 4. Relinearize: the towers of c2 are the gadget digits. Everything
	// accumulates in the evaluation domain; one inverse per tower at the
	// end.
	for tau := 0; tau < k; tau++ {
		clearRow(sc.accA.Res[tau])
		clearRow(sc.accB.Res[tau])
	}
	for i := 0; i < k; i++ {
		c.Plans[i].Generic().ScalarMulInto(sc.zrow, sc.c2Q.Res[i], c.QiInv(i))
		for tau := 0; tau < k; tau++ {
			mod := c.Mods[tau]
			q := mod.Q
			for j, v := range sc.zrow {
				// One conditional subtract lifts the digit into tower
				// tau (same-width basis, validated at construction).
				if v >= q {
					v -= q
				}
				sc.lift[j] = v
			}
			plan := c.Plans[tau].Generic()
			plan.NegacyclicForwardInto(sc.lift, sc.lift)
			plan.PointwiseMulInto(sc.prod, sc.lift, key.ahat[i].Res[tau])
			addRow(sc.accA.Res[tau], sc.prod, mod)
			plan.PointwiseMulInto(sc.prod, sc.lift, key.bhat[i].Res[tau])
			addRow(sc.accB.Res[tau], sc.prod, mod)
		}
	}
	dstA, dstB := dst.A.(rns.Poly), dst.B.(rns.Poly)
	for tau := 0; tau < k; tau++ {
		plan := c.Plans[tau].Generic()
		mod := c.Mods[tau]
		plan.NegacyclicInverseInto(dstA.Res[tau], sc.accA.Res[tau])
		addRow(dstA.Res[tau], sc.c1Q.Res[tau], mod)
		plan.NegacyclicInverseInto(dstB.Res[tau], sc.accB.Res[tau])
		addRow(dstB.Res[tau], sc.c0Q.Res[tau], mod)
	}
	b.mulPool.Put(sc)
}

func clearRow(row []uint64) {
	for j := range row {
		row[j] = 0
	}
}

func addRow(dst, src []uint64, mod *modmath.Modulus64) {
	for j := range dst {
		dst[j] = mod.Add(dst[j], src[j])
	}
}
