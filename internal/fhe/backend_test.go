package fhe

import (
	"testing"

	"mqxgo/internal/modmath"
	"mqxgo/internal/rns"
)

// The backend seam's acceptance test: the identical BackendScheme logic
// must run end to end on both of the paper's hardware philosophies — the
// 128-bit double-word ring and a basis of 64-bit RNS towers.

// mustCT unwraps an error-returning scheme entry point in tests where the
// inputs are well-formed by construction.
func mustCT(ct BackendCiphertext, err error) BackendCiphertext {
	if err != nil {
		panic(err)
	}
	return ct
}

func testBackends(t *testing.T, n int) []Backend {
	t.Helper()
	p, err := NewParams(modmath.DefaultModulus128(), n, 257)
	if err != nil {
		t.Fatal(err)
	}
	c, err := rns.NewContext(59, 3, n)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRNSBackend(c, 257)
	if err != nil {
		t.Fatal(err)
	}
	return []Backend{NewRingBackend(p), rb}
}

func TestBackendSchemeRoundTripBothBackends(t *testing.T) {
	const n = 64
	for _, b := range testBackends(t, n) {
		t.Run(b.Name(), func(t *testing.T) {
			s := NewBackendScheme(b, 12345)
			sk := s.KeyGen()
			msg := make([]uint64, n)
			for i := range msg {
				msg[i] = uint64(i*7) % b.PlainModulus()
			}
			ct, err := s.Encrypt(sk, msg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Decrypt(sk, ct)
			if err != nil {
				t.Fatal(err)
			}
			for i := range msg {
				if got[i] != msg[i] {
					t.Fatalf("coeff %d: got %d, want %d", i, got[i], msg[i])
				}
			}
		})
	}
}

func TestBackendSchemeHomomorphicOpsBothBackends(t *testing.T) {
	const n = 32
	for _, b := range testBackends(t, n) {
		t.Run(b.Name(), func(t *testing.T) {
			s := NewBackendScheme(b, 777)
			tt := b.PlainModulus()
			sk := s.KeyGen()
			m1 := make([]uint64, n)
			m2 := make([]uint64, n)
			for i := range m1 {
				m1[i] = uint64(i) % tt
				m2[i] = uint64(3*i+1) % tt
			}
			c1, err := s.Encrypt(sk, m1)
			if err != nil {
				t.Fatal(err)
			}
			c2, err := s.Encrypt(sk, m2)
			if err != nil {
				t.Fatal(err)
			}

			sum, err := s.Decrypt(sk, mustCT(s.AddCiphertexts(c1, c2)))
			if err != nil {
				t.Fatal(err)
			}
			diff, err := s.Decrypt(sk, mustCT(s.SubCiphertexts(c1, c2)))
			if err != nil {
				t.Fatal(err)
			}
			neg, err := s.Decrypt(sk, mustCT(s.Neg(c1)))
			if err != nil {
				t.Fatal(err)
			}
			const k = 5
			scaled, err := s.Decrypt(sk, mustCT(s.MulScalar(c1, k)))
			if err != nil {
				t.Fatal(err)
			}
			plainSum, err := s.AddPlain(c1, m2)
			if err != nil {
				t.Fatal(err)
			}
			padded, err := s.Decrypt(sk, plainSum)
			if err != nil {
				t.Fatal(err)
			}
			for i := range m1 {
				if sum[i] != (m1[i]+m2[i])%tt {
					t.Fatalf("add coeff %d: got %d", i, sum[i])
				}
				if diff[i] != (m1[i]+tt-m2[i])%tt {
					t.Fatalf("sub coeff %d: got %d", i, diff[i])
				}
				if neg[i] != (tt-m1[i])%tt {
					t.Fatalf("neg coeff %d: got %d", i, neg[i])
				}
				if scaled[i] != (m1[i]*k)%tt {
					t.Fatalf("scalar coeff %d: got %d", i, scaled[i])
				}
				if padded[i] != (m1[i]+m2[i])%tt {
					t.Fatalf("addplain coeff %d: got %d", i, padded[i])
				}
			}
		})
	}
}

func TestBackendSchemeMulPlainMonomialBothBackends(t *testing.T) {
	const n = 16
	for _, b := range testBackends(t, n) {
		t.Run(b.Name(), func(t *testing.T) {
			s := NewBackendScheme(b, 4242)
			tt := b.PlainModulus()
			sk := s.KeyGen()
			msg := make([]uint64, n)
			for i := range msg {
				msg[i] = uint64(i + 1)
			}
			ct, err := s.Encrypt(sk, msg)
			if err != nil {
				t.Fatal(err)
			}
			// The monomial x as a backend polynomial.
			mono := make([]int64, n)
			mono[1] = 1
			x := b.NewPoly()
			b.SetSigned(x, mono)
			got, err := s.Decrypt(sk, mustCT(s.MulPlain(ct, x)))
			if err != nil {
				t.Fatal(err)
			}
			// (x * m)(x): coefficient j of the product is m[j-1];
			// coefficient 0 is -m[n-1] mod T.
			if got[0] != (tt-msg[n-1])%tt {
				t.Fatalf("coeff 0: got %d, want %d", got[0], (tt-msg[n-1])%tt)
			}
			for j := 1; j < n; j++ {
				if got[j] != msg[j-1] {
					t.Fatalf("coeff %d: got %d, want %d", j, got[j], msg[j-1])
				}
			}
		})
	}
}

func TestBackendSchemeNoiseBudgetBothBackends(t *testing.T) {
	const n = 16
	for _, b := range testBackends(t, n) {
		t.Run(b.Name(), func(t *testing.T) {
			s := NewBackendScheme(b, 99)
			sk := s.KeyGen()
			m := make([]uint64, n)
			ct, err := s.Encrypt(sk, m)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := s.NoiseBudgetBits(sk, ct, m)
			if err != nil {
				t.Fatal(err)
			}
			if fresh <= 0 {
				t.Fatalf("fresh budget %d, want > 0", fresh)
			}
			// Repeated additions grow the noise and must not grow the budget.
			acc := ct
			for i := 0; i < 8; i++ {
				acc = mustCT(s.AddCiphertexts(acc, ct))
			}
			after, err := s.NoiseBudgetBits(sk, acc, m)
			if err != nil {
				t.Fatal(err)
			}
			if after > fresh {
				t.Fatalf("budget grew after additions: %d > %d", after, fresh)
			}
			if _, err := s.NoiseBudgetBits(sk, ct, make([]uint64, 5)); err == nil {
				t.Error("expected message length error")
			}
		})
	}
}

func TestRNSBackendValidation(t *testing.T) {
	c, err := rns.NewContext(59, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRNSBackend(c, 1); err == nil {
		t.Error("expected error for T < 2")
	}
	if _, err := NewRNSBackend(c, 1<<60); err == nil {
		t.Error("expected error for T above a tower prime")
	}
	b, err := NewRNSBackend(c, 257)
	if err != nil {
		t.Fatal(err)
	}
	s := NewBackendScheme(b, 7)
	sk := s.KeyGen()
	if _, err := s.Encrypt(sk, make([]uint64, 5)); err == nil {
		t.Error("expected message length error")
	}
	if _, err := s.Encrypt(sk, append(make([]uint64, 15), 9999)); err == nil {
		t.Error("expected out-of-range coefficient error")
	}
}
