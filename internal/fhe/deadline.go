package fhe

import (
	"context"
	"fmt"
)

// DeadlineBackend is implemented by backends whose heavy evaluation ops
// can observe a context between their internal phases. Both shipped
// backends implement it; the interface is optional so the Backend seam —
// and every existing implementation and test double — keeps compiling.
//
// Cancellation is checked at TOWER-PHASE boundaries (base extension,
// tensor, divide-and-round, relinearization for MulCt; per component for
// ModSwitch), the natural units of the BEHZ pipeline: a phase runs to
// completion or not at all, so an aborted call never leaves a pool worker
// mid-row. On a non-nil return the destination's contents are
// unspecified and must be discarded — the scheme-layer wrappers do this
// by never returning the partially-written ciphertext.
type DeadlineBackend interface {
	// MulCtCtx is Backend.MulCt with cancellation checked between phases.
	// The returned error is ctx.Err() itself when the context fired, so
	// errors.Is(err, context.DeadlineExceeded) works without unwrapping.
	MulCtCtx(ctx context.Context, dst *BackendCiphertext, ct1, ct2 BackendCiphertext, rlk BackendRelinKey) error
	// ModSwitchCtx is Backend.ModSwitch with the same contract.
	ModSwitchCtx(ctx context.Context, dst *BackendCiphertext, ct BackendCiphertext) error
}

// RotateDeadlineBackend is the optional deadline seam for the slot
// automorphism ops, separate from DeadlineBackend so implementations of
// the PR 8 interface keep compiling. Both shipped backends implement it:
// ctx is observed per power-of-two hop (the natural key-switch unit).
type RotateDeadlineBackend interface {
	// RotateSlotsCtx is Backend.RotateSlots with cancellation checked
	// between key-switch hops; the returned error is ctx.Err() itself
	// when the context fired.
	RotateSlotsCtx(ctx context.Context, dst *BackendCiphertext, ct BackendCiphertext, steps int, gk BackendGaloisKey) error
	// ConjugateCtx is Backend.Conjugate with the same contract.
	ConjugateCtx(ctx context.Context, dst *BackendCiphertext, ct BackendCiphertext, gk BackendGaloisKey) error
}

// MulCiphertextsCtx is MulCiphertexts under a deadline: evaluation
// observes ctx at the backend's phase boundaries and aborts with
// ctx.Err() — never a partial ciphertext — once it fires. On backends
// without phase-level cancellation the check brackets the whole multiply.
func (s *BackendScheme) MulCiphertextsCtx(ctx context.Context, c1, c2 BackendCiphertext, rlk BackendRelinKey) (BackendCiphertext, error) {
	if err := ctx.Err(); err != nil {
		return BackendCiphertext{}, err
	}
	if err := s.checkCts(c1, c2); err != nil {
		return BackendCiphertext{}, err
	}
	l := c1.Level
	out := BackendCiphertext{A: s.B.NewPolyAt(l), B: s.B.NewPolyAt(l), Level: l, Domain: c1.Domain}
	if db, ok := s.B.(DeadlineBackend); ok {
		if err := db.MulCtCtx(ctx, &out, c1, c2, rlk); err != nil {
			return BackendCiphertext{}, err
		}
		return out, nil
	}
	if err := s.B.MulCt(&out, c1, c2, rlk); err != nil {
		return BackendCiphertext{}, err
	}
	if err := ctx.Err(); err != nil {
		return BackendCiphertext{}, err
	}
	return out, nil
}

// ModSwitchCtx is ModSwitch under a deadline, with the same abort
// semantics as MulCiphertextsCtx.
func (s *BackendScheme) ModSwitchCtx(ctx context.Context, ct BackendCiphertext) (BackendCiphertext, error) {
	if err := ctx.Err(); err != nil {
		return BackendCiphertext{}, err
	}
	if err := s.checkCts(ct); err != nil {
		return BackendCiphertext{}, err
	}
	if ct.Level >= s.B.Levels()-1 {
		return BackendCiphertext{}, fmt.Errorf("fhe: ciphertext already at bottom level %d", ct.Level)
	}
	l := ct.Level + 1
	out := BackendCiphertext{A: s.B.NewPolyAt(l), B: s.B.NewPolyAt(l), Level: l, Domain: ct.Domain}
	if db, ok := s.B.(DeadlineBackend); ok {
		if err := db.ModSwitchCtx(ctx, &out, ct); err != nil {
			return BackendCiphertext{}, err
		}
		return out, nil
	}
	if err := s.B.ModSwitch(&out, ct); err != nil {
		return BackendCiphertext{}, err
	}
	if err := ctx.Err(); err != nil {
		return BackendCiphertext{}, err
	}
	return out, nil
}

// RotateSlotsCtx is RotateSlots under a deadline, with the same abort
// semantics as MulCiphertextsCtx.
func (s *BackendScheme) RotateSlotsCtx(ctx context.Context, ct BackendCiphertext, steps int, gk BackendGaloisKey) (BackendCiphertext, error) {
	if err := ctx.Err(); err != nil {
		return BackendCiphertext{}, err
	}
	if err := s.checkCts(ct); err != nil {
		return BackendCiphertext{}, err
	}
	l := ct.Level
	out := BackendCiphertext{A: s.B.NewPolyAt(l), B: s.B.NewPolyAt(l), Level: l, Domain: ct.Domain}
	if db, ok := s.B.(RotateDeadlineBackend); ok {
		if err := db.RotateSlotsCtx(ctx, &out, ct, steps, gk); err != nil {
			return BackendCiphertext{}, err
		}
		return out, nil
	}
	if err := s.B.RotateSlots(&out, ct, steps, gk); err != nil {
		return BackendCiphertext{}, err
	}
	if err := ctx.Err(); err != nil {
		return BackendCiphertext{}, err
	}
	return out, nil
}

// ConjugateCtx is Conjugate under a deadline, with the same abort
// semantics as MulCiphertextsCtx.
func (s *BackendScheme) ConjugateCtx(ctx context.Context, ct BackendCiphertext, gk BackendGaloisKey) (BackendCiphertext, error) {
	if err := ctx.Err(); err != nil {
		return BackendCiphertext{}, err
	}
	if err := s.checkCts(ct); err != nil {
		return BackendCiphertext{}, err
	}
	l := ct.Level
	out := BackendCiphertext{A: s.B.NewPolyAt(l), B: s.B.NewPolyAt(l), Level: l, Domain: ct.Domain}
	if db, ok := s.B.(RotateDeadlineBackend); ok {
		if err := db.ConjugateCtx(ctx, &out, ct, gk); err != nil {
			return BackendCiphertext{}, err
		}
		return out, nil
	}
	if err := s.B.Conjugate(&out, ct, gk); err != nil {
		return BackendCiphertext{}, err
	}
	if err := ctx.Err(); err != nil {
		return BackendCiphertext{}, err
	}
	return out, nil
}
