package fhe

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"mqxgo/internal/faultinject"
	"mqxgo/internal/modmath"
	"mqxgo/internal/rns"
)

// countdownCtx is a deterministic context whose Err() starts returning
// context.DeadlineExceeded on its fireAt-th call (1-based; 0 = never).
// It lets the tests aim a deadline expiry at an exact phase boundary
// instead of racing a wall-clock timer against the evaluation.
type countdownCtx struct {
	context.Context
	calls  int
	fireAt int
}

func newCountdown(fireAt int) *countdownCtx {
	return &countdownCtx{Context: context.Background(), fireAt: fireAt}
}

func (c *countdownCtx) Err() error {
	c.calls++
	if c.fireAt > 0 && c.calls >= c.fireAt {
		return context.DeadlineExceeded
	}
	return nil
}

// deadlineFixtures builds one ready-to-multiply state per backend the
// deadline contract must hold on: the RNS backend in its sequential
// zero-alloc configuration, the RNS backend with pool dispatch, and the
// 128-bit oracle.
func deadlineFixtures(t *testing.T) map[string]struct {
	s      *BackendScheme
	sk     BackendSecretKey
	rlk    BackendRelinKey
	c1, c2 BackendCiphertext
	want   []uint64
} {
	t.Helper()
	const n, T = 256, 257
	out := map[string]struct {
		s      *BackendScheme
		sk     BackendSecretKey
		rlk    BackendRelinKey
		c1, c2 BackendCiphertext
		want   []uint64
	}{}
	build := func(name string, b Backend) {
		s := NewBackendScheme(b, 987)
		sk := s.KeyGen()
		rlk, err := s.RelinKeyGen(sk)
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]uint64, n)
		for i := range msg {
			msg[i] = uint64(5*i+2) % T
		}
		c1, err := s.Encrypt(sk, msg)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := s.Encrypt(sk, msg)
		if err != nil {
			t.Fatal(err)
		}
		want := NegacyclicProductModT(msg, msg, T)
		out[name] = struct {
			s      *BackendScheme
			sk     BackendSecretKey
			rlk    BackendRelinKey
			c1, c2 BackendCiphertext
			want   []uint64
		}{s, sk, rlk, c1, c2, want}
	}

	c, err := rns.NewContext(59, 2, n)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewRNSBackendWorkers(c, T, 1)
	if err != nil {
		t.Fatal(err)
	}
	build("rns_sequential", seq)
	par, err := NewRNSBackendWorkers(c, T, 2)
	if err != nil {
		t.Fatal(err)
	}
	build("rns_parallel", par)
	p, err := NewParams(modmath.DefaultModulus128(), n, T)
	if err != nil {
		t.Fatal(err)
	}
	build("oracle", NewRingBackend(p))
	return out
}

// TestMulCtCtxAbortsAtEveryPhaseBoundary walks the deadline through every
// context observation point of the multiply on every backend: for each
// possible firing position it asserts the call aborts with an unwrapped
// context.DeadlineExceeded and returns the zero ciphertext — never a
// partially-written one — and that with the deadline past all boundaries
// the multiply completes and decrypts correctly.
func TestMulCtCtxAbortsAtEveryPhaseBoundary(t *testing.T) {
	for name, f := range deadlineFixtures(t) {
		t.Run(name, func(t *testing.T) {
			probe := newCountdown(0)
			out, err := f.s.MulCiphertextsCtx(probe, f.c1, f.c2, f.rlk)
			if err != nil {
				t.Fatal(err)
			}
			// The scheme pre-check plus the four BEHZ phase gates.
			if probe.calls < 5 {
				t.Fatalf("multiply observed the context %d times, want >= 5 (pre-check + 4 phases)", probe.calls)
			}
			got, err := f.s.Decrypt(f.sk, out)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != f.want[i] {
					t.Fatalf("uncancelled multiply wrong at coeff %d: got %d want %d", i, got[i], f.want[i])
				}
			}
			for k := 1; k <= probe.calls; k++ {
				cc := newCountdown(k)
				aborted, err := f.s.MulCiphertextsCtx(cc, f.c1, f.c2, f.rlk)
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("deadline at check %d/%d: got err %v, want context.DeadlineExceeded", k, probe.calls, err)
				}
				if err != context.DeadlineExceeded {
					t.Fatalf("deadline at check %d: error %v is wrapped, want ctx.Err() itself", k, err)
				}
				if aborted.A != nil || aborted.B != nil {
					t.Fatalf("deadline at check %d: aborted multiply returned a non-zero ciphertext", k)
				}
			}
		})
	}
}

// TestModSwitchCtxAborts does the same walk for the ladder primitive.
func TestModSwitchCtxAborts(t *testing.T) {
	for name, f := range deadlineFixtures(t) {
		t.Run(name, func(t *testing.T) {
			probe := newCountdown(0)
			out, err := f.s.ModSwitchCtx(probe, f.c1)
			if err != nil {
				t.Fatal(err)
			}
			if probe.calls < 2 {
				t.Fatalf("modswitch observed the context %d times, want >= 2", probe.calls)
			}
			got, err := f.s.Decrypt(f.sk, out)
			if err != nil {
				t.Fatal(err)
			}
			msg := make([]uint64, len(got))
			copy(msg, got)
			for k := 1; k <= probe.calls; k++ {
				cc := newCountdown(k)
				aborted, err := f.s.ModSwitchCtx(cc, f.c1)
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("deadline at check %d/%d: got err %v, want context.DeadlineExceeded", k, probe.calls, err)
				}
				if aborted.A != nil || aborted.B != nil {
					t.Fatalf("deadline at check %d: aborted modswitch returned a non-zero ciphertext", k)
				}
			}
		})
	}
}

// TestDeadlineErrorIdentity pins the contract against the real context
// package: an expired timeout surfaces as context.DeadlineExceeded, a
// cancellation as context.Canceled, both matchable with errors.Is.
func TestDeadlineErrorIdentity(t *testing.T) {
	f := deadlineFixtures(t)["rns_sequential"]
	expired, cancelTimeout := context.WithTimeout(context.Background(), -1)
	defer cancelTimeout()
	if _, err := f.s.MulCiphertextsCtx(expired, f.c1, f.c2, f.rlk); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired timeout: got %v, want context.DeadlineExceeded", err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.s.MulCiphertextsCtx(cancelled, f.c1, f.c2, f.rlk); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: got %v, want context.Canceled", err)
	}
	if _, err := f.s.ModSwitchCtx(cancelled, f.c1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled modswitch: got %v, want context.Canceled", err)
	}
}

// TestCancelledMulLeaksNoPooledBuffers is the serving-layer leak gate: a
// request aborted by its deadline mid-pipeline must return its scratch
// frame to the pool (cancellation is clean — only panics quarantine), so
// a long run of cancelled evaluations allocates nothing and leaves the
// warmed pool intact for the next successful multiply.
func TestCancelledMulLeaksNoPooledBuffers(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	b, _, rlk, _, c1, c2 := allocFixture(t, 2)
	db := b.(DeadlineBackend)
	dst := BackendCiphertext{A: b.NewPoly(), B: b.NewPoly(), Domain: DomainNTT}
	if err := b.MulCt(&dst, c1, c2, rlk); err != nil { // warm the scratch pool
		t.Fatal(err)
	}
	before := QuarantinedScratch()
	cc := newCountdown(0)
	totalPhases := 4
	for i := 0; i < 1000; i++ {
		cc.calls = 0
		cc.fireAt = 1 + i%totalPhases // rotate the abort across every phase
		if err := db.MulCtCtx(cc, &dst, c1, c2, rlk); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("cancelled request %d: got err %v", i, err)
		}
	}
	if got := QuarantinedScratch(); got != before {
		t.Fatalf("cancellation quarantined %d scratch frames, want 0", got-before)
	}
	if got := testing.AllocsPerRun(100, func() {
		cc.calls = 0
		cc.fireAt = 2
		if err := db.MulCtCtx(cc, &dst, c1, c2, rlk); err == nil {
			t.Fatal("countdown context did not fire")
		}
	}); got != 0 {
		t.Errorf("cancelled MulCtCtx allocates %.1f per run, want 0", got)
	}
	if got := testing.AllocsPerRun(10, func() {
		cc.calls = 0
		cc.fireAt = 0
		if err := db.MulCtCtx(cc, &dst, c1, c2, rlk); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("post-cancellation MulCtCtx allocates %.1f per run, want 0 (pool leaked)", got)
	}
}

// TestSharedBackendConcurrentEval is the -race hammer for the serving
// topology: ONE backend and ONE scheme shared by many goroutines, each
// concurrently encrypting (exercising the scheme's rng lock), multiplying
// through the pooled scratch, switching a level, and verifying its own
// decryption. Any data race on the shared evaluation state trips the race
// detector; any cross-request scratch corruption trips the decrypt check.
func TestSharedBackendConcurrentEval(t *testing.T) {
	const n, T = 256, 257
	c, err := rns.NewContext(59, 2, n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRNSBackendWorkers(c, T, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewBackendScheme(b, 4242)
	sk := s.KeyGen()
	rlk, err := s.RelinKeyGen(sk)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, iters = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			msg := make([]uint64, n)
			for i := range msg {
				msg[i] = uint64(g*131+7*i+1) % T
			}
			want := NegacyclicProductModT(msg, msg, T)
			for it := 0; it < iters; it++ {
				c1, err := s.Encrypt(sk, msg)
				if err != nil {
					errs <- err
					return
				}
				c2, err := s.Encrypt(sk, msg)
				if err != nil {
					errs <- err
					return
				}
				prod, err := s.MulCiphertexts(c1, c2, rlk)
				if err != nil {
					errs <- err
					return
				}
				low, err := s.ModSwitch(prod)
				if err != nil {
					errs <- err
					return
				}
				got, err := s.Decrypt(sk, low)
				if err != nil {
					errs <- err
					return
				}
				for i := range got {
					if got[i] != want[i] {
						errs <- fmt.Errorf("goroutine %d iter %d: coeff %d got %d want %d", g, it, i, got[i], want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPanicQuarantinesScratch forces a panic inside the tensor phase via
// fault injection and asserts the pooled scratch frame is quarantined —
// not recycled — and that the backend keeps producing correct products
// afterwards from a fresh frame. Needs the faultinject build tag.
func TestPanicQuarantinesScratch(t *testing.T) {
	if !faultinject.Enabled {
		t.Skip("requires -tags faultinject")
	}
	f := deadlineFixtures(t)["rns_sequential"]
	if err := faultinject.Arm(faultinject.Spec{Site: faultinject.SiteMulTensor, Kind: faultinject.KindPanic, Count: 1}); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	before := QuarantinedScratch()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("armed panic did not fire")
			}
			if _, ok := r.(faultinject.InjectedPanic); !ok {
				t.Fatalf("recovered %v (%T), want faultinject.InjectedPanic", r, r)
			}
		}()
		_, _ = f.s.MulCiphertextsCtx(context.Background(), f.c1, f.c2, f.rlk)
	}()
	if got := QuarantinedScratch(); got != before+1 {
		t.Fatalf("quarantined count went %d -> %d, want +1", before, got)
	}
	out, err := f.s.MulCiphertexts(f.c1, f.c2, f.rlk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.s.Decrypt(f.sk, out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != f.want[i] {
			t.Fatalf("post-quarantine multiply wrong at coeff %d: got %d want %d", i, got[i], f.want[i])
		}
	}
}
