// Package fhe implements a toy symmetric-key RLWE ("BFV-style") encryption
// scheme on top of the library's 128-bit negacyclic NTT — the application
// domain that motivates the paper (Section 1). It demonstrates that the
// optimized kernels compose into the polynomial pipelines real FHE schemes
// are built from: keygen, encrypt, decrypt, homomorphic addition and
// plaintext multiplication.
//
// This is an educational scheme: parameters are chosen for correctness
// demonstrations, not for standardized security levels.
package fhe

import (
	"fmt"
	"math/rand"

	"mqxgo/internal/modmath"
	"mqxgo/internal/ntt"
	"mqxgo/internal/u128"
)

// Params holds the ring parameters: R_q = Z_q[x]/(x^N + 1) with plaintext
// modulus T.
type Params struct {
	Mod *modmath.Modulus128
	N   int
	T   uint64 // plaintext modulus, << q

	Delta u128.U128 // floor(q / T), the plaintext scaling factor
	plan  *ntt.Plan
}

// NewParams validates and precomputes the ring parameters.
func NewParams(mod *modmath.Modulus128, n int, t uint64) (*Params, error) {
	if t < 2 {
		return nil, fmt.Errorf("fhe: plaintext modulus %d too small", t)
	}
	plan, err := ntt.CachedPlan(mod, n)
	if err != nil {
		return nil, err
	}
	delta, _ := mod.Q.DivMod64(t)
	if delta.IsZero() {
		return nil, fmt.Errorf("fhe: plaintext modulus %d too large for q", t)
	}
	return &Params{Mod: mod, N: n, T: t, Delta: delta, plan: plan}, nil
}

// SecretKey is a small ternary polynomial.
type SecretKey struct {
	S []u128.U128
}

// Ciphertext is an RLWE pair (A, B) with B = A*S + E + Delta*M.
type Ciphertext struct {
	A, B []u128.U128
}

// Scheme bundles parameters with a deterministic randomness source
// (rand.Rand keeps examples and tests reproducible; production code would
// use crypto/rand).
type Scheme struct {
	P   *Params
	rng *rand.Rand
}

// NewScheme builds a scheme with the given seed.
func NewScheme(p *Params, seed int64) *Scheme {
	return &Scheme{P: p, rng: rand.New(rand.NewSource(seed))}
}

// KeyGen samples a ternary secret s with coefficients in {-1, 0, 1}.
func (s *Scheme) KeyGen() SecretKey {
	mod := s.P.Mod
	sk := make([]u128.U128, s.P.N)
	for i := range sk {
		switch s.rng.Intn(3) {
		case 0:
			sk[i] = u128.Zero
		case 1:
			sk[i] = u128.One
		default:
			sk[i] = mod.Neg(u128.One)
		}
	}
	return SecretKey{S: sk}
}

// uniformPoly samples a uniform element of R_q.
func (s *Scheme) uniformPoly() []u128.U128 {
	mod := s.P.Mod
	out := make([]u128.U128, s.P.N)
	for i := range out {
		out[i] = u128.New(s.rng.Uint64(), s.rng.Uint64()).Mod(mod.Q)
	}
	return out
}

// noisePoly samples a small centered error with |e| <= noiseBound.
const noiseBound = 8

func (s *Scheme) noisePoly() []u128.U128 {
	mod := s.P.Mod
	out := make([]u128.U128, s.P.N)
	for i := range out {
		e := s.rng.Intn(2*noiseBound+1) - noiseBound
		if e >= 0 {
			out[i] = u128.From64(uint64(e))
		} else {
			out[i] = mod.Neg(u128.From64(uint64(-e)))
		}
	}
	return out
}

// Encrypt encrypts a plaintext polynomial with coefficients in [0, T).
func (s *Scheme) Encrypt(sk SecretKey, msg []uint64) (Ciphertext, error) {
	p := s.P
	if len(msg) != p.N {
		return Ciphertext{}, fmt.Errorf("fhe: message length %d != N %d", len(msg), p.N)
	}
	mod := p.Mod
	a := s.uniformPoly()
	e := s.noisePoly()
	as := make([]u128.U128, p.N)
	p.plan.PolyMulNegacyclicInto(as, a, sk.S)
	b := make([]u128.U128, p.N)
	for i := 0; i < p.N; i++ {
		if msg[i] >= p.T {
			return Ciphertext{}, fmt.Errorf("fhe: coefficient %d out of plaintext range", msg[i])
		}
		scaled := mod.Mul(p.Delta, u128.From64(msg[i]))
		b[i] = mod.Add(mod.Add(as[i], e[i]), scaled)
	}
	return Ciphertext{A: a, B: b}, nil
}

// Decrypt recovers the plaintext: round((B - A*S) * T / q) mod T.
func (s *Scheme) Decrypt(sk SecretKey, ct Ciphertext) ([]uint64, error) {
	p := s.P
	if len(ct.A) != p.N || len(ct.B) != p.N {
		return nil, fmt.Errorf("fhe: malformed ciphertext")
	}
	mod := p.Mod
	as := make([]u128.U128, p.N)
	p.plan.PolyMulNegacyclicInto(as, ct.A, sk.S)
	out := make([]uint64, p.N)
	half, _ := p.Delta.DivMod64(2)
	for i := 0; i < p.N; i++ {
		noisy := mod.Sub(ct.B[i], as[i]) // Delta*m + e
		// Round to the nearest multiple of Delta.
		q, _ := noisy.Add(half).DivMod(p.Delta)
		out[i] = q.Lo % p.T
	}
	return out, nil
}

// AddCiphertexts is homomorphic addition: decrypts to the coefficient-wise
// sum of the plaintexts mod T (noise permitting).
func (s *Scheme) AddCiphertexts(c1, c2 Ciphertext) Ciphertext {
	mod := s.P.Mod
	n := s.P.N
	out := Ciphertext{A: make([]u128.U128, n), B: make([]u128.U128, n)}
	for i := 0; i < n; i++ {
		out.A[i] = mod.Add(c1.A[i], c2.A[i])
		out.B[i] = mod.Add(c1.B[i], c2.B[i])
	}
	return out
}

// MulPlain multiplies a ciphertext by a plaintext polynomial with small
// coefficients (negacyclic convolution of both components).
func (s *Scheme) MulPlain(ct Ciphertext, pt []u128.U128) (Ciphertext, error) {
	if len(pt) != s.P.N {
		return Ciphertext{}, fmt.Errorf("fhe: plaintext length mismatch")
	}
	out := Ciphertext{
		A: make([]u128.U128, s.P.N),
		B: make([]u128.U128, s.P.N),
	}
	s.P.plan.PolyMulNegacyclicInto(out.A, ct.A, pt)
	s.P.plan.PolyMulNegacyclicInto(out.B, ct.B, pt)
	return out, nil
}

// SubCiphertexts is homomorphic subtraction.
func (s *Scheme) SubCiphertexts(c1, c2 Ciphertext) Ciphertext {
	mod := s.P.Mod
	n := s.P.N
	out := Ciphertext{A: make([]u128.U128, n), B: make([]u128.U128, n)}
	for i := 0; i < n; i++ {
		out.A[i] = mod.Sub(c1.A[i], c2.A[i])
		out.B[i] = mod.Sub(c1.B[i], c2.B[i])
	}
	return out
}

// Neg negates a ciphertext (decrypts to -m mod T).
func (s *Scheme) Neg(ct Ciphertext) Ciphertext {
	mod := s.P.Mod
	n := s.P.N
	out := Ciphertext{A: make([]u128.U128, n), B: make([]u128.U128, n)}
	for i := 0; i < n; i++ {
		out.A[i] = mod.Neg(ct.A[i])
		out.B[i] = mod.Neg(ct.B[i])
	}
	return out
}

// AddPlain adds a plaintext message to a ciphertext without encrypting it
// first: only the B component moves, by Delta * m.
func (s *Scheme) AddPlain(ct Ciphertext, msg []uint64) (Ciphertext, error) {
	p := s.P
	if len(msg) != p.N {
		return Ciphertext{}, fmt.Errorf("fhe: message length %d != N %d", len(msg), p.N)
	}
	mod := p.Mod
	out := Ciphertext{A: append([]u128.U128(nil), ct.A...), B: make([]u128.U128, p.N)}
	for i := 0; i < p.N; i++ {
		if msg[i] >= p.T {
			return Ciphertext{}, fmt.Errorf("fhe: coefficient %d out of plaintext range", msg[i])
		}
		out.B[i] = mod.Add(ct.B[i], mod.Mul(p.Delta, u128.From64(msg[i])))
	}
	return out, nil
}

// MulScalar multiplies a ciphertext by a small integer constant k
// (decrypts to k*m mod T, noise permitting: noise grows by a factor k).
func (s *Scheme) MulScalar(ct Ciphertext, k uint64) Ciphertext {
	mod := s.P.Mod
	n := s.P.N
	kk := u128.From64(k).Mod(mod.Q)
	out := Ciphertext{A: make([]u128.U128, n), B: make([]u128.U128, n)}
	for i := 0; i < n; i++ {
		out.A[i] = mod.Mul(ct.A[i], kk)
		out.B[i] = mod.Mul(ct.B[i], kk)
	}
	return out
}

// NoiseBudgetBits estimates the remaining noise budget of a ciphertext in
// bits: log2(Delta / (2*|noise|)) where noise = B - A*S - Delta*m. When it
// reaches zero, decryption starts failing. Diagnostic only (requires the
// secret key).
func (s *Scheme) NoiseBudgetBits(sk SecretKey, ct Ciphertext, msg []uint64) (int, error) {
	p := s.P
	if len(msg) != p.N {
		return 0, fmt.Errorf("fhe: message length mismatch")
	}
	mod := p.Mod
	as := make([]u128.U128, p.N)
	p.plan.PolyMulNegacyclicInto(as, ct.A, sk.S)
	halfQ := mod.Q.Rsh(1)
	maxNoise := u128.Zero
	for i := 0; i < p.N; i++ {
		noisy := mod.Sub(ct.B[i], as[i])
		noise := mod.Sub(noisy, mod.Mul(p.Delta, u128.From64(msg[i]%p.T)))
		// Centered magnitude.
		if halfQ.Less(noise) {
			noise = mod.Q.Sub(noise)
		}
		if maxNoise.Less(noise) {
			maxNoise = noise
		}
	}
	if maxNoise.IsZero() {
		return p.Delta.BitLen(), nil
	}
	budget := p.Delta.BitLen() - maxNoise.BitLen() - 1
	if budget < 0 {
		budget = 0
	}
	return budget, nil
}
