// Package fhe implements a toy symmetric-key RLWE ("BFV-style") encryption
// scheme — the application domain that motivates the paper (Section 1). The
// scheme logic lives once in BackendScheme, written against the Backend
// seam (backend.go), so the identical keygen/encrypt/decrypt/homomorphic
// pipeline runs on either of the paper's two hardware philosophies: the
// 128-bit double-word ring (NewRingBackend) or a basis of 64-bit RNS
// towers (NewRNSBackend). Both backends carry a modulus-switching ladder
// (BackendScheme.ModSwitch) that trades ciphertext width for per-level
// cost down a depth-L circuit. Scheme is the historical 128-bit-ring API,
// kept as a thin level-0 specialization.
//
// This is an educational scheme: parameters are chosen for correctness
// demonstrations, not for standardized security levels.
package fhe

import (
	"fmt"

	"mqxgo/internal/modmath"
	"mqxgo/internal/ntt"
	"mqxgo/internal/u128"
)

// Params holds the ring parameters: R_q = Z_q[x]/(x^N + 1) with plaintext
// modulus T.
type Params struct {
	Mod *modmath.Modulus128
	N   int
	T   uint64 // plaintext modulus, << q

	Delta u128.U128 // floor(q / T), the plaintext scaling factor
	plan  *ntt.Plan
}

// NewParams validates and precomputes the ring parameters.
func NewParams(mod *modmath.Modulus128, n int, t uint64) (*Params, error) {
	if t < 2 {
		return nil, fmt.Errorf("fhe: plaintext modulus %d too small", t)
	}
	plan, err := ntt.CachedPlan(mod, n)
	if err != nil {
		return nil, err
	}
	delta, _ := mod.Q.DivMod64(t)
	if delta.IsZero() {
		return nil, fmt.Errorf("fhe: plaintext modulus %d too large for q", t)
	}
	return &Params{Mod: mod, N: n, T: t, Delta: delta, plan: plan}, nil
}

// SecretKey is a small ternary polynomial.
type SecretKey struct {
	S []u128.U128
}

// Ciphertext is an RLWE pair (A, B) with B = A*S + E + Delta*M at the top
// of the modulus chain (level 0).
type Ciphertext struct {
	A, B []u128.U128
}

// Scheme is the RLWE scheme on the 128-bit ring backend: a compatibility
// specialization of BackendScheme whose keys and ciphertexts expose their
// []u128.U128 coefficients directly and always live at level 0. Leveled
// circuits (ModSwitch) use BackendScheme directly.
type Scheme struct {
	P  *Params
	bs *BackendScheme
}

// NewScheme builds a scheme with the given seed.
func NewScheme(p *Params, seed int64) *Scheme {
	return &Scheme{P: p, bs: NewBackendScheme(NewRingBackend(p), seed)}
}

// Backend returns the generic scheme this wrapper delegates to.
func (s *Scheme) Backend() *BackendScheme { return s.bs }

func wrapCT(ct Ciphertext) BackendCiphertext { return BackendCiphertext{A: ct.A, B: ct.B} }

func unwrapCT(ct BackendCiphertext) Ciphertext {
	return Ciphertext{A: ct.A.([]u128.U128), B: ct.B.([]u128.U128)}
}

// KeyGen samples a ternary secret s with coefficients in {-1, 0, 1}.
func (s *Scheme) KeyGen() SecretKey {
	return SecretKey{S: s.bs.KeyGen().S.([]u128.U128)}
}

// Encrypt encrypts a plaintext polynomial with coefficients in [0, T).
func (s *Scheme) Encrypt(sk SecretKey, msg []uint64) (Ciphertext, error) {
	ct, err := s.bs.Encrypt(BackendSecretKey{S: sk.S}, msg)
	if err != nil {
		return Ciphertext{}, err
	}
	// The generic scheme hands out NTT-resident ciphertexts; this legacy
	// wrapper's handles are coefficient-domain by contract (wrapCT tags
	// them DomainCoeff), so cross back before unwrapping.
	ct, err = s.bs.ConvertDomain(ct, DomainCoeff)
	if err != nil {
		return Ciphertext{}, err
	}
	return unwrapCT(ct), nil
}

// Decrypt recovers the plaintext: round((B - A*S) * T / q) mod T.
func (s *Scheme) Decrypt(sk SecretKey, ct Ciphertext) ([]uint64, error) {
	return s.bs.Decrypt(BackendSecretKey{S: sk.S}, wrapCT(ct))
}

// AddCiphertexts is homomorphic addition: decrypts to the coefficient-wise
// sum of the plaintexts mod T (noise permitting).
func (s *Scheme) AddCiphertexts(c1, c2 Ciphertext) (Ciphertext, error) {
	out, err := s.bs.AddCiphertexts(wrapCT(c1), wrapCT(c2))
	if err != nil {
		return Ciphertext{}, err
	}
	return unwrapCT(out), nil
}

// SubCiphertexts is homomorphic subtraction.
func (s *Scheme) SubCiphertexts(c1, c2 Ciphertext) (Ciphertext, error) {
	out, err := s.bs.SubCiphertexts(wrapCT(c1), wrapCT(c2))
	if err != nil {
		return Ciphertext{}, err
	}
	return unwrapCT(out), nil
}

// Neg negates a ciphertext (decrypts to -m mod T).
func (s *Scheme) Neg(ct Ciphertext) (Ciphertext, error) {
	out, err := s.bs.Neg(wrapCT(ct))
	if err != nil {
		return Ciphertext{}, err
	}
	return unwrapCT(out), nil
}

// RelinKey is a relinearization key on the 128-bit ring backend.
type RelinKey struct {
	k BackendRelinKey
}

// RelinKeyGen samples the relinearization key MulCiphertexts needs. A
// malformed secret-key handle is rejected with an error (PR 5's hardening
// contract, extended to key generation).
func (s *Scheme) RelinKeyGen(sk SecretKey) (RelinKey, error) {
	k, err := s.bs.RelinKeyGen(BackendSecretKey{S: sk.S})
	if err != nil {
		return RelinKey{}, err
	}
	return RelinKey{k: k}, nil
}

// MulCiphertexts is homomorphic multiplication: the result decrypts to
// the negacyclic product of the two plaintexts mod T, noise permitting.
func (s *Scheme) MulCiphertexts(c1, c2 Ciphertext, rlk RelinKey) (Ciphertext, error) {
	out, err := s.bs.MulCiphertexts(wrapCT(c1), wrapCT(c2), rlk.k)
	if err != nil {
		return Ciphertext{}, err
	}
	return unwrapCT(out), nil
}

// MulPlain multiplies a ciphertext by a plaintext polynomial with small
// coefficients (negacyclic convolution of both components).
func (s *Scheme) MulPlain(ct Ciphertext, pt []u128.U128) (Ciphertext, error) {
	out, err := s.bs.MulPlain(wrapCT(ct), pt)
	if err != nil {
		return Ciphertext{}, err
	}
	return unwrapCT(out), nil
}

// MulScalar multiplies a ciphertext by a small integer constant k
// (decrypts to k*m mod T, noise permitting: noise grows by a factor k).
func (s *Scheme) MulScalar(ct Ciphertext, k uint64) (Ciphertext, error) {
	out, err := s.bs.MulScalar(wrapCT(ct), k)
	if err != nil {
		return Ciphertext{}, err
	}
	return unwrapCT(out), nil
}

// AddPlain adds a plaintext message to a ciphertext without encrypting it
// first: only the B component moves, by Delta * m.
func (s *Scheme) AddPlain(ct Ciphertext, msg []uint64) (Ciphertext, error) {
	out, err := s.bs.AddPlain(wrapCT(ct), msg)
	if err != nil {
		return Ciphertext{}, err
	}
	return unwrapCT(out), nil
}

// NoiseBudgetBits estimates the remaining noise budget of a ciphertext in
// bits: log2(Delta / (2*|noise|)) where noise = B - A*S - Delta*m. When it
// reaches zero, decryption starts failing. Diagnostic only (requires the
// secret key).
func (s *Scheme) NoiseBudgetBits(sk SecretKey, ct Ciphertext, msg []uint64) (int, error) {
	return s.bs.NoiseBudgetBits(BackendSecretKey{S: sk.S}, wrapCT(ct), msg)
}
