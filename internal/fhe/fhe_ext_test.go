package fhe

import (
	"testing"
)

func TestHomomorphicSubAndNeg(t *testing.T) {
	s := testScheme(t, 32)
	sk := s.KeyGen()
	m1 := make([]uint64, 32)
	m2 := make([]uint64, 32)
	for i := range m1 {
		m1[i] = uint64(200 + i)
		m2[i] = uint64(3 * i)
	}
	c1, err := s.Encrypt(sk, m1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Encrypt(sk, m2)
	if err != nil {
		t.Fatal(err)
	}

	diff, err := s.Decrypt(sk, mustLCT(s.SubCiphertexts(c1, c2)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1 {
		want := (m1[i] + s.P.T - m2[i]) % s.P.T
		if diff[i] != want {
			t.Fatalf("sub coeff %d: got %d, want %d", i, diff[i], want)
		}
	}

	neg, err := s.Decrypt(sk, mustLCT(s.Neg(c1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1 {
		want := (s.P.T - m1[i]%s.P.T) % s.P.T
		if neg[i] != want {
			t.Fatalf("neg coeff %d: got %d, want %d", i, neg[i], want)
		}
	}
}

func TestAddPlain(t *testing.T) {
	s := testScheme(t, 16)
	sk := s.KeyGen()
	m := make([]uint64, 16)
	pt := make([]uint64, 16)
	for i := range m {
		m[i] = uint64(i * 5 % int(s.P.T))
		pt[i] = uint64(i * 11 % int(s.P.T))
	}
	ct, err := s.Encrypt(sk, m)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := s.AddPlain(ct, pt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Decrypt(sk, ct2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		if got[i] != (m[i]+pt[i])%s.P.T {
			t.Fatalf("coeff %d: got %d, want %d", i, got[i], (m[i]+pt[i])%s.P.T)
		}
	}
	if _, err := s.AddPlain(ct, make([]uint64, 3)); err == nil {
		t.Error("expected length error")
	}
	if _, err := s.AddPlain(ct, []uint64{99999, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("expected range error")
	}
}

func TestMulScalar(t *testing.T) {
	s := testScheme(t, 16)
	sk := s.KeyGen()
	m := make([]uint64, 16)
	for i := range m {
		m[i] = uint64(i)
	}
	ct, err := s.Encrypt(sk, m)
	if err != nil {
		t.Fatal(err)
	}
	const k = 7
	got, err := s.Decrypt(sk, mustLCT(s.MulScalar(ct, k)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		if got[i] != (m[i]*k)%s.P.T {
			t.Fatalf("coeff %d: got %d, want %d", i, got[i], (m[i]*k)%s.P.T)
		}
	}
}

func TestNoiseBudget(t *testing.T) {
	s := testScheme(t, 32)
	sk := s.KeyGen()
	m := make([]uint64, 32)
	ct, err := s.Encrypt(sk, m)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := s.NoiseBudgetBits(sk, ct, m)
	if err != nil {
		t.Fatal(err)
	}
	if fresh <= 0 {
		t.Fatalf("fresh ciphertext should have positive noise budget, got %d", fresh)
	}
	// Repeated additions consume budget monotonically (or keep it equal).
	acc := ct
	for i := 0; i < 8; i++ {
		acc = mustLCT(s.AddCiphertexts(acc, ct))
	}
	after, err := s.NoiseBudgetBits(sk, acc, m)
	if err != nil {
		t.Fatal(err)
	}
	if after > fresh {
		t.Fatalf("noise budget grew after additions: %d -> %d", fresh, after)
	}
	if _, err := s.NoiseBudgetBits(sk, ct, make([]uint64, 5)); err == nil {
		t.Error("expected length error")
	}
}
