package fhe

import (
	"testing"

	"mqxgo/internal/modmath"
	"mqxgo/internal/u128"
)

// mustLCT unwraps an error-returning legacy entry point in tests where
// the inputs are well-formed by construction.
func mustLCT(ct Ciphertext, err error) Ciphertext {
	if err != nil {
		panic(err)
	}
	return ct
}

func testScheme(t *testing.T, n int) *Scheme {
	t.Helper()
	p, err := NewParams(modmath.DefaultModulus128(), n, 257)
	if err != nil {
		t.Fatal(err)
	}
	return NewScheme(p, 12345)
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	s := testScheme(t, 64)
	sk := s.KeyGen()
	msg := make([]uint64, 64)
	for i := range msg {
		msg[i] = uint64(i*7) % s.P.T
	}
	ct, err := s.Encrypt(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Decrypt(sk, ct)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatalf("coeff %d: got %d, want %d", i, got[i], msg[i])
		}
	}
}

func TestHomomorphicAddition(t *testing.T) {
	s := testScheme(t, 32)
	sk := s.KeyGen()
	m1 := make([]uint64, 32)
	m2 := make([]uint64, 32)
	for i := range m1 {
		m1[i] = uint64(i) % s.P.T
		m2[i] = uint64(3*i+1) % s.P.T
	}
	c1, err := s.Encrypt(sk, m1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Encrypt(sk, m2)
	if err != nil {
		t.Fatal(err)
	}
	sum := mustLCT(s.AddCiphertexts(c1, c2))
	got, err := s.Decrypt(sk, sum)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1 {
		if got[i] != (m1[i]+m2[i])%s.P.T {
			t.Fatalf("coeff %d: got %d, want %d", i, got[i], (m1[i]+m2[i])%s.P.T)
		}
	}
}

func TestMulPlainByMonomial(t *testing.T) {
	// Multiplying by x rotates coefficients negacyclically; decryption
	// must match the rotated plaintext (with sign wrap mod T).
	s := testScheme(t, 16)
	sk := s.KeyGen()
	msg := make([]uint64, 16)
	for i := range msg {
		msg[i] = uint64(i + 1)
	}
	ct, err := s.Encrypt(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]u128.U128, 16)
	x[1] = u128.One // the monomial x
	rot, err := s.MulPlain(ct, x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Decrypt(sk, rot)
	if err != nil {
		t.Fatal(err)
	}
	// (x * m)(x): coefficient j of the product is m[j-1]; coefficient 0 is
	// -m[15] mod T.
	if got[0] != (s.P.T-msg[15])%s.P.T {
		t.Fatalf("coeff 0: got %d, want %d", got[0], (s.P.T-msg[15])%s.P.T)
	}
	for j := 1; j < 16; j++ {
		if got[j] != msg[j-1] {
			t.Fatalf("coeff %d: got %d, want %d", j, got[j], msg[j-1])
		}
	}
}

func TestValidation(t *testing.T) {
	mod := modmath.DefaultModulus128()
	if _, err := NewParams(mod, 16, 1); err == nil {
		t.Error("expected error for T < 2")
	}
	if _, err := NewParams(mod, 3, 257); err == nil {
		t.Error("expected error for bad ring degree")
	}
	s := testScheme(t, 16)
	sk := s.KeyGen()
	if _, err := s.Encrypt(sk, make([]uint64, 7)); err == nil {
		t.Error("expected message length error")
	}
	if _, err := s.Encrypt(sk, []uint64{999999, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("expected out-of-range coefficient error")
	}
	if _, err := s.Decrypt(sk, Ciphertext{}); err == nil {
		t.Error("expected malformed ciphertext error")
	}
	ct, _ := s.Encrypt(sk, make([]uint64, 16))
	if _, err := s.MulPlain(ct, nil); err == nil {
		t.Error("expected plaintext length error")
	}
}
