package fhe

import (
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"mqxgo/internal/rns"
)

// FuzzModSwitch differentially checks the Backend-seam modulus switch on
// the RNS path against its math/big specification: for every coefficient
// x of the (centered) input, the switched coefficient must equal
// round(x / q_dropped) mod the remaining towers — the same divide-and-
// round the oracle backend computes with big integers. The fuzzed level
// byte picks the rung, the pattern byte steers residues into boundary
// values (0, q_i-1, small) exactly like the rns-package conversions fuzz.

type modSwitchFix struct {
	c        *rns.Context
	b        Backend
	prefixes []*rns.Context // prefix context per switchable level
}

var (
	msFixOnce sync.Once
	msFix     modSwitchFix
)

func modSwitchFixture() *modSwitchFix {
	msFixOnce.Do(func() {
		const n, T = 32, 257
		c, err := rns.NewContext(59, 4, n)
		if err != nil {
			panic(err)
		}
		b, err := NewRNSBackend(c, T)
		if err != nil {
			panic(err)
		}
		msFix = modSwitchFix{c: c, b: b}
		primes := make([]uint64, 4)
		for i, mod := range c.Mods {
			primes[i] = mod.Q
		}
		for level := 0; level < 3; level++ {
			p, err := rns.NewContextForPrimes(primes[:4-level], n)
			if err != nil {
				panic(err)
			}
			msFix.prefixes = append(msFix.prefixes, p)
		}
	})
	return &msFix
}

func checkModSwitch(t *testing.T, seed int64, pattern, levelByte byte) {
	t.Helper()
	f := modSwitchFixture()
	b := f.b
	level := int(levelByte) % (b.Levels() - 1)
	ct := BackendCiphertext{A: b.NewPolyAt(level), B: b.NewPolyAt(level), Level: level}
	rng := rand.New(rand.NewSource(seed))
	for _, h := range []Poly{ct.A, ct.B} {
		p := h.(rns.Poly)
		for i, row := range p.Res {
			q := f.c.Mods[i].Q
			for j := range row {
				var v uint64
				switch {
				case pattern&1 != 0 && j%3 == 0:
					v = 0
				case pattern&2 != 0 && j%3 == 1:
					v = q - 1
				case pattern&8 != 0:
					v = rng.Uint64() % 16
				default:
					v = rng.Uint64() % q
				}
				row[j] = v
			}
		}
	}
	dst := BackendCiphertext{A: b.NewPolyAt(level + 1), B: b.NewPolyAt(level + 1), Level: level + 1}
	if err := b.ModSwitch(&dst, ct); err != nil {
		t.Fatal(err)
	}

	// math/big reference over the level's prefix basis.
	towers := 4 - level
	full := f.prefixes[level]
	qk := new(big.Int).SetUint64(f.c.Mods[towers-1].Q)
	half := new(big.Int).Rsh(qk, 1)
	tmp := new(big.Int)
	for hi, pair := range [2][2]Poly{{ct.A, dst.A}, {ct.B, dst.B}} {
		coeffs, err := full.Reconstruct(pair[0].(rns.Poly))
		if err != nil {
			t.Fatal(err)
		}
		got := pair[1].(rns.Poly)
		for j, x := range coeffs {
			y := tmp.Add(x, half)
			y.Div(y, qk)
			for i := 0; i < towers-1; i++ {
				want := new(big.Int).Mod(y, new(big.Int).SetUint64(f.c.Mods[i].Q)).Uint64()
				if got.Res[i][j] != want {
					t.Fatalf("seed %d pattern %x level %d: component %d coeff %d tower %d: got %d, want %d",
						seed, pattern, level, hi, j, i, got.Res[i][j], want)
				}
			}
		}
	}
}

func FuzzModSwitch(f *testing.F) {
	f.Add(int64(1), byte(0), byte(0))
	f.Add(int64(2), byte(1), byte(1))
	f.Add(int64(3), byte(2), byte(2))
	f.Add(int64(4), byte(8), byte(0))
	f.Add(int64(5), byte(3), byte(1))
	f.Add(int64(6), byte(11), byte(2))
	f.Fuzz(func(t *testing.T, seed int64, pattern, levelByte byte) {
		checkModSwitch(t, seed, pattern, levelByte)
	})
}

func TestModSwitchMatchesBigInt(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		for _, pattern := range []byte{0, 1, 2, 3, 8, 11} {
			for level := byte(0); level < 3; level++ {
				checkModSwitch(t, seed, pattern, level)
			}
		}
	}
}
