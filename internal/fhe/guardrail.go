package fhe

import "math/bits"

// Noise-budget guardrails: secret-key-free, conservative noise tracking
// for a serving layer that must refuse an evaluation destined to decrypt
// garbage rather than run it. The scheme's measured diagnostics
// (NoiseBits, NoiseBudgetBits) need the secret key; a server holds only
// ciphertexts, so it tracks an UPPER BOUND on each ciphertext's noise in
// bits — fresh encryptions start at FreshNoiseBits, every multiply maps
// the operands' bounds through PredictMulNoiseBits, every modulus switch
// through PredictModSwitchNoiseBits — and compares the predicted
// post-operation budget against a configured floor. The bound is the same
// MulNoiseBoundBits model the depth property tests pin against measured
// noise, so predicted budget never exceeds real budget: the guardrail
// refuses too early, never too late.

// FreshNoiseBits bounds the noise of a fresh encryption in bits: the
// centered error magnitude is at most noiseBound per coefficient.
const FreshNoiseBits = 4 // bits.Len(noiseBound), with noiseBound = 8

// NoiseModeler is implemented by backends that expose their
// MulNoiseBoundBits parameters — the relinearization gadget shape and the
// base-conversion overshoot — so noise prediction needs no backend type
// switches. Both shipped backends implement it.
type NoiseModeler interface {
	// MulNoiseModel returns the MulNoiseBoundBits parameters at a level:
	// the gadget digit count, the per-digit magnitude in bits, and the
	// base-conversion operand overshoot factor.
	MulNoiseModel(level int) (digits, digitBits, overshoot int)
}

// modSwitchRoundBits bounds the additive rounding noise of one modulus
// switch in bits: the rounding error per coefficient is at most
// (1 + ||s||_1)/2 <= (n+1)/2 for a ternary secret.
func (s *BackendScheme) modSwitchRoundBits() int {
	return bits.Len(uint(s.B.N()+1)) - 1
}

// PredictMulNoiseBits bounds the noise (in bits) of a MulCt result at the
// given level whose operands each carry at most opNoiseBits of noise.
// Returns false when the backend exposes no noise model.
func (s *BackendScheme) PredictMulNoiseBits(level, opNoiseBits int) (int, bool) {
	nm, ok := s.B.(NoiseModeler)
	if !ok {
		return 0, false
	}
	digits, digitBits, overshoot := nm.MulNoiseModel(level)
	return MulNoiseBoundBits(s.B.N(), s.B.PlainModulus(), opNoiseBits, digits, digitBits, overshoot), true
}

// PredictModSwitchNoiseBits bounds the noise of a ModSwitch result whose
// input at the given level carries at most opNoiseBits. Three terms sum:
// the scaled-down input noise — the DeltaBits difference approximates the
// dropped factor's bit width to within one bit, hence the +1 — the
// rounding error (1 + ||s||_1)/2 <= (n+1)/2, and the Delta misalignment
// term: Delta_l does not divide exactly by the dropped factor, and the
// residual multiplies the message, contributing up to T per coefficient.
// (The misalignment term is why the old max(scaled, rounding) shape was
// optimistic by a bit once T outgrew n: at T=40961, n=256 the measured
// post-switch noise is ~bits.Len(T), above both old terms.) The sum of
// three bounded terms is below 4x the largest, hence max + 2.
func (s *BackendScheme) PredictModSwitchNoiseBits(level, opNoiseBits int) int {
	drop := s.B.DeltaBits(level) - s.B.DeltaBits(level+1)
	out := opNoiseBits - drop + 1
	if rb := s.modSwitchRoundBits(); rb > out {
		out = rb
	}
	if tb := bits.Len64(s.B.PlainModulus()); tb > out {
		out = tb
	}
	return out + 2
}

// PredictRotateNoiseBits bounds the noise of a RotateSlots result at the
// given level whose input carries at most opNoiseBits. A rotation is a
// chain of key-switch hops, one per set bit of the (row-normalized) step
// count; each hop permutes the existing noise unchanged and adds the
// key-switch term sum_i d_i*e_i, bounded by digits * n * 2^digitBits *
// noiseBound — the relin term of MulNoiseBoundBits with the same gadget.
// Returns false when the backend exposes no noise model.
func (s *BackendScheme) PredictRotateNoiseBits(level, opNoiseBits, steps int) (int, bool) {
	rows := s.B.N() / 2
	steps = ((steps % rows) + rows) % rows
	return s.predictHopChainNoiseBits(level, opNoiseBits, bits.OnesCount(uint(steps)))
}

// PredictConjugateNoiseBits is PredictRotateNoiseBits for the row-swap
// automorphism: always exactly one key-switch hop.
func (s *BackendScheme) PredictConjugateNoiseBits(level, opNoiseBits int) (int, bool) {
	return s.predictHopChainNoiseBits(level, opNoiseBits, 1)
}

func (s *BackendScheme) predictHopChainNoiseBits(level, opNoiseBits, hops int) (int, bool) {
	nm, ok := s.B.(NoiseModeler)
	if !ok {
		return 0, false
	}
	if hops == 0 {
		return opNoiseBits, true
	}
	digits, digitBits, _ := nm.MulNoiseModel(level)
	ks := bits.Len(uint(digits)) + bits.Len(uint(s.B.N())) + digitBits + bits.Len(uint(noiseBound))
	out := opNoiseBits
	for h := 0; h < hops; h++ {
		if ks > out {
			out = ks
		}
		out++ // the hop's sum of permuted noise and key-switch term
	}
	return out, true
}

// PredictedBudgetBits converts a tracked noise bound at a level into the
// remaining budget the guardrail compares against its floor:
// DeltaBits - noise - 1, clamped at zero — the same shape as the measured
// NoiseBudgetBits, with the bound in place of the measurement.
func (s *BackendScheme) PredictedBudgetBits(level, noiseBits int) int {
	budget := s.B.DeltaBits(level) - noiseBits - 1
	if budget < 0 {
		return 0
	}
	return budget
}
