package fhe

import "math/bits"

// Noise-budget guardrails: secret-key-free, conservative noise tracking
// for a serving layer that must refuse an evaluation destined to decrypt
// garbage rather than run it. The scheme's measured diagnostics
// (NoiseBits, NoiseBudgetBits) need the secret key; a server holds only
// ciphertexts, so it tracks an UPPER BOUND on each ciphertext's noise in
// bits — fresh encryptions start at FreshNoiseBits, every multiply maps
// the operands' bounds through PredictMulNoiseBits, every modulus switch
// through PredictModSwitchNoiseBits — and compares the predicted
// post-operation budget against a configured floor. The bound is the same
// MulNoiseBoundBits model the depth property tests pin against measured
// noise, so predicted budget never exceeds real budget: the guardrail
// refuses too early, never too late.

// FreshNoiseBits bounds the noise of a fresh encryption in bits: the
// centered error magnitude is at most noiseBound per coefficient.
const FreshNoiseBits = 4 // bits.Len(noiseBound), with noiseBound = 8

// NoiseModeler is implemented by backends that expose their
// MulNoiseBoundBits parameters — the relinearization gadget shape and the
// base-conversion overshoot — so noise prediction needs no backend type
// switches. Both shipped backends implement it.
type NoiseModeler interface {
	// MulNoiseModel returns the MulNoiseBoundBits parameters at a level:
	// the gadget digit count, the per-digit magnitude in bits, and the
	// base-conversion operand overshoot factor.
	MulNoiseModel(level int) (digits, digitBits, overshoot int)
}

// modSwitchRoundBits bounds the additive rounding noise of one modulus
// switch in bits: the rounding error per coefficient is at most
// (1 + ||s||_1)/2 <= (n+1)/2 for a ternary secret.
func (s *BackendScheme) modSwitchRoundBits() int {
	return bits.Len(uint(s.B.N()+1)) - 1
}

// PredictMulNoiseBits bounds the noise (in bits) of a MulCt result at the
// given level whose operands each carry at most opNoiseBits of noise.
// Returns false when the backend exposes no noise model.
func (s *BackendScheme) PredictMulNoiseBits(level, opNoiseBits int) (int, bool) {
	nm, ok := s.B.(NoiseModeler)
	if !ok {
		return 0, false
	}
	digits, digitBits, overshoot := nm.MulNoiseModel(level)
	return MulNoiseBoundBits(s.B.N(), s.B.PlainModulus(), opNoiseBits, digits, digitBits, overshoot), true
}

// PredictModSwitchNoiseBits bounds the noise of a ModSwitch result whose
// input at the given level carries at most opNoiseBits: the noise divides
// down with the modulus — the DeltaBits difference approximates the
// dropped factor's bit width to within one bit, hence the +1 — plus the
// rounding floor, which dominates once the scaled-down noise is small.
func (s *BackendScheme) PredictModSwitchNoiseBits(level, opNoiseBits int) int {
	drop := s.B.DeltaBits(level) - s.B.DeltaBits(level+1)
	scaled := opNoiseBits - drop + 1
	if floor := s.modSwitchRoundBits() + 1; scaled < floor {
		return floor
	}
	return scaled
}

// PredictedBudgetBits converts a tracked noise bound at a level into the
// remaining budget the guardrail compares against its floor:
// DeltaBits - noise - 1, clamped at zero — the same shape as the measured
// NoiseBudgetBits, with the bound in place of the measurement.
func (s *BackendScheme) PredictedBudgetBits(level, noiseBits int) int {
	budget := s.B.DeltaBits(level) - noiseBits - 1
	if budget < 0 {
		return 0
	}
	return budget
}
