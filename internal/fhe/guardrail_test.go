package fhe

import (
	"fmt"
	"strings"
	"testing"

	"mqxgo/internal/modmath"
	"mqxgo/internal/rns"
)

// TestGuardrailPredictionsAreConservative pins the serving guardrail's
// noise model against the secret-key measurements on both backends: at
// every step (fresh, depth-1 multiply, modulus switch) the predicted
// noise bound must be at least the measured noise and the predicted
// budget at most the measured budget — the guardrail may refuse early,
// never late. Runs at both the legacy T=257 and the packed-friendly
// T=40961 — the larger plaintext modulus is where the modswitch Delta
// misalignment term (~T per coefficient) outgrows the rounding floor and
// caught the predictor being a bit optimistic.
func TestGuardrailPredictionsAreConservative(t *testing.T) {
	for _, T := range []uint64{257, 40961} {
		t.Run(fmt.Sprintf("T=%d", T), func(t *testing.T) { testGuardrailConservative(t, T) })
	}
}

func testGuardrailConservative(t *testing.T, T uint64) {
	const n = 256
	backends := map[string]Backend{}
	c, err := rns.NewContext(59, 2, n)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRNSBackend(c, T)
	if err != nil {
		t.Fatal(err)
	}
	backends["rns"] = rb
	p, err := NewParams(modmath.DefaultModulus128(), n, T)
	if err != nil {
		t.Fatal(err)
	}
	backends["oracle"] = NewRingBackend(p)

	for name, b := range backends {
		t.Run(name, func(t *testing.T) {
			s := NewBackendScheme(b, 555)
			sk := s.KeyGen()
			rlk, err := s.RelinKeyGen(sk)
			if err != nil {
				t.Fatal(err)
			}
			msg := make([]uint64, n)
			for i := range msg {
				msg[i] = uint64(11*i+3) % T
			}
			ct, err := s.Encrypt(sk, msg)
			if err != nil {
				t.Fatal(err)
			}

			// Fresh: measured noise within the FreshNoiseBits bound,
			// predicted budget within the measured budget.
			freshNoise, err := s.NoiseBits(sk, ct, msg)
			if err != nil {
				t.Fatal(err)
			}
			if freshNoise > FreshNoiseBits {
				t.Fatalf("fresh noise %d bits exceeds FreshNoiseBits %d", freshNoise, FreshNoiseBits)
			}
			freshBudget, err := s.NoiseBudgetBits(sk, ct, msg)
			if err != nil {
				t.Fatal(err)
			}
			if pred := s.PredictedBudgetBits(0, FreshNoiseBits); pred > freshBudget {
				t.Fatalf("fresh predicted budget %d > measured %d", pred, freshBudget)
			}

			// Depth-1 multiply through the tracked bound.
			ct2, err := s.Encrypt(sk, msg)
			if err != nil {
				t.Fatal(err)
			}
			prod, err := s.MulCiphertexts(ct, ct2, rlk)
			if err != nil {
				t.Fatal(err)
			}
			want := NegacyclicProductModT(msg, msg, T)
			predNoise, ok := s.PredictMulNoiseBits(0, FreshNoiseBits)
			if !ok {
				t.Fatalf("%s backend exposes no noise model", name)
			}
			mulNoise, err := s.NoiseBits(sk, prod, want)
			if err != nil {
				t.Fatal(err)
			}
			if mulNoise > predNoise {
				t.Fatalf("depth-1 measured noise %d > predicted bound %d", mulNoise, predNoise)
			}
			mulBudget, err := s.NoiseBudgetBits(sk, prod, want)
			if err != nil {
				t.Fatal(err)
			}
			if pred := s.PredictedBudgetBits(0, predNoise); pred > mulBudget {
				t.Fatalf("depth-1 predicted budget %d > measured %d", pred, mulBudget)
			}

			// Modulus switch: the bound divides down with the modulus.
			low, err := s.ModSwitch(prod)
			if err != nil {
				t.Fatal(err)
			}
			predLow := s.PredictModSwitchNoiseBits(0, predNoise)
			lowNoise, err := s.NoiseBits(sk, low, want)
			if err != nil {
				t.Fatal(err)
			}
			if lowNoise > predLow {
				t.Fatalf("post-switch measured noise %d > predicted bound %d", lowNoise, predLow)
			}
			lowBudget, err := s.NoiseBudgetBits(sk, low, want)
			if err != nil {
				t.Fatal(err)
			}
			if pred := s.PredictedBudgetBits(1, predLow); pred > lowBudget {
				t.Fatalf("post-switch predicted budget %d > measured %d", pred, lowBudget)
			}

			// Rotation: the predictor's key-switch hop chain must cover
			// the measured noise too. Only meaningful at a packed-friendly
			// T, where slot semantics give us the expected plaintext.
			if _, encErr := s.SlotEncoder(); encErr == nil {
				gk, err := s.GaloisKeyGen(sk)
				if err != nil {
					t.Fatal(err)
				}
				const steps = 3
				rot, err := s.RotateSlots(prod, steps, gk)
				if err != nil {
					t.Fatal(err)
				}
				slots, err := s.DecodeSlots(want)
				if err != nil {
					t.Fatal(err)
				}
				rotWant, err := s.EncodeSlots(rotatedModel(slots, steps))
				if err != nil {
					t.Fatal(err)
				}
				predRot, ok := s.PredictRotateNoiseBits(0, predNoise, steps)
				if !ok {
					t.Fatalf("%s backend exposes no noise model for rotate", name)
				}
				rotNoise, err := s.NoiseBits(sk, rot, rotWant)
				if err != nil {
					t.Fatal(err)
				}
				if rotNoise > predRot {
					t.Fatalf("rotate measured noise %d > predicted bound %d", rotNoise, predRot)
				}
			}
		})
	}
}

// TestSecretKeyHandleValidation: every scheme entry point taking a secret
// key must reject nil and foreign handles with an error — a serving
// process holding many tenants' keys cannot afford a panic (or worse, a
// silent wrong answer) when a handle is routed to the wrong backend.
func TestSecretKeyHandleValidation(t *testing.T) {
	const n, T = 256, 257
	c, err := rns.NewContext(59, 2, n)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRNSBackend(c, T)
	if err != nil {
		t.Fatal(err)
	}
	s := NewBackendScheme(rb, 777)
	sk := s.KeyGen()
	msg := make([]uint64, n)
	ct, err := s.Encrypt(sk, msg)
	if err != nil {
		t.Fatal(err)
	}

	p, err := NewParams(modmath.DefaultModulus128(), n, T)
	if err != nil {
		t.Fatal(err)
	}
	foreignScheme := NewBackendScheme(NewRingBackend(p), 778)
	foreign := foreignScheme.KeyGen()

	for name, bad := range map[string]BackendSecretKey{
		"nil":     {},
		"foreign": foreign,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Encrypt(bad, msg); err == nil {
				t.Error("Encrypt accepted a bad secret key")
			}
			if _, err := s.Decrypt(bad, ct); err == nil {
				t.Error("Decrypt accepted a bad secret key")
			}
			if _, err := s.RelinKeyGen(bad); err == nil {
				t.Error("RelinKeyGen accepted a bad secret key")
			}
			if _, err := s.NoiseBits(bad, ct, msg); err == nil {
				t.Error("NoiseBits accepted a bad secret key")
			}
			if _, err := s.NoiseBudgetBits(bad, ct, msg); err == nil {
				t.Error("NoiseBudgetBits accepted a bad secret key")
			}
		})
	}

	// The error should say what went wrong, not just that something did.
	_, err = s.Decrypt(foreign, ct)
	if err == nil || !strings.Contains(err.Error(), "secret key") {
		t.Errorf("foreign-key error %q does not mention the secret key", err)
	}
}
