package fhe

import (
	"math/rand"
	"strings"
	"testing"

	"mqxgo/internal/modmath"
	"mqxgo/internal/rns"
	"mqxgo/internal/u128"
)

// The hardening pass's regression suite: every public scheme-layer entry
// point must return an error — never panic — on malformed input: handles
// from the other backend, nil components, truncated shapes, unreduced
// residues, out-of-range or mismatched levels, foreign relinearization
// keys, and switching off the bottom of the chain.

// errNotPanic runs f, converts any panic into a test failure, and asserts
// f reported an error.
func errNotPanic(t *testing.T, name string, f func() error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("%s: panicked instead of returning an error: %v", name, r)
		}
	}()
	if err := f(); err == nil {
		t.Errorf("%s: expected an error for malformed input", name)
	} else if !strings.HasPrefix(err.Error(), "fhe:") {
		t.Errorf("%s: error %q does not carry the fhe: prefix", name, err)
	}
}

func TestSchemeLayerRejectsMalformedInput(t *testing.T) {
	const n, T = 32, 257
	params, err := NewParams(modmath.DefaultModulus128(), n, T)
	if err != nil {
		t.Fatal(err)
	}
	ringB := NewRingBackend(params)
	c, err := rns.NewContext(59, 3, n)
	if err != nil {
		t.Fatal(err)
	}
	rnsB, err := NewRNSBackend(c, T)
	if err != nil {
		t.Fatal(err)
	}

	schemes := map[string]*BackendScheme{
		ringB.Name(): NewBackendScheme(ringB, 31),
		rnsB.Name():  NewBackendScheme(rnsB, 31),
	}
	keys := map[string]BackendSecretKey{}
	relin := map[string]BackendRelinKey{}
	good := map[string]BackendCiphertext{}
	msg := make([]uint64, n)
	for name, s := range schemes {
		keys[name] = s.KeyGen()
		rk, rkErr := s.RelinKeyGen(keys[name])
		if rkErr != nil {
			t.Fatal(rkErr)
		}
		relin[name] = rk
		ct, err := s.Encrypt(keys[name], msg)
		if err != nil {
			t.Fatal(err)
		}
		good[name] = ct
	}
	otherOf := map[string]string{ringB.Name(): rnsB.Name(), rnsB.Name(): ringB.Name()}

	for name, s := range schemes {
		s := s
		sk, rlk, ok := keys[name], relin[name], good[name]
		foreign := good[otherOf[name]]
		foreignKey := relin[otherOf[name]]
		t.Run(name, func(t *testing.T) {
			// Cross-backend ciphertext mixing at every entry point.
			errNotPanic(t, "Decrypt/foreign", func() error {
				_, err := s.Decrypt(sk, foreign)
				return err
			})
			errNotPanic(t, "AddCiphertexts/foreign", func() error {
				_, err := s.AddCiphertexts(ok, foreign)
				return err
			})
			errNotPanic(t, "MulCiphertexts/foreign", func() error {
				_, err := s.MulCiphertexts(ok, foreign, rlk)
				return err
			})
			errNotPanic(t, "ModSwitch/foreign", func() error {
				_, err := s.ModSwitch(foreign)
				return err
			})
			// Foreign relinearization key.
			errNotPanic(t, "MulCiphertexts/foreignKey", func() error {
				_, err := s.MulCiphertexts(ok, ok, foreignKey)
				return err
			})
			// A key of the RIGHT type from a DIFFERENT backend instance:
			// it passes the type assertion, so the shape validation has
			// to catch it before the digit loop indexes out of range.
			errNotPanic(t, "MulCiphertexts/sameTypeOtherBackendKey", func() error {
				var otherB Backend
				switch s.B.(type) {
				case *rnsBackend:
					c2, err := rns.NewContext(59, 2, n)
					if err != nil {
						return err
					}
					if otherB, err = NewRNSBackend(c2, 257); err != nil {
						return err
					}
				default:
					p2, err := NewParams(modmath.DefaultModulus128(), 2*n, 257)
					if err != nil {
						return err
					}
					otherB = NewRingBackend(p2)
				}
				os := NewBackendScheme(otherB, 3)
				otherKey, keyErr := os.RelinKeyGen(os.KeyGen())
				if keyErr != nil {
					return keyErr
				}
				_, err := s.MulCiphertexts(ok, ok, otherKey)
				return err
			})
			// Nil components.
			errNotPanic(t, "Decrypt/nil", func() error {
				_, err := s.Decrypt(sk, BackendCiphertext{})
				return err
			})
			errNotPanic(t, "ModSwitch/nil", func() error {
				_, err := s.ModSwitch(BackendCiphertext{A: ok.A})
				return err
			})
			// Levels outside the chain.
			errNotPanic(t, "Decrypt/negativeLevel", func() error {
				_, err := s.Decrypt(sk, BackendCiphertext{A: ok.A, B: ok.B, Level: -1})
				return err
			})
			errNotPanic(t, "Decrypt/hugeLevel", func() error {
				_, err := s.Decrypt(sk, BackendCiphertext{A: ok.A, B: ok.B, Level: 99})
				return err
			})
			// Mismatched operand levels.
			errNotPanic(t, "AddCiphertexts/levelMismatch", func() error {
				down, err := s.ModSwitch(ok)
				if err != nil {
					return err
				}
				_, err = s.AddCiphertexts(ok, down)
				return err
			})
			// Level-tagged handle whose shape belongs to another level.
			errNotPanic(t, "Decrypt/levelShapeLie", func() error {
				_, err := s.Decrypt(sk, BackendCiphertext{A: ok.A, B: ok.B, Level: 1})
				return err
			})
			// Switching off the bottom of the chain.
			errNotPanic(t, "ModSwitch/bottom", func() error {
				ct := ok
				var err error
				for ct.Level < s.B.Levels()-1 {
					if ct, err = s.ModSwitch(ct); err != nil {
						return nil // unexpected, surfaced below by level check
					}
				}
				_, err = s.ModSwitch(ct)
				return err
			})
			// Foreign plaintext polynomial.
			errNotPanic(t, "MulPlain/foreign", func() error {
				_, err := s.MulPlain(ok, foreign.A)
				return err
			})
		})
	}

	// Shape corruption, per backend representation.
	t.Run("u128/truncated", func(t *testing.T) {
		s := schemes[ringB.Name()]
		ok := good[ringB.Name()]
		errNotPanic(t, "Decrypt/truncated", func() error {
			_, err := s.Decrypt(keys[ringB.Name()],
				BackendCiphertext{A: ok.A.([]u128.U128)[:n-1], B: ok.B})
			return err
		})
	})
	t.Run("rns/missingTower", func(t *testing.T) {
		s := schemes[rnsB.Name()]
		ok := good[rnsB.Name()]
		errNotPanic(t, "Decrypt/missingTower", func() error {
			short := rns.Poly{Res: ok.A.(rns.Poly).Res[:1]}
			_, err := s.Decrypt(keys[rnsB.Name()], BackendCiphertext{A: short, B: ok.B})
			return err
		})
	})
}

// TestDomainMismatchedHandlesAreRejected covers the representation half
// of the hardening gate introduced with double-CRT residency: a pair of
// handles resting in different domains must be refused — never silently
// mixed, which would tensor evaluation points against coefficients — at
// both the scheme layer and the raw backend seam, and an unknown domain
// tag is rejected outright.
func TestDomainMismatchedHandlesAreRejected(t *testing.T) {
	const n, T = 32, 257
	params, err := NewParams(modmath.DefaultModulus128(), n, T)
	if err != nil {
		t.Fatal(err)
	}
	c, err := rns.NewContext(59, 3, n)
	if err != nil {
		t.Fatal(err)
	}
	rnsB, err := NewRNSBackend(c, T)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []Backend{NewRingBackend(params), rnsB} {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			s := NewBackendScheme(b, 61)
			sk := s.KeyGen()
			rlk, rlkErr := s.RelinKeyGen(sk)
			if rlkErr != nil {
				t.Fatal(rlkErr)
			}
			res, err := s.Encrypt(sk, make([]uint64, n))
			if err != nil {
				t.Fatal(err)
			}
			coe, err := s.ConvertDomain(res, DomainCoeff)
			if err != nil {
				t.Fatal(err)
			}

			// Scheme layer: every two-operand entry point refuses the pair.
			errNotPanic(t, "AddCiphertexts/mixedDomain", func() error {
				_, err := s.AddCiphertexts(res, coe)
				return err
			})
			errNotPanic(t, "SubCiphertexts/mixedDomain", func() error {
				_, err := s.SubCiphertexts(coe, res)
				return err
			})
			errNotPanic(t, "MulCiphertexts/mixedDomain", func() error {
				_, err := s.MulCiphertexts(res, coe, rlk)
				return err
			})
			// Unknown domain tag on an otherwise well-formed handle.
			errNotPanic(t, "Decrypt/unknownDomainTag", func() error {
				_, err := s.Decrypt(sk, BackendCiphertext{A: res.A, B: res.B, Domain: 7})
				return err
			})
			errNotPanic(t, "ConvertDomain/unknownTarget", func() error {
				_, err := s.ConvertDomain(res, 7)
				return err
			})

			// Backend seam: destination tags that disagree with the
			// operands select a pipeline the scratch was not shaped for,
			// so MulCt and ModSwitch must reject them up front.
			rng := rand.New(rand.NewSource(62))
			bRlk := b.RelinKeyGen(sk.S, rng)
			errNotPanic(t, "MulCt/dstDomainMismatch", func() error {
				dst := BackendCiphertext{A: b.NewPoly(), B: b.NewPoly(), Domain: DomainCoeff}
				return b.MulCt(&dst, res, res, bRlk)
			})
			errNotPanic(t, "MulCt/operandDomainMismatch", func() error {
				dst := BackendCiphertext{A: b.NewPoly(), B: b.NewPoly(), Domain: DomainNTT}
				return b.MulCt(&dst, res, coe, bRlk)
			})
			errNotPanic(t, "ModSwitch/dstDomainMismatch", func() error {
				dst := BackendCiphertext{A: b.NewPolyAt(1), B: b.NewPolyAt(1), Level: 1, Domain: DomainCoeff}
				return b.ModSwitch(&dst, res)
			})
			// Coefficient-domain relin keys exist as a benchmark layout;
			// feeding one to the resident pipeline must error rather than
			// relinearize evaluation points against coefficient key rows.
			if gen, okGen := b.(CoeffDomainRelinKeyGenerator); okGen {
				cKey := gen.RelinKeyGenCoeffDomain(sk.S, rand.New(rand.NewSource(63)))
				errNotPanic(t, "MulCt/coeffKeyResidentOperands", func() error {
					dst := BackendCiphertext{A: b.NewPoly(), B: b.NewPoly(), Domain: DomainNTT}
					return b.MulCt(&dst, res, res, cKey)
				})
			}
		})
	}
}

// TestGaloisCallsRejectMalformedInput extends the hardening gate to the
// rotation seam: foreign ciphertexts and Galois keys, keys of the right
// type from a differently-shaped backend instance, nil keys, and
// destination tags (level, domain) that disagree with the source must all
// be refused with an error — never a panic or a silently wrong
// permutation.
func TestGaloisCallsRejectMalformedInput(t *testing.T) {
	const n, T = 32, 257
	params, err := NewParams(modmath.DefaultModulus128(), n, T)
	if err != nil {
		t.Fatal(err)
	}
	ringB := NewRingBackend(params)
	c, err := rns.NewContext(59, 3, n)
	if err != nil {
		t.Fatal(err)
	}
	rnsB, err := NewRNSBackend(c, T)
	if err != nil {
		t.Fatal(err)
	}

	schemes := map[string]*BackendScheme{
		ringB.Name(): NewBackendScheme(ringB, 41),
		rnsB.Name():  NewBackendScheme(rnsB, 41),
	}
	galois := map[string]BackendGaloisKey{}
	good := map[string]BackendCiphertext{}
	for name, s := range schemes {
		sk := s.KeyGen()
		gk, gkErr := s.GaloisKeyGen(sk)
		if gkErr != nil {
			t.Fatal(gkErr)
		}
		galois[name] = gk
		ct, err := s.Encrypt(sk, make([]uint64, n))
		if err != nil {
			t.Fatal(err)
		}
		good[name] = ct
	}
	otherOf := map[string]string{ringB.Name(): rnsB.Name(), rnsB.Name(): ringB.Name()}

	for name, s := range schemes {
		s := s
		ok, gk := good[name], galois[name]
		foreign := good[otherOf[name]]
		foreignKey := galois[otherOf[name]]
		t.Run(name, func(t *testing.T) {
			errNotPanic(t, "RotateSlots/foreignCt", func() error {
				_, err := s.RotateSlots(foreign, 1, gk)
				return err
			})
			errNotPanic(t, "RotateSlots/foreignKey", func() error {
				_, err := s.RotateSlots(ok, 1, foreignKey)
				return err
			})
			errNotPanic(t, "Conjugate/nilKey", func() error {
				_, err := s.Conjugate(ok, nil)
				return err
			})
			// A key of the RIGHT type from a backend with a different ring
			// degree: it passes the type assertion, so the shape check has
			// to catch it before the permutation tables index out of range.
			errNotPanic(t, "RotateSlots/sameTypeOtherBackendKey", func() error {
				var otherB Backend
				switch s.B.(type) {
				case *rnsBackend:
					c2, err := rns.NewContext(59, 2, 2*n)
					if err != nil {
						return err
					}
					if otherB, err = NewRNSBackend(c2, T); err != nil {
						return err
					}
				default:
					p2, err := NewParams(modmath.DefaultModulus128(), 2*n, T)
					if err != nil {
						return err
					}
					otherB = NewRingBackend(p2)
				}
				os := NewBackendScheme(otherB, 43)
				otherKey, keyErr := os.GaloisKeyGen(os.KeyGen())
				if keyErr != nil {
					return keyErr
				}
				_, err := s.RotateSlots(ok, 1, otherKey)
				return err
			})
			errNotPanic(t, "RotateSlots/nilCt", func() error {
				_, err := s.RotateSlots(BackendCiphertext{}, 1, gk)
				return err
			})
			errNotPanic(t, "RotateSlots/hugeLevel", func() error {
				_, err := s.RotateSlots(BackendCiphertext{A: ok.A, B: ok.B, Level: 99, Domain: ok.Domain}, 1, gk)
				return err
			})

			// Backend seam: destination tags that disagree with the source.
			b := s.B
			errNotPanic(t, "RotateSlots/dstLevelMismatch", func() error {
				dst := BackendCiphertext{A: b.NewPolyAt(1), B: b.NewPolyAt(1), Level: 1, Domain: ok.Domain}
				return b.RotateSlots(&dst, ok, 1, gk)
			})
			errNotPanic(t, "RotateSlots/dstDomainMismatch", func() error {
				wrong := DomainCoeff
				if ok.Domain == DomainCoeff {
					wrong = DomainNTT
				}
				dst := BackendCiphertext{A: b.NewPoly(), B: b.NewPoly(), Domain: wrong}
				return b.RotateSlots(&dst, ok, 1, gk)
			})
			errNotPanic(t, "Conjugate/dstLevelMismatch", func() error {
				dst := BackendCiphertext{A: b.NewPolyAt(1), B: b.NewPolyAt(1), Level: 1, Domain: ok.Domain}
				return b.Conjugate(&dst, ok, gk)
			})
		})
	}
}

// TestSchemeLayerRejectsUnreducedResidues covers the value-range half of
// the gate: handles with coefficients at or above the (level) modulus are
// adversarial inputs — on the oracle they are exactly what used to reach
// the rescale panic — and both backends must refuse them up front.
func TestSchemeLayerRejectsUnreducedResidues(t *testing.T) {
	const n, T = 32, 257
	params, err := NewParams(modmath.DefaultModulus128(), n, T)
	if err != nil {
		t.Fatal(err)
	}
	ringB := NewRingBackend(params)
	c, err := rns.NewContext(59, 2, n)
	if err != nil {
		t.Fatal(err)
	}
	rnsB, err := NewRNSBackend(c, T)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []Backend{ringB, rnsB} {
		t.Run(b.Name(), func(t *testing.T) {
			s := NewBackendScheme(b, 17)
			sk := s.KeyGen()
			ct, err := s.Encrypt(sk, make([]uint64, n))
			if err != nil {
				t.Fatal(err)
			}
			// Corrupt one residue past the modulus through the backend's
			// own representation.
			bad := BackendCiphertext{A: b.Copy(ct.A), B: b.Copy(ct.B)}
			switch p := bad.A.(type) {
			case rns.Poly:
				p.Res[0][3] = c.Mods[0].Q // == q_0: not a reduced residue
			case []u128.U128:
				p[3] = params.Mod.Q // == q: not a reduced residue
			default:
				t.Fatalf("unexpected handle type %T", bad.A)
			}
			errNotPanic(t, "Decrypt/unreduced", func() error {
				_, err := s.Decrypt(sk, bad)
				return err
			})
		})
	}
}
