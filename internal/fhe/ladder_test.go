package fhe

import (
	"fmt"
	"math/rand"
	"testing"

	"mqxgo/internal/modmath"
	"mqxgo/internal/rns"
	"mqxgo/internal/u128"
)

// The modulus-ladder differential harness: a depth-L squaring chain with
// a ModSwitch after every multiply runs through the 128-bit oracle
// backend (exact big-integer switching) and the RNS backend (Rescaler,
// residues only), and after EVERY DropLevel both decryptions must be
// bit-identical to each other and to the schoolbook plaintext product.

// ladderDepth picks the deepest chain both backends support with
// headroom: the last multiply needs at least two RNS towers, and the
// oracle needs a level whose Delta clears its relin noise.
func ladderDepth(oracle, rnsB Backend) int {
	depth := min(rnsB.Levels()-1, oracle.Levels()-1)
	return min(depth, 3)
}

func TestLadderDifferentialAcrossBackends(t *testing.T) {
	const T = 257
	sizes := []int{64, 1024, 4096}
	if testing.Short() {
		sizes = []int{64, 1024}
	}
	for _, n := range sizes {
		params, err := NewParams(modmath.DefaultModulus128(), n, T)
		if err != nil {
			t.Fatal(err)
		}
		oracle := NewRingBackend(params)
		for _, k := range []int{3, 4, 5} {
			c, err := rns.NewContext(59, k, n)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := NewRNSBackend(c, T)
			if err != nil {
				t.Fatal(err)
			}
			t.Run(fmt.Sprintf("n%d/k%d", n, k), func(t *testing.T) {
				depth := ladderDepth(oracle, rb)
				rng := rand.New(rand.NewSource(int64(n + k)))
				msg := make([]uint64, n)
				for i := range msg {
					msg[i] = rng.Uint64() % T
				}

				type chain struct {
					s   *BackendScheme
					sk  BackendSecretKey
					rlk BackendRelinKey
					ct  BackendCiphertext
				}
				chains := make([]*chain, 0, 2)
				for _, b := range []Backend{oracle, rb} {
					ch := &chain{s: NewBackendScheme(b, 42)}
					ch.sk = ch.s.KeyGen()
					rk, rkErr := ch.s.RelinKeyGen(ch.sk)
					if rkErr != nil {
						t.Fatal(rkErr)
					}
					ch.rlk = rk
					var err error
					if ch.ct, err = ch.s.Encrypt(ch.sk, msg); err != nil {
						t.Fatal(err)
					}
					chains = append(chains, ch)
				}

				compare := func(stage string, expected []uint64) {
					t.Helper()
					var ref []uint64
					for i, ch := range chains {
						got, err := ch.s.Decrypt(ch.sk, ch.ct)
						if err != nil {
							t.Fatalf("%s: %s decrypt: %v", stage, ch.s.B.Name(), err)
						}
						if i == 0 {
							ref = got
						}
						for j := range expected {
							if got[j] != expected[j] {
								t.Fatalf("%s: %s coeff %d: got %d, want %d",
									stage, ch.s.B.Name(), j, got[j], expected[j])
							}
							if got[j] != ref[j] {
								t.Fatalf("%s: %s coeff %d: %d differs from oracle %d",
									stage, ch.s.B.Name(), j, got[j], ref[j])
							}
						}
					}
				}

				expected := append([]uint64(nil), msg...)
				for level := 0; level < depth; level++ {
					for _, ch := range chains {
						ch.ct = mustCT(ch.s.MulCiphertexts(ch.ct, ch.ct, ch.rlk))
					}
					expected = NegacyclicProductModT(expected, expected, T)
					compare(fmt.Sprintf("after mul at level %d", level), expected)
					for _, ch := range chains {
						ch.ct = mustCT(ch.s.ModSwitch(ch.ct))
						if ch.ct.Level != level+1 {
							t.Fatalf("ModSwitch left %s at level %d, want %d",
								ch.s.B.Name(), ch.ct.Level, level+1)
						}
					}
					compare(fmt.Sprintf("after switch to level %d", level+1), expected)
				}
				for _, ch := range chains {
					budget, err := ch.s.NoiseBudgetBits(ch.sk, ch.ct, expected)
					if err != nil {
						t.Fatal(err)
					}
					if budget <= 0 {
						t.Fatalf("%s: depth-%d ladder ended with budget %d, want > 0",
							ch.s.B.Name(), depth, budget)
					}
				}
			})
		}
	}
}

// TestLadderDepth3BudgetProperty is the provisioning story the ladder
// exists for, as a property test. ModSwitch is budget-neutral in BFV
// (Delta and the noise shrink together), so the ladder cannot create
// headroom the top modulus didn't have — what it changes is the COST of
// that headroom: a k=4 basis switched down between multiplies finishes a
// depth-3 chain paying k=2 prices on the later levels, with positive
// budget at the bottom. With switching disabled you must pick a fixed
// basis instead, and the basis matching the ladder's final budget (k=2,
// the PR 4 single-multiply provisioning) exhausts its budget before
// depth 3: decryption breaks and NoiseBudgetBits reads zero.
func TestLadderDepth3BudgetProperty(t *testing.T) {
	n := 4096
	if testing.Short() {
		n = 1024
	}
	// T is chosen so each multiply burns ~25 budget bits: the fixed k=2
	// basis then dies between depth 2 and depth 3 with ~19 bits of
	// margin, while the ladder's final level keeps ~30 bits.
	const T = 4099
	const depth = 3

	// The ladder: k=4, a switch after every multiply.
	c4, err := rns.NewContext(59, 4, n)
	if err != nil {
		t.Fatal(err)
	}
	rb4, err := NewRNSBackend(c4, T)
	if err != nil {
		t.Fatal(err)
	}
	// Switching disabled: the fixed k=2 basis whose budget matches the
	// ladder's final level.
	c2, err := rns.NewContext(59, 2, n)
	if err != nil {
		t.Fatal(err)
	}
	rb2, err := NewRNSBackend(c2, T)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(777))
	msg := make([]uint64, n)
	for i := range msg {
		msg[i] = rng.Uint64() % T
	}
	expected := append([]uint64(nil), msg...)
	for d := 0; d < depth; d++ {
		expected = NegacyclicProductModT(expected, expected, T)
	}

	runChain := func(b Backend, switching bool) (ct BackendCiphertext, s *BackendScheme, sk BackendSecretKey) {
		s = NewBackendScheme(b, 9)
		sk = s.KeyGen()
		rlk, rlkErr := s.RelinKeyGen(sk)
		if rlkErr != nil {
			t.Fatal(rlkErr)
		}
		ct, err := s.Encrypt(sk, msg)
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d < depth; d++ {
			ct = mustCT(s.MulCiphertexts(ct, ct, rlk))
			if switching && d < depth-1 {
				ct = mustCT(s.ModSwitch(ct))
			}
		}
		return ct, s, sk
	}

	// With switching: depth 3 lands at level 2 (two towers) with budget
	// to spare and the right plaintext.
	ct, s, sk := runChain(rb4, true)
	if ct.Level != depth-1 {
		t.Fatalf("ladder chain ended at level %d, want %d", ct.Level, depth-1)
	}
	got, err := s.Decrypt(sk, ct)
	if err != nil {
		t.Fatal(err)
	}
	for i := range expected {
		if got[i] != expected[i] {
			t.Fatalf("switched depth-3 chain wrong at coeff %d: got %d, want %d", i, got[i], expected[i])
		}
	}
	budget, err := s.NoiseBudgetBits(sk, ct, expected)
	if err != nil {
		t.Fatal(err)
	}
	if budget <= 0 {
		t.Fatalf("switched depth-3 chain has budget %d, want > 0", budget)
	}

	// Without switching on the matched fixed basis: the same circuit
	// exhausts the budget and decrypts garbage.
	ct2, s2, sk2 := runChain(rb2, false)
	got2, err := s2.Decrypt(sk2, ct2)
	if err != nil {
		t.Fatal(err)
	}
	mismatch := false
	for i := range expected {
		if got2[i] != expected[i] {
			mismatch = true
			break
		}
	}
	if !mismatch {
		t.Fatal("unswitched k=2 depth-3 chain unexpectedly survived")
	}
	budget2, err := s2.NoiseBudgetBits(sk2, ct2, expected)
	if err != nil {
		t.Fatal(err)
	}
	if budget2 != 0 {
		t.Fatalf("unswitched k=2 depth-3 chain failed with budget %d, want 0", budget2)
	}
	t.Logf("depth-3: k=4 ladder budget %d bits at level %d; fixed k=2 budget %d", budget, ct.Level, budget2)
}

// TestResidentLadderMatchesCoeffPath is the PR 6 differential gate for
// double-CRT residency: the same squaring-and-switching ladder runs twice
// against ONE backend with ONE key set — one handle left in its natural
// DomainNTT resting state, the other converted to DomainCoeff right after
// encryption and kept there. Every transform on the resident pipeline is
// exact, so after EVERY multiply and EVERY level drop the two handles
// must decrypt bit-identically to each other and to the schoolbook
// product — and, for the RNS backend, converting the resident handle
// back to coefficient form must reproduce the coefficient handle's
// residues bit for bit, not merely decrypt alike.
func TestResidentLadderMatchesCoeffPath(t *testing.T) {
	const T = 257
	sizes := []int{64, 4096}
	if testing.Short() {
		sizes = []int{64, 1024}
	}
	for _, n := range sizes {
		params, err := NewParams(modmath.DefaultModulus128(), n, T)
		if err != nil {
			t.Fatal(err)
		}
		backends := []Backend{NewRingBackend(params)}
		for _, k := range []int{3, 4} {
			c, err := rns.NewContext(59, k, n)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := NewRNSBackend(c, T)
			if err != nil {
				t.Fatal(err)
			}
			backends = append(backends, rb)
		}
		for _, b := range backends {
			b := b
			t.Run(fmt.Sprintf("n%d/%s/lv%d", n, b.Name(), b.Levels()), func(t *testing.T) {
				s := NewBackendScheme(b, 606)
				sk := s.KeyGen()
				rlk, rlkErr := s.RelinKeyGen(sk)
				if rlkErr != nil {
					t.Fatal(rlkErr)
				}
				rng := rand.New(rand.NewSource(int64(3*n + b.Levels())))
				msg := make([]uint64, n)
				for i := range msg {
					msg[i] = rng.Uint64() % T
				}
				res := mustCT(s.Encrypt(sk, msg))
				if res.Domain != DomainNTT {
					t.Fatalf("fresh encryption rests in %s, want %s", res.Domain, DomainNTT)
				}
				coe := mustCT(s.ConvertDomain(res, DomainCoeff))

				dec := func(ct BackendCiphertext) []uint64 {
					t.Helper()
					got, err := s.Decrypt(sk, ct)
					if err != nil {
						t.Fatal(err)
					}
					return got
				}
				check := func(stage string, expected []uint64) {
					t.Helper()
					gotR := dec(res)
					gotC := dec(coe)
					for j := range expected {
						if gotR[j] != expected[j] || gotC[j] != expected[j] {
							t.Fatalf("%s: coeff %d: resident %d, coeff-path %d, want %d",
								stage, j, gotR[j], gotC[j], expected[j])
						}
					}
					if _, isRNS := s.B.(*rnsBackend); !isRNS {
						return
					}
					// Residue-level identity, stronger than matching
					// decryptions: the resident handle crossed back into
					// coefficient form must BE the coefficient handle.
					down := mustCT(s.ConvertDomain(res, DomainCoeff))
					for name, pair := range map[string][2]Poly{
						"A": {down.A, coe.A}, "B": {down.B, coe.B},
					} {
						dp, cp := pair[0].(rns.Poly), pair[1].(rns.Poly)
						for tau := range cp.Res {
							for j := range cp.Res[tau] {
								if dp.Res[tau][j] != cp.Res[tau][j] {
									t.Fatalf("%s: component %s tower %d coeff %d: resident-converted %d != coeff-path %d",
										stage, name, tau, j, dp.Res[tau][j], cp.Res[tau][j])
								}
							}
						}
					}
				}

				expected := append([]uint64(nil), msg...)
				check("fresh", expected)
				depth := min(b.Levels()-1, 3)
				for level := 0; level < depth; level++ {
					res = mustCT(s.MulCiphertexts(res, res, rlk))
					coe = mustCT(s.MulCiphertexts(coe, coe, rlk))
					if res.Domain != DomainNTT || coe.Domain != DomainCoeff {
						t.Fatalf("multiply at level %d moved a handle: resident now %s, coeff-path now %s",
							level, res.Domain, coe.Domain)
					}
					expected = NegacyclicProductModT(expected, expected, T)
					check(fmt.Sprintf("after mul at level %d", level), expected)
					res = mustCT(s.ModSwitch(res))
					coe = mustCT(s.ModSwitch(coe))
					if res.Domain != DomainNTT || coe.Domain != DomainCoeff {
						t.Fatalf("drop to level %d moved a handle: resident now %s, coeff-path now %s",
							level+1, res.Domain, coe.Domain)
					}
					check(fmt.Sprintf("after drop to level %d", level+1), expected)
				}
			})
		}
	}
}

// TestOracleRescaleOutOfRangeIsDetected drives the once-unreachable
// "oracle rescale out of range" panic path with an adversarial ciphertext
// whose coefficients are NOT reduced modulo q (over-noisy in the most
// literal sense: the handle carries values up to 2^128). The tensor then
// overflows the oracle's wide CRT basis; since PR 5 the condition is
// detected and returned as an error from MulCt — and the scheme layer's
// range validation refuses the handle before it even gets there.
func TestOracleRescaleOutOfRangeIsDetected(t *testing.T) {
	const n, T = 64, 257
	params, err := NewParams(modmath.DefaultModulus128(), n, T)
	if err != nil {
		t.Fatal(err)
	}
	b := NewRingBackend(params)
	s := NewBackendScheme(b, 5)
	sk := s.KeyGen()
	rlk, rlkErr := s.RelinKeyGen(sk)
	if rlkErr != nil {
		t.Fatal(rlkErr)
	}

	evil := func() BackendCiphertext {
		a := make([]u128.U128, n)
		bb := make([]u128.U128, n)
		for i := range a {
			a[i] = u128.New(^uint64(0), uint64(i)*0x9e3779b97f4a7c15)
			bb[i] = u128.New(^uint64(0)>>1, ^uint64(i))
		}
		return BackendCiphertext{A: a, B: bb}
	}

	// Backend seam: the rescale detection fires instead of a panic.
	dst := BackendCiphertext{A: b.NewPoly(), B: b.NewPoly()}
	if err := b.MulCt(&dst, evil(), evil(), rlk); err == nil {
		t.Fatal("expected oracle rescale range error for unreduced ciphertext")
	} else {
		t.Logf("backend error (expected): %v", err)
	}

	// Scheme layer: the provenance/range gate rejects the handle first.
	good, err := s.Encrypt(sk, make([]uint64, n))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MulCiphertexts(evil(), good, rlk); err == nil {
		t.Fatal("expected scheme-layer validation error for unreduced ciphertext")
	}
}
