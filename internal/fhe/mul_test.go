package fhe

import (
	"fmt"
	"math/rand"
	"testing"

	"mqxgo/internal/modmath"
	"mqxgo/internal/rns"
)

// The cross-backend differential harness for homomorphic multiplication:
// the same (keygen, encrypt, relin-keygen, MulCt, decrypt) trace runs
// through the 128-bit oracle backend — exact integer tensor, exact big-int
// rescale — and through the BEHZ RNS backend, and the decrypted plaintexts
// must be bit-identical (and equal to the schoolbook negacyclic product
// mod T). Table-driven over ring degree, tower count, and message
// pattern.

// msgPatterns enumerates the harness's message shapes.
var msgPatterns = []struct {
	name string
	fill func(msg []uint64, t uint64, rng *rand.Rand)
}{
	{"zero", func(msg []uint64, t uint64, rng *rand.Rand) {
		clear(msg)
	}},
	{"max", func(msg []uint64, t uint64, rng *rand.Rand) {
		for i := range msg {
			msg[i] = t - 1
		}
	}},
	{"random", func(msg []uint64, t uint64, rng *rand.Rand) {
		for i := range msg {
			msg[i] = rng.Uint64() % t
		}
	}},
	{"impulse", func(msg []uint64, t uint64, rng *rand.Rand) {
		clear(msg)
		msg[len(msg)/3] = t - 1
	}},
}

// mulTrace runs the full multiply trace on one backend with a seeded RNG
// and returns the decrypted product.
func mulTrace(t *testing.T, b Backend, seed int64, m1, m2 []uint64) []uint64 {
	t.Helper()
	s := NewBackendScheme(b, seed)
	sk := s.KeyGen()
	rlk, rlkErr := s.RelinKeyGen(sk)
	if rlkErr != nil {
		t.Fatal(rlkErr)
	}
	c1, err := s.Encrypt(sk, m1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Encrypt(sk, m2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Decrypt(sk, mustCT(s.MulCiphertexts(c1, c2, rlk)))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestMulCtDifferentialAcrossBackends(t *testing.T) {
	const T = 257
	sizes := []int{64, 1024, 4096}
	if testing.Short() {
		sizes = []int{64, 1024}
	}
	for _, n := range sizes {
		params, err := NewParams(modmath.DefaultModulus128(), n, T)
		if err != nil {
			t.Fatal(err)
		}
		oracle := NewRingBackend(params)
		var rnsBackends []Backend
		for _, k := range []int{2, 3, 4} {
			c, err := rns.NewContext(59, k, n)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := NewRNSBackend(c, T)
			if err != nil {
				t.Fatal(err)
			}
			rnsBackends = append(rnsBackends, rb)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		for _, pat := range msgPatterns {
			t.Run(fmt.Sprintf("n%d/%s", n, pat.name), func(t *testing.T) {
				m1 := make([]uint64, n)
				m2 := make([]uint64, n)
				pat.fill(m1, T, rng)
				pat.fill(m2, T, rng)
				want := NegacyclicProductModT(m1, m2, T)
				ref := mulTrace(t, oracle, 42, m1, m2)
				for i := range want {
					if ref[i] != want[i] {
						t.Fatalf("oracle coeff %d: got %d, want %d", i, ref[i], want[i])
					}
				}
				for _, rb := range rnsBackends {
					got := mulTrace(t, rb, 42, m1, m2)
					for i := range want {
						if got[i] != ref[i] {
							t.Fatalf("%s coeff %d: got %d, oracle %d", rb.Name(), i, got[i], ref[i])
						}
					}
				}
			})
		}
	}
}

// TestMulCiphertextsLegacyScheme covers the 128-bit compatibility wrapper.
func TestMulCiphertextsLegacyScheme(t *testing.T) {
	const n, T = 64, 257
	params, err := NewParams(modmath.DefaultModulus128(), n, T)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheme(params, 7)
	sk := s.KeyGen()
	rlk, rlkErr := s.RelinKeyGen(sk)
	if rlkErr != nil {
		t.Fatal(rlkErr)
	}
	m1 := make([]uint64, n)
	m2 := make([]uint64, n)
	for i := range m1 {
		m1[i] = uint64(i) % T
		m2[i] = uint64(5*i+2) % T
	}
	c1, err := s.Encrypt(sk, m1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Encrypt(sk, m2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Decrypt(sk, mustLCT(s.MulCiphertexts(c1, c2, rlk)))
	if err != nil {
		t.Fatal(err)
	}
	want := NegacyclicProductModT(m1, m2, T)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coeff %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

// TestMulCtNoiseBudgetProperty pins the scheme's depth behavior to the
// documented bound (MulNoiseBoundBits) instead of folklore: a depth-1
// product of full-amplitude messages round-trips and its measured noise
// respects the bound; a deliberately over-deep squaring chain must
// exhaust the budget and fail decryption, with NoiseBudgetBits reading
// zero at the failure point.
func TestMulCtNoiseBudgetProperty(t *testing.T) {
	const n = 256
	// A large plaintext modulus burns budget fast, so the over-deep
	// failure arrives within a few squarings.
	const T = (1 << 30) + 3
	params, err := NewParams(modmath.DefaultModulus128(), n, T)
	if err != nil {
		t.Fatal(err)
	}
	c, err := rns.NewContext(59, 2, n)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRNSBackend(c, T)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		b         Backend
		digits    int // relin gadget digits
		digitBits int // gadget digit magnitude
		overshoot int // base-conversion operand overshoot (0 oracle, 1 m~)
	}{
		{NewRingBackend(params), (params.Mod.Q.BitLen() + oracleDigitBits - 1) / oracleDigitBits, oracleDigitBits, 0},
		{rb, 2, 59, 1},
	}
	for _, tc := range cases {
		t.Run(tc.b.Name(), func(t *testing.T) {
			s := NewBackendScheme(tc.b, 99)
			sk := s.KeyGen()
			rlk, rlkErr := s.RelinKeyGen(sk)
			if rlkErr != nil {
				t.Fatal(rlkErr)
			}
			rng := rand.New(rand.NewSource(5))
			msg := make([]uint64, n)
			for i := range msg {
				msg[i] = rng.Uint64() % T
			}
			ct, err := s.Encrypt(sk, msg)
			if err != nil {
				t.Fatal(err)
			}
			freshNoise := noiseBitsOf(t, s, sk, ct, msg)
			budget, err := s.NoiseBudgetBits(sk, ct, msg)
			if err != nil {
				t.Fatal(err)
			}
			expected := append([]uint64(nil), msg...)

			// Depth 1: full-amplitude messages must round-trip, and the
			// measured noise must respect the documented bound.
			ct = mustCT(s.MulCiphertexts(ct, ct, rlk))
			expected = NegacyclicProductModT(expected, expected, T)
			got, err := s.Decrypt(sk, ct)
			if err != nil {
				t.Fatal(err)
			}
			for i := range expected {
				if got[i] != expected[i] {
					t.Fatalf("depth-1 coeff %d: got %d, want %d", i, got[i], expected[i])
				}
			}
			bound := MulNoiseBoundBits(n, T, freshNoise, tc.digits, tc.digitBits, tc.overshoot)
			if noise := noiseBitsOf(t, s, sk, ct, expected); noise > bound {
				t.Fatalf("depth-1 noise %d bits exceeds documented bound %d", noise, bound)
			}
			if bound >= tc.b.DeltaBits(0)-1 {
				t.Fatalf("bound %d leaves no depth-1 margin against DeltaBits %d", bound, tc.b.DeltaBits(0))
			}
			after, err := s.NoiseBudgetBits(sk, ct, expected)
			if err != nil {
				t.Fatal(err)
			}
			if after >= budget {
				t.Fatalf("budget did not drop: %d -> %d", budget, after)
			}

			// Over-deep chain: keep squaring; decryption must fail within
			// a few levels, with the budget reading zero when it does.
			failed := false
			for depth := 2; depth <= 6; depth++ {
				ct = mustCT(s.MulCiphertexts(ct, ct, rlk))
				expected = NegacyclicProductModT(expected, expected, T)
				got, err := s.Decrypt(sk, ct)
				if err != nil {
					t.Fatal(err)
				}
				mismatch := false
				for i := range expected {
					if got[i] != expected[i] {
						mismatch = true
						break
					}
				}
				if mismatch {
					b, err := s.NoiseBudgetBits(sk, ct, expected)
					if err != nil {
						t.Fatal(err)
					}
					if b != 0 {
						t.Fatalf("depth-%d decryption failed with %d budget bits left", depth, b)
					}
					failed = true
					break
				}
			}
			if !failed {
				t.Fatal("over-deep chain never exhausted the noise budget")
			}
		})
	}
}

// TestMtildeReclaimsNoiseBoundBits pins down what the m~-corrected base
// conversion (rns.MontBaseConverter) buys: the PR 4 FastBConv extended
// operands carrying up to (k-1)*Q of overshoot, which the noise constant
// had to absorb; with the correction the overshoot factor drops to 1. The
// gap only shows once the tensor term dominates (it scales with the
// operands' accumulated noise), so the property is asserted at depth 2 on
// a k=4 basis: the overshoot=1 bound must sit strictly below the PR 4
// overshoot=k-1 bound, and the measured depth-2 noise must respect the
// TIGHTENED bound — the reclaimed bits are real, not bookkeeping.
func TestMtildeReclaimsNoiseBoundBits(t *testing.T) {
	const n = 256
	const T = (1 << 30) + 3
	const k = 4
	c, err := rns.NewContext(59, k, n)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRNSBackend(c, T)
	if err != nil {
		t.Fatal(err)
	}
	s := NewBackendScheme(rb, 2026)
	sk := s.KeyGen()
	rlk, rlkErr := s.RelinKeyGen(sk)
	if rlkErr != nil {
		t.Fatal(rlkErr)
	}
	rng := rand.New(rand.NewSource(11))
	msg := make([]uint64, n)
	for i := range msg {
		msg[i] = rng.Uint64() % T
	}
	ct, err := s.Encrypt(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	expected := append([]uint64(nil), msg...)
	ct = mustCT(s.MulCiphertexts(ct, ct, rlk))
	expected = NegacyclicProductModT(expected, expected, T)
	depth1Noise := noiseBitsOf(t, s, sk, ct, expected)
	ct = mustCT(s.MulCiphertexts(ct, ct, rlk))
	expected = NegacyclicProductModT(expected, expected, T)
	depth2Noise := noiseBitsOf(t, s, sk, ct, expected)

	tight := MulNoiseBoundBits(n, T, depth1Noise, k, 59, 1)
	pr4 := MulNoiseBoundBits(n, T, depth1Noise, k, 59, k-1)
	if tight >= pr4 {
		t.Fatalf("m~ correction reclaimed nothing: overshoot=1 bound %d vs overshoot=%d bound %d",
			tight, k-1, pr4)
	}
	if depth2Noise > tight {
		t.Fatalf("measured depth-2 noise %d bits exceeds the tightened bound %d", depth2Noise, tight)
	}
	t.Logf("depth-2 noise %d bits; bound %d (m~) vs %d (PR 4): %d bits reclaimed",
		depth2Noise, tight, pr4, pr4-tight)
}

func noiseBitsOf(t *testing.T, s *BackendScheme, sk BackendSecretKey, ct BackendCiphertext, msg []uint64) int {
	t.Helper()
	nb, err := s.NoiseBits(sk, ct, msg)
	if err != nil {
		t.Fatal(err)
	}
	return nb
}
