package fhe

import (
	"context"
	"sync/atomic"

	"mqxgo/internal/faultinject"
)

// quarantinedScratch counts pooled scratch frames dropped instead of
// recycled because a panic unwound through the evaluation holding them.
// A panicking multiply may leave its frame half-written by any phase;
// recycling it would hand torn state to an unrelated request, so the
// frame is abandoned to the GC and the pool refills with a fresh one.
var quarantinedScratch atomic.Uint64

// QuarantinedScratch reports how many pooled evaluation scratch frames
// have been quarantined process-wide — a serving layer's health metric:
// a nonzero steady-state rate means requests are panicking inside the
// evaluation pipeline.
func QuarantinedScratch() uint64 { return quarantinedScratch.Load() }

// phaseGate marks a tower-phase boundary in an evaluation pipeline: the
// fault-injection probe for the site fires first (so a forced panic or
// injected latency lands attributed to the phase it names), then the
// context is observed. Phases run to completion or not at all; a non-nil
// return is ctx.Err() itself, so callers surface
// context.DeadlineExceeded unwrapped.
func phaseGate(ctx context.Context, site string) error {
	faultinject.Hit(site)
	return ctx.Err()
}
