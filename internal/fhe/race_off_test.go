//go:build !race

package fhe

const raceEnabled = false
