package fhe

import (
	"math/rand"
	"testing"

	"mqxgo/internal/modmath"
	"mqxgo/internal/rns"
)

// Packed-workload differential tests: slot packing and Galois rotations
// must behave identically — bit-identical decrypted slot vectors — on the
// 128-bit oracle and the RNS backend, and must match the plaintext model.

// packedT is an NTT-friendly plaintext modulus for every packed-test
// degree used here: 40961 = 5*2^13 + 1 is prime, so 2n | T-1 holds up to
// n = 4096. (The legacy fixture modulus 257 only splits up to n = 128.)
const packedT = 40961

func packedBackends(t *testing.T, n int) []Backend {
	t.Helper()
	p, err := NewParams(modmath.DefaultModulus128(), n, packedT)
	if err != nil {
		t.Fatal(err)
	}
	c, err := rns.NewContext(59, 3, n)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRNSBackend(c, packedT)
	if err != nil {
		t.Fatal(err)
	}
	return []Backend{NewRingBackend(p), rb}
}

func randomSlots(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	slots := make([]uint64, n)
	for i := range slots {
		slots[i] = rng.Uint64() % packedT
	}
	return slots
}

// rotatedModel is the plaintext model of RotateSlots: both rows of n/2
// rotate left by steps (slot j reads old slot j+steps within its row).
func rotatedModel(slots []uint64, steps int) []uint64 {
	n := len(slots)
	rows := n / 2
	steps = ((steps % rows) + rows) % rows
	out := make([]uint64, n)
	for j := 0; j < rows; j++ {
		out[j] = slots[(j+steps)%rows]
		out[j+rows] = slots[rows+(j+steps)%rows]
	}
	return out
}

// conjugatedModel swaps the two rows.
func conjugatedModel(slots []uint64) []uint64 {
	n := len(slots)
	rows := n / 2
	out := make([]uint64, n)
	copy(out[:rows], slots[rows:])
	copy(out[rows:], slots[:rows])
	return out
}

func TestSlotEncoderRoundTripAndSemantics(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		enc, err := NewSlotEncoder(n, packedT)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if enc.Slots() != n || enc.RowLen() != n/2 {
			t.Fatalf("n=%d: slots %d rows %d", n, enc.Slots(), enc.RowLen())
		}
		slots := randomSlots(n, int64(n))
		msg, err := enc.Encode(slots)
		if err != nil {
			t.Fatal(err)
		}
		back, err := enc.Decode(msg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range slots {
			if back[i] != slots[i] {
				t.Fatalf("n=%d: slot %d round-trips to %d, want %d", n, i, back[i], slots[i])
			}
		}
		// The CRT semantics: the negacyclic product of two encodings
		// decodes to the slot-wise product.
		other := randomSlots(n, int64(n)+1)
		msg2, err := enc.Encode(other)
		if err != nil {
			t.Fatal(err)
		}
		mod := modmath.MustModulus64(packedT)
		prod := make([]uint64, n)
		// Schoolbook negacyclic product mod T keeps the check independent
		// of the encoder's own transform.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p := mod.Mul(msg[i], msg2[j])
				if i+j < n {
					prod[i+j] = mod.Add(prod[i+j], p)
				} else {
					prod[i+j-n] = mod.Sub(prod[i+j-n], p)
				}
			}
		}
		got, err := enc.Decode(prod)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if want := mod.Mul(slots[i], other[i]); got[i] != want {
				t.Fatalf("n=%d: slot %d product %d, want %d", n, i, got[i], want)
			}
		}
		if n > 64 {
			break // the schoolbook check is O(n^2); once past 64 is enough
		}
	}
}

func TestSlotEncoderRejects(t *testing.T) {
	if _, err := NewSlotEncoder(256, 257); err == nil {
		t.Fatal("T=257 at n=256 accepted (2n does not divide T-1)")
	}
	if _, err := NewSlotEncoder(64, 40963); err == nil {
		t.Fatal("composite plaintext modulus accepted")
	}
	if _, err := NewSlotEncoder(48, packedT); err == nil {
		t.Fatal("non-power-of-two degree accepted")
	}
	if _, err := NewSlotEncoder(2, 5); err == nil {
		t.Fatal("degree below the slot-row minimum accepted")
	}
	// The scheme seam's sticky validation: a backend over a non-friendly T
	// reports the error on every encode call.
	for _, b := range testBackends(t, 256) {
		s := NewBackendScheme(b, 1)
		if _, err := s.EncodeSlots(make([]uint64, 256)); err == nil {
			t.Fatalf("%s: EncodeSlots with T=257 at n=256 accepted", b.Name())
		}
		if _, err := s.DecodeSlots(make([]uint64, 256)); err == nil {
			t.Fatalf("%s: DecodeSlots with T=257 at n=256 accepted", b.Name())
		}
	}
}

// TestRotateSlotsAllAmountsCrossBackend is the acceptance sweep: at each
// degree, every rotation amount decrypts to the model rotation, and the
// two backends' decrypted slot vectors are bit-identical. The full
// all-amounts sweep runs on the RNS backend; the allocating oracle sweeps
// every amount at n = 64 and a deterministic stride above that (its
// per-hop big-ring transforms make the full 2048-amount sweep minutes
// long, and hop-chaining correctness is degree-independent once the
// binary ladder is exercised end to end).
func TestRotateSlotsAllAmountsCrossBackend(t *testing.T) {
	for _, n := range []int{64, 1024, 4096} {
		if testing.Short() && n > 1024 {
			continue
		}
		backends := packedBackends(t, n)
		slots := randomSlots(n, 99)
		rows := n / 2
		oracleStride := 1
		if n > 64 {
			oracleStride = rows / 16
		}

		// decrypted[r] from the oracle backend, to cross-check bitwise.
		oracleGot := make(map[int][]uint64)
		for bi, b := range backends {
			s := NewBackendScheme(b, 4242)
			sk := s.KeyGen()
			gk, err := s.GaloisKeyGen(sk)
			if err != nil {
				t.Fatal(err)
			}
			msg, err := s.EncodeSlots(slots)
			if err != nil {
				t.Fatal(err)
			}
			ct, err := s.Encrypt(sk, msg)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < rows; r++ {
				if bi == 0 && r%oracleStride != 0 {
					continue
				}
				rot, err := s.RotateSlots(ct, r, gk)
				if err != nil {
					t.Fatalf("%s n=%d rotate %d: %v", b.Name(), n, r, err)
				}
				dec, err := s.Decrypt(sk, rot)
				if err != nil {
					t.Fatal(err)
				}
				got, err := s.DecodeSlots(dec)
				if err != nil {
					t.Fatal(err)
				}
				want := rotatedModel(slots, r)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s n=%d rotate %d: slot %d = %d, want %d", b.Name(), n, r, i, got[i], want[i])
					}
				}
				if bi == 0 {
					oracleGot[r] = got
				} else if ref, ok := oracleGot[r]; ok {
					for i := range got {
						if got[i] != ref[i] {
							t.Fatalf("n=%d rotate %d: backends disagree at slot %d", n, r, i)
						}
					}
				}
			}
			// Conjugation and negative steps on every backend.
			conj, err := s.Conjugate(ct, gk)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := s.Decrypt(sk, conj)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.DecodeSlots(dec)
			if err != nil {
				t.Fatal(err)
			}
			want := conjugatedModel(slots)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s n=%d conjugate: slot %d = %d, want %d", b.Name(), n, i, got[i], want[i])
				}
			}
			neg, err := s.RotateSlots(ct, -3, gk)
			if err != nil {
				t.Fatal(err)
			}
			dec, err = s.Decrypt(sk, neg)
			if err != nil {
				t.Fatal(err)
			}
			got, err = s.DecodeSlots(dec)
			if err != nil {
				t.Fatal(err)
			}
			want = rotatedModel(slots, -3)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s n=%d rotate -3: slot %d = %d, want %d", b.Name(), n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRotateComposedDownLadder drives rotations through the full packed
// pipeline on both backends: slot-wise multiply, rotate, modulus-switch,
// rotate again at the lower level — the shape every packed reduction
// (dot products, aggregates) uses.
func TestRotateComposedDownLadder(t *testing.T) {
	const n = 64
	mod := modmath.MustModulus64(packedT)
	for _, b := range packedBackends(t, n) {
		t.Run(b.Name(), func(t *testing.T) {
			s := NewBackendScheme(b, 777)
			sk := s.KeyGen()
			rlk, err := s.RelinKeyGen(sk)
			if err != nil {
				t.Fatal(err)
			}
			gk, err := s.GaloisKeyGen(sk)
			if err != nil {
				t.Fatal(err)
			}
			x := randomSlots(n, 5)
			y := randomSlots(n, 6)
			ctX, err := s.Encrypt(sk, mustMsg(t, s, x))
			if err != nil {
				t.Fatal(err)
			}
			ctY, err := s.Encrypt(sk, mustMsg(t, s, y))
			if err != nil {
				t.Fatal(err)
			}
			// model: rot2(modswitch(rot1(x*y)))
			model := make([]uint64, n)
			for i := range model {
				model[i] = mod.Mul(x[i], y[i])
			}
			model = rotatedModel(model, 5)
			model = rotatedModel(model, n/2-5) // full-row cycle: back to x*y

			prod, err := s.MulCiphertexts(ctX, ctY, rlk)
			if err != nil {
				t.Fatal(err)
			}
			r1, err := s.RotateSlots(prod, 5, gk)
			if err != nil {
				t.Fatal(err)
			}
			down, err := s.ModSwitch(r1)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := s.RotateSlots(down, n/2-5, gk)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := s.Decrypt(sk, r2)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.DecodeSlots(dec)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != model[i] {
					t.Fatalf("slot %d = %d, want %d", i, got[i], model[i])
				}
			}
		})
	}
}

// TestRotateCoeffDomainMatchesResident pins that the coefficient-domain
// rotation pipeline computes the same ciphertext map as the resident one:
// rotating a ConvertDomain'd ciphertext and converting back must decrypt
// identically.
func TestRotateCoeffDomainMatchesResident(t *testing.T) {
	const n = 64
	for _, b := range packedBackends(t, n) {
		t.Run(b.Name(), func(t *testing.T) {
			s := NewBackendScheme(b, 31337)
			sk := s.KeyGen()
			gk, err := s.GaloisKeyGen(sk)
			if err != nil {
				t.Fatal(err)
			}
			slots := randomSlots(n, 8)
			ct, err := s.Encrypt(sk, mustMsg(t, s, slots))
			if err != nil {
				t.Fatal(err)
			}
			ctCoeff, err := s.ConvertDomain(ct, DomainCoeff)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range []int{1, 7, n/2 - 1} {
				viaRes, err := s.RotateSlots(ct, r, gk)
				if err != nil {
					t.Fatal(err)
				}
				viaCoeff, err := s.RotateSlots(ctCoeff, r, gk)
				if err != nil {
					t.Fatal(err)
				}
				d1, err := s.Decrypt(sk, viaRes)
				if err != nil {
					t.Fatal(err)
				}
				d2, err := s.Decrypt(sk, viaCoeff)
				if err != nil {
					t.Fatal(err)
				}
				for i := range d1 {
					if d1[i] != d2[i] {
						t.Fatalf("rotate %d: domains disagree at coefficient %d", r, i)
					}
				}
			}
		})
	}
}

func mustMsg(t *testing.T, s *BackendScheme, slots []uint64) []uint64 {
	t.Helper()
	msg, err := s.EncodeSlots(slots)
	if err != nil {
		t.Fatal(err)
	}
	return msg
}
