package fhe

import (
	"fmt"
	"sync"

	"mqxgo/internal/modmath"
	"mqxgo/internal/ntt"
	"mqxgo/internal/ring"
)

// Slot packing: the plaintext CRT. When the plaintext modulus T is an
// NTT-friendly prime for the ring degree n (T prime, 2n | T-1), the
// plaintext ring Z_T[x]/(x^n + 1) splits into n copies of Z_T — one per
// 2n-th root of unity — and a message polynomial IS a vector of n
// independent slots. Encoding is the inverse negacyclic NTT at modulus T;
// decoding the forward one. Ciphertext Add/MulCt then act slot-wise, and
// the Galois automorphisms (RotateSlots/Conjugate) permute the slots as
// two rows of n/2 — see internal/ring's galois tables for the layout.
//
// The encoder deliberately reuses the exact engine the ciphertext towers
// run on (ntt.Plan64 over a ring.Shoup64), so the slot order here and the
// evaluation-order permutation the rotations apply agree by construction.

// SlotEncoder maps slot vectors to message polynomials and back for one
// (n, T) pair. Safe for concurrent use; the Into variants allocate
// nothing in steady state.
type SlotEncoder struct {
	n    int
	rows int // n/2, the length of each rotation row
	t    uint64
	plan *ring.Plan[uint64, ring.Shoup64]
	pos  []int32 // slot index -> evaluation-order position

	scratch sync.Pool // *[]uint64 of length n
}

// NewSlotEncoder builds the plaintext-CRT encoder for degree n and
// plaintext modulus t. It fails with a descriptive error when t does not
// support the CRT: t must be prime with 2n | t-1 (so x^n + 1 splits into
// linear factors mod t), and n a power of two >= 4 (the slot rows need
// the orbit structure of 3 in Z*_{2n}).
func NewSlotEncoder(n int, t uint64) (*SlotEncoder, error) {
	if n < 4 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fhe: slot packing needs a power-of-two degree >= 4, got %d", n)
	}
	if !modmath.IsPrime64(t) {
		return nil, fmt.Errorf("fhe: plaintext modulus %d is not prime; slot packing needs the plaintext CRT", t)
	}
	if (t-1)%uint64(2*n) != 0 {
		return nil, fmt.Errorf("fhe: plaintext modulus %d is not NTT-friendly for degree %d (need 2n | t-1)", t, n)
	}
	mod, err := modmath.NewModulus64(t)
	if err != nil {
		return nil, err
	}
	plan, err := ntt.CachedPlan64(mod, n)
	if err != nil {
		return nil, err
	}
	pos, err := ring.SlotPositions(n)
	if err != nil {
		return nil, err
	}
	e := &SlotEncoder{n: n, rows: n / 2, t: t, plan: plan.Generic(), pos: pos}
	e.scratch.New = func() any {
		s := make([]uint64, n)
		return &s
	}
	return e, nil
}

// Slots returns the total slot count n (two rotation rows of n/2).
func (e *SlotEncoder) Slots() int { return e.n }

// RowLen returns n/2, the length of each rotation row: RotateSlots moves
// slots within rows, never across them.
func (e *SlotEncoder) RowLen() int { return e.rows }

// Modulus returns the plaintext modulus the slots live in.
func (e *SlotEncoder) Modulus() uint64 { return e.t }

// EncodeInto writes into msg the message polynomial whose slot vector is
// slots. Slot values are reduced mod T. Both slices must have length n;
// msg may be exactly the slots slice (the transform stages through
// internal scratch), but partial overlap is not allowed. Steady-state it
// allocates nothing.
//
//mqx:hotpath
func (e *SlotEncoder) EncodeInto(msg, slots []uint64) error {
	if len(msg) != e.n || len(slots) != e.n {
		return fmt.Errorf("fhe: encode needs %d slots and %d coefficients, got %d and %d", e.n, e.n, len(slots), len(msg))
	}
	bp := e.scratch.Get().(*[]uint64)
	tmp := *bp
	for j, p := range e.pos {
		tmp[p] = slots[j] % e.t
	}
	e.plan.NegacyclicInverseInto(msg, tmp)
	e.scratch.Put(bp)
	return nil
}

// DecodeInto reads the slot vector of the message polynomial msg into
// slots. msg must hold canonical residues in [0, T) — exactly what
// Decrypt returns. slots may be exactly the msg slice, but partial
// overlap is not allowed. Steady-state it allocates nothing.
//
//mqx:hotpath
func (e *SlotEncoder) DecodeInto(slots, msg []uint64) error {
	if len(msg) != e.n || len(slots) != e.n {
		return fmt.Errorf("fhe: decode needs %d coefficients and %d slots, got %d and %d", e.n, e.n, len(msg), len(slots))
	}
	bp := e.scratch.Get().(*[]uint64)
	tmp := *bp
	e.plan.NegacyclicForwardInto(tmp, msg)
	for j, p := range e.pos {
		slots[j] = tmp[p]
	}
	e.scratch.Put(bp)
	return nil
}

// Encode is EncodeInto with an allocated result.
func (e *SlotEncoder) Encode(slots []uint64) ([]uint64, error) {
	msg := make([]uint64, e.n)
	if err := e.EncodeInto(msg, slots); err != nil {
		return nil, err
	}
	return msg, nil
}

// Decode is DecodeInto with an allocated result.
func (e *SlotEncoder) Decode(msg []uint64) ([]uint64, error) {
	slots := make([]uint64, e.n)
	if err := e.DecodeInto(slots, msg); err != nil {
		return nil, err
	}
	return slots, nil
}

// SlotEncoder returns the scheme's plaintext-CRT encoder, built lazily on
// first use from the backend's (N, T). The error is sticky: a scheme over
// a non-NTT-friendly plaintext modulus reports the same validation
// failure on every call, and the message ops keep working unpacked.
func (s *BackendScheme) SlotEncoder() (*SlotEncoder, error) {
	s.slotOnce.Do(func() {
		s.slotEnc, s.slotErr = NewSlotEncoder(s.B.N(), s.B.PlainModulus())
	})
	return s.slotEnc, s.slotErr
}

// EncodeSlots maps a slot vector to the message polynomial Encrypt
// expects. Fails when the scheme's plaintext modulus does not support the
// plaintext CRT.
func (s *BackendScheme) EncodeSlots(slots []uint64) ([]uint64, error) {
	e, err := s.SlotEncoder()
	if err != nil {
		return nil, err
	}
	return e.Encode(slots)
}

// DecodeSlots maps a decrypted message polynomial back to its slot
// vector.
func (s *BackendScheme) DecodeSlots(msg []uint64) ([]uint64, error) {
	e, err := s.SlotEncoder()
	if err != nil {
		return nil, err
	}
	return e.Decode(msg)
}

// EncodeSlotsInto is EncodeSlots without the allocation.
func (s *BackendScheme) EncodeSlotsInto(msg, slots []uint64) error {
	e, err := s.SlotEncoder()
	if err != nil {
		return err
	}
	return e.EncodeInto(msg, slots)
}

// DecodeSlotsInto is DecodeSlots without the allocation.
func (s *BackendScheme) DecodeSlotsInto(slots, msg []uint64) error {
	e, err := s.SlotEncoder()
	if err != nil {
		return err
	}
	return e.DecodeInto(slots, msg)
}
