package isa

import "fmt"

// PortSet is a bitmask of execution ports one micro-op may issue to.
type PortSet uint32

// Has reports whether port p is in the set.
func (s PortSet) Has(p int) bool { return s&(1<<uint(p)) != 0 }

// Count returns the number of ports in the set.
func (s PortSet) Count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

// Ports lists the port indices in the set.
func (s PortSet) Ports() []int {
	var ps []int
	for p := 0; p < 32; p++ {
		if s.Has(p) {
			ps = append(ps, p)
		}
	}
	return ps
}

func ports(ps ...int) PortSet {
	var s PortSet
	for _, p := range ps {
		s |= 1 << uint(p)
	}
	return s
}

// Cost describes how one instruction executes on a microarchitecture:
// the port set of each micro-op and the result latency in cycles.
type Cost struct {
	Uops []PortSet // one entry per micro-op
	Lat  int       // cycles from dispatch to result availability
}

func cost(lat int, uops ...PortSet) Cost { return Cost{Uops: uops, Lat: lat} }

// Microarch is a modeled CPU core: its execution ports and instruction costs.
//
// The tables are assembled from public instruction-timing data
// (vendor optimization manuals and uops.info-class measurements) at the
// fidelity needed for relative comparisons; see DESIGN.md §5. The paper's
// own MQX numbers rest on the same class of data via LLVM-MCA.
type Microarch struct {
	Name          string
	PortNames     []string // index = port id used in PortSet
	DispatchWidth int      // max micro-ops issued per cycle
	Costs         map[Op]Cost
}

// CostOf returns the cost entry for op, resolving MQX instructions through
// their PISA proxies (Table 3). It panics if the op is unknown: kernels
// must only emit instructions the target microarchitecture models.
func (m *Microarch) CostOf(op Op) Cost {
	if c, ok := m.Costs[op]; ok {
		return c
	}
	if proxy, ok := PISAProxy[op]; ok {
		if c, ok := m.Costs[proxy]; ok {
			return c
		}
	}
	panic(fmt.Sprintf("isa: no cost for %v on %s", op, m.Name))
}

// HasNative reports whether op has a native (non-proxied) cost entry.
func (m *Microarch) HasNative(op Op) bool {
	_, ok := m.Costs[op]
	return ok
}

// PISAProxy maps each proposed MQX instruction to the structurally closest
// existing AVX-512 instruction used to project its performance (Table 3).
// The +Mh and +P sensitivity variants reuse the same proxies: multiply-high
// is modeled with the same latency as multiply-low (Section 5.5), and the
// predicated carry ops are modeled as masked add/sub.
var PISAProxy = map[Op]Op{
	MQXMulQ:     AVX512MulLQ,
	MQXAdcQ:     AVX512MaskAddQ,
	MQXSbbQ:     AVX512MaskSubQ,
	MQXMulHiQ:   AVX512MulLQ,
	MQXPredAdcQ: AVX512MaskAddQ,
	MQXPredSbbQ: AVX512MaskSubQ,
}

// ValidationPair is one Table 5 row: an existing instruction whose
// performance we predict from a proxy, establishing ground truth for PISA.
type ValidationPair struct {
	Target Op
	Proxy  Op
}

// PISAValidationPairs are the Table 5 target/proxy pairs.
var PISAValidationPairs = []ValidationPair{
	{Target: AVX2MulUDQ, Proxy: AVX2MulLD},
	{Target: AVX512MaskAddQ, Proxy: AVX512AddQ},
	{Target: AVX512MaskSubQ, Proxy: AVX512SubQ},
}

// Sunny Cove port assignment (Intel Xeon 8352Y / Ice Lake-SP), following
// the simplified diagram in Figure 3 of the paper:
//
//	port 0: scalar ALU + 512-bit vector ALU/FMA
//	port 1: scalar ALU + integer multiply (fused into port 0 for 512-bit)
//	port 5: scalar ALU + 512-bit vector ALU + shuffle unit
//	port 6: scalar ALU + branch
//	ports 2,3: load AGU; port 4: store data; port 7: store AGU
const (
	icxP0 = 0
	icxP1 = 1
	icxP2 = 2
	icxP3 = 3
	icxP4 = 4
	icxP5 = 5
	icxP6 = 6
	icxP7 = 7
)

// SunnyCove models one core of the Intel Xeon 8352Y (Ice Lake-SP).
var SunnyCove = &Microarch{
	Name:          "SunnyCove",
	PortNames:     []string{"p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"},
	DispatchWidth: 5,
	Costs: map[Op]Cost{
		// Scalar x86-64. ADD/ADC and SUB/SBB have identical timing, the
		// observation the paper grounds PISA on (Section 4.2).
		ScalarAdd:   cost(1, ports(icxP0, icxP1, icxP5, icxP6)),
		ScalarAdc:   cost(1, ports(icxP0, icxP6)),
		ScalarSub:   cost(1, ports(icxP0, icxP1, icxP5, icxP6)),
		ScalarSbb:   cost(1, ports(icxP0, icxP6)),
		ScalarMul:   cost(3, ports(icxP1), ports(icxP5)), // widening MUL r64: 2 uops
		ScalarImul:  cost(3, ports(icxP1)),
		ScalarCmp:   cost(1, ports(icxP0, icxP1, icxP5, icxP6)),
		ScalarCmov:  cost(1, ports(icxP0, icxP6)),
		ScalarSetcc: cost(1, ports(icxP0, icxP6)),
		ScalarAnd:   cost(1, ports(icxP0, icxP1, icxP5, icxP6)),
		ScalarOr:    cost(1, ports(icxP0, icxP1, icxP5, icxP6)),
		ScalarXor:   cost(1, ports(icxP0, icxP1, icxP5, icxP6)),
		ScalarNot:   cost(1, ports(icxP0, icxP1, icxP5, icxP6)),
		ScalarShl:   cost(1, ports(icxP0, icxP6)),
		ScalarShr:   cost(1, ports(icxP0, icxP6)),
		ScalarMov:   cost(1, ports(icxP0, icxP1, icxP5, icxP6)),
		ScalarLoad:  cost(5, ports(icxP2, icxP3)),
		ScalarStore: cost(1, ports(icxP4), ports(icxP7)),
		ScalarTest:  cost(1, ports(icxP0, icxP1, icxP5, icxP6)),

		// AVX2 (256-bit): three vector ALU ports (0, 1, 5).
		AVX2AddQ:    cost(1, ports(icxP0, icxP1, icxP5)),
		AVX2SubQ:    cost(1, ports(icxP0, icxP1, icxP5)),
		AVX2MulUDQ:  cost(5, ports(icxP0, icxP1)),
		AVX2MulLD:   cost(10, ports(icxP0, icxP1)),
		AVX2CmpGtQ:  cost(3, ports(icxP5)),
		AVX2CmpEqQ:  cost(1, ports(icxP0, icxP1, icxP5)),
		AVX2BlendVB: cost(2, ports(icxP0, icxP1, icxP5), ports(icxP0, icxP1, icxP5)),
		AVX2And:     cost(1, ports(icxP0, icxP1, icxP5)),
		AVX2Or:      cost(1, ports(icxP0, icxP1, icxP5)),
		AVX2Xor:     cost(1, ports(icxP0, icxP1, icxP5)),
		AVX2AndNot:  cost(1, ports(icxP0, icxP1, icxP5)),
		AVX2SrlQ:    cost(1, ports(icxP0, icxP1)),
		AVX2SllQ:    cost(1, ports(icxP0, icxP1)),
		AVX2SrlVQ:   cost(1, ports(icxP0, icxP1)),
		AVX2Shuf:    cost(3, ports(icxP5)),
		AVX2Perm128: cost(3, ports(icxP5)),
		AVX2UnpckL:  cost(1, ports(icxP1, icxP5)),
		AVX2UnpckH:  cost(1, ports(icxP1, icxP5)),
		AVX2Bcast:   cost(3, ports(icxP5)),
		AVX2Load:    cost(7, ports(icxP2, icxP3)),
		AVX2Store:   cost(1, ports(icxP4), ports(icxP7)),

		// AVX-512 (512-bit): ports 0 and 5 only (port 1 fuses into port 0).
		AVX512AddQ:     cost(1, ports(icxP0, icxP5)),
		AVX512SubQ:     cost(1, ports(icxP0, icxP5)),
		AVX512MaskAddQ: cost(1, ports(icxP0, icxP5)),
		AVX512MaskSubQ: cost(1, ports(icxP0, icxP5)),
		AVX512MulUDQ:   cost(5, ports(icxP0)),
		// VPMULLQ zmm is microcoded on Ice Lake: 3 multiply uops, ~15c latency.
		AVX512MulLQ:   cost(15, ports(icxP0), ports(icxP0), ports(icxP0)),
		AVX512CmpUQ:   cost(3, ports(icxP5)),
		AVX512CmpQ:    cost(3, ports(icxP5)),
		AVX512BlendQ:  cost(1, ports(icxP0, icxP5)),
		AVX512And:     cost(1, ports(icxP0, icxP5)),
		AVX512Or:      cost(1, ports(icxP0, icxP5)),
		AVX512Xor:     cost(1, ports(icxP0, icxP5)),
		AVX512SrlQI:   cost(1, ports(icxP0)),
		AVX512SllQI:   cost(1, ports(icxP0)),
		AVX512SrlQV:   cost(1, ports(icxP0)),
		AVX512Perm2:   cost(3, ports(icxP5)),
		AVX512Perm:    cost(3, ports(icxP5)),
		AVX512UnpckL:  cost(1, ports(icxP5)),
		AVX512UnpckH:  cost(1, ports(icxP5)),
		AVX512Bcast:   cost(3, ports(icxP5)),
		AVX512Load:    cost(8, ports(icxP2, icxP3)),
		AVX512Store:   cost(1, ports(icxP4), ports(icxP7)),
		AVX512MaxUQ:   cost(1, ports(icxP0, icxP5)),
		AVX512MinUQ:   cost(1, ports(icxP0, icxP5)),
		AVX512TernLog: cost(1, ports(icxP0, icxP5)),
		AVX512KOr:     cost(1, ports(icxP0)),
		AVX512KAnd:    cost(1, ports(icxP0)),
		AVX512KXor:    cost(1, ports(icxP0)),
		AVX512KNot:    cost(1, ports(icxP0)),
		AVX512KAndNot: cost(1, ports(icxP0)),
		AVX512KMov:    cost(1, ports(icxP0)),
	},
}

// Zen 4 port assignment (AMD EPYC 9654). The vector engine has four
// 256-bit pipes (FP0-FP3); 512-bit instructions are double-pumped, which
// we model as two micro-ops. Integer vector multiplies execute on
// FP0/FP1, shuffles on FP1/FP2. Three AGU pipes serve loads/stores.
const (
	zenFP0 = 0
	zenFP1 = 1
	zenFP2 = 2
	zenFP3 = 3
	zenLD0 = 4
	zenLD1 = 5
	zenST0 = 6
	zenALU = 7 // scalar ALUs folded into one 4-wide pool (see below)
)

// Zen4 models one core of the AMD EPYC 9654.
//
// Scalar ALU modeling note: Zen 4 has four scalar ALU pipes; we expose them
// as four synthetic ports (8-11) so port pressure saturates at 4/cycle.
var Zen4 = &Microarch{
	Name:          "Zen4",
	PortNames:     []string{"fp0", "fp1", "fp2", "fp3", "ld0", "ld1", "st0", "alu0", "alu1", "alu2", "alu3"},
	DispatchWidth: 6,
	Costs:         zen4Costs(),
}

func zen4Costs() map[Op]Cost {
	alu := ports(7, 8, 9, 10)
	aluMul := ports(8) // one scalar multiply pipe
	vAll := ports(zenFP0, zenFP1, zenFP2, zenFP3)
	vMul := ports(zenFP0, zenFP1)
	vShuf := ports(zenFP1, zenFP2)
	ld := ports(zenLD0, zenLD1)
	st := ports(zenST0)

	c := map[Op]Cost{
		ScalarAdd:   cost(1, alu),
		ScalarAdc:   cost(1, alu),
		ScalarSub:   cost(1, alu),
		ScalarSbb:   cost(1, alu),
		ScalarMul:   cost(3, aluMul, aluMul),
		ScalarImul:  cost(3, aluMul),
		ScalarCmp:   cost(1, alu),
		ScalarCmov:  cost(1, alu),
		ScalarSetcc: cost(1, alu),
		ScalarAnd:   cost(1, alu),
		ScalarOr:    cost(1, alu),
		ScalarXor:   cost(1, alu),
		ScalarNot:   cost(1, alu),
		ScalarShl:   cost(1, alu),
		ScalarShr:   cost(1, alu),
		ScalarMov:   cost(1, alu),
		ScalarLoad:  cost(4, ld),
		ScalarStore: cost(1, st),
		ScalarTest:  cost(1, alu),

		// AVX2 (256-bit): single-pumped, all four vector pipes for ALU ops.
		AVX2AddQ:    cost(1, vAll),
		AVX2SubQ:    cost(1, vAll),
		AVX2MulUDQ:  cost(3, vMul),
		AVX2MulLD:   cost(3, vMul),
		AVX2CmpGtQ:  cost(1, vAll),
		AVX2CmpEqQ:  cost(1, vAll),
		AVX2BlendVB: cost(1, vAll),
		AVX2And:     cost(1, vAll),
		AVX2Or:      cost(1, vAll),
		AVX2Xor:     cost(1, vAll),
		AVX2AndNot:  cost(1, vAll),
		AVX2SrlQ:    cost(1, vMul),
		AVX2SllQ:    cost(1, vMul),
		AVX2SrlVQ:   cost(1, vMul),
		AVX2Shuf:    cost(2, vShuf),
		AVX2Perm128: cost(3, vShuf),
		AVX2UnpckL:  cost(1, vShuf),
		AVX2UnpckH:  cost(1, vShuf),
		AVX2Bcast:   cost(1, vShuf),
		AVX2Load:    cost(7, ld),
		AVX2Store:   cost(1, st),

		// AVX-512 (512-bit): double-pumped, two uops per instruction.
		AVX512AddQ:     cost(1, vAll, vAll),
		AVX512SubQ:     cost(1, vAll, vAll),
		AVX512MaskAddQ: cost(1, vAll, vAll),
		AVX512MaskSubQ: cost(1, vAll, vAll),
		AVX512MulUDQ:   cost(3, vMul, vMul),
		// Zen 4 implements VPMULLQ natively in the 64-bit multiplier array:
		// same cost class as VPMULUDQ. This asymmetry vs. Ice Lake is what
		// makes MQX's widening multiply relatively cheaper on AMD.
		AVX512MulLQ:   cost(3, vMul, vMul),
		AVX512CmpUQ:   cost(3, vShuf, vShuf),
		AVX512CmpQ:    cost(3, vShuf, vShuf),
		AVX512BlendQ:  cost(1, vAll, vAll),
		AVX512And:     cost(1, vAll, vAll),
		AVX512Or:      cost(1, vAll, vAll),
		AVX512Xor:     cost(1, vAll, vAll),
		AVX512SrlQI:   cost(1, vMul, vMul),
		AVX512SllQI:   cost(1, vMul, vMul),
		AVX512SrlQV:   cost(1, vMul, vMul),
		AVX512Perm2:   cost(4, vShuf, vShuf),
		AVX512Perm:    cost(4, vShuf, vShuf),
		AVX512UnpckL:  cost(1, vShuf, vShuf),
		AVX512UnpckH:  cost(1, vShuf, vShuf),
		AVX512Bcast:   cost(1, vShuf, vShuf),
		AVX512Load:    cost(7, ld, ld),
		AVX512Store:   cost(1, st, st),
		AVX512MaxUQ:   cost(1, vAll, vAll),
		AVX512MinUQ:   cost(1, vAll, vAll),
		AVX512TernLog: cost(1, vAll, vAll),
		AVX512KOr:     cost(1, vShuf),
		AVX512KAnd:    cost(1, vShuf),
		AVX512KXor:    cost(1, vShuf),
		AVX512KNot:    cost(1, vShuf),
		AVX512KAndNot: cost(1, vShuf),
		AVX512KMov:    cost(1, vShuf),
	}
	return c
}

// Microarchs lists the modeled measurement microarchitectures.
var Microarchs = []*Microarch{SunnyCove, Zen4}

// MicroarchByName returns the microarchitecture with the given name.
func MicroarchByName(name string) (*Microarch, error) {
	for _, m := range Microarchs {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("isa: unknown microarchitecture %q", name)
}
