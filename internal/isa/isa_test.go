package isa

import (
	"strings"
	"testing"
)

func TestPortSetOps(t *testing.T) {
	s := ports(0, 5)
	if !s.Has(0) || !s.Has(5) || s.Has(1) {
		t.Fatal("Has wrong")
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d", s.Count())
	}
	got := s.Ports()
	if len(got) != 2 || got[0] != 0 || got[1] != 5 {
		t.Fatalf("Ports = %v", got)
	}
	if PortSet(0).Count() != 0 || len(PortSet(0).Ports()) != 0 {
		t.Fatal("empty set wrong")
	}
}

func TestEveryKernelOpHasCostsOnBothMarchs(t *testing.T) {
	// Every op with a name must be costed (natively or via proxy) on both
	// microarchitectures: kernels may emit any of them.
	for op := range opNames {
		for _, m := range Microarchs {
			func() {
				defer func() {
					if recover() != nil {
						t.Errorf("%s: no cost for %v", m.Name, op)
					}
				}()
				c := m.CostOf(op)
				if len(c.Uops) == 0 {
					t.Errorf("%s: %v has zero uops", m.Name, op)
				}
				if c.Lat <= 0 {
					t.Errorf("%s: %v has non-positive latency", m.Name, op)
				}
				for _, u := range c.Uops {
					if u.Count() == 0 {
						t.Errorf("%s: %v has a uop with no ports", m.Name, op)
					}
					for _, p := range u.Ports() {
						if p >= len(m.PortNames) {
							t.Errorf("%s: %v uses undefined port %d", m.Name, op, p)
						}
					}
				}
			}()
		}
	}
}

func TestMQXOpsProxyResolved(t *testing.T) {
	for op := range PISAProxy {
		for _, m := range Microarchs {
			if m.HasNative(op) {
				t.Errorf("%s: MQX op %v must not have a native entry (PISA-only)", m.Name, op)
			}
			c := m.CostOf(op)
			proxy := m.CostOf(PISAProxy[op])
			if c.Lat != proxy.Lat || len(c.Uops) != len(proxy.Uops) {
				t.Errorf("%s: %v cost differs from proxy %v", m.Name, op, PISAProxy[op])
			}
		}
	}
}

func TestCostOfPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown op")
		}
	}()
	SunnyCove.CostOf(Op(9999))
}

func TestMicroarchByName(t *testing.T) {
	for _, name := range []string{"SunnyCove", "Zen4"} {
		m, err := MicroarchByName(name)
		if err != nil || m.Name != name {
			t.Errorf("MicroarchByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := MicroarchByName("Haswell"); err == nil {
		t.Error("expected error for unknown march")
	}
}

func TestLevelProperties(t *testing.T) {
	if LevelScalar.Lanes() != 1 || LevelAVX2.Lanes() != 4 || LevelAVX512.Lanes() != 8 || LevelMQX.Lanes() != 8 {
		t.Error("lanes wrong")
	}
	if !LevelMQX.HasWideningMul() || !LevelMQX.HasCarry() {
		t.Error("MQX features wrong")
	}
	if LevelMQXMulOnly.HasCarry() || !LevelMQXMulOnly.HasWideningMul() {
		t.Error("+M features wrong")
	}
	if !LevelMQXCarryOnly.HasCarry() || LevelMQXCarryOnly.HasWideningMul() {
		t.Error("+C features wrong")
	}
	if LevelAVX512.HasCarry() || LevelAVX512.HasWideningMul() {
		t.Error("AVX-512 must not have MQX features")
	}
	for _, l := range SensitivityLevels {
		if l.String() == "level?" {
			t.Errorf("unnamed level %d", l)
		}
	}
}

func TestOpNamesAndPredicates(t *testing.T) {
	if ScalarAdc.String() != "adc" || MQXAdcQ.String() != "vpadcq" {
		t.Error("names wrong")
	}
	if Op(12345).String() != "op?" {
		t.Error("unknown op name wrong")
	}
	if !MQXMulQ.IsMQX() || ScalarAdd.IsMQX() || AVX512AddQ.IsMQX() {
		t.Error("IsMQX wrong")
	}
	for _, op := range []Op{ScalarLoad, ScalarStore, AVX2Load, AVX2Store, AVX512Load, AVX512Store} {
		if !op.IsMemory() {
			t.Errorf("%v should be memory", op)
		}
	}
	if AVX512AddQ.IsMemory() {
		t.Error("vpaddq is not memory")
	}
	// Mnemonics should look like assembly (lowercase, no spaces).
	for op, name := range opNames {
		if strings.ContainsAny(name, " \t") {
			t.Errorf("op %d name %q contains whitespace", op, name)
		}
	}
}
