// Package isa defines the instruction sets the library models — scalar
// x86-64, AVX2, AVX-512, and the paper's proposed multi-word extension
// (MQX, Table 2) with its sensitivity-analysis variants — together with
// per-microarchitecture cost tables (uop count, latency, port sets) for
// Sunny Cove (Intel Xeon 8352Y) and Zen 4 (AMD EPYC 9654), and the PISA
// proxy mappings of Table 3.
package isa

// Op identifies one modeled machine instruction.
type Op int

// Scalar x86-64 operations (64-bit general-purpose registers).
const (
	OpInvalid Op = iota

	ScalarAdd  // ADD r64, r64
	ScalarAdc  // ADC r64, r64 (add with carry)
	ScalarSub  // SUB r64, r64
	ScalarSbb  // SBB r64, r64 (subtract with borrow)
	ScalarMul  // MUL r64 (widening 64x64->128, two result registers)
	ScalarImul // IMUL r64, r64 (low 64 bits only)
	ScalarCmp  // CMP r64, r64 (sets flags)
	ScalarCmov // CMOVcc r64, r64
	ScalarSetcc
	ScalarAnd
	ScalarOr
	ScalarXor
	ScalarNot
	ScalarShl
	ScalarShr
	ScalarMov
	ScalarLoad  // MOV r64, [mem]
	ScalarStore // MOV [mem], r64
	ScalarTest
)

// AVX2 operations (256-bit vectors, 4 x 64-bit lanes, no mask registers).
const (
	AVX2AddQ    Op = iota + 100 // VPADDQ ymm
	AVX2SubQ                    // VPSUBQ ymm
	AVX2MulUDQ                  // VPMULUDQ ymm (widening 32x32->64 per lane pair)
	AVX2MulLD                   // VPMULLD ymm (32-bit multiply-low; PISA proxy target)
	AVX2CmpGtQ                  // VPCMPGTQ ymm (signed compare, the only 64-bit compare AVX2 has)
	AVX2CmpEqQ                  // VPCMPEQQ ymm
	AVX2BlendVB                 // VPBLENDVB ymm (variable blend by vector mask)
	AVX2And
	AVX2Or
	AVX2Xor
	AVX2AndNot
	AVX2SrlQ    // VPSRLQ ymm, imm
	AVX2SllQ    // VPSLLQ ymm, imm
	AVX2SrlVQ   // VPSRLVQ (variable shift)
	AVX2Shuf    // VPSHUFD / VPERMQ style permutes
	AVX2Perm128 // VPERM2I128 (two-source 128-bit half permute)
	AVX2UnpckL  // VPUNPCKLQDQ
	AVX2UnpckH  // VPUNPCKHQDQ
	AVX2Bcast   // VPBROADCASTQ
	AVX2Load    // VMOVDQU ymm, [mem]
	AVX2Store   // VMOVDQU [mem], ymm
)

// AVX-512 operations (512-bit vectors, 8 x 64-bit lanes, k mask registers).
const (
	AVX512AddQ     Op = iota + 200 // VPADDQ zmm
	AVX512SubQ                     // VPSUBQ zmm
	AVX512MaskAddQ                 // VPADDQ zmm {k}
	AVX512MaskSubQ                 // VPSUBQ zmm {k}
	AVX512MulUDQ                   // VPMULUDQ zmm (widening 32x32->64)
	AVX512MulLQ                    // VPMULLQ zmm (64-bit multiply-low, AVX-512DQ)
	AVX512CmpUQ                    // VPCMPUQ zmm -> k (unsigned, any predicate)
	AVX512CmpQ                     // VPCMPQ zmm -> k (signed)
	AVX512BlendQ                   // VPBLENDMQ zmm {k}
	AVX512And
	AVX512Or
	AVX512Xor
	AVX512SrlQI // VPSRLQ zmm, imm
	AVX512SllQI // VPSLLQ zmm, imm
	AVX512SrlQV // VPSRLVQ zmm (variable)
	AVX512Perm2 // VPERMI2Q / VPERMT2Q two-source permute
	AVX512Perm  // VPERMQ single-source permute
	AVX512UnpckL
	AVX512UnpckH
	AVX512Bcast   // VPBROADCASTQ zmm
	AVX512Load    // VMOVDQU64 zmm, [mem]
	AVX512Store   // VMOVDQU64 [mem], zmm
	AVX512MaxUQ   // VPMAXUQ zmm
	AVX512MinUQ   // VPMINUQ zmm
	AVX512TernLog // VPTERNLOGQ
	// Mask-register ALU ops.
	AVX512KOr
	AVX512KAnd
	AVX512KXor
	AVX512KNot
	AVX512KAndNot
	AVX512KMov
)

// MQX operations (Table 2), plus the sensitivity-analysis variants of
// Section 5.5: the multiply-high alternative (+Mh) and the predicated
// add/sub-with-carry (+P).
const (
	MQXMulQ     Op = iota + 300 // vpmulq: widening 64x64 -> (hi, lo) pair
	MQXAdcQ                     // vpadcq: per-lane add with carry-in/out mask
	MQXSbbQ                     // vpsbbq: per-lane subtract with borrow-in/out mask
	MQXMulHiQ                   // vpmulhq: multiply-high only (+Mh variant)
	MQXPredAdcQ                 // predicated vpadcq (+P variant)
	MQXPredSbbQ                 // predicated vpsbbq (+P variant)
)

var opNames = map[Op]string{
	ScalarAdd: "add", ScalarAdc: "adc", ScalarSub: "sub", ScalarSbb: "sbb",
	ScalarMul: "mul", ScalarImul: "imul", ScalarCmp: "cmp", ScalarCmov: "cmov",
	ScalarSetcc: "setcc", ScalarAnd: "and", ScalarOr: "or", ScalarXor: "xor",
	ScalarNot: "not", ScalarShl: "shl", ScalarShr: "shr", ScalarMov: "mov",
	ScalarLoad: "mov(load)", ScalarStore: "mov(store)", ScalarTest: "test",

	AVX2AddQ: "vpaddq(y)", AVX2SubQ: "vpsubq(y)", AVX2MulUDQ: "vpmuludq(y)",
	AVX2MulLD: "vpmulld(y)", AVX2CmpGtQ: "vpcmpgtq(y)", AVX2CmpEqQ: "vpcmpeqq(y)",
	AVX2BlendVB: "vpblendvb(y)", AVX2And: "vpand(y)", AVX2Or: "vpor(y)",
	AVX2Xor: "vpxor(y)", AVX2AndNot: "vpandn(y)", AVX2SrlQ: "vpsrlq(y)",
	AVX2SllQ: "vpsllq(y)", AVX2SrlVQ: "vpsrlvq(y)", AVX2Shuf: "vpermq(y)",
	AVX2UnpckL: "vpunpcklqdq(y)", AVX2UnpckH: "vpunpckhqdq(y)",
	AVX2Perm128: "vperm2i128(y)",
	AVX2Bcast:   "vpbroadcastq(y)", AVX2Load: "vmovdqu(y,load)", AVX2Store: "vmovdqu(y,store)",

	AVX512AddQ: "vpaddq", AVX512SubQ: "vpsubq",
	AVX512MaskAddQ: "vpaddq{k}", AVX512MaskSubQ: "vpsubq{k}",
	AVX512MulUDQ: "vpmuludq", AVX512MulLQ: "vpmullq",
	AVX512CmpUQ: "vpcmpuq", AVX512CmpQ: "vpcmpq", AVX512BlendQ: "vpblendmq",
	AVX512And: "vpandq", AVX512Or: "vporq", AVX512Xor: "vpxorq",
	AVX512SrlQI: "vpsrlq", AVX512SllQI: "vpsllq", AVX512SrlQV: "vpsrlvq",
	AVX512Perm2: "vpermi2q", AVX512Perm: "vpermq",
	AVX512UnpckL: "vpunpcklqdq", AVX512UnpckH: "vpunpckhqdq",
	AVX512Bcast: "vpbroadcastq", AVX512Load: "vmovdqu64(load)", AVX512Store: "vmovdqu64(store)",
	AVX512MaxUQ: "vpmaxuq", AVX512MinUQ: "vpminuq", AVX512TernLog: "vpternlogq",
	AVX512KOr: "korb", AVX512KAnd: "kandb", AVX512KXor: "kxorb",
	AVX512KNot: "knotb", AVX512KAndNot: "kandnb", AVX512KMov: "kmovb",

	MQXMulQ: "vpmulq", MQXAdcQ: "vpadcq", MQXSbbQ: "vpsbbq",
	MQXMulHiQ: "vpmulhq", MQXPredAdcQ: "vpadcq{pred}", MQXPredSbbQ: "vpsbbq{pred}",
}

// String returns the assembly-style mnemonic for the op.
func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return "op?"
}

// IsMQX reports whether the op is one of the proposed extension instructions.
func (op Op) IsMQX() bool { return op >= MQXMulQ && op <= MQXPredSbbQ }

// IsMemory reports whether the op is a load or store.
func (op Op) IsMemory() bool {
	switch op {
	case ScalarLoad, ScalarStore, AVX2Load, AVX2Store, AVX512Load, AVX512Store:
		return true
	}
	return false
}

// Level identifies an instruction-set tier in the paper's evaluation.
type Level int

const (
	// LevelScalar is the optimized standard-C scalar implementation.
	LevelScalar Level = iota
	// LevelAVX2 is 4-way SIMD without mask registers.
	LevelAVX2
	// LevelAVX512 is 8-way SIMD with mask registers.
	LevelAVX512
	// LevelMQX is AVX-512 plus the full MQX extension (+M,C).
	LevelMQX
	// LevelMQXMulOnly is AVX-512 plus only widening multiplication (+M).
	LevelMQXMulOnly
	// LevelMQXCarryOnly is AVX-512 plus only carry/borrow support (+C).
	LevelMQXCarryOnly
	// LevelMQXMulHi replaces the widening multiply with a multiply-high
	// pair (+Mh,C), the reduced-hardware alternative of Section 5.5.
	LevelMQXMulHi
	// LevelMQXPredicated is full MQX plus predicated carry ops (+M,C,P).
	LevelMQXPredicated
)

var levelNames = map[Level]string{
	LevelScalar:        "scalar",
	LevelAVX2:          "avx2",
	LevelAVX512:        "avx512",
	LevelMQX:           "mqx",
	LevelMQXMulOnly:    "mqx+M",
	LevelMQXCarryOnly:  "mqx+C",
	LevelMQXMulHi:      "mqx+Mh,C",
	LevelMQXPredicated: "mqx+M,C,P",
}

func (l Level) String() string {
	if s, ok := levelNames[l]; ok {
		return s
	}
	return "level?"
}

// Lanes returns the number of 64-bit lanes processed per instruction at
// this level (1 for scalar, 4 for AVX2, 8 for the 512-bit tiers).
func (l Level) Lanes() int {
	switch l {
	case LevelScalar:
		return 1
	case LevelAVX2:
		return 4
	default:
		return 8
	}
}

// HasWideningMul reports whether the level provides a 64-bit widening
// multiply (full or as a mullo/mulhi pair).
func (l Level) HasWideningMul() bool {
	switch l {
	case LevelMQX, LevelMQXMulOnly, LevelMQXMulHi, LevelMQXPredicated:
		return true
	}
	return false
}

// HasCarry reports whether the level provides vector add-with-carry /
// subtract-with-borrow.
func (l Level) HasCarry() bool {
	switch l {
	case LevelMQX, LevelMQXCarryOnly, LevelMQXMulHi, LevelMQXPredicated:
		return true
	}
	return false
}

// AllLevels lists the standard evaluation tiers (Figures 4 and 5).
var AllLevels = []Level{LevelScalar, LevelAVX2, LevelAVX512, LevelMQX}

// SensitivityLevels lists the Figure 6 ablation tiers in presentation order:
// Base (AVX-512), +M, +C, +M,C, +Mh,C, +M,C,P.
var SensitivityLevels = []Level{
	LevelAVX512, LevelMQXMulOnly, LevelMQXCarryOnly,
	LevelMQX, LevelMQXMulHi, LevelMQXPredicated,
}
