package kernels

import (
	"mqxgo/internal/isa"
	"mqxgo/internal/vm"
)

// B256 is the AVX2 backend: four 64-bit lanes, no mask registers, no
// unsigned compares. Conditions are lane masks (all-ones/all-zeros) held in
// ordinary vector registers; unsigned comparisons pay the sign-flip
// emulation; carry insertion exploits that an all-ones mask is -1, so
// subtracting a condition adds one.
type B256 struct {
	M *vm.Machine

	level    isa.Level
	signFlip vm.V4 // broadcast 2^63
	allOnes  vm.V4
	zeroC    vm.V4
}

var _ Ops[vm.V4, vm.V4] = (*B256)(nil)

// NewB256 builds the AVX2 backend. Call before m.BeginLoop.
func NewB256(m *vm.Machine) *B256 {
	return &B256{
		M:        m,
		level:    isa.LevelAVX2,
		signFlip: m.Set1x4(1 << 63),
		allOnes:  m.Set1x4(^uint64(0)),
		zeroC:    m.Set1x4(0),
	}
}

// Lanes implements Ops.
func (b *B256) Lanes() int { return 4 }

// Level implements Ops.
func (b *B256) Level() isa.Level { return b.level }

// Broadcast implements Ops.
func (b *B256) Broadcast(x uint64) vm.V4 { return b.M.Set1x4(x) }

// Load implements Ops.
func (b *B256) Load(s []uint64, i int) vm.V4 { return b.M.Load4(s, i) }

// Store implements Ops.
func (b *B256) Store(s []uint64, i int, w vm.V4) { b.M.Store4(s, i, w) }

// Zero implements Ops.
func (b *B256) Zero() vm.V4 { return b.zeroC }

// Add implements Ops.
func (b *B256) Add(a, x vm.V4) vm.V4 { return b.M.Add4(a, x) }

// Sub implements Ops.
func (b *B256) Sub(a, x vm.V4) vm.V4 { return b.M.Sub4(a, x) }

// MulWide implements Ops via the VPMULUDQ decomposition.
func (b *B256) MulWide(a, x vm.V4) (hi, lo vm.V4) {
	m := b.M
	sa := m.SrlI4(a, 32)
	sx := m.SrlI4(x, 32)
	ll := m.MulUDQ4(a, x)
	hl := m.MulUDQ4(sa, x)
	lh := m.MulUDQ4(a, sx)
	hh := m.MulUDQ4(sa, sx)
	mid := m.Add4(hl, m.SrlI4(ll, 32))
	midLo := m.SrlI4(m.SllI4(mid, 32), 32)
	mid2 := m.Add4(lh, midLo)
	hi = m.Add4(m.Add4(hh, m.SrlI4(mid, 32)), m.SrlI4(mid2, 32))
	lo = m.Or4(m.SllI4(mid2, 32), m.SrlI4(m.SllI4(ll, 32), 32))
	return hi, lo
}

// MulLo implements Ops. AVX2 has no 64-bit multiply-low, so it is
// synthesized from three VPMULUDQ partial products.
func (b *B256) MulLo(a, x vm.V4) vm.V4 {
	m := b.M
	ll := m.MulUDQ4(a, x)
	hl := m.MulUDQ4(m.SrlI4(a, 32), x)
	lh := m.MulUDQ4(a, m.SrlI4(x, 32))
	cross := m.SllI4(m.Add4(hl, lh), 32)
	return m.Add4(ll, cross)
}

// ltU is the emulated unsigned a < x (two sign flips + signed compare).
func (b *B256) ltU(a, x vm.V4) vm.V4 {
	af := b.M.Xor4(a, b.signFlip)
	xf := b.M.Xor4(x, b.signFlip)
	return b.M.CmpGtQ4(xf, af)
}

// AddOut implements Ops.
func (b *B256) AddOut(a, x vm.V4) (vm.V4, vm.V4) {
	s := b.M.Add4(a, x)
	return s, b.ltU(s, a)
}

// Adc implements Ops. Adding the carry is a subtraction of the mask
// (all-ones == -1).
func (b *B256) Adc(a, x vm.V4, ci vm.V4) (vm.V4, vm.V4) {
	t0 := b.M.Add4(a, x)
	t1 := b.M.Sub4(t0, ci)
	q0 := b.ltU(t1, a)
	q1 := b.ltU(t1, x)
	return t1, b.M.Or4(q0, q1)
}

// AddCW implements Ops.
func (b *B256) AddCW(a vm.V4, ci vm.V4) vm.V4 { return b.M.Sub4(a, ci) }

// SubOut implements Ops.
func (b *B256) SubOut(a, x vm.V4) (vm.V4, vm.V4) {
	return b.M.Sub4(a, x), b.ltU(a, x)
}

// Sbb implements Ops.
func (b *B256) Sbb(a, x vm.V4, bi vm.V4) (vm.V4, vm.V4) {
	d := b.M.Sub4(a, x)
	d2 := b.M.Add4(d, bi) // subtracting the borrow == adding the mask (-1)
	lt := b.ltU(a, x)
	eq := b.M.CmpEqQ4(a, x)
	return d2, b.M.Or4(lt, b.M.And4(eq, bi))
}

// SubCW implements Ops.
func (b *B256) SubCW(a vm.V4, bi vm.V4) vm.V4 { return b.M.Add4(a, bi) }

// CondAddOut implements Ops.
func (b *B256) CondAddOut(a vm.V4, cond vm.V4, x vm.V4) (vm.V4, vm.V4) {
	masked := b.M.And4(cond, x)
	s := b.M.Add4(a, masked)
	return s, b.ltU(s, a)
}

// CmpLt implements Ops.
func (b *B256) CmpLt(a, x vm.V4) vm.V4 { return b.ltU(a, x) }

// CmpLe implements Ops: !(x < a).
func (b *B256) CmpLe(a, x vm.V4) vm.V4 { return b.CNot(b.ltU(x, a)) }

// CmpEq implements Ops.
func (b *B256) CmpEq(a, x vm.V4) vm.V4 { return b.M.CmpEqQ4(a, x) }

// COr implements Ops.
func (b *B256) COr(a, x vm.V4) vm.V4 { return b.M.Or4(a, x) }

// CAnd implements Ops.
func (b *B256) CAnd(a, x vm.V4) vm.V4 { return b.M.And4(a, x) }

// CNot implements Ops.
func (b *B256) CNot(a vm.V4) vm.V4 { return b.M.Xor4(a, b.allOnes) }

// Select implements Ops.
func (b *B256) Select(c vm.V4, a, x vm.V4) vm.V4 { return b.M.BlendV4(c, a, x) }

// Interleave implements Ops: unpack within 128-bit halves, then fix the
// half order with VPERM2I128.
func (b *B256) Interleave(even, odd vm.V4) (vm.V4, vm.V4) {
	lo := b.M.UnpackLo4(even, odd)    // [e0 o0 e2 o2]
	hi := b.M.UnpackHi4(even, odd)    // [e1 o1 e3 o3]
	r0 := b.M.Perm2x128(lo, hi, 0, 2) // [e0 o0 e1 o1]
	r1 := b.M.Perm2x128(lo, hi, 1, 3) // [e2 o2 e3 o3]
	return r0, r1
}

// Deinterleave implements Ops: unpack pairs across the two registers, then
// fix lane order with VPERMQ.
func (b *B256) Deinterleave(r0, r1 vm.V4) (vm.V4, vm.V4) {
	lo := b.M.UnpackLo4(r0, r1) // [e0 e2 e1 e3]
	hi := b.M.UnpackHi4(r0, r1) // [o0 o2 o1 o3]
	even := b.M.Perm4(lo, [4]int{0, 2, 1, 3})
	odd := b.M.Perm4(hi, [4]int{0, 2, 1, 3})
	return even, odd
}

// Shr implements Ops.
func (b *B256) Shr(a vm.V4, n uint) vm.V4 { return b.M.SrlI4(a, n) }

// Shl implements Ops.
func (b *B256) Shl(a vm.V4, n uint) vm.V4 { return b.M.SllI4(a, n) }

// Or implements Ops.
func (b *B256) Or(a, x vm.V4) vm.V4 { return b.M.Or4(a, x) }
