package kernels

import (
	"mqxgo/internal/isa"
	"mqxgo/internal/vm"
)

// B512 is the 512-bit backend covering AVX-512 and every MQX variant: the
// feature flags select which primitives lower to native MQX instructions
// and which fall back to the AVX-512 emulation sequences, directly
// implementing the Figure 6 ablation grid.
type B512 struct {
	M *vm.Machine

	// NativeMulWide enables _mm512_mul_epi64 (+M).
	NativeMulWide bool
	// NativeMulHi enables the multiply-high alternative (+Mh): MulWide
	// lowers to a vpmullq/vpmulhq pair.
	NativeMulHi bool
	// NativeCarry enables _mm512_adc_epi64 / _mm512_sbb_epi64 (+C).
	NativeCarry bool
	// Predicated enables the +P predicated carry instructions.
	Predicated bool

	level isa.Level

	one    vm.V // broadcast 1, for emulated carry insertion
	zeroW  vm.V // broadcast 0, for native adc-based AddCW
	zeroC  vm.M
	idxEvn vm.V // permutation indices for Interleave
	idxOdd vm.V
	idxDeE vm.V // permutation indices for Deinterleave
	idxDeO vm.V
}

var _ Ops[vm.V, vm.M] = (*B512)(nil)

// NewB512 builds a 512-bit backend for the given level. It must be called
// before m.BeginLoop so constants land in the preamble.
func NewB512(m *vm.Machine, level isa.Level) *B512 {
	b := &B512{M: m, level: level}
	switch level {
	case isa.LevelAVX512:
	case isa.LevelMQX:
		b.NativeMulWide, b.NativeCarry = true, true
	case isa.LevelMQXMulOnly:
		b.NativeMulWide = true
	case isa.LevelMQXCarryOnly:
		b.NativeCarry = true
	case isa.LevelMQXMulHi:
		b.NativeMulHi, b.NativeCarry = true, true
	case isa.LevelMQXPredicated:
		b.NativeMulWide, b.NativeCarry, b.Predicated = true, true, true
	default:
		panic("kernels: B512 does not implement level " + level.String())
	}
	b.one = m.Set1(1)
	b.zeroW = m.Set1(0)
	b.zeroC = m.SetMask(0)
	// Index-vector constants for the interleave permutes (loaded once,
	// hoisted to the preamble like any other constant).
	b.idxEvn = m.Set1(0)
	b.idxOdd = m.Set1(0)
	b.idxDeE = m.Set1(0)
	b.idxDeO = m.Set1(0)
	b.idxEvn.X = vm.Vec{0, 8, 1, 9, 2, 10, 3, 11}
	b.idxOdd.X = vm.Vec{4, 12, 5, 13, 6, 14, 7, 15}
	b.idxDeE.X = vm.Vec{0, 2, 4, 6, 8, 10, 12, 14}
	b.idxDeO.X = vm.Vec{1, 3, 5, 7, 9, 11, 13, 15}
	return b
}

// Lanes implements Ops.
func (b *B512) Lanes() int { return 8 }

// Level implements Ops.
func (b *B512) Level() isa.Level { return b.level }

// Broadcast implements Ops.
func (b *B512) Broadcast(x uint64) vm.V { return b.M.Set1(x) }

// Load implements Ops.
func (b *B512) Load(s []uint64, i int) vm.V { return b.M.Load(s, i) }

// Store implements Ops.
func (b *B512) Store(s []uint64, i int, w vm.V) { b.M.Store(s, i, w) }

// Zero implements Ops.
func (b *B512) Zero() vm.M { return b.zeroC }

// Add implements Ops.
func (b *B512) Add(a, x vm.V) vm.V { return b.M.Add(a, x) }

// Sub implements Ops.
func (b *B512) Sub(a, x vm.V) vm.V { return b.M.Sub(a, x) }

// MulWide implements Ops. Without MQX it is the classic VPMULUDQ
// decomposition: four 32x32 partial products recombined with shifts and
// adds (no carries needed; see the mulhu identity).
func (b *B512) MulWide(a, x vm.V) (hi, lo vm.V) {
	if b.NativeMulWide {
		return b.M.MulWide(a, x)
	}
	if b.NativeMulHi {
		return b.M.MulHi(a, x), b.M.MulLo(a, x)
	}
	m := b.M
	sa := m.SrlI(a, 32)
	sx := m.SrlI(x, 32)
	ll := m.MulUDQ(a, x)
	hl := m.MulUDQ(sa, x)
	lh := m.MulUDQ(a, sx)
	hh := m.MulUDQ(sa, sx)
	mid := m.Add(hl, m.SrlI(ll, 32))
	// mid2 = lh + (mid & 0xffffffff): mask via shift pair to avoid another
	// broadcast constant.
	midLo := m.SrlI(m.SllI(mid, 32), 32)
	mid2 := m.Add(lh, midLo)
	hi = m.Add(m.Add(hh, m.SrlI(mid, 32)), m.SrlI(mid2, 32))
	lo = m.Or(m.SllI(mid2, 32), m.SrlI(m.SllI(ll, 32), 32))
	return hi, lo
}

// MulLo implements Ops: VPMULLQ (AVX-512DQ) at every level.
func (b *B512) MulLo(a, x vm.V) vm.V { return b.M.MulLo(a, x) }

// AddOut implements Ops.
func (b *B512) AddOut(a, x vm.V) (vm.V, vm.M) {
	if b.NativeCarry {
		return b.M.Adc(a, x, b.zeroC)
	}
	s := b.M.Add(a, x)
	return s, b.M.CmpU(vm.CmpLt, s, a)
}

// Adc implements Ops: the Table 1 sequence when carries are emulated.
func (b *B512) Adc(a, x vm.V, ci vm.M) (vm.V, vm.M) {
	if b.NativeCarry {
		return b.M.Adc(a, x, ci)
	}
	m := b.M
	t0 := m.Add(a, x)
	t1 := m.MaskAdd(t0, ci, t0, b.one)
	q0 := m.CmpU(vm.CmpLt, t1, a)
	q1 := m.CmpU(vm.CmpLt, t1, x)
	return t1, m.KOr(q0, q1)
}

// AddCW implements Ops.
func (b *B512) AddCW(a vm.V, ci vm.M) vm.V {
	if b.NativeCarry {
		s, _ := b.M.Adc(a, b.zeroW, ci)
		return s
	}
	return b.M.MaskAdd(a, ci, a, b.one)
}

// SubOut implements Ops.
func (b *B512) SubOut(a, x vm.V) (vm.V, vm.M) {
	if b.NativeCarry {
		return b.M.Sbb(a, x, b.zeroC)
	}
	d := b.M.Sub(a, x)
	return d, b.M.CmpU(vm.CmpLt, a, x)
}

// Sbb implements Ops.
func (b *B512) Sbb(a, x vm.V, bi vm.M) (vm.V, vm.M) {
	if b.NativeCarry {
		return b.M.Sbb(a, x, bi)
	}
	m := b.M
	d := m.Sub(a, x)
	d2 := m.MaskSub(d, bi, d, b.one)
	lt := m.CmpU(vm.CmpLt, a, x)
	eq := m.CmpU(vm.CmpEq, a, x)
	return d2, m.KOr(lt, m.KAnd(eq, bi))
}

// SubCW implements Ops.
func (b *B512) SubCW(a vm.V, bi vm.M) vm.V {
	if b.NativeCarry {
		d, _ := b.M.Sbb(a, b.zeroW, bi)
		return d
	}
	return b.M.MaskSub(a, bi, a, b.one)
}

// CondAddOut implements Ops.
func (b *B512) CondAddOut(a vm.V, cond vm.M, x vm.V) (vm.V, vm.M) {
	s := b.M.MaskAdd(a, cond, a, x)
	return s, b.M.CmpU(vm.CmpLt, s, a)
}

// CmpLt implements Ops.
func (b *B512) CmpLt(a, x vm.V) vm.M { return b.M.CmpU(vm.CmpLt, a, x) }

// CmpLe implements Ops.
func (b *B512) CmpLe(a, x vm.V) vm.M { return b.M.CmpU(vm.CmpLe, a, x) }

// CmpEq implements Ops.
func (b *B512) CmpEq(a, x vm.V) vm.M { return b.M.CmpU(vm.CmpEq, a, x) }

// COr implements Ops.
func (b *B512) COr(a, x vm.M) vm.M { return b.M.KOr(a, x) }

// CAnd implements Ops.
func (b *B512) CAnd(a, x vm.M) vm.M { return b.M.KAnd(a, x) }

// CNot implements Ops.
func (b *B512) CNot(a vm.M) vm.M { return b.M.KNot(a) }

// Select implements Ops.
func (b *B512) Select(c vm.M, a, x vm.V) vm.V { return b.M.Blend(c, a, x) }

// Interleave implements Ops with two VPERMI2Q permutes.
func (b *B512) Interleave(even, odd vm.V) (vm.V, vm.V) {
	r0 := b.M.Permute2(b.idxEvn, even, odd)
	r1 := b.M.Permute2(b.idxOdd, even, odd)
	return r0, r1
}

// Deinterleave implements Ops with two VPERMI2Q permutes.
func (b *B512) Deinterleave(r0, r1 vm.V) (vm.V, vm.V) {
	even := b.M.Permute2(b.idxDeE, r0, r1)
	odd := b.M.Permute2(b.idxDeO, r0, r1)
	return even, odd
}

// MinU implements MinUOps: VPMINUQ, native at every 512-bit level.
func (b *B512) MinU(a, x vm.V) vm.V { return b.M.MinU(a, x) }

// Shr implements Ops.
func (b *B512) Shr(a vm.V, n uint) vm.V { return b.M.SrlI(a, n) }

// Shl implements Ops.
func (b *B512) Shl(a vm.V, n uint) vm.V { return b.M.SllI(a, n) }

// Or implements Ops.
func (b *B512) Or(a, x vm.V) vm.V { return b.M.Or(a, x) }

// HasPredication implements PredOps.
func (b *B512) HasPredication() bool { return b.Predicated }

// PredAdd implements PredOps when the +P variant is selected.
func (b *B512) PredAdd(pred vm.M, a, x vm.V, ci vm.M) vm.V {
	if !b.Predicated {
		panic("kernels: PredAdd requires the predicated MQX variant")
	}
	return b.M.PredAdc(pred, a, x, ci)
}

// PredSub implements PredOps when the +P variant is selected.
func (b *B512) PredSub(pred vm.M, a, x vm.V, bi vm.M) vm.V {
	if !b.Predicated {
		panic("kernels: PredSub requires the predicated MQX variant")
	}
	return b.M.PredSbb(pred, a, x, bi)
}
