package kernels

import (
	"mqxgo/internal/isa"
	"mqxgo/internal/vm"
)

// BScalar is the optimized scalar x86-64 backend (Section 3.1, Listing 1):
// one element per iteration, hardware ADC/SBB carry chains, CMOV for
// branch-free selection, widening MUL.
//
// Register-pressure model: the double-word kernels keep ~25 values live
// (Listing 1) against the ~15 allocatable general-purpose registers of
// x86-64, so compiled code spills to the stack. The backend injects one
// spill store+reload pair every spillEvery value-producing operations
// (register-register moves are not modeled: Ice Lake and Zen 4 eliminate
// them at rename). The 512-bit backend has 32 architectural registers and
// needs no such traffic — one of the structural reasons vector code wins
// beyond lane parallelism.
type BScalar struct {
	M     *vm.Machine
	zeroW vm.S

	scratch  []uint64 // spill slots
	pressure int
}

// spillEveryScalar is the value-producing-op period between modeled spill
// store/reload pairs (about 25 live values over 15 GPRs in the Listing 1
// kernels works out to roughly one spill per four operations).
const spillEveryScalar = 4

var _ Ops[vm.S, vm.F] = (*BScalar)(nil)

// NewBScalar builds the scalar backend. Call before m.BeginLoop.
func NewBScalar(m *vm.Machine) *BScalar {
	return &BScalar{M: m, zeroW: m.SImm(0), scratch: make([]uint64, 4)}
}

// tick implements the spill model; call once per value-producing op.
func (b *BScalar) tick() {
	if !b.M.InLoop() {
		return
	}
	b.pressure++
	if b.pressure%spillEveryScalar == 0 {
		s := b.M.SLoad(b.scratch, 0)
		b.M.SStore(b.scratch, 1, s)
	}
}

// Lanes implements Ops.
func (b *BScalar) Lanes() int { return 1 }

// Level implements Ops.
func (b *BScalar) Level() isa.Level { return isa.LevelScalar }

// Broadcast implements Ops.
func (b *BScalar) Broadcast(x uint64) vm.S { return b.M.SImm(x) }

// Load implements Ops.
func (b *BScalar) Load(s []uint64, i int) vm.S { return b.M.SLoad(s, i) }

// Store implements Ops.
func (b *BScalar) Store(s []uint64, i int, w vm.S) { b.M.SStore(s, i, w) }

// Zero implements Ops: a cleared carry flag costs nothing on x86.
func (b *BScalar) Zero() vm.F { return vm.FalseFlag() }

// Add implements Ops.
func (b *BScalar) Add(a, x vm.S) vm.S {
	b.tick()
	s, _ := b.M.SAdd(a, x)
	return s
}

// Sub implements Ops.
func (b *BScalar) Sub(a, x vm.S) vm.S {
	b.tick()
	d, _ := b.M.SSub(a, x)
	return d
}

// MulWide implements Ops: a single widening MUL.
func (b *BScalar) MulWide(a, x vm.S) (hi, lo vm.S) {
	b.tick()
	b.tick() // two result registers
	return b.M.SMulWide(a, x)
}

// MulLo implements Ops.
func (b *BScalar) MulLo(a, x vm.S) vm.S {
	b.tick()
	return b.M.SMulLo(a, x)
}

// AddOut implements Ops.
func (b *BScalar) AddOut(a, x vm.S) (vm.S, vm.F) {
	b.tick()
	return b.M.SAdd(a, x)
}

// Adc implements Ops.
func (b *BScalar) Adc(a, x vm.S, ci vm.F) (vm.S, vm.F) {
	b.tick()
	return b.M.SAdc(a, x, ci)
}

// AddCW implements Ops: ADC with a zero register.
func (b *BScalar) AddCW(a vm.S, ci vm.F) vm.S {
	b.tick()
	s, _ := b.M.SAdc(a, b.zeroW, ci)
	return s
}

// SubOut implements Ops.
func (b *BScalar) SubOut(a, x vm.S) (vm.S, vm.F) {
	b.tick()
	return b.M.SSub(a, x)
}

// Sbb implements Ops.
func (b *BScalar) Sbb(a, x vm.S, bi vm.F) (vm.S, vm.F) {
	b.tick()
	return b.M.SSbb(a, x, bi)
}

// SubCW implements Ops.
func (b *BScalar) SubCW(a vm.S, bi vm.F) vm.S {
	b.tick()
	d, _ := b.M.SSbb(a, b.zeroW, bi)
	return d
}

// CondAddOut implements Ops: CMOV picks 0 or x, then ADD supplies the carry.
func (b *BScalar) CondAddOut(a vm.S, cond vm.F, x vm.S) (vm.S, vm.F) {
	b.tick()
	pick := b.M.SCmov(cond, b.zeroW, x)
	return b.M.SAdd(a, pick)
}

// CmpLt implements Ops.
func (b *BScalar) CmpLt(a, x vm.S) vm.F { return b.M.SCmpLt(a, x) }

// CmpLe implements Ops.
func (b *BScalar) CmpLe(a, x vm.S) vm.F { return b.M.SCmpLe(a, x) }

// CmpEq implements Ops.
func (b *BScalar) CmpEq(a, x vm.S) vm.F { return b.M.SCmpEq(a, x) }

// COr implements Ops.
func (b *BScalar) COr(a, x vm.F) vm.F { return b.M.SFOr(a, x) }

// CAnd implements Ops.
func (b *BScalar) CAnd(a, x vm.F) vm.F { return b.M.SFAnd(a, x) }

// CNot implements Ops.
func (b *BScalar) CNot(a vm.F) vm.F { return b.M.SFNot(a) }

// Select implements Ops.
func (b *BScalar) Select(c vm.F, a, x vm.S) vm.S {
	b.tick()
	return b.M.SCmov(c, a, x)
}

// Interleave implements Ops: with one lane, outputs are already in
// consecutive-storage order.
func (b *BScalar) Interleave(even, odd vm.S) (vm.S, vm.S) { return even, odd }

// Deinterleave implements Ops (identity for one lane).
func (b *BScalar) Deinterleave(r0, r1 vm.S) (vm.S, vm.S) { return r0, r1 }

// Shr implements Ops.
func (b *BScalar) Shr(a vm.S, n uint) vm.S {
	b.tick()
	return b.M.SShr(a, n)
}

// Shl implements Ops.
func (b *BScalar) Shl(a vm.S, n uint) vm.S {
	b.tick()
	return b.M.SShl(a, n)
}

// Or implements Ops.
func (b *BScalar) Or(a, x vm.S) vm.S {
	b.tick()
	return b.M.SOr(a, x)
}
