package kernels

// Butterfly computes the Gentleman-Sande (decimation-in-frequency) NTT
// butterfly used throughout the paper's kernels: one modular addition, one
// modular subtraction and one modular multiplication by the twiddle factor
// (Section 3.2):
//
//	even = a + b mod q
//	odd  = (a - b) * w mod q
func (d *DW[W, C]) Butterfly(a, b, w DWPair[W]) (even, odd DWPair[W]) {
	even = d.AddMod(a, b)
	diff := d.SubMod(a, b)
	odd = d.MulMod(diff, w)
	return even, odd
}

// MulAddMod computes a*x + y mod q, the element-wise body of the BLAS axpy
// kernel.
func (d *DW[W, C]) MulAddMod(a, x, y DWPair[W]) DWPair[W] {
	return d.AddMod(d.MulMod(a, x), y)
}
