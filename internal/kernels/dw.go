package kernels

import (
	"fmt"

	"mqxgo/internal/modmath"
)

// DWPair is a double-word value in a backend's word type: Hi holds bits
// 64..127 of each lane, Lo bits 0..63 (the paper's [x0, x1] notation).
type DWPair[W any] struct {
	Hi, Lo W
}

// DW provides double-word modular arithmetic over a backend, holding the
// broadcast modulus and Barrett constants. Construct before BeginLoop.
type DW[W, C any] struct {
	O   Ops[W, C]
	Mod *modmath.Modulus128

	QHi, QLo   W
	MuHi, MuLo W
	zeroW      W
	n          uint
	alg        modmath.MulAlgorithm
}

// NewDW broadcasts the modulus and Barrett constants for the backend.
func NewDW[W, C any](o Ops[W, C], mod *modmath.Modulus128) *DW[W, C] {
	return &DW[W, C]{
		O:     o,
		Mod:   mod,
		QHi:   o.Broadcast(mod.Q.Hi),
		QLo:   o.Broadcast(mod.Q.Lo),
		MuHi:  o.Broadcast(mod.Mu.Hi),
		MuLo:  o.Broadcast(mod.Mu.Lo),
		zeroW: o.Broadcast(0),
		n:     mod.N,
		alg:   mod.Alg,
	}
}

// AddMod computes (a + b) mod q for reduced double-word inputs, following
// the structure of Listings 2 and 3: full-width add with carry, compare
// against the modulus, conditional subtract. Unlike Listing 3 the
// equal-high-words case is handled exactly.
func (d *DW[W, C]) AddMod(a, b DWPair[W]) DWPair[W] {
	o := d.O
	el, c1 := o.AddOut(a.Lo, b.Lo)
	eh, c2 := o.Adc(a.Hi, b.Hi, c1)

	// ctrl = carry-out | (sum >= q), comparing (eh, el) against (QHi, QLo).
	gt := o.CmpLt(d.QHi, eh)
	eq := o.CmpEq(d.QHi, eh)
	ge := o.CmpLe(d.QLo, el)
	ctrl := o.COr(c2, o.COr(gt, o.CAnd(eq, ge)))

	dl, b1 := o.SubOut(el, d.QLo)
	cl := o.Select(ctrl, el, dl)
	var ch W
	if p, ok := o.(PredOps[W, C]); ok && p.HasPredication() {
		// +P: the predicated subtract replaces the sub+blend pair.
		ch = p.PredSub(ctrl, eh, d.QHi, b1)
	} else {
		dh := d.subPair(eh, d.QHi, b1)
		ch = o.Select(ctrl, eh, dh)
	}
	return DWPair[W]{Hi: ch, Lo: cl}
}

// subPair returns a - b - bi without a borrow-out.
func (d *DW[W, C]) subPair(a, b W, bi C) W {
	t := d.O.Sub(a, b)
	return d.O.SubCW(t, bi)
}

// SubMod computes (a - b) mod q for reduced inputs (Eq. 7 plus the
// conditional add-back of Eq. 3).
func (d *DW[W, C]) SubMod(a, b DWPair[W]) DWPair[W] {
	o := d.O
	dl, b1 := o.SubOut(a.Lo, b.Lo)
	dh, b2 := o.Sbb(a.Hi, b.Hi, b1) // b2 set where a < b

	el, c1 := o.AddOut(dl, d.QLo)
	cl := o.Select(b2, dl, el)
	var ch W
	if p, ok := o.(PredOps[W, C]); ok && p.HasPredication() {
		ch = p.PredAdd(b2, dh, d.QHi, c1)
	} else {
		eh := o.AddCW(o.Add(dh, d.QHi), c1)
		ch = o.Select(b2, dh, eh)
	}
	return DWPair[W]{Hi: ch, Lo: cl}
}

// quad is a 256-bit lane value, least significant word first.
type quad[W any] struct{ w0, w1, w2, w3 W }

// MulMod computes (a * b) mod q via Barrett reduction (Eq. 4), with the
// 128x128 widening product chosen by the modulus's multiplication
// algorithm (schoolbook Eq. 8 or Karatsuba Eq. 9).
func (d *DW[W, C]) MulMod(a, b DWPair[W]) DWPair[W] {
	o := d.O
	var t quad[W]
	if d.alg == modmath.Karatsuba {
		t = d.mul128Karatsuba(a, b)
	} else {
		t = d.mul128Schoolbook(a, b)
	}

	// u = t >> (n-1): a 128-bit value (the shift amount is in [64, 128)).
	u := d.shrQuadTo128(t, d.n-1)

	// v = u * mu, then qhat = (v >> (n+1)) low 128 bits.
	var v quad[W]
	if d.alg == modmath.Karatsuba {
		v = d.mul128Karatsuba(u, DWPair[W]{Hi: d.MuHi, Lo: d.MuLo})
	} else {
		v = d.mul128Schoolbook(u, DWPair[W]{Hi: d.MuHi, Lo: d.MuLo})
	}
	qhat := d.shrQuadTo128(v, d.n+1)

	// w = low 128 bits of qhat * q.
	ph, pl := o.MulWide(qhat.Lo, d.QLo)
	x1 := o.MulLo(qhat.Lo, d.QHi)
	x2 := o.MulLo(qhat.Hi, d.QLo)
	wHi := o.Add(o.Add(ph, x1), x2)

	// r = (t mod 2^128) - w; the true remainder is < 3q < 2^126, so the
	// low 128 bits are exact.
	rl, br := o.SubOut(t.w0, pl)
	rh := d.subPair(t.w1, wHi, br)

	// At most two corrective subtractions of q (Barrett bound).
	r := DWPair[W]{Hi: rh, Lo: rl}
	r = d.condSubQ(r)
	r = d.condSubQ(r)
	return r
}

// condSubQ subtracts q when r >= q: subtract, then keep the original where
// the subtraction borrowed.
func (d *DW[W, C]) condSubQ(r DWPair[W]) DWPair[W] {
	o := d.O
	dl, b1 := o.SubOut(r.Lo, d.QLo)
	dh, b2 := o.Sbb(r.Hi, d.QHi, b1) // b2 set where r < q: keep r
	return DWPair[W]{
		Hi: o.Select(b2, dh, r.Hi),
		Lo: o.Select(b2, dl, r.Lo),
	}
}

// shrQuadTo128 returns (t >> s) truncated to 128 bits for 1 <= s < 128.
// Callers guarantee the true shifted value fits in 128 bits (the Barrett
// bounds: t >> (n-1) < 2^(n+1) and v >> (n+1) < 2^(n+1) with n <= 124).
func (d *DW[W, C]) shrQuadTo128(t quad[W], s uint) DWPair[W] {
	if s == 0 || s >= 128 {
		panic(fmt.Sprintf("kernels: shift %d outside [1,128)", s))
	}
	o := d.O
	w0, w1, w2 := t.w0, t.w1, t.w2
	if s >= 64 {
		w0, w1, w2 = t.w1, t.w2, t.w3
		s -= 64
	}
	if s == 0 {
		return DWPair[W]{Hi: w1, Lo: w0}
	}
	sl := 64 - s
	lo := o.Or(o.Shr(w0, s), o.Shl(w1, sl))
	hi := o.Or(o.Shr(w1, s), o.Shl(w2, sl))
	return DWPair[W]{Hi: hi, Lo: lo}
}

// mul128Schoolbook is the Eq. 8 widening product: four per-lane 64x64
// multiplications plus carry recombination.
func (d *DW[W, C]) mul128Schoolbook(a, b DWPair[W]) quad[W] {
	o := d.O
	hhH, hhL := o.MulWide(a.Hi, b.Hi)
	hlH, hlL := o.MulWide(a.Hi, b.Lo)
	lhH, lhL := o.MulWide(a.Lo, b.Hi)
	llH, llL := o.MulWide(a.Lo, b.Lo)

	s1, c1 := o.AddOut(llH, hlL)
	t1, c2 := o.AddOut(s1, lhL)

	s2, c3 := o.Adc(hhL, hlH, c1)
	t2, c4 := o.Adc(s2, lhH, c2)

	t3 := o.AddCW(o.AddCW(hhH, c3), c4)
	return quad[W]{w0: llL, w1: t1, w2: t2, w3: t3}
}

// mul128Karatsuba is the Eq. 9 widening product: three 64x64
// multiplications, at the price of the carry bookkeeping that the paper
// finds uncompetitive on CPUs (Section 5.5).
func (d *DW[W, C]) mul128Karatsuba(a, b DWPair[W]) quad[W] {
	o := d.O
	hhH, hhL := o.MulWide(a.Hi, b.Hi)
	llH, llL := o.MulWide(a.Lo, b.Lo)

	sa, ca := o.AddOut(a.Hi, a.Lo)
	sb, cb := o.AddOut(b.Hi, b.Lo)
	mH, mL := o.MulWide(sa, sb)

	// middle (192-bit) = m + ca*sb*2^64 + cb*sa*2^64 + (ca&cb)*2^128.
	mH, e1 := o.CondAddOut(mH, ca, sb)
	mH, e2 := o.CondAddOut(mH, cb, sa)
	ccBoth := o.CAnd(ca, cb)
	m2 := o.AddCW(o.AddCW(o.AddCW(d.zeroW, ccBoth), e1), e2)

	// middle -= hh + ll (never underflows).
	mL, b1 := o.SubOut(mL, llL)
	mH, b2 := o.Sbb(mH, llH, b1)
	m2 = o.SubCW(m2, b2)
	mL, b3 := o.SubOut(mL, hhL)
	mH, b4 := o.Sbb(mH, hhH, b3)
	m2 = o.SubCW(m2, b4)

	// result = hh*2^128 + middle*2^64 + ll.
	t1, c1 := o.AddOut(llH, mL)
	t2, c2 := o.Adc(hhL, mH, c1)
	t2b, c4 := o.AddOut(t2, m2)
	t3 := o.AddCW(o.AddCW(hhH, c2), c4)
	return quad[W]{w0: llL, w1: t1, w2: t2b, w3: t3}
}
