package kernels

import (
	"math/rand"
	"testing"

	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
	"mqxgo/internal/u128"
	"mqxgo/internal/vm"
)

// vecLevels are the 512-bit tiers.
var vecLevels = []isa.Level{
	isa.LevelAVX512, isa.LevelMQX, isa.LevelMQXMulOnly,
	isa.LevelMQXCarryOnly, isa.LevelMQXMulHi, isa.LevelMQXPredicated,
}

func testModulus(t *testing.T, bits int, alg modmath.MulAlgorithm) *modmath.Modulus128 {
	t.Helper()
	q, err := modmath.FindNTTPrime128(bits, 8)
	if err != nil {
		t.Fatal(err)
	}
	return modmath.MustModulus128(q).WithAlgorithm(alg)
}

func randReduced(r *rand.Rand, mod *modmath.Modulus128) u128.U128 {
	return u128.New(r.Uint64(), r.Uint64()).Mod(mod.Q)
}

// edgeInputs exercises the boundary operands of the conditional logic.
func edgeInputs(mod *modmath.Modulus128) []u128.U128 {
	return []u128.U128{
		u128.Zero, u128.One, mod.Q.Sub64(1), mod.Q.Sub64(2),
		mod.Q.Rsh(1), mod.Q.Rsh(1).Add64(1), u128.New(0, ^uint64(0)).Mod(mod.Q),
	}
}

// checkVec512 runs op over 8-lane inputs on a 512-bit backend and compares
// each lane against the modmath reference.
func checkVec512(t *testing.T, level isa.Level, mod *modmath.Modulus128,
	as, bs []u128.U128,
	op func(d *DW[vm.V, vm.M], a, b DWPair[vm.V]) DWPair[vm.V],
	ref func(a, b u128.U128) u128.U128) {
	t.Helper()
	m := vm.New(vm.TraceOff)
	b512 := NewB512(m, level)
	d := NewDW[vm.V, vm.M](b512, mod)
	m.BeginLoop()
	for i := 0; i+8 <= len(as); i += 8 {
		var ahi, alo, bhi, blo vm.Vec
		for l := 0; l < 8; l++ {
			ahi[l], alo[l] = as[i+l].Hi, as[i+l].Lo
			bhi[l], blo[l] = bs[i+l].Hi, bs[i+l].Lo
		}
		a := DWPair[vm.V]{Hi: loadVec(m, ahi), Lo: loadVec(m, alo)}
		bb := DWPair[vm.V]{Hi: loadVec(m, bhi), Lo: loadVec(m, blo)}
		c := op(d, a, bb)
		for l := 0; l < 8; l++ {
			got := u128.New(c.Hi.X[l], c.Lo.X[l])
			want := ref(as[i+l], bs[i+l])
			if !got.Equal(want) {
				t.Fatalf("%v q=%s lane %d: a=%s b=%s got %s want %s",
					level, mod.Q, l, as[i+l], bs[i+l], got, want)
			}
		}
	}
}

func loadVec(m *vm.Machine, x vm.Vec) vm.V {
	s := make([]uint64, 8)
	copy(s, x[:])
	return m.Load(s, 0)
}

func loadVec4(m *vm.Machine, x vm.Vec4) vm.V4 {
	s := make([]uint64, 4)
	copy(s, x[:])
	return m.Load4(s, 0)
}

func buildOperandSet(t *testing.T, mod *modmath.Modulus128, n int, seed int64) (as, bs []u128.U128) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	edges := edgeInputs(mod)
	for _, a := range edges {
		for _, b := range edges {
			as, bs = append(as, a), append(bs, b)
		}
	}
	for len(as)%8 != 0 || len(as) < n {
		as = append(as, randReduced(r, mod))
		bs = append(bs, randReduced(r, mod))
	}
	return as, bs
}

func TestVec512AddSubMulModAllLevels(t *testing.T) {
	for _, bits := range []int{64, 100, 124} {
		for _, alg := range []modmath.MulAlgorithm{modmath.Schoolbook, modmath.Karatsuba} {
			mod := testModulus(t, bits, alg)
			as, bs := buildOperandSet(t, mod, 256, int64(bits)*7+int64(alg))
			for _, level := range vecLevels {
				checkVec512(t, level, mod, as, bs,
					func(d *DW[vm.V, vm.M], a, b DWPair[vm.V]) DWPair[vm.V] { return d.AddMod(a, b) },
					mod.Add)
				checkVec512(t, level, mod, as, bs,
					func(d *DW[vm.V, vm.M], a, b DWPair[vm.V]) DWPair[vm.V] { return d.SubMod(a, b) },
					mod.Sub)
				checkVec512(t, level, mod, as, bs,
					func(d *DW[vm.V, vm.M], a, b DWPair[vm.V]) DWPair[vm.V] { return d.MulMod(a, b) },
					mod.Mul)
			}
		}
	}
}

func TestAVX2AddSubMulMod(t *testing.T) {
	for _, bits := range []int{64, 113, 124} {
		for _, alg := range []modmath.MulAlgorithm{modmath.Schoolbook, modmath.Karatsuba} {
			mod := testModulus(t, bits, alg)
			as, bs := buildOperandSet(t, mod, 128, int64(bits)*13+int64(alg))
			m := vm.New(vm.TraceOff)
			b256 := NewB256(m)
			d := NewDW[vm.V4, vm.V4](b256, mod)
			m.BeginLoop()
			type refFn func(a, b u128.U128) u128.U128
			cases := []struct {
				op  func(a, b DWPair[vm.V4]) DWPair[vm.V4]
				ref refFn
			}{
				{d.AddMod, mod.Add},
				{d.SubMod, mod.Sub},
				{d.MulMod, mod.Mul},
			}
			for _, c := range cases {
				for i := 0; i+4 <= len(as); i += 4 {
					var ahi, alo, bhi, blo vm.Vec4
					for l := 0; l < 4; l++ {
						ahi[l], alo[l] = as[i+l].Hi, as[i+l].Lo
						bhi[l], blo[l] = bs[i+l].Hi, bs[i+l].Lo
					}
					a := DWPair[vm.V4]{Hi: loadVec4(m, ahi), Lo: loadVec4(m, alo)}
					bb := DWPair[vm.V4]{Hi: loadVec4(m, bhi), Lo: loadVec4(m, blo)}
					got := c.op(a, bb)
					for l := 0; l < 4; l++ {
						g := u128.New(got.Hi.X[l], got.Lo.X[l])
						w := c.ref(as[i+l], bs[i+l])
						if !g.Equal(w) {
							t.Fatalf("avx2 q=%s lane %d: a=%s b=%s got %s want %s",
								mod.Q, l, as[i+l], bs[i+l], g, w)
						}
					}
				}
			}
		}
	}
}

func TestScalarAddSubMulMod(t *testing.T) {
	for _, bits := range []int{64, 90, 124} {
		for _, alg := range []modmath.MulAlgorithm{modmath.Schoolbook, modmath.Karatsuba} {
			mod := testModulus(t, bits, alg)
			as, bs := buildOperandSet(t, mod, 128, int64(bits)*17+int64(alg))
			m := vm.New(vm.TraceOff)
			bs1 := NewBScalar(m)
			d := NewDW[vm.S, vm.F](bs1, mod)
			m.BeginLoop()
			for i := range as {
				mk := func(x u128.U128) DWPair[vm.S] {
					s := []uint64{x.Hi, x.Lo}
					return DWPair[vm.S]{Hi: m.SLoad(s, 0), Lo: m.SLoad(s, 1)}
				}
				a, b := mk(as[i]), mk(bs[i])
				checks := []struct {
					got  DWPair[vm.S]
					want u128.U128
					name string
				}{
					{d.AddMod(a, b), mod.Add(as[i], bs[i]), "add"},
					{d.SubMod(a, b), mod.Sub(as[i], bs[i]), "sub"},
					{d.MulMod(a, b), mod.Mul(as[i], bs[i]), "mul"},
				}
				for _, c := range checks {
					g := u128.New(c.got.Hi.X, c.got.Lo.X)
					if !g.Equal(c.want) {
						t.Fatalf("scalar %s q=%s: a=%s b=%s got %s want %s",
							c.name, mod.Q, as[i], bs[i], g, c.want)
					}
				}
			}
		}
	}
}

func TestButterflyMatchesReference(t *testing.T) {
	mod := testModulus(t, 124, modmath.Schoolbook)
	r := rand.New(rand.NewSource(99))
	m := vm.New(vm.TraceOff)
	b512 := NewB512(m, isa.LevelMQX)
	d := NewDW[vm.V, vm.M](b512, mod)
	m.BeginLoop()
	for iter := 0; iter < 50; iter++ {
		var ahi, alo, bhi, blo, whi, wlo vm.Vec
		var av, bv, wv [8]u128.U128
		for l := 0; l < 8; l++ {
			av[l], bv[l], wv[l] = randReduced(r, mod), randReduced(r, mod), randReduced(r, mod)
			ahi[l], alo[l] = av[l].Hi, av[l].Lo
			bhi[l], blo[l] = bv[l].Hi, bv[l].Lo
			whi[l], wlo[l] = wv[l].Hi, wv[l].Lo
		}
		a := DWPair[vm.V]{Hi: loadVec(m, ahi), Lo: loadVec(m, alo)}
		b := DWPair[vm.V]{Hi: loadVec(m, bhi), Lo: loadVec(m, blo)}
		w := DWPair[vm.V]{Hi: loadVec(m, whi), Lo: loadVec(m, wlo)}
		even, odd := d.Butterfly(a, b, w)
		fma := d.MulAddMod(a, b, w)
		for l := 0; l < 8; l++ {
			wantE := mod.Add(av[l], bv[l])
			wantO := mod.Mul(mod.Sub(av[l], bv[l]), wv[l])
			gotE := u128.New(even.Hi.X[l], even.Lo.X[l])
			gotO := u128.New(odd.Hi.X[l], odd.Lo.X[l])
			if !gotE.Equal(wantE) || !gotO.Equal(wantO) {
				t.Fatalf("butterfly lane %d: got (%s, %s), want (%s, %s)",
					l, gotE, gotO, wantE, wantO)
			}
			wantF := mod.Add(mod.Mul(av[l], bv[l]), wv[l])
			gotF := u128.New(fma.Hi.X[l], fma.Lo.X[l])
			if !gotF.Equal(wantF) {
				t.Fatalf("mul-add lane %d: got %s, want %s", l, gotF, wantF)
			}
		}
	}
}

// TestInstructionCountOrdering verifies the core claim of Section 4: MQX
// collapses the emulation sequences, so the per-butterfly instruction count
// strictly drops from AVX2 (most), AVX-512, down to MQX (fewest).
func TestInstructionCountOrdering(t *testing.T) {
	mod := testModulus(t, 124, modmath.Schoolbook)
	count512 := func(level isa.Level) int64 {
		m := vm.New(vm.TraceCounts)
		b := NewB512(m, level)
		d := NewDW[vm.V, vm.M](b, mod)
		m.BeginLoop()
		x := DWPair[vm.V]{Hi: b.Broadcast(1), Lo: b.Broadcast(2)}
		d.Butterfly(x, x, x)
		return m.TotalOps()
	}
	avx512 := count512(isa.LevelAVX512)
	mqx := count512(isa.LevelMQX)
	mqxM := count512(isa.LevelMQXMulOnly)
	mqxC := count512(isa.LevelMQXCarryOnly)
	mqxMh := count512(isa.LevelMQXMulHi)

	if !(mqx < mqxM && mqxM < avx512) {
		t.Errorf("want mqx < +M < avx512, got %d, %d, %d", mqx, mqxM, avx512)
	}
	if !(mqx < mqxC && mqxC < avx512) {
		t.Errorf("want mqx < +C < avx512, got %d, %d, %d", mqx, mqxC, avx512)
	}
	if !(mqx <= mqxMh && mqxMh < avx512) {
		t.Errorf("want mqx <= +Mh,C < avx512, got %d, %d, %d", mqx, mqxMh, avx512)
	}

	// AVX2 processes 4 lanes per instruction; normalize to per-lane work.
	m2 := vm.New(vm.TraceCounts)
	b2 := NewB256(m2)
	d2 := NewDW[vm.V4, vm.V4](b2, mod)
	m2.BeginLoop()
	x2 := DWPair[vm.V4]{Hi: b2.Broadcast(1), Lo: b2.Broadcast(2)}
	d2.Butterfly(x2, x2, x2)
	avx2PerLane := float64(m2.TotalOps()) / 4

	avx512PerLane := float64(avx512) / 8
	if avx2PerLane <= avx512PerLane {
		t.Errorf("AVX2 per-lane ops %.1f should exceed AVX-512 per-lane %.1f",
			avx2PerLane, avx512PerLane)
	}

	// Scalar: one lane, hardware carries. Fewer raw instructions per
	// element than AVX-512 per vector, but no lane parallelism.
	ms := vm.New(vm.TraceCounts)
	bsc := NewBScalar(ms)
	ds := NewDW[vm.S, vm.F](bsc, mod)
	ms.BeginLoop()
	xs := DWPair[vm.S]{Hi: bsc.Broadcast(1), Lo: bsc.Broadcast(2)}
	ds.Butterfly(xs, xs, xs)
	scalar := ms.TotalOps()
	if scalar >= avx512 {
		t.Errorf("scalar butterfly (%d ops) should use fewer instructions than the AVX-512 vector butterfly (%d)", scalar, avx512)
	}
}

func TestPredicatedVariantSavesBlends(t *testing.T) {
	mod := testModulus(t, 124, modmath.Schoolbook)
	count := func(level isa.Level) int64 {
		m := vm.New(vm.TraceCounts)
		b := NewB512(m, level)
		d := NewDW[vm.V, vm.M](b, mod)
		m.BeginLoop()
		x := DWPair[vm.V]{Hi: b.Broadcast(1), Lo: b.Broadcast(2)}
		d.AddMod(x, x)
		d.SubMod(x, x)
		return m.TotalOps()
	}
	mqx := count(isa.LevelMQX)
	pred := count(isa.LevelMQXPredicated)
	if pred >= mqx {
		t.Errorf("+P add/sub (%d ops) should beat plain MQX (%d)", pred, mqx)
	}
}

func TestInterleave(t *testing.T) {
	// 512-bit interleave.
	m := vm.New(vm.TraceOff)
	b := NewB512(m, isa.LevelAVX512)
	m.BeginLoop()
	evens := make([]uint64, 8)
	odds := make([]uint64, 8)
	for i := range evens {
		evens[i] = uint64(2 * i)
		odds[i] = uint64(2*i + 1)
	}
	r0, r1 := b.Interleave(m.Load(evens, 0), m.Load(odds, 0))
	for i := 0; i < 8; i++ {
		if r0.X[i] != uint64(i) || r1.X[i] != uint64(8+i) {
			t.Fatalf("512 interleave wrong: %v %v", r0.X, r1.X)
		}
	}
	// AVX2 interleave.
	m2 := vm.New(vm.TraceOff)
	b2 := NewB256(m2)
	m2.BeginLoop()
	r20, r21 := b2.Interleave(m2.Load4(evens, 0), m2.Load4(odds, 0))
	for i := 0; i < 4; i++ {
		if r20.X[i] != uint64(i) || r21.X[i] != uint64(4+i) {
			t.Fatalf("avx2 interleave wrong: %v %v", r20.X, r21.X)
		}
	}
}
