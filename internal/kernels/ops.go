// Package kernels builds the paper's double-word modular arithmetic kernels
// (Listings 1-3) as instruction streams on the internal/vm machine, once per
// ISA tier: scalar x86-64, AVX2, AVX-512 and MQX (including the Figure 6
// sensitivity variants).
//
// The algorithms are written once against the Ops interface; each backend
// lowers the primitive operations to its ISA's best sequence. A backend with
// hardware carry support (scalar, MQX) lowers AddOut/Adc to single
// instructions; AVX-512 lowers them to the add/compare/mask sequences of
// Table 1 and Listing 2; AVX2 additionally pays for emulated unsigned
// comparisons. This reproduces exactly the instruction-count asymmetry the
// paper identifies as the AVX-512 bottleneck (Section 4).
package kernels

import "mqxgo/internal/isa"

// Ops is the primitive vocabulary of double-word modular arithmetic over a
// backend's word type W (one or more 64-bit lanes) and condition type C
// (carry/borrow/comparison results: CPU flags, k-masks, or lane masks).
//
// Backends must be constructed before vm.Machine.BeginLoop is called so
// their internal constants land in the preamble.
type Ops[W, C any] interface {
	// Lanes returns how many 64-bit elements W holds.
	Lanes() int
	// Level identifies the ISA tier for reporting.
	Level() isa.Level

	// Broadcast materializes a loop-invariant constant. Call before
	// BeginLoop so it lands in the preamble.
	Broadcast(x uint64) W
	// Load reads Lanes() contiguous words from s at index i.
	Load(s []uint64, i int) W
	// Store writes Lanes() contiguous words to s at index i.
	Store(s []uint64, i int, w W)

	// Zero returns the cleared condition (no carry in).
	Zero() C

	Add(a, b W) W
	Sub(a, b W) W
	// MulWide is the full 64x64->128 widening multiply per lane.
	MulWide(a, b W) (hi, lo W)
	// MulLo is the low 64 bits of the product per lane.
	MulLo(a, b W) W

	// AddOut returns a+b and the carry-out (no carry-in).
	AddOut(a, b W) (W, C)
	// Adc returns a+b+ci and the carry-out.
	//
	// Emulated-carry backends (AVX-512/AVX2) use the detection sequence of
	// Table 1, which requires that a and b are never simultaneously the
	// all-ones word when ci is set; all kernel call sites satisfy this
	// because at least one operand is a product limb (<= 2^64-2) or a
	// value bounded by the 124-bit Barrett limit.
	Adc(a, b W, ci C) (W, C)
	// AddCW returns a + ci (carry-in only, no carry-out).
	AddCW(a W, ci C) W
	// SubOut returns a-b and the borrow-out (no borrow-in).
	SubOut(a, b W) (W, C)
	// Sbb returns a-b-bi and the borrow-out.
	Sbb(a, b W, bi C) (W, C)
	// SubCW returns a - bi (borrow-in only, no borrow-out).
	SubCW(a W, bi C) W
	// CondAddOut conditionally adds b where cond is set, with carry-out.
	CondAddOut(a W, cond C, b W) (W, C)

	// CmpLt / CmpLe / CmpEq are unsigned lane comparisons a<b, a<=b, a==b.
	CmpLt(a, b W) C
	CmpLe(a, b W) C
	CmpEq(a, b W) C

	COr(a, b C) C
	CAnd(a, b C) C
	CNot(a C) C

	// Select returns b where c is set, a elsewhere.
	Select(c C, a, b W) W

	// Interleave maps (even outputs, odd outputs) to consecutive-storage
	// order: r0 holds lanes {e0,o0,e1,o1,...} and r1 the upper half. For
	// a scalar backend this is the identity.
	Interleave(even, odd W) (r0, r1 W)
	// Deinterleave is the inverse of Interleave: it splits two
	// consecutive-storage registers back into even and odd streams.
	Deinterleave(r0, r1 W) (even, odd W)

	// Shr and Shl are lane-wise shifts by an immediate.
	Shr(a W, n uint) W
	Shl(a W, n uint) W
	Or(a, b W) W
}

// MinUOps is the optional unsigned-minimum extension: VPMINUQ on AVX-512.
// Lazy-reduction kernels use it for the branchless conditional subtract
// min(x, x-c) — correct for ANY unsigned x, because a wrapped difference
// always exceeds the original value. Backends without a 64-bit unsigned
// minimum (scalar x86-64, AVX2) do not implement it and pay the
// compare/select sequence instead; generic code type-asserts.
type MinUOps[W any] interface {
	// MinU returns the lane-wise unsigned minimum of a and b.
	MinU(a, b W) W
}

// PredOps is the optional predicated-execution extension of Section 5.5
// (+M,C,P): predicated add/sub with carry/borrow-in that return the first
// operand in lanes where pred is clear, without producing a carry-out.
type PredOps[W, C any] interface {
	// HasPredication reports whether the backend was configured with the
	// +P instructions; generic code must check it before calling the
	// predicated ops (a backend type may implement them but have the
	// feature disabled for the current level).
	HasPredication() bool
	PredAdd(pred C, a, b W, ci C) W
	PredSub(pred C, a, b W, bi C) W
}
