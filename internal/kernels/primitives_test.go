package kernels

import (
	"math/bits"
	"math/rand"
	"testing"

	"mqxgo/internal/isa"
	"mqxgo/internal/vm"
)

// Primitive-level conformance: every backend's carry/borrow/select
// primitives must implement the same abstract semantics, checked directly
// rather than through the composed kernels. The B512 emulated-carry paths
// assume at least one operand is below 2^64-1 when a carry-in is set
// (Table 1's documented precondition), so operands here are drawn
// accordingly.

func randOperand(r *rand.Rand) uint64 {
	// Bias toward boundary-rich values but respect the Table 1
	// precondition (never all-ones).
	switch r.Intn(4) {
	case 0:
		return r.Uint64() >> 32
	case 1:
		return ^uint64(0) - uint64(r.Intn(1000)) - 1
	default:
		return r.Uint64() &^ 1 // clear bit 0: cannot be all-ones
	}
}

func TestPrimitives512Conformance(t *testing.T) {
	r := rand.New(rand.NewSource(171))
	for _, level := range []isa.Level{isa.LevelAVX512, isa.LevelMQX, isa.LevelMQXCarryOnly} {
		m := vm.New(vm.TraceOff)
		b := NewB512(m, level)
		m.BeginLoop()
		for iter := 0; iter < 500; iter++ {
			x, y := randOperand(r), randOperand(r)
			ci := r.Intn(2)
			xv, yv := b.Broadcast(x), b.Broadcast(y)
			ciM := b.Zero()
			if ci == 1 {
				ciM = m.SetMask(0xff)
			}

			sum, co := b.Adc(xv, yv, ciM)
			wantS, wantC := bits.Add64(x, y, uint64(ci))
			if sum.X[0] != wantS || (co.K&1 == 1) != (wantC == 1) {
				t.Fatalf("%v Adc(%x, %x, %d): got (%x, %v), want (%x, %d)",
					level, x, y, ci, sum.X[0], co.K&1, wantS, wantC)
			}

			diff, bo := b.Sbb(xv, yv, ciM)
			wantD, wantB := bits.Sub64(x, y, uint64(ci))
			if diff.X[0] != wantD || (bo.K&1 == 1) != (wantB == 1) {
				t.Fatalf("%v Sbb(%x, %x, %d): got (%x, %v), want (%x, %d)",
					level, x, y, ci, diff.X[0], bo.K&1, wantD, wantB)
			}

			s2, c2 := b.AddOut(xv, yv)
			w2, wc2 := bits.Add64(x, y, 0)
			if s2.X[0] != w2 || (c2.K&1 == 1) != (wc2 == 1) {
				t.Fatalf("%v AddOut(%x, %x) wrong", level, x, y)
			}

			d2, b2 := b.SubOut(xv, yv)
			wd2, wb2 := bits.Sub64(x, y, 0)
			if d2.X[0] != wd2 || (b2.K&1 == 1) != (wb2 == 1) {
				t.Fatalf("%v SubOut(%x, %x) wrong", level, x, y)
			}

			if got := b.AddCW(xv, ciM); got.X[0] != x+uint64(ci) {
				t.Fatalf("%v AddCW wrong", level)
			}
			if got := b.SubCW(xv, ciM); got.X[0] != x-uint64(ci) {
				t.Fatalf("%v SubCW wrong", level)
			}

			ca, cout := b.CondAddOut(xv, ciM, yv)
			wantCA, wantCout := x, uint64(0)
			if ci == 1 {
				wantCA, wantCout = bits.Add64(x, y, 0)
			}
			if ca.X[0] != wantCA || (cout.K&1 == 1) != (wantCout == 1) {
				t.Fatalf("%v CondAddOut(%x, %d, %x): got (%x, %v), want (%x, %d)",
					level, x, ci, y, ca.X[0], cout.K&1, wantCA, wantCout)
			}

			hi, lo := b.MulWide(xv, yv)
			wh, wl := bits.Mul64(x, y)
			if hi.X[0] != wh || lo.X[0] != wl {
				t.Fatalf("%v MulWide(%x, %x) wrong", level, x, y)
			}
		}
	}
}

func TestPrimitivesAVX2Conformance(t *testing.T) {
	r := rand.New(rand.NewSource(172))
	m := vm.New(vm.TraceOff)
	b := NewB256(m)
	m.BeginLoop()
	ones := m.Set1x4(^uint64(0))
	for iter := 0; iter < 500; iter++ {
		x, y := randOperand(r), randOperand(r)
		ci := r.Intn(2)
		xv, yv := b.Broadcast(x), b.Broadcast(y)
		ciM := b.Zero()
		if ci == 1 {
			ciM = ones
		}

		sum, co := b.Adc(xv, yv, ciM)
		wantS, wantC := bits.Add64(x, y, uint64(ci))
		if sum.X[0] != wantS || (co.X[0] != 0) != (wantC == 1) {
			t.Fatalf("avx2 Adc(%x, %x, %d): got (%x, %x), want (%x, %d)",
				x, y, ci, sum.X[0], co.X[0], wantS, wantC)
		}
		diff, bo := b.Sbb(xv, yv, ciM)
		wantD, wantB := bits.Sub64(x, y, uint64(ci))
		if diff.X[0] != wantD || (bo.X[0] != 0) != (wantB == 1) {
			t.Fatalf("avx2 Sbb(%x, %x, %d) wrong", x, y, ci)
		}
		hi, lo := b.MulWide(xv, yv)
		wh, wl := bits.Mul64(x, y)
		if hi.X[0] != wh || lo.X[0] != wl {
			t.Fatalf("avx2 MulWide(%x, %x) wrong", x, y)
		}
		if got := b.MulLo(xv, yv); got.X[0] != x*y {
			t.Fatalf("avx2 MulLo(%x, %x) wrong", x, y)
		}
	}
}

func TestPrimitivesScalarConformance(t *testing.T) {
	r := rand.New(rand.NewSource(173))
	m := vm.New(vm.TraceOff)
	b := NewBScalar(m)
	m.BeginLoop()
	for iter := 0; iter < 500; iter++ {
		x, y := r.Uint64(), r.Uint64() // scalar ADC is exact: no precondition
		xv, yv := b.Broadcast(x), b.Broadcast(y)
		_, cf := b.AddOut(xv, yv)
		sum, co := b.Adc(xv, yv, cf)
		first, c1 := bits.Add64(x, y, 0)
		wantS, wantC := bits.Add64(x, y, c1)
		_ = first
		if sum.X != wantS || co.B != (wantC == 1) {
			t.Fatalf("scalar Adc chain wrong for %x + %x", x, y)
		}
	}
}
