package kernels

import (
	"testing"
	"testing/quick"

	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
	"mqxgo/internal/u128"
	"mqxgo/internal/vm"
)

// Property-based tests: testing/quick drives random operand pairs through
// every backend and checks algebraic invariants against the modmath
// reference, independent of the fixed-seed tables in kernels_test.go.

func quickMod(t *testing.T) *modmath.Modulus128 {
	t.Helper()
	return modmath.DefaultModulus128()
}

// run512 executes one op on an 8-lane backend with all lanes equal to
// (a, b) and returns lane 0.
func run512(level isa.Level, mod *modmath.Modulus128,
	op func(d *DW[vm.V, vm.M], a, b DWPair[vm.V]) DWPair[vm.V],
	a, b u128.U128) u128.U128 {
	m := vm.New(vm.TraceOff)
	bk := NewB512(m, level)
	d := NewDW[vm.V, vm.M](bk, mod)
	m.BeginLoop()
	av := DWPair[vm.V]{Hi: bk.Broadcast(a.Hi), Lo: bk.Broadcast(a.Lo)}
	bv := DWPair[vm.V]{Hi: bk.Broadcast(b.Hi), Lo: bk.Broadcast(b.Lo)}
	c := op(d, av, bv)
	return u128.New(c.Hi.X[0], c.Lo.X[0])
}

func runScalar(mod *modmath.Modulus128,
	op func(d *DW[vm.S, vm.F], a, b DWPair[vm.S]) DWPair[vm.S],
	a, b u128.U128) u128.U128 {
	m := vm.New(vm.TraceOff)
	bk := NewBScalar(m)
	d := NewDW[vm.S, vm.F](bk, mod)
	m.BeginLoop()
	av := DWPair[vm.S]{Hi: bk.Broadcast(a.Hi), Lo: bk.Broadcast(a.Lo)}
	bv := DWPair[vm.S]{Hi: bk.Broadcast(b.Hi), Lo: bk.Broadcast(b.Lo)}
	c := op(d, av, bv)
	return u128.New(c.Hi.X, c.Lo.X)
}

func runAVX2(mod *modmath.Modulus128,
	op func(d *DW[vm.V4, vm.V4], a, b DWPair[vm.V4]) DWPair[vm.V4],
	a, b u128.U128) u128.U128 {
	m := vm.New(vm.TraceOff)
	bk := NewB256(m)
	d := NewDW[vm.V4, vm.V4](bk, mod)
	m.BeginLoop()
	av := DWPair[vm.V4]{Hi: bk.Broadcast(a.Hi), Lo: bk.Broadcast(a.Lo)}
	bv := DWPair[vm.V4]{Hi: bk.Broadcast(b.Hi), Lo: bk.Broadcast(b.Lo)}
	c := op(d, av, bv)
	return u128.New(c.Hi.X[0], c.Lo.X[0])
}

func TestQuickAllBackendsMatchReference(t *testing.T) {
	mod := quickMod(t)
	cfg := &quick.Config{MaxCount: 300}

	f := func(aHi, aLo, bHi, bLo uint64) bool {
		a := u128.New(aHi, aLo).Mod(mod.Q)
		b := u128.New(bHi, bLo).Mod(mod.Q)
		wantAdd := mod.Add(a, b)
		wantSub := mod.Sub(a, b)
		wantMul := mod.Mul(a, b)

		for _, level := range []isa.Level{isa.LevelAVX512, isa.LevelMQX, isa.LevelMQXMulHi, isa.LevelMQXPredicated} {
			if !run512(level, mod, func(d *DW[vm.V, vm.M], x, y DWPair[vm.V]) DWPair[vm.V] { return d.AddMod(x, y) }, a, b).Equal(wantAdd) {
				return false
			}
			if !run512(level, mod, func(d *DW[vm.V, vm.M], x, y DWPair[vm.V]) DWPair[vm.V] { return d.SubMod(x, y) }, a, b).Equal(wantSub) {
				return false
			}
			if !run512(level, mod, func(d *DW[vm.V, vm.M], x, y DWPair[vm.V]) DWPair[vm.V] { return d.MulMod(x, y) }, a, b).Equal(wantMul) {
				return false
			}
		}
		if !runScalar(mod, func(d *DW[vm.S, vm.F], x, y DWPair[vm.S]) DWPair[vm.S] { return d.MulMod(x, y) }, a, b).Equal(wantMul) {
			return false
		}
		if !runAVX2(mod, func(d *DW[vm.V4, vm.V4], x, y DWPair[vm.V4]) DWPair[vm.V4] { return d.MulMod(x, y) }, a, b).Equal(wantMul) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAlgebraicInvariants checks ring identities end-to-end through
// the MQX backend: commutativity, additive inverse, distributivity.
func TestQuickAlgebraicInvariants(t *testing.T) {
	mod := quickMod(t)
	cfg := &quick.Config{MaxCount: 200}

	mulV := func(a, b u128.U128) u128.U128 {
		return run512(isa.LevelMQX, mod, func(d *DW[vm.V, vm.M], x, y DWPair[vm.V]) DWPair[vm.V] { return d.MulMod(x, y) }, a, b)
	}
	addV := func(a, b u128.U128) u128.U128 {
		return run512(isa.LevelMQX, mod, func(d *DW[vm.V, vm.M], x, y DWPair[vm.V]) DWPair[vm.V] { return d.AddMod(x, y) }, a, b)
	}
	subV := func(a, b u128.U128) u128.U128 {
		return run512(isa.LevelMQX, mod, func(d *DW[vm.V, vm.M], x, y DWPair[vm.V]) DWPair[vm.V] { return d.SubMod(x, y) }, a, b)
	}

	f := func(aHi, aLo, bHi, bLo, cHi, cLo uint64) bool {
		a := u128.New(aHi, aLo).Mod(mod.Q)
		b := u128.New(bHi, bLo).Mod(mod.Q)
		c := u128.New(cHi, cLo).Mod(mod.Q)

		if !mulV(a, b).Equal(mulV(b, a)) {
			return false // commutativity
		}
		if !addV(a, b).Equal(addV(b, a)) {
			return false
		}
		if !subV(addV(a, b), b).Equal(a) {
			return false // (a+b)-b == a
		}
		// a*(b+c) == a*b + a*c
		left := mulV(a, addV(b, c))
		right := addV(mulV(a, b), mulV(a, c))
		return left.Equal(right)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickButterflyInvertible: the butterfly is invertible — from
// (even, odd) and w one can recover (a, b). Checks the algebra holds for
// the MQX backend path.
func TestQuickButterflyInvertible(t *testing.T) {
	mod := quickMod(t)
	cfg := &quick.Config{MaxCount: 150}
	f := func(aHi, aLo, bHi, bLo, wHi, wLo uint64) bool {
		a := u128.New(aHi, aLo).Mod(mod.Q)
		b := u128.New(bHi, bLo).Mod(mod.Q)
		w := u128.New(wHi, wLo).Mod(mod.Q)
		if w.IsZero() {
			w = u128.One
		}
		m := vm.New(vm.TraceOff)
		bk := NewB512(m, isa.LevelMQX)
		d := NewDW[vm.V, vm.M](bk, mod)
		m.BeginLoop()
		av := DWPair[vm.V]{Hi: bk.Broadcast(a.Hi), Lo: bk.Broadcast(a.Lo)}
		bv := DWPair[vm.V]{Hi: bk.Broadcast(b.Hi), Lo: bk.Broadcast(b.Lo)}
		wv := DWPair[vm.V]{Hi: bk.Broadcast(w.Hi), Lo: bk.Broadcast(w.Lo)}
		even, odd := d.Butterfly(av, bv, wv)
		e := u128.New(even.Hi.X[0], even.Lo.X[0])
		o := u128.New(odd.Hi.X[0], odd.Lo.X[0])

		// Reference inversion: t = o*w^-1; a' = (e+t)/2, b' = (e-t)/2.
		wInv := mod.Inv(w)
		twoInv := mod.Inv(u128.From64(2))
		tt := mod.Mul(o, wInv)
		aBack := mod.Mul(mod.Add(e, tt), twoInv)
		bBack := mod.Mul(mod.Sub(e, tt), twoInv)
		return aBack.Equal(a) && bBack.Equal(b)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
