package kernels

import (
	"mqxgo/internal/modmath"
)

// Single-word (64-bit) modular kernels over the same backend interface:
// the HEXL-style lane arithmetic used when large coefficients are carried
// in RNS form instead of the paper's 128-bit double-words (Sections 1 and
// 8 contrast the two). Because q < 2^62, sums never wrap and no carry
// emulation is needed — the structural reason 64-bit SIMD modular
// arithmetic was already fast before MQX, and why the paper's proposal
// targets the multi-word case.
type SW[W, C any] struct {
	O   Ops[W, C]
	Mod *modmath.Modulus64

	q, mu, twoQ W
	n           uint

	// minU is the backend's native unsigned minimum when it has one
	// (AVX-512 VPMINUQ); the lazy conditional subtracts lower to
	// min(x, x-c) there and to the compare/select sequence elsewhere.
	minU MinUOps[W]
}

// NewSW broadcasts the modulus constants; call before BeginLoop.
func NewSW[W, C any](o Ops[W, C], mod *modmath.Modulus64) *SW[W, C] {
	s := &SW[W, C]{
		O:    o,
		Mod:  mod,
		q:    o.Broadcast(mod.Q),
		mu:   o.Broadcast(mod.Mu),
		twoQ: o.Broadcast(2 * mod.Q),
		n:    mod.N,
	}
	if m, ok := o.(MinUOps[W]); ok {
		s.minU = m
	}
	return s
}

// AddMod returns (a + b) mod q per lane, for reduced inputs.
func (s *SW[W, C]) AddMod(a, b W) W {
	o := s.O
	sum := o.Add(a, b) // q < 2^62: never wraps
	d := o.Sub(sum, s.q)
	keep := o.CmpLt(sum, s.q)
	return o.Select(keep, d, sum)
}

// SubMod returns (a - b) mod q per lane, for reduced inputs.
func (s *SW[W, C]) SubMod(a, b W) W {
	o := s.O
	d := o.Sub(a, b)
	fixed := o.Add(d, s.q)
	wrap := o.CmpLt(a, b)
	return o.Select(wrap, d, fixed)
}

// MulMod returns (a * b) mod q per lane via Barrett reduction — the
// 64-bit analogue of the paper's Eq. 4 pipeline.
func (s *SW[W, C]) MulMod(a, b W) W {
	o := s.O
	hi, lo := o.MulWide(a, b)

	// t1 = floor(t / 2^(n-1)), at most n+1 <= 63 bits.
	t1 := o.Or(o.Shr(lo, s.n-1), o.Shl(hi, 65-s.n))

	// qhat = floor(t1 * mu / 2^(n+1)).
	h2, l2 := o.MulWide(t1, s.mu)
	qhat := o.Or(o.Shr(l2, s.n+1), o.Shl(h2, 63-s.n))

	r := o.Sub(lo, o.MulLo(qhat, s.q))

	// Two corrective subtractions (Barrett bound).
	r = s.condSubQ(r)
	r = s.condSubQ(r)
	return r
}

func (s *SW[W, C]) condSubQ(r W) W {
	o := s.O
	d := o.Sub(r, s.q)
	keep := o.CmpLt(r, s.q)
	return o.Select(keep, d, r)
}

// MulShoup returns (a * w) mod q for a fixed multiplicand w with its Shoup
// precomputation wPre (both pre-broadcast): one widening multiply for the
// quotient, one low multiply, one correction — the twiddle-multiply form
// 64-bit NTT libraries use.
func (s *SW[W, C]) MulShoup(a, w, wPre W) W {
	o := s.O
	qhat, _ := o.MulWide(a, wPre) // high part only is needed
	r := o.Sub(o.MulLo(a, w), o.MulLo(qhat, s.q))
	return s.condSubQ(r)
}

// Butterfly is the 64-bit Gentleman-Sande butterfly with a Shoup twiddle.
func (s *SW[W, C]) Butterfly(a, b, w, wPre W) (even, odd W) {
	even = s.AddMod(a, b)
	odd = s.MulShoup(s.SubMod(a, b), w, wPre)
	return even, odd
}

// Lazy-reduction kernels (the PR 3 ring.SpanKernels discipline): residues
// travel between stages in the relaxed domain [0, 2q), the conditional
// subtract at the tail of the Shoup multiply is dropped entirely, and the
// canonical subtract becomes a branchless a + 2q - b. Written once against
// the backend vocabulary, these record per tier exactly the instruction
// streams the ring package's AVX2/AVX-512 span kernels execute, so the
// scheduler's projection of these bodies is the VM-side prediction for the
// vector tier.

// condSub2Q returns x - 2q if x >= 2q else x, for x < 4q. On backends with
// a native unsigned minimum this is sub+min (the VPMINUQ trick — correct
// for any x because a wrapped difference exceeds the input); elsewhere it
// pays the compare/select sequence.
func (s *SW[W, C]) condSub2Q(x W) W {
	o := s.O
	d := o.Sub(x, s.twoQ)
	if s.minU != nil {
		return s.minU.MinU(x, d)
	}
	keep := o.CmpLt(x, s.twoQ)
	return o.Select(keep, d, x)
}

// condSubQLazy is condSub2Q with modulus q: the deferred-normalization
// fold of the final stage.
func (s *SW[W, C]) condSubQLazy(x W) W {
	o := s.O
	d := o.Sub(x, s.q)
	if s.minU != nil {
		return s.minU.MinU(x, d)
	}
	keep := o.CmpLt(x, s.q)
	return o.Select(keep, d, x)
}

// AddLazy returns a + b reduced into [0, 2q), for relaxed inputs (< 2q
// each; the sum < 4q never wraps since q < 2^62).
func (s *SW[W, C]) AddLazy(a, b W) W {
	return s.condSub2Q(s.O.Add(a, b))
}

// SubLazy returns a + 2q - b in (0, 4q) with NO conditional subtract: the
// difference feeds MulShoupLazy directly, whose bound holds for any 64-bit
// multiplicand.
func (s *SW[W, C]) SubLazy(a, b W) W {
	return s.O.Sub(s.O.Add(a, s.twoQ), b)
}

// MulShoupLazy returns a*w - floor(a*wPre/2^64)*q in [0, 2q): the Shoup
// multiply without its correction step — one widening multiply for the
// quotient and two low multiplies, no compare.
func (s *SW[W, C]) MulShoupLazy(a, w, wPre W) W {
	o := s.O
	qhat, _ := o.MulWide(a, wPre) // high part only is needed
	return o.Sub(o.MulLo(a, w), o.MulLo(qhat, s.q))
}

// LazyButterfly is the relaxed-domain CT butterfly (ring.Shoup64.CTSpan's
// body): even = (a+b) mod 2q, odd = (a + 2q - b)·w via the lazy Shoup
// multiply, relaxed in, relaxed out.
func (s *SW[W, C]) LazyButterfly(a, b, w, wPre W) (even, odd W) {
	even = s.AddLazy(a, b)
	odd = s.MulShoupLazy(s.SubLazy(a, b), w, wPre)
	return even, odd
}

// LazyButterflyLast is the final-stage variant (ring.Shoup64.CTSpanLast):
// the same dataflow plus the deferred normalization landing on both lanes.
func (s *SW[W, C]) LazyButterflyLast(a, b, w, wPre W) (even, odd W) {
	even, odd = s.LazyButterfly(a, b, w, wPre)
	return s.condSubQLazy(even), s.condSubQLazy(odd)
}
