package kernels

import (
	"mqxgo/internal/modmath"
)

// Single-word (64-bit) modular kernels over the same backend interface:
// the HEXL-style lane arithmetic used when large coefficients are carried
// in RNS form instead of the paper's 128-bit double-words (Sections 1 and
// 8 contrast the two). Because q < 2^62, sums never wrap and no carry
// emulation is needed — the structural reason 64-bit SIMD modular
// arithmetic was already fast before MQX, and why the paper's proposal
// targets the multi-word case.
type SW[W, C any] struct {
	O   Ops[W, C]
	Mod *modmath.Modulus64

	q, mu W
	n     uint
}

// NewSW broadcasts the modulus constants; call before BeginLoop.
func NewSW[W, C any](o Ops[W, C], mod *modmath.Modulus64) *SW[W, C] {
	return &SW[W, C]{
		O:   o,
		Mod: mod,
		q:   o.Broadcast(mod.Q),
		mu:  o.Broadcast(mod.Mu),
		n:   mod.N,
	}
}

// AddMod returns (a + b) mod q per lane, for reduced inputs.
func (s *SW[W, C]) AddMod(a, b W) W {
	o := s.O
	sum := o.Add(a, b) // q < 2^62: never wraps
	d := o.Sub(sum, s.q)
	keep := o.CmpLt(sum, s.q)
	return o.Select(keep, d, sum)
}

// SubMod returns (a - b) mod q per lane, for reduced inputs.
func (s *SW[W, C]) SubMod(a, b W) W {
	o := s.O
	d := o.Sub(a, b)
	fixed := o.Add(d, s.q)
	wrap := o.CmpLt(a, b)
	return o.Select(wrap, d, fixed)
}

// MulMod returns (a * b) mod q per lane via Barrett reduction — the
// 64-bit analogue of the paper's Eq. 4 pipeline.
func (s *SW[W, C]) MulMod(a, b W) W {
	o := s.O
	hi, lo := o.MulWide(a, b)

	// t1 = floor(t / 2^(n-1)), at most n+1 <= 63 bits.
	t1 := o.Or(o.Shr(lo, s.n-1), o.Shl(hi, 65-s.n))

	// qhat = floor(t1 * mu / 2^(n+1)).
	h2, l2 := o.MulWide(t1, s.mu)
	qhat := o.Or(o.Shr(l2, s.n+1), o.Shl(h2, 63-s.n))

	r := o.Sub(lo, o.MulLo(qhat, s.q))

	// Two corrective subtractions (Barrett bound).
	r = s.condSubQ(r)
	r = s.condSubQ(r)
	return r
}

func (s *SW[W, C]) condSubQ(r W) W {
	o := s.O
	d := o.Sub(r, s.q)
	keep := o.CmpLt(r, s.q)
	return o.Select(keep, d, r)
}

// MulShoup returns (a * w) mod q for a fixed multiplicand w with its Shoup
// precomputation wPre (both pre-broadcast): one widening multiply for the
// quotient, one low multiply, one correction — the twiddle-multiply form
// 64-bit NTT libraries use.
func (s *SW[W, C]) MulShoup(a, w, wPre W) W {
	o := s.O
	qhat, _ := o.MulWide(a, wPre) // high part only is needed
	r := o.Sub(o.MulLo(a, w), o.MulLo(qhat, s.q))
	return s.condSubQ(r)
}

// Butterfly is the 64-bit Gentleman-Sande butterfly with a Shoup twiddle.
func (s *SW[W, C]) Butterfly(a, b, w, wPre W) (even, odd W) {
	even = s.AddMod(a, b)
	odd = s.MulShoup(s.SubMod(a, b), w, wPre)
	return even, odd
}
