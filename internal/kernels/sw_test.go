package kernels

import (
	"math/rand"
	"testing"

	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
	"mqxgo/internal/vm"
)

func sw64Mod(t *testing.T) *modmath.Modulus64 {
	t.Helper()
	ps, err := modmath.FindNTTPrimes64(60, 1<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	return modmath.MustModulus64(ps[0])
}

func TestSWKernels512AllLevels(t *testing.T) {
	mod := sw64Mod(t)
	r := rand.New(rand.NewSource(141))
	for _, level := range []isa.Level{isa.LevelAVX512, isa.LevelMQX} {
		m := vm.New(vm.TraceOff)
		b := NewB512(m, level)
		s := NewSW[vm.V, vm.M](b, mod)
		m.BeginLoop()
		for iter := 0; iter < 300; iter++ {
			var av, bv, wv vm.Vec
			var as, bs, ws [8]uint64
			for l := 0; l < 8; l++ {
				as[l], bs[l], ws[l] = r.Uint64()%mod.Q, r.Uint64()%mod.Q, r.Uint64()%mod.Q
				av[l], bv[l], wv[l] = as[l], bs[l], ws[l]
			}
			mk := func(x vm.Vec) vm.V {
				sl := make([]uint64, 8)
				copy(sl, x[:])
				return m.Load(sl, 0)
			}
			a, bb, w := mk(av), mk(bv), mk(wv)
			var pre vm.Vec
			for l := 0; l < 8; l++ {
				pre[l] = mod.ShoupPrecompute(ws[l])
			}
			wp := mk(pre)

			add := s.AddMod(a, bb)
			sub := s.SubMod(a, bb)
			mul := s.MulMod(a, bb)
			shoup := s.MulShoup(a, w, wp)
			even, odd := s.Butterfly(a, bb, w, wp)
			for l := 0; l < 8; l++ {
				if add.X[l] != mod.Add(as[l], bs[l]) {
					t.Fatalf("%v AddMod lane %d", level, l)
				}
				if sub.X[l] != mod.Sub(as[l], bs[l]) {
					t.Fatalf("%v SubMod lane %d", level, l)
				}
				if mul.X[l] != mod.Mul(as[l], bs[l]) {
					t.Fatalf("%v MulMod lane %d: got %d want %d", level, l, mul.X[l], mod.Mul(as[l], bs[l]))
				}
				if shoup.X[l] != mod.Mul(as[l], ws[l]) {
					t.Fatalf("%v MulShoup lane %d", level, l)
				}
				wantE := mod.Add(as[l], bs[l])
				wantO := mod.Mul(mod.Sub(as[l], bs[l]), ws[l])
				if even.X[l] != wantE || odd.X[l] != wantO {
					t.Fatalf("%v Butterfly lane %d", level, l)
				}
			}
		}
	}
}

func TestSWKernelsScalarAndAVX2(t *testing.T) {
	mod := sw64Mod(t)
	r := rand.New(rand.NewSource(142))

	// Scalar.
	{
		m := vm.New(vm.TraceOff)
		b := NewBScalar(m)
		s := NewSW[vm.S, vm.F](b, mod)
		m.BeginLoop()
		for i := 0; i < 500; i++ {
			a, x := r.Uint64()%mod.Q, r.Uint64()%mod.Q
			sl := []uint64{a, x}
			av, xv := m.SLoad(sl, 0), m.SLoad(sl, 1)
			if s.MulMod(av, xv).X != mod.Mul(a, x) {
				t.Fatalf("scalar MulMod(%d, %d)", a, x)
			}
			if s.AddMod(av, xv).X != mod.Add(a, x) {
				t.Fatalf("scalar AddMod(%d, %d)", a, x)
			}
			if s.SubMod(av, xv).X != mod.Sub(a, x) {
				t.Fatalf("scalar SubMod(%d, %d)", a, x)
			}
		}
	}
	// AVX2.
	{
		m := vm.New(vm.TraceOff)
		b := NewB256(m)
		s := NewSW[vm.V4, vm.V4](b, mod)
		m.BeginLoop()
		for i := 0; i < 300; i++ {
			var as, xs [4]uint64
			sl := make([]uint64, 8)
			for l := 0; l < 4; l++ {
				as[l], xs[l] = r.Uint64()%mod.Q, r.Uint64()%mod.Q
				sl[l], sl[4+l] = as[l], xs[l]
			}
			av, xv := m.Load4(sl, 0), m.Load4(sl, 4)
			mul := s.MulMod(av, xv)
			for l := 0; l < 4; l++ {
				if mul.X[l] != mod.Mul(as[l], xs[l]) {
					t.Fatalf("avx2 MulMod lane %d", l)
				}
			}
		}
	}
}

// TestRNSLaneVsDoubleWordInstructionCounts quantifies the kernel-level
// trade-off behind the paper's Section 1 motivation: per 8 SIMD lanes,
// the 64-bit RNS kernel needs far fewer instructions than the 128-bit
// double-word kernel on plain AVX-512 (no carry emulation is needed at
// 64 bits), and MQX shrinks the double-word kernel much more than the
// single-word one — the extension specifically attacks the multi-word
// bottleneck.
func TestRNSLaneVsDoubleWordInstructionCounts(t *testing.T) {
	mod64 := sw64Mod(t)
	mod128 := modmath.DefaultModulus128()

	countSW := func(level isa.Level) int64 {
		m := vm.New(vm.TraceCounts)
		b := NewB512(m, level)
		s := NewSW[vm.V, vm.M](b, mod64)
		m.BeginLoop()
		x := b.Broadcast(123)
		s.MulMod(x, x)
		return m.TotalOps() - 1 // exclude the broadcast
	}
	countDW := func(level isa.Level) int64 {
		m := vm.New(vm.TraceCounts)
		b := NewB512(m, level)
		d := NewDW[vm.V, vm.M](b, mod128)
		m.BeginLoop()
		x := DWPair[vm.V]{Hi: b.Broadcast(3), Lo: b.Broadcast(4)}
		d.MulMod(x, x)
		return m.TotalOps() - 2
	}

	swAVX, swMQX := countSW(isa.LevelAVX512), countSW(isa.LevelMQX)
	dwAVX, dwMQX := countDW(isa.LevelAVX512), countDW(isa.LevelMQX)

	if swAVX*4 > dwAVX {
		t.Errorf("64-bit mulmod (%d ops) should be >4x smaller than 128-bit (%d ops) on AVX-512", swAVX, dwAVX)
	}
	gainSW := float64(swAVX) / float64(swMQX)
	gainDW := float64(dwAVX) / float64(dwMQX)
	if gainDW <= gainSW {
		t.Errorf("MQX should help the double-word kernel (%.2fx) more than the single-word one (%.2fx)", gainDW, gainSW)
	}
	t.Logf("mulmod instructions per 8 lanes: 64-bit avx512=%d mqx=%d; 128-bit avx512=%d mqx=%d",
		swAVX, swMQX, dwAVX, dwMQX)
}
