// Package modmath implements the double-word (128-bit) and single-word
// (64-bit) modular arithmetic the paper's cryptographic kernels are built
// from: conditional-subtract modular addition and subtraction (Eqs. 2-3)
// and Barrett-reduced modular multiplication (Eq. 4) in both schoolbook
// (Eq. 8) and Karatsuba (Eq. 9) flavors, plus the number-theoretic
// utilities (primality, NTT-friendly prime search, roots of unity) needed
// to parameterize NTTs.
package modmath

import (
	"fmt"

	"mqxgo/internal/u128"
	"mqxgo/internal/u256"
)

// MaxModulusBits is the largest modulus width Barrett reduction supports at
// a 128-bit data width: the paper requires q <= l-4 bits for l-bit data so
// that the precomputed mu fits in l bits (Section 2.1).
const MaxModulusBits = 124

// MulAlgorithm selects the widening multiplication used inside ModMul.
type MulAlgorithm int

const (
	// Schoolbook uses four 64x64 multiplications (Eq. 8). The paper finds
	// it faster than Karatsuba on CPUs in nearly every configuration
	// (Section 5.5), so it is the default.
	Schoolbook MulAlgorithm = iota
	// Karatsuba uses three 64x64 multiplications plus extra additions (Eq. 9).
	Karatsuba
)

func (a MulAlgorithm) String() string {
	switch a {
	case Schoolbook:
		return "schoolbook"
	case Karatsuba:
		return "karatsuba"
	}
	return fmt.Sprintf("MulAlgorithm(%d)", int(a))
}

// Modulus128 holds a modulus q <= 124 bits together with its Barrett
// precomputation mu = floor(2^(2n) / q), where n = bitlen(q).
type Modulus128 struct {
	Q   u128.U128 // the modulus
	Mu  u128.U128 // Barrett constant, floor(2^(2n)/q); fits in n+1 <= 125 bits
	N   uint      // bit length of Q
	Alg MulAlgorithm
}

// NewModulus128 validates q and performs the Barrett precomputation.
// q must be at least 2 and at most 124 bits wide.
func NewModulus128(q u128.U128) (*Modulus128, error) {
	if q.BitLen() < 2 {
		return nil, fmt.Errorf("modmath: modulus %s too small", q)
	}
	if q.BitLen() > MaxModulusBits {
		return nil, fmt.Errorf("modmath: modulus has %d bits, Barrett at 128-bit width requires <= %d",
			q.BitLen(), MaxModulusBits)
	}
	n := uint(q.BitLen())
	// mu = floor(2^(2n) / q), computed with from-scratch 256/128 division.
	pow := u256.From64(1).Lsh(2 * n)
	muWide, _ := pow.DivMod128(q)
	if muWide.Hi128() != u128.Zero {
		return nil, fmt.Errorf("modmath: internal error: mu does not fit in 128 bits")
	}
	return &Modulus128{Q: q, Mu: muWide.Lo128(), N: n, Alg: Schoolbook}, nil
}

// MustModulus128 is NewModulus128 but panics on error.
func MustModulus128(q u128.U128) *Modulus128 {
	m, err := NewModulus128(q)
	if err != nil {
		panic(err)
	}
	return m
}

// WithAlgorithm returns a copy of m using the given multiplication algorithm.
func (m *Modulus128) WithAlgorithm(alg MulAlgorithm) *Modulus128 {
	c := *m
	c.Alg = alg
	return &c
}

// Add returns a + b mod q using the conditional-subtract algorithm (Eq. 2).
// Inputs must already be reduced (a, b < q).
func (m *Modulus128) Add(a, b u128.U128) u128.U128 {
	// a + b < 2q < 2^125, so the sum never wraps 128 bits.
	s := a.Add(b)
	if m.Q.LessEq(s) {
		s = s.Sub(m.Q)
	}
	return s
}

// Sub returns a - b mod q using the conditional-add algorithm (Eq. 3).
// Inputs must already be reduced.
func (m *Modulus128) Sub(a, b u128.U128) u128.U128 {
	if a.Less(b) {
		return a.Add(m.Q).Sub(b)
	}
	return a.Sub(b)
}

// Neg returns -a mod q for reduced a.
func (m *Modulus128) Neg(a u128.U128) u128.U128 {
	if a.IsZero() {
		return a
	}
	return m.Q.Sub(a)
}

// Mul returns a * b mod q via Barrett reduction (Eq. 4). Inputs must be
// reduced; the result is reduced.
//
// With n = bitlen(q), the quotient estimate is
//
//	qhat = floor( floor(ab / 2^(n-1)) * mu / 2^(n+1) ),
//
// which is within 2 of the true quotient, so at most two corrective
// subtractions follow. All intermediates fit in 256 bits because
// ab < 2^(2n) <= 2^248 and mu < 2^(n+1).
func (m *Modulus128) Mul(a, b u128.U128) u128.U128 {
	if m.Alg == Karatsuba {
		return m.Reduce(u256.MulKaratsuba(a, b))
	}
	// Schoolbook takes the flattened word-level path (barrett128_hot.go);
	// identical results, far less interpreter overhead.
	return m.mulBarrettFlat(a, b)
}

// Reduce reduces a 256-bit product t = a*b (with a, b < q) modulo q.
func (m *Modulus128) Reduce(t u256.U256) u128.U128 {
	// t1 = floor(t / 2^(n-1)); t < 2^(2n) so t1 < 2^(n+1) fits in 128 bits.
	t1 := t.Rsh(m.N - 1).Lo128()
	// t2 = t1 * mu < 2^(2n+2) <= 2^250.
	var t2 u256.U256
	if m.Alg == Karatsuba {
		t2 = u256.MulKaratsuba(t1, m.Mu)
	} else {
		t2 = u256.MulSchoolbook(t1, m.Mu)
	}
	qhat := t2.Rsh(m.N + 1).Lo128()
	// r = t - qhat*q computed modulo 2^128; the true remainder is < 3q < 2^126
	// so the low 128 bits are exact.
	qq := u256.MulSchoolbook(qhat, m.Q).Lo128()
	r := t.Lo128().Sub(qq)
	for m.Q.LessEq(r) {
		r = r.Sub(m.Q)
	}
	return r
}

// Pow returns base^exp mod q by square-and-multiply. base must be reduced.
func (m *Modulus128) Pow(base u128.U128, exp u128.U128) u128.U128 {
	result := u128.One
	if m.Q.Equal(u128.One) {
		return u128.Zero
	}
	b := base
	for e := exp; !e.IsZero(); e = e.Rsh(1) {
		if e.Lo&1 == 1 {
			result = m.Mul(result, b)
		}
		b = m.Mul(b, b)
	}
	return result
}

// Inv returns a^(q-2) mod q, the multiplicative inverse of a when q is prime
// and a is nonzero mod q.
func (m *Modulus128) Inv(a u128.U128) u128.U128 {
	return m.Pow(a, m.Q.Sub64(2))
}

// ReduceWide reduces an arbitrary 128-bit value (not necessarily < 2q)
// modulo q using division; a setup-path helper.
func (m *Modulus128) ReduceWide(a u128.U128) u128.U128 {
	return a.Mod(m.Q)
}
