package modmath

import (
	"math/bits"

	"mqxgo/internal/u128"
)

// Flattened Barrett multiplication: the same algorithm as Mul+Reduce
// (Eqs. 4 and 8) with every intermediate kept in machine words instead of
// u256 values. The generic path spends a quarter of NTT butterfly time in
// U256.Rsh alone (variable word/bit shift loops) and shuffles 32-byte
// structs through non-inlined calls; here the two shift amounts n-1 and
// n+1 are decomposed once per call into a word select plus a sub-word
// shift, and the final qhat*q product computes only the low 128 bits it
// needs. Exact same results as the generic path — cross-checked against
// math/big in TestMulFlatMatchesBig.

// rsh256lo returns the low 128 bits (as two words) of the 256-bit value
// w3:w2:w1:w0 shifted right by s, for 1 <= s < 128.
func rsh256lo(w0, w1, w2, w3 uint64, s uint) (lo, hi uint64) {
	switch {
	case s < 64:
		lo = w0>>s | w1<<(64-s)
		hi = w1>>s | w2<<(64-s)
	case s == 64:
		lo, hi = w1, w2
	default: // 64 < s < 128
		b := s - 64
		lo = w1>>b | w2<<(64-b)
		hi = w2>>b | w3<<(64-b)
	}
	return
}

// mulBarrettFlat returns a*b mod q for reduced a, b via schoolbook
// multiplication and Barrett reduction, fully flattened to word
// arithmetic. Requires 2 <= n <= 124 (guaranteed by NewModulus128), so
// both shift amounts n-1 and n+1 lie in [1, 125].
func (m *Modulus128) mulBarrettFlat(a, b u128.U128) u128.U128 {
	// t = a*b: four 64x64 word products (Eq. 8).
	llHi, llLo := bits.Mul64(a.Lo, b.Lo)
	lhHi, lhLo := bits.Mul64(a.Lo, b.Hi)
	hlHi, hlLo := bits.Mul64(a.Hi, b.Lo)
	hhHi, hhLo := bits.Mul64(a.Hi, b.Hi)
	t0 := llLo
	t1, c := bits.Add64(llHi, lhLo, 0)
	t2, c := bits.Add64(hhLo, lhHi, c)
	t3 := hhHi + c
	t1, c = bits.Add64(t1, hlLo, 0)
	t2, c = bits.Add64(t2, hlHi, c)
	t3 += c

	// t1hat = floor(t / 2^(n-1)); t < 2^(2n) so t1hat < 2^(n+1) fits in
	// 128 bits.
	xLo, xHi := rsh256lo(t0, t1, t2, t3, m.N-1)

	// u = t1hat * mu < 2^(2n+2) <= 2^250; qhat = floor(u / 2^(n+1)).
	llHi, llLo = bits.Mul64(xLo, m.Mu.Lo)
	lhHi, lhLo = bits.Mul64(xLo, m.Mu.Hi)
	hlHi, hlLo = bits.Mul64(xHi, m.Mu.Lo)
	hhHi, hhLo = bits.Mul64(xHi, m.Mu.Hi)
	u0 := llLo
	u1, c := bits.Add64(llHi, lhLo, 0)
	u2, c := bits.Add64(hhLo, lhHi, c)
	u3 := hhHi + c
	u1, c = bits.Add64(u1, hlLo, 0)
	u2, c = bits.Add64(u2, hlHi, c)
	u3 += c
	qLo, qHi := rsh256lo(u0, u1, u2, u3, m.N+1)

	// qq = qhat*q mod 2^128: only the low half is needed because
	// r = t - qhat*q < 3q < 2^126 is exact modulo 2^128.
	qqHi, qqLo := bits.Mul64(qLo, m.Q.Lo)
	qqHi += qLo*m.Q.Hi + qHi*m.Q.Lo

	rLo, bb := bits.Sub64(t0, qqLo, 0)
	rHi, _ := bits.Sub64(t1, qqHi, bb)
	r := u128.U128{Hi: rHi, Lo: rLo}
	// The quotient estimate is within 2 of the truth: at most two
	// corrective subtractions.
	if m.Q.LessEq(r) {
		r = r.Sub(m.Q)
	}
	if m.Q.LessEq(r) {
		r = r.Sub(m.Q)
	}
	return r
}
