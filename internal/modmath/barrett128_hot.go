package modmath

import (
	"math/bits"

	"mqxgo/internal/u128"
)

// Flattened Barrett multiplication: the same algorithm as Mul+Reduce
// (Eqs. 4 and 8) with every intermediate kept in machine words instead of
// u256 values. The generic path spends a quarter of NTT butterfly time in
// U256.Rsh alone (variable word/bit shift loops) and shuffles 32-byte
// structs through non-inlined calls; here the two shift amounts n-1 and
// n+1 are decomposed once per call into a word select plus a sub-word
// shift, and the final qhat*q product computes only the low 128 bits it
// needs. Exact same results as the generic path — cross-checked against
// math/big in TestMulFlatMatchesBig.

// rsh256lo returns the low 128 bits (as two words) of the 256-bit value
// w3:w2:w1:w0 shifted right by s, for 1 <= s < 128.
func rsh256lo(w0, w1, w2, w3 uint64, s uint) (lo, hi uint64) {
	switch {
	case s < 64:
		lo = w0>>s | w1<<(64-s)
		hi = w1>>s | w2<<(64-s)
	case s == 64:
		lo, hi = w1, w2
	default: // 64 < s < 128
		b := s - 64
		lo = w1>>b | w2<<(64-b)
		hi = w2>>b | w3<<(64-b)
	}
	return
}

// MulBarrett128Words returns a*b mod q for reduced a, b via schoolbook
// multiplication and Barrett reduction, fully flattened to word
// arithmetic, with every constant passed in registers: qHi:qLo is the
// modulus, muHi:muLo its Barrett constant, and nm1/np1 the shift amounts
// n-1 and n+1, which must lie in [1, 125] (guaranteed for any modulus
// NewModulus128 accepts). This is the one shared copy of the flattened
// carry-chain arithmetic: Modulus128.Mul reaches it through
// mulBarrettFlat, and internal/ring's fused Barrett128 span kernels call
// it directly with constants hoisted out of their loops.
func MulBarrett128Words(aHi, aLo, bHi, bLo, qHi, qLo, muHi, muLo uint64, nm1, np1 uint) (rHi, rLo uint64) {
	// t = a*b: four 64x64 word products (Eq. 8).
	llHi, llLo := bits.Mul64(aLo, bLo)
	lhHi, lhLo := bits.Mul64(aLo, bHi)
	hlHi, hlLo := bits.Mul64(aHi, bLo)
	hhHi, hhLo := bits.Mul64(aHi, bHi)
	t0 := llLo
	t1, c := bits.Add64(llHi, lhLo, 0)
	t2, c := bits.Add64(hhLo, lhHi, c)
	t3 := hhHi + c
	t1, c = bits.Add64(t1, hlLo, 0)
	t2, c = bits.Add64(t2, hlHi, c)
	t3 += c

	// t1hat = floor(t / 2^(n-1)); t < 2^(2n) so t1hat < 2^(n+1) fits in
	// 128 bits.
	xLo, xHi := rsh256lo(t0, t1, t2, t3, nm1)

	// u = t1hat * mu < 2^(2n+2) <= 2^250; qhat = floor(u / 2^(n+1)).
	llHi, llLo = bits.Mul64(xLo, muLo)
	lhHi, lhLo = bits.Mul64(xLo, muHi)
	hlHi, hlLo = bits.Mul64(xHi, muLo)
	hhHi, hhLo = bits.Mul64(xHi, muHi)
	u0 := llLo
	u1, c := bits.Add64(llHi, lhLo, 0)
	u2, c := bits.Add64(hhLo, lhHi, c)
	u3 := hhHi + c
	u1, c = bits.Add64(u1, hlLo, 0)
	u2, c = bits.Add64(u2, hlHi, c)
	u3 += c
	qhLo, qhHi := rsh256lo(u0, u1, u2, u3, np1)

	// qq = qhat*q mod 2^128: only the low half is needed because
	// r = t - qhat*q < 3q < 2^126 is exact modulo 2^128.
	qqHi, qqLo := bits.Mul64(qhLo, qLo)
	qqHi += qhLo*qHi + qhHi*qLo

	rLo, bb := bits.Sub64(t0, qqLo, 0)
	rHi, _ = bits.Sub64(t1, qqHi, bb)
	// The quotient estimate is within 2 of the truth: at most two
	// corrective subtractions, each a branchless mask select (the branch
	// is data-dependent and would mispredict on random residues).
	for k := 0; k < 2; k++ {
		sLo, b1 := bits.Sub64(rLo, qLo, 0)
		sHi, b2 := bits.Sub64(rHi, qHi, b1)
		mask := b2 - 1 // all ones when r >= q
		rHi ^= (rHi ^ sHi) & mask
		rLo ^= (rLo ^ sLo) & mask
	}
	return rHi, rLo
}

// mulBarrettFlat is MulBarrett128Words bound to this modulus.
func (m *Modulus128) mulBarrettFlat(a, b u128.U128) u128.U128 {
	hi, lo := MulBarrett128Words(a.Hi, a.Lo, b.Hi, b.Lo,
		m.Q.Hi, m.Q.Lo, m.Mu.Hi, m.Mu.Lo, m.N-1, m.N+1)
	return u128.U128{Hi: hi, Lo: lo}
}
