package modmath

import (
	"math/big"
	"math/rand"
	"testing"

	"mqxgo/internal/u128"
)

// hotPathModuli returns moduli exercising every shift-decomposition branch of
// rsh256lo: n-1 and n+1 below, at, and above the word boundary.
func hotPathModuli(t *testing.T) []*Modulus128 {
	t.Helper()
	qs := []u128.U128{
		u128.From64(3),               // n=2: minimum width
		u128.From64(257),             // n=9
		u128.From64(0x7fffffff),      // n=31
		u128.From64(1<<62 + 1),       // n=63: n+1 == 64
		u128.From64(1<<63 + 29),      // n=64: n-1 == 63, n+1 == 65
		u128.New(1, 21),              // n=65: n-1 == 64
		u128.New(0x7fffffffff, 0x13), // n=103
		DefaultModulus128().Q,        // n=124: the library default
	}
	mods := make([]*Modulus128, 0, len(qs))
	for _, q := range qs {
		m, err := NewModulus128(q)
		if err != nil {
			t.Fatalf("NewModulus128(%v): %v", q, err)
		}
		mods = append(mods, m)
	}
	return mods
}

// TestMulFlatMatchesBig cross-checks the flattened Barrett path against
// math/big and against the Karatsuba path over every modulus width class.
func TestMulFlatMatchesBig(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, m := range hotPathModuli(t) {
		kar := m.WithAlgorithm(Karatsuba)
		qb := m.Q.ToBig()
		for trial := 0; trial < 2000; trial++ {
			a := u128.New(r.Uint64(), r.Uint64()).Mod(m.Q)
			b := u128.New(r.Uint64(), r.Uint64()).Mod(m.Q)
			got := m.Mul(a, b)
			want := new(big.Int).Mul(a.ToBig(), b.ToBig())
			want.Mod(want, qb)
			if got.ToBig().Cmp(want) != 0 {
				t.Fatalf("q=%v: Mul(%v, %v) = %v, want %v", m.Q, a, b, got, want)
			}
			if k := kar.Mul(a, b); k != got {
				t.Fatalf("q=%v: karatsuba disagrees: %v vs %v", m.Q, k, got)
			}
		}
	}
}

// TestMulFlatEdgeValues hits the corrective-subtraction extremes: operands
// at 0, 1, and q-1.
func TestMulFlatEdgeValues(t *testing.T) {
	for _, m := range hotPathModuli(t) {
		qm1 := m.Q.Sub64(1)
		cases := []u128.U128{u128.Zero, u128.One, qm1}
		qb := m.Q.ToBig()
		for _, a := range cases {
			for _, b := range cases {
				got := m.Mul(a, b)
				want := new(big.Int).Mul(a.ToBig(), b.ToBig())
				want.Mod(want, qb)
				if got.ToBig().Cmp(want) != 0 {
					t.Fatalf("q=%v: Mul(%v, %v) = %v, want %v", m.Q, a, b, got, want)
				}
			}
		}
	}
}
