package modmath

import (
	"fmt"
	"math/bits"
)

// Modulus64 holds a single-word modulus q < 2^62 with Barrett precomputation
// for 64-bit modular arithmetic. It is the substrate for the residue number
// system (RNS) backend, the conventional alternative to 128-bit residues
// that the paper discusses in Sections 1 and 8.
type Modulus64 struct {
	Q  uint64
	Mu uint64 // floor(2^(2n)/q) with n = bitlen(q); fits in n+1 <= 63 bits
	N  uint
}

// NewModulus64 validates q and precomputes the Barrett constant.
// q must be in [2, 2^62) so that a+b and the Barrett estimate never overflow.
func NewModulus64(q uint64) (*Modulus64, error) {
	if q < 2 {
		return nil, fmt.Errorf("modmath: modulus %d too small", q)
	}
	if bits.Len64(q) > 62 {
		return nil, fmt.Errorf("modmath: 64-bit Barrett requires q < 2^62, got %d bits", bits.Len64(q))
	}
	n := uint(bits.Len64(q))
	// mu = floor(2^(2n) / q). 2n <= 124 so the dividend fits in 128 bits.
	var mu uint64
	if 2*n >= 64 {
		hi := uint64(1) << (2*n - 64)
		mu, _ = bits.Div64(hi, 0, q)
	} else {
		mu = (uint64(1) << (2 * n)) / q
	}
	return &Modulus64{Q: q, Mu: mu, N: n}, nil
}

// MustModulus64 is NewModulus64 but panics on error.
func MustModulus64(q uint64) *Modulus64 {
	m, err := NewModulus64(q)
	if err != nil {
		panic(err)
	}
	return m
}

// Add returns a + b mod q for reduced inputs.
//
//mqx:hotpath
func (m *Modulus64) Add(a, b uint64) uint64 {
	s := a + b
	if s >= m.Q {
		s -= m.Q
	}
	return s
}

// Sub returns a - b mod q for reduced inputs.
//
//mqx:hotpath
func (m *Modulus64) Sub(a, b uint64) uint64 {
	if a < b {
		return a + m.Q - b
	}
	return a - b
}

// Neg returns -a mod q for reduced a.
func (m *Modulus64) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return m.Q - a
}

// Mul returns a * b mod q via Barrett reduction for reduced inputs.
//
//mqx:hotpath
func (m *Modulus64) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return m.reduce(hi, lo)
}

// Barrett64Reduce reduces a 128-bit product hi:lo of two residues modulo
// q, with the constants passed in registers: mu is the Barrett constant
// floor(2^(2n)/q) and n = bitlen(q), at most 62 (as NewModulus64
// validates) so every shift amount stays in range. This is the one shared
// copy of the single-word reduction: Modulus64.Mul reaches it through
// reduce, and internal/ring's fused Shoup64.MulSpan kernel calls it
// directly with constants hoisted out of its loop.
//
//mqx:hotpath
func Barrett64Reduce(hi, lo, q, mu uint64, n uint) uint64 {
	// t1 = floor(t / 2^(n-1)), at most n+1 bits.
	t1 := lo>>(n-1) | hi<<(65-n)
	// qhat = floor(t1 * mu / 2^(n+1)).
	h2, l2 := bits.Mul64(t1, mu)
	qhat := l2>>(n+1) | h2<<(63-n)
	r := lo - qhat*q
	for r >= q {
		r -= q
	}
	return r
}

func (m *Modulus64) reduce(hi, lo uint64) uint64 {
	return Barrett64Reduce(hi, lo, m.Q, m.Mu, m.N)
}

// Pow returns base^exp mod q.
func (m *Modulus64) Pow(base, exp uint64) uint64 {
	result := uint64(1)
	b := base % m.Q
	for e := exp; e != 0; e >>= 1 {
		if e&1 == 1 {
			result = m.Mul(result, b)
		}
		b = m.Mul(b, b)
	}
	return result
}

// Inv returns the multiplicative inverse of a mod prime q.
func (m *Modulus64) Inv(a uint64) uint64 { return m.Pow(a, m.Q-2) }

// ShoupPrecompute returns the Shoup precomputation w' = floor(w * 2^64 / q)
// for a fixed multiplicand w (typically an NTT twiddle factor).
func (m *Modulus64) ShoupPrecompute(w uint64) uint64 {
	q, _ := bits.Div64(w, 0, m.Q)
	return q
}

// MulShoup returns a * w mod q using the Shoup trick: one high multiply and
// one low multiply with a single conditional correction. w must be reduced
// and wPrecon must come from ShoupPrecompute(w).
//
//mqx:hotpath
func (m *Modulus64) MulShoup(a, w, wPrecon uint64) uint64 {
	qhat, _ := bits.Mul64(a, wPrecon)
	r := a*w - qhat*m.Q
	if r >= m.Q {
		r -= m.Q
	}
	return r
}
