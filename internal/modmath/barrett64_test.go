package modmath

import (
	"math/big"
	"math/rand"
	"testing"
)

func test64Moduli(t *testing.T) []*Modulus64 {
	t.Helper()
	var ms []*Modulus64
	for _, q := range []uint64{3, 17, 257, 65537, 1<<31 - 1, 0x3fffffff000001} {
		ms = append(ms, MustModulus64(q))
	}
	ps, err := FindNTTPrimes64(60, 1<<18, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		ms = append(ms, MustModulus64(p))
	}
	return ms
}

func TestModulus64Validation(t *testing.T) {
	if _, err := NewModulus64(0); err == nil {
		t.Error("expected error for 0")
	}
	if _, err := NewModulus64(1); err == nil {
		t.Error("expected error for 1")
	}
	if _, err := NewModulus64(1 << 62); err == nil {
		t.Error("expected error for 2^62")
	}
	if _, err := NewModulus64(1<<62 - 1); err != nil {
		t.Errorf("2^62-1 should be accepted: %v", err)
	}
}

func TestMod64ArithmeticMatchesBig(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, m := range test64Moduli(t) {
		qb := new(big.Int).SetUint64(m.Q)
		for i := 0; i < 1000; i++ {
			a := r.Uint64() % m.Q
			b := r.Uint64() % m.Q
			ab := new(big.Int).SetUint64(a)
			bb := new(big.Int).SetUint64(b)

			want := new(big.Int).Add(ab, bb)
			want.Mod(want, qb)
			if got := m.Add(a, b); got != want.Uint64() {
				t.Fatalf("q=%d: Add(%d, %d) = %d, want %s", m.Q, a, b, got, want)
			}

			want.Sub(ab, bb).Mod(want, qb)
			if got := m.Sub(a, b); got != want.Uint64() {
				t.Fatalf("q=%d: Sub(%d, %d) = %d, want %s", m.Q, a, b, got, want)
			}

			want.Mul(ab, bb).Mod(want, qb)
			if got := m.Mul(a, b); got != want.Uint64() {
				t.Fatalf("q=%d: Mul(%d, %d) = %d, want %s", m.Q, a, b, got, want)
			}

			want.Neg(ab).Mod(want, qb)
			if got := m.Neg(a); got != want.Uint64() {
				t.Fatalf("q=%d: Neg(%d) = %d, want %s", m.Q, a, got, want)
			}
		}
		// Edge operands.
		for _, a := range []uint64{0, 1, m.Q - 1, m.Q / 2} {
			for _, b := range []uint64{0, 1, m.Q - 1, m.Q / 2} {
				want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
				want.Mod(want, qb)
				if got := m.Mul(a, b); got != want.Uint64() {
					t.Fatalf("q=%d edge: Mul(%d, %d) = %d, want %s", m.Q, a, b, got, want)
				}
			}
		}
	}
}

func TestMod64PowInv(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for _, m := range test64Moduli(t) {
		if !IsPrime64(m.Q) {
			continue
		}
		qb := new(big.Int).SetUint64(m.Q)
		for i := 0; i < 100; i++ {
			a := r.Uint64()%(m.Q-1) + 1
			e := r.Uint64() % 100000
			want := new(big.Int).Exp(new(big.Int).SetUint64(a), new(big.Int).SetUint64(e), qb)
			if got := m.Pow(a, e); got != want.Uint64() {
				t.Fatalf("q=%d: Pow(%d, %d) = %d, want %s", m.Q, a, e, got, want)
			}
			if m.Mul(a, m.Inv(a)) != 1 {
				t.Fatalf("q=%d: Inv(%d) failed", m.Q, a)
			}
		}
	}
}

func TestMulShoup(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, m := range test64Moduli(t) {
		for i := 0; i < 500; i++ {
			a := r.Uint64() % m.Q
			w := r.Uint64() % m.Q
			precon := m.ShoupPrecompute(w)
			if got, want := m.MulShoup(a, w, precon), m.Mul(a, w); got != want {
				t.Fatalf("q=%d: MulShoup(%d, %d) = %d, want %d", m.Q, a, w, got, want)
			}
		}
	}
}

func TestPrimitiveRootOfUnity64(t *testing.T) {
	ps, err := FindNTTPrimes64(60, 1<<18, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := MustModulus64(ps[0])
	for _, n := range []uint64{2, 16, 1 << 18} {
		w, err := m.PrimitiveRootOfUnity64(n)
		if err != nil {
			t.Fatalf("order %d: %v", n, err)
		}
		if m.Pow(w, n) != 1 {
			t.Errorf("w^%d != 1", n)
		}
		if m.Pow(w, n/2) != m.Q-1 {
			t.Errorf("w^(n/2) != -1 for order %d", n)
		}
	}
	if _, err := m.PrimitiveRootOfUnity64(6); err == nil {
		t.Error("expected error for non-power-of-two order")
	}
	if _, err := m.PrimitiveRootOfUnity64(1 << 40); err == nil {
		t.Error("expected error for order not dividing q-1")
	}
}
