package modmath

import "math/bits"

// Goldilocks arithmetic: the specialized-modulus alternative the paper
// contrasts with Barrett reduction (Section 2.1 cites the Goldilocks
// prime as an application-specific optimization; Barrett is preferred in
// the paper because it works for general moduli). Provided here so the
// trade-off can be measured: reduction for p = 2^64 - 2^32 + 1 needs only
// shifts and adds, but locks the entire system to one prime.

// GoldilocksPrime is p = 2^64 - 2^32 + 1, the "Goldilocks" prime used by
// several zero-knowledge proof systems. It supports NTTs up to order 2^32.
const GoldilocksPrime = uint64(0xffffffff00000001)

// Goldilocks implements modular arithmetic modulo GoldilocksPrime.
type Goldilocks struct{}

// Add returns a + b mod p for reduced inputs.
func (Goldilocks) Add(a, b uint64) uint64 {
	s, carry := bits.Add64(a, b, 0)
	// 2^64 ≡ 2^32 - 1 (mod p).
	if carry != 0 {
		s, carry = bits.Add64(s, 1<<32-1, 0)
		if carry != 0 {
			s += 1<<32 - 1
		}
	}
	if s >= GoldilocksPrime {
		s -= GoldilocksPrime
	}
	return s
}

// Sub returns a - b mod p for reduced inputs.
func (Goldilocks) Sub(a, b uint64) uint64 {
	d, borrow := bits.Sub64(a, b, 0)
	if borrow != 0 {
		d -= 1<<32 - 1 // subtract 2^32-1 ≡ subtracting 2^64 ≡ adding p... wraps correctly
	}
	if d >= GoldilocksPrime {
		d -= GoldilocksPrime
	}
	return d
}

// Mul returns a * b mod p using the shift-add reduction: with
// t = t2*2^96 + t1*2^64 + t0 (t1 32 bits in [2^64, 2^96)), using
// 2^64 ≡ 2^32 - 1 and 2^96 ≡ -1 (mod p):
//
//	t ≡ t0 + t1*(2^32 - 1) - t2 (mod p).
func (Goldilocks) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	t1 := hi & 0xffffffff // bits 64..95
	t2 := hi >> 32        // bits 96..127

	// r = lo + t1*(2^32-1) - t2, computed with careful wrap handling.
	mid := t1<<32 - t1 // t1 * (2^32 - 1), fits 64 bits
	r, carry := bits.Add64(lo, mid, 0)
	if carry != 0 {
		// Adding 2^64 ≡ adding 2^32 - 1.
		r, carry = bits.Add64(r, 1<<32-1, 0)
		if carry != 0 {
			r += 1<<32 - 1
		}
	}
	var borrow uint64
	r, borrow = bits.Sub64(r, t2, 0)
	if borrow != 0 {
		// Subtracting 2^64 ≡ subtracting 2^32 - 1.
		r -= 1<<32 - 1
	}
	if r >= GoldilocksPrime {
		r -= GoldilocksPrime
	}
	return r
}

// Pow returns base^exp mod p.
func (g Goldilocks) Pow(base, exp uint64) uint64 {
	result := uint64(1)
	b := base % GoldilocksPrime
	for e := exp; e != 0; e >>= 1 {
		if e&1 == 1 {
			result = g.Mul(result, b)
		}
		b = g.Mul(b, b)
	}
	return result
}

// Inv returns the inverse of a mod p.
func (g Goldilocks) Inv(a uint64) uint64 { return g.Pow(a, GoldilocksPrime-2) }
