package modmath

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestGoldilocksMatchesBig(t *testing.T) {
	g := Goldilocks{}
	p := new(big.Int).SetUint64(GoldilocksPrime)
	if !p.ProbablyPrime(32) {
		t.Fatal("Goldilocks constant is not prime")
	}
	r := rand.New(rand.NewSource(101))
	check := func(a, b uint64) {
		t.Helper()
		ab := new(big.Int).SetUint64(a)
		bb := new(big.Int).SetUint64(b)

		want := new(big.Int).Add(ab, bb)
		want.Mod(want, p)
		if got := g.Add(a, b); got != want.Uint64() {
			t.Fatalf("Add(%d, %d) = %d, want %s", a, b, got, want)
		}
		want.Sub(ab, bb).Mod(want, p)
		if got := g.Sub(a, b); got != want.Uint64() {
			t.Fatalf("Sub(%d, %d) = %d, want %s", a, b, got, want)
		}
		want.Mul(ab, bb).Mod(want, p)
		if got := g.Mul(a, b); got != want.Uint64() {
			t.Fatalf("Mul(%d, %d) = %d, want %s", a, b, got, want)
		}
	}
	for i := 0; i < 20000; i++ {
		check(r.Uint64()%GoldilocksPrime, r.Uint64()%GoldilocksPrime)
	}
	edges := []uint64{0, 1, 2, 1<<32 - 1, 1 << 32, 1<<32 + 1,
		GoldilocksPrime - 1, GoldilocksPrime - 2, GoldilocksPrime / 2}
	for _, a := range edges {
		for _, b := range edges {
			check(a, b)
		}
	}
}

func TestGoldilocksPowInv(t *testing.T) {
	g := Goldilocks{}
	r := rand.New(rand.NewSource(102))
	p := new(big.Int).SetUint64(GoldilocksPrime)
	for i := 0; i < 200; i++ {
		a := r.Uint64()%(GoldilocksPrime-1) + 1
		e := r.Uint64() % 1000000
		want := new(big.Int).Exp(new(big.Int).SetUint64(a), new(big.Int).SetUint64(e), p)
		if got := g.Pow(a, e); got != want.Uint64() {
			t.Fatalf("Pow(%d, %d) = %d, want %s", a, e, got, want)
		}
		if g.Mul(a, g.Inv(a)) != 1 {
			t.Fatalf("Inv(%d) failed", a)
		}
	}
}

// TestGoldilocksRootOfUnity verifies p-1 = 2^32 * (2^32 - 1) supports
// power-of-two NTT orders up to 2^32, the property that makes the prime
// attractive to ZKP systems.
func TestGoldilocksRootOfUnity(t *testing.T) {
	g := Goldilocks{}
	const order = uint64(1) << 20
	exp := (GoldilocksPrime - 1) / order
	// 7 is a generator of the multiplicative group for this prime.
	w := g.Pow(7, exp)
	if g.Pow(w, order) != 1 {
		t.Fatal("w^order != 1")
	}
	if g.Pow(w, order/2) != GoldilocksPrime-1 {
		t.Fatal("w^(order/2) != -1: not a primitive root")
	}
}
