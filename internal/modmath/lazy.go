package modmath

import "math/bits"

// Lazy (deferred) reduction primitives. The strict hot-path operations in
// this package keep every residue canonical in [0, q); the fused span
// kernels in internal/ring instead carry residues in the relaxed domain
// [0, 2q) across NTT stages and normalize once at the transform boundary,
// dropping one conditional subtraction per butterfly — the software
// analogue of the paper's pipelined modular-arithmetic stages, where
// intermediate values also stay unnormalized between pipeline registers.
//
// Headroom inventory for q < 2^62 (enforced by NewModulus64):
//
//	2q < 2^63   relaxed residues fit a word with two spare bits
//	4q < 2^64   a sum of two relaxed residues, or a + 2q - b, never wraps
//
// so every intermediate the lazy butterflies form is exact in uint64.
// The same inventory carries verbatim to the vector kernel tier
// (internal/ring's kernels64_*_amd64.s): each SIMD lane is an
// independent 64-bit word running exactly this arithmetic, the
// conditional subtractions are branchless per-lane selects (VPMINUQ of x
// and x - c on AVX-512; a sign-flipped VPCMPGTQ mask on AVX2, where the
// flip is what makes the signed compare order unsigned values), and the
// MulShoupLazy bound below needs no adjustment because it already holds
// for ANY 64-bit a — which is also why the vector bodies are bit-exact
// against the scalar kernels on arbitrary lane values, not just
// in-contract residues.

// MulShoupLazy returns r ≡ a * w (mod q) with r in [0, 2q), for ANY
// a < 2^64 (it need not be reduced), w < q, and wPrecon =
// ShoupPrecompute(w). It is MulShoup without the final conditional
// subtraction.
//
// Proof of the [0, 2q) bound: let β = 2^64 and ρ = w·β - wPrecon·q, so
// 0 <= ρ < q by definition of wPrecon = floor(w·β/q). Then
//
//	a·w - floor(a·wPrecon/β)·q = (a·ρ + (a·wPrecon mod β)·q) / β
//	                           < (β·q + β·q) / β = 2q,
//
// and the value is trivially >= 0. Since 2q < 2^63 < β, computing the
// two products modulo β (as the machine does) loses nothing: the low 64
// bits of a·w - qhat·q are the exact result.
//
// The contract in the prose above is machine-checked by mqxlint's
// lazyrange analyzer through the directive below: `wide=a` is the "ANY
// 64-bit a" clause, `returns` is the [0, 2q) bound.
//
//mqx:hotpath
//mqx:lazy returns wide=a
func (m *Modulus64) MulShoupLazy(a, w, wPrecon uint64) uint64 {
	qhat, _ := bits.Mul64(a, wPrecon)
	return a*w - qhat*m.Q
}

// ReduceLazy normalizes a relaxed residue r in [0, 2q) to canonical
// [0, q): the single conditional subtraction the lazy pipeline deferred.
//
//mqx:hotpath
//mqx:lazy params=r strict
func (m *Modulus64) ReduceLazy(r uint64) uint64 {
	if r >= m.Q {
		r -= m.Q
	}
	return r
}
