package modmath

import (
	"math/big"
	"math/rand"
	"testing"
)

// The lazy Shoup multiply underpins the [0, 2q) discipline of the fused
// ring kernels, so its headroom claims are tested at the exact boundary
// values the kernels feed it: relaxed residues up to 2q-1, the (0, 4q)
// differences a + 2q - b, and the full 64-bit multiplicand range the
// proof in lazy.go covers.

func checkLazy(t *testing.T, m *Modulus64, a, w uint64) {
	t.Helper()
	pre := m.ShoupPrecompute(w)
	r := m.MulShoupLazy(a, w, pre)
	if r >= 2*m.Q {
		t.Fatalf("q=%d: MulShoupLazy(%d, %d) = %d, outside [0, 2q)", m.Q, a, w, r)
	}
	want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(w))
	want.Mod(want, new(big.Int).SetUint64(m.Q))
	if r%m.Q != want.Uint64() {
		t.Fatalf("q=%d: MulShoupLazy(%d, %d) ≡ %d, want %d", m.Q, a, w, r%m.Q, want.Uint64())
	}
	if got := m.ReduceLazy(r); got != want.Uint64() {
		t.Fatalf("q=%d: ReduceLazy(%d) = %d, want %d", m.Q, r, got, want.Uint64())
	}
}

// TestMulShoupLazyBoundaries drives the lazy multiply at the [0, 2q)
// boundary multiplicands q-1, q, 2q-1 (and beyond, up to 2^64-1: the
// bound in lazy.go holds for any 64-bit a), for boundary and random
// twiddles.
func TestMulShoupLazyBoundaries(t *testing.T) {
	qs := []uint64{97, 7681, 1<<61 - 1, 0x3fffffffffffffff}
	for _, q := range qs {
		m, err := NewModulus64(q)
		if err != nil {
			t.Fatal(err)
		}
		as := []uint64{0, 1, q - 1, q, q + 1, 2*q - 1, 2 * q, 4*q - 1, ^uint64(0)}
		ws := []uint64{0, 1, 2, q / 2, q - 2, q - 1}
		for _, a := range as {
			for _, w := range ws {
				checkLazy(t, m, a, w)
			}
		}
	}
}

// TestMulShoupLazyRandom cross-checks random (a, w) pairs over random
// NTT-friendly moduli against big.Int, including the strict MulShoup
// consistency (lazy then normalize == strict).
func TestMulShoupLazyRandom(t *testing.T) {
	r := rand.New(rand.NewSource(301))
	primes, err := FindNTTPrimes64(61, 1<<12, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range primes {
		m := MustModulus64(q)
		for i := 0; i < 2000; i++ {
			a := r.Uint64() // any 64-bit multiplicand is in-contract
			w := r.Uint64() % q
			checkLazy(t, m, a, w)
			pre := m.ShoupPrecompute(w)
			if a < q {
				if got, want := m.ReduceLazy(m.MulShoupLazy(a, w, pre)), m.MulShoup(a, w, pre); got != want {
					t.Fatalf("q=%d: lazy+normalize %d != strict %d for a=%d w=%d", q, got, want, a, w)
				}
			}
		}
	}
}
