package modmath

import (
	"math/big"
	"math/rand"
	"testing"

	"mqxgo/internal/u128"
)

// testModuli returns a spread of modulus widths from tiny to the 124-bit limit.
func testModuli(t *testing.T) []*Modulus128 {
	t.Helper()
	var ms []*Modulus128
	for _, bits := range []int{8, 17, 32, 61, 64, 65, 90, 113, 124} {
		q, err := FindNTTPrime128(bits, 8)
		if err != nil {
			t.Fatalf("FindNTTPrime128(%d, 8): %v", bits, err)
		}
		ms = append(ms, MustModulus128(q))
	}
	return ms
}

func randReduced(r *rand.Rand, m *Modulus128) u128.U128 {
	x := u128.New(r.Uint64(), r.Uint64())
	return x.Mod(m.Q)
}

func TestBarrettPrecomputeMatchesBig(t *testing.T) {
	for _, m := range testModuli(t) {
		n := uint(m.Q.BitLen())
		want := new(big.Int).Lsh(big.NewInt(1), 2*n)
		want.Div(want, m.Q.ToBig())
		if m.Mu.ToBig().Cmp(want) != 0 {
			t.Errorf("mu for q=%s: got %s, want %s", m.Q, m.Mu, want)
		}
		if m.N != n {
			t.Errorf("N for q=%s: got %d, want %d", m.Q, m.N, n)
		}
	}
}

func TestAddSubNegMatchBig(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, m := range testModuli(t) {
		qb := m.Q.ToBig()
		for i := 0; i < 500; i++ {
			a, b := randReduced(r, m), randReduced(r, m)
			ab, bb := a.ToBig(), b.ToBig()

			sum := m.Add(a, b).ToBig()
			want := new(big.Int).Add(ab, bb)
			want.Mod(want, qb)
			if sum.Cmp(want) != 0 {
				t.Fatalf("q=%s: Add(%s, %s) = %s, want %s", m.Q, a, b, sum, want)
			}

			diff := m.Sub(a, b).ToBig()
			want = new(big.Int).Sub(ab, bb)
			want.Mod(want, qb)
			if diff.Cmp(want) != 0 {
				t.Fatalf("q=%s: Sub(%s, %s) = %s, want %s", m.Q, a, b, diff, want)
			}

			neg := m.Neg(a).ToBig()
			want = new(big.Int).Neg(ab)
			want.Mod(want, qb)
			if neg.Cmp(want) != 0 {
				t.Fatalf("q=%s: Neg(%s) = %s, want %s", m.Q, a, neg, want)
			}
		}
	}
}

func TestMulMatchesBigBothAlgorithms(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, base := range testModuli(t) {
		qb := base.Q.ToBig()
		for _, alg := range []MulAlgorithm{Schoolbook, Karatsuba} {
			m := base.WithAlgorithm(alg)
			for i := 0; i < 500; i++ {
				a, b := randReduced(r, m), randReduced(r, m)
				got := m.Mul(a, b).ToBig()
				want := new(big.Int).Mul(a.ToBig(), b.ToBig())
				want.Mod(want, qb)
				if got.Cmp(want) != 0 {
					t.Fatalf("q=%s alg=%v: Mul(%s, %s) = %s, want %s", m.Q, alg, a, b, got, want)
				}
			}
			// Boundary operands stress the Barrett correction loop.
			edges := []u128.U128{u128.Zero, u128.One, m.Q.Sub64(1), m.Q.Sub64(2), m.Q.Rsh(1)}
			for _, a := range edges {
				for _, b := range edges {
					got := m.Mul(a, b).ToBig()
					want := new(big.Int).Mul(a.ToBig(), b.ToBig())
					want.Mod(want, qb)
					if got.Cmp(want) != 0 {
						t.Fatalf("q=%s alg=%v edge: Mul(%s, %s) = %s, want %s", m.Q, alg, a, b, got, want)
					}
				}
			}
		}
	}
}

func TestPowAndInv(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, m := range testModuli(t) {
		qb := m.Q.ToBig()
		for i := 0; i < 50; i++ {
			a := randReduced(r, m)
			e := u128.From64(r.Uint64() % 10000)
			got := m.Pow(a, e).ToBig()
			want := new(big.Int).Exp(a.ToBig(), e.ToBig(), qb)
			if got.Cmp(want) != 0 {
				t.Fatalf("q=%s: Pow(%s, %s) = %s, want %s", m.Q, a, e, got, want)
			}
			if a.IsZero() {
				continue
			}
			inv := m.Inv(a)
			if !m.Mul(a, inv).Equal(u128.One) {
				t.Fatalf("q=%s: Inv(%s) = %s is not an inverse", m.Q, a, inv)
			}
		}
	}
}

func TestModulusValidation(t *testing.T) {
	if _, err := NewModulus128(u128.Zero); err == nil {
		t.Error("expected error for modulus 0")
	}
	if _, err := NewModulus128(u128.One); err == nil {
		t.Error("expected error for modulus 1")
	}
	if _, err := NewModulus128(u128.One.Lsh(125)); err == nil {
		t.Error("expected error for 126-bit modulus")
	}
	if _, err := NewModulus128(u128.One.Lsh(123)); err != nil {
		t.Errorf("124-bit modulus should be accepted: %v", err)
	}
}

func TestIsPrime64KnownValues(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 97, 65537, 4294967291, 2305843009213693951}
	for _, p := range primes {
		if !IsPrime64(p) {
			t.Errorf("IsPrime64(%d) = false, want true", p)
		}
	}
	composites := []uint64{0, 1, 4, 9, 91, 561, 41041, 825265, 321197185,
		4294967295, 2305843009213693953}
	for _, c := range composites {
		if IsPrime64(c) {
			t.Errorf("IsPrime64(%d) = true, want false", c)
		}
	}
}

func TestIsPrime64MatchesBig(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 300; i++ {
		n := r.Uint64() >> uint(2+r.Intn(40))
		want := new(big.Int).SetUint64(n).ProbablyPrime(32)
		if got := IsPrime64(n); got != want {
			t.Fatalf("IsPrime64(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestIsPrime128MatchesBig(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for i := 0; i < 60; i++ {
		x := u128.New(r.Uint64()>>4, r.Uint64()|1)
		want := x.ToBig().ProbablyPrime(32)
		if got := IsPrime128(x); got != want {
			t.Fatalf("IsPrime128(%s) = %v, want %v", x, got, want)
		}
	}
}

func TestFindNTTPrime128(t *testing.T) {
	for _, c := range []struct {
		bits  int
		order uint64
	}{{20, 8}, {61, 1 << 12}, {124, 1 << 18}} {
		q, err := FindNTTPrime128(c.bits, c.order)
		if err != nil {
			t.Fatalf("FindNTTPrime128(%d, %d): %v", c.bits, c.order, err)
		}
		if q.BitLen() != c.bits {
			t.Errorf("prime %s has %d bits, want %d", q, q.BitLen(), c.bits)
		}
		if _, r := q.Sub64(1).DivMod64(c.order); r != 0 {
			t.Errorf("prime %s is not ≡ 1 mod %d", q, c.order)
		}
		if !q.ToBig().ProbablyPrime(32) {
			t.Errorf("%s is not prime", q)
		}
	}
	if _, err := FindNTTPrime128(10, 3); err == nil {
		t.Error("expected error for non-power-of-two order")
	}
	if _, err := FindNTTPrime128(130, 8); err == nil {
		t.Error("expected error for too-wide request")
	}
	if _, err := FindNTTPrime128(5, 1<<10); err == nil {
		t.Error("expected error when bits < order width")
	}
}

func TestFindNTTPrimes64(t *testing.T) {
	ps, err := FindNTTPrimes64(60, 1<<18, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, p := range ps {
		if seen[p] {
			t.Errorf("duplicate prime %d", p)
		}
		seen[p] = true
		if !IsPrime64(p) || (p-1)%(1<<18) != 0 {
			t.Errorf("bad NTT prime %d", p)
		}
	}
	if _, err := FindNTTPrimes64(63, 8, 1); err == nil {
		t.Error("expected error for 63-bit request")
	}
	if _, err := FindNTTPrimes64(60, 7, 1); err == nil {
		t.Error("expected error for non-power-of-two order")
	}
}

func TestDefaultPrime(t *testing.T) {
	q := DefaultPrime128()
	if q.BitLen() != MaxModulusBits {
		t.Errorf("default prime has %d bits, want %d", q.BitLen(), MaxModulusBits)
	}
	if _, r := q.Sub64(1).DivMod64(DefaultPrimeOrder); r != 0 {
		t.Error("default prime does not support the default order")
	}
	if !q.ToBig().ProbablyPrime(32) {
		t.Error("default prime is not prime")
	}
	if !DefaultModulus128().Q.Equal(q) {
		t.Error("DefaultModulus128 disagrees with DefaultPrime128")
	}
}

func TestPrimitiveRootOfUnity(t *testing.T) {
	m := DefaultModulus128()
	for _, n := range []uint64{2, 8, 1 << 10, 1 << 18} {
		w, err := m.PrimitiveRootOfUnity(n)
		if err != nil {
			t.Fatalf("order %d: %v", n, err)
		}
		if !m.Pow(w, u128.From64(n)).Equal(u128.One) {
			t.Errorf("w^%d != 1", n)
		}
		if m.Pow(w, u128.From64(n/2)).Equal(u128.One) {
			t.Errorf("w has order dividing %d, want exactly %d", n/2, n)
		}
		// For prime q, the n/2 power of an order-n element must be -1.
		if n >= 2 {
			minus1 := m.Q.Sub64(1)
			if !m.Pow(w, u128.From64(n/2)).Equal(minus1) {
				t.Errorf("w^(n/2) != -1 for order %d", n)
			}
		}
	}
	if _, err := m.PrimitiveRootOfUnity(3); err == nil {
		t.Error("expected error for non-power-of-two order")
	}
	if _, err := m.PrimitiveRootOfUnity(1 << 20); err == nil {
		t.Error("expected error for order not dividing q-1")
	}
}
