package modmath

import (
	"fmt"

	"mqxgo/internal/u128"
	"mqxgo/internal/u256"
)

// Montgomery multiplication for 128-bit moduli: the reduction algorithm
// behind the paper's FPMM ASIC baseline (Zhou et al.'s fully pipelined
// reconfigurable Montgomery multiplier). Provided as an alternative to
// Barrett so the two general-modulus reduction strategies can be compared
// on CPUs: Montgomery trades Barrett's quotient estimate for a
// residue-form conversion at the domain boundaries.
//
// Values in the Montgomery domain represent x as x*R mod q with R = 2^128.
type Montgomery128 struct {
	Q    u128.U128
	QInv u128.U128 // -q^-1 mod 2^128
	R2   u128.U128 // R^2 mod q, for ToMont
}

// NewMontgomery128 precomputes the Montgomery constants. q must be odd
// (gcd(q, 2^128) = 1) and at most 126 bits so a+b and REDC intermediates
// never overflow.
func NewMontgomery128(q u128.U128) (*Montgomery128, error) {
	if q.Lo&1 == 0 {
		return nil, fmt.Errorf("modmath: Montgomery requires an odd modulus")
	}
	if q.BitLen() < 2 || q.BitLen() > 126 {
		return nil, fmt.Errorf("modmath: Montgomery modulus must have 2..126 bits, got %d", q.BitLen())
	}
	// qInv = q^-1 mod 2^128 by Newton iteration: x_{k+1} = x_k(2 - q*x_k),
	// doubling correct bits each round; start with q^-1 mod 2^3 hint q
	// itself (odd q is its own inverse mod 8... use the standard 5-round
	// 64->128 lift with the mod-2 inverse 1).
	x := u128.One
	for i := 0; i < 7; i++ { // 2^(2^7) >= 2^128
		qx := q.MulLo(x)
		two := u128.From64(2)
		x = x.MulLo(two.Sub(qx))
	}
	// Verify q*x == 1 mod 2^128, then negate.
	if !q.MulLo(x).Equal(u128.One) {
		return nil, fmt.Errorf("modmath: internal error: inverse iteration failed")
	}
	qInv := u128.Zero.Sub(x) // -q^-1 mod 2^128

	// R^2 = 2^256 mod q: reduce 2^128 mod q with the from-scratch wide
	// division, then square-reduce.
	r128 := u256.New(0, 1, 0, 0).Mod128(q)
	rr := u256.MulSchoolbook(r128, r128).Mod128(q)
	return &Montgomery128{Q: q, QInv: qInv, R2: rr}, nil
}

// REDC reduces a 256-bit product t to t*R^-1 mod q (Montgomery reduction):
//
//	m := (t mod R) * qInv mod R
//	u := (t + m*q) / R
//	if u >= q { u -= q }
func (mg *Montgomery128) REDC(t u256.U256) u128.U128 {
	m := t.Lo128().MulLo(mg.QInv)
	mq := u256.MulSchoolbook(m, mg.Q)
	sum, carry := t.AddCarry(mq, 0)
	u := sum.Hi128()
	if carry != 0 {
		// The true sum has bit 256 set; u gains 2^128 mod q. With
		// q <= 126 bits this cannot happen (t < q^2, m*q < 2^128*q), but
		// keep the guard for safety.
		u = u.Add(u128.Zero.Sub(mg.Q))
	}
	if mg.Q.LessEq(u) {
		u = u.Sub(mg.Q)
	}
	return u
}

// ToMont converts x into the Montgomery domain: x*R mod q.
func (mg *Montgomery128) ToMont(x u128.U128) u128.U128 {
	return mg.REDC(u256.MulSchoolbook(x, mg.R2))
}

// FromMont converts back: x*R^-1 mod q.
func (mg *Montgomery128) FromMont(x u128.U128) u128.U128 {
	return mg.REDC(u256.FromU128(x))
}

// MulMont multiplies two Montgomery-domain values.
func (mg *Montgomery128) MulMont(a, b u128.U128) u128.U128 {
	return mg.REDC(u256.MulSchoolbook(a, b))
}

// Mul multiplies two ordinary-domain values through the Montgomery domain
// (two conversions; only sensible for long chains, which is why NTTs keep
// twiddles in Montgomery form permanently).
func (mg *Montgomery128) Mul(a, b u128.U128) u128.U128 {
	return mg.FromMont(mg.MulMont(mg.ToMont(a), mg.ToMont(b)))
}
