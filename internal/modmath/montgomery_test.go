package modmath

import (
	"math/big"
	"math/rand"
	"testing"

	"mqxgo/internal/u128"
)

func montModuli(t *testing.T) []*Montgomery128 {
	t.Helper()
	var out []*Montgomery128
	for _, bits := range []int{17, 61, 90, 124} {
		q, err := FindNTTPrime128(bits, 8)
		if err != nil {
			t.Fatal(err)
		}
		mg, err := NewMontgomery128(q)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, mg)
	}
	return out
}

func TestMontgomeryConstants(t *testing.T) {
	for _, mg := range montModuli(t) {
		// q * (-qInv) ≡ -1 (mod 2^128) <=> q*qInv ≡ ... verify q * qInv ≡ -1.
		prod := mg.Q.MulLo(mg.QInv)
		if !prod.Equal(u128.Max) { // -1 mod 2^128
			t.Errorf("q=%s: q*qInv != -1 mod 2^128", mg.Q)
		}
		// R2 == 2^256 mod q.
		want := new(big.Int).Lsh(big.NewInt(1), 256)
		want.Mod(want, mg.Q.ToBig())
		if mg.R2.ToBig().Cmp(want) != 0 {
			t.Errorf("q=%s: R2 wrong", mg.Q)
		}
	}
}

func TestMontgomeryMulMatchesBarrett(t *testing.T) {
	r := rand.New(rand.NewSource(161))
	for _, mg := range montModuli(t) {
		bar := MustModulus128(mg.Q)
		for i := 0; i < 300; i++ {
			a := u128.New(r.Uint64(), r.Uint64()).Mod(mg.Q)
			b := u128.New(r.Uint64(), r.Uint64()).Mod(mg.Q)
			if got, want := mg.Mul(a, b), bar.Mul(a, b); !got.Equal(want) {
				t.Fatalf("q=%s: Montgomery Mul(%s, %s) = %s, Barrett = %s", mg.Q, a, b, got, want)
			}
		}
		// Edges.
		for _, a := range []u128.U128{u128.Zero, u128.One, mg.Q.Sub64(1)} {
			for _, b := range []u128.U128{u128.Zero, u128.One, mg.Q.Sub64(1)} {
				if got, want := mg.Mul(a, b), bar.Mul(a, b); !got.Equal(want) {
					t.Fatalf("q=%s edge: Mul(%s, %s) = %s, want %s", mg.Q, a, b, got, want)
				}
			}
		}
	}
}

func TestMontgomeryDomainRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(162))
	for _, mg := range montModuli(t) {
		for i := 0; i < 200; i++ {
			x := u128.New(r.Uint64(), r.Uint64()).Mod(mg.Q)
			if got := mg.FromMont(mg.ToMont(x)); !got.Equal(x) {
				t.Fatalf("q=%s: domain round trip failed for %s: %s", mg.Q, x, got)
			}
		}
	}
}

func TestMontgomeryChainStaysInDomain(t *testing.T) {
	// Long multiply chains done in-domain must agree with Barrett.
	mg := montModuli(t)[3]
	bar := MustModulus128(mg.Q)
	r := rand.New(rand.NewSource(163))
	x := u128.New(r.Uint64(), r.Uint64()).Mod(mg.Q)
	w := u128.New(r.Uint64(), r.Uint64()).Mod(mg.Q)

	accM := mg.ToMont(x)
	wM := mg.ToMont(w)
	accB := x
	for i := 0; i < 100; i++ {
		accM = mg.MulMont(accM, wM)
		accB = bar.Mul(accB, w)
	}
	if got := mg.FromMont(accM); !got.Equal(accB) {
		t.Fatalf("chain diverged: %s vs %s", got, accB)
	}
}

func TestMontgomeryValidation(t *testing.T) {
	if _, err := NewMontgomery128(u128.From64(8)); err == nil {
		t.Error("even modulus should fail")
	}
	if _, err := NewMontgomery128(u128.One.Lsh(126).Add64(1)); err == nil {
		t.Error("127-bit modulus should fail")
	}
}
