package modmath

import (
	"fmt"
	"math/bits"
	"sync"

	"mqxgo/internal/u128"
)

// IsPrime64 reports whether n is prime, using a deterministic Miller-Rabin
// witness set valid for all 64-bit integers.
func IsPrime64(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	// n is odd and > 37 here. Witnesses {2,3,5,7,11,13,17,19,23,29,31,37}
	// are deterministic for n < 3.3e24 (Sorenson & Webster), covering uint64.
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := powMod64(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := 0; i < r-1; i++ {
			x = mulMod64(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// mulMod64 returns a*b mod n for any n > 0 and reduced a, b, via a 128-bit
// product and hardware division. Used only by primality testing, which must
// handle moduli up to 2^64-1 (beyond Modulus64's Barrett range).
func mulMod64(a, b, n uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, r := bits.Div64(hi, lo, n)
	return r
}

func powMod64(base, exp, n uint64) uint64 {
	result := uint64(1)
	b := base % n
	for e := exp; e != 0; e >>= 1 {
		if e&1 == 1 {
			result = mulMod64(result, b, n)
		}
		b = mulMod64(b, b, n)
	}
	return result
}

// IsPrime128 reports whether n (at most 124 bits, the Barrett limit) is
// prime using Miller-Rabin with a fixed witness set. For n >= 2^64 the test
// is probabilistic with error below 4^-25; the library's prime searches
// additionally cross-check candidates in tests against math/big.
func IsPrime128(n u128.U128) bool {
	if n.Is64() {
		return IsPrime64(n.Lo)
	}
	if n.Lo&1 == 0 {
		return false
	}
	for _, p := range []uint64{3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47} {
		if _, r := n.DivMod64(p); r == 0 {
			return false
		}
	}
	m, err := NewModulus128(n)
	if err != nil {
		return false // wider than the supported range
	}
	d := n.Sub64(1)
	r := 0
	for d.Lo&1 == 0 {
		d = d.Rsh(1)
		r++
	}
	nm1 := n.Sub64(1)
	witnesses := []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37,
		41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97}
	for _, a := range witnesses {
		x := m.Pow(u128.From64(a), d)
		if x.Equal(u128.One) || x.Equal(nm1) {
			continue
		}
		composite := true
		for i := 0; i < r-1; i++ {
			x = m.Mul(x, x)
			if x.Equal(nm1) {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// FindNTTPrime128 deterministically finds the largest prime q with exactly
// the given bit width such that q ≡ 1 (mod order). order must be a power of
// two (typically 2n for an n-point negacyclic NTT). bits must be in
// [bitlen(order)+2, 124].
func FindNTTPrime128(bits int, order uint64) (u128.U128, error) {
	if order == 0 || order&(order-1) != 0 {
		return u128.Zero, fmt.Errorf("modmath: order %d is not a power of two", order)
	}
	if bits > MaxModulusBits {
		return u128.Zero, fmt.Errorf("modmath: requested %d bits, max is %d", bits, MaxModulusBits)
	}
	ord := u128.From64(order)
	if bits < ord.BitLen()+2 {
		return u128.Zero, fmt.Errorf("modmath: %d bits too small for order %d", bits, order)
	}
	// Scan q = k*order + 1 downward from the top of the bit range.
	top := u128.One.Lsh(uint(bits)).Sub64(1)
	k, _ := top.Sub64(1).DivMod(ord)
	for {
		q := k.MulLo(ord).Add64(1)
		if q.BitLen() < bits {
			return u128.Zero, fmt.Errorf("modmath: no %d-bit prime ≡ 1 mod %d found", bits, order)
		}
		if IsPrime128(q) {
			return q, nil
		}
		k = k.Sub64(1)
	}
}

// FindNTTPrimes64 deterministically finds count distinct primes of the given
// bit width (at most 61) with q ≡ 1 (mod order), scanning downward. Used to
// build RNS prime chains.
func FindNTTPrimes64(bits int, order uint64, count int) ([]uint64, error) {
	if order == 0 || order&(order-1) != 0 {
		return nil, fmt.Errorf("modmath: order %d is not a power of two", order)
	}
	if bits > 61 {
		return nil, fmt.Errorf("modmath: 64-bit NTT primes limited to 61 bits, got %d", bits)
	}
	if bits < 8 {
		return nil, fmt.Errorf("modmath: prime width %d too small", bits)
	}
	var primes []uint64
	top := uint64(1)<<uint(bits) - 1
	k := (top - 1) / order
	for uint64(1)<<(uint(bits)-1) <= k*order {
		q := k*order + 1
		if IsPrime64(q) {
			primes = append(primes, q)
			if len(primes) == count {
				return primes, nil
			}
		}
		k--
	}
	return nil, fmt.Errorf("modmath: found only %d of %d requested %d-bit primes", len(primes), count, bits)
}

// defaultPrimeCache memoizes the library-wide default modulus.
var defaultPrimeCache struct {
	once sync.Once
	q    u128.U128
	err  error
}

// DefaultPrimeOrder is the power-of-two order the default modulus supports:
// 2^18 covers negacyclic NTTs up to n = 2^17, the largest size in the
// paper's evaluation.
const DefaultPrimeOrder = 1 << 18

// DefaultPrime128 returns the library-wide default modulus: the largest
// 124-bit prime congruent to 1 mod 2^18. The search is deterministic, so
// every caller sees the same prime.
func DefaultPrime128() u128.U128 {
	defaultPrimeCache.once.Do(func() {
		defaultPrimeCache.q, defaultPrimeCache.err = FindNTTPrime128(MaxModulusBits, DefaultPrimeOrder)
	})
	if defaultPrimeCache.err != nil {
		panic(defaultPrimeCache.err)
	}
	return defaultPrimeCache.q
}

// DefaultModulus128 returns a ready-to-use Barrett context for
// DefaultPrime128.
func DefaultModulus128() *Modulus128 {
	return MustModulus128(DefaultPrime128())
}
