package modmath

import (
	"fmt"

	"mqxgo/internal/u128"
)

// PrimitiveRootOfUnity returns an element of order exactly n modulo the
// prime q, where n is a power of two dividing q-1.
//
// The search needs no factorization of q-1: for a candidate x, the element
// w = x^((q-1)/n) always has order dividing n; because n is a power of two,
// the order is exactly n iff w^(n/2) != 1. Candidates are tried
// deterministically (x = 2, 3, 4, ...), and since the multiplicative group
// is cyclic roughly half of all candidates succeed.
func (m *Modulus128) PrimitiveRootOfUnity(n uint64) (u128.U128, error) {
	if n == 0 || n&(n-1) != 0 {
		return u128.Zero, fmt.Errorf("modmath: order %d is not a power of two", n)
	}
	qm1 := m.Q.Sub64(1)
	if _, r := qm1.DivMod64(n); r != 0 {
		return u128.Zero, fmt.Errorf("modmath: %d does not divide q-1 for q=%s", n, m.Q)
	}
	if n == 1 {
		return u128.One, nil
	}
	exp, _ := qm1.DivMod64(n)
	half := u128.From64(n / 2)
	for x := uint64(2); x < 1000; x++ {
		w := m.Pow(u128.From64(x), exp)
		if w.IsZero() || w.Equal(u128.One) {
			continue
		}
		if !m.Pow(w, half).Equal(u128.One) {
			return w, nil
		}
	}
	return u128.Zero, fmt.Errorf("modmath: no primitive %d-th root found for q=%s", n, m.Q)
}

// MustPrimitiveRootOfUnity is PrimitiveRootOfUnity but panics on error.
func (m *Modulus128) MustPrimitiveRootOfUnity(n uint64) u128.U128 {
	w, err := m.PrimitiveRootOfUnity(n)
	if err != nil {
		panic(err)
	}
	return w
}

// PrimitiveRootOfUnity64 is the single-word analogue used by the RNS
// substrate's 64-bit NTTs.
func (m *Modulus64) PrimitiveRootOfUnity64(n uint64) (uint64, error) {
	if n == 0 || n&(n-1) != 0 {
		return 0, fmt.Errorf("modmath: order %d is not a power of two", n)
	}
	if (m.Q-1)%n != 0 {
		return 0, fmt.Errorf("modmath: %d does not divide q-1 for q=%d", n, m.Q)
	}
	if n == 1 {
		return 1, nil
	}
	exp := (m.Q - 1) / n
	for x := uint64(2); x < 1000; x++ {
		w := m.Pow(x, exp)
		if w <= 1 {
			continue
		}
		if m.Pow(w, n/2) != 1 {
			return w, nil
		}
	}
	return 0, fmt.Errorf("modmath: no primitive %d-th root found for q=%d", n, m.Q)
}
