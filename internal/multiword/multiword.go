// Package multiword generalizes the library's double-word (128-bit)
// arithmetic to arbitrary k-word integers — the Section 7 direction the
// paper sketches via MoMA's multi-word modular arithmetic: decompose
// large-integer operations into machine-word operations so the same
// kernels scale to the 256-bit-and-beyond residues used by zero-knowledge
// proof systems.
//
// Values are little-endian word arrays of a fixed width k. Modular
// multiplication uses the same generalized Barrett reduction as
// internal/modmath, with 2k-word intermediates; all operations are exact
// and validated against math/big.
package multiword

import (
	"fmt"
	"math/big"
	"math/bits"
)

// Int is a k-word little-endian unsigned integer. Functions in this
// package require operands of equal width.
type Int []uint64

// NewInt returns a zero value of width k words.
func NewInt(k int) Int { return make(Int, k) }

// Clone returns a copy of x.
func (x Int) Clone() Int { return append(Int(nil), x...) }

// IsZero reports whether x == 0.
func (x Int) IsZero() bool {
	for _, w := range x {
		if w != 0 {
			return false
		}
	}
	return true
}

// BitLen returns the bit length of x.
func (x Int) BitLen() int {
	for i := len(x) - 1; i >= 0; i-- {
		if x[i] != 0 {
			return i*64 + bits.Len64(x[i])
		}
	}
	return 0
}

// Cmp compares equal-width x and y: -1, 0 or +1.
func (x Int) Cmp(y Int) int {
	for i := len(x) - 1; i >= 0; i-- {
		if x[i] != y[i] {
			if x[i] < y[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// addTo computes z = x + y (equal widths), returning the carry-out.
func addTo(z, x, y Int) uint64 {
	var c uint64
	for i := range x {
		z[i], c = bits.Add64(x[i], y[i], c)
	}
	return c
}

// subTo computes z = x - y (equal widths), returning the borrow-out.
func subTo(z, x, y Int) uint64 {
	var b uint64
	for i := range x {
		z[i], b = bits.Sub64(x[i], y[i], b)
	}
	return b
}

// mulTo computes the full 2k-word product z = x * y by the schoolbook
// method (the word-level analogue of Eq. 8).
func mulTo(z Int, x, y Int) {
	for i := range z {
		z[i] = 0
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		var carry uint64
		for j, yj := range y {
			hi, lo := bits.Mul64(xi, yj)
			var c uint64
			z[i+j], c = bits.Add64(z[i+j], lo, 0)
			hi += c
			z[i+j+1], c = bits.Add64(z[i+j+1], hi, carry)
			carry = c
		}
		// Propagate any remaining carry.
		for p := i + len(y) + 1; carry != 0 && p < len(z); p++ {
			z[p], carry = bits.Add64(z[p], 0, carry)
		}
	}
}

// shrTo computes z = x >> s truncated to len(z) words.
func shrTo(z Int, x Int, s uint) {
	word := int(s / 64)
	bit := s % 64
	for i := range z {
		var w uint64
		if i+word < len(x) {
			w = x[i+word] >> bit
			if bit != 0 && i+word+1 < len(x) {
				w |= x[i+word+1] << (64 - bit)
			}
		}
		z[i] = w
	}
}

// Modulus is a k-word modulus with Barrett precomputation. The modulus
// must leave at least 4 bits of headroom in the top word (the same l-4
// constraint as the paper's 128-bit case, scaled to l = 64k).
type Modulus struct {
	K  int
	Q  Int
	Mu Int // floor(2^(2n)/q), n = bitlen(q); up to n+1 bits
	N  uint

	// scratch buffers sized once; Modulus methods are not safe for
	// concurrent use (construct one per goroutine, like a hash.Hash).
	t, v    Int // 2k-word products
	u, qhat Int // k+1-word intermediates
	w, r    Int
}

// NewModulus builds the Barrett context for q of width k words.
func NewModulus(q Int) (*Modulus, error) {
	k := len(q)
	if k < 1 {
		return nil, fmt.Errorf("multiword: empty modulus")
	}
	n := q.BitLen()
	if n < 2 {
		return nil, fmt.Errorf("multiword: modulus too small")
	}
	if n > 64*k-4 {
		return nil, fmt.Errorf("multiword: modulus has %d bits, needs <= %d for %d-word Barrett", n, 64*k-4, k)
	}
	// mu = floor(2^(2n)/q) computed via big.Int (setup path only).
	qb := toBig(q)
	mu := new(big.Int).Lsh(big.NewInt(1), uint(2*n))
	mu.Div(mu, qb)
	m := &Modulus{
		K: k, Q: q.Clone(), Mu: fromBig(mu, k), N: uint(n),
		t: NewInt(2 * k), v: NewInt(2 * k),
		u: NewInt(k), qhat: NewInt(k), w: NewInt(k), r: NewInt(k),
	}
	return m, nil
}

// MustModulus is NewModulus but panics on error.
func MustModulus(q Int) *Modulus {
	m, err := NewModulus(q)
	if err != nil {
		panic(err)
	}
	return m
}

// Add returns (a + b) mod q for reduced inputs.
func (m *Modulus) Add(a, b Int) Int {
	z := NewInt(m.K)
	carry := addTo(z, a, b)
	if carry != 0 || z.Cmp(m.Q) >= 0 {
		subTo(z, z, m.Q)
	}
	return z
}

// Sub returns (a - b) mod q for reduced inputs.
func (m *Modulus) Sub(a, b Int) Int {
	z := NewInt(m.K)
	if subTo(z, a, b) != 0 {
		addTo(z, z, m.Q)
	}
	return z
}

// Neg returns -a mod q for reduced a.
func (m *Modulus) Neg(a Int) Int {
	if a.IsZero() {
		return a.Clone()
	}
	z := NewInt(m.K)
	subTo(z, m.Q, a)
	return z
}

// Mul returns (a * b) mod q via generalized Barrett reduction.
func (m *Modulus) Mul(a, b Int) Int {
	mulTo(m.t, a, b) // t = a*b, 2k words, t < 2^(2n)

	// u = floor(t / 2^(n-1)), at most n+1 bits -> fits k words.
	shrTo(m.u, m.t, m.N-1)

	// v = u * mu, up to 2n+2 bits; qhat = floor(v / 2^(n+1)).
	mulKxK(m.v, m.u, m.Mu)
	shrTo(m.qhat, m.v, m.N+1)

	// w = low k words of qhat * q.
	mulLowK(m.w, m.qhat, m.Q)

	// r = (t mod 2^(64k)) - w; true remainder < 3q fits k words exactly.
	copy(m.r, m.t[:m.K])
	subTo(m.r, m.r, m.w)

	// At most two corrective subtractions.
	for m.r.Cmp(m.Q) >= 0 {
		subTo(m.r, m.r, m.Q)
	}
	return m.r.Clone()
}

// mulKxK computes the 2k-word product of two k-word values into z.
func mulKxK(z Int, x, y Int) { mulTo(z, x, y) }

// mulLowK computes the low k words of x*y into z.
func mulLowK(z Int, x, y Int) {
	for i := range z {
		z[i] = 0
	}
	k := len(z)
	for i, xi := range x {
		if xi == 0 || i >= k {
			continue
		}
		var carry uint64
		for j := 0; j < k-i; j++ {
			hi, lo := bits.Mul64(xi, y[j])
			var c uint64
			z[i+j], c = bits.Add64(z[i+j], lo, 0)
			hi += c
			if i+j+1 < k {
				z[i+j+1], c = bits.Add64(z[i+j+1], hi, carry)
				carry = c
			}
		}
	}
}

// Pow returns base^exp mod q (exp as a plain uint64).
func (m *Modulus) Pow(base Int, exp uint64) Int {
	result := NewInt(m.K)
	result[0] = 1
	b := base.Clone()
	for e := exp; e != 0; e >>= 1 {
		if e&1 == 1 {
			result = m.Mul(result, b)
		}
		b = m.Mul(b, b)
	}
	return result
}

// PowBig returns base^exp mod q for a big exponent.
func (m *Modulus) PowBig(base Int, exp *big.Int) Int {
	result := NewInt(m.K)
	result[0] = 1
	b := base.Clone()
	for i := 0; i < exp.BitLen(); i++ {
		if exp.Bit(i) == 1 {
			result = m.Mul(result, b)
		}
		b = m.Mul(b, b)
	}
	return result
}

// Inv returns a^(q-2) mod q for prime q.
func (m *Modulus) Inv(a Int) Int {
	qm2 := new(big.Int).Sub(toBig(m.Q), big.NewInt(2))
	return m.PowBig(a, qm2)
}

// Reduce reduces an arbitrary k-word value modulo q (setup paths).
func (m *Modulus) Reduce(a Int) Int {
	ab := toBig(a)
	ab.Mod(ab, toBig(m.Q))
	return fromBig(ab, m.K)
}

func toBig(x Int) *big.Int {
	b := new(big.Int)
	for i := len(x) - 1; i >= 0; i-- {
		b.Lsh(b, 64)
		b.Or(b, new(big.Int).SetUint64(x[i]))
	}
	return b
}

func fromBig(b *big.Int, k int) Int {
	z := NewInt(k)
	words := b.Bits()
	for i := 0; i < len(words) && i < k; i++ {
		z[i] = uint64(words[i])
	}
	return z
}

// ToBig converts x to a big integer.
func (x Int) ToBig() *big.Int { return toBig(x) }

// FromBig converts b to a k-word Int; ok is false when b is negative or
// too wide.
func FromBig(b *big.Int, k int) (Int, bool) {
	if b.Sign() < 0 || b.BitLen() > 64*k {
		return nil, false
	}
	return fromBig(b, k), true
}
