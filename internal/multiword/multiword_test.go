package multiword

import (
	"math/big"
	"math/rand"
	"testing"
)

// testModuli builds moduli of several word widths (192-bit in 3 words,
// 252-bit in 4 words, 380-bit in 6 words).
func testModuli(t *testing.T) []*Modulus {
	t.Helper()
	var out []*Modulus
	for _, c := range []struct{ bits, k int }{{188, 3}, {252, 4}, {380, 6}} {
		q, err := FindNTTPrime(c.bits, c.k, 1<<10)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, MustModulus(q))
	}
	return out
}

func randReduced(r *rand.Rand, m *Modulus) Int {
	x := NewInt(m.K)
	for i := range x {
		x[i] = r.Uint64()
	}
	return m.Reduce(x)
}

func TestArithmeticMatchesBig(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	for _, m := range testModuli(t) {
		qb := toBig(m.Q)
		for i := 0; i < 400; i++ {
			a := randReduced(r, m)
			b := randReduced(r, m)
			ab, bb := toBig(a), toBig(b)

			want := new(big.Int).Add(ab, bb)
			want.Mod(want, qb)
			if got := toBig(m.Add(a, b)); got.Cmp(want) != 0 {
				t.Fatalf("k=%d Add: got %s, want %s", m.K, got, want)
			}
			want.Sub(ab, bb).Mod(want, qb)
			if got := toBig(m.Sub(a, b)); got.Cmp(want) != 0 {
				t.Fatalf("k=%d Sub: got %s, want %s", m.K, got, want)
			}
			want.Mul(ab, bb).Mod(want, qb)
			if got := toBig(m.Mul(a, b)); got.Cmp(want) != 0 {
				t.Fatalf("k=%d Mul: got %s, want %s", m.K, got, want)
			}
			want.Neg(ab).Mod(want, qb)
			if got := toBig(m.Neg(a)); got.Cmp(want) != 0 {
				t.Fatalf("k=%d Neg: got %s, want %s", m.K, got, want)
			}
		}
		// Edge operands.
		one := NewInt(m.K)
		one[0] = 1
		qm1 := m.Sub(NewInt(m.K), one) // q-1
		edges := []Int{NewInt(m.K), one, qm1}
		for _, a := range edges {
			for _, b := range edges {
				want := new(big.Int).Mul(toBig(a), toBig(b))
				want.Mod(want, qb)
				if got := toBig(m.Mul(a, b)); got.Cmp(want) != 0 {
					t.Fatalf("k=%d edge Mul(%s, %s) wrong", m.K, toBig(a), toBig(b))
				}
			}
		}
	}
}

func TestPowInv(t *testing.T) {
	r := rand.New(rand.NewSource(132))
	for _, m := range testModuli(t) {
		qb := toBig(m.Q)
		one := NewInt(m.K)
		one[0] = 1
		for i := 0; i < 20; i++ {
			a := randReduced(r, m)
			if a.IsZero() {
				continue
			}
			e := r.Uint64() % 10000
			want := new(big.Int).Exp(toBig(a), new(big.Int).SetUint64(e), qb)
			if got := toBig(m.Pow(a, e)); got.Cmp(want) != 0 {
				t.Fatalf("k=%d Pow: got %s, want %s", m.K, got, want)
			}
			if m.Mul(a, m.Inv(a)).Cmp(one) != 0 {
				t.Fatalf("k=%d Inv failed", m.K)
			}
		}
	}
}

func TestModulusValidation(t *testing.T) {
	if _, err := NewModulus(Int{}); err == nil {
		t.Error("expected error for empty modulus")
	}
	if _, err := NewModulus(Int{1}); err == nil {
		t.Error("expected error for modulus 1")
	}
	// A full-width modulus violates the headroom constraint.
	full := Int{^uint64(0), ^uint64(0)}
	if _, err := NewModulus(full); err == nil {
		t.Error("expected headroom error")
	}
}

func TestFindNTTPrime(t *testing.T) {
	q, err := FindNTTPrime(252, 4, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if q.BitLen() != 252 {
		t.Errorf("prime has %d bits", q.BitLen())
	}
	qb := toBig(q)
	if !qb.ProbablyPrime(32) {
		t.Error("not prime")
	}
	rem := new(big.Int).Mod(new(big.Int).Sub(qb, big.NewInt(1)), big.NewInt(1<<12))
	if rem.Sign() != 0 {
		t.Error("not ≡ 1 mod order")
	}
	if _, err := FindNTTPrime(300, 4, 8); err == nil {
		t.Error("expected headroom error")
	}
}

func TestNTTRoundTripAndReference(t *testing.T) {
	q, err := FindNTTPrime(252, 4, 1<<8)
	if err != nil {
		t.Fatal(err)
	}
	mod := MustModulus(q)
	n := 32
	p, err := NewPlan(mod, n)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(133))
	x := make([]Int, n)
	for i := range x {
		x[i] = randReduced(r, mod)
	}
	f := p.Forward(x)

	// Direct O(n^2) reference via big.Int, with bit-reversed output order.
	qb := toBig(q)
	omega := toBig(p.Omega)
	for k := 0; k < n; k++ {
		acc := new(big.Int)
		for j := 0; j < n; j++ {
			e := new(big.Int).Exp(omega, big.NewInt(int64(j*k)), qb)
			e.Mul(e, toBig(x[j]))
			acc.Add(acc, e)
		}
		acc.Mod(acc, qb)
		rev := 0
		for b := 0; b < p.M; b++ {
			rev = rev<<1 | (k>>b)&1
		}
		if toBig(f[rev]).Cmp(acc) != 0 {
			t.Fatalf("forward output %d: got %s, want %s", rev, toBig(f[rev]), acc)
		}
	}

	back := p.Inverse(f)
	for i := range x {
		if back[i].Cmp(x[i]) != 0 {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestPlanValidation(t *testing.T) {
	q, err := FindNTTPrime(188, 3, 1<<8)
	if err != nil {
		t.Fatal(err)
	}
	mod := MustModulus(q)
	if _, err := NewPlan(mod, 3); err == nil {
		t.Error("expected error for non-power-of-two")
	}
	if _, err := NewPlan(mod, 1<<20); err == nil {
		t.Error("expected error for unsupported order")
	}
}

func TestConversions(t *testing.T) {
	b := new(big.Int).Lsh(big.NewInt(12345), 100)
	x, ok := FromBig(b, 3)
	if !ok {
		t.Fatal("FromBig failed")
	}
	if x.ToBig().Cmp(b) != 0 {
		t.Fatal("round trip failed")
	}
	if _, ok := FromBig(big.NewInt(-1), 3); ok {
		t.Error("negative should fail")
	}
	if _, ok := FromBig(new(big.Int).Lsh(big.NewInt(1), 200), 3); ok {
		t.Error("too-wide should fail")
	}
	if x.IsZero() || !NewInt(4).IsZero() {
		t.Error("IsZero wrong")
	}
}
