package multiword

import (
	"fmt"
	"math/big"
)

// NTT over k-word residues: the constant-geometry transform generalized to
// arbitrary widths, demonstrating that the paper's 128-bit kernels extend
// to the 256-bit-and-larger moduli zero-knowledge proof systems use
// (Section 7).

// Plan holds twiddle tables for n-point transforms modulo a k-word prime.
type Plan struct {
	Mod *Modulus
	N   int
	M   int

	Omega Int
	NInv  Int
	fwd   [][]Int // per stage, n/2 twiddles
	inv   [][]Int
}

// FindNTTPrime deterministically finds the largest prime with the given
// bit width (headroom respected) congruent to 1 mod order.
func FindNTTPrime(bitsWidth, k int, order uint64) (Int, error) {
	if bitsWidth > 64*k-4 {
		return nil, fmt.Errorf("multiword: %d bits exceeds %d-word Barrett headroom", bitsWidth, k)
	}
	ord := new(big.Int).SetUint64(order)
	top := new(big.Int).Lsh(big.NewInt(1), uint(bitsWidth))
	top.Sub(top, big.NewInt(1))
	kq := new(big.Int).Div(new(big.Int).Sub(top, big.NewInt(1)), ord)
	floor := new(big.Int).Lsh(big.NewInt(1), uint(bitsWidth-1))
	q := new(big.Int)
	for {
		q.Mul(kq, ord)
		q.Add(q, big.NewInt(1))
		if q.Cmp(floor) < 0 {
			return nil, fmt.Errorf("multiword: no %d-bit prime ≡ 1 mod %d", bitsWidth, order)
		}
		if q.ProbablyPrime(32) {
			z, _ := FromBig(q, k)
			return z, nil
		}
		kq.Sub(kq, big.NewInt(1))
	}
}

// NewPlan builds an n-point plan; n must be a power of two dividing the
// order of the multiplicative group's 2-part.
func NewPlan(mod *Modulus, n int) (*Plan, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("multiword: size %d not a power of two", n)
	}
	m := 0
	for 1<<m < n {
		m++
	}
	qb := toBig(mod.Q)
	qm1 := new(big.Int).Sub(qb, big.NewInt(1))
	if new(big.Int).Mod(qm1, big.NewInt(int64(n))).Sign() != 0 {
		return nil, fmt.Errorf("multiword: %d does not divide q-1", n)
	}
	exp := new(big.Int).Div(qm1, big.NewInt(int64(n)))
	// Find an order-n element.
	var omega Int
	for x := int64(2); x < 1000; x++ {
		cand := NewInt(mod.K)
		cand[0] = uint64(x)
		w := mod.PowBig(cand, exp)
		if w.IsZero() {
			continue
		}
		one := NewInt(mod.K)
		one[0] = 1
		if w.Cmp(one) == 0 {
			continue
		}
		half := mod.Pow(w, uint64(n/2))
		if half.Cmp(one) != 0 {
			omega = w
			break
		}
	}
	if omega == nil {
		return nil, fmt.Errorf("multiword: no primitive %d-th root found", n)
	}
	nInv := NewInt(mod.K)
	nInv[0] = uint64(n)
	p := &Plan{Mod: mod, N: n, M: m, Omega: omega, NInv: mod.Inv(nInv)}
	p.build()
	return p, nil
}

func (p *Plan) build() {
	mod := p.Mod
	half := p.N / 2
	omegaInv := mod.Inv(p.Omega)
	pow := make([]Int, p.N)
	powInv := make([]Int, p.N)
	one := NewInt(mod.K)
	one[0] = 1
	pow[0], powInv[0] = one, one.Clone()
	for j := 1; j < p.N; j++ {
		pow[j] = mod.Mul(pow[j-1], p.Omega)
		powInv[j] = mod.Mul(powInv[j-1], omegaInv)
	}
	p.fwd = make([][]Int, p.M)
	p.inv = make([][]Int, p.M)
	for s := 0; s < p.M; s++ {
		fw := make([]Int, half)
		iv := make([]Int, half)
		for i := 0; i < half; i++ {
			e := (uint64(i) >> uint(s)) << uint(s)
			fw[i] = pow[e]
			iv[i] = powInv[e]
		}
		p.fwd[s] = fw
		p.inv[s] = iv
	}
}

// Forward computes the forward NTT (natural in, bit-reversed out).
func (p *Plan) Forward(x []Int) []Int {
	if len(x) != p.N {
		panic("multiword: input length mismatch")
	}
	mod := p.Mod
	half := p.N / 2
	src := make([]Int, p.N)
	for i := range src {
		src[i] = x[i].Clone()
	}
	dst := make([]Int, p.N)
	for s := 0; s < p.M; s++ {
		tw := p.fwd[s]
		for i := 0; i < half; i++ {
			a, b := src[i], src[i+half]
			dst[2*i] = mod.Add(a, b)
			dst[2*i+1] = mod.Mul(mod.Sub(a, b), tw[i])
		}
		src, dst = dst, src
	}
	return src
}

// Inverse computes the inverse NTT (bit-reversed in, natural out) with the
// 1/N scaling.
func (p *Plan) Inverse(y []Int) []Int {
	if len(y) != p.N {
		panic("multiword: input length mismatch")
	}
	mod := p.Mod
	half := p.N / 2
	src := make([]Int, p.N)
	for i := range src {
		src[i] = y[i].Clone()
	}
	dst := make([]Int, p.N)
	for s := p.M - 1; s >= 0; s-- {
		tw := p.inv[s]
		for i := 0; i < half; i++ {
			t := mod.Mul(src[2*i+1], tw[i])
			dst[i] = mod.Add(src[2*i], t)
			dst[i+half] = mod.Sub(src[2*i], t)
		}
		src, dst = dst, src
	}
	out := make([]Int, p.N)
	for i := range src {
		out[i] = mod.Mul(src[i], p.NInv)
	}
	return out
}
