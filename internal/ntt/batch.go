package ntt

import (
	"runtime"
	"sync"

	"mqxgo/internal/u128"
)

// Batched transforms. Real FHE workloads process many independent
// polynomials at once (Section 6, "towards realizing SOL performance");
// these helpers fan a batch out across cores with no cross-transform data
// dependencies, the parallelism regime the paper's speed-of-light model
// assumes.

// BatchForward runs the forward transform over every input, in parallel
// across at most workers goroutines (0 means GOMAXPROCS). Inputs are not
// modified; results are returned in order.
func (p *Plan) BatchForward(inputs [][]u128.U128, workers int) [][]u128.U128 {
	return p.batch(inputs, workers, p.ForwardNative)
}

// BatchInverse runs the inverse transform over every input in parallel.
func (p *Plan) BatchInverse(inputs [][]u128.U128, workers int) [][]u128.U128 {
	return p.batch(inputs, workers, p.InverseNative)
}

// BatchPolyMulNegacyclic multiplies pairs[i][0] * pairs[i][1] in
// Z_q[x]/(x^n + 1) for every pair, in parallel.
func (p *Plan) BatchPolyMulNegacyclic(pairs [][2][]u128.U128, workers int) [][]u128.U128 {
	out := make([][]u128.U128, len(pairs))
	parallelFor(len(pairs), workers, func(i int) {
		out[i] = p.PolyMulNegacyclic(pairs[i][0], pairs[i][1])
	})
	return out
}

func (p *Plan) batch(inputs [][]u128.U128, workers int, f func([]u128.U128) []u128.U128) [][]u128.U128 {
	out := make([][]u128.U128, len(inputs))
	parallelFor(len(inputs), workers, func(i int) {
		out[i] = f(inputs[i])
	})
	return out
}

func parallelFor(n, workers int, f func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
