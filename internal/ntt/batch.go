package ntt

import (
	"mqxgo/internal/u128"
)

// Batched 128-bit transforms: thin delegations to the generic chunked
// batch dispatch in internal/ring, which fans a batch of independent
// transforms across a persistent worker pool (Section 6, "towards
// realizing SOL performance"). Plan64 exposes the identical surface in
// ntt64.go.

// BatchForward runs the forward transform over every input, in parallel
// across at most workers chunks (0 means GOMAXPROCS). Inputs are not
// modified; results are returned in order.
func (p *Plan) BatchForward(inputs [][]u128.U128, workers int) [][]u128.U128 {
	return p.g.BatchForward(inputs, workers)
}

// BatchForwardInto is BatchForward with caller-provided destinations:
// dst[i] receives the transform of inputs[i]. Beyond the fixed dispatch
// cost (one closure and one scratch checkout per chunk) it allocates
// nothing.
func (p *Plan) BatchForwardInto(dst, inputs [][]u128.U128, workers int) {
	p.g.BatchForwardInto(dst, inputs, workers)
}

// BatchInverse runs the inverse transform over every input in parallel.
func (p *Plan) BatchInverse(inputs [][]u128.U128, workers int) [][]u128.U128 {
	return p.g.BatchInverse(inputs, workers)
}

// BatchInverseInto is BatchInverse with caller-provided destinations.
func (p *Plan) BatchInverseInto(dst, inputs [][]u128.U128, workers int) {
	p.g.BatchInverseInto(dst, inputs, workers)
}

// BatchPolyMulNegacyclic multiplies pairs[i][0] * pairs[i][1] in
// Z_q[x]/(x^n + 1) for every pair, in parallel.
func (p *Plan) BatchPolyMulNegacyclic(pairs [][2][]u128.U128, workers int) [][]u128.U128 {
	return p.g.BatchPolyMulNegacyclic(pairs, workers)
}

// BatchPolyMulNegacyclicInto is BatchPolyMulNegacyclic with
// caller-provided destinations.
func (p *Plan) BatchPolyMulNegacyclicInto(dst [][]u128.U128, pairs [][2][]u128.U128, workers int) {
	p.g.BatchPolyMulNegacyclicInto(dst, pairs, workers)
}
