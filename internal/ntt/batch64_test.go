package ntt

import (
	"math/rand"
	"runtime"
	"testing"

	"mqxgo/internal/modmath"
)

// Plan64 batch API regression tests, mirroring the 128-bit suite in
// engine_test.go so the 64-bit path is exercised under -race too (the
// raceEnabled gate in race_on_test.go / race_off_test.go skips only the
// allocation assertions, which race instrumentation breaks by design).

func testPlan64(t *testing.T, n int) *Plan64 {
	t.Helper()
	ps, err := modmath.FindNTTPrimes64(60, uint64(2*n), 1)
	if err != nil {
		t.Fatal(err)
	}
	return MustPlan64(modmath.MustModulus64(ps[0]), n)
}

func randPoly64(r *rand.Rand, q uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64() % q
	}
	return out
}

func TestBatch64MatchesSequentialAcrossWorkerCounts(t *testing.T) {
	const n, batch = 1 << 7, 37 // deliberately not a multiple of the worker counts
	p := testPlan64(t, n)
	r := rand.New(rand.NewSource(71))
	inputs := make([][]uint64, batch)
	pairs := make([][2][]uint64, batch)
	for i := range inputs {
		inputs[i] = randPoly64(r, p.Mod.Q, n)
		pairs[i] = [2][]uint64{randPoly64(r, p.Mod.Q, n), randPoly64(r, p.Mod.Q, n)}
	}
	wantF := make([][]uint64, batch)
	wantM := make([][]uint64, batch)
	for i := range inputs {
		wantF[i] = p.Forward(inputs[i])
		wantM[i] = p.PolyMulNegacyclic(pairs[i][0], pairs[i][1])
	}
	for _, workers := range []int{0, 1, 3, runtime.GOMAXPROCS(0)} {
		gotF := p.BatchForward(inputs, workers)
		gotM := p.BatchPolyMulNegacyclic(pairs, workers)
		for i := range wantF {
			for j := range wantF[i] {
				if gotF[i][j] != wantF[i][j] {
					t.Fatalf("workers=%d: BatchForward[%d][%d] mismatch", workers, i, j)
				}
				if gotM[i][j] != wantM[i][j] {
					t.Fatalf("workers=%d: BatchPolyMul[%d][%d] mismatch", workers, i, j)
				}
			}
		}
		gotI := p.BatchInverse(gotF, workers)
		for i := range inputs {
			for j := range inputs[i] {
				if gotI[i][j] != inputs[i][j] {
					t.Fatalf("workers=%d: BatchInverse[%d][%d] did not round-trip", workers, i, j)
				}
			}
		}
	}
}

func TestBatch64IntoMatchesBatch(t *testing.T) {
	const n, batch = 1 << 6, 9
	p := testPlan64(t, n)
	r := rand.New(rand.NewSource(72))
	inputs := make([][]uint64, batch)
	dsts := make([][]uint64, batch)
	for i := range inputs {
		inputs[i] = randPoly64(r, p.Mod.Q, n)
		dsts[i] = make([]uint64, n)
	}
	p.BatchForwardInto(dsts, inputs, 3)
	for i := range inputs {
		want := p.Forward(inputs[i])
		for j := range want {
			if dsts[i][j] != want[j] {
				t.Fatalf("BatchForwardInto[%d][%d] mismatch", i, j)
			}
		}
	}
	p.BatchInverseInto(dsts, dsts, 3)
	for i := range inputs {
		for j := range inputs[i] {
			if dsts[i][j] != inputs[i][j] {
				t.Fatalf("BatchInverseInto[%d][%d] did not round-trip", i, j)
			}
		}
	}

	pairs := make([][2][]uint64, batch)
	for i := range pairs {
		pairs[i] = [2][]uint64{randPoly64(r, p.Mod.Q, n), randPoly64(r, p.Mod.Q, n)}
	}
	p.BatchPolyMulNegacyclicInto(dsts, pairs, 2)
	for i := range pairs {
		want := p.PolyMulNegacyclic(pairs[i][0], pairs[i][1])
		for j := range want {
			if dsts[i][j] != want[j] {
				t.Fatalf("BatchPolyMulNegacyclicInto[%d][%d] mismatch", i, j)
			}
		}
	}
}

// TestBatch64IntoAllocsBounded mirrors TestBatchIntoAllocsBounded: the
// 64-bit batch dispatch must stay at a handful of fixed allocations per
// call, not O(batch) buffers.
func TestBatch64IntoAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const n, batch = 1 << 8, 32
	p := testPlan64(t, n)
	r := rand.New(rand.NewSource(73))
	inputs := make([][]uint64, batch)
	dsts := make([][]uint64, batch)
	for i := range inputs {
		inputs[i] = randPoly64(r, p.Mod.Q, n)
		dsts[i] = make([]uint64, n)
	}
	workers := runtime.GOMAXPROCS(0)
	p.BatchForwardInto(dsts, inputs, workers) // warm pool + scratch
	a := testing.AllocsPerRun(10, func() { p.BatchForwardInto(dsts, inputs, workers) })
	if limit := float64(4*workers + 8); a > limit {
		t.Errorf("Plan64.BatchForwardInto allocates %.1f per run, want <= %.0f", a, limit)
	}
}
