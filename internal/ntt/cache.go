package ntt

import (
	"sync"

	"mqxgo/internal/modmath"
)

// Process-wide plan caches. Building a plan costs O(N log N) modular
// multiplications for the stage tables; entry points that each construct
// their own context (cmd/*, examples/*, benchmarks) were rebuilding
// identical tables. Plans are immutable after construction and safe for
// concurrent use, so one instance per (q, n, algorithm) serves the whole
// process. The 128-bit key includes the modulus's multiplication
// algorithm so a Karatsuba-configured context never receives a plan
// whose arithmetic context runs Schoolbook (the tables are identical;
// the transform-time Mul dispatch is not).
//
// Entries are retained for the life of the process — the expected
// workload reuses a handful of (q, n) pairs, and twiddle tables for
// those must stay resident for the hot path anyway. Long-running
// processes that churn through many distinct parameter sets can call
// ResetPlanCaches between phases.

type planKey struct {
	qHi, qLo uint64
	n        int
	alg      modmath.MulAlgorithm
}

var (
	plans128 sync.Map // planKey -> *Plan
	plans64  sync.Map // planKey -> *Plan64
)

// CachedPlan returns the process-wide shared plan for (mod.Q, n), building
// it on first use.
func CachedPlan(mod *modmath.Modulus128, n int) (*Plan, error) {
	k := planKey{qHi: mod.Q.Hi, qLo: mod.Q.Lo, n: n, alg: mod.Alg}
	if v, ok := plans128.Load(k); ok {
		return v.(*Plan), nil
	}
	p, err := NewPlan(mod, n)
	if err != nil {
		return nil, err
	}
	v, _ := plans128.LoadOrStore(k, p)
	return v.(*Plan), nil
}

// CachedPlan64 returns the process-wide shared 64-bit plan for (mod.Q, n),
// building it on first use.
func CachedPlan64(mod *modmath.Modulus64, n int) (*Plan64, error) {
	k := planKey{qLo: mod.Q, n: n}
	if v, ok := plans64.Load(k); ok {
		return v.(*Plan64), nil
	}
	p, err := NewPlan64(mod, n)
	if err != nil {
		return nil, err
	}
	v, _ := plans64.LoadOrStore(k, p)
	return v.(*Plan64), nil
}

// ResetPlanCaches drops every cached plan, releasing their twiddle tables
// to the garbage collector. Plans already held by callers stay valid.
func ResetPlanCaches() {
	plans128.Clear()
	plans64.Clear()
}
