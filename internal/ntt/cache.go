package ntt

import (
	"mqxgo/internal/modmath"
	"mqxgo/internal/ring"
)

// Process-wide plan caching for the compatibility wrappers. The cache
// itself — one sync.Map keyed by (modulus fingerprint, n) — lives in
// internal/ring; this file only supplies the wrapper-level fingerprint
// tags, chosen above ring.TagExternalBase so a cached wrapper never
// collides with a generic plan cached for the same modulus. The 128-bit
// tag folds in the modulus's multiplication algorithm so a
// Karatsuba-configured context never receives a plan whose arithmetic
// runs Schoolbook (the tables are identical; the transform-time Mul
// dispatch is not).

const (
	tagWrapper128 = ring.TagExternalBase + 0
	tagWrapper64  = ring.TagExternalBase + 1
)

// CachedPlan returns the process-wide shared plan for (mod.Q, n), building
// it on first use.
func CachedPlan(mod *modmath.Modulus128, n int) (*Plan, error) {
	fp := ring.Fingerprint{
		QHi: mod.Q.Hi,
		QLo: mod.Q.Lo,
		Tag: tagWrapper128 | uint32(mod.Alg)<<16,
	}
	v, err := ring.CacheLoadOrBuild(fp, n, func() (any, error) { return NewPlan(mod, n) })
	if err != nil {
		return nil, err
	}
	return v.(*Plan), nil
}

// CachedPlan64 returns the process-wide shared 64-bit plan for (mod.Q, n),
// building it on first use.
func CachedPlan64(mod *modmath.Modulus64, n int) (*Plan64, error) {
	fp := ring.Fingerprint{QLo: mod.Q, Tag: tagWrapper64}
	v, err := ring.CacheLoadOrBuild(fp, n, func() (any, error) { return NewPlan64(mod, n) })
	if err != nil {
		return nil, err
	}
	return v.(*Plan64), nil
}

// ResetPlanCaches drops every cached plan, releasing their twiddle tables
// to the garbage collector. Plans already held by callers stay valid.
func ResetPlanCaches() {
	ring.ResetPlanCache()
}
