package ntt

import (
	"mqxgo/internal/u128"
)

// Zero-steady-state-allocation transform engine. The destination-passing
// APIs here (ForwardInto, InverseInto, PolyMulNegacyclicInto) draw their
// ping-pong buffers from the plan's sync.Pool, read twiddles through
// bounds-hoisted SoA word slices instead of per-element Vector.At calls,
// and fold the inverse transform's 1/N scale into its last stage. The
// value-returning APIs in native.go are thin allocating wrappers.

// nttScratch is one ping-pong buffer pair, pooled per plan.
type nttScratch struct {
	a, b []u128.U128
}

func (p *Plan) getScratch() *nttScratch  { return p.scratch.Get().(*nttScratch) }
func (p *Plan) putScratch(s *nttScratch) { p.scratch.Put(s) }

// ForwardInto computes the forward NTT of x (natural order) into dst
// (bit-reversed order). dst and x must both have length N; dst may alias x
// for an in-place transform. Steady-state it allocates nothing.
func (p *Plan) ForwardInto(dst, x []u128.U128) {
	p.checkLen(len(dst))
	p.checkLen(len(x))
	sc := p.getScratch()
	p.forwardStages(dst, x, sc)
	p.putScratch(sc)
}

// InverseInto computes the inverse NTT of y (bit-reversed order) into dst
// (natural order), with the 1/N scale folded into the final stage. dst may
// alias y. Steady-state it allocates nothing.
func (p *Plan) InverseInto(dst, y []u128.U128) {
	p.checkLen(len(dst))
	p.checkLen(len(y))
	sc := p.getScratch()
	p.inverseStages(dst, y, sc, true)
	p.putScratch(sc)
}

// PolyMulNegacyclicInto computes dst = a*b in Z_q[x]/(x^n + 1) via the
// twisted NTT. dst may alias a or b. Steady-state it allocates nothing.
func (p *Plan) PolyMulNegacyclicInto(dst, a, b []u128.U128) {
	p.checkLen(len(dst))
	p.checkLen(len(a))
	p.checkLen(len(b))
	poly := p.getScratch()
	ping := p.getScratch()
	p.polyMulNegacyclicScratch(dst, a, b, poly, ping)
	p.putScratch(ping)
	p.putScratch(poly)
}

// forwardStages runs the constant-geometry forward dataflow: stage 0 reads
// x, intermediate stages ping-pong between the scratch buffers, and the
// final stage writes dst. Safe for dst aliasing x because x is only read
// by stage 0 (and the single-stage N=2 case reads both inputs before
// writing).
func (p *Plan) forwardStages(dst, x []u128.U128, sc *nttScratch) {
	mod := p.Mod
	half := p.N >> 1
	src := x
	for s := 0; s < p.M; s++ {
		out := sc.a
		if s == p.M-1 {
			out = dst
		} else if s&1 == 1 {
			out = sc.b
		}
		twHi, twLo := p.FwdTw[s].Raw(half)
		lo := src[:half]
		hi := src[half:p.N]
		o := out[:p.N]
		for i := range twHi {
			a, b := lo[i], hi[i]
			d := mod.Sub(a, b)
			o[2*i] = mod.Add(a, b)
			o[2*i+1] = mod.Mul(d, u128.U128{Hi: twHi[i], Lo: twLo[i]})
		}
		src = out
	}
}

// inverseStages runs the inverse dataflow (stages M-1 down to 0). When
// scale is true the 1/N factor is folded into stage 0: that stage uses the
// pre-scaled twiddle table and multiplies the even input by N^-1, saving
// the separate N-element scaling pass. When scale is false the caller
// folds 1/N elsewhere (the negacyclic untwist table already carries it).
func (p *Plan) inverseStages(dst, y []u128.U128, sc *nttScratch, scale bool) {
	mod := p.Mod
	half := p.N >> 1
	src := y
	k := 0 // execution index: stage s runs as the k-th pass
	for s := p.M - 1; s >= 0; s-- {
		out := sc.a
		if k == p.M-1 {
			out = dst
		} else if k&1 == 1 {
			out = sc.b
		}
		tw := p.InvTw[s]
		if s == 0 && scale {
			tw = p.invTw0Scaled
		}
		twHi, twLo := tw.Raw(half)
		in := src[:p.N]
		oLo := out[:half]
		oHi := out[half:p.N]
		if s == 0 && scale {
			nInv := p.NInv
			for i := range twHi {
				e, o := in[2*i], in[2*i+1]
				t := mod.Mul(o, u128.U128{Hi: twHi[i], Lo: twLo[i]}) // twiddle * N^-1 folded
				es := mod.Mul(e, nInv)
				oLo[i] = mod.Add(es, t)
				oHi[i] = mod.Sub(es, t)
			}
		} else {
			for i := range twHi {
				e, o := in[2*i], in[2*i+1]
				t := mod.Mul(o, u128.U128{Hi: twHi[i], Lo: twLo[i]})
				oLo[i] = mod.Add(e, t)
				oHi[i] = mod.Sub(e, t)
			}
		}
		src = out
		k++
	}
}

// polyMulNegacyclicScratch is PolyMulNegacyclicInto with caller-provided
// scratch, so batch workers can reuse one scratch set across many
// products. poly holds the twisted operands; ping holds the transform
// ping-pong buffers.
func (p *Plan) polyMulNegacyclicScratch(dst, a, b []u128.U128, poly, ping *nttScratch) {
	mod := p.Mod
	at, bt := poly.a, poly.b
	twHi, twLo := p.Twist.Raw(p.N)
	for j := range twHi {
		w := u128.U128{Hi: twHi[j], Lo: twLo[j]}
		at[j] = mod.Mul(a[j], w)
		bt[j] = mod.Mul(b[j], w)
	}
	p.forwardStages(at, at, ping)
	p.forwardStages(bt, bt, ping)
	for j := range at {
		at[j] = mod.Mul(at[j], bt[j])
	}
	p.inverseStages(at, at, ping, false)
	utHi, utLo := p.Untwist.Raw(p.N)
	for j := range utHi {
		dst[j] = mod.Mul(at[j], u128.U128{Hi: utHi[j], Lo: utLo[j]}) // psi^-j * N^-1
	}
}
