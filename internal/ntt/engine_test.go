package ntt

import (
	"math/rand"
	"runtime"
	"testing"

	"mqxgo/internal/modmath"
	"mqxgo/internal/u128"
)

// --- Into-API correctness ---

func TestForwardIntoMatchesReference(t *testing.T) {
	mod := testMod(t)
	r := rand.New(rand.NewSource(51))
	for _, n := range []int{2, 4, 8, 16, 64, 256, 1024} {
		p := MustPlan(mod, n)
		x := randPoly(r, mod, n)
		got := make([]u128.U128, n)
		p.ForwardInto(got, x)
		want := Reference(mod, p.Omega, x)
		for i := 0; i < n; i++ {
			if !got[i].Equal(want[BitReverse(i, p.M)]) {
				t.Fatalf("n=%d: output %d = %s, want %s", n, i, got[i], want[BitReverse(i, p.M)])
			}
		}
	}
}

func TestIntoRoundTrip(t *testing.T) {
	mod := testMod(t)
	r := rand.New(rand.NewSource(52))
	for _, n := range []int{2, 8, 32, 128, 1024} {
		p := MustPlan(mod, n)
		x := randPoly(r, mod, n)
		f := make([]u128.U128, n)
		back := make([]u128.U128, n)
		p.ForwardInto(f, x)
		p.InverseInto(back, f)
		for i := range x {
			if !back[i].Equal(x[i]) {
				t.Fatalf("n=%d: round trip failed at %d: got %s want %s", n, i, back[i], x[i])
			}
		}
	}
}

// TestIntoInPlaceAliasing checks that dst may alias the input for every
// Into API.
func TestIntoInPlaceAliasing(t *testing.T) {
	mod := testMod(t)
	r := rand.New(rand.NewSource(53))
	for _, n := range []int{2, 4, 64, 512} {
		p := MustPlan(mod, n)
		x := randPoly(r, mod, n)

		buf := append([]u128.U128(nil), x...)
		p.ForwardInto(buf, buf)
		want := p.ForwardNative(x)
		for i := range want {
			if !buf[i].Equal(want[i]) {
				t.Fatalf("n=%d: in-place forward differs at %d", n, i)
			}
		}

		p.InverseInto(buf, buf)
		for i := range x {
			if !buf[i].Equal(x[i]) {
				t.Fatalf("n=%d: in-place inverse differs at %d", n, i)
			}
		}

		b := randPoly(r, mod, n)
		wantMul := p.PolyMulNegacyclic(x, b)
		got := append([]u128.U128(nil), x...)
		p.PolyMulNegacyclicInto(got, got, b)
		for i := range wantMul {
			if !got[i].Equal(wantMul[i]) {
				t.Fatalf("n=%d: aliased polymul differs at %d", n, i)
			}
		}
	}
}

func TestPlan64IntoMatchesWrappers(t *testing.T) {
	ps, err := modmath.FindNTTPrimes64(60, 1<<9, 1)
	if err != nil {
		t.Fatal(err)
	}
	mod := modmath.MustModulus64(ps[0])
	r := rand.New(rand.NewSource(54))
	for _, n := range []int{2, 8, 64, 256} {
		p := MustPlan64(mod, n)
		x := make([]uint64, n)
		b := make([]uint64, n)
		for i := range x {
			x[i] = r.Uint64() % mod.Q
			b[i] = r.Uint64() % mod.Q
		}
		f := make([]uint64, n)
		p.ForwardInto(f, x)
		wantF := p.Forward(x)
		for i := range f {
			if f[i] != wantF[i] {
				t.Fatalf("n=%d: ForwardInto differs at %d", n, i)
			}
		}
		back := make([]uint64, n)
		p.InverseInto(back, f)
		for i := range back {
			if back[i] != x[i] {
				t.Fatalf("n=%d: InverseInto round trip failed at %d", n, i)
			}
		}
		// In place too.
		buf := append([]uint64(nil), x...)
		p.ForwardInto(buf, buf)
		p.InverseInto(buf, buf)
		for i := range buf {
			if buf[i] != x[i] {
				t.Fatalf("n=%d: in-place 64-bit round trip failed at %d", n, i)
			}
		}
		got := make([]uint64, n)
		p.PolyMulNegacyclicInto(got, x, b)
		want := p.PolyMulNegacyclic(x, b)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: PolyMulNegacyclicInto differs at %d", n, i)
			}
		}
	}
}

// --- Allocation regression (the PR's acceptance criterion) ---

func TestIntoAPIsDoNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	mod := testMod(t)
	r := rand.New(rand.NewSource(55))
	const n = 1 << 10
	p := MustPlan(mod, n)
	x := randPoly(r, mod, n)
	b := randPoly(r, mod, n)
	dst := make([]u128.U128, n)

	// Warm the scratch pool so the measured runs are steady state.
	p.ForwardInto(dst, x)
	p.PolyMulNegacyclicInto(dst, x, b)

	if a := testing.AllocsPerRun(20, func() { p.ForwardInto(dst, x) }); a != 0 {
		t.Errorf("ForwardInto allocates %.1f per run, want 0", a)
	}
	if a := testing.AllocsPerRun(20, func() { p.InverseInto(dst, x) }); a != 0 {
		t.Errorf("InverseInto allocates %.1f per run, want 0", a)
	}
	if a := testing.AllocsPerRun(20, func() { p.PolyMulNegacyclicInto(dst, x, b) }); a != 0 {
		t.Errorf("PolyMulNegacyclicInto allocates %.1f per run, want 0", a)
	}
}

func TestPlan64IntoAPIsDoNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const n = 1 << 10
	ps, err := modmath.FindNTTPrimes64(60, uint64(2*n), 1)
	if err != nil {
		t.Fatal(err)
	}
	mod := modmath.MustModulus64(ps[0])
	p := MustPlan64(mod, n)
	r := rand.New(rand.NewSource(56))
	x := make([]uint64, n)
	b := make([]uint64, n)
	for i := range x {
		x[i] = r.Uint64() % mod.Q
		b[i] = r.Uint64() % mod.Q
	}
	dst := make([]uint64, n)
	p.ForwardInto(dst, x)
	p.PolyMulNegacyclicInto(dst, x, b)

	if a := testing.AllocsPerRun(20, func() { p.ForwardInto(dst, x) }); a != 0 {
		t.Errorf("Plan64.ForwardInto allocates %.1f per run, want 0", a)
	}
	if a := testing.AllocsPerRun(20, func() { p.InverseInto(dst, x) }); a != 0 {
		t.Errorf("Plan64.InverseInto allocates %.1f per run, want 0", a)
	}
	if a := testing.AllocsPerRun(20, func() { p.PolyMulNegacyclicInto(dst, x, b) }); a != 0 {
		t.Errorf("Plan64.PolyMulNegacyclicInto allocates %.1f per run, want 0", a)
	}
}

// TestBatchIntoAllocsBounded asserts the batch dispatch cost stays at a
// handful of fixed allocations (closures and WaitGroup bookkeeping), not
// O(batch) buffers.
func TestBatchIntoAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	mod := testMod(t)
	r := rand.New(rand.NewSource(57))
	const n, batch = 1 << 8, 32
	p := MustPlan(mod, n)
	inputs := make([][]u128.U128, batch)
	dsts := make([][]u128.U128, batch)
	for i := range inputs {
		inputs[i] = randPoly(r, mod, n)
		dsts[i] = make([]u128.U128, n)
	}
	workers := runtime.GOMAXPROCS(0)
	p.BatchForwardInto(dsts, inputs, workers) // warm pool + scratch
	a := testing.AllocsPerRun(10, func() { p.BatchForwardInto(dsts, inputs, workers) })
	// One closure per dispatched chunk plus small fixed bookkeeping.
	if limit := float64(4*workers + 8); a > limit {
		t.Errorf("BatchForwardInto allocates %.1f per run, want <= %.0f", a, limit)
	}
}

// --- Batch correctness across worker counts (satellite regression) ---

func TestBatchMatchesSequentialAcrossWorkerCounts(t *testing.T) {
	mod := testMod(t)
	r := rand.New(rand.NewSource(58))
	const n, batch = 1 << 7, 37 // deliberately not a multiple of the worker counts
	p := MustPlan(mod, n)
	inputs := make([][]u128.U128, batch)
	pairs := make([][2][]u128.U128, batch)
	for i := range inputs {
		inputs[i] = randPoly(r, mod, n)
		pairs[i] = [2][]u128.U128{randPoly(r, mod, n), randPoly(r, mod, n)}
	}
	wantF := make([][]u128.U128, batch)
	wantM := make([][]u128.U128, batch)
	for i := range inputs {
		wantF[i] = p.ForwardNative(inputs[i])
		wantM[i] = p.PolyMulNegacyclic(pairs[i][0], pairs[i][1])
	}
	for _, workers := range []int{0, 1, 3, runtime.GOMAXPROCS(0)} {
		gotF := p.BatchForward(inputs, workers)
		gotM := p.BatchPolyMulNegacyclic(pairs, workers)
		for i := range wantF {
			for j := range wantF[i] {
				if !gotF[i][j].Equal(wantF[i][j]) {
					t.Fatalf("workers=%d: BatchForward[%d][%d] mismatch", workers, i, j)
				}
				if !gotM[i][j].Equal(wantM[i][j]) {
					t.Fatalf("workers=%d: BatchPolyMul[%d][%d] mismatch", workers, i, j)
				}
			}
		}
		gotI := p.BatchInverse(gotF, workers)
		for i := range inputs {
			for j := range inputs[i] {
				if !gotI[i][j].Equal(inputs[i][j]) {
					t.Fatalf("workers=%d: BatchInverse[%d][%d] did not round-trip", workers, i, j)
				}
			}
		}
	}
}

// --- Plan cache ---

func TestCachedPlanReturnsSharedInstance(t *testing.T) {
	mod := testMod(t)
	p1, err := CachedPlan(mod, 1<<6)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CachedPlan(mod, 1<<6)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("CachedPlan built two plans for the same (q, n)")
	}
	p3, err := CachedPlan(mod, 1<<7)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("CachedPlan shared a plan across sizes")
	}
	pk, err := CachedPlan(mod.WithAlgorithm(modmath.Karatsuba), 1<<6)
	if err != nil {
		t.Fatal(err)
	}
	if pk == p1 {
		t.Error("CachedPlan shared a plan across multiplication algorithms")
	}
	if pk.Mod.Alg != modmath.Karatsuba {
		t.Error("Karatsuba-keyed plan lost its algorithm")
	}

	ps, err := modmath.FindNTTPrimes64(60, 1<<7, 1)
	if err != nil {
		t.Fatal(err)
	}
	mod64 := modmath.MustModulus64(ps[0])
	q1, err := CachedPlan64(mod64, 1<<6)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := CachedPlan64(mod64, 1<<6)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Error("CachedPlan64 built two plans for the same (q, n)")
	}
	if _, err := CachedPlan(mod, 3); err == nil {
		t.Error("CachedPlan accepted a non-power-of-two size")
	}
}
