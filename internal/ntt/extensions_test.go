package ntt

import (
	"math/rand"
	"testing"

	"mqxgo/internal/blas"
	"mqxgo/internal/isa"
	"mqxgo/internal/kernels"
	"mqxgo/internal/u128"
	"mqxgo/internal/vm"
)

func TestInPlaceMatchesConstantGeometry(t *testing.T) {
	mod := testMod(t)
	r := rand.New(rand.NewSource(91))
	for _, n := range []int{2, 4, 16, 128, 1024} {
		p := MustPlan(mod, n)
		x := randPoly(r, mod, n)
		want := p.ForwardNative(x)
		got := append(x[:0:0], x...)
		p.ForwardInPlace(got)
		for i := 0; i < n; i++ {
			if !got[i].Equal(want[i]) {
				t.Fatalf("n=%d: GS in-place differs from CG at %d", n, i)
			}
		}
	}
}

func TestInPlaceRoundTrip(t *testing.T) {
	mod := testMod(t)
	r := rand.New(rand.NewSource(92))
	for _, n := range []int{4, 64, 512} {
		p := MustPlan(mod, n)
		x := randPoly(r, mod, n)
		y := append(x[:0:0], x...)
		p.ForwardInPlace(y)
		p.InverseInPlace(y)
		for i := range x {
			if !y[i].Equal(x[i]) {
				t.Fatalf("n=%d: in-place round trip failed at %d", n, i)
			}
		}
	}
}

func TestInPlaceCrossDataflowRoundTrip(t *testing.T) {
	// Forward with the CG dataflow, inverse with the in-place CT dataflow
	// (and vice versa): the ordering conventions must be interchangeable.
	mod := testMod(t)
	r := rand.New(rand.NewSource(93))
	n := 256
	p := MustPlan(mod, n)
	x := randPoly(r, mod, n)

	y := p.ForwardNative(x)
	z := append(y[:0:0], y...)
	p.InverseInPlace(z)
	for i := range x {
		if !z[i].Equal(x[i]) {
			t.Fatalf("CG forward + CT inverse failed at %d", i)
		}
	}

	w := append(x[:0:0], x...)
	p.ForwardInPlace(w)
	back := p.InverseNative(w)
	for i := range x {
		if !back[i].Equal(x[i]) {
			t.Fatalf("GS forward + CG inverse failed at %d", i)
		}
	}
}

func TestBatchTransforms(t *testing.T) {
	mod := testMod(t)
	r := rand.New(rand.NewSource(94))
	n := 128
	p := MustPlan(mod, n)
	const batch = 9 // deliberately not a multiple of workers
	inputs := make([][]u128.U128, batch)
	for i := range inputs {
		inputs[i] = randPoly(r, mod, n)
	}
	for _, workers := range []int{0, 1, 3, 16} {
		fwd := p.BatchForward(inputs, workers)
		if len(fwd) != batch {
			t.Fatalf("workers=%d: got %d outputs", workers, len(fwd))
		}
		for i := range inputs {
			want := p.ForwardNative(inputs[i])
			for j := 0; j < n; j++ {
				if !fwd[i][j].Equal(want[j]) {
					t.Fatalf("workers=%d: batch forward %d differs at %d", workers, i, j)
				}
			}
		}
		back := p.BatchInverse(fwd, workers)
		for i := range inputs {
			for j := 0; j < n; j++ {
				if !back[i][j].Equal(inputs[i][j]) {
					t.Fatalf("workers=%d: batch round trip %d failed at %d", workers, i, j)
				}
			}
		}
	}

	pairs := make([][2][]u128.U128, 4)
	for i := range pairs {
		pairs[i] = [2][]u128.U128{randPoly(r, mod, n), randPoly(r, mod, n)}
	}
	prods := p.BatchPolyMulNegacyclic(pairs, 2)
	for i := range pairs {
		want := p.PolyMulNegacyclic(pairs[i][0], pairs[i][1])
		for j := 0; j < n; j++ {
			if !prods[i][j].Equal(want[j]) {
				t.Fatalf("batch polymul %d differs at %d", i, j)
			}
		}
	}
}

func TestPolyMulNegacyclicVMAllLevels(t *testing.T) {
	mod := testMod(t)
	r := rand.New(rand.NewSource(95))
	n := 64
	p := MustPlan(mod, n)
	a := randPoly(r, mod, n)
	b := randPoly(r, mod, n)
	want := p.PolyMulNegacyclic(a, b)
	av, bv := blas.FromSlice(a), blas.FromSlice(b)

	check := func(level string, got blas.Vector, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if !got.At(i).Equal(want[i]) {
				t.Fatalf("%s: VM polymul differs at %d", level, i)
			}
		}
	}

	{
		m := vm.New(vm.TraceOff)
		bk := kernels.NewBScalar(m)
		d := kernels.NewDW[vm.S, vm.F](bk, mod)
		m.BeginLoop()
		got, err := PolyMulNegacyclicVM(d, p, av, bv)
		check("scalar", got, err)
	}
	{
		m := vm.New(vm.TraceOff)
		bk := kernels.NewB256(m)
		d := kernels.NewDW[vm.V4, vm.V4](bk, mod)
		m.BeginLoop()
		got, err := PolyMulNegacyclicVM(d, p, av, bv)
		check("avx2", got, err)
	}
	for _, level := range []isa.Level{isa.LevelAVX512, isa.LevelMQX} {
		m := vm.New(vm.TraceOff)
		bk := kernels.NewB512(m, level)
		d := kernels.NewDW[vm.V, vm.M](bk, mod)
		m.BeginLoop()
		got, err := PolyMulNegacyclicVM(d, p, av, bv)
		check(level.String(), got, err)
	}

	// Length validation.
	m := vm.New(vm.TraceOff)
	bk := kernels.NewB512(m, isa.LevelAVX512)
	d := kernels.NewDW[vm.V, vm.M](bk, mod)
	m.BeginLoop()
	if _, err := PolyMulNegacyclicVM(d, p, blas.NewVector(8), bv); err == nil {
		t.Error("expected length error")
	}
}
