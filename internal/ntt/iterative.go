package ntt

import (
	"mqxgo/internal/u128"
)

// In-place iterative dataflows. The paper's SIMD implementations use the
// constant-geometry Pease dataflow (contiguous loads, out-of-place
// ping-pong buffers); classic in-place Gentleman-Sande / Cooley-Tukey
// iterations are what scalar libraries typically ship. Both compute the
// same transform with the same ordering convention (natural in,
// bit-reversed out), so they cross-check each other — see
// TestInPlaceMatchesConstantGeometry — and downstream users can pick the
// in-place variant when memory is tight.

// ForwardInPlace computes the forward NTT with the Gentleman-Sande
// (decimation-in-frequency) dataflow, overwriting x. Input natural order,
// output bit-reversed — identical to ForwardNative's convention.
func (p *Plan) ForwardInPlace(x []u128.U128) {
	p.checkLen(len(x))
	mod := p.Mod
	// Stage s has blocks of size n/2^s with butterfly distance half that.
	for s := 0; s < p.M; s++ {
		blockSize := p.N >> uint(s)
		half := blockSize / 2
		for blockStart := 0; blockStart < p.N; blockStart += blockSize {
			for j := 0; j < half; j++ {
				// The GS stage-s twiddle for in-block offset j is
				// omega^(j * 2^s); the constant-geometry stage table
				// stores exactly that value at index j<<s.
				w := p.FwdTw[s].At(j << uint(s))
				a := x[blockStart+j]
				b := x[blockStart+j+half]
				x[blockStart+j] = mod.Add(a, b)
				x[blockStart+j+half] = mod.Mul(mod.Sub(a, b), w)
			}
		}
	}
}

// InverseInPlace computes the inverse NTT with the Cooley-Tukey
// (decimation-in-time) dataflow, overwriting y. Input bit-reversed (the
// ForwardInPlace convention), output natural order, 1/N applied.
func (p *Plan) InverseInPlace(y []u128.U128) {
	p.checkLen(len(y))
	mod := p.Mod
	for s := p.M - 1; s >= 0; s-- {
		blockSize := p.N >> uint(s)
		half := blockSize / 2
		for blockStart := 0; blockStart < p.N; blockStart += blockSize {
			for j := 0; j < half; j++ {
				w := p.InvTw[s].At(j << uint(s))
				a := y[blockStart+j]
				b := mod.Mul(y[blockStart+j+half], w)
				y[blockStart+j] = mod.Add(a, b)
				y[blockStart+j+half] = mod.Sub(a, b)
			}
		}
	}
	for i := range y {
		y[i] = mod.Mul(y[i], p.NInv)
	}
}
