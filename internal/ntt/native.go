package ntt

import (
	"mqxgo/internal/u128"
)

// Arith abstracts 128-bit modular arithmetic so baseline backends (the
// division-based "generic" backend, standing in for OpenFHE's built-in
// math backend) can drive the same transform dataflow.
type Arith interface {
	Add(a, b u128.U128) u128.U128
	Sub(a, b u128.U128) u128.U128
	Mul(a, b u128.U128) u128.U128
}

// ForwardWith computes the forward NTT using the supplied arithmetic
// backend instead of the plan's Barrett context. Twiddle tables are shared
// with the optimized path (they are plain residues).
func (p *Plan) ForwardWith(ar Arith, x []u128.U128) []u128.U128 {
	p.checkLen(len(x))
	half := p.N / 2
	src := append([]u128.U128(nil), x...)
	dst := make([]u128.U128, p.N)
	for s := 0; s < p.M; s++ {
		tw := p.FwdTw[s]
		for i := 0; i < half; i++ {
			a, b := src[i], src[i+half]
			dst[2*i] = ar.Add(a, b)
			dst[2*i+1] = ar.Mul(ar.Sub(a, b), tw.At(i))
		}
		src, dst = dst, src
	}
	return src
}

// ForwardNative computes the forward NTT of x (natural order) into
// bit-reversed order. It is an allocating wrapper over ForwardInto, the
// library's measured scalar implementation.
func (p *Plan) ForwardNative(x []u128.U128) []u128.U128 {
	out := make([]u128.U128, p.N)
	p.ForwardInto(out, x)
	return out
}

// InverseNative computes the inverse NTT of y (bit-reversed order) back to
// natural order, including the 1/N scaling. It is an allocating wrapper
// over InverseInto.
func (p *Plan) InverseNative(y []u128.U128) []u128.U128 {
	out := make([]u128.U128, p.N)
	p.InverseInto(out, y)
	return out
}

// PolyMulNegacyclic multiplies two polynomials in Z_q[x]/(x^n + 1) using
// the twisted (negacyclic) NTT: pre-twist by psi^j, transform, point-wise
// multiply, inverse transform, and untwist by psi^-j (with 1/N folded into
// the untwist table). It is an allocating wrapper over
// PolyMulNegacyclicInto.
func (p *Plan) PolyMulNegacyclic(a, b []u128.U128) []u128.U128 {
	out := make([]u128.U128, p.N)
	p.PolyMulNegacyclicInto(out, a, b)
	return out
}

// PolyMulCyclic multiplies two polynomials in Z_q[x]/(x^n - 1) by plain
// NTT convolution.
func (p *Plan) PolyMulCyclic(a, b []u128.U128) []u128.U128 {
	out := make([]u128.U128, p.N)
	p.g.PolyMulCyclicInto(out, a, b)
	return out
}

func (p *Plan) checkLen(n int) {
	if n != p.N {
		panic("ntt: input length does not match plan size")
	}
}
