package ntt

import (
	"mqxgo/internal/u128"
)

// Arith abstracts 128-bit modular arithmetic so baseline backends (the
// division-based "generic" backend, standing in for OpenFHE's built-in
// math backend) can drive the same transform dataflow.
type Arith interface {
	Add(a, b u128.U128) u128.U128
	Sub(a, b u128.U128) u128.U128
	Mul(a, b u128.U128) u128.U128
}

// ForwardWith computes the forward NTT using the supplied arithmetic
// backend instead of the plan's Barrett context. Twiddle tables are shared
// with the optimized path (they are plain residues).
func (p *Plan) ForwardWith(ar Arith, x []u128.U128) []u128.U128 {
	p.checkLen(len(x))
	half := p.N / 2
	src := append([]u128.U128(nil), x...)
	dst := make([]u128.U128, p.N)
	for s := 0; s < p.M; s++ {
		tw := p.FwdTw[s]
		for i := 0; i < half; i++ {
			a, b := src[i], src[i+half]
			dst[2*i] = ar.Add(a, b)
			dst[2*i+1] = ar.Mul(ar.Sub(a, b), tw.At(i))
		}
		src, dst = dst, src
	}
	return src
}

// ForwardNative computes the forward NTT of x (natural order) into
// bit-reversed order, using the plan's constant-geometry dataflow in plain
// Go. This is the library's measured scalar implementation.
func (p *Plan) ForwardNative(x []u128.U128) []u128.U128 {
	p.checkLen(len(x))
	mod := p.Mod
	half := p.N / 2
	src := make([]u128.U128, p.N)
	copy(src, x)
	dst := make([]u128.U128, p.N)
	for s := 0; s < p.M; s++ {
		tw := p.FwdTw[s]
		for i := 0; i < half; i++ {
			a, b := src[i], src[i+half]
			w := tw.At(i)
			dst[2*i] = mod.Add(a, b)
			dst[2*i+1] = mod.Mul(mod.Sub(a, b), w)
		}
		src, dst = dst, src
	}
	return src
}

// InverseNative computes the inverse NTT of y (bit-reversed order) back to
// natural order, including the 1/N scaling.
func (p *Plan) InverseNative(y []u128.U128) []u128.U128 {
	p.checkLen(len(y))
	mod := p.Mod
	half := p.N / 2
	src := make([]u128.U128, p.N)
	copy(src, y)
	dst := make([]u128.U128, p.N)
	for s := p.M - 1; s >= 0; s-- {
		tw := p.InvTw[s]
		for i := 0; i < half; i++ {
			e, o := src[2*i], src[2*i+1]
			t := mod.Mul(o, tw.At(i))
			dst[i] = mod.Add(e, t)
			dst[i+half] = mod.Sub(e, t)
		}
		src, dst = dst, src
	}
	out := make([]u128.U128, p.N)
	for i := range src {
		out[i] = mod.Mul(src[i], p.NInv)
	}
	return out
}

// PolyMulNegacyclic multiplies two polynomials in Z_q[x]/(x^n + 1) using
// the twisted (negacyclic) NTT: pre-twist by psi^j, transform, point-wise
// multiply, inverse transform, and untwist by psi^-j (with 1/N folded into
// the untwist table).
func (p *Plan) PolyMulNegacyclic(a, b []u128.U128) []u128.U128 {
	p.checkLen(len(a))
	p.checkLen(len(b))
	mod := p.Mod
	at := make([]u128.U128, p.N)
	bt := make([]u128.U128, p.N)
	for j := 0; j < p.N; j++ {
		w := p.Twist.At(j)
		at[j] = mod.Mul(a[j], w)
		bt[j] = mod.Mul(b[j], w)
	}
	af := p.ForwardNative(at)
	bf := p.ForwardNative(bt)
	cf := make([]u128.U128, p.N)
	for j := 0; j < p.N; j++ {
		cf[j] = mod.Mul(af[j], bf[j])
	}
	c := p.inverseNoScale(cf)
	for j := 0; j < p.N; j++ {
		c[j] = mod.Mul(c[j], p.Untwist.At(j)) // psi^-j * N^-1
	}
	return c
}

// PolyMulCyclic multiplies two polynomials in Z_q[x]/(x^n - 1) by plain
// NTT convolution.
func (p *Plan) PolyMulCyclic(a, b []u128.U128) []u128.U128 {
	p.checkLen(len(a))
	p.checkLen(len(b))
	mod := p.Mod
	af := p.ForwardNative(a)
	bf := p.ForwardNative(b)
	cf := make([]u128.U128, p.N)
	for j := 0; j < p.N; j++ {
		cf[j] = mod.Mul(af[j], bf[j])
	}
	return p.InverseNative(cf)
}

// inverseNoScale is InverseNative without the final 1/N pass (callers fold
// the scale elsewhere).
func (p *Plan) inverseNoScale(y []u128.U128) []u128.U128 {
	mod := p.Mod
	half := p.N / 2
	src := make([]u128.U128, p.N)
	copy(src, y)
	dst := make([]u128.U128, p.N)
	for s := p.M - 1; s >= 0; s-- {
		tw := p.InvTw[s]
		for i := 0; i < half; i++ {
			e, o := src[2*i], src[2*i+1]
			t := mod.Mul(o, tw.At(i))
			dst[i] = mod.Add(e, t)
			dst[i+half] = mod.Sub(e, t)
		}
		src, dst = dst, src
	}
	return src
}

func (p *Plan) checkLen(n int) {
	if n != p.N {
		panic("ntt: input length does not match plan size")
	}
}
