package ntt

import (
	"fmt"

	"mqxgo/internal/modmath"
)

// Plan64 is the single-word (64-bit) NTT plan used by the residue number
// system substrate (internal/rns): the conventional alternative to 128-bit
// residues that the paper discusses in Sections 1 and 8. Twiddles carry
// Shoup precomputations so the hot loop uses the one-correction
// multiplication.
type Plan64 struct {
	Mod *modmath.Modulus64
	N   int
	M   int

	Omega    uint64
	OmegaInv uint64
	NInv     uint64

	fwdTw    [][]uint64 // per stage, n/2 twiddles
	fwdShoup [][]uint64
	invTw    [][]uint64
	invShoup [][]uint64

	Psi          uint64
	twist        []uint64
	twistShoup   []uint64
	untwist      []uint64 // psi^-j * n^-1
	untwistShoup []uint64
}

// NewPlan64 builds an n-point plan modulo mod.Q; 2n must divide q-1.
func NewPlan64(mod *modmath.Modulus64, n int) (*Plan64, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ntt: size %d is not a power of two >= 2", n)
	}
	m := 0
	for 1<<m < n {
		m++
	}
	psi, err := mod.PrimitiveRootOfUnity64(uint64(2 * n))
	if err != nil {
		return nil, fmt.Errorf("ntt: %w", err)
	}
	omega := mod.Mul(psi, psi)
	p := &Plan64{
		Mod:      mod,
		N:        n,
		M:        m,
		Omega:    omega,
		OmegaInv: mod.Inv(omega),
		NInv:     mod.Inv(uint64(n)),
		Psi:      psi,
	}
	p.build()
	return p, nil
}

// MustPlan64 is NewPlan64 but panics on error.
func MustPlan64(mod *modmath.Modulus64, n int) *Plan64 {
	p, err := NewPlan64(mod, n)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Plan64) build() {
	mod := p.Mod
	half := p.N / 2
	pow := make([]uint64, p.N)
	powInv := make([]uint64, p.N)
	pow[0], powInv[0] = 1, 1
	for j := 1; j < p.N; j++ {
		pow[j] = mod.Mul(pow[j-1], p.Omega)
		powInv[j] = mod.Mul(powInv[j-1], p.OmegaInv)
	}
	p.fwdTw = make([][]uint64, p.M)
	p.fwdShoup = make([][]uint64, p.M)
	p.invTw = make([][]uint64, p.M)
	p.invShoup = make([][]uint64, p.M)
	for s := 0; s < p.M; s++ {
		fw := make([]uint64, half)
		fs := make([]uint64, half)
		iv := make([]uint64, half)
		is := make([]uint64, half)
		for i := 0; i < half; i++ {
			e := (uint64(i) >> uint(s)) << uint(s)
			fw[i] = pow[e]
			fs[i] = mod.ShoupPrecompute(fw[i])
			iv[i] = powInv[e]
			is[i] = mod.ShoupPrecompute(iv[i])
		}
		p.fwdTw[s], p.fwdShoup[s] = fw, fs
		p.invTw[s], p.invShoup[s] = iv, is
	}

	psiInv := mod.Inv(p.Psi)
	p.twist = make([]uint64, p.N)
	p.twistShoup = make([]uint64, p.N)
	p.untwist = make([]uint64, p.N)
	p.untwistShoup = make([]uint64, p.N)
	cur, curInv := uint64(1), p.NInv
	for j := 0; j < p.N; j++ {
		p.twist[j] = cur
		p.twistShoup[j] = mod.ShoupPrecompute(cur)
		p.untwist[j] = curInv
		p.untwistShoup[j] = mod.ShoupPrecompute(curInv)
		cur = mod.Mul(cur, p.Psi)
		curInv = mod.Mul(curInv, psiInv)
	}
}

// Forward computes the forward NTT (natural in, bit-reversed out).
func (p *Plan64) Forward(x []uint64) []uint64 {
	p.checkLen(len(x))
	mod := p.Mod
	half := p.N / 2
	src := append([]uint64(nil), x...)
	dst := make([]uint64, p.N)
	for s := 0; s < p.M; s++ {
		tw, sh := p.fwdTw[s], p.fwdShoup[s]
		for i := 0; i < half; i++ {
			a, b := src[i], src[i+half]
			dst[2*i] = mod.Add(a, b)
			dst[2*i+1] = mod.MulShoup(mod.Sub(a, b), tw[i], sh[i])
		}
		src, dst = dst, src
	}
	return src
}

// Inverse computes the inverse NTT (bit-reversed in, natural out) with the
// 1/N scaling applied.
func (p *Plan64) Inverse(y []uint64) []uint64 {
	out := p.inverseNoScale(y)
	mod := p.Mod
	sh := mod.ShoupPrecompute(p.NInv)
	for i := range out {
		out[i] = mod.MulShoup(out[i], p.NInv, sh)
	}
	return out
}

func (p *Plan64) inverseNoScale(y []uint64) []uint64 {
	p.checkLen(len(y))
	mod := p.Mod
	half := p.N / 2
	src := append([]uint64(nil), y...)
	dst := make([]uint64, p.N)
	for s := p.M - 1; s >= 0; s-- {
		tw, sh := p.invTw[s], p.invShoup[s]
		for i := 0; i < half; i++ {
			e, o := src[2*i], src[2*i+1]
			t := mod.MulShoup(o, tw[i], sh[i])
			dst[i] = mod.Add(e, t)
			dst[i+half] = mod.Sub(e, t)
		}
		src, dst = dst, src
	}
	return src
}

// PolyMulNegacyclic multiplies in Z_q[x]/(x^n + 1) via the twisted NTT.
func (p *Plan64) PolyMulNegacyclic(a, b []uint64) []uint64 {
	p.checkLen(len(a))
	p.checkLen(len(b))
	mod := p.Mod
	at := make([]uint64, p.N)
	bt := make([]uint64, p.N)
	for j := 0; j < p.N; j++ {
		at[j] = mod.MulShoup(a[j], p.twist[j], p.twistShoup[j])
		bt[j] = mod.MulShoup(b[j], p.twist[j], p.twistShoup[j])
	}
	af := p.Forward(at)
	bf := p.Forward(bt)
	for j := 0; j < p.N; j++ {
		af[j] = mod.Mul(af[j], bf[j])
	}
	c := p.inverseNoScale(af)
	for j := 0; j < p.N; j++ {
		c[j] = mod.MulShoup(c[j], p.untwist[j], p.untwistShoup[j])
	}
	return c
}

func (p *Plan64) checkLen(n int) {
	if n != p.N {
		panic("ntt: input length does not match plan size")
	}
}
