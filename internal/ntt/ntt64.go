package ntt

import (
	"fmt"
	"sync"

	"mqxgo/internal/modmath"
)

// Plan64 is the single-word (64-bit) NTT plan used by the residue number
// system substrate (internal/rns): the conventional alternative to 128-bit
// residues that the paper discusses in Sections 1 and 8. Twiddles carry
// Shoup precomputations so the hot loop uses the one-correction
// multiplication.
//
// Like Plan, Plan64 exposes destination-passing APIs (ForwardInto,
// InverseInto, PolyMulNegacyclicInto) that allocate nothing in steady
// state, with the value-returning APIs kept as allocating wrappers. A
// Plan64 is safe for concurrent use once built.
type Plan64 struct {
	Mod *modmath.Modulus64
	N   int
	M   int

	Omega    uint64
	OmegaInv uint64
	NInv     uint64

	fwdTw    [][]uint64 // per stage, n/2 twiddles
	fwdShoup [][]uint64
	invTw    [][]uint64
	invShoup [][]uint64

	// Stage-0 inverse twiddles with N^-1 folded in, plus N^-1's own Shoup
	// constant, so InverseInto scales inside its final stage.
	invTw0Scaled      []uint64
	invTw0ScaledShoup []uint64
	nInvShoup         uint64

	Psi          uint64
	twist        []uint64
	twistShoup   []uint64
	untwist      []uint64 // psi^-j * n^-1
	untwistShoup []uint64

	scratch sync.Pool // of *scratch64
}

// scratch64 is one ping-pong buffer pair for the 64-bit engine.
type scratch64 struct {
	a, b []uint64
}

// NewPlan64 builds an n-point plan modulo mod.Q; 2n must divide q-1.
func NewPlan64(mod *modmath.Modulus64, n int) (*Plan64, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ntt: size %d is not a power of two >= 2", n)
	}
	m := 0
	for 1<<m < n {
		m++
	}
	psi, err := mod.PrimitiveRootOfUnity64(uint64(2 * n))
	if err != nil {
		return nil, fmt.Errorf("ntt: %w", err)
	}
	omega := mod.Mul(psi, psi)
	p := &Plan64{
		Mod:      mod,
		N:        n,
		M:        m,
		Omega:    omega,
		OmegaInv: mod.Inv(omega),
		NInv:     mod.Inv(uint64(n)),
		Psi:      psi,
	}
	p.build()
	p.scratch.New = func() any {
		return &scratch64{a: make([]uint64, n), b: make([]uint64, n)}
	}
	return p, nil
}

// MustPlan64 is NewPlan64 but panics on error.
func MustPlan64(mod *modmath.Modulus64, n int) *Plan64 {
	p, err := NewPlan64(mod, n)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Plan64) build() {
	mod := p.Mod
	half := p.N / 2
	pow := make([]uint64, p.N)
	powInv := make([]uint64, p.N)
	pow[0], powInv[0] = 1, 1
	for j := 1; j < p.N; j++ {
		pow[j] = mod.Mul(pow[j-1], p.Omega)
		powInv[j] = mod.Mul(powInv[j-1], p.OmegaInv)
	}
	p.fwdTw = make([][]uint64, p.M)
	p.fwdShoup = make([][]uint64, p.M)
	p.invTw = make([][]uint64, p.M)
	p.invShoup = make([][]uint64, p.M)
	for s := 0; s < p.M; s++ {
		fw := make([]uint64, half)
		fs := make([]uint64, half)
		iv := make([]uint64, half)
		is := make([]uint64, half)
		for i := 0; i < half; i++ {
			e := (uint64(i) >> uint(s)) << uint(s)
			fw[i] = pow[e]
			fs[i] = mod.ShoupPrecompute(fw[i])
			iv[i] = powInv[e]
			is[i] = mod.ShoupPrecompute(iv[i])
		}
		p.fwdTw[s], p.fwdShoup[s] = fw, fs
		p.invTw[s], p.invShoup[s] = iv, is
	}
	p.invTw0Scaled = make([]uint64, half)
	p.invTw0ScaledShoup = make([]uint64, half)
	for i := 0; i < half; i++ {
		w := mod.Mul(p.invTw[0][i], p.NInv)
		p.invTw0Scaled[i] = w
		p.invTw0ScaledShoup[i] = mod.ShoupPrecompute(w)
	}
	p.nInvShoup = mod.ShoupPrecompute(p.NInv)

	psiInv := mod.Inv(p.Psi)
	p.twist = make([]uint64, p.N)
	p.twistShoup = make([]uint64, p.N)
	p.untwist = make([]uint64, p.N)
	p.untwistShoup = make([]uint64, p.N)
	cur, curInv := uint64(1), p.NInv
	for j := 0; j < p.N; j++ {
		p.twist[j] = cur
		p.twistShoup[j] = mod.ShoupPrecompute(cur)
		p.untwist[j] = curInv
		p.untwistShoup[j] = mod.ShoupPrecompute(curInv)
		cur = mod.Mul(cur, p.Psi)
		curInv = mod.Mul(curInv, psiInv)
	}
}

func (p *Plan64) getScratch() *scratch64  { return p.scratch.Get().(*scratch64) }
func (p *Plan64) putScratch(s *scratch64) { p.scratch.Put(s) }

// ForwardInto computes the forward NTT of x (natural order) into dst
// (bit-reversed order). dst may alias x. Steady-state it allocates
// nothing.
func (p *Plan64) ForwardInto(dst, x []uint64) {
	p.checkLen(len(dst))
	p.checkLen(len(x))
	sc := p.getScratch()
	p.forwardStages(dst, x, sc)
	p.putScratch(sc)
}

// InverseInto computes the inverse NTT of y (bit-reversed order) into dst
// (natural order) with the 1/N scale folded into the final stage. dst may
// alias y. Steady-state it allocates nothing.
func (p *Plan64) InverseInto(dst, y []uint64) {
	p.checkLen(len(dst))
	p.checkLen(len(y))
	sc := p.getScratch()
	p.inverseStages(dst, y, sc, true)
	p.putScratch(sc)
}

// PolyMulNegacyclicInto computes dst = a*b in Z_q[x]/(x^n + 1) via the
// twisted NTT. dst may alias a or b. Steady-state it allocates nothing.
func (p *Plan64) PolyMulNegacyclicInto(dst, a, b []uint64) {
	p.checkLen(len(dst))
	p.checkLen(len(a))
	p.checkLen(len(b))
	mod := p.Mod
	poly := p.getScratch()
	ping := p.getScratch()
	at, bt := poly.a, poly.b
	tw := p.twist[:p.N]
	ts := p.twistShoup[:p.N]
	for j := range tw {
		at[j] = mod.MulShoup(a[j], tw[j], ts[j])
		bt[j] = mod.MulShoup(b[j], tw[j], ts[j])
	}
	p.forwardStages(at, at, ping)
	p.forwardStages(bt, bt, ping)
	for j := range at {
		at[j] = mod.Mul(at[j], bt[j])
	}
	p.inverseStages(at, at, ping, false)
	ut := p.untwist[:p.N]
	us := p.untwistShoup[:p.N]
	for j := range ut {
		dst[j] = mod.MulShoup(at[j], ut[j], us[j]) // psi^-j * n^-1
	}
	p.putScratch(ping)
	p.putScratch(poly)
}

// forwardStages mirrors Plan.forwardStages for single-word residues.
func (p *Plan64) forwardStages(dst, x []uint64, sc *scratch64) {
	mod := p.Mod
	half := p.N >> 1
	src := x
	for s := 0; s < p.M; s++ {
		out := sc.a
		if s == p.M-1 {
			out = dst
		} else if s&1 == 1 {
			out = sc.b
		}
		tw := p.fwdTw[s][:half]
		sh := p.fwdShoup[s][:half]
		lo := src[:half]
		hi := src[half:p.N]
		o := out[:p.N]
		for i := range tw {
			a, b := lo[i], hi[i]
			d := mod.Sub(a, b)
			o[2*i] = mod.Add(a, b)
			o[2*i+1] = mod.MulShoup(d, tw[i], sh[i])
		}
		src = out
	}
}

// inverseStages mirrors Plan.inverseStages; when scale is true the 1/N
// factor rides the pre-scaled stage-0 twiddles.
func (p *Plan64) inverseStages(dst, y []uint64, sc *scratch64, scale bool) {
	mod := p.Mod
	half := p.N >> 1
	src := y
	k := 0
	for s := p.M - 1; s >= 0; s-- {
		out := sc.a
		if k == p.M-1 {
			out = dst
		} else if k&1 == 1 {
			out = sc.b
		}
		tw := p.invTw[s][:half]
		sh := p.invShoup[s][:half]
		if s == 0 && scale {
			tw = p.invTw0Scaled[:half]
			sh = p.invTw0ScaledShoup[:half]
		}
		in := src[:p.N]
		oLo := out[:half]
		oHi := out[half:p.N]
		if s == 0 && scale {
			nInv, nSh := p.NInv, p.nInvShoup
			for i := range tw {
				e, o := in[2*i], in[2*i+1]
				t := mod.MulShoup(o, tw[i], sh[i]) // twiddle * n^-1 folded
				es := mod.MulShoup(e, nInv, nSh)
				oLo[i] = mod.Add(es, t)
				oHi[i] = mod.Sub(es, t)
			}
		} else {
			for i := range tw {
				e, o := in[2*i], in[2*i+1]
				t := mod.MulShoup(o, tw[i], sh[i])
				oLo[i] = mod.Add(e, t)
				oHi[i] = mod.Sub(e, t)
			}
		}
		src = out
		k++
	}
}

// Forward computes the forward NTT (natural in, bit-reversed out). It is
// an allocating wrapper over ForwardInto.
func (p *Plan64) Forward(x []uint64) []uint64 {
	out := make([]uint64, p.N)
	p.ForwardInto(out, x)
	return out
}

// Inverse computes the inverse NTT (bit-reversed in, natural out) with the
// 1/N scaling applied. It is an allocating wrapper over InverseInto.
func (p *Plan64) Inverse(y []uint64) []uint64 {
	out := make([]uint64, p.N)
	p.InverseInto(out, y)
	return out
}

// PolyMulNegacyclic multiplies in Z_q[x]/(x^n + 1) via the twisted NTT. It
// is an allocating wrapper over PolyMulNegacyclicInto.
func (p *Plan64) PolyMulNegacyclic(a, b []uint64) []uint64 {
	out := make([]uint64, p.N)
	p.PolyMulNegacyclicInto(out, a, b)
	return out
}

func (p *Plan64) checkLen(n int) {
	if n != p.N {
		panic("ntt: input length does not match plan size")
	}
}
