package ntt

import (
	"mqxgo/internal/modmath"
	"mqxgo/internal/ring"
)

// Plan64 is the single-word (64-bit) NTT plan used by the residue number
// system substrate (internal/rns): the conventional alternative to 128-bit
// residues that the paper discusses in Sections 1 and 8. It is a thin
// instantiation of the generic engine in internal/ring over uint64 with
// Shoup one-correction twiddle multiplication, so it shares the Pease
// stage loops, pooled scratch, folded 1/N scaling, and the batch worker
// pool with the 128-bit Plan.
//
// Plan64 exposes the same destination-passing APIs as Plan (ForwardInto,
// InverseInto, PolyMulNegacyclicInto — nothing allocated in steady state)
// and the same Batch*/Batch*Into surface. A Plan64 is safe for concurrent
// use once built.
type Plan64 struct {
	Mod *modmath.Modulus64
	N   int
	M   int

	Omega    uint64
	OmegaInv uint64
	NInv     uint64
	Psi      uint64

	g *ring.Plan[uint64, ring.Shoup64]
}

// NewPlan64 builds an n-point plan modulo mod.Q; 2n must divide q-1.
func NewPlan64(mod *modmath.Modulus64, n int) (*Plan64, error) {
	g, err := ring.NewPlan[uint64, ring.Shoup64](ring.NewShoup64(mod), n)
	if err != nil {
		return nil, err
	}
	return &Plan64{
		Mod:      mod,
		N:        g.N,
		M:        g.M,
		Omega:    g.Omega,
		OmegaInv: g.OmegaInv,
		NInv:     g.NInv,
		Psi:      g.Psi,
		g:        g,
	}, nil
}

// MustPlan64 is NewPlan64 but panics on error.
func MustPlan64(mod *modmath.Modulus64, n int) *Plan64 {
	p, err := NewPlan64(mod, n)
	if err != nil {
		panic(err)
	}
	return p
}

// Generic returns the underlying generic engine plan.
func (p *Plan64) Generic() *ring.Plan[uint64, ring.Shoup64] { return p.g }

// ForwardInto computes the forward NTT of x (natural order) into dst
// (bit-reversed order). dst may alias x. Steady-state it allocates
// nothing.
func (p *Plan64) ForwardInto(dst, x []uint64) { p.g.ForwardInto(dst, x) }

// InverseInto computes the inverse NTT of y (bit-reversed order) into dst
// (natural order) with the 1/N scale folded into the final stage. dst may
// alias y. Steady-state it allocates nothing.
func (p *Plan64) InverseInto(dst, y []uint64) { p.g.InverseInto(dst, y) }

// PolyMulNegacyclicInto computes dst = a*b in Z_q[x]/(x^n + 1) via the
// twisted NTT. dst may alias a or b. Steady-state it allocates nothing.
func (p *Plan64) PolyMulNegacyclicInto(dst, a, b []uint64) {
	p.g.PolyMulNegacyclicInto(dst, a, b)
}

// Forward computes the forward NTT (natural in, bit-reversed out). It is
// an allocating wrapper over ForwardInto.
func (p *Plan64) Forward(x []uint64) []uint64 { return p.g.Forward(x) }

// Inverse computes the inverse NTT (bit-reversed in, natural out) with the
// 1/N scaling applied. It is an allocating wrapper over InverseInto.
func (p *Plan64) Inverse(y []uint64) []uint64 { return p.g.Inverse(y) }

// PolyMulNegacyclic multiplies in Z_q[x]/(x^n + 1) via the twisted NTT. It
// is an allocating wrapper over PolyMulNegacyclicInto.
func (p *Plan64) PolyMulNegacyclic(a, b []uint64) []uint64 {
	return p.g.PolyMulNegacyclic(a, b)
}

// PolyMulCyclic multiplies two polynomials in Z_q[x]/(x^n - 1) by plain
// NTT convolution.
func (p *Plan64) PolyMulCyclic(a, b []uint64) []uint64 {
	out := make([]uint64, p.N)
	p.g.PolyMulCyclicInto(out, a, b)
	return out
}

// BatchForward runs the forward transform over every input, in parallel
// across at most workers chunks (0 means GOMAXPROCS).
func (p *Plan64) BatchForward(inputs [][]uint64, workers int) [][]uint64 {
	return p.g.BatchForward(inputs, workers)
}

// BatchForwardInto is BatchForward with caller-provided destinations.
func (p *Plan64) BatchForwardInto(dst, inputs [][]uint64, workers int) {
	p.g.BatchForwardInto(dst, inputs, workers)
}

// BatchInverse runs the inverse transform over every input in parallel.
func (p *Plan64) BatchInverse(inputs [][]uint64, workers int) [][]uint64 {
	return p.g.BatchInverse(inputs, workers)
}

// BatchInverseInto is BatchInverse with caller-provided destinations.
func (p *Plan64) BatchInverseInto(dst, inputs [][]uint64, workers int) {
	p.g.BatchInverseInto(dst, inputs, workers)
}

// BatchPolyMulNegacyclic multiplies pairs[i][0] * pairs[i][1] in
// Z_q[x]/(x^n + 1) for every pair, in parallel.
func (p *Plan64) BatchPolyMulNegacyclic(pairs [][2][]uint64, workers int) [][]uint64 {
	return p.g.BatchPolyMulNegacyclic(pairs, workers)
}

// BatchPolyMulNegacyclicInto is BatchPolyMulNegacyclic with
// caller-provided destinations.
func (p *Plan64) BatchPolyMulNegacyclicInto(dst [][]uint64, pairs [][2][]uint64, workers int) {
	p.g.BatchPolyMulNegacyclicInto(dst, pairs, workers)
}
