package ntt

import (
	"math/rand"
	"testing"

	"mqxgo/internal/modmath"
)

func plan64ForTest(t *testing.T, n int) *Plan64 {
	t.Helper()
	ps, err := modmath.FindNTTPrimes64(60, uint64(2*n), 1)
	if err != nil {
		t.Fatal(err)
	}
	return MustPlan64(modmath.MustModulus64(ps[0]), n)
}

func TestPlan64ForwardMatchesDefinition(t *testing.T) {
	n := 32
	p := plan64ForTest(t, n)
	mod := p.Mod
	r := rand.New(rand.NewSource(71))
	x := make([]uint64, n)
	for i := range x {
		x[i] = r.Uint64() % mod.Q
	}
	got := p.Forward(x)
	// Direct O(n^2) definition.
	for k := 0; k < n; k++ {
		step := mod.Pow(p.Omega, uint64(k))
		acc, w := uint64(0), uint64(1)
		for j := 0; j < n; j++ {
			acc = mod.Add(acc, mod.Mul(x[j], w))
			w = mod.Mul(w, step)
		}
		// Forward output is bit-reversed.
		m := 0
		for 1<<m < n {
			m++
		}
		if got[BitReverse(k, m)] != acc {
			t.Fatalf("output %d: got %d, want %d", k, got[BitReverse(k, m)], acc)
		}
	}
}

func TestPlan64RoundTrip(t *testing.T) {
	for _, n := range []int{2, 16, 256, 4096} {
		p := plan64ForTest(t, n)
		r := rand.New(rand.NewSource(int64(72 + n)))
		x := make([]uint64, n)
		for i := range x {
			x[i] = r.Uint64() % p.Mod.Q
		}
		back := p.Inverse(p.Forward(x))
		for i := range x {
			if back[i] != x[i] {
				t.Fatalf("n=%d: round trip failed at %d", n, i)
			}
		}
	}
}

func TestPlan64PolyMulMatchesSchoolbook(t *testing.T) {
	n := 64
	p := plan64ForTest(t, n)
	mod := p.Mod
	r := rand.New(rand.NewSource(73))
	a := make([]uint64, n)
	b := make([]uint64, n)
	for i := range a {
		a[i] = r.Uint64() % mod.Q
		b[i] = r.Uint64() % mod.Q
	}
	got := p.PolyMulNegacyclic(a, b)
	want := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			prod := mod.Mul(a[i], b[j])
			k := i + j
			if k < n {
				want[k] = mod.Add(want[k], prod)
			} else {
				want[k-n] = mod.Sub(want[k-n], prod)
			}
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coeff %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestPlan64Validation(t *testing.T) {
	ps, err := modmath.FindNTTPrimes64(60, 1<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	mod := modmath.MustModulus64(ps[0])
	if _, err := NewPlan64(mod, 3); err == nil {
		t.Error("expected error for non-power-of-two size")
	}
	if _, err := NewPlan64(mod, 1<<40); err == nil {
		t.Error("expected error for unsupported order")
	}
}
