package ntt

import (
	"math/rand"
	"testing"

	"mqxgo/internal/blas"
	"mqxgo/internal/isa"
	"mqxgo/internal/kernels"
	"mqxgo/internal/modmath"
	"mqxgo/internal/u128"
	"mqxgo/internal/vm"
)

func testMod(t *testing.T) *modmath.Modulus128 {
	t.Helper()
	return modmath.DefaultModulus128()
}

func randPoly(r *rand.Rand, mod *modmath.Modulus128, n int) []u128.U128 {
	xs := make([]u128.U128, n)
	for i := range xs {
		xs[i] = u128.New(r.Uint64(), r.Uint64()).Mod(mod.Q)
	}
	return xs
}

func TestForwardNativeMatchesReference(t *testing.T) {
	mod := testMod(t)
	r := rand.New(rand.NewSource(41))
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		p := MustPlan(mod, n)
		x := randPoly(r, mod, n)
		got := p.ForwardNative(x)
		want := Reference(mod, p.Omega, x)
		for i := 0; i < n; i++ {
			if !got[i].Equal(want[BitReverse(i, p.M)]) {
				t.Fatalf("n=%d: output %d = %s, want %s", n, i, got[i], want[BitReverse(i, p.M)])
			}
		}
	}
}

func TestInverseNativeRoundTrip(t *testing.T) {
	mod := testMod(t)
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{2, 8, 32, 128, 1024} {
		p := MustPlan(mod, n)
		x := randPoly(r, mod, n)
		back := p.InverseNative(p.ForwardNative(x))
		for i := range x {
			if !back[i].Equal(x[i]) {
				t.Fatalf("n=%d: round trip failed at %d: got %s want %s", n, i, back[i], x[i])
			}
		}
	}
}

func TestPolyMulNegacyclicMatchesSchoolbook(t *testing.T) {
	mod := testMod(t)
	r := rand.New(rand.NewSource(43))
	for _, n := range []int{2, 8, 64, 256} {
		p := MustPlan(mod, n)
		a := randPoly(r, mod, n)
		b := randPoly(r, mod, n)
		got := p.PolyMulNegacyclic(a, b)
		want := SchoolbookNegacyclic(mod, a, b)
		for i := 0; i < n; i++ {
			if !got[i].Equal(want[i]) {
				t.Fatalf("n=%d: coeff %d = %s, want %s", n, i, got[i], want[i])
			}
		}
	}
}

func TestPolyMulCyclicMatchesSchoolbook(t *testing.T) {
	mod := testMod(t)
	r := rand.New(rand.NewSource(44))
	for _, n := range []int{4, 32, 128} {
		p := MustPlan(mod, n)
		a := randPoly(r, mod, n)
		b := randPoly(r, mod, n)
		got := p.PolyMulCyclic(a, b)
		want := SchoolbookCyclic(mod, a, b)
		for i := 0; i < n; i++ {
			if !got[i].Equal(want[i]) {
				t.Fatalf("n=%d: coeff %d = %s, want %s", n, i, got[i], want[i])
			}
		}
	}
}

func TestLinearity(t *testing.T) {
	mod := testMod(t)
	r := rand.New(rand.NewSource(45))
	n := 128
	p := MustPlan(mod, n)
	a := randPoly(r, mod, n)
	b := randPoly(r, mod, n)
	sum := make([]u128.U128, n)
	for i := range sum {
		sum[i] = mod.Add(a[i], b[i])
	}
	fa, fb, fsum := p.ForwardNative(a), p.ForwardNative(b), p.ForwardNative(sum)
	for i := 0; i < n; i++ {
		if !fsum[i].Equal(mod.Add(fa[i], fb[i])) {
			t.Fatalf("NTT not linear at %d", i)
		}
	}
}

func TestConvolutionTheoremDeltaFunction(t *testing.T) {
	// NTT of the delta function is all ones; NTT of a shifted delta is the
	// twiddle power sequence.
	mod := testMod(t)
	n := 64
	p := MustPlan(mod, n)
	delta := make([]u128.U128, n)
	delta[0] = u128.One
	f := p.ForwardNative(delta)
	for i := range f {
		if !f[i].Equal(u128.One) {
			t.Fatalf("NTT(delta)[%d] = %s, want 1", i, f[i])
		}
	}
}

func vmForward(t *testing.T, level isa.Level, p *Plan, x []u128.U128) []u128.U128 {
	t.Helper()
	m := vm.New(vm.TraceOff)
	xv := blas.FromSlice(x)
	switch level {
	case isa.LevelScalar:
		b := kernels.NewBScalar(m)
		d := kernels.NewDW[vm.S, vm.F](b, p.Mod)
		m.BeginLoop()
		out, err := ForwardVM(d, p, xv)
		if err != nil {
			t.Fatal(err)
		}
		return out.ToSlice()
	case isa.LevelAVX2:
		b := kernels.NewB256(m)
		d := kernels.NewDW[vm.V4, vm.V4](b, p.Mod)
		m.BeginLoop()
		out, err := ForwardVM(d, p, xv)
		if err != nil {
			t.Fatal(err)
		}
		return out.ToSlice()
	default:
		b := kernels.NewB512(m, level)
		d := kernels.NewDW[vm.V, vm.M](b, p.Mod)
		m.BeginLoop()
		out, err := ForwardVM(d, p, xv)
		if err != nil {
			t.Fatal(err)
		}
		return out.ToSlice()
	}
}

func vmInverse(t *testing.T, level isa.Level, p *Plan, y []u128.U128) []u128.U128 {
	t.Helper()
	m := vm.New(vm.TraceOff)
	yv := blas.FromSlice(y)
	switch level {
	case isa.LevelScalar:
		b := kernels.NewBScalar(m)
		d := kernels.NewDW[vm.S, vm.F](b, p.Mod)
		m.BeginLoop()
		out, err := InverseVM(d, p, yv)
		if err != nil {
			t.Fatal(err)
		}
		return out.ToSlice()
	case isa.LevelAVX2:
		b := kernels.NewB256(m)
		d := kernels.NewDW[vm.V4, vm.V4](b, p.Mod)
		m.BeginLoop()
		out, err := InverseVM(d, p, yv)
		if err != nil {
			t.Fatal(err)
		}
		return out.ToSlice()
	default:
		b := kernels.NewB512(m, level)
		d := kernels.NewDW[vm.V, vm.M](b, p.Mod)
		m.BeginLoop()
		out, err := InverseVM(d, p, yv)
		if err != nil {
			t.Fatal(err)
		}
		return out.ToSlice()
	}
}

func TestVMForwardMatchesNativeAllLevels(t *testing.T) {
	mod := testMod(t)
	r := rand.New(rand.NewSource(46))
	levels := []isa.Level{
		isa.LevelScalar, isa.LevelAVX2, isa.LevelAVX512, isa.LevelMQX,
		isa.LevelMQXMulOnly, isa.LevelMQXCarryOnly, isa.LevelMQXMulHi,
		isa.LevelMQXPredicated,
	}
	for _, n := range []int{16, 64, 512} {
		p := MustPlan(mod, n)
		x := randPoly(r, mod, n)
		want := p.ForwardNative(x)
		for _, level := range levels {
			got := vmForward(t, level, p, x)
			for i := 0; i < n; i++ {
				if !got[i].Equal(want[i]) {
					t.Fatalf("level %v n=%d: output %d = %s, want %s", level, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestVMInverseRoundTripAllLevels(t *testing.T) {
	mod := testMod(t)
	r := rand.New(rand.NewSource(47))
	levels := []isa.Level{isa.LevelScalar, isa.LevelAVX2, isa.LevelAVX512, isa.LevelMQX}
	for _, n := range []int{16, 256} {
		p := MustPlan(mod, n)
		x := randPoly(r, mod, n)
		for _, level := range levels {
			fwd := vmForward(t, level, p, x)
			back := vmInverse(t, level, p, fwd)
			for i := 0; i < n; i++ {
				if !back[i].Equal(x[i]) {
					t.Fatalf("level %v n=%d: round trip failed at %d", level, n, i)
				}
			}
		}
	}
}

func TestPlanValidation(t *testing.T) {
	mod := testMod(t)
	if _, err := NewPlan(mod, 3); err == nil {
		t.Error("expected error for non-power-of-two size")
	}
	if _, err := NewPlan(mod, 1); err == nil {
		t.Error("expected error for size 1")
	}
	// A size far beyond the prime's power-of-two root order must fail.
	if _, err := NewPlan(mod, 1<<40); err == nil {
		t.Error("expected error for size beyond the prime's root order")
	}
	p := MustPlan(mod, 1<<10)
	if p.TwiddleBytes() != 10*(1<<9)*16 {
		t.Errorf("TwiddleBytes = %d", p.TwiddleBytes())
	}
}

func TestBitReverse(t *testing.T) {
	cases := []struct{ i, m, want int }{
		{0, 4, 0}, {1, 4, 8}, {3, 3, 6}, {5, 3, 5}, {6, 3, 3}, {1, 1, 1},
	}
	for _, c := range cases {
		if got := BitReverse(c.i, c.m); got != c.want {
			t.Errorf("BitReverse(%d, %d) = %d, want %d", c.i, c.m, got, c.want)
		}
	}
}

func TestVMInputLengthErrors(t *testing.T) {
	mod := testMod(t)
	p := MustPlan(mod, 16)
	m := vm.New(vm.TraceOff)
	b := kernels.NewB512(m, isa.LevelAVX512)
	d := kernels.NewDW[vm.V, vm.M](b, mod)
	m.BeginLoop()
	if _, err := ForwardVM(d, p, blas.NewVector(8)); err == nil {
		t.Error("expected length error")
	}
	if _, err := InverseVM(d, p, blas.NewVector(8)); err == nil {
		t.Error("expected length error")
	}
	// n/2 < lanes: an 8-point plan cannot run on the 8-lane backend.
	p8 := MustPlan(mod, 8)
	if _, err := ForwardVM(d, p8, blas.NewVector(8)); err == nil {
		t.Error("expected lane-count error")
	}
}
