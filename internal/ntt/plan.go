// Package ntt implements the number theoretic transform over Z_q with
// 128-bit coefficients, the paper's primary kernel (Sections 2.3 and 3.2).
//
// All transforms use the Pease constant-geometry dataflow [Pease 1968] the
// paper builds on: every stage reads butterfly inputs from (i, i + n/2) and
// writes outputs to (2i, 2i+1) of a ping-pong buffer, so vector loads are
// always contiguous and only the output interleave needs permute
// instructions. The forward transform maps natural order to bit-reversed
// order; the inverse maps bit-reversed back to natural order.
//
// Implementations:
//   - Plan.ForwardInto / InverseInto / PolyMulNegacyclicInto (engine.go):
//     the zero-steady-state-allocation engine — destination-passing APIs
//     whose ping-pong scratch comes from a per-plan sync.Pool, whose hot
//     loops read the SoA twiddle tables through bounds-hoisted Hi/Lo word
//     slices, and whose inverse folds the 1/N scale into the final stage
//     instead of a separate pass.
//   - Plan.ForwardNative / InverseNative / PolyMulNegacyclic: thin
//     allocating wrappers over the engine, kept for callers that want
//     value-returning APIs (the measured scalar tier).
//   - BatchForward / BatchInverse / BatchPolyMulNegacyclic (batch.go):
//     fan a batch of independent transforms across a persistent,
//     lazily-started worker pool; work is dispatched as chunked index
//     ranges so channel traffic is amortized over the whole batch, and
//     each chunk reuses one scratch set across its transforms.
//   - CachedPlan / CachedPlan64 (cache.go): a process-wide plan cache
//     keyed by (q, n), so independent entry points stop rebuilding the
//     O(N log N) twiddle tables.
//   - ForwardVM / InverseVM (vmntt.go): generic over a kernels backend,
//     producing scalar/AVX2/AVX-512/MQX instruction streams on the trace
//     machine for performance modeling.
//   - Reference (reference.go): the O(n^2) definition (Eq. 11), used as
//     ground truth in tests.
//
// A Plan is safe for concurrent use once built: the twiddle tables are
// read-only after NewPlan and all mutable transform state lives in pooled
// scratch buffers.
package ntt

import (
	"fmt"
	"sync"

	"mqxgo/internal/blas"
	"mqxgo/internal/modmath"
	"mqxgo/internal/u128"
)

// Plan holds the precomputed tables for size-n transforms modulo q:
// per-stage constant-geometry twiddle tables for the forward and inverse
// transforms (SoA layout, ready for contiguous vector loads) and the
// negacyclic twist tables.
type Plan struct {
	Mod *modmath.Modulus128
	N   int // transform size, a power of two >= 2
	M   int // log2(N)

	Omega    u128.U128 // primitive N-th root of unity
	OmegaInv u128.U128
	NInv     u128.U128 // N^-1 mod q

	// FwdTw[s] and InvTw[s] hold the N/2 stage-s twiddles in SoA layout.
	FwdTw []blas.Vector
	InvTw []blas.Vector

	// invTw0Scaled is InvTw[0] with N^-1 folded in, so InverseInto can
	// apply the 1/N scale inside its final stage instead of a separate
	// pass over the output.
	invTw0Scaled blas.Vector

	// Negacyclic twist tables (psi is a primitive 2N-th root with
	// psi^2 = omega): Twist[j] = psi^j, Untwist[j] = psi^-j * N^-1.
	Psi     u128.U128
	Twist   blas.Vector
	Untwist blas.Vector

	// scratch pools *nttScratch ping-pong buffer pairs so steady-state
	// transforms allocate nothing.
	scratch sync.Pool
}

// NewPlan builds a plan for n-point transforms modulo mod.Q. n must be a
// power of two >= 2, and 2n must divide q-1 (the negacyclic twist needs a
// 2n-th root of unity).
func NewPlan(mod *modmath.Modulus128, n int) (*Plan, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ntt: size %d is not a power of two >= 2", n)
	}
	m := 0
	for 1<<m < n {
		m++
	}
	psi, err := mod.PrimitiveRootOfUnity(uint64(2 * n))
	if err != nil {
		return nil, fmt.Errorf("ntt: %w", err)
	}
	omega := mod.Mul(psi, psi)
	p := &Plan{
		Mod:      mod,
		N:        n,
		M:        m,
		Omega:    omega,
		OmegaInv: mod.Inv(omega),
		NInv:     mod.Inv(u128.From64(uint64(n))),
		Psi:      psi,
	}
	p.buildStageTables()
	p.buildTwistTables()
	p.scratch.New = func() any {
		return &nttScratch{
			a: make([]u128.U128, n),
			b: make([]u128.U128, n),
		}
	}
	return p, nil
}

// MustPlan is NewPlan but panics on error.
func MustPlan(mod *modmath.Modulus128, n int) *Plan {
	p, err := NewPlan(mod, n)
	if err != nil {
		panic(err)
	}
	return p
}

// stageExp returns the twiddle exponent for butterfly i of stage s in the
// constant-geometry dataflow. After s interleaving stages, the low s bits
// of i select which size-(n/2^s) sub-transform the butterfly belongs to and
// i>>s is the position within it, so the twiddle is
// omega_{n/2^s}^(i>>s) = omega^((i>>s) * 2^s).
func (p *Plan) stageExp(s, i int) uint64 {
	return (uint64(i) >> uint(s)) << uint(s)
}

func (p *Plan) buildStageTables() {
	mod := p.Mod
	half := p.N / 2
	// Power tables for omega and omega^-1 up to n/2 exponents, built by
	// repeated multiplication (exponents in stageExp are < n/2... they are
	// < n; bound them by n).
	pow := make([]u128.U128, p.N)
	powInv := make([]u128.U128, p.N)
	pow[0], powInv[0] = u128.One, u128.One
	for j := 1; j < p.N; j++ {
		pow[j] = mod.Mul(pow[j-1], p.Omega)
		powInv[j] = mod.Mul(powInv[j-1], p.OmegaInv)
	}
	p.FwdTw = make([]blas.Vector, p.M)
	p.InvTw = make([]blas.Vector, p.M)
	for s := 0; s < p.M; s++ {
		fw := blas.NewVector(half)
		iv := blas.NewVector(half)
		for i := 0; i < half; i++ {
			e := p.stageExp(s, i)
			fw.Set(i, pow[e])
			iv.Set(i, powInv[e])
		}
		p.FwdTw[s] = fw
		p.InvTw[s] = iv
	}
	scaled := blas.NewVector(half)
	for i := 0; i < half; i++ {
		scaled.Set(i, mod.Mul(p.InvTw[0].At(i), p.NInv))
	}
	p.invTw0Scaled = scaled
}

func (p *Plan) buildTwistTables() {
	mod := p.Mod
	psiInv := mod.Inv(p.Psi)
	tw := blas.NewVector(p.N)
	utw := blas.NewVector(p.N)
	cur := u128.One
	curInv := p.NInv
	for j := 0; j < p.N; j++ {
		tw.Set(j, cur)
		utw.Set(j, curInv)
		cur = mod.Mul(cur, p.Psi)
		curInv = mod.Mul(curInv, psiInv)
	}
	p.Twist = tw
	p.Untwist = utw
}

// BitReverse returns the bit-reversal of i in m bits.
func BitReverse(i, m int) int {
	r := 0
	for b := 0; b < m; b++ {
		r = r<<1 | (i>>b)&1
	}
	return r
}

// TwiddleBytes returns the total size of the precomputed stage tables in
// bytes, used by the memory model.
func (p *Plan) TwiddleBytes() int64 {
	return int64(p.M) * int64(p.N/2) * 16
}
