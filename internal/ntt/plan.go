// Package ntt exposes the number theoretic transform over Z_q at the two
// coefficient widths the paper compares: 128-bit double-word residues
// (Plan, the primary configuration of Sections 2.3 and 3.2) and
// single-word 64-bit residues with Shoup twiddles (Plan64, the RNS-tower
// substrate of Sections 1 and 8).
//
// Both are thin instantiations of the generic engine in internal/ring,
// which implements the Pease constant-geometry stage loops, pooled
// ping-pong scratch, negacyclic twist/untwist, folded 1/N scaling, the
// process-wide plan cache, and the chunk-dispatch batch worker pool
// exactly once. This package adds the width-specific conveniences:
//   - Plan / Plan64 (plan.go, ntt64.go): compatibility wrappers carrying
//     the historical exported fields (SoA blas.Vector twiddle mirrors on
//     Plan) and delegating every transform to the shared generic engine.
//   - ForwardInPlace / InverseInPlace (iterative.go): classic in-place
//     Gentleman-Sande / Cooley-Tukey dataflows that cross-check the
//     constant-geometry engine.
//   - ForwardVM / InverseVM (vmntt.go) and Forward64VM (vm64.go): generic
//     over a kernels backend, producing scalar/AVX2/AVX-512/MQX
//     instruction streams on the trace machine for performance modeling.
//   - Reference (reference.go): the O(n^2) definition (Eq. 11), used as
//     ground truth in tests.
//
// A Plan is safe for concurrent use once built: the twiddle tables are
// read-only after NewPlan and all mutable transform state lives in pooled
// scratch buffers.
package ntt

import (
	"mqxgo/internal/blas"
	"mqxgo/internal/modmath"
	"mqxgo/internal/ring"
	"mqxgo/internal/u128"
)

// Plan holds the precomputed tables for size-n transforms modulo q with
// 128-bit coefficients. The exported twiddle fields are SoA blas.Vector
// mirrors of the generic engine's tables, kept for the baseline backends
// (ForwardWith), the in-place iterative dataflows, and external seed
// comparators; the transforms themselves run on the embedded generic
// plan.
type Plan struct {
	Mod *modmath.Modulus128
	N   int // transform size, a power of two >= 2
	M   int // log2(N)

	Omega    u128.U128 // primitive N-th root of unity
	OmegaInv u128.U128
	NInv     u128.U128 // N^-1 mod q

	// FwdTw[s] and InvTw[s] hold the N/2 stage-s twiddles in SoA layout.
	FwdTw []blas.Vector
	InvTw []blas.Vector

	// Negacyclic twist tables (psi is a primitive 2N-th root with
	// psi^2 = omega): Twist[j] = psi^j, Untwist[j] = psi^-j * N^-1.
	Psi     u128.U128
	Twist   blas.Vector
	Untwist blas.Vector

	g *ring.Plan[u128.U128, ring.Barrett128]
}

// NewPlan builds a plan for n-point transforms modulo mod.Q. n must be a
// power of two >= 2, and 2n must divide q-1 (the negacyclic twist needs a
// 2n-th root of unity).
func NewPlan(mod *modmath.Modulus128, n int) (*Plan, error) {
	g, err := ring.NewPlan[u128.U128, ring.Barrett128](ring.NewBarrett128(mod), n)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Mod:      mod,
		N:        g.N,
		M:        g.M,
		Omega:    g.Omega,
		OmegaInv: g.OmegaInv,
		NInv:     g.NInv,
		Psi:      g.Psi,
		g:        g,
	}
	p.FwdTw = make([]blas.Vector, g.M)
	p.InvTw = make([]blas.Vector, g.M)
	for s := 0; s < g.M; s++ {
		fw, _ := g.FwdStage(s)
		iv, _ := g.InvStage(s)
		p.FwdTw[s] = blas.FromSlice(fw)
		p.InvTw[s] = blas.FromSlice(iv)
	}
	tw, _ := g.TwistTable()
	utw, _ := g.UntwistTable()
	p.Twist = blas.FromSlice(tw)
	p.Untwist = blas.FromSlice(utw)
	return p, nil
}

// MustPlan is NewPlan but panics on error.
func MustPlan(mod *modmath.Modulus128, n int) *Plan {
	p, err := NewPlan(mod, n)
	if err != nil {
		panic(err)
	}
	return p
}

// Generic returns the underlying generic engine plan, for callers that
// batch across plans (RNS towers) or instantiate width-agnostic code.
func (p *Plan) Generic() *ring.Plan[u128.U128, ring.Barrett128] { return p.g }

// ForwardInto computes the forward NTT of x (natural order) into dst
// (bit-reversed order). dst and x must both have length N; dst may alias
// x for an in-place transform. Steady-state it allocates nothing.
func (p *Plan) ForwardInto(dst, x []u128.U128) { p.g.ForwardInto(dst, x) }

// InverseInto computes the inverse NTT of y (bit-reversed order) into dst
// (natural order), with the 1/N scale folded into the final stage. dst
// may alias y. Steady-state it allocates nothing.
func (p *Plan) InverseInto(dst, y []u128.U128) { p.g.InverseInto(dst, y) }

// PolyMulNegacyclicInto computes dst = a*b in Z_q[x]/(x^n + 1) via the
// twisted NTT. dst may alias a or b. Steady-state it allocates nothing.
func (p *Plan) PolyMulNegacyclicInto(dst, a, b []u128.U128) {
	p.g.PolyMulNegacyclicInto(dst, a, b)
}

// BitReverse returns the bit-reversal of i in m bits.
func BitReverse(i, m int) int {
	r := 0
	for b := 0; b < m; b++ {
		r = r<<1 | (i>>b)&1
	}
	return r
}

// TwiddleBytes returns the total size of the precomputed stage tables in
// bytes, used by the memory model.
func (p *Plan) TwiddleBytes() int64 {
	return p.g.TwiddleBytes()
}
