package ntt

import (
	"mqxgo/internal/modmath"
	"mqxgo/internal/u128"
)

// Reference computes the n-point NTT directly from the definition (Eq. 11):
//
//	y_k = sum_j x_j * omega^(jk) mod q.
//
// O(n^2); for tests only. The output is in natural order.
func Reference(mod *modmath.Modulus128, omega u128.U128, x []u128.U128) []u128.U128 {
	n := len(x)
	y := make([]u128.U128, n)
	// row k uses step omega^k.
	for k := 0; k < n; k++ {
		step := mod.Pow(omega, u128.From64(uint64(k)))
		acc := u128.Zero
		w := u128.One
		for j := 0; j < n; j++ {
			acc = mod.Add(acc, mod.Mul(x[j], w))
			w = mod.Mul(w, step)
		}
		y[k] = acc
	}
	return y
}

// SchoolbookNegacyclic multiplies two polynomials in Z_q[x]/(x^n + 1) by
// the O(n^2) definition; for tests only.
func SchoolbookNegacyclic(mod *modmath.Modulus128, a, b []u128.U128) []u128.U128 {
	n := len(a)
	c := make([]u128.U128, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := mod.Mul(a[i], b[j])
			k := i + j
			if k < n {
				c[k] = mod.Add(c[k], p)
			} else {
				c[k-n] = mod.Sub(c[k-n], p) // x^n = -1
			}
		}
	}
	return c
}

// SchoolbookCyclic multiplies two polynomials in Z_q[x]/(x^n - 1); for
// tests only.
func SchoolbookCyclic(mod *modmath.Modulus128, a, b []u128.U128) []u128.U128 {
	n := len(a)
	c := make([]u128.U128, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := mod.Mul(a[i], b[j])
			c[(i+j)%n] = mod.Add(c[(i+j)%n], p)
		}
	}
	return c
}
