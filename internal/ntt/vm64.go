package ntt

import (
	"fmt"

	"mqxgo/internal/kernels"
)

// Forward64VM computes the single-word (64-bit) forward NTT on the trace
// machine using the HEXL-style kernels of kernels.SW — the RNS-channel
// counterpart of ForwardVM, used to model the paper's Section 1 trade-off
// between 128-bit residues and RNS decomposition on identical hardware.
//
// The transform uses the same constant-geometry dataflow; twiddles are the
// plan's Shoup pairs.
func Forward64VM[W, C any](s *kernels.SW[W, C], p *Plan64, x []uint64) ([]uint64, error) {
	if len(x) != p.N {
		return nil, fmt.Errorf("ntt: input length %d != plan size %d", len(x), p.N)
	}
	if s.Mod.Q != p.Mod.Q {
		return nil, fmt.Errorf("ntt: kernel modulus %d != plan modulus %d", s.Mod.Q, p.Mod.Q)
	}
	o := s.O
	lanes := o.Lanes()
	half := p.N / 2
	if half%lanes != 0 {
		return nil, fmt.Errorf("ntt: n/2 = %d not a multiple of %d lanes", half, lanes)
	}
	src := append([]uint64(nil), x...)
	dst := make([]uint64, p.N)
	for st := 0; st < p.M; st++ {
		tw, sh := p.g.FwdStage(st)
		for i := 0; i < half; i += lanes {
			a := o.Load(src, i)
			b := o.Load(src, i+half)
			w := o.Load(tw, i)
			wp := o.Load(sh, i)
			even, odd := s.Butterfly(a, b, w, wp)
			r0, r1 := o.Interleave(even, odd)
			o.Store(dst, 2*i, r0)
			o.Store(dst, 2*i+lanes, r1)
		}
		src, dst = dst, src
	}
	return src, nil
}
