package ntt

import (
	"math/rand"
	"testing"

	"mqxgo/internal/isa"
	"mqxgo/internal/kernels"
	"mqxgo/internal/modmath"
	"mqxgo/internal/vm"
)

func TestForward64VMMatchesNative(t *testing.T) {
	ps, err := modmath.FindNTTPrimes64(60, 1<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	mod := modmath.MustModulus64(ps[0])
	n := 256
	p := MustPlan64(mod, n)
	r := rand.New(rand.NewSource(151))
	x := make([]uint64, n)
	for i := range x {
		x[i] = r.Uint64() % mod.Q
	}
	want := p.Forward(x)

	for _, level := range []isa.Level{isa.LevelScalar, isa.LevelAVX2, isa.LevelAVX512, isa.LevelMQX} {
		m := vm.New(vm.TraceOff)
		var got []uint64
		var runErr error
		switch level {
		case isa.LevelScalar:
			b := kernels.NewBScalar(m)
			s := kernels.NewSW[vm.S, vm.F](b, mod)
			m.BeginLoop()
			got, runErr = Forward64VM(s, p, x)
		case isa.LevelAVX2:
			b := kernels.NewB256(m)
			s := kernels.NewSW[vm.V4, vm.V4](b, mod)
			m.BeginLoop()
			got, runErr = Forward64VM(s, p, x)
		default:
			b := kernels.NewB512(m, level)
			s := kernels.NewSW[vm.V, vm.M](b, mod)
			m.BeginLoop()
			got, runErr = Forward64VM(s, p, x)
		}
		if runErr != nil {
			t.Fatal(runErr)
		}
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				t.Fatalf("%v: output %d = %d, want %d", level, i, got[i], want[i])
			}
		}
	}
}

func TestForward64VMValidation(t *testing.T) {
	ps, err := modmath.FindNTTPrimes64(60, 1<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	mod := modmath.MustModulus64(ps[0])
	other := modmath.MustModulus64(ps[1])
	p := MustPlan64(mod, 64)
	m := vm.New(vm.TraceOff)
	b := kernels.NewB512(m, isa.LevelAVX512)
	s := kernels.NewSW[vm.V, vm.M](b, mod)
	sOther := kernels.NewSW[vm.V, vm.M](b, other)
	m.BeginLoop()
	if _, err := Forward64VM(s, p, make([]uint64, 8)); err == nil {
		t.Error("expected length error")
	}
	if _, err := Forward64VM(sOther, p, make([]uint64, 64)); err == nil {
		t.Error("expected modulus mismatch error")
	}
	p8 := MustPlan64(mod, 8)
	if _, err := Forward64VM(s, p8, make([]uint64, 8)); err == nil {
		t.Error("expected lane-count error")
	}
}
