package ntt

import (
	"fmt"

	"mqxgo/internal/blas"
	"mqxgo/internal/kernels"
)

// ForwardVM computes the forward NTT on the trace machine, generic over the
// backend: the exact instruction stream of the paper's vectorized Pease
// NTT (Section 3.2). x is consumed in natural order; the result is in
// bit-reversed order.
//
// Per stage, each iteration loads contiguous vectors from the first and
// second halves of the source buffer, runs the butterfly kernel, and writes
// the interleaved outputs contiguously — the constant-geometry property
// that makes the dataflow SIMD-friendly.
func ForwardVM[W, C any](d *kernels.DW[W, C], p *Plan, x blas.Vector) (blas.Vector, error) {
	if x.Len() != p.N {
		return blas.Vector{}, fmt.Errorf("ntt: input length %d != plan size %d", x.Len(), p.N)
	}
	o := d.O
	lanes := o.Lanes()
	half := p.N / 2
	if half%lanes != 0 {
		return blas.Vector{}, fmt.Errorf("ntt: n/2 = %d not a multiple of %d lanes", half, lanes)
	}
	src := blas.NewVector(p.N)
	copy(src.Hi, x.Hi)
	copy(src.Lo, x.Lo)
	dst := blas.NewVector(p.N)
	for s := 0; s < p.M; s++ {
		tw := p.FwdTw[s]
		for i := 0; i < half; i += lanes {
			a := kernels.DWPair[W]{Hi: o.Load(src.Hi, i), Lo: o.Load(src.Lo, i)}
			b := kernels.DWPair[W]{Hi: o.Load(src.Hi, i+half), Lo: o.Load(src.Lo, i+half)}
			w := kernels.DWPair[W]{Hi: o.Load(tw.Hi, i), Lo: o.Load(tw.Lo, i)}
			even, odd := d.Butterfly(a, b, w)
			hi0, hi1 := o.Interleave(even.Hi, odd.Hi)
			lo0, lo1 := o.Interleave(even.Lo, odd.Lo)
			o.Store(dst.Hi, 2*i, hi0)
			o.Store(dst.Lo, 2*i, lo0)
			o.Store(dst.Hi, 2*i+lanes, hi1)
			o.Store(dst.Lo, 2*i+lanes, lo1)
		}
		src, dst = dst, src
	}
	return src, nil
}

// InverseVM computes the inverse NTT on the trace machine (bit-reversed
// input, natural output, including the 1/N scaling pass).
func InverseVM[W, C any](d *kernels.DW[W, C], p *Plan, y blas.Vector) (blas.Vector, error) {
	if y.Len() != p.N {
		return blas.Vector{}, fmt.Errorf("ntt: input length %d != plan size %d", y.Len(), p.N)
	}
	o := d.O
	lanes := o.Lanes()
	half := p.N / 2
	if half%lanes != 0 {
		return blas.Vector{}, fmt.Errorf("ntt: n/2 = %d not a multiple of %d lanes", half, lanes)
	}
	src := blas.NewVector(p.N)
	copy(src.Hi, y.Hi)
	copy(src.Lo, y.Lo)
	dst := blas.NewVector(p.N)
	for s := p.M - 1; s >= 0; s-- {
		tw := p.InvTw[s]
		for i := 0; i < half; i += lanes {
			r0Hi := o.Load(src.Hi, 2*i)
			r0Lo := o.Load(src.Lo, 2*i)
			r1Hi := o.Load(src.Hi, 2*i+lanes)
			r1Lo := o.Load(src.Lo, 2*i+lanes)
			eHi, oHi := o.Deinterleave(r0Hi, r1Hi)
			eLo, oLo := o.Deinterleave(r0Lo, r1Lo)
			e := kernels.DWPair[W]{Hi: eHi, Lo: eLo}
			od := kernels.DWPair[W]{Hi: oHi, Lo: oLo}
			w := kernels.DWPair[W]{Hi: o.Load(tw.Hi, i), Lo: o.Load(tw.Lo, i)}
			t := d.MulMod(od, w)
			sum := d.AddMod(e, t)
			diff := d.SubMod(e, t)
			o.Store(dst.Hi, i, sum.Hi)
			o.Store(dst.Lo, i, sum.Lo)
			o.Store(dst.Hi, i+half, diff.Hi)
			o.Store(dst.Lo, i+half, diff.Lo)
		}
		src, dst = dst, src
	}
	// Final 1/N scaling pass.
	nInv := blas.Broadcast128(o, p.NInv)
	for i := 0; i < p.N; i += lanes {
		v := kernels.DWPair[W]{Hi: o.Load(src.Hi, i), Lo: o.Load(src.Lo, i)}
		z := d.MulMod(v, nInv)
		o.Store(dst.Hi, i, z.Hi)
		o.Store(dst.Lo, i, z.Lo)
	}
	return dst, nil
}
