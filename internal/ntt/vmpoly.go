package ntt

import (
	"fmt"

	"mqxgo/internal/blas"
	"mqxgo/internal/kernels"
)

// PolyMulNegacyclicVM runs the complete negacyclic polynomial
// multiplication pipeline on the trace machine: twist by psi^j, two
// forward NTTs, point-wise multiplication, inverse NTT, and the combined
// untwist/scale pass — the full FHE-style workload of examples/polymul,
// expressed in the instruction vocabulary of whichever ISA tier the
// backend implements.
func PolyMulNegacyclicVM[W, C any](d *kernels.DW[W, C], p *Plan, a, b blas.Vector) (blas.Vector, error) {
	if a.Len() != p.N || b.Len() != p.N {
		return blas.Vector{}, fmt.Errorf("ntt: input lengths %d, %d != plan size %d", a.Len(), b.Len(), p.N)
	}
	o := d.O
	lanes := o.Lanes()
	if p.N%lanes != 0 || p.N/2%lanes != 0 {
		return blas.Vector{}, fmt.Errorf("ntt: size %d incompatible with %d lanes", p.N, lanes)
	}

	// Twist both inputs by psi^j.
	at := blas.NewVector(p.N)
	bt := blas.NewVector(p.N)
	if err := blas.VecPMulModVM(d, at, a, p.Twist); err != nil {
		return blas.Vector{}, err
	}
	if err := blas.VecPMulModVM(d, bt, b, p.Twist); err != nil {
		return blas.Vector{}, err
	}

	af, err := ForwardVM(d, p, at)
	if err != nil {
		return blas.Vector{}, err
	}
	bf, err := ForwardVM(d, p, bt)
	if err != nil {
		return blas.Vector{}, err
	}

	cf := blas.NewVector(p.N)
	if err := blas.VecPMulModVM(d, cf, af, bf); err != nil {
		return blas.Vector{}, err
	}

	// Inverse without the separate 1/N pass: the untwist table already
	// carries psi^-j * N^-1, so run the stage recursion and untwist.
	c, err := inverseNoScaleVM(d, p, cf)
	if err != nil {
		return blas.Vector{}, err
	}
	out := blas.NewVector(p.N)
	if err := blas.VecPMulModVM(d, out, c, p.Untwist); err != nil {
		return blas.Vector{}, err
	}
	return out, nil
}

// inverseNoScaleVM is InverseVM without the final scaling pass.
func inverseNoScaleVM[W, C any](d *kernels.DW[W, C], p *Plan, y blas.Vector) (blas.Vector, error) {
	o := d.O
	lanes := o.Lanes()
	half := p.N / 2
	src := blas.NewVector(p.N)
	copy(src.Hi, y.Hi)
	copy(src.Lo, y.Lo)
	dst := blas.NewVector(p.N)
	for s := p.M - 1; s >= 0; s-- {
		tw := p.InvTw[s]
		for i := 0; i < half; i += lanes {
			r0Hi := o.Load(src.Hi, 2*i)
			r0Lo := o.Load(src.Lo, 2*i)
			r1Hi := o.Load(src.Hi, 2*i+lanes)
			r1Lo := o.Load(src.Lo, 2*i+lanes)
			eHi, oHi := o.Deinterleave(r0Hi, r1Hi)
			eLo, oLo := o.Deinterleave(r0Lo, r1Lo)
			e := kernels.DWPair[W]{Hi: eHi, Lo: eLo}
			od := kernels.DWPair[W]{Hi: oHi, Lo: oLo}
			w := kernels.DWPair[W]{Hi: o.Load(tw.Hi, i), Lo: o.Load(tw.Lo, i)}
			t := d.MulMod(od, w)
			sum := d.AddMod(e, t)
			diff := d.SubMod(e, t)
			o.Store(dst.Hi, i, sum.Hi)
			o.Store(dst.Lo, i, sum.Lo)
			o.Store(dst.Hi, i+half, diff.Hi)
			o.Store(dst.Lo, i+half, diff.Lo)
		}
		src, dst = dst, src
	}
	return src, nil
}
