package perfmodel

import (
	"mqxgo/internal/blas"
	"mqxgo/internal/isa"
	"mqxgo/internal/kernels"
	"mqxgo/internal/modmath"
	"mqxgo/internal/u128"
	"mqxgo/internal/vm"
)

// Body is one recorded steady-state loop iteration of a kernel.
type Body struct {
	Level  isa.Level
	Lanes  int // elements processed per iteration
	Instrs []vm.Instr
	Bytes  int64 // bytes loaded + stored per iteration
}

// ButterflyBody records one forward-NTT stage iteration (Section 3.2):
// three double-word loads (inputs and twiddle), the butterfly, the output
// interleave, and the interleaved stores. This is the unit the paper
// reports as "runtime per butterfly".
func ButterflyBody(level isa.Level, mod *modmath.Modulus128) *Body {
	return record(level, mod, true, func(o dwAny) { o.butterflyIter() })
}

// BLASBody records one iteration of a Figure 4 BLAS kernel.
func BLASBody(level isa.Level, mod *modmath.Modulus128, op blas.Op) *Body {
	return record(level, mod, true, func(o dwAny) { o.blasIter(op) })
}

// ModOp selects a bare double-word modular operation for ModOpBody.
type ModOp int

// Bare modular operations (the Listing 1-3 kernels, without loads/stores).
const (
	ModAdd ModOp = iota
	ModSub
	ModMul
	ModButterfly
)

func (op ModOp) String() string {
	switch op {
	case ModAdd:
		return "addmod128"
	case ModSub:
		return "submod128"
	case ModMul:
		return "mulmod128"
	case ModButterfly:
		return "butterfly"
	}
	return "modop?"
}

// ModOpBody records one bare modular operation on register inputs — the
// unit the paper's Listing 4 analyzes with LLVM-MCA. No loads or stores
// are included.
func ModOpBody(level isa.Level, mod *modmath.Modulus128, op ModOp) *Body {
	return record(level, mod, false, func(o dwAny) { o.modOp(op) })
}

// InverseButterflyBody records one inverse-NTT stage iteration
// (deinterleave, twiddle multiply, add/sub, split stores).
func InverseButterflyBody(level isa.Level, mod *modmath.Modulus128) *Body {
	return record(level, mod, true, func(o dwAny) { o.inverseIter() })
}

// dwAny adapts the three generic backend instantiations to one interface
// for body recording.
type dwAny interface {
	butterflyIter()
	blasIter(op blas.Op)
	inverseIter()
	modOp(op ModOp)
	lanes() int
}

type dwRunner[W, C any] struct {
	d   *kernels.DW[W, C]
	buf blas.Vector // scratch arrays for loads/stores
	a   kernels.DWPair[W]
	// Register-resident operands, loaded in the preamble so ModOpBody
	// captures the bare arithmetic the way Listing 4 does.
	ra, rb, rw kernels.DWPair[W]
}

func newRunner[W, C any](o kernels.Ops[W, C], mod *modmath.Modulus128) *dwRunner[W, C] {
	d := kernels.NewDW[W, C](o, mod)
	// Scratch data: reduced values so kernels stay in-range.
	n := 4 * o.Lanes()
	buf := blas.NewVector(n)
	x := mod.Q.Sub64(3)
	for i := 0; i < n; i++ {
		buf.Set(i, x)
		x = mod.Sub(x, u128.From64(uint64(i+1)))
	}
	L := o.Lanes()
	r := &dwRunner[W, C]{d: d, buf: buf, a: blas.Broadcast128(o, mod.Q.Sub64(5))}
	r.ra = kernels.DWPair[W]{Hi: o.Load(buf.Hi, 0), Lo: o.Load(buf.Lo, 0)}
	r.rb = kernels.DWPair[W]{Hi: o.Load(buf.Hi, L), Lo: o.Load(buf.Lo, L)}
	r.rw = kernels.DWPair[W]{Hi: o.Load(buf.Hi, 2*L), Lo: o.Load(buf.Lo, 2*L)}
	return r
}

func (r *dwRunner[W, C]) lanes() int { return r.d.O.Lanes() }

func (r *dwRunner[W, C]) butterflyIter() {
	o := r.d.O
	L := o.Lanes()
	a := kernels.DWPair[W]{Hi: o.Load(r.buf.Hi, 0), Lo: o.Load(r.buf.Lo, 0)}
	b := kernels.DWPair[W]{Hi: o.Load(r.buf.Hi, L), Lo: o.Load(r.buf.Lo, L)}
	w := kernels.DWPair[W]{Hi: o.Load(r.buf.Hi, 2*L), Lo: o.Load(r.buf.Lo, 2*L)}
	even, odd := r.d.Butterfly(a, b, w)
	hi0, hi1 := o.Interleave(even.Hi, odd.Hi)
	lo0, lo1 := o.Interleave(even.Lo, odd.Lo)
	o.Store(r.buf.Hi, 0, hi0)
	o.Store(r.buf.Lo, 0, lo0)
	o.Store(r.buf.Hi, L, hi1)
	o.Store(r.buf.Lo, L, lo1)
}

func (r *dwRunner[W, C]) inverseIter() {
	o := r.d.O
	L := o.Lanes()
	r0Hi := o.Load(r.buf.Hi, 0)
	r0Lo := o.Load(r.buf.Lo, 0)
	r1Hi := o.Load(r.buf.Hi, L)
	r1Lo := o.Load(r.buf.Lo, L)
	eHi, oHi := o.Deinterleave(r0Hi, r1Hi)
	eLo, oLo := o.Deinterleave(r0Lo, r1Lo)
	e := kernels.DWPair[W]{Hi: eHi, Lo: eLo}
	od := kernels.DWPair[W]{Hi: oHi, Lo: oLo}
	w := kernels.DWPair[W]{Hi: o.Load(r.buf.Hi, 2*L), Lo: o.Load(r.buf.Lo, 2*L)}
	t := r.d.MulMod(od, w)
	sum := r.d.AddMod(e, t)
	diff := r.d.SubMod(e, t)
	o.Store(r.buf.Hi, 0, sum.Hi)
	o.Store(r.buf.Lo, 0, sum.Lo)
	o.Store(r.buf.Hi, L, diff.Hi)
	o.Store(r.buf.Lo, L, diff.Lo)
}

func (r *dwRunner[W, C]) modOp(op ModOp) {
	switch op {
	case ModAdd:
		r.d.AddMod(r.ra, r.rb)
	case ModSub:
		r.d.SubMod(r.ra, r.rb)
	case ModMul:
		r.d.MulMod(r.ra, r.rb)
	case ModButterfly:
		r.d.Butterfly(r.ra, r.rb, r.rw)
	}
}

func (r *dwRunner[W, C]) blasIter(op blas.Op) {
	o := r.d.O
	L := o.Lanes()
	x := kernels.DWPair[W]{Hi: o.Load(r.buf.Hi, 0), Lo: o.Load(r.buf.Lo, 0)}
	y := kernels.DWPair[W]{Hi: o.Load(r.buf.Hi, L), Lo: o.Load(r.buf.Lo, L)}
	var z kernels.DWPair[W]
	switch op {
	case blas.OpVecAdd:
		z = r.d.AddMod(x, y)
	case blas.OpVecSub:
		z = r.d.SubMod(x, y)
	case blas.OpVecPMul:
		z = r.d.MulMod(x, y)
	case blas.OpAxpy:
		z = r.d.MulAddMod(r.a, x, y)
	}
	o.Store(r.buf.Hi, 2*L, z.Hi)
	o.Store(r.buf.Lo, 2*L, z.Lo)
}

// SWButterflyBody records one steady-state iteration of the single-word
// (64-bit, RNS-channel) NTT stage: two data loads, a Shoup twiddle pair,
// the 64-bit butterfly, interleave and stores. Used for the
// RNS-vs-double-word comparison (Section 1).
func SWButterflyBody(level isa.Level, mod64 *modmath.Modulus64) *Body {
	m := vm.New(vm.TraceFull)
	lanes := level.Lanes()
	buf := make([]uint64, 8*lanes)
	for i := range buf {
		buf[i] = uint64(i+1) % mod64.Q
	}
	switch level {
	case isa.LevelScalar:
		b := kernels.NewBScalar(m)
		s := kernels.NewSW[vm.S, vm.F](b, mod64)
		m.BeginLoop()
		swIter(m, s, buf, lanes)
	case isa.LevelAVX2:
		b := kernels.NewB256(m)
		s := kernels.NewSW[vm.V4, vm.V4](b, mod64)
		m.BeginLoop()
		swIter(m, s, buf, lanes)
	default:
		b := kernels.NewB512(m, level)
		s := kernels.NewSW[vm.V, vm.M](b, mod64)
		m.BeginLoop()
		swIter(m, s, buf, lanes)
	}
	loopOverhead(m)
	return &Body{
		Level:  level,
		Lanes:  lanes,
		Instrs: m.Body(),
		Bytes:  m.BytesLoaded() + m.BytesStored(),
	}
}

func swIter[W, C any](m *vm.Machine, s *kernels.SW[W, C], buf []uint64, lanes int) {
	o := s.O
	a := o.Load(buf, 0)
	b := o.Load(buf, lanes)
	w := o.Load(buf, 2*lanes)
	wp := o.Load(buf, 3*lanes)
	even, odd := s.Butterfly(a, b, w, wp)
	r0, r1 := o.Interleave(even, odd)
	o.Store(buf, 4*lanes, r0)
	o.Store(buf, 5*lanes, r1)
}

// LazySWButterflyBody records one steady-state iteration of the PR 3
// lazy-reduction forward stage (ring.Shoup64.CTSpan) on a tier: four
// streamed loads (inputs plus the dense twiddle/precomputation pair), the
// relaxed [0, 2q) butterfly, interleave and stores. This is the candidate
// body the vector span kernels implement, costed in the VM before the
// assembly is written.
func LazySWButterflyBody(level isa.Level, mod64 *modmath.Modulus64) *Body {
	return recordSW(level, mod64, func(m *vm.Machine, r swAny) { r.lazyIter() })
}

// LazySWButterflyBlkBody is the blocked-kernel variant
// (ring.BlockedSpanKernels.CTSpanBlk): the compact-table twiddle pair is
// hoisted out of the run loop into broadcast registers, so the steady
// state streams only the two data inputs — half the loads of the dense
// body. This is the body the n=4096 hot stages (blk >= 8) execute.
func LazySWButterflyBlkBody(level isa.Level, mod64 *modmath.Modulus64) *Body {
	return recordSW(level, mod64, func(m *vm.Machine, r swAny) { r.lazyBlkIter() })
}

// swAny adapts the per-tier SW runners for body recording, like dwAny for
// the double-word bodies.
type swAny interface {
	lazyIter()
	lazyBlkIter()
}

type swRunner[W, C any] struct {
	s     *kernels.SW[W, C]
	buf   []uint64
	w, wp W // broadcast twiddle pair for the blocked body (preamble)
}

func newSWRunner[W, C any](o kernels.Ops[W, C], mod64 *modmath.Modulus64) *swRunner[W, C] {
	s := kernels.NewSW[W, C](o, mod64)
	buf := make([]uint64, 8*o.Lanes())
	for i := range buf {
		buf[i] = uint64(i+1) % mod64.Q
	}
	wv := buf[1]
	return &swRunner[W, C]{
		s:   s,
		buf: buf,
		w:   o.Broadcast(wv),
		wp:  o.Broadcast(mod64.ShoupPrecompute(wv)),
	}
}

func (r *swRunner[W, C]) lazyIter() {
	o := r.s.O
	L := o.Lanes()
	a := o.Load(r.buf, 0)
	b := o.Load(r.buf, L)
	w := o.Load(r.buf, 2*L)
	wp := o.Load(r.buf, 3*L)
	even, odd := r.s.LazyButterfly(a, b, w, wp)
	r0, r1 := o.Interleave(even, odd)
	o.Store(r.buf, 4*L, r0)
	o.Store(r.buf, 5*L, r1)
}

func (r *swRunner[W, C]) lazyBlkIter() {
	o := r.s.O
	L := o.Lanes()
	a := o.Load(r.buf, 0)
	b := o.Load(r.buf, L)
	even, odd := r.s.LazyButterfly(a, b, r.w, r.wp)
	r0, r1 := o.Interleave(even, odd)
	o.Store(r.buf, 4*L, r0)
	o.Store(r.buf, 5*L, r1)
}

func recordSW(level isa.Level, mod64 *modmath.Modulus64, run func(*vm.Machine, swAny)) *Body {
	m := vm.New(vm.TraceFull)
	var runner swAny
	var lanes int
	switch level {
	case isa.LevelScalar:
		runner = newSWRunner[vm.S, vm.F](kernels.NewBScalar(m), mod64)
		lanes = 1
	case isa.LevelAVX2:
		runner = newSWRunner[vm.V4, vm.V4](kernels.NewB256(m), mod64)
		lanes = 4
	default:
		runner = newSWRunner[vm.V, vm.M](kernels.NewB512(m, level), mod64)
		lanes = 8
	}
	m.BeginLoop()
	run(m, runner)
	loopOverhead(m)
	return &Body{
		Level:  level,
		Lanes:  lanes,
		Instrs: m.Body(),
		Bytes:  m.BytesLoaded() + m.BytesStored(),
	}
}

func record(level isa.Level, mod *modmath.Modulus128, withLoop bool, run func(o dwAny)) *Body {
	m := vm.New(vm.TraceFull)
	var runner dwAny
	switch level {
	case isa.LevelScalar:
		runner = newRunner[vm.S, vm.F](kernels.NewBScalar(m), mod)
	case isa.LevelAVX2:
		runner = newRunner[vm.V4, vm.V4](kernels.NewB256(m), mod)
	default:
		runner = newRunner[vm.V, vm.M](kernels.NewB512(m, level), mod)
	}
	m.BeginLoop()
	run(runner)
	if withLoop {
		loopOverhead(m)
	}
	return &Body{
		Level:  level,
		Lanes:  runner.lanes(),
		Instrs: m.Body(),
		Bytes:  m.BytesLoaded() + m.BytesStored(),
	}
}

// loopOverhead appends the per-iteration scalar loop machinery every tier
// pays (two pointer increments, an index compare, a fused test/branch).
// Vector tiers amortize it over 4 or 8 elements per iteration; the scalar
// tier pays it per element — one of the structural costs that favors SIMD.
func loopOverhead(m *vm.Machine) {
	i := m.SImm(0)
	j, _ := m.SAdd(i, i)
	k, _ := m.SAdd(j, j)
	_ = m.SCmpLt(k, j)
	_ = m.SFOr(vm.FalseFlag(), vm.FalseFlag())
}
