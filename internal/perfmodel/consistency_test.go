package perfmodel

import (
	"testing"

	"mqxgo/internal/blas"
	"mqxgo/internal/isa"
	"mqxgo/internal/kernels"
	"mqxgo/internal/modmath"
	"mqxgo/internal/ntt"
	"mqxgo/internal/u128"
	"mqxgo/internal/vm"
)

// TestModelMatchesFullTrace validates the analytic composition the NTT
// model relies on: (ops per butterfly-body iteration) x (iterations) must
// equal the instruction counts of a complete functional ForwardVM run,
// op for op. This pins the performance model to the real instruction
// stream rather than to an idealized formula.
func TestModelMatchesFullTrace(t *testing.T) {
	mod := modmath.DefaultModulus128()
	const n = 256

	for _, level := range []isa.Level{isa.LevelAVX512, isa.LevelMQX} {
		// Per-iteration op counts from the model's body (vector ops only;
		// the body also carries modeled scalar loop overhead that the
		// functional emulation does not execute).
		body := ButterflyBody(level, mod)
		perIter := map[isa.Op]int64{}
		for _, in := range body.Instrs {
			if in.Op >= 100 { // vector ops
				perIter[in.Op]++
			}
		}

		// Full functional run with counting.
		m := vm.New(vm.TraceCounts)
		b := kernels.NewB512(m, level)
		d := kernels.NewDW[vm.V, vm.M](b, mod)
		plan := ntt.MustPlan(mod, n)
		m.BeginLoop()
		x := blas.NewVector(n)
		v := u128.From64(9)
		for i := 0; i < n; i++ {
			x.Set(i, v)
			v = mod.Mul(v, mod.Q.Sub64(12345))
		}
		if _, err := ntt.ForwardVM(d, plan, x); err != nil {
			t.Fatal(err)
		}
		got := m.Counts()

		stages := plan.M
		iters := int64(stages) * int64(n/2) / 8
		for op, c := range perIter {
			if got[op] != c*iters {
				t.Errorf("%v %v: full trace has %d, model predicts %d x %d = %d",
					level, op, got[op], c, iters, c*iters)
			}
		}
		// No vector op may appear in the full run that the model missed,
		// except the loop-invariant constant setup (broadcasts and mask
		// materialization), which TraceCounts tallies but the model
		// rightly excludes from the steady-state body.
		for op, c := range got {
			if op == isa.AVX512Bcast || op == isa.AVX512KMov {
				continue
			}
			if op >= 100 && perIter[op] == 0 && c > 0 {
				t.Errorf("%v: op %v appears %d times in the full trace but not in the model body", level, op, c)
			}
		}
	}
}

// TestNTTDominatesPolyMulPipeline reproduces the paper's Section 1 claim
// that NTTs account for the overwhelming majority of FHE polynomial
// arithmetic: in the full negacyclic multiplication pipeline, the three
// transforms dominate the instruction count (>85% at size 1024, growing
// with size since the transforms are the only O(n log n) part).
func TestNTTDominatesPolyMulPipeline(t *testing.T) {
	mod := modmath.DefaultModulus128()
	const n = 1024
	plan := ntt.MustPlan(mod, n)

	countOps := func(run func(d *kernels.DW[vm.V, vm.M], x blas.Vector)) int64 {
		m := vm.New(vm.TraceCounts)
		b := kernels.NewB512(m, isa.LevelAVX512)
		d := kernels.NewDW[vm.V, vm.M](b, mod)
		m.BeginLoop()
		x := blas.NewVector(n)
		v := u128.From64(11)
		for i := 0; i < n; i++ {
			x.Set(i, v)
			v = mod.Mul(v, mod.Q.Sub64(999))
		}
		run(d, x)
		return m.TotalOps()
	}

	nttOps := countOps(func(d *kernels.DW[vm.V, vm.M], x blas.Vector) {
		if _, err := ntt.ForwardVM(d, plan, x); err != nil {
			t.Fatal(err)
		}
	})
	pipelineOps := countOps(func(d *kernels.DW[vm.V, vm.M], x blas.Vector) {
		if _, err := ntt.PolyMulNegacyclicVM(d, plan, x, x); err != nil {
			t.Fatal(err)
		}
	})

	// The pipeline runs 2 forward + 1 inverse transforms plus the twists
	// and the point-wise product. The transforms are the only
	// O(n log n) component, so their share grows with n; at n=1024 it is
	// already the bulk of the work (the paper's >90%-of-runtime figure is
	// at application level, where each homomorphic op runs many NTTs).
	share := float64(3*nttOps) / float64(pipelineOps)
	if share < 0.75 {
		t.Errorf("NTT share of polymul pipeline = %.1f%%, expected > 75%%", share*100)
	}
	t.Logf("NTT share of the negacyclic polymul pipeline at n=%d: %.1f%% (paper: >90%% of FHE runtime)", n, share*100)
}
