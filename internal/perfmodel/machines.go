// Package perfmodel turns kernel instruction traces into projected
// runtimes on modeled CPUs: the paper's two measurement machines (Table 4)
// and the speed-of-light target machines of Section 6.
//
// The pipeline is: kernel builder (bodies.go) -> one steady-state loop
// iteration on the trace machine -> internal/sched port-pressure cycles ->
// cycles x iterations + a cache-capacity memory model (model.go) -> ns at
// the machine's frequency. Arbitrary-precision and division-based baseline
// backends are *measured*, not modeled (measure.go), and anchored to the
// modeled scalar tier when composing the paper's figures.
package perfmodel

import (
	"fmt"

	"mqxgo/internal/isa"
)

// Machine describes one modeled CPU (Table 4 plus the SOL machines).
// Bandwidths are sustained per-core figures in bytes per cycle, used by the
// cache-capacity memory model; they are approximations from public
// streaming-bandwidth data at the fidelity needed for the L2-knee effect
// the paper reports at NTT size 2^16 (Section 5.4).
type Machine struct {
	Name  string
	March *isa.Microarch

	BaseGHz     float64
	MaxGHz      float64 // single-core max boost (used for 1-core runs)
	BoostAllGHz float64 // all-core boost (used by the SOL model)
	Cores       int

	L1Bytes        int64
	L2PerCoreBytes int64
	L3Bytes        int64

	L1BW, L2BW, L3BW, MemBW float64 // bytes/cycle, per core

	// ScalarSchedFactor derates the port-pressure cycle estimate for
	// scalar bodies (zero means 1.0, no derating). The sched model
	// assumes a perfectly software-pipelined loop; hand-written asm tiers
	// get close, but compiled scalar Go loops carry address arithmetic,
	// bounds logic and a serial dependence the scheduler's pure
	// port-pressure bound does not see. Calibrated machines (CIBenchHost)
	// carry the measured ratio so rankings against compiled scalar code
	// use realistic baselines; the paper's Table 4 machines keep the
	// factor at zero to stay faithful to the published model.
	ScalarSchedFactor float64
}

// IntelXeon8352Y is the paper's Intel measurement machine (Ice Lake-SP,
// Sunny Cove cores): 32 cores, 2.2/3.4 GHz, 48 MB L3, 1.28 MB L2 per core.
var IntelXeon8352Y = &Machine{
	Name:           "Intel Xeon 8352Y",
	March:          isa.SunnyCove,
	BaseGHz:        2.2,
	MaxGHz:         3.4,
	BoostAllGHz:    2.8,
	Cores:          32,
	L1Bytes:        48 << 10,
	L2PerCoreBytes: 1280 << 10,
	L3Bytes:        48 << 20,
	L1BW:           96, L2BW: 48, L3BW: 11, MemBW: 6,
}

// AMDEPYC9654 is the paper's AMD measurement machine (Zen 4): 96 cores,
// 2.4/3.7 GHz, 384 MB L3, 1 MB L2 per core. The very large, high-bandwidth
// L3 is why the paper's AMD results do not show the Intel L2 knee.
var AMDEPYC9654 = &Machine{
	Name:           "AMD EPYC 9654",
	March:          isa.Zen4,
	BaseGHz:        2.4,
	MaxGHz:         3.7,
	BoostAllGHz:    3.55,
	Cores:          96,
	L1Bytes:        32 << 10,
	L2PerCoreBytes: 1 << 20,
	L3Bytes:        384 << 20,
	L1BW:           96, L2BW: 64, L3BW: 40, MemBW: 8,
}

// IntelXeon6980P is the SOL target in the Xeon family (Section 6):
// 128 cores, 3.2 GHz all-core boost, 504 MB L3.
var IntelXeon6980P = &Machine{
	Name:           "Intel Xeon 6980P",
	March:          isa.SunnyCove, // projection reuses the measured core model
	BaseGHz:        2.0,
	MaxGHz:         3.9,
	BoostAllGHz:    3.2,
	Cores:          128,
	L1Bytes:        48 << 10,
	L2PerCoreBytes: 2 << 20,
	L3Bytes:        504 << 20,
	L1BW:           96, L2BW: 48, L3BW: 11, MemBW: 6,
}

// AMDEPYC9965S is the SOL target in the EPYC family: 192 cores, 3.35 GHz
// all-core boost, 384 MB L3.
var AMDEPYC9965S = &Machine{
	Name:           "AMD EPYC 9965S",
	March:          isa.Zen4,
	BaseGHz:        2.25,
	MaxGHz:         3.7,
	BoostAllGHz:    3.35,
	Cores:          192,
	L1Bytes:        32 << 10,
	L2PerCoreBytes: 1 << 20,
	L3Bytes:        384 << 20,
	L1BW:           96, L2BW: 64, L3BW: 40, MemBW: 8,
}

// CIBenchHost is the calibrated model of the repository's own bench
// host: a single-vCPU Ice Lake-generation Xeon at 2.7 GHz with AVX-512
// (the provenance block of the committed BENCH_PR*.json series). It is
// NOT a paper machine: its ScalarSchedFactor is fitted against the
// measured BENCH_PR7 n=4096 forward-transform series (see
// BenchPR7Anchor), where the AVX-512 asm lands within a few percent of
// the pure port-pressure bound (~2.56 measured vs ~2.5 modeled
// cycles/butterfly) but the compiled scalar loop runs ~1.7x slower than
// the bound (10.25 vs 6.0 cycles/butterfly). Ranking against that
// uncorrected scalar baseline is exactly how a VM ranking can pick the
// wrong body; pipeline_test.go bounds the drift so it cannot regress
// silently.
var CIBenchHost = &Machine{
	Name:           "CI bench host",
	March:          isa.SunnyCove,
	BaseGHz:        2.7,
	MaxGHz:         2.7, // steady measured clock; no boost headroom observed
	BoostAllGHz:    2.7,
	Cores:          1,
	L1Bytes:        48 << 10,
	L2PerCoreBytes: 1280 << 10,
	L3Bytes:        105 << 20,
	L1BW:           96, L2BW: 48, L3BW: 11, MemBW: 6,
	ScalarSchedFactor: 1.7,
}

// BenchPR7Anchor freezes the measured BENCH_PR7.json n=4096 forward
// transform series from the bench host (ns for the full 24576-butterfly
// transform, per kernel tier). CIBenchHost's calibration is fitted to
// these numbers, and the drift-bound test replays them so a machines.go
// edit that silently decalibrates the model fails loudly.
var BenchPR7Anchor = struct {
	N                          int
	ScalarNs, AVX2Ns, AVX512Ns float64
}{N: 4096, ScalarNs: 93307, AVX2Ns: 46125, AVX512Ns: 23332}

// MeasurementMachines are the Table 4 CPUs.
var MeasurementMachines = []*Machine{IntelXeon8352Y, AMDEPYC9654}

// SOLMachines are the Section 6 speed-of-light targets, indexed by the
// measurement machine they scale from.
var SOLMachines = map[string]*Machine{
	IntelXeon8352Y.Name: IntelXeon6980P,
	AMDEPYC9654.Name:    AMDEPYC9965S,
}

// MachineByName returns a machine from either set.
func MachineByName(name string) (*Machine, error) {
	for _, m := range MeasurementMachines {
		if m.Name == name {
			return m, nil
		}
	}
	for _, m := range SOLMachines {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("perfmodel: unknown machine %q", name)
}

// BWForWorkingSet returns the sustained per-core bandwidth (bytes/cycle)
// the memory model grants a kernel whose working set has the given size.
func (m *Machine) BWForWorkingSet(ws int64) float64 {
	switch {
	case ws <= m.L1Bytes:
		return m.L1BW
	case ws <= m.L2PerCoreBytes:
		return m.L2BW
	case ws <= m.L3Bytes:
		return m.L3BW
	default:
		return m.MemBW
	}
}
