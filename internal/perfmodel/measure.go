package perfmodel

import (
	"time"
)

// The paper's measurement protocol (Section 5.1): report the average of the
// trailing half of the runs, letting caches warm up and the clock settle.
// NTTs use 100 runs / final 50; BLAS ops use 1000 runs / final 500.

// MeasureProtocol runs fn total times and returns the mean duration of the
// final keep runs, in nanoseconds.
func MeasureProtocol(total, keep int, fn func()) float64 {
	if keep > total {
		keep = total
	}
	times := make([]time.Duration, 0, total)
	for i := 0; i < total; i++ {
		start := time.Now()
		fn()
		times = append(times, time.Since(start))
	}
	var sum time.Duration
	for _, d := range times[total-keep:] {
		sum += d
	}
	return float64(sum.Nanoseconds()) / float64(keep)
}

// MeasureNTT applies the NTT protocol (100 runs, final 50).
func MeasureNTT(fn func()) float64 { return MeasureProtocol(100, 50, fn) }

// MeasureBLAS applies the BLAS protocol (1000 runs, final 500).
func MeasureBLAS(fn func()) float64 { return MeasureProtocol(1000, 500, fn) }

// BaselineRatios holds host-measured slowdown factors of the baseline
// libraries relative to the optimized native scalar implementation. The
// figure generators anchor the "GMP" and "OpenFHE built-in backend" series
// to the modeled scalar tier through these ratios, so every series in a
// chart lives in one machine's time domain while the baseline gaps remain
// real measurements (see DESIGN.md §5).
type BaselineRatios struct {
	GenericOverNative float64 // division-based backend vs Barrett scalar
	BignumOverNative  float64 // math/big backend vs Barrett scalar
}

// Clamp returns ratios no smaller than 1 (a baseline can only be slower
// than the optimized scalar path; guard against measurement noise).
func (r BaselineRatios) Clamp() BaselineRatios {
	if r.GenericOverNative < 1 {
		r.GenericOverNative = 1
	}
	if r.BignumOverNative < 1 {
		r.BignumOverNative = 1
	}
	return r
}
