package perfmodel

import (
	"math"

	"mqxgo/internal/blas"
	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
	"mqxgo/internal/sched"
)

// KernelModel is the projected per-iteration cost of a kernel body on a
// machine.
type KernelModel struct {
	Machine *Machine
	Level   isa.Level
	Body    *Body
	Report  *sched.Report

	// CyclesPerIter is the steady-state compute estimate for one body
	// iteration (port-pressure / dispatch bound).
	CyclesPerIter float64
	// BytesPerIter is the memory traffic of one iteration.
	BytesPerIter int64
}

// NewKernelModel schedules a body on a machine. Scalar bodies are
// derated by the machine's ScalarSchedFactor (see Machine): the
// port-pressure bound is tight for the hand-scheduled vector asm but
// optimistic for compiled scalar loops, and calibrated machines carry
// the measured ratio.
func NewKernelModel(mach *Machine, body *Body) *KernelModel {
	rep := sched.Analyze(mach.March, body.Instrs)
	cycles := rep.Cycles
	if body.Level == isa.LevelScalar && mach.ScalarSchedFactor > 0 {
		cycles *= mach.ScalarSchedFactor
	}
	return &KernelModel{
		Machine:       mach,
		Level:         body.Level,
		Body:          body,
		Report:        rep,
		CyclesPerIter: cycles,
		BytesPerIter:  body.Bytes,
	}
}

// NTTModel models an n-point forward NTT: log2(n) constant-geometry stages
// of n/2 butterflies each, with the per-stage time being the larger of the
// compute estimate and the memory-traffic estimate at the bandwidth level
// implied by the transform's working set (this is the L2-capacity knee of
// Section 5.4).
type NTTModel struct {
	Kernel *KernelModel
	N      int
	// ElemBytes is the residue size for the working-set estimate: 16 for
	// the double-word bodies (the default when zero), 8 for the
	// single-word RNS-tower bodies.
	ElemBytes int
}

// NewNTTModel builds the model for size n from a butterfly kernel model.
func NewNTTModel(k *KernelModel, n int) *NTTModel { return &NTTModel{Kernel: k, N: n} }

// NewNTTModel64 builds the model for size n over 8-byte residues (the
// single-word lazy bodies).
func NewNTTModel64(k *KernelModel, n int) *NTTModel {
	return &NTTModel{Kernel: k, N: n, ElemBytes: 8}
}

// Stages returns log2(N).
func (m *NTTModel) Stages() int {
	s := 0
	for 1<<s < m.N {
		s++
	}
	return s
}

// WorkingSetBytes returns the per-stage resident working set: the ping-pong
// source and destination buffers, 16 bytes per 128-bit element each. This
// matches the paper's own L2-knee arithmetic (Section 5.4: ~1 MB per stage
// at 2^15, 2 MB at 2^16 vs. the 1.28 MB per-core Intel L2). Twiddle tables
// are streamed once per stage and count toward traffic, not residency.
func (m *NTTModel) WorkingSetBytes() int64 {
	eb := int64(m.ElemBytes)
	if eb == 0 {
		eb = 16
	}
	return int64(m.N) * eb * 2
}

// CyclesTotal returns the projected cycles for the full transform on one
// core.
func (m *NTTModel) CyclesTotal() float64 {
	k := m.Kernel
	itersPerStage := float64(m.N/2) / float64(k.Body.Lanes)
	compute := itersPerStage * k.CyclesPerIter
	bw := k.Machine.BWForWorkingSet(m.WorkingSetBytes())
	memory := itersPerStage * float64(k.BytesPerIter) / bw
	return float64(m.Stages()) * math.Max(compute, memory)
}

// TimeNs returns the projected single-core runtime at max boost frequency.
func (m *NTTModel) TimeNs() float64 {
	return m.CyclesTotal() / m.Kernel.Machine.MaxGHz
}

// NsPerButterfly returns the paper's Figure 5 metric: runtime per butterfly.
func (m *NTTModel) NsPerButterfly() float64 {
	butterflies := float64(m.N/2) * float64(m.Stages())
	return m.TimeNs() / butterflies
}

// MemoryBound reports whether the memory term dominates the compute term
// (the regime past the paper's L2 knee).
func (m *NTTModel) MemoryBound() bool {
	k := m.Kernel
	itersPerStage := float64(m.N/2) / float64(k.Body.Lanes)
	compute := itersPerStage * k.CyclesPerIter
	bw := k.Machine.BWForWorkingSet(m.WorkingSetBytes())
	memory := itersPerStage * float64(k.BytesPerIter) / bw
	return memory > compute
}

// BLASModel models a length-len Figure 4 BLAS kernel.
type BLASModel struct {
	Kernel *KernelModel
	Op     blas.Op
	Len    int
}

// NewBLASModel builds the model for one BLAS op at a vector length.
func NewBLASModel(k *KernelModel, op blas.Op, length int) *BLASModel {
	return &BLASModel{Kernel: k, Op: op, Len: length}
}

// WorkingSetBytes is three SoA vectors of 128-bit elements.
func (m *BLASModel) WorkingSetBytes() int64 { return int64(m.Len) * 16 * 3 }

// CyclesTotal returns the projected cycles for the whole vector.
func (m *BLASModel) CyclesTotal() float64 {
	k := m.Kernel
	iters := float64(m.Len) / float64(k.Body.Lanes)
	compute := iters * k.CyclesPerIter
	bw := k.Machine.BWForWorkingSet(m.WorkingSetBytes())
	memory := iters * float64(k.BytesPerIter) / bw
	return math.Max(compute, memory)
}

// NsPerElement returns the paper's Figure 4 metric: runtime per element.
func (m *BLASModel) NsPerElement() float64 {
	return m.CyclesTotal() / m.Kernel.Machine.MaxGHz / float64(m.Len)
}

// PolyMulModel composes the full negacyclic polynomial-multiplication
// pipeline from its parts: two forward transforms, one inverse transform
// (modeled with the forward butterfly — same operation mix), and three
// point-wise multiplication passes (two twists and the product) plus the
// untwist fold (counted as one more pass).
type PolyMulModel struct {
	NTT  *NTTModel
	PMul *BLASModel
	N    int
}

// NewPolyMulModel builds the pipeline model at size n for one tier.
func NewPolyMulModel(mach *Machine, level isa.Level, mod *modmath.Modulus128, n int) *PolyMulModel {
	return &PolyMulModel{
		NTT:  NewNTTModel(NewKernelModel(mach, ButterflyBody(level, mod)), n),
		PMul: NewBLASModel(NewKernelModel(mach, BLASBody(level, mod, blas.OpVecPMul)), blas.OpVecPMul, n),
		N:    n,
	}
}

// TimeNs is the projected pipeline time on one core.
func (m *PolyMulModel) TimeNs() float64 {
	transforms := 3 * m.NTT.TimeNs()
	pointwise := 4 * m.PMul.CyclesTotal() / m.NTT.Kernel.Machine.MaxGHz
	return transforms + pointwise
}

// NTTShare is the fraction of pipeline time spent in transforms — the
// paper's Section 1 observation that NTTs dominate FHE runtime.
func (m *PolyMulModel) NTTShare() float64 {
	return 3 * m.NTT.TimeNs() / m.TimeNs()
}

// ProjectNTT is the one-call helper: model an n-point NTT for a level on a
// machine with the given modulus.
func ProjectNTT(mach *Machine, level isa.Level, mod *modmath.Modulus128, n int) *NTTModel {
	body := ButterflyBody(level, mod)
	return NewNTTModel(NewKernelModel(mach, body), n)
}

// ProjectBLAS is the one-call helper for a Figure 4 kernel.
func ProjectBLAS(mach *Machine, level isa.Level, mod *modmath.Modulus128, op blas.Op, length int) *BLASModel {
	body := BLASBody(level, mod, op)
	return NewBLASModel(NewKernelModel(mach, body), op, length)
}
