package perfmodel

import (
	"testing"

	"mqxgo/internal/blas"
	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
)

func TestMachineLookupAndBW(t *testing.T) {
	if _, err := MachineByName("Intel Xeon 8352Y"); err != nil {
		t.Fatal(err)
	}
	if _, err := MachineByName("Intel Xeon 6980P"); err != nil {
		t.Fatal(err)
	}
	if _, err := MachineByName("nope"); err == nil {
		t.Fatal("expected error")
	}
	m := IntelXeon8352Y
	if bw := m.BWForWorkingSet(1 << 10); bw != m.L1BW {
		t.Errorf("small ws should hit L1 bw, got %f", bw)
	}
	if bw := m.BWForWorkingSet(1 << 20); bw != m.L2BW {
		t.Errorf("1MB ws should hit L2 bw, got %f", bw)
	}
	if bw := m.BWForWorkingSet(10 << 20); bw != m.L3BW {
		t.Errorf("10MB ws should hit L3 bw, got %f", bw)
	}
	if bw := m.BWForWorkingSet(1 << 30); bw != m.MemBW {
		t.Errorf("1GB ws should hit mem bw, got %f", bw)
	}
}

func TestBodiesNonEmpty(t *testing.T) {
	mod := modmath.DefaultModulus128()
	for _, level := range []isa.Level{isa.LevelScalar, isa.LevelAVX2, isa.LevelAVX512, isa.LevelMQX} {
		b := ButterflyBody(level, mod)
		if len(b.Instrs) == 0 || b.Bytes == 0 {
			t.Fatalf("%v: empty butterfly body", level)
		}
		ib := InverseButterflyBody(level, mod)
		if len(ib.Instrs) == 0 {
			t.Fatalf("%v: empty inverse body", level)
		}
		for _, op := range blas.AllOps {
			bb := BLASBody(level, mod, op)
			if len(bb.Instrs) == 0 {
				t.Fatalf("%v %v: empty blas body", level, op)
			}
		}
	}
}

// TestPaperShapeNTT checks the headline ordering of Figure 5: per-butterfly
// time strictly improves from scalar -> AVX-512 -> MQX on both machines,
// and the MQX gain is larger on AMD than on Intel (3.7x vs 2.1x in the
// paper, driven by Zen 4's native 64-bit vector multiplier).
func TestPaperShapeNTT(t *testing.T) {
	mod := modmath.DefaultModulus128()
	n := 1 << 14
	type res struct{ scalar, avx2, avx512, mqx float64 }
	get := func(mach *Machine) res {
		return res{
			scalar: ProjectNTT(mach, isa.LevelScalar, mod, n).NsPerButterfly(),
			avx2:   ProjectNTT(mach, isa.LevelAVX2, mod, n).NsPerButterfly(),
			avx512: ProjectNTT(mach, isa.LevelAVX512, mod, n).NsPerButterfly(),
			mqx:    ProjectNTT(mach, isa.LevelMQX, mod, n).NsPerButterfly(),
		}
	}
	intel := get(IntelXeon8352Y)
	amd := get(AMDEPYC9654)
	for name, r := range map[string]res{"intel": intel, "amd": amd} {
		if !(r.mqx < r.avx512 && r.avx512 < r.scalar) {
			t.Errorf("%s: want mqx < avx512 < scalar, got %+v", name, r)
		}
		if r.avx512 >= r.avx2 {
			t.Errorf("%s: avx512 (%f) should beat avx2 (%f)", name, r.avx512, r.avx2)
		}
	}
	gainIntel := intel.avx512 / intel.mqx
	gainAMD := amd.avx512 / amd.mqx
	if gainAMD <= gainIntel {
		t.Errorf("MQX gain on AMD (%.2fx) should exceed Intel (%.2fx)", gainAMD, gainIntel)
	}
	t.Logf("MQX gain over AVX-512: intel %.2fx, amd %.2fx (paper: 2.1x, 3.7x)", gainIntel, gainAMD)
	t.Logf("AVX-512 gain over scalar: intel %.2fx, amd %.2fx (paper: 2.4x, ~2x)",
		intel.scalar/intel.avx512, amd.scalar/amd.avx512)
}

// TestL2KneeIntelMQX checks the Section 5.4 observation: on Intel, MQX
// becomes memory-bound when the per-stage working set spills out of L2
// (size 2^16), while AVX-512 remains compute-bound there.
func TestL2KneeIntelMQX(t *testing.T) {
	mod := modmath.DefaultModulus128()
	kMQX := NewKernelModel(IntelXeon8352Y, ButterflyBody(isa.LevelMQX, mod))
	kAVX := NewKernelModel(IntelXeon8352Y, ButterflyBody(isa.LevelAVX512, mod))

	small := NewNTTModel(kMQX, 1<<14)
	big := NewNTTModel(kMQX, 1<<16)
	if small.MemoryBound() {
		t.Error("MQX at 2^14 should be compute-bound on Intel")
	}
	if !big.MemoryBound() {
		t.Error("MQX at 2^16 should be memory-bound on Intel")
	}
	if big.NsPerButterfly() <= small.NsPerButterfly() {
		t.Error("MQX per-butterfly time should degrade past the L2 knee")
	}
	if NewNTTModel(kAVX, 1<<16).MemoryBound() {
		t.Error("AVX-512 at 2^16 should remain compute-bound on Intel")
	}
}

// TestPaperShapeBLAS checks Figure 4 orderings: MQX < AVX-512 < AVX2 per
// element for the multiplication-heavy ops.
func TestPaperShapeBLAS(t *testing.T) {
	mod := modmath.DefaultModulus128()
	const vlen = 1024
	for _, mach := range MeasurementMachines {
		for _, op := range []blas.Op{blas.OpVecPMul, blas.OpAxpy} {
			s := ProjectBLAS(mach, isa.LevelScalar, mod, op, vlen).NsPerElement()
			a2 := ProjectBLAS(mach, isa.LevelAVX2, mod, op, vlen).NsPerElement()
			a5 := ProjectBLAS(mach, isa.LevelAVX512, mod, op, vlen).NsPerElement()
			mq := ProjectBLAS(mach, isa.LevelMQX, mod, op, vlen).NsPerElement()
			if !(mq < a5 && a5 < a2) {
				t.Errorf("%s %v: want mqx < avx512 < avx2, got %.3f %.3f %.3f",
					mach.Name, op, mq, a5, a2)
			}
			if mq >= s {
				t.Errorf("%s %v: mqx (%.3f) should beat scalar (%.3f)", mach.Name, op, mq, s)
			}
		}
	}
}

// TestSensitivityOrdering mirrors Figure 6: every MQX variant beats the
// AVX-512 base, full MQX beats the single-feature variants, +Mh,C is close
// to full MQX, and +P is at least as fast as full MQX.
func TestSensitivityOrdering(t *testing.T) {
	mod := modmath.DefaultModulus128()
	n := 1 << 14
	get := func(level isa.Level) float64 {
		return ProjectNTT(AMDEPYC9654, level, mod, n).NsPerButterfly()
	}
	base := get(isa.LevelAVX512)
	m := get(isa.LevelMQXMulOnly)
	c := get(isa.LevelMQXCarryOnly)
	mc := get(isa.LevelMQX)
	mhc := get(isa.LevelMQXMulHi)
	mcp := get(isa.LevelMQXPredicated)

	for name, v := range map[string]float64{"+M": m, "+C": c, "+M,C": mc, "+Mh,C": mhc, "+M,C,P": mcp} {
		if v >= base {
			t.Errorf("%s (%.3f) should beat AVX-512 base (%.3f)", name, v, base)
		}
	}
	if !(mc < m && mc < c) {
		t.Errorf("full MQX (%.3f) should beat +M (%.3f) and +C (%.3f)", mc, m, c)
	}
	if mcp > mc {
		t.Errorf("+M,C,P (%.3f) should not be slower than +M,C (%.3f)", mcp, mc)
	}
	// +Mh,C keeps most of the benefit (within ~25% of full MQX).
	if mhc > mc*1.25 {
		t.Errorf("+Mh,C (%.3f) should be close to full MQX (%.3f)", mhc, mc)
	}
	t.Logf("normalized to base: +M %.2f, +C %.2f, +M,C %.2f, +Mh,C %.2f, +M,C,P %.2f",
		m/base, c/base, mc/base, mhc/base, mcp/base)
}

func TestMeasureProtocol(t *testing.T) {
	calls := 0
	ns := MeasureProtocol(10, 5, func() { calls++ })
	if calls != 10 {
		t.Errorf("fn called %d times, want 10", calls)
	}
	if ns < 0 {
		t.Errorf("negative duration %f", ns)
	}
	// keep > total clamps.
	calls = 0
	MeasureProtocol(3, 10, func() { calls++ })
	if calls != 3 {
		t.Errorf("fn called %d times, want 3", calls)
	}
}

func TestBaselineRatioClamp(t *testing.T) {
	r := BaselineRatios{GenericOverNative: 0.5, BignumOverNative: 20}.Clamp()
	if r.GenericOverNative != 1 || r.BignumOverNative != 20 {
		t.Errorf("clamp wrong: %+v", r)
	}
}
