package perfmodel

import (
	"sort"

	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
)

// This file teaches the performance-model tier the shapes added since the
// seed: the PR 3 lazy-reduction span kernels (as VM-recorded bodies, see
// bodies.go) and the PR 4/PR 6 BEHZ resident-multiply pipeline (as a
// transform census over the NTT model). Together they make the model
// predictive for the vector kernel tier: candidate bodies are recorded,
// scheduled, ranked, and the chosen body's projected speedup lands next to
// the measured one in BENCH_PR7.json.

// BEHZResidentModel counts the mandatory transforms of one NTT-resident
// BEHZ multiply (internal/fhe.mulResident) at a ladder level with K prime
// towers and M = K+1 extension towers, and projects their total time from
// a butterfly kernel model. The census mirrors the pipeline stage by
// stage:
//
//	crossing:   nops·K inverse transforms (operands leave residence once)
//	tensor Q:   3·K inverse transforms (operands consumed in place)
//	tensor ext: (nops+3)·M transforms (nops forward + 3 inverse per tower)
//	relin:      K·(K+2) forward transforms (K digit lifts + NTT(c1), NTT(c0)
//	            per tower)
//
// where nops is 2 when squaring (the ladder's dominant workload — shared
// operand rows) and 4 for a general product. At K=4 squaring this is the
// ~69 mandatory transforms profiling attributes ~half the remaining
// resident-multiply time to.
type BEHZResidentModel struct {
	NTT      *NTTModel
	K        int
	Squaring bool
}

// NewBEHZResidentModel builds the census over an NTT model (typically a
// single-word lazy body at the ladder's ring size).
func NewBEHZResidentModel(ntt *NTTModel, k int, squaring bool) *BEHZResidentModel {
	return &BEHZResidentModel{NTT: ntt, K: k, Squaring: squaring}
}

// ExtTowers returns M, the BEHZ extension-base size (p_1..p_K plus m_sk).
func (m *BEHZResidentModel) ExtTowers() int { return m.K + 1 }

func (m *BEHZResidentModel) nops() int {
	if m.Squaring {
		return 2
	}
	return 4
}

// Transforms returns the mandatory transform count of one resident
// multiply.
func (m *BEHZResidentModel) Transforms() int {
	k, ext, nops := m.K, m.ExtTowers(), m.nops()
	return nops*k + 3*k + (nops+3)*ext + k*(k+2)
}

// TransformNs projects the single-core time of those transforms.
func (m *BEHZResidentModel) TransformNs() float64 {
	return float64(m.Transforms()) * m.NTT.TimeNs()
}

// MulCtSpeedup is the Amdahl bound for the whole resident multiply when
// the transform share of its runtime is nttShare and the butterfly kernel
// gets kernelSpeedup times faster: 1 / (1 - share + share/speedup).
func MulCtSpeedup(nttShare, kernelSpeedup float64) float64 {
	if kernelSpeedup <= 0 {
		return 0
	}
	return 1 / (1 - nttShare + nttShare/kernelSpeedup)
}

// BodyCandidate is one ranked vector-body candidate: a lazy butterfly
// body at an ISA tier, dense or blocked, with its projected cost.
type BodyCandidate struct {
	Name           string
	Level          isa.Level
	Blocked        bool
	NsPerButterfly float64
	BytesPerIter   int64
	// SpeedupVsScalar is the projected gain over the scalar lazy dense
	// body — the PR 3 kernel the vector tier must beat.
	SpeedupVsScalar float64
}

// RankLazyBodies records, schedules, and ranks the candidate lazy
// butterfly bodies for an n-point transform on a machine: dense and
// blocked variants at scalar, AVX2 and AVX-512. The result is sorted
// fastest first; the scalar dense body is the speedup baseline. This is
// the paper's cost-before-commit methodology applied to the tier below
// the span seam.
func RankLazyBodies(mach *Machine, mod64 *modmath.Modulus64, n int) []BodyCandidate {
	levels := []isa.Level{isa.LevelScalar, isa.LevelAVX2, isa.LevelAVX512}
	var out []BodyCandidate
	var baseline float64
	for _, lv := range levels {
		for _, blocked := range []bool{false, true} {
			var body *Body
			name := lv.String() + "-dense"
			if blocked {
				body = LazySWButterflyBlkBody(lv, mod64)
				name = lv.String() + "-blocked"
			} else {
				body = LazySWButterflyBody(lv, mod64)
			}
			ntt := NewNTTModel64(NewKernelModel(mach, body), n)
			c := BodyCandidate{
				Name:           name,
				Level:          lv,
				Blocked:        blocked,
				NsPerButterfly: ntt.NsPerButterfly(),
				BytesPerIter:   body.Bytes,
			}
			if lv == isa.LevelScalar && !blocked {
				baseline = c.NsPerButterfly
			}
			out = append(out, c)
		}
	}
	for i := range out {
		if out[i].NsPerButterfly > 0 {
			out[i].SpeedupVsScalar = baseline / out[i].NsPerButterfly
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].NsPerButterfly < out[j].NsPerButterfly
	})
	return out
}

// ProjectLazyNTT64 is the one-call helper for the single-word lazy tier:
// model an n-point forward NTT for a level, dense or blocked body.
func ProjectLazyNTT64(mach *Machine, level isa.Level, mod64 *modmath.Modulus64, n int, blocked bool) *NTTModel {
	var body *Body
	if blocked {
		body = LazySWButterflyBlkBody(level, mod64)
	} else {
		body = LazySWButterflyBody(level, mod64)
	}
	return NewNTTModel64(NewKernelModel(mach, body), n)
}
