package perfmodel

import (
	"testing"

	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
)

func TestPolyMulModel(t *testing.T) {
	mod := modmath.DefaultModulus128()
	for _, mach := range MeasurementMachines {
		for _, level := range isa.AllLevels {
			m := NewPolyMulModel(mach, level, mod, 1<<12)
			if m.TimeNs() <= 0 {
				t.Fatalf("%s %v: non-positive time", mach.Name, level)
			}
			share := m.NTTShare()
			if share < 0.7 || share >= 1 {
				t.Errorf("%s %v: NTT share %.2f outside (0.7, 1)", mach.Name, level, share)
			}
			// Pipeline must cost more than its transforms alone.
			if m.TimeNs() <= 3*m.NTT.TimeNs() {
				t.Errorf("%s %v: pipeline not accounting for point-wise passes", mach.Name, level)
			}
		}
	}
	// Share grows with size (transforms are the only O(n log n) part).
	small := NewPolyMulModel(AMDEPYC9654, isa.LevelMQX, mod, 1<<10)
	big := NewPolyMulModel(AMDEPYC9654, isa.LevelMQX, mod, 1<<15)
	if big.NTTShare() <= small.NTTShare() {
		t.Errorf("NTT share should grow with size: %.3f -> %.3f", small.NTTShare(), big.NTTShare())
	}
}

func lazyTestMod64(t *testing.T) *modmath.Modulus64 {
	t.Helper()
	ps, err := modmath.FindNTTPrimes64(59, 8192, 1)
	if err != nil {
		t.Fatal(err)
	}
	return modmath.MustModulus64(ps[0])
}

// The lazy bodies must cost less than the strict seed-era body at every
// tier: dropping the Shoup correction and the canonical subtract is the
// PR 3 measured win, and the model has to reproduce its direction before
// it can be trusted predictively.
func TestLazyBodyBeatsStrict(t *testing.T) {
	mod := lazyTestMod64(t)
	for _, lv := range []isa.Level{isa.LevelScalar, isa.LevelAVX2, isa.LevelAVX512} {
		strictBody := SWButterflyBody(lv, mod)
		lazyBody := LazySWButterflyBody(lv, mod)
		strict := NewKernelModel(IntelXeon8352Y, strictBody)
		lazy := NewKernelModel(IntelXeon8352Y, lazyBody)
		// The lazy body is strictly shorter; projected cycles may only tie
		// when another resource dominates (on the Ice Lake model the
		// microcoded VPMULLQ keeps the AVX-512 port-0 pressure constant,
		// so dropping the condsubs does not move the bound — exactly the
		// kind of ranking insight the VM pass is for).
		if len(lazyBody.Instrs) >= len(strictBody.Instrs) {
			t.Errorf("%v: lazy body %d instrs not below strict %d",
				lv, len(lazyBody.Instrs), len(strictBody.Instrs))
		}
		if lazy.CyclesPerIter > strict.CyclesPerIter {
			t.Errorf("%v: lazy %.2f cycles/iter above strict %.2f",
				lv, lazy.CyclesPerIter, strict.CyclesPerIter)
		}
	}
}

// The blocked body hoists the compact-table twiddle pair out of the run
// loop: of the dense body's six streamed vectors (four loads, two
// stores) the two table loads disappear, leaving two thirds the traffic.
func TestBlockedBodyStreamsLess(t *testing.T) {
	mod := lazyTestMod64(t)
	for _, lv := range []isa.Level{isa.LevelScalar, isa.LevelAVX2, isa.LevelAVX512} {
		dense := LazySWButterflyBody(lv, mod)
		blk := LazySWButterflyBlkBody(lv, mod)
		saved := int64(2 * 8 * lv.Lanes())
		if dense.Bytes-blk.Bytes != saved {
			t.Errorf("%v: blocked body streams %d bytes, dense %d (want %d saved)",
				lv, blk.Bytes, dense.Bytes, saved)
		}
	}
}

// The predictive ranking must put a vector body first with a projected
// win over the scalar lazy baseline — the go/no-go the assembly tier was
// gated on — and keep the per-butterfly ordering AVX-512 <= AVX2 <=
// scalar on dense bodies at the ladder's ring size.
func TestRankLazyBodies(t *testing.T) {
	mod := lazyTestMod64(t)
	ranked := RankLazyBodies(IntelXeon8352Y, mod, 4096)
	if len(ranked) != 6 {
		t.Fatalf("got %d candidates, want 6", len(ranked))
	}
	if ranked[0].Level == isa.LevelScalar {
		t.Errorf("fastest candidate is scalar (%+v); vector tier projected to lose", ranked[0])
	}
	if ranked[0].SpeedupVsScalar <= 1 {
		t.Errorf("fastest candidate speedup %.2f not above 1", ranked[0].SpeedupVsScalar)
	}
	ns := map[string]float64{}
	for _, c := range ranked {
		ns[c.Name] = c.NsPerButterfly
	}
	if !(ns["avx512-dense"] <= ns["avx2-dense"] && ns["avx2-dense"] <= ns["scalar-dense"]) {
		t.Errorf("dense tier ordering violated: %+v", ns)
	}
}

// The calibrated bench-host machine must predict the committed
// BENCH_PR7 measurements within a bounded drift, so RankLazyBodies
// cannot silently rank the wrong body again. ROADMAP recorded the
// uncalibrated VM as ~2x conservative on the bench host: the
// port-pressure bound was tight for the asm tiers but optimistic for
// the compiled scalar baseline, which inflated nothing in isolation
// but skewed every SpeedupVsScalar the ranking is gated on.
// CIBenchHost carries the fitted ScalarSchedFactor; this test replays
// the frozen anchor and bounds per-tier absolute drift and the
// speedup-vs-scalar drift at 30%.
func TestCIBenchHostDriftBound(t *testing.T) {
	mod := lazyTestMod64(t)
	a := BenchPR7Anchor
	ranked := RankLazyBodies(CIBenchHost, mod, a.N)
	if ranked[0].Name != "avx512-dense" && ranked[0].Name != "avx512-blocked" {
		t.Errorf("fastest candidate on bench host is %s; measured fastest tier is avx512", ranked[0].Name)
	}
	ns := map[string]float64{}
	speedup := map[string]float64{}
	for _, c := range ranked {
		ns[c.Name] = c.NsPerButterfly
		speedup[c.Name] = c.SpeedupVsScalar
	}
	butterflies := float64(a.N / 2 * 12) // log2(4096) stages
	measured := map[string]float64{
		"scalar-dense": a.ScalarNs / butterflies,
		"avx2-dense":   a.AVX2Ns / butterflies,
		"avx512-dense": a.AVX512Ns / butterflies,
	}
	const maxDrift = 0.30
	for name, m := range measured {
		drift := ns[name]/m - 1
		if drift < -maxDrift || drift > maxDrift {
			t.Errorf("%s: predicted %.3f ns/bfly vs measured %.3f (drift %+.0f%%, bound ±%.0f%%)",
				name, ns[name], m, 100*drift, 100*maxDrift)
		}
	}
	for name, mNs := range measured {
		if name == "scalar-dense" {
			continue
		}
		want := measured["scalar-dense"] / mNs
		got := speedup[name]
		drift := got/want - 1
		if drift < -maxDrift || drift > maxDrift {
			t.Errorf("%s: predicted speedup %.2f vs measured %.2f (drift %+.0f%%)",
				name, got, want, 100*drift)
		}
	}
	// The paper machines stay uncalibrated: Table 4 fidelity (the 2.4x
	// Intel scalar->AVX-512 gain TestPaperShapeNTT logs) must not move.
	for _, m := range MeasurementMachines {
		if m.ScalarSchedFactor != 0 {
			t.Errorf("%s: paper machine carries ScalarSchedFactor %.2f, must stay 0",
				m.Name, m.ScalarSchedFactor)
		}
	}
}

// The BEHZ census must reproduce the profiled transform counts: the ~69
// mandatory transforms of a k=4 resident squaring (the ladder workload)
// and 87 for a general product.
func TestBEHZResidentCensus(t *testing.T) {
	mod := lazyTestMod64(t)
	ntt := ProjectLazyNTT64(IntelXeon8352Y, isa.LevelScalar, mod, 4096, true)
	sq := NewBEHZResidentModel(ntt, 4, true)
	if got := sq.Transforms(); got != 69 {
		t.Errorf("k=4 squaring census = %d transforms, want 69", got)
	}
	gen := NewBEHZResidentModel(ntt, 4, false)
	if got := gen.Transforms(); got != 87 {
		t.Errorf("k=4 general census = %d transforms, want 87", got)
	}
	if sq.TransformNs() <= 0 {
		t.Errorf("TransformNs not positive")
	}
	// Amdahl sanity at the profiled ~0.5 NTT share: a 2x kernel win
	// projects a ~1.33x multiply win.
	if s := MulCtSpeedup(0.5, 2); s < 1.3 || s > 1.4 {
		t.Errorf("MulCtSpeedup(0.5, 2) = %.3f, want ~1.33", s)
	}
}

func TestSWButterflyBody(t *testing.T) {
	ps, err := modmath.FindNTTPrimes64(60, 1<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	mod64 := modmath.MustModulus64(ps[0])
	for _, level := range []isa.Level{isa.LevelScalar, isa.LevelAVX2, isa.LevelAVX512, isa.LevelMQX} {
		b := SWButterflyBody(level, mod64)
		if len(b.Instrs) == 0 || b.Bytes == 0 {
			t.Fatalf("%v: empty single-word body", level)
		}
		if b.Lanes != level.Lanes() {
			t.Fatalf("%v: lanes = %d", level, b.Lanes)
		}
		// The 64-bit butterfly must be much smaller than the 128-bit one.
		dw := ButterflyBody(level, modmath.DefaultModulus128())
		if 2*len(b.Instrs) >= len(dw.Instrs) {
			t.Errorf("%v: single-word body (%d instrs) should be <1/2 of double-word (%d)",
				level, len(b.Instrs), len(dw.Instrs))
		}
	}
}
