package perfmodel

import (
	"testing"

	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
)

func TestPolyMulModel(t *testing.T) {
	mod := modmath.DefaultModulus128()
	for _, mach := range MeasurementMachines {
		for _, level := range isa.AllLevels {
			m := NewPolyMulModel(mach, level, mod, 1<<12)
			if m.TimeNs() <= 0 {
				t.Fatalf("%s %v: non-positive time", mach.Name, level)
			}
			share := m.NTTShare()
			if share < 0.7 || share >= 1 {
				t.Errorf("%s %v: NTT share %.2f outside (0.7, 1)", mach.Name, level, share)
			}
			// Pipeline must cost more than its transforms alone.
			if m.TimeNs() <= 3*m.NTT.TimeNs() {
				t.Errorf("%s %v: pipeline not accounting for point-wise passes", mach.Name, level)
			}
		}
	}
	// Share grows with size (transforms are the only O(n log n) part).
	small := NewPolyMulModel(AMDEPYC9654, isa.LevelMQX, mod, 1<<10)
	big := NewPolyMulModel(AMDEPYC9654, isa.LevelMQX, mod, 1<<15)
	if big.NTTShare() <= small.NTTShare() {
		t.Errorf("NTT share should grow with size: %.3f -> %.3f", small.NTTShare(), big.NTTShare())
	}
}

func TestSWButterflyBody(t *testing.T) {
	ps, err := modmath.FindNTTPrimes64(60, 1<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	mod64 := modmath.MustModulus64(ps[0])
	for _, level := range []isa.Level{isa.LevelScalar, isa.LevelAVX2, isa.LevelAVX512, isa.LevelMQX} {
		b := SWButterflyBody(level, mod64)
		if len(b.Instrs) == 0 || b.Bytes == 0 {
			t.Fatalf("%v: empty single-word body", level)
		}
		if b.Lanes != level.Lanes() {
			t.Fatalf("%v: lanes = %d", level, b.Lanes)
		}
		// The 64-bit butterfly must be much smaller than the 128-bit one.
		dw := ButterflyBody(level, modmath.DefaultModulus128())
		if 2*len(b.Instrs) >= len(dw.Instrs) {
			t.Errorf("%v: single-word body (%d instrs) should be <1/2 of double-word (%d)",
				level, len(b.Instrs), len(dw.Instrs))
		}
	}
}
