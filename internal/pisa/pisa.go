// Package pisa implements performance projection using proxy ISA
// (Section 4.2): estimating the cost of an instruction that hardware does
// not (yet) execute by substituting the cost of the most structurally
// similar existing instruction.
//
// The MQX instructions are always costed this way (isa.PISAProxy, Table 3).
// This package implements the methodology's sanity check (Section 5.2,
// Tables 5 and 6): apply the same substitution to *existing* instructions
// whose true cost is known, and measure the relative error epsilon (Eq. 12)
// on a full NTT workload.
package pisa

import (
	"fmt"

	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
	"mqxgo/internal/perfmodel"
	"mqxgo/internal/vm"
)

// ValidationResult is one cell of Table 6.
type ValidationResult struct {
	Pair    isa.ValidationPair
	Machine *perfmodel.Machine
	// TargetNs is the NTT runtime with the target instruction's true cost.
	TargetNs float64
	// ProxyNs is the runtime predicted via the proxy substitution,
	// including the dependency-guard instruction the paper inserts to
	// preserve data flow ("guard the output with volatile", Section 5.2).
	ProxyNs float64
	// EpsilonPct is Eq. 12: (t_target - t_proxy) / t_target * 100.
	// Negative values mean PISA was conservative (predicted slower).
	EpsilonPct float64
}

// ValidationSize is the NTT size used for the sanity check: 2^14, "the
// average among the NTT sizes targeted in this paper" (Section 5.2).
const ValidationSize = 1 << 14

// levelForTarget maps each Table 5 target instruction to the kernel tier
// whose butterfly actually issues it.
func levelForTarget(op isa.Op) (isa.Level, error) {
	switch op {
	case isa.AVX2MulUDQ:
		return isa.LevelAVX2, nil
	case isa.AVX512MaskAddQ, isa.AVX512MaskSubQ:
		return isa.LevelAVX512, nil
	}
	return 0, fmt.Errorf("pisa: no kernel tier exercises %v", op)
}

// ProxyMarch returns a copy of march in which target's cost entry is
// replaced by proxy's. When guard is true, one extra micro-op is appended —
// the dependency-preserving instruction the paper inserts when the proxy
// does not consume the same mask-register inputs as the target.
func ProxyMarch(march *isa.Microarch, target, proxy isa.Op, guard bool) *isa.Microarch {
	base := march.CostOf(proxy)
	sub := isa.Cost{Lat: base.Lat, Uops: append([]isa.PortSet{}, base.Uops...)}
	if guard {
		sub.Uops = append(sub.Uops, base.Uops[0])
	}
	costs := make(map[isa.Op]isa.Cost, len(march.Costs)+1)
	for op, c := range march.Costs {
		costs[op] = c
	}
	costs[target] = sub
	return &isa.Microarch{
		Name:          march.Name + "+proxy(" + target.String() + ")",
		PortNames:     march.PortNames,
		DispatchWidth: march.DispatchWidth,
		Costs:         costs,
	}
}

// guardOp returns the dependency-preserving instruction the proxy build
// inserts next to each substituted instruction ("guard the output with
// volatile", Section 5.2): a mask move for the mask-register pairs, a
// vector ALU op for the AVX2 pair.
func guardOp(target isa.Op) isa.Op {
	switch target {
	case isa.AVX512MaskAddQ, isa.AVX512MaskSubQ:
		return isa.AVX512KMov
	default:
		return isa.AVX2And
	}
}

// SubstituteBody rebuilds a recorded loop body the way the paper rebuilds
// its kernels for the validation experiment: every occurrence of target is
// replaced by the proxy instruction followed by the guard instruction
// (dependences preserved through the proxy's outputs).
func SubstituteBody(body []vm.Instr, target, proxy, guard isa.Op) []vm.Instr {
	out := make([]vm.Instr, 0, len(body)+8)
	for _, in := range body {
		if in.Op != target {
			out = append(out, in)
			continue
		}
		sub := in
		sub.Op = proxy
		out = append(out, sub)
		out = append(out, vm.Instr{Op: guard, Out: [2]int32{-1, -1}, In: [4]int32{in.Out[0], -1, -1, -1}})
	}
	return out
}

// Validate runs the Table 6 experiment for one machine: for each Table 5
// pair, model the 2^14-point NTT from the original body (ground truth) and
// from the proxy-substituted body (the PISA projection), and report
// epsilon.
func Validate(mach *perfmodel.Machine, mod *modmath.Modulus128) ([]ValidationResult, error) {
	var out []ValidationResult
	for _, pair := range isa.PISAValidationPairs {
		level, err := levelForTarget(pair.Target)
		if err != nil {
			return nil, err
		}
		body := perfmodel.ButterflyBody(level, mod)
		tTarget := perfmodel.NewNTTModel(perfmodel.NewKernelModel(mach, body), ValidationSize).TimeNs()

		proxyBody := &perfmodel.Body{
			Level:  body.Level,
			Lanes:  body.Lanes,
			Instrs: SubstituteBody(body.Instrs, pair.Target, pair.Proxy, guardOp(pair.Target)),
			Bytes:  body.Bytes,
		}
		tProxy := perfmodel.NewNTTModel(perfmodel.NewKernelModel(mach, proxyBody), ValidationSize).TimeNs()

		out = append(out, ValidationResult{
			Pair:       pair,
			Machine:    mach,
			TargetNs:   tTarget,
			ProxyNs:    tProxy,
			EpsilonPct: (tTarget - tProxy) / tTarget * 100,
		})
	}
	return out, nil
}

// ProxyTable renders Table 3 (the MQX proxy mapping) as rows of
// (MQX instruction, AVX-512 proxy).
func ProxyTable() [][2]string {
	rows := [][2]string{
		{isa.MQXMulQ.String(), isa.PISAProxy[isa.MQXMulQ].String()},
		{isa.MQXAdcQ.String(), isa.PISAProxy[isa.MQXAdcQ].String()},
		{isa.MQXSbbQ.String(), isa.PISAProxy[isa.MQXSbbQ].String()},
	}
	return rows
}
