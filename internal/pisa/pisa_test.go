package pisa

import (
	"math"
	"testing"

	"mqxgo/internal/isa"
	"mqxgo/internal/modmath"
	"mqxgo/internal/perfmodel"
)

func TestValidateProducesAllPairs(t *testing.T) {
	mod := modmath.DefaultModulus128()
	for _, mach := range perfmodel.MeasurementMachines {
		res, err := Validate(mach, mod)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(isa.PISAValidationPairs) {
			t.Fatalf("%s: got %d results, want %d", mach.Name, len(res), len(isa.PISAValidationPairs))
		}
		for _, r := range res {
			if r.TargetNs <= 0 || r.ProxyNs <= 0 {
				t.Fatalf("%s %v: non-positive runtimes %+v", mach.Name, r.Pair.Target, r)
			}
			if math.IsNaN(r.EpsilonPct) {
				t.Fatalf("%s %v: NaN epsilon", mach.Name, r.Pair.Target)
			}
			// The paper's sanity threshold: |epsilon| below ~15% for a
			// trustworthy proxy methodology (the paper observes <8% on
			// hardware; our model includes the guard uop, so projections
			// lean conservative).
			if math.Abs(r.EpsilonPct) > 15 {
				t.Errorf("%s %v: |epsilon| = %.2f%% too large", mach.Name, r.Pair.Target, r.EpsilonPct)
			}
		}
	}
}

func TestMaskPairsConservative(t *testing.T) {
	// The masked add/sub proxies carry a guard uop, so PISA should predict
	// runtimes at least as slow as the target (epsilon <= 0).
	mod := modmath.DefaultModulus128()
	res, err := Validate(perfmodel.IntelXeon8352Y, mod)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Pair.Target == isa.AVX512MaskAddQ || r.Pair.Target == isa.AVX512MaskSubQ {
			if r.EpsilonPct > 0 {
				t.Errorf("%v: expected conservative projection, epsilon = %.2f%%", r.Pair.Target, r.EpsilonPct)
			}
		}
	}
}

func TestProxyMarchSubstitution(t *testing.T) {
	m := ProxyMarch(isa.SunnyCove, isa.AVX512MaskAddQ, isa.AVX512AddQ, true)
	orig := isa.SunnyCove.CostOf(isa.AVX512AddQ)
	got := m.Costs[isa.AVX512MaskAddQ]
	if len(got.Uops) != len(orig.Uops)+1 {
		t.Fatalf("guard uop missing: %d vs %d", len(got.Uops), len(orig.Uops))
	}
	if got.Lat != orig.Lat {
		t.Fatalf("latency should match proxy: %d vs %d", got.Lat, orig.Lat)
	}
	// The original march must be untouched.
	if len(isa.SunnyCove.CostOf(isa.AVX512MaskAddQ).Uops) != 1 {
		t.Fatal("ProxyMarch mutated the source microarchitecture")
	}
}

func TestLevelForTargetUnknown(t *testing.T) {
	if _, err := levelForTarget(isa.ScalarAdd); err == nil {
		t.Fatal("expected error for un-exercised target")
	}
}

func TestProxyTable(t *testing.T) {
	rows := ProxyTable()
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	if rows[0][0] != "vpmulq" || rows[0][1] != "vpmullq" {
		t.Fatalf("unexpected first row: %v", rows[0])
	}
}
