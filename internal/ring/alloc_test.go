package ring_test

import (
	"math/rand"
	"testing"

	"mqxgo/internal/ring"
)

// Steady-state allocation regression for the kernel path: attaching span
// kernels must not cost the *Into hot paths their 0 allocs/op. The span
// methods receive live slice views of plan tables and scratch, and the
// single p.kern interface value is bound at build time, so nothing may
// escape per call.
func TestKernelPathsDoNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const n = 1 << 8
	r := testRing64(t, n)
	q := r.M.Q
	p := ring.MustPlan[uint64, ring.Shoup64](r, n)
	if !p.HasSpanKernels() {
		t.Fatal("expected the lazy kernel path")
	}
	rng := rand.New(rand.NewSource(91))
	a := make([]uint64, n)
	b := make([]uint64, n)
	m := make([]uint64, n)
	for i := range a {
		a[i], b[i], m[i] = rng.Uint64()%q, rng.Uint64()%q, rng.Uint64()%q
	}
	dst := make([]uint64, n)

	cases := map[string]func(){
		"ForwardInto":           func() { p.ForwardInto(dst, a) },
		"InverseInto":           func() { p.InverseInto(dst, a) },
		"PolyMulNegacyclicInto": func() { p.PolyMulNegacyclicInto(dst, a, b) },
		"PointwiseMulInto":      func() { p.PointwiseMulInto(dst, a, b) },
		"ScalarMulInto":         func() { p.ScalarMulInto(dst, a, 12345) },
		"ScaleAddInto":          func() { p.ScaleAddInto(dst, a, m, 12345) },
	}
	for name, f := range cases {
		f() // warm the scratch pool
		if got := testing.AllocsPerRun(20, f); got != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, got)
		}
	}
}

// The vector kernel tiers ride the same span seam and the same bound
// interface values, so they must hold the same 0 allocs/op: the asm
// wrappers take slice views and the scalar-tail fallbacks reslice in
// place.
func TestVectorKernelPathsDoNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const n = 1 << 8
	r := testRing64(t, n)
	q := r.M.Q
	rng := rand.New(rand.NewSource(92))
	a := make([]uint64, n)
	b := make([]uint64, n)
	for i := range a {
		a[i], b[i] = rng.Uint64()%q, rng.Uint64()%q
	}
	dst := make([]uint64, n)
	for _, tier := range []ring.KernelTier{ring.TierAVX2, ring.TierAVX512} {
		if ring.DetectKernelTier() < tier {
			continue
		}
		p := ring.MustPlan[uint64, ring.Shoup64](ring.NewShoup64Tier(r.M, tier), n)
		if got := p.KernelTier(); got != tier.String() {
			t.Fatalf("plan tier = %s, want %s", got, tier)
		}
		cases := map[string]func(){
			"ForwardInto":           func() { p.ForwardInto(dst, a) },
			"InverseInto":           func() { p.InverseInto(dst, a) },
			"PolyMulNegacyclicInto": func() { p.PolyMulNegacyclicInto(dst, a, b) },
		}
		for name, f := range cases {
			f()
			if got := testing.AllocsPerRun(20, f); got != 0 {
				t.Errorf("%s/%s: %v allocs/op, want 0", tier, name, got)
			}
		}
	}
}
