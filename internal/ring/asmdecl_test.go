package ring

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestAsmStubParity cross-checks the assembly kernels against their Go
// declarations: every `TEXT ·sym` in a *_amd64.s file must have exactly
// one body-less Go stub in a *_amd64.go file, and vice versa. go vet's
// asmdecl pass validates argument frames only for symbols that HAVE a Go
// declaration — a TEXT body with no stub (or a stub whose TEXT was
// renamed) silently falls outside its coverage, which is exactly the
// drift this test pins down.
func TestAsmStubParity(t *testing.T) {
	textRe := regexp.MustCompile(`(?m)^TEXT ·([A-Za-z0-9_]+)`)
	asmSyms := map[string]string{}
	goStubs := map[string]string{}

	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, "_amd64.s"):
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range textRe.FindAllStringSubmatch(string(src), -1) {
				if prev, dup := asmSyms[m[1]]; dup {
					t.Errorf("TEXT ·%s defined in both %s and %s", m[1], prev, name)
				}
				asmSyms[m[1]] = name
			}
		case strings.HasSuffix(name, "_amd64.go") && !strings.HasSuffix(name, "_test.go"):
			f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, parser.SkipObjectResolution)
			if err != nil {
				t.Fatal(err)
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body != nil || fd.Recv != nil {
					continue
				}
				goStubs[fd.Name.Name] = name
			}
		}
	}
	if len(asmSyms) == 0 {
		t.Fatal("no TEXT symbols found; the scan is broken")
	}
	for _, sym := range sortedKeys(asmSyms) {
		if _, ok := goStubs[sym]; !ok {
			t.Errorf("TEXT ·%s (%s) has no body-less Go declaration: asmdecl cannot check its frame", sym, asmSyms[sym])
		}
	}
	for _, sym := range sortedKeys(goStubs) {
		if _, ok := asmSyms[sym]; !ok {
			t.Errorf("Go stub %s (%s) has no TEXT body in any *_amd64.s file", sym, goStubs[sym])
		}
	}
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
