package ring

import (
	"context"
	"runtime"
	"sync"
)

// Batched transforms. Real FHE workloads process many independent
// polynomials at once (Section 6, "towards realizing SOL performance");
// these helpers fan a batch out across cores with no cross-transform data
// dependencies, the parallelism regime the paper's speed-of-light model
// assumes.
//
// Dispatch goes through a persistent, lazily-started worker pool shared
// by every plan (and by RNS tower dispatch via ParallelChunks): a batch
// is split into at most `workers` contiguous index ranges — one channel
// send per range, with the caller running the final range itself — and
// each range reuses a single scratch set across all of its transforms.

// workerPool is the process-wide transform pool. Workers are started
// lazily and live for the life of the process; GOMAXPROCS goroutines are
// enough because transform chunks are pure CPU work. The count is
// re-checked on every submit so a GOMAXPROCS raise after first use grows
// the pool instead of capping all future batches at the initial size.
var workerPool struct {
	mu      sync.Mutex
	started int
	jobs    chan func()
}

// submitJob hands f to the pool, starting workers as needed. Each submit
// starts AT MOST ONE new worker: a submit enqueues exactly one job, so one
// extra goroutine is all that's needed to keep the batch fully parallel (a
// w-chunk batch makes w-1 submits and therefore guarantees w-1 pool
// workers), while a small batch — k=2 tower dispatch — no longer wakes
// GOMAXPROCS idle workers it can never feed. The GOMAXPROCS cap is still
// re-checked on every submit, so a raise after first use grows the pool
// on demand instead of capping all future batches at the initial size.
// Jobs must not themselves submit to the pool (chunks never do), so the
// pool cannot deadlock.
func submitJob(f func()) {
	workerPool.mu.Lock()
	if workerPool.jobs == nil {
		workerPool.jobs = make(chan func(), 256)
	}
	if workerPool.started < runtime.GOMAXPROCS(0) {
		go func() {
			for job := range workerPool.jobs {
				job()
			}
		}()
		workerPool.started++
	}
	workerPool.mu.Unlock()
	workerPool.jobs <- f
}

// ParallelChunks covers [0, n) with at most `workers` contiguous ranges
// (0 means GOMAXPROCS) and runs chunk on each, the last on the calling
// goroutine and the rest on the persistent pool. chunk must be safe for
// concurrent invocation on disjoint ranges. This is the batch dispatch
// primitive shared by Plan batches and RNS tower fan-out.
//
// A panic inside chunk — on the pool or on the calling goroutine — is
// re-raised on the calling goroutine after every other chunk has finished,
// so a recover() around the dispatch observes it and the pool workers
// survive for the next batch. Without this a chunk panic on a pool
// goroutine would kill the whole process, which no serving layer can
// tolerate.
func ParallelChunks(n, workers int, chunk func(start, end int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		chunk(0, n)
		return
	}
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
		hasPanic bool
	)
	base, rem := n/workers, n%workers
	start := 0
	callerStart, callerEnd := 0, 0
	for w := 0; w < workers; w++ {
		size := base
		if w < rem {
			size++
		}
		s, e := start, start+size
		start = e
		if w == workers-1 {
			callerStart, callerEnd = s, e
			break
		}
		wg.Add(1)
		submitJob(func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if !hasPanic {
						hasPanic, panicked = true, r
					}
					panicMu.Unlock()
				}
			}()
			chunk(s, e)
		})
	}
	// Run the caller's own range under a deferred Wait so that even if it
	// panics, the pool chunks finish before the stack unwinds — their
	// closures reference the caller's buffers.
	func() {
		defer wg.Wait()
		chunk(callerStart, callerEnd)
	}()
	if hasPanic {
		panic(panicked)
	}
}

// ParallelChunksCtx is ParallelChunks with a cancellation check in the
// dispatch: ctx is tested before any work starts and again immediately
// before each chunk body runs, and the context's error is returned when it
// fires. Ranges whose check observed the cancellation are skipped, so on a
// non-nil return the outputs are partial and must be discarded; a nil
// return means every index was processed. Chunk panics propagate exactly
// as in ParallelChunks.
func ParallelChunksCtx(ctx context.Context, n, workers int, chunk func(start, end int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ParallelChunks(n, workers, func(start, end int) {
		if ctx.Err() != nil {
			return
		}
		chunk(start, end)
	})
	return ctx.Err()
}

// BatchForward runs the forward transform over every input, in parallel
// across at most workers chunks (0 means GOMAXPROCS). Inputs are not
// modified; results are returned in order.
func (p *Plan[T, R]) BatchForward(inputs [][]T, workers int) [][]T {
	out := AllocBatch[T](p.N, len(inputs))
	p.BatchForwardInto(out, inputs, workers)
	return out
}

// BatchForwardInto is BatchForward with caller-provided destinations:
// dst[i] receives the transform of inputs[i]. Beyond the fixed dispatch
// cost (one closure and one scratch checkout per chunk) it allocates
// nothing.
func (p *Plan[T, R]) BatchForwardInto(dst, inputs [][]T, workers int) {
	p.checkBatch(dst, inputs)
	ParallelChunks(len(inputs), workers, func(start, end int) {
		sc := p.getScratch()
		for i := start; i < end; i++ {
			p.forwardStages(dst[i], inputs[i], sc)
		}
		p.putScratch(sc)
	})
}

// BatchInverse runs the inverse transform over every input in parallel.
func (p *Plan[T, R]) BatchInverse(inputs [][]T, workers int) [][]T {
	out := AllocBatch[T](p.N, len(inputs))
	p.BatchInverseInto(out, inputs, workers)
	return out
}

// BatchInverseInto is BatchInverse with caller-provided destinations.
func (p *Plan[T, R]) BatchInverseInto(dst, inputs [][]T, workers int) {
	p.checkBatch(dst, inputs)
	ParallelChunks(len(inputs), workers, func(start, end int) {
		sc := p.getScratch()
		for i := start; i < end; i++ {
			p.inverseStages(dst[i], inputs[i], sc, true)
		}
		p.putScratch(sc)
	})
}

// BatchPolyMulNegacyclic multiplies pairs[i][0] * pairs[i][1] in
// Z_q[x]/(x^n + 1) for every pair, in parallel.
func (p *Plan[T, R]) BatchPolyMulNegacyclic(pairs [][2][]T, workers int) [][]T {
	out := AllocBatch[T](p.N, len(pairs))
	p.BatchPolyMulNegacyclicInto(out, pairs, workers)
	return out
}

// BatchPolyMulNegacyclicInto is BatchPolyMulNegacyclic with
// caller-provided destinations.
func (p *Plan[T, R]) BatchPolyMulNegacyclicInto(dst [][]T, pairs [][2][]T, workers int) {
	checkBatchLens(len(dst), len(pairs))
	for i := range dst {
		p.checkLen(len(dst[i]))
		p.checkLen(len(pairs[i][0]))
		p.checkLen(len(pairs[i][1]))
	}
	ParallelChunks(len(pairs), workers, func(start, end int) {
		poly := p.getScratch()
		ping := p.getScratch()
		for i := start; i < end; i++ {
			p.polyMulNegacyclicScratch(dst[i], pairs[i][0], pairs[i][1], poly, ping)
		}
		p.putScratch(ping)
		p.putScratch(poly)
	})
}

// AllocBatch allocates count result rows of length n in one backing array
// (one allocation, contiguous for the sequential consumer). Note the
// lifetime consequence: retaining any single returned row keeps the whole
// batch's backing array live. Callers that keep a few rows long-term and
// drop the rest should use the *Into variants with their own buffers.
func AllocBatch[T any](n, count int) [][]T {
	flat := make([]T, n*count)
	out := make([][]T, count)
	for i := range out {
		out[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	return out
}

func checkBatchLens(dst, src int) {
	if dst != src {
		panic("ring: batch destination count does not match input count")
	}
}

// checkBatch validates every row length before parallel dispatch, so a
// malformed batch panics deterministically on the calling goroutine —
// where a serving layer's recover can see it — rather than inside a pool
// worker mid-flight.
func (p *Plan[T, R]) checkBatch(dst, inputs [][]T) {
	checkBatchLens(len(dst), len(inputs))
	for i := range dst {
		p.checkLen(len(dst[i]))
		p.checkLen(len(inputs[i]))
	}
}
