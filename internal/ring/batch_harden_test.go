package ring

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"mqxgo/internal/modmath"
)

// TestParallelChunksPanicPropagates pins the serving-layer contract: a
// panic inside a chunk running on a pool goroutine reaches the CALLING
// goroutine, where recover() can see it, and the pool keeps working for
// subsequent batches.
func TestParallelChunksPanicPropagates(t *testing.T) {
	const n, workers = 64, 4
	caught := func() (r any) {
		defer func() { r = recover() }()
		ParallelChunks(n, workers, func(start, end int) {
			if start == 0 { // first range runs on a pool worker
				panic("chunk boom")
			}
		})
		return nil
	}()
	if caught != "chunk boom" {
		t.Fatalf("recovered %v, want \"chunk boom\"", caught)
	}

	// The pool must survive: a follow-up dispatch covers every index.
	var covered atomic.Int64
	ParallelChunks(n, workers, func(start, end int) {
		covered.Add(int64(end - start))
	})
	if covered.Load() != n {
		t.Fatalf("post-panic dispatch covered %d of %d indices", covered.Load(), n)
	}
}

// TestParallelChunksCallerPanicWaitsForPool proves the caller's own chunk
// panicking does not unwind past in-flight pool chunks (their closures
// reference the caller's buffers).
func TestParallelChunksCallerPanicWaitsForPool(t *testing.T) {
	const n, workers = 64, 4
	var poolDone atomic.Int64
	var mu sync.Mutex
	lastRange := n * (workers - 1) / workers // caller runs the final range
	caught := func() (r any) {
		defer func() { r = recover() }()
		ParallelChunks(n, workers, func(start, end int) {
			if start >= lastRange {
				panic("caller boom")
			}
			mu.Lock()
			poolDone.Add(int64(end - start))
			mu.Unlock()
		})
		return nil
	}()
	if caught != "caller boom" {
		t.Fatalf("recovered %v, want \"caller boom\"", caught)
	}
	if got := poolDone.Load(); got != int64(lastRange) {
		t.Fatalf("pool chunks completed %d indices before unwind, want %d", got, lastRange)
	}
}

func TestParallelChunksCtx(t *testing.T) {
	const n = 64
	t.Run("nil_error_covers_everything", func(t *testing.T) {
		var covered atomic.Int64
		err := ParallelChunksCtx(context.Background(), n, 4, func(start, end int) {
			covered.Add(int64(end - start))
		})
		if err != nil {
			t.Fatalf("ParallelChunksCtx: %v", err)
		}
		if covered.Load() != n {
			t.Fatalf("covered %d of %d indices", covered.Load(), n)
		}
	})
	t.Run("pre_cancelled_runs_nothing", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		ran := false
		err := ParallelChunksCtx(ctx, n, 4, func(start, end int) { ran = true })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if ran {
			t.Fatal("chunk ran after pre-cancelled context")
		}
	})
	t.Run("deadline_error_identity", func(t *testing.T) {
		// An already-expired deadline must surface as DeadlineExceeded —
		// the error the serve layer maps to its timeout status.
		ctx, cancel := context.WithTimeout(context.Background(), -1)
		defer cancel()
		err := ParallelChunksCtx(ctx, n, 4, func(start, end int) {})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	})
	t.Run("cancel_during_dispatch_is_reported", func(t *testing.T) {
		// workers=1 keeps the ordering deterministic: one chunk, which
		// cancels the context mid-flight; the dispatch must report it.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		err := ParallelChunksCtx(ctx, n, 1, func(start, end int) { cancel() })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})
}

// TestBatchLenValidationBeforeDispatch pins that a malformed batch panics
// on the calling goroutine before any parallel work is dispatched.
func TestBatchLenValidationBeforeDispatch(t *testing.T) {
	p, err := NewPlan[uint64, Shoup64](NewShoup64(modmath.MustModulus64(257)), 8)
	if err != nil {
		t.Fatal(err)
	}
	good := AllocBatch[uint64](8, 4)
	bad := AllocBatch[uint64](8, 4)
	bad[2] = bad[2][:5] // wrong row length

	for _, tc := range []struct {
		name string
		call func()
	}{
		{"forward_bad_input", func() { p.BatchForwardInto(good, bad, 2) }},
		{"forward_bad_dst", func() { p.BatchForwardInto(bad, good, 2) }},
		{"inverse_bad_input", func() { p.BatchInverseInto(good, bad, 2) }},
		{"count_mismatch", func() { p.BatchForwardInto(good[:3], good, 2) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("malformed batch did not panic")
				}
			}()
			tc.call()
		})
	}
}
