package ring

import "sync"

// The process-wide plan cache. Building a plan costs O(N log N) modular
// multiplications for the stage tables; entry points that each construct
// their own context (cmd/*, examples/*, benchmarks) were rebuilding
// identical tables. Plans are immutable after construction and safe for
// concurrent use, so one instance per (fingerprint, n) serves the whole
// process. The fingerprint's tag separates ring families and arithmetic
// configurations (e.g. a Karatsuba-configured 128-bit modulus never
// receives a Schoolbook plan: the tables are identical, the
// transform-time Mul dispatch is not).
//
// Entries are retained for the life of the process — the expected
// workload reuses a handful of (q, n) pairs, and twiddle tables for those
// must stay resident for the hot path anyway. Long-running processes that
// churn through many distinct parameter sets can call ResetPlanCache
// between phases.

type planKey struct {
	fp Fingerprint
	n  int
}

var planCache sync.Map // planKey -> cached value (plan or wrapper)

// CachedPlan returns the process-wide shared plan for (r.Fingerprint(), n),
// building it on first use.
func CachedPlan[T any, R Ring[T]](r R, n int) (*Plan[T, R], error) {
	v, err := CacheLoadOrBuild(r.Fingerprint(), n, func() (any, error) {
		return NewPlan[T, R](r, n)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Plan[T, R]), nil
}

// CacheLoadOrBuild is the raw cache primitive: it returns the cached
// value for (fp, n), calling build exactly when no entry exists yet.
// Wrapper packages (internal/ntt) use it with their own fingerprint tags
// to cache compatibility wrappers without duplicating the cache
// machinery. Concurrent first-use may build twice; one winner is kept.
func CacheLoadOrBuild(fp Fingerprint, n int, build func() (any, error)) (any, error) {
	k := planKey{fp: fp, n: n}
	if v, ok := planCache.Load(k); ok {
		return v, nil
	}
	v, err := build()
	if err != nil {
		return nil, err
	}
	got, _ := planCache.LoadOrStore(k, v)
	return got, nil
}

// ResetPlanCache drops every cached plan (and wrapper), releasing their
// twiddle tables to the garbage collector. Plans already held by callers
// stay valid.
func ResetPlanCache() {
	planCache.Clear()
}
