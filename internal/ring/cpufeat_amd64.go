package ring

// CPU feature detection for the vector kernel tiers, done once per
// process (tierInit). The checks are the standard ones: the OS must have
// enabled the relevant register state via XCR0 (OSXSAVE + XGETBV), and
// the CPUID feature leaves must advertise the instructions the assembly
// uses. The AVX-512 tier requires F (foundation: VPMINUQ, VPERMT2Q,
// EVEX loads) and DQ (VPMULLQ).

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

const (
	// CPUID.1:ECX
	cpuidOSXSAVE = 1 << 27
	cpuidAVX     = 1 << 28
	// CPUID.7.0:EBX
	cpuidAVX2     = 1 << 5
	cpuidAVX512F  = 1 << 16
	cpuidAVX512DQ = 1 << 17
	// XCR0 state bits
	xcr0SSE    = 1 << 1
	xcr0AVX    = 1 << 2
	xcr0Opmask = 1 << 5
	xcr0ZMMHi  = 1 << 6
	xcr0HiZMM  = 1 << 7
)

func detectKernelTier() KernelTier {
	t := detectCPUTier()
	if t < goamd64MinTier {
		t = goamd64MinTier
	}
	return t
}

func detectCPUTier() KernelTier {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return TierScalar
	}
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&cpuidOSXSAVE == 0 || ecx1&cpuidAVX == 0 {
		return TierScalar
	}
	xlo, _ := xgetbv()
	if xlo&(xcr0SSE|xcr0AVX) != xcr0SSE|xcr0AVX {
		return TierScalar
	}
	_, ebx7, _, _ := cpuid(7, 0)
	if ebx7&cpuidAVX2 == 0 {
		return TierScalar
	}
	const zmmState = xcr0Opmask | xcr0ZMMHi | xcr0HiZMM
	if ebx7&cpuidAVX512F != 0 && ebx7&cpuidAVX512DQ != 0 && xlo&zmmState == zmmState {
		return TierAVX512
	}
	return TierAVX2
}

// CPUFeatures reports the host's vector capabilities for benchmark
// metadata (cmd/benchjson records them in every BENCH_*.json so
// trajectories across hosts stay comparable).
func CPUFeatures() []string {
	f := []string{"amd64"}
	t := DetectKernelTier()
	if t >= TierAVX2 {
		f = append(f, "avx2")
	}
	if t >= TierAVX512 {
		f = append(f, "avx512f", "avx512dq")
	}
	return f
}
