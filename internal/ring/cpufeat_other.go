//go:build !amd64

package ring

// Non-amd64 builds have no vector tier: detection pins the ceiling at
// scalar and resolveKernelTier clamps every request down to it.

func detectKernelTier() KernelTier { return TierScalar }

// CPUFeatures reports the host's vector capabilities (none off amd64).
func CPUFeatures() []string { return []string{} }
