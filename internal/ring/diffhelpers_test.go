package ring

// Shared input generators for the kernel differential suites
// (simd_test.go, fusedmac64_test.go): lazy-domain boundary values,
// canonical residues, and valid Shoup twiddle pairs.

import (
	"math/rand"
	"testing"

	"mqxgo/internal/modmath"
)

func simdMod(t testing.TB) *modmath.Modulus64 {
	ps, err := modmath.FindNTTPrimes64(59, 8192, 1)
	if err != nil {
		t.Fatal(err)
	}
	return modmath.MustModulus64(ps[0])
}

// fillBoundary fills dst with the lazy-domain edge values interleaved
// with raw random 64-bit words.
func fillBoundary(rng *rand.Rand, dst []uint64, q uint64) {
	edges := []uint64{0, 1, q - 1, q, q + 1, 2*q - 1, 2 * q, 2*q + 1, 1<<63 - 1, 1 << 63, ^uint64(0)}
	for i := range dst {
		if i%3 == 0 {
			dst[i] = edges[rng.Intn(len(edges))]
		} else {
			dst[i] = rng.Uint64()
		}
	}
}

func fillCanonical(rng *rand.Rand, dst []uint64, q uint64) {
	for i := range dst {
		dst[i] = rng.Uint64() % q
	}
}

// fillTwiddles fills (w, pre) with valid Shoup pairs, w canonical.
func fillTwiddles(rng *rand.Rand, m *modmath.Modulus64, w, pre []uint64) {
	for i := range w {
		w[i] = rng.Uint64() % m.Q
		pre[i] = m.ShoupPrecompute(w[i])
	}
}

func diffU64(t *testing.T, name string, got, want []uint64) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: lane %d: got %#x, want %#x", name, i, got[i], want[i])
		}
	}
}
