package ring

import "math/bits"

// NegacyclicForwardMAC2 fuses the forward half of a negacyclic product
// with a two-row lazy multiply-accumulate: it computes y = NTT(psi^j ∘ x)
// and folds
//
//	accA[j] += y[j]*wA[j] - floor(y[j]*preA[j]/2^64)*q   (and likewise accB/wB)
//
// without ever materializing y. This is the relinearization inner loop
// shape — per gadget digit, one forward transform whose output is
// consumed exactly twice, by the two fixed key rows — where the unfused
// sequence writes the N-element transform result and then streams it
// back in twice. The fusion rides a structural fact of the
// constant-geometry dataflow: the final forward stage's twiddle exponent
// (i>>(M-1))<<(M-1) is zero for every butterfly, so stage M-1 is a pure
// add/sub pass whose canonical outputs can be multiply-accumulated in
// registers as they are produced.
//
// Each accumulator summand is in [0, 2q) and congruent to y[j]*w[j] mod
// q for any 64-bit y[j]; callers guarantee the no-wrap headroom for the
// number of accumulated rows (the fhe backend's relinLazy gate) and land
// the deferred reduction themselves. Bit-identical to
// NegacyclicForwardInto followed by two separate MAC passes: stages 0
// through M-2 run the same kernel dispatch, and the final stage's
// conditional-subtract ladder produces the canonical residue — the same
// unique value the fused final-stage kernels write.
//
// Steady-state it allocates nothing.
//
//mqx:hotpath
func NegacyclicForwardMAC2(p *Plan[uint64, Shoup64], accA, accB, x, wA, preA, wB, preB []uint64) {
	p.checkLen(len(accA))
	p.checkLen(len(accB))
	p.checkLen(len(x))
	p.checkLen(len(wA))
	p.checkLen(len(preA))
	p.checkLen(len(wB))
	p.checkLen(len(preB))
	sc := p.getScratch()
	ping := p.getScratch()
	work := sc.a[:p.N]

	// Twist, exactly as NegacyclicForwardInto: relaxed outputs feed the
	// stage loops directly.
	tw := p.twist.w[:p.N]
	tp := p.twist.pre[:p.N]
	if k := p.kern; k != nil {
		k.MulPreSpan(work, x, tw, tp)
	} else {
		r := p.R
		for j := range tw {
			work[j] = r.MulPre(x[j], tw[j], tp[j])
		}
	}

	// Stages 0..M-2 through the normal dispatch (scalar or vector tier),
	// leaving relaxed residues in sc.b. The partial transform cannot run
	// in place: when only one stage remains it would read and write the
	// same spans (full transforms tolerate dst==x only because their
	// stage 0 always writes scratch). For M == 1 this is a no-op and the
	// twisted input is the final stage's source.
	src := work
	if m := p.M - 1; m > 0 {
		p.forwardStagesN(sc.b, work, ping, m)
		src = sc.b[:p.N]
	}

	// Fused final stage, dispatched to the plan's kernel tier when it
	// provides the fused body (the AVX2/AVX-512 sets do; the scalar tier
	// and element-only rings run the Go loop).
	half := p.N >> 1
	lo := src[:half]
	hi := src[half:p.N]
	if k, ok := p.kern.(fusedMACSpanKernels); ok {
		k.MACFinal2Span(accA, accB, lo, hi, wA, preA, wB, preB)
	} else {
		macFinal2SpanScalar(p.R.M.Q, accA, accB, lo, hi, wA, preA, wB, preB)
	}
	p.putScratch(ping)
	p.putScratch(sc)
}

// fusedMACSpanKernels is the optional kernel extension for the fused
// final stage: given the penultimate stage's relaxed outputs split into
// lo/hi halves of h butterflies, produce the canonical final-stage
// outputs (s, d interleaved, exactly CTSpanLast at unit twiddle) and
// fold the two-row lazy Shoup MAC into accA/accB (each of length 2h)
// without materializing the transform. Bit-identical to
// macFinal2SpanScalar on arbitrary 64-bit lane values.
type fusedMACSpanKernels interface {
	MACFinal2Span(accA, accB, lo, hi, wA, preA, wB, preB []uint64)
}

// macFinal2SpanScalar is the ground-truth final-stage body the vector
// tiers are differential-tested against, and the tail loop behind their
// full vectors. Inputs are relaxed (< 2q): s = a+b < 4q and d = a+2q-b
// in (0, 4q), and two conditional subtracts land each on its canonical
// residue. The Shoup MAC summand d*w - qhat*q is then the same value
// the unfused mulPreAddRow folds in.
//
//mqx:hotpath
//mqx:lazy params=lo,hi wide=accA,accB
func macFinal2SpanScalar(q uint64, accA, accB, lo, hi, wA, preA, wB, preB []uint64) {
	twoQ := 2 * q
	for i := range lo {
		a, b := lo[i], hi[i]
		s := a + b
		if s >= twoQ {
			s -= twoQ
		}
		if s >= q {
			s -= q
		}
		d := a + twoQ - b
		if d >= twoQ {
			d -= twoQ
		}
		if d >= q {
			d -= q
		}
		e, o := 2*i, 2*i+1
		qhat, _ := bits.Mul64(s, preA[e])
		accA[e] += s*wA[e] - qhat*q
		qhat, _ = bits.Mul64(d, preA[o])
		accA[o] += d*wA[o] - qhat*q
		qhat, _ = bits.Mul64(s, preB[e])
		accB[e] += s*wB[e] - qhat*q
		qhat, _ = bits.Mul64(d, preB[o])
		accB[o] += d*wB[o] - qhat*q
	}
}
