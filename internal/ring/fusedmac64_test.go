package ring

import (
	"math/bits"
	"math/rand"
	"testing"

	"mqxgo/internal/modmath"
)

// TestNegacyclicForwardMAC2BitIdentity gates the fused
// transform-and-accumulate against the unfused reference — a full
// NegacyclicForwardInto followed by two separate lazy MAC passes — at
// every kernel tier the host can run. Bit identity of the raw 64-bit
// accumulators, not just congruence.
func TestNegacyclicForwardMAC2BitIdentity(t *testing.T) {
	m := simdMod(t)
	q := m.Q
	for _, n := range []int{2, 4, 16, 64, 4096} {
		for _, tier := range []KernelTier{TierScalar, TierAVX2, TierAVX512} {
			if tier != TierScalar && DetectKernelTier() < tier {
				continue
			}
			p, err := NewPlan[uint64, Shoup64](NewShoup64Tier(m, tier), n)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(n)))
			x := make([]uint64, n)
			wA := make([]uint64, n)
			preA := make([]uint64, n)
			wB := make([]uint64, n)
			preB := make([]uint64, n)
			fillCanonical(rng, x, q)
			fillTwiddles(rng, m, wA, preA)
			fillTwiddles(rng, m, wB, preB)

			// Reference: materialize the transform, MAC it twice. Seed
			// the accumulators with raw 64-bit values to check the fused
			// path adds onto them rather than overwriting.
			accA := make([]uint64, n)
			accB := make([]uint64, n)
			for j := range accA {
				accA[j] = rng.Uint64() >> 2
				accB[j] = rng.Uint64() >> 2
			}
			refA := append([]uint64(nil), accA...)
			refB := append([]uint64(nil), accB...)
			y := make([]uint64, n)
			p.NegacyclicForwardInto(y, x)
			for j := range y {
				qhat, _ := bits.Mul64(y[j], preA[j])
				refA[j] += y[j]*wA[j] - qhat*q
				qhat, _ = bits.Mul64(y[j], preB[j])
				refB[j] += y[j]*wB[j] - qhat*q
			}

			NegacyclicForwardMAC2(p, accA, accB, x, wA, preA, wB, preB)
			name := tier.String() + "/" + string(rune('0'+n%10))
			diffU64(t, name+" accA", accA, refA)
			diffU64(t, name+" accB", accB, refB)
		}
	}
}

// The fused MAC is a hot ladder-path call: it must hold the transform
// paths' 0 allocs/op.
func TestNegacyclicForwardMAC2DoesNotAllocate(t *testing.T) {
	if raceEnabledInternal {
		t.Skip("race instrumentation allocates")
	}
	ps, err := modmath.FindNTTPrimes64(59, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := modmath.MustModulus64(ps[0])
	const n = 256
	p := MustPlan[uint64, Shoup64](NewShoup64(m), n)
	rng := rand.New(rand.NewSource(5))
	x := make([]uint64, n)
	wA := make([]uint64, n)
	preA := make([]uint64, n)
	wB := make([]uint64, n)
	preB := make([]uint64, n)
	fillCanonical(rng, x, m.Q)
	fillTwiddles(rng, m, wA, preA)
	fillTwiddles(rng, m, wB, preB)
	accA := make([]uint64, n)
	accB := make([]uint64, n)
	f := func() { NegacyclicForwardMAC2(p, accA, accB, x, wA, preA, wB, preB) }
	f()
	if got := testing.AllocsPerRun(20, f); got != 0 {
		t.Errorf("NegacyclicForwardMAC2: %v allocs/op, want 0", got)
	}
}
