package ring

import (
	"math/rand"
	"testing"

	"mqxgo/internal/modmath"
	"mqxgo/internal/u128"
)

func galoisPlan64(t *testing.T, n int) *Plan[uint64, Shoup64] {
	t.Helper()
	primes, err := modmath.FindNTTPrimes64(59, uint64(2*n), 1)
	if err != nil {
		t.Fatalf("FindNTTPrimes64: %v", err)
	}
	p, err := NewPlan(NewShoup64(modmath.MustModulus64(primes[0])), n)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	return p
}

// TestGaloisExponentMap pins the position<->exponent correspondence the
// evaluation-domain permutation is built on: the forward transform of the
// monomial x must read psi^(2*bitrev(p)+1) at every output position.
func TestGaloisExponentMap(t *testing.T) {
	for _, n := range []int{8, 64, 256, 1024} {
		p := galoisPlan64(t, n)
		mod := p.R.M
		x := make([]uint64, n)
		x[1] = 1
		out := make([]uint64, n)
		p.NegacyclicForwardInto(out, x)
		m := 0
		for 1<<m < n {
			m++
		}
		for pos := 0; pos < n; pos++ {
			e := 2*bitrev(uint64(pos), m) + 1
			want := mod.Pow(p.Psi, e)
			if out[pos] != want {
				t.Fatalf("n=%d pos=%d: transform of x reads %d, want psi^%d = %d", n, pos, out[pos], e, want)
			}
		}
	}
}

// TestGaloisCoeffEvalCommute checks that the coefficient-domain
// automorphism and the evaluation-domain permutation compute the same
// map: NTT(tau_g(x)) == perm_g(NTT(x)) for random inputs and a spread of
// odd Galois elements, on both the 64-bit and the 128-bit rings.
func TestGaloisCoeffEvalCommute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{8, 64, 1024} {
		p := galoisPlan64(t, n)
		q := p.R.M.Q
		gs := []uint64{3, 5, uint64(2*n - 1), RotationElement(n, 1), RotationElement(n, n/4)}
		for _, g := range gs {
			tab, err := GaloisTablesFor(n, g)
			if err != nil {
				t.Fatalf("GaloisTablesFor(%d, %d): %v", n, g, err)
			}
			x := make([]uint64, n)
			for i := range x {
				x[i] = rng.Uint64() % q
			}
			viaCoeff := make([]uint64, n)
			p.AutomorphismCoeffInto(tab, viaCoeff, x)
			p.NegacyclicForwardInto(viaCoeff, viaCoeff)
			ev := make([]uint64, n)
			p.NegacyclicForwardInto(ev, x)
			viaEval := make([]uint64, n)
			p.AutomorphismEvalInto(tab, viaEval, ev)
			for i := range viaCoeff {
				if viaCoeff[i] != viaEval[i] {
					t.Fatalf("n=%d g=%d: NTT∘tau != perm∘NTT at %d: %d vs %d", n, g, i, viaCoeff[i], viaEval[i])
				}
			}
		}
	}
}

// TestGaloisCoeffEvalCommute128 runs the commute check on the 128-bit
// Barrett ring the oracle backend uses.
func TestGaloisCoeffEvalCommute128(t *testing.T) {
	n := 64
	mod := modmath.DefaultModulus128()
	p, err := NewPlan(NewBarrett128(mod), n)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, g := range []uint64{3, uint64(2*n - 1), RotationElement(n, 5)} {
		tab, err := GaloisTablesFor(n, g)
		if err != nil {
			t.Fatalf("GaloisTablesFor: %v", err)
		}
		x := make([]u128.U128, n)
		for i := range x {
			x[i] = u128.New(rng.Uint64(), rng.Uint64()).Mod(mod.Q)
		}
		viaCoeff := make([]u128.U128, n)
		p.AutomorphismCoeffInto(tab, viaCoeff, x)
		p.NegacyclicForwardInto(viaCoeff, viaCoeff)
		ev := make([]u128.U128, n)
		p.NegacyclicForwardInto(ev, x)
		viaEval := make([]u128.U128, n)
		p.AutomorphismEvalInto(tab, viaEval, ev)
		for i := range viaCoeff {
			if viaCoeff[i] != viaEval[i] {
				t.Fatalf("g=%d: NTT∘tau != perm∘NTT at %d", g, i)
			}
		}
	}
}

// TestGaloisComposition: tau_g1 ∘ tau_g2 == tau_(g1*g2) in the
// coefficient domain.
func TestGaloisComposition(t *testing.T) {
	n := 256
	p := galoisPlan64(t, n)
	q := p.R.M.Q
	rng := rand.New(rand.NewSource(9))
	g1, g2 := RotationElement(n, 3), RotationElement(n, 17)
	t1, _ := GaloisTablesFor(n, g1)
	t2, _ := GaloisTablesFor(n, g2)
	t12, _ := GaloisTablesFor(n, g1*g2)
	x := make([]uint64, n)
	for i := range x {
		x[i] = rng.Uint64() % q
	}
	step := make([]uint64, n)
	composed := make([]uint64, n)
	p.AutomorphismCoeffInto(t2, step, x)
	p.AutomorphismCoeffInto(t1, composed, step)
	direct := make([]uint64, n)
	p.AutomorphismCoeffInto(t12, direct, x)
	for i := range direct {
		if direct[i] != composed[i] {
			t.Fatalf("composition mismatch at %d", i)
		}
	}
}

// TestGaloisRejects pins the validation errors.
func TestGaloisRejects(t *testing.T) {
	if _, err := GaloisTablesFor(64, 4); err == nil {
		t.Fatal("even galois element accepted")
	}
	if _, err := GaloisTablesFor(48, 3); err == nil {
		t.Fatal("non-power-of-two degree accepted")
	}
	if _, err := SlotPositions(2); err == nil {
		t.Fatal("slot layout for n=2 accepted")
	}
}

// TestSlotPositionsCoverAllSlots: the two rows' exponent orbits must
// cover every odd exponent exactly once — the CRT slot map is a
// bijection.
func TestSlotPositionsCoverAllSlots(t *testing.T) {
	for _, n := range []int{4, 64, 1024} {
		pos, err := SlotPositions(n)
		if err != nil {
			t.Fatalf("SlotPositions(%d): %v", n, err)
		}
		seen := make(map[int32]bool, n)
		for _, p := range pos {
			if p < 0 || int(p) >= n {
				t.Fatalf("n=%d: position %d out of range", n, p)
			}
			if seen[p] {
				t.Fatalf("n=%d: position %d repeated", n, p)
			}
			seen[p] = true
		}
	}
}

// TestRotationElementOrbit: rotating by r then by s equals rotating by
// r+s, and a full row cycle is the identity.
func TestRotationElementOrbit(t *testing.T) {
	n := 64
	twoN := uint64(2 * n)
	if g := RotationElement(n, n/2); g != 1 {
		t.Fatalf("full-cycle rotation element %d, want 1", g)
	}
	r, s := 5, 11
	if got, want := RotationElement(n, r)*RotationElement(n, s)%twoN, RotationElement(n, r+s); got != want {
		t.Fatalf("rotation elements do not compose: %d vs %d", got, want)
	}
	if got, want := RotationElement(n, -3), RotationElement(n, n/2-3); got != want {
		t.Fatalf("negative steps: %d vs %d", got, want)
	}
}
